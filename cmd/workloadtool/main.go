// Command workloadtool generates, inspects and replays the exact workload
// instances behind the simulation results, using the JSON persistence of
// internal/workload.  A surprising number in a paper table can be pinned
// to a file, shared, and replayed bit-exactly.
//
// Usage:
//
//	workloadtool gen -seed 7 -tasks 50 -consistency inconsistent -out w.json
//	workloadtool describe -in w.json
//	workloadtool run -in w.json -heuristic mct -policy aware -gantt
package main

import (
	"flag"
	"fmt"
	"os"

	"gridtrust/internal/report"
	"gridtrust/internal/rng"
	"gridtrust/internal/sched"
	"gridtrust/internal/sim"
	"gridtrust/internal/trace"
	"gridtrust/internal/workload"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	var err error
	switch os.Args[1] {
	case "gen":
		err = cmdGen(os.Args[2:])
	case "describe":
		err = cmdDescribe(os.Args[2:])
	case "run":
		err = cmdRun(os.Args[2:])
	default:
		usage()
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "workloadtool: %v\n", err)
		os.Exit(1)
	}
}

func cmdGen(args []string) error {
	fs := flag.NewFlagSet("gen", flag.ExitOnError)
	seed := fs.Uint64("seed", 1, "random seed")
	tasks := fs.Int("tasks", 50, "number of requests")
	consistency := fs.String("consistency", "inconsistent", "inconsistent, consistent or semi-consistent")
	slack := fs.Float64("deadline-slack", 0, "deadline slack (0 = no deadlines)")
	out := fs.String("out", "", "output file (default stdout)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	cons, err := parseConsistency(*consistency)
	if err != nil {
		return err
	}
	spec := workload.PaperSpec(*tasks, cons)
	spec.DeadlineSlack = *slack
	w, err := workload.NewWorkload(rng.New(*seed), spec)
	if err != nil {
		return err
	}
	dst := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		dst = f
	}
	if err := w.Save(dst); err != nil {
		return err
	}
	if *out != "" {
		fmt.Printf("wrote %d-task workload (seed %d, %s) to %s\n", *tasks, *seed, cons, *out)
	}
	return nil
}

func loadFrom(path string) (*workload.Workload, error) {
	if path == "" {
		return nil, fmt.Errorf("missing -in")
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return workload.Load(f)
}

func cmdDescribe(args []string) error {
	fs := flag.NewFlagSet("describe", flag.ExitOnError)
	in := fs.String("in", "", "workload file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	w, err := loadFrom(*in)
	if err != nil {
		return err
	}
	fmt.Printf("workload: %d tasks x %d machines, %s %s\n",
		w.Spec.Tasks, w.Spec.Machines, w.Spec.Consistency, w.Spec.Heterogeneity)
	fmt.Printf("domains:  %d CDs, %d RDs (ETS rule %s)\n", w.NumCDs, w.NumRDs, w.Spec.ETSRule)
	fmt.Printf("mean EEC: %s s;  arrival span: %s s\n",
		report.Comma(w.EEC.MeanCost(), 1),
		report.Comma(w.Requests[len(w.Requests)-1].ArrivalAt, 1))

	// Trust-cost histogram over all (request, machine) pairs.
	dist, err := w.TCStats()
	if err != nil {
		return err
	}
	fmt.Printf("trust costs (all request-machine pairs, mean %.2f):\n", dist.Mean)
	values := make([]float64, len(dist.Counts))
	for tc, c := range dist.Counts {
		values[tc] = float64(c)
		fmt.Printf("  TC=%d  %5d\n", tc, c)
	}
	if spark, err := report.Sparkline(values); err == nil {
		fmt.Printf("  dist  %s\n", spark)
	}
	return nil
}

func cmdRun(args []string) error {
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	in := fs.String("in", "", "workload file")
	heuristic := fs.String("heuristic", "mct", "mct, minmin or sufferage")
	policy := fs.String("policy", "aware", "aware, unaware or blind")
	gantt := fs.Bool("gantt", false, "print the execution timeline")
	if err := fs.Parse(args); err != nil {
		return err
	}
	w, err := loadFrom(*in)
	if err != nil {
		return err
	}
	sc := sim.PaperScenario(*heuristic, w.Spec.Tasks, w.Spec.Consistency)
	sc.Machines = w.Spec.Machines
	sc.ArrivalRate = w.Spec.ArrivalRate
	sc.ETSRule = w.Spec.ETSRule
	sc.DeadlineSlack = w.Spec.DeadlineSlack
	sc.NumCDs, sc.NumRDs = w.Spec.NumCDs, w.Spec.NumRDs

	var p sched.Policy
	switch *policy {
	case "aware":
		p = sched.MustTrustAware(sc.TCWeight)
	case "unaware":
		p = sched.MustTrustUnaware(sc.FlatOverheadPct)
	case "blind":
		p = sched.MustTrustBlind(sc.TCWeight)
	default:
		return fmt.Errorf("unknown policy %q", *policy)
	}

	var tr trace.Trace
	res, err := sim.RunTraced(sc, w, p, &tr)
	if err != nil {
		return err
	}
	fmt.Printf("%s / %s on %s:\n", *heuristic, p.Name, *in)
	fmt.Printf("  avg completion: %s s  (p50 %s, p95 %s)\n",
		report.Seconds(res.AvgCompletionTime),
		report.Seconds(res.P50Completion), report.Seconds(res.P95Completion))
	fmt.Printf("  makespan:       %s s\n", report.Seconds(res.Makespan))
	fmt.Printf("  utilization:    %s\n", report.Fraction(res.MeanUtilization, 2))
	fmt.Printf("  mean trust cost: %.2f\n", res.MeanTrustCost)
	if res.DeadlineMissRate > 0 {
		fmt.Printf("  deadline misses: %d (%s)\n",
			res.DeadlineMisses, report.Fraction(res.DeadlineMissRate, 1))
	}
	if *gantt {
		fmt.Println()
		fmt.Print(tr.Gantt(sc.Machines, 72))
	}
	return nil
}

func parseConsistency(s string) (workload.Consistency, error) {
	switch s {
	case "inconsistent":
		return workload.Inconsistent, nil
	case "consistent":
		return workload.Consistent, nil
	case "semi-consistent":
		return workload.SemiConsistent, nil
	default:
		return 0, fmt.Errorf("unknown consistency %q", s)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: workloadtool {gen|describe|run} [flags]")
	os.Exit(2)
}
