// Command trustsim reproduces the simulation tables of the paper
// (Tables 4-9): paired trust-aware vs trust-unaware runs of the MCT,
// Min-min and Sufferage heuristics on consistent and inconsistent LoLo
// workloads.
//
// Usage:
//
//	trustsim -table all            # every simulation table
//	trustsim -table 4              # one table
//	trustsim -table 8 -reps 100 -seed 7 -format markdown
//	trustsim -tasks 50,100,200     # extra task-count rows
//
// Output is deterministic for a fixed -seed regardless of -workers.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"gridtrust"
	"gridtrust/internal/exp"
	"gridtrust/internal/prof"
	"gridtrust/internal/report"
	"gridtrust/internal/rng"
	"gridtrust/internal/sched"
	"gridtrust/internal/sim"
	"gridtrust/internal/trace"
	"gridtrust/internal/trust"
	"gridtrust/internal/workload"
)

func main() {
	var (
		table   = flag.String("table", "all", "table to reproduce: 4..9 or \"all\"")
		seed    = flag.Uint64("seed", 2002, "master random seed")
		reps    = flag.Int("reps", 40, "paired replications per cell")
		workers = flag.Int("workers", 0, "parallel workers (0 = GOMAXPROCS)")
		format  = flag.String("format", "ascii", "output format: ascii, markdown, csv or json")
		tasks   = flag.String("tasks", "50,100", "comma-separated task counts per table")
		config  = flag.String("config", "", "JSON scenario file to run instead of the paper tables")
		gantt   = flag.String("gantt", "", "render one run's execution timeline for a heuristic (mct, minmin or sufferage)")
		verbose = flag.Bool("v", false, "print per-table timing and significance")
		kernel  = flag.String("des", "fast", "DES kernel: fast (flat typed queue) or reference (closure queue); outputs are byte-identical")
		trustM  = flag.String("trust-model", "", "trust policy for the aware runs: "+strings.Join(trust.ModelNames(), ", ")+" (default: the paper engine)")
		cpuProf = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProf = flag.String("memprofile", "", "write a heap profile to this file on exit")
	)
	flag.Parse()
	if !trust.KnownModel(*trustM) {
		fatalf("unknown trust model %q (registered: %s)", *trustM, strings.Join(trust.ModelNames(), ", "))
	}
	k, err := sim.KernelByName(*kernel)
	if err != nil {
		fatalf("%v", err)
	}
	sim.SetKernel(k)
	stopProf, err := prof.Start(*cpuProf, *memProf)
	if err != nil {
		fatalf("%v", err)
	}
	defer stopProf()

	// SIGINT/SIGTERM cancel the experiment grid cleanly: in-flight
	// replications finish and the pool drains before exit.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *gantt != "" {
		if err := runGantt(*gantt, *seed); err != nil {
			fatalf("%v", err)
		}
		return
	}

	if *config != "" {
		if err := runConfig(ctx, *config, *seed, *reps, *workers, *format, *trustM); err != nil {
			fatalf("%v", err)
		}
		return
	}

	taskCounts, err := parseInts(*tasks)
	if err != nil {
		fatalf("bad -tasks: %v", err)
	}

	ids, err := selectTables(*table)
	if err != nil {
		fatalf("%v", err)
	}

	opts := gridtrust.SimOptions{
		Seed: *seed, Reps: *reps, Workers: *workers, TaskCounts: taskCounts,
		TrustModel: *trustM,
	}
	if *verbose {
		opts.OnCell = func(p exp.Progress) {
			fmt.Fprintf(os.Stderr, "trustsim: [%d/%d] %s: %d reps, %s work\n",
				p.Done, p.Cells, p.Cell, p.Reps, p.Work.Round(time.Millisecond))
		}
	}
	// One engine grid schedules every (table, task count) cell of the
	// requested tables on a shared pool.
	start := time.Now()
	results, err := gridtrust.RunSimTables(ctx, ids, opts)
	if err != nil {
		fatalf("%v", err)
	}
	for _, res := range results {
		out, err := res.Render().Render(*format)
		if err != nil {
			fatalf("render: %v", err)
		}
		fmt.Print(out)
		if *verbose {
			for _, c := range res.Cells {
				fmt.Printf("  [%d tasks] improvement %.2f%% (paired diff CI95 ±%.2f, significant=%v)\n",
					c.Tasks, c.ImprovementPct, c.CompletionCI95, c.Significant)
			}
		}
		fmt.Println()
	}
	if *verbose {
		fmt.Printf("(%d tables, %d reps, %s)\n", len(results), *reps, time.Since(start).Round(time.Millisecond))
	}
}

// runConfig runs every scenario of a JSON config file as one comparison
// grid on a shared pool and prints one result table.
func runConfig(ctx context.Context, path string, seed uint64, reps, workers int, format, trustModel string) error {
	scenarios, err := sim.LoadScenarios(path)
	if err != nil {
		return err
	}
	tb := report.NewTable(fmt.Sprintf("Scenarios from %s (%d reps, seed %d)", path, reps, seed),
		"scenario", "util (unaware)", "avg completion (unaware)", "avg completion (aware)", "improvement", "significant")
	cells := make([]sim.CompareCell, len(scenarios))
	for i, sc := range scenarios {
		if trustModel != "" {
			sc.TrustModel = trustModel
		}
		cells[i] = sim.CompareCell{Name: sc.Name, Scenario: sc}
	}
	cmps, err := sim.CompareGrid(ctx, cells, sim.GridOptions{Seed: seed, Reps: reps, Workers: workers})
	if err != nil {
		return err
	}
	for i, cmp := range cmps {
		tb.AddRow(cells[i].Name,
			report.Fraction(cmp.Unaware.Utilization.Mean(), 1),
			report.Seconds(cmp.Unaware.AvgCompletion.Mean()),
			report.Seconds(cmp.Aware.AvgCompletion.Mean()),
			report.Percent(cmp.ImprovementPercent(), 2),
			fmt.Sprintf("%v", cmp.CompletionPairs.Significant()),
		)
	}
	out, err := tb.Render(format)
	if err != nil {
		return err
	}
	fmt.Print(out)
	return nil
}

// runGantt executes one small paper scenario under both policies and
// prints the execution timelines side by side.
func runGantt(heuristic string, seed uint64) error {
	sc := sim.PaperScenario(heuristic, 20, workload.Inconsistent)
	if err := sc.Validate(); err != nil {
		return err
	}
	w, err := workload.NewWorkload(rng.New(seed), sc.WorkloadSpec())
	if err != nil {
		return err
	}
	var tr trace.Trace // reused across the paired runs; Reset keeps capacity
	for _, policy := range []sched.Policy{
		sched.MustTrustUnaware(sc.FlatOverheadPct),
		sched.MustTrustAware(sc.TCWeight),
	} {
		tr.Reset()
		res, err := sim.RunTraced(sc, w, policy, &tr)
		if err != nil {
			return err
		}
		fmt.Printf("%s  (%s, 20 tasks, seed %d)  avg completion %s, makespan %s\n",
			policy.Name, heuristic, seed,
			report.Seconds(res.AvgCompletionTime), report.Seconds(res.Makespan))
		fmt.Print(tr.Gantt(sc.Machines, 72))
		fmt.Println()
	}
	return nil
}

// selectTables parses the -table flag.
func selectTables(s string) ([]gridtrust.TableID, error) {
	if s == "all" {
		return gridtrust.SimTables(), nil
	}
	n, err := strconv.Atoi(s)
	if err != nil || n < 4 || n > 9 {
		return nil, fmt.Errorf("-table must be 4..9 or \"all\", got %q", s)
	}
	return []gridtrust.TableID{gridtrust.TableID(n)}, nil
}

// parseInts parses a comma-separated list of positive ints.
func parseInts(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		v, err := strconv.Atoi(part)
		if err != nil || v <= 0 {
			return nil, fmt.Errorf("%q is not a positive integer", part)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty list")
	}
	return out, nil
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "trustsim: "+format+"\n", args...)
	os.Exit(1)
}
