// Command sweep runs the ablation studies DESIGN.md calls out, exploring
// the design space around the paper's fixed choices:
//
//	sweep -mode heuristics     # all nine heuristics, aware vs unaware
//	sweep -mode tcweight       # sensitivity to the "arbitrary" TC weight 15
//	sweep -mode heterogeneity  # LoLo/LoHi/HiLo/HiHi × consistency classes
//	sweep -mode batch          # batch-interval sensitivity (batch heuristics)
//	sweep -mode machines       # machine-count scaling
//	sweep -mode etsrule        # literal Table 1 F-row vs linear variant
//	sweep -mode rate           # arrival-rate (load) sensitivity
//	sweep -mode evolving       # evolving trust: incident-rate sensitivity
//	sweep -mode deadline       # QoS extension: deadline miss rates
//	sweep -mode staging        # data staging: rcp-when-trusted vs scp-always
//	sweep -mode fault          # machine churn × adversary injection
//	sweep -list                # enumerate the registered modes
//
// Every mode prints one row per configuration with the trust-aware
// improvement over the trust-unaware baseline on identical workloads.
//
// Each mode is a declarative list of cells executed by the experiment
// engine (internal/exp): all cells × replications run as one job stream
// over a single worker pool, results are bit-identical for a fixed -seed
// regardless of -workers, and SIGINT drains the grid cleanly.
//
// With -checkpoint <dir>, every completed cell is journalled to a
// write-ahead log under the directory as it finishes; re-running the same
// sweep against the directory restores finished cells from disk, executes
// only the missing ones, and prints byte-identical output.  An interrupted
// sweep (SIGINT) therefore resumes where it stopped:
//
//	sweep -mode machines -checkpoint /tmp/ck   # ^C partway through
//	sweep -mode machines -checkpoint /tmp/ck   # finishes the rest
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"gridtrust/internal/exp"
	"gridtrust/internal/fault"
	"gridtrust/internal/grid"
	"gridtrust/internal/prof"
	"gridtrust/internal/report"
	"gridtrust/internal/sim"
	"gridtrust/internal/stats"
	"gridtrust/internal/trust"
	"gridtrust/internal/workload"
)

type config struct {
	mode       string
	seed       uint64
	reps       int
	workers    int
	format     string
	tasks      int
	chart      bool
	verbose    bool
	trustModel string
	ck         *exp.Checkpoint
}

// sweepMode registers one -mode: its name, a one-line description for
// -list, and its runner.
type sweepMode struct {
	name        string
	description string
	run         func(context.Context, config) error
}

// modes is the registry driving -mode dispatch and -list, in display
// order.
var modes = []sweepMode{
	{"heuristics", "all nine heuristics, trust-aware vs unaware", sweepHeuristics},
	{"tcweight", "sensitivity to the paper's fixed TC weight 15", sweepTCWeight},
	{"heterogeneity", "LoLo/LoHi/HiLo/HiHi × consistency classes", sweepHeterogeneity},
	{"batch", "batch-interval sensitivity for the batch heuristics", sweepBatchInterval},
	{"machines", "machine-count scaling at constant per-machine load", sweepMachines},
	{"etsrule", "literal Table 1 F-row vs the linear ETS variant", sweepETSRule},
	{"rate", "arrival-rate (load) sensitivity", sweepRate},
	{"evolving", "evolving trust: incident-rate sensitivity", sweepEvolving},
	{"deadline", "QoS extension: deadline miss rates by slack", sweepDeadline},
	{"staging", "data staging: rcp-when-trusted vs scp-always", sweepStaging},
	{"fault", "machine churn × adversary injection, plus the collusion study", sweepFault},
	{"trustzoo", "every registered trust model vs every adversary environment, head-to-head", sweepTrustzoo},
}

func main() {
	var (
		mode    = flag.String("mode", "heuristics", "sweep mode (see -list)")
		list    = flag.Bool("list", false, "list the registered sweep modes and exit")
		seed    = flag.Uint64("seed", 2002, "master random seed")
		reps    = flag.Int("reps", 30, "paired replications per configuration")
		workers = flag.Int("workers", 0, "parallel workers (0 = GOMAXPROCS)")
		format  = flag.String("format", "ascii", "output format: ascii, markdown, csv or json")
		tasks   = flag.Int("tasks", 100, "tasks per run")
		chart   = flag.Bool("chart", false, "also render an improvement bar chart for scalar sweeps")
		verbose = flag.Bool("v", false, "print per-cell progress and timing to stderr")
		trustM  = flag.String("trust-model", "", "trust model driving the scheduler's decision view in scenario sweeps (default: the paper's static table; see -list)")
		ckDir   = flag.String("checkpoint", "", "checkpoint directory: journal completed cells and, on re-run, skip them (\"\" disables)")
		kernel  = flag.String("des", "fast", "DES kernel: fast (flat typed queue) or reference (closure queue); outputs are byte-identical")
		intra   = flag.Int("intra", 1, "intra-replication scan workers on the fast kernel (results identical for any value)")
		cpuProf = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProf = flag.String("memprofile", "", "write a heap profile to this file on exit")
	)
	flag.Parse()
	k, err := sim.KernelByName(*kernel)
	if err != nil {
		fmt.Fprintf(os.Stderr, "sweep: %v\n", err)
		os.Exit(1)
	}
	sim.SetKernel(k)
	sim.SetIntraWorkers(*intra)
	stopProf, err := prof.Start(*cpuProf, *memProf)
	if err != nil {
		fmt.Fprintf(os.Stderr, "sweep: %v\n", err)
		os.Exit(1)
	}
	if *list {
		for _, m := range modes {
			fmt.Printf("%-14s %s\n", m.name, m.description)
		}
		fmt.Println("\ntrust models (-trust-model):")
		for _, m := range trust.Models() {
			fmt.Printf("%-14s %s\n", m.Name, m.Description)
		}
		return
	}
	if !trust.KnownModel(*trustM) {
		fmt.Fprintf(os.Stderr, "sweep: unknown trust model %q (see -list)\n", *trustM)
		os.Exit(1)
	}
	cfg := config{mode: *mode, seed: *seed, reps: *reps, workers: *workers, format: *format,
		tasks: *tasks, chart: *chart, verbose: *verbose, trustModel: *trustM}
	if *ckDir != "" {
		ck, err := exp.OpenCheckpoint(*ckDir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "sweep: checkpoint: %v\n", err)
			os.Exit(1)
		}
		cfg.ck = ck
	}

	// SIGINT/SIGTERM cancel the grid: in-flight replications finish, the
	// pool drains, and the run reports the interruption instead of dying
	// mid-write.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	err = fmt.Errorf("unknown mode %q (try -list)", *mode)
	for _, m := range modes {
		if m.name == *mode {
			err = m.run(ctx, cfg)
			break
		}
	}
	if cfg.ck != nil {
		// Compact before closing so re-runs recover from one snapshot
		// instead of replaying the whole record tail; an interrupted run
		// keeps whatever cells it finished either way.
		if cerr := cfg.ck.Compact(); cerr != nil {
			fmt.Fprintf(os.Stderr, "sweep: checkpoint compact: %v\n", cerr)
		}
		if cerr := cfg.ck.Close(); cerr != nil {
			fmt.Fprintf(os.Stderr, "sweep: checkpoint close: %v\n", cerr)
		}
	}
	stopProf()
	if err != nil {
		fmt.Fprintf(os.Stderr, "sweep: %v\n", err)
		if ctx.Err() != nil {
			os.Exit(130)
		}
		os.Exit(1)
	}
}

// gridOptions builds the engine options shared by every mode, wiring the
// progress hook when -v is set.
func (cfg config) gridOptions() sim.GridOptions {
	opts := sim.GridOptions{Seed: cfg.seed, Reps: cfg.reps, Workers: cfg.workers}
	if cfg.ck != nil {
		opts.Checkpoint = cfg.ck
		// Tasks change cell contents without changing cell names (and
		// names collide across modes), so both go into the salt; seed and
		// reps are part of the cell key itself.  The trust model joins
		// only when set, keeping pre-zoo checkpoint directories readable.
		opts.CheckpointSalt = fmt.Sprintf("%s|tasks=%d", cfg.mode, cfg.tasks)
		if cfg.trustModel != "" {
			opts.CheckpointSalt += "|model=" + cfg.trustModel
		}
	}
	if cfg.verbose {
		opts.OnCell = func(p exp.Progress) {
			status := "ok"
			switch {
			case p.Err != nil:
				status = p.Err.Error()
			case p.Cached:
				status = "cached"
			}
			fmt.Fprintf(os.Stderr, "sweep: [%d/%d] %s: %d reps, %s work, %s\n",
				p.Done, p.Cells, p.Cell, p.Reps, p.Work.Round(time.Millisecond), status)
		}
	}
	return opts
}

// stampTrustModel applies the -trust-model selection to every scenario
// cell.  The empty name and the paper's own model both keep the static
// table-driven path (see sim.Scenario.TrustModel), so default invocations
// stay byte-identical to pre-zoo binaries.
func (cfg config) stampTrustModel(cells []sim.CompareCell) []sim.CompareCell {
	for i := range cells {
		cells[i].Scenario.TrustModel = cfg.trustModel
	}
	return cells
}

// compareSweep runs the cells as one grid and renders one standard metric
// row per cell (plus an optional chart series point).
func compareSweep(ctx context.Context, cfg config, tb *report.Table, series *report.Series, cells []sim.CompareCell) error {
	cmps, err := sim.CompareGrid(ctx, cfg.stampTrustModel(cells), cfg.gridOptions())
	if err != nil {
		return err
	}
	for i, cmp := range cmps {
		addRow(tb, cells[i].Name, cmp)
		if series != nil {
			series.AddPoint(cells[i].Name, cmp.ImprovementPercent())
		}
	}
	return emitWithChart(cfg, tb, series)
}

// addRow appends the standard metric row for a comparison.
func addRow(tb *report.Table, label string, cmp *sim.Comparison) {
	tb.AddRow(label,
		report.Fraction(cmp.Unaware.Utilization.Mean(), 1),
		report.Seconds(cmp.Unaware.AvgCompletion.Mean()),
		report.Seconds(cmp.Aware.AvgCompletion.Mean()),
		report.Percent(cmp.ImprovementPercent(), 2),
		fmt.Sprintf("%v", cmp.CompletionPairs.Significant()),
	)
}

func newSweepTable(title string, label string) *report.Table {
	tb := report.NewTable(title,
		label, "util (unaware)", "avg completion (unaware)", "avg completion (aware)", "improvement", "significant")
	return tb
}

func emit(cfg config, tb *report.Table) error {
	return emitWithChart(cfg, tb, nil)
}

// emitWithChart prints the table and, when -chart is set and a series was
// collected, an improvement bar chart underneath.
func emitWithChart(cfg config, tb *report.Table, series *report.Series) error {
	out, err := tb.Render(cfg.format)
	if err != nil {
		return err
	}
	fmt.Print(out)
	if cfg.chart && series != nil && series.Len() > 0 {
		chart, err := report.BarChart(series, 76)
		if err != nil {
			return err
		}
		fmt.Println()
		fmt.Print(chart)
	}
	fmt.Println()
	return nil
}

func sweepHeuristics(ctx context.Context, cfg config) error {
	tb := newSweepTable(fmt.Sprintf("Heuristic sweep (inconsistent LoLo, %d tasks)", cfg.tasks), "heuristic")
	immediate := []string{"olb", "met", "mct", "kpb", "sa"}
	batch := []string{"minmin", "maxmin", "sufferage", "duplex", "ga", "sanneal", "gsa"}
	var cells []sim.CompareCell
	for _, h := range immediate {
		sc := sim.PaperScenario("mct", cfg.tasks, workload.Inconsistent)
		sc.Heuristic, sc.Mode = h, sim.Immediate
		sc.Name = h
		cells = append(cells, sim.CompareCell{Name: h + " (immediate)", Scenario: sc})
	}
	for _, h := range batch {
		sc := sim.PaperScenario("minmin", cfg.tasks, workload.Inconsistent)
		sc.Heuristic, sc.Mode = h, sim.Batch
		sc.Name = h
		cells = append(cells, sim.CompareCell{Name: h + " (batch)", Scenario: sc})
	}
	return compareSweep(ctx, cfg, tb, nil, cells)
}

func sweepTCWeight(ctx context.Context, cfg config) error {
	tb := newSweepTable(
		fmt.Sprintf("TC-weight sweep (MCT, inconsistent LoLo, %d tasks; the paper fixes 15)", cfg.tasks),
		"TC weight")
	series := &report.Series{Name: "trust-aware improvement (%) by TC weight"}
	var cells []sim.CompareCell
	for _, w := range []float64{0, 5, 10, 15, 20, 25, 30, 50} {
		sc := sim.PaperScenario("mct", cfg.tasks, workload.Inconsistent)
		sc.TCWeight = w
		cells = append(cells, sim.CompareCell{Name: fmt.Sprintf("%g", w), Scenario: sc})
	}
	return compareSweep(ctx, cfg, tb, series, cells)
}

func sweepHeterogeneity(ctx context.Context, cfg config) error {
	tb := newSweepTable(
		fmt.Sprintf("Heterogeneity sweep (MCT, %d tasks)", cfg.tasks), "class")
	classes := []struct {
		name string
		het  workload.Heterogeneity
	}{
		{"LoLo", workload.LoLo}, {"LoHi", workload.LoHi},
		{"HiLo", workload.HiLo}, {"HiHi", workload.HiHi},
	}
	var cells []sim.CompareCell
	for _, cl := range classes {
		for _, cons := range []workload.Consistency{workload.Inconsistent, workload.Consistent, workload.SemiConsistent} {
			sc := sim.PaperScenario("mct", cfg.tasks, cons)
			sc.Heterogeneity = cl.het
			// Heavier classes need proportionally slower arrivals to
			// stay in the near-saturation regime.
			scale := (cl.het.TaskRange * cl.het.MachineRange) / (workload.LoLo.TaskRange * workload.LoLo.MachineRange)
			sc.ArrivalRate = sc.ArrivalRate / scale
			cells = append(cells, sim.CompareCell{Name: fmt.Sprintf("%s/%s", cl.name, cons), Scenario: sc})
		}
	}
	return compareSweep(ctx, cfg, tb, nil, cells)
}

func sweepBatchInterval(ctx context.Context, cfg config) error {
	tb := newSweepTable(
		fmt.Sprintf("Batch-interval sweep (Min-min & Sufferage, inconsistent LoLo, %d tasks)", cfg.tasks),
		"heuristic/interval")
	var cells []sim.CompareCell
	for _, h := range []string{"minmin", "sufferage"} {
		for _, bi := range []float64{12.5, 25, 50, 100, 200, 400} {
			sc := sim.PaperScenario(h, cfg.tasks, workload.Inconsistent)
			sc.BatchInterval = bi
			cells = append(cells, sim.CompareCell{Name: fmt.Sprintf("%s/%g s", h, bi), Scenario: sc})
		}
	}
	return compareSweep(ctx, cfg, tb, nil, cells)
}

func sweepMachines(ctx context.Context, cfg config) error {
	tb := newSweepTable(
		fmt.Sprintf("Machine-count sweep (MCT, inconsistent LoLo, %d tasks; the paper fixes 5)", cfg.tasks),
		"machines")
	var cells []sim.CompareCell
	for _, m := range []int{2, 5, 10, 20, 40} {
		sc := sim.PaperScenario("mct", cfg.tasks, workload.Inconsistent)
		sc.Machines = m
		// Keep per-machine load constant as the pool grows.
		sc.ArrivalRate = sc.ArrivalRate * float64(m) / 5
		cells = append(cells, sim.CompareCell{Name: fmt.Sprintf("%d", m), Scenario: sc})
	}
	return compareSweep(ctx, cfg, tb, nil, cells)
}

func sweepETSRule(ctx context.Context, cfg config) error {
	tb := newSweepTable(
		fmt.Sprintf("ETS-rule sweep (all paper heuristics, inconsistent LoLo, %d tasks)", cfg.tasks),
		"heuristic/rule")
	var cells []sim.CompareCell
	for _, h := range []string{"mct", "minmin", "sufferage"} {
		for _, rule := range []grid.ETSRule{grid.ETSTable1, grid.ETSLinear} {
			sc := sim.PaperScenario(h, cfg.tasks, workload.Inconsistent)
			sc.ETSRule = rule
			cells = append(cells, sim.CompareCell{Name: fmt.Sprintf("%s/%s", h, rule), Scenario: sc})
		}
	}
	return compareSweep(ctx, cfg, tb, nil, cells)
}

func sweepRate(ctx context.Context, cfg config) error {
	tb := newSweepTable(
		fmt.Sprintf("Arrival-rate sweep (MCT, inconsistent LoLo, %d tasks)", cfg.tasks),
		"rate (req/s)")
	series := &report.Series{Name: "trust-aware improvement (%) by arrival rate"}
	var cells []sim.CompareCell
	for _, r := range []float64{0.01, 0.02, 0.03, 0.04, 0.06, 0.1, 0.2} {
		sc := sim.PaperScenario("mct", cfg.tasks, workload.Inconsistent)
		sc.ArrivalRate = r
		cells = append(cells, sim.CompareCell{Name: fmt.Sprintf("%g", r), Scenario: sc})
	}
	return compareSweep(ctx, cfg, tb, series, cells)
}

// sweepEvolving varies the misbehaving domain's incident rate in the
// evolving-trust experiment and reports how decisively placements shift,
// as mean ± CI95 over cfg.reps independent replications.
func sweepEvolving(ctx context.Context, cfg config) error {
	tb := report.NewTable(
		fmt.Sprintf("Evolving-trust sweep (%d requests per run, mean ± CI95 over %d reps)", cfg.tasks, cfg.reps),
		"incident prob", "early share on bad RD", "late share on bad RD",
		"final trust (good/bad)", "incidents/rep (good/bad)")
	probs := []float64{0.05, 0.1, 0.2, 0.35, 0.5, 0.75}
	cells := make([]sim.EvolvingCell, len(probs))
	for i, prob := range probs {
		cells[i] = sim.EvolvingCell{
			Name: fmt.Sprintf("%.2f", prob),
			Config: sim.EvolvingConfig{
				Requests:               cfg.tasks,
				UnreliableIncidentProb: prob,
			},
		}
	}
	results, err := sim.EvolvingGrid(ctx, cells, cfg.gridOptions())
	if err != nil {
		return err
	}
	for i, res := range results {
		tb.AddRow(
			cells[i].Name,
			sharePlusMinus(res.EarlyShare),
			sharePlusMinus(res.LateShare),
			fmt.Sprintf("%.1f/%.1f", res.FinalTrustReliable.Mean(), res.FinalTrustUnreliable.Mean()),
			fmt.Sprintf("%.1f/%.1f", res.IncidentsReliable.Mean(), res.IncidentsUnreliable.Mean()),
		)
	}
	return emit(cfg, tb)
}

// sharePlusMinus formats a fraction aggregate as "mean% ± ci%".
func sharePlusMinus(r stats.Running) string {
	return fmt.Sprintf("%.1f%% ± %.1f%%", r.Mean()*100, r.CI95()*100)
}

// sweepDeadline attaches deadlines of varying slack and reports the miss
// rates of the trust-aware and trust-unaware schedulers — the QoS
// extension of DESIGN.md §6.
func sweepDeadline(ctx context.Context, cfg config) error {
	tb := report.NewTable(
		fmt.Sprintf("Deadline sweep (MCT, inconsistent LoLo, %d tasks)", cfg.tasks),
		"slack x mean EEC", "miss rate (unaware)", "miss rate (aware)", "improvement (avg completion)")
	slacks := []float64{2, 4, 8, 16, 32}
	cells := make([]sim.CompareCell, len(slacks))
	for i, slack := range slacks {
		sc := sim.PaperScenario("mct", cfg.tasks, workload.Inconsistent)
		sc.DeadlineSlack = slack
		cells[i] = sim.CompareCell{Name: fmt.Sprintf("%g", slack), Scenario: sc}
	}
	cmps, err := sim.CompareGrid(ctx, cfg.stampTrustModel(cells), cfg.gridOptions())
	if err != nil {
		return err
	}
	for i, cmp := range cmps {
		tb.AddRow(
			cells[i].Name,
			report.Fraction(cmp.Unaware.MissRate.Mean(), 1),
			report.Fraction(cmp.Aware.MissRate.Mean(), 1),
			report.Percent(cmp.ImprovementPercent(), 2),
		)
	}
	return emit(cfg, tb)
}

// sweepStaging varies the per-request input size and reports the gain of
// trusting rcp transfers over blanket scp — the experiment connecting
// Tables 2-3 to the scheduling story.
func sweepStaging(ctx context.Context, cfg config) error {
	tb := report.NewTable(
		fmt.Sprintf("Data-staging sweep (greedy MCT, %d requests, 100 Mbps link)", cfg.tasks),
		"max input MB", "improvement", "plain-transfer share")
	sizes := []float64{10, 100, 500, 1000, 2000}
	cells := make([]sim.StagingCell, len(sizes))
	for i, maxMB := range sizes {
		cells[i] = sim.StagingCell{
			Name:   fmt.Sprintf("%g", maxMB),
			Config: sim.StagingConfig{Requests: cfg.tasks, MaxInputMB: maxMB},
		}
	}
	results, err := sim.StagingGrid(ctx, cells, cfg.gridOptions())
	if err != nil {
		return err
	}
	for i, res := range results {
		tb.AddRow(
			cells[i].Name,
			report.Percent(res.Improvement.Mean(), 2),
			report.Fraction(res.PlainShare.Mean(), 1),
		)
	}
	return emit(cfg, tb)
}

// sweepFault renders two tables.  The first sweeps machine churn (MTBF)
// × adversary fraction through the DES comparison: makespan inflation,
// crash/requeue counts and the decision-table corruption whitewashers
// cause.  The second runs the recommender-collusion study across liar
// fractions, contrasting the unweighted reputation formula with the
// R-weighted + purging defense the paper's Section 3 machinery provides.
func sweepFault(ctx context.Context, cfg config) error {
	tb := report.NewTable(
		fmt.Sprintf("Fault sweep (MCT, inconsistent LoLo, %d tasks)", cfg.tasks),
		"mtbf/adversary", "makespan (aware)", "failures", "requeues",
		"wasted work", "table error", "improvement")
	base := sim.PaperScenario("mct", cfg.tasks, workload.Inconsistent)
	cells := sim.ChurnCells(base, []float64{0, 2000, 1000}, []float64{0, 0.25, 0.5})
	cmps, err := sim.CompareGrid(ctx, cfg.stampTrustModel(cells), cfg.gridOptions())
	if err != nil {
		return err
	}
	for i, cmp := range cmps {
		tb.AddRow(cells[i].Name,
			report.Seconds(cmp.Aware.Makespan.Mean()),
			fmt.Sprintf("%.1f", cmp.Aware.Failures.Mean()),
			fmt.Sprintf("%.1f", cmp.Aware.Requeues.Mean()),
			report.Seconds(cmp.Aware.WastedWork.Mean()),
			fmt.Sprintf("%.2f", cmp.Aware.TrustTableError.Mean()),
			report.Percent(cmp.ImprovementPercent(), 2),
		)
	}
	if err := emit(cfg, tb); err != nil {
		return err
	}

	tb2 := report.NewTable(
		fmt.Sprintf("Recommender-collusion study (mean ± CI95 over %d reps)", cfg.reps),
		"liar fraction/variant", "trust error", "degradation", "bad share", "liar R")
	scells := sim.FaultStudyCells([]float64{0.25, 0.5, 0.75})
	results, err := sim.FaultStudyGrid(ctx, scells, cfg.gridOptions())
	if err != nil {
		return err
	}
	for i, res := range results {
		tb2.AddRow(scells[i].Name,
			fmt.Sprintf("%.2f ± %.2f", res.TrustError.Mean(), res.TrustError.CI95()),
			fmt.Sprintf("%.1f%% ± %.1f%%", res.DegradationPct.Mean(), res.DegradationPct.CI95()),
			sharePlusMinus(res.BadShare),
			fmt.Sprintf("%.2f", res.MeanLiarR.Mean()),
		)
	}
	return emit(cfg, tb2)
}

// sweepTrustzoo renders two tables.  The first is the head-to-head zoo:
// every registered trust model against every adversary environment
// (lying cliques, whitewashers, oscillators, Weibull churn) in the closed
// recommender loop, with trust error and placement degradation as mean ±
// CI95.  The second drops each model into the DES scheduler itself —
// whitewashing adversaries plus churn over the paper's MCT workload —
// and reports the makespan each model's decision view produces, relative
// to the fault-free baseline.
func sweepTrustzoo(ctx context.Context, cfg config) error {
	models := trust.ModelNames()
	tb := report.NewTable(
		fmt.Sprintf("Trust-model zoo (mean ± CI95 over %d reps)", cfg.reps),
		"scenario/model", "trust error", "degradation", "bad share")
	cells := sim.ZooCells(models, fault.ZooScenarios())
	results, err := sim.ZooGrid(ctx, cells, cfg.gridOptions())
	if err != nil {
		return err
	}
	for i, res := range results {
		tb.AddRow(cells[i].Name,
			fmt.Sprintf("%.2f ± %.2f", res.TrustError.Mean(), res.TrustError.CI95()),
			fmt.Sprintf("%.1f%% ± %.1f%%", res.DegradationPct.Mean(), res.DegradationPct.CI95()),
			sharePlusMinus(res.BadShare),
		)
	}
	if err := emit(cfg, tb); err != nil {
		return err
	}

	tb2 := report.NewTable(
		fmt.Sprintf("Model-driven scheduling under adversaries (MCT, %d tasks, whitewash + churn)", cfg.tasks),
		"model", "makespan (aware)", "vs baseline", "table error", "improvement")
	base := sim.PaperScenario("mct", cfg.tasks, workload.Inconsistent)
	// Pin the domain count: the paper spec draws NumRDs from [1,4] per
	// replication, under which a 0.5 adversary fraction often selects
	// zero whitewashing domains.  Four RDs guarantee the adversary
	// environment actually exists in (almost) every replication.
	base.NumRDs = 4
	clean := base
	clean.Name = base.Name + "/clean"
	mcells := []sim.CompareCell{{Name: "baseline (no faults)", Scenario: clean}}
	for _, m := range models {
		sc := base
		sc.Fault = fault.Plan{AdversaryFraction: 0.5, MTBF: 2000, MTTR: 200}
		sc.TrustModel = m
		sc.Name = fmt.Sprintf("%s/model=%s", base.Name, m)
		mcells = append(mcells, sim.CompareCell{Name: m, Scenario: sc})
	}
	mcmps, err := sim.CompareGrid(ctx, mcells, cfg.gridOptions())
	if err != nil {
		return err
	}
	baseMakespan := mcmps[0].Aware.Makespan.Mean()
	for i, cmp := range mcmps {
		m := cmp.Aware.Makespan
		tb2.AddRow(mcells[i].Name,
			fmt.Sprintf("%s ± %.0f", report.Seconds(m.Mean()), m.CI95()),
			report.Percent((m.Mean()-baseMakespan)/baseMakespan*100, 2),
			fmt.Sprintf("%.2f ± %.2f", cmp.Aware.TrustTableError.Mean(), cmp.Aware.TrustTableError.CI95()),
			report.Percent(cmp.ImprovementPercent(), 2),
		)
	}
	return emit(cfg, tb2)
}
