// Command sweep runs the ablation studies DESIGN.md calls out, exploring
// the design space around the paper's fixed choices:
//
//	sweep -mode heuristics     # all nine heuristics, aware vs unaware
//	sweep -mode tcweight       # sensitivity to the "arbitrary" TC weight 15
//	sweep -mode heterogeneity  # LoLo/LoHi/HiLo/HiHi × consistency classes
//	sweep -mode batch          # batch-interval sensitivity (batch heuristics)
//	sweep -mode machines       # machine-count scaling
//	sweep -mode etsrule        # literal Table 1 F-row vs linear variant
//	sweep -mode rate           # arrival-rate (load) sensitivity
//	sweep -mode evolving       # evolving trust: incident-rate sensitivity
//	sweep -mode deadline       # QoS extension: deadline miss rates
//	sweep -mode staging        # data staging: rcp-when-trusted vs scp-always
//
// Every mode prints one row per configuration with the trust-aware
// improvement over the trust-unaware baseline on identical workloads.
package main

import (
	"flag"
	"fmt"
	"os"

	"gridtrust/internal/grid"
	"gridtrust/internal/report"
	"gridtrust/internal/rng"
	"gridtrust/internal/sim"
	"gridtrust/internal/workload"
)

type config struct {
	seed    uint64
	reps    int
	workers int
	format  string
	tasks   int
	chart   bool
}

func main() {
	var (
		mode    = flag.String("mode", "heuristics", "sweep mode: heuristics, tcweight, heterogeneity, batch, machines, etsrule, rate, evolving, deadline or staging")
		seed    = flag.Uint64("seed", 2002, "master random seed")
		reps    = flag.Int("reps", 30, "paired replications per configuration")
		workers = flag.Int("workers", 0, "parallel workers (0 = GOMAXPROCS)")
		format  = flag.String("format", "ascii", "output format: ascii, markdown or csv")
		tasks   = flag.Int("tasks", 100, "tasks per run")
		chart   = flag.Bool("chart", false, "also render an improvement bar chart for scalar sweeps")
	)
	flag.Parse()
	cfg := config{seed: *seed, reps: *reps, workers: *workers, format: *format, tasks: *tasks, chart: *chart}

	var err error
	switch *mode {
	case "heuristics":
		err = sweepHeuristics(cfg)
	case "tcweight":
		err = sweepTCWeight(cfg)
	case "heterogeneity":
		err = sweepHeterogeneity(cfg)
	case "batch":
		err = sweepBatchInterval(cfg)
	case "machines":
		err = sweepMachines(cfg)
	case "etsrule":
		err = sweepETSRule(cfg)
	case "rate":
		err = sweepRate(cfg)
	case "evolving":
		err = sweepEvolving(cfg)
	case "deadline":
		err = sweepDeadline(cfg)
	case "staging":
		err = sweepStaging(cfg)
	default:
		err = fmt.Errorf("unknown mode %q", *mode)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "sweep: %v\n", err)
		os.Exit(1)
	}
}

// run executes one paired comparison and returns the result row.
func run(cfg config, sc sim.Scenario) (*sim.Comparison, error) {
	return sim.Compare(sc, cfg.seed, cfg.reps, cfg.workers)
}

// addRow appends the standard metric row for a comparison, and the point
// to an optional improvement series for charting.
func addRowSeries(tb *report.Table, series *report.Series, label string, cmp *sim.Comparison) {
	addRow(tb, label, cmp)
	if series != nil {
		series.AddPoint(label, cmp.ImprovementPercent())
	}
}

// addRow appends the standard metric row for a comparison.
func addRow(tb *report.Table, label string, cmp *sim.Comparison) {
	tb.AddRow(label,
		report.Fraction(cmp.Unaware.Utilization.Mean(), 1),
		report.Seconds(cmp.Unaware.AvgCompletion.Mean()),
		report.Seconds(cmp.Aware.AvgCompletion.Mean()),
		report.Percent(cmp.ImprovementPercent(), 2),
		fmt.Sprintf("%v", cmp.CompletionPairs.Significant()),
	)
}

func newSweepTable(title string, label string) *report.Table {
	tb := report.NewTable(title,
		label, "util (unaware)", "avg completion (unaware)", "avg completion (aware)", "improvement", "significant")
	return tb
}

func emit(cfg config, tb *report.Table) error {
	return emitWithChart(cfg, tb, nil)
}

// emitWithChart prints the table and, when -chart is set and a series was
// collected, an improvement bar chart underneath.
func emitWithChart(cfg config, tb *report.Table, series *report.Series) error {
	out, err := tb.Render(cfg.format)
	if err != nil {
		return err
	}
	fmt.Print(out)
	if cfg.chart && series != nil && series.Len() > 0 {
		chart, err := report.BarChart(series, 76)
		if err != nil {
			return err
		}
		fmt.Println()
		fmt.Print(chart)
	}
	fmt.Println()
	return nil
}

func sweepHeuristics(cfg config) error {
	tb := newSweepTable(fmt.Sprintf("Heuristic sweep (inconsistent LoLo, %d tasks)", cfg.tasks), "heuristic")
	immediate := []string{"olb", "met", "mct", "kpb", "sa"}
	batch := []string{"minmin", "maxmin", "sufferage", "duplex", "ga", "sanneal", "gsa"}
	for _, h := range immediate {
		sc := sim.PaperScenario("mct", cfg.tasks, workload.Inconsistent)
		sc.Heuristic, sc.Mode = h, sim.Immediate
		sc.Name = h
		cmp, err := run(cfg, sc)
		if err != nil {
			return err
		}
		addRow(tb, h+" (immediate)", cmp)
	}
	for _, h := range batch {
		sc := sim.PaperScenario("minmin", cfg.tasks, workload.Inconsistent)
		sc.Heuristic, sc.Mode = h, sim.Batch
		sc.Name = h
		cmp, err := run(cfg, sc)
		if err != nil {
			return err
		}
		addRow(tb, h+" (batch)", cmp)
	}
	return emit(cfg, tb)
}

func sweepTCWeight(cfg config) error {
	tb := newSweepTable(
		fmt.Sprintf("TC-weight sweep (MCT, inconsistent LoLo, %d tasks; the paper fixes 15)", cfg.tasks),
		"TC weight")
	series := &report.Series{Name: "trust-aware improvement (%) by TC weight"}
	for _, w := range []float64{0, 5, 10, 15, 20, 25, 30, 50} {
		sc := sim.PaperScenario("mct", cfg.tasks, workload.Inconsistent)
		sc.TCWeight = w
		cmp, err := run(cfg, sc)
		if err != nil {
			return err
		}
		addRowSeries(tb, series, fmt.Sprintf("%g", w), cmp)
	}
	return emitWithChart(cfg, tb, series)
}

func sweepHeterogeneity(cfg config) error {
	tb := newSweepTable(
		fmt.Sprintf("Heterogeneity sweep (MCT, %d tasks)", cfg.tasks), "class")
	classes := []struct {
		name string
		het  workload.Heterogeneity
	}{
		{"LoLo", workload.LoLo}, {"LoHi", workload.LoHi},
		{"HiLo", workload.HiLo}, {"HiHi", workload.HiHi},
	}
	for _, cl := range classes {
		for _, cons := range []workload.Consistency{workload.Inconsistent, workload.Consistent, workload.SemiConsistent} {
			sc := sim.PaperScenario("mct", cfg.tasks, cons)
			sc.Heterogeneity = cl.het
			// Heavier classes need proportionally slower arrivals to
			// stay in the near-saturation regime.
			scale := (cl.het.TaskRange * cl.het.MachineRange) / (workload.LoLo.TaskRange * workload.LoLo.MachineRange)
			sc.ArrivalRate = sc.ArrivalRate / scale
			cmp, err := run(cfg, sc)
			if err != nil {
				return err
			}
			addRow(tb, fmt.Sprintf("%s/%s", cl.name, cons), cmp)
		}
	}
	return emit(cfg, tb)
}

func sweepBatchInterval(cfg config) error {
	tb := newSweepTable(
		fmt.Sprintf("Batch-interval sweep (Min-min & Sufferage, inconsistent LoLo, %d tasks)", cfg.tasks),
		"heuristic/interval")
	for _, h := range []string{"minmin", "sufferage"} {
		for _, bi := range []float64{12.5, 25, 50, 100, 200, 400} {
			sc := sim.PaperScenario(h, cfg.tasks, workload.Inconsistent)
			sc.BatchInterval = bi
			cmp, err := run(cfg, sc)
			if err != nil {
				return err
			}
			addRow(tb, fmt.Sprintf("%s/%g s", h, bi), cmp)
		}
	}
	return emit(cfg, tb)
}

func sweepMachines(cfg config) error {
	tb := newSweepTable(
		fmt.Sprintf("Machine-count sweep (MCT, inconsistent LoLo, %d tasks; the paper fixes 5)", cfg.tasks),
		"machines")
	for _, m := range []int{2, 5, 10, 20, 40} {
		sc := sim.PaperScenario("mct", cfg.tasks, workload.Inconsistent)
		sc.Machines = m
		// Keep per-machine load constant as the pool grows.
		sc.ArrivalRate = sc.ArrivalRate * float64(m) / 5
		cmp, err := run(cfg, sc)
		if err != nil {
			return err
		}
		addRow(tb, fmt.Sprintf("%d", m), cmp)
	}
	return emit(cfg, tb)
}

func sweepETSRule(cfg config) error {
	tb := newSweepTable(
		fmt.Sprintf("ETS-rule sweep (all paper heuristics, inconsistent LoLo, %d tasks)", cfg.tasks),
		"heuristic/rule")
	for _, h := range []string{"mct", "minmin", "sufferage"} {
		for _, rule := range []grid.ETSRule{grid.ETSTable1, grid.ETSLinear} {
			sc := sim.PaperScenario(h, cfg.tasks, workload.Inconsistent)
			sc.ETSRule = rule
			cmp, err := run(cfg, sc)
			if err != nil {
				return err
			}
			addRow(tb, fmt.Sprintf("%s/%s", h, rule), cmp)
		}
	}
	return emit(cfg, tb)
}

func sweepRate(cfg config) error {
	tb := newSweepTable(
		fmt.Sprintf("Arrival-rate sweep (MCT, inconsistent LoLo, %d tasks)", cfg.tasks),
		"rate (req/s)")
	series := &report.Series{Name: "trust-aware improvement (%) by arrival rate"}
	for _, r := range []float64{0.01, 0.02, 0.03, 0.04, 0.06, 0.1, 0.2} {
		sc := sim.PaperScenario("mct", cfg.tasks, workload.Inconsistent)
		sc.ArrivalRate = r
		cmp, err := run(cfg, sc)
		if err != nil {
			return err
		}
		addRowSeries(tb, series, fmt.Sprintf("%g", r), cmp)
	}
	return emitWithChart(cfg, tb, series)
}

// sweepEvolving varies the misbehaving domain's incident rate in the
// evolving-trust experiment and reports how decisively placements shift.
func sweepEvolving(cfg config) error {
	tb := report.NewTable(
		fmt.Sprintf("Evolving-trust sweep (%d requests per run)", cfg.tasks),
		"incident prob", "early share on bad RD", "late share on bad RD",
		"final trust (good/bad)", "incidents (good/bad)")
	for _, prob := range []float64{0.05, 0.1, 0.2, 0.35, 0.5, 0.75} {
		res, err := sim.RunEvolving(sim.EvolvingConfig{
			Requests:               cfg.tasks,
			UnreliableIncidentProb: prob,
		}, rng.New(cfg.seed))
		if err != nil {
			return err
		}
		tb.AddRow(
			fmt.Sprintf("%.2f", prob),
			report.Fraction(res.EarlyUnreliableShare, 1),
			report.Fraction(res.LateUnreliableShare, 1),
			fmt.Sprintf("%v/%v", res.FinalTrustReliable, res.FinalTrustUnreliable),
			fmt.Sprintf("%d/%d", res.Incidents[sim.ReliableRD], res.Incidents[sim.UnreliableRD]),
		)
	}
	return emit(cfg, tb)
}

// sweepDeadline attaches deadlines of varying slack and reports the miss
// rates of the trust-aware and trust-unaware schedulers — the QoS
// extension of DESIGN.md §6.
func sweepDeadline(cfg config) error {
	tb := report.NewTable(
		fmt.Sprintf("Deadline sweep (MCT, inconsistent LoLo, %d tasks)", cfg.tasks),
		"slack x mean EEC", "miss rate (unaware)", "miss rate (aware)", "improvement (avg completion)")
	for _, slack := range []float64{2, 4, 8, 16, 32} {
		sc := sim.PaperScenario("mct", cfg.tasks, workload.Inconsistent)
		sc.DeadlineSlack = slack
		cmp, err := run(cfg, sc)
		if err != nil {
			return err
		}
		tb.AddRow(
			fmt.Sprintf("%g", slack),
			report.Fraction(cmp.Unaware.MissRate.Mean(), 1),
			report.Fraction(cmp.Aware.MissRate.Mean(), 1),
			report.Percent(cmp.ImprovementPercent(), 2),
		)
	}
	return emit(cfg, tb)
}

// sweepStaging varies the per-request input size and reports the gain of
// trusting rcp transfers over blanket scp — the experiment connecting
// Tables 2-3 to the scheduling story.
func sweepStaging(cfg config) error {
	tb := report.NewTable(
		fmt.Sprintf("Data-staging sweep (greedy MCT, %d requests, 100 Mbps link)", cfg.tasks),
		"max input MB", "improvement", "plain-transfer share")
	for _, maxMB := range []float64{10, 100, 500, 1000, 2000} {
		imp, plain, err := sim.StagingSeries(sim.StagingConfig{
			Requests: cfg.tasks, MaxInputMB: maxMB,
		}, cfg.seed, cfg.reps)
		if err != nil {
			return err
		}
		tb.AddRow(
			fmt.Sprintf("%g", maxMB),
			report.Percent(imp.Mean(), 2),
			report.Fraction(plain.Mean(), 1),
		)
	}
	return emit(cfg, tb)
}
