// Command reportgen regenerates every experiment of the reproduction —
// the paper's Tables 1-9 plus this repository's ablations — as a single
// self-contained markdown document on stdout.
//
// Usage:
//
//	reportgen -reps 100 -seed 2002 > report.md
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"gridtrust/internal/exp"
	"gridtrust/internal/sim"
)

func main() {
	var (
		seed    = flag.Uint64("seed", 2002, "master random seed")
		reps    = flag.Int("reps", 40, "replications per cell")
		workers = flag.Int("workers", 0, "parallel workers (0 = GOMAXPROCS)")
		verbose = flag.Bool("v", false, "print per-cell progress to stderr")
	)
	flag.Parse()
	// SIGINT/SIGTERM cancel the experiment grid cleanly instead of
	// leaving a truncated document behind.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	opts := sim.ReportOptions{Seed: *seed, Reps: *reps, Workers: *workers}
	if *verbose {
		opts.OnCell = func(p exp.Progress) {
			fmt.Fprintf(os.Stderr, "reportgen: [%d/%d] %s (%s work)\n",
				p.Done, p.Cells, p.Cell, p.Work.Round(time.Millisecond))
		}
	}
	out := bufio.NewWriter(os.Stdout)
	defer out.Flush()
	if err := sim.WriteFullReport(ctx, out, opts); err != nil {
		fmt.Fprintf(os.Stderr, "reportgen: %v\n", err)
		os.Exit(1)
	}
}
