// Command reportgen regenerates every experiment of the reproduction —
// the paper's Tables 1-9 plus this repository's ablations — as a single
// self-contained markdown document on stdout.
//
// Usage:
//
//	reportgen -reps 100 -seed 2002 > report.md
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"gridtrust/internal/sim"
)

func main() {
	var (
		seed    = flag.Uint64("seed", 2002, "master random seed")
		reps    = flag.Int("reps", 40, "replications per cell")
		workers = flag.Int("workers", 0, "parallel workers (0 = GOMAXPROCS)")
	)
	flag.Parse()
	out := bufio.NewWriter(os.Stdout)
	defer out.Flush()
	if err := sim.WriteFullReport(out, sim.ReportOptions{
		Seed: *seed, Reps: *reps, Workers: *workers,
	}); err != nil {
		fmt.Fprintf(os.Stderr, "reportgen: %v\n", err)
		os.Exit(1)
	}
}
