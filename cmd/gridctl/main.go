// Command gridctl is the command-line client for gridtrustd: it submits
// tasks, reports outcomes and queries daemon statistics over the rmswire
// protocol.
//
// Usage:
//
//	gridctl -addr 127.0.0.1:7431 submit -client 0 -activities 0,1 -rtl E -eec 100,110,95
//	gridctl -addr 127.0.0.1:7431 report -placement 3 -outcome 5.5
//	gridctl -addr 127.0.0.1:7431 stats
//	gridctl -addr 127.0.0.1:7431 metrics        # counters, gauges, latency histograms
//	gridctl -addr 127.0.0.1:7431 metrics -format json
//	gridctl -addr 127.0.0.1:7431 health         # readiness: conns, in-flight, journal, drain state
//	gridctl -addr 127.0.0.1:7431 drain          # graceful shutdown: finish in-flight, checkpoint, exit
//	gridctl -addr 127.0.0.1:7431 checkpoint     # snapshot + compact the daemon's WAL
//	gridctl wal-info -data /var/lib/gridtrustd  # offline: inspect a WAL directory
//	gridctl wal-dump -data /var/lib/gridtrustd  # offline: print every live record
//
// The wal-* subcommands read the log directory directly (read-only, safe
// while the daemon is stopped); checkpoint talks to a running daemon.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"gridtrust/internal/grid"
	"gridtrust/internal/rmswire"
	"gridtrust/internal/wal"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7431", "gridtrustd address")
	timeout := flag.Duration("timeout", rmswire.DefaultDialTimeout, "dial and per-op timeout")
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		usage()
	}

	// Offline subcommands never dial.
	switch args[0] {
	case "wal-info":
		if err := cmdWALInfo(args[1:]); err != nil {
			fatalf("%v", err)
		}
		return
	case "wal-dump":
		if err := cmdWALDump(args[1:]); err != nil {
			fatalf("%v", err)
		}
		return
	case "fleet":
		// Fleet commands dial every shard from the config themselves.
		if err := cmdFleet(args[1:], *timeout); err != nil {
			fatalf("%v", err)
		}
		return
	}

	client, err := rmswire.DialTimeout(*addr, *timeout)
	if err != nil {
		fatalf("%v", err)
	}
	defer client.Close()
	client.Timeout = *timeout

	switch args[0] {
	case "submit":
		err = cmdSubmit(client, args[1:])
	case "report":
		err = cmdReport(client, args[1:])
	case "stats":
		err = cmdStats(client)
	case "metrics":
		err = cmdMetrics(client, args[1:])
	case "checkpoint":
		err = cmdCheckpoint(client)
	case "health":
		err = cmdHealth(client)
	case "drain":
		err = cmdDrain(client)
	default:
		usage()
	}
	if err != nil {
		fatalf("%v", err)
	}
}

func cmdSubmit(client *rmswire.Client, args []string) error {
	fs := flag.NewFlagSet("submit", flag.ExitOnError)
	clientID := fs.Int("client", 0, "client id")
	activities := fs.String("activities", "0", "comma-separated activity ids (0=compute,1=storage,2=print,3=display,4=network)")
	rtl := fs.String("rtl", "C", "required trust level A-F")
	eec := fs.String("eec", "", "comma-separated expected execution costs, one per machine")
	now := fs.Float64("now", 0, "submission time")
	if err := fs.Parse(args); err != nil {
		return err
	}
	acts, err := parseActivities(*activities)
	if err != nil {
		return err
	}
	level, err := grid.ParseLevel(*rtl)
	if err != nil {
		return err
	}
	costs, err := parseFloats(*eec)
	if err != nil {
		return fmt.Errorf("bad -eec: %w", err)
	}
	p, err := client.Submit(grid.ClientID(*clientID), acts, level, costs, *now)
	if err != nil {
		return err
	}
	fmt.Printf("placement %d: machine %d (RD %d)  OTL=%s TC=%d  EEC=%.1f ESC=%.1f ECC=%.1f  start=%.1f finish=%.1f\n",
		p.ID, p.Machine, p.RD, p.OTL, p.TC, p.EEC, p.ESC, p.ECC, p.Start, p.Finish)
	return nil
}

func cmdReport(client *rmswire.Client, args []string) error {
	fs := flag.NewFlagSet("report", flag.ExitOnError)
	placement := fs.Uint64("placement", 0, "placement id from submit")
	outcome := fs.Float64("outcome", 6, "observed behaviour on [1,6]")
	now := fs.Float64("now", 0, "report time")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if err := client.Report(*placement, *outcome, *now); err != nil {
		return err
	}
	fmt.Printf("reported outcome %.1f for placement %d\n", *outcome, *placement)
	return nil
}

func cmdStats(client *rmswire.Client) error {
	st, err := client.Stats()
	if err != nil {
		return err
	}
	fmt.Printf("placed:            %d\n", st.Placed)
	fmt.Printf("open placements:   %d\n", st.OpenPlacements)
	fmt.Printf("agents processed:  %d (committed %d, rejected %d)\n",
		st.AgentsProcessed, st.AgentsCommitted, st.AgentsRejected)
	fmt.Printf("trust table:       version %d, %d entries\n", st.TableVersion, st.TableEntries)
	return nil
}

func cmdCheckpoint(client *rmswire.Client) error {
	info, err := client.Checkpoint()
	if err != nil {
		return err
	}
	fmt.Printf("checkpointed: %d records compacted, boundary seq %d, %d live segment(s)\n",
		info.Compacted, info.Boundary, info.Segments)
	return nil
}

func cmdHealth(client *rmswire.Client) error {
	h, err := client.Health()
	if err != nil {
		return err
	}
	limit := func(n int) string {
		if n <= 0 {
			return "unlimited"
		}
		return strconv.Itoa(n)
	}
	fmt.Printf("status:            %s\n", h.Status)
	// Monotonic uptime plus the instance stamp: a poller that sees uptime
	// decrease or the instance change knows the daemon restarted, even if
	// the restart happened between polls.
	fmt.Printf("uptime:            %.3fs (instance %d, metrics seq %d)\n",
		float64(h.UptimeMS)/1000, h.StartUnixNanos, h.MetricsSeq)
	fmt.Printf("topology:          %d machines, %d clients\n", h.TopologyMachines, h.TopologyClients)
	fmt.Printf("connections:       %d (limit %s)\n", h.Conns, limit(h.MaxConns))
	fmt.Printf("in-flight:         %d (limit %s)\n", h.InFlight, limit(h.MaxInFlight))
	fmt.Printf("placed:            %d (%d open)\n", h.Placed, h.OpenPlacements)
	if h.Journal {
		fmt.Printf("journal:           next seq %d, %d segment(s), %d idempotency key(s)\n",
			h.JournalNextSeq, h.JournalSegments, h.IdemEntries)
	} else {
		fmt.Printf("journal:           disabled\n")
	}
	return nil
}

// cmdMetrics scrapes the daemon's metrics registry.  Text output is for
// eyeballs; -format json emits the full snapshot (including histogram
// buckets) for scripts.
func cmdMetrics(client *rmswire.Client, args []string) error {
	fs := flag.NewFlagSet("metrics", flag.ExitOnError)
	format := fs.String("format", "text", "output format: text or json")
	if err := fs.Parse(args); err != nil {
		return err
	}
	m, err := client.Metrics()
	if err != nil {
		return err
	}
	if *format == "json" {
		blob, err := json.MarshalIndent(m, "", "  ")
		if err != nil {
			return err
		}
		fmt.Println(string(blob))
		return nil
	}
	if *format != "text" {
		return fmt.Errorf("unknown format %q", *format)
	}
	fmt.Printf("uptime:  %.3fs (instance %d, scrape seq %d)\n",
		float64(m.UptimeMS)/1000, m.StartUnixNanos, m.Seq)
	isFleet := func(name string) bool { return strings.HasPrefix(name, "fleet_") }
	fmt.Println("counters:")
	for _, name := range m.CounterNames() {
		if isFleet(name) {
			continue
		}
		fmt.Printf("  %-28s %d\n", name, m.Counters[name])
	}
	if len(m.Gauges) > 0 {
		fmt.Println("gauges:")
		for _, name := range m.GaugeNames() {
			if isFleet(name) {
				continue
			}
			fmt.Printf("  %-28s %d\n", name, m.Gauges[name])
		}
	}
	// Fleet metrics (per-peer forward/gossip counters, forward latency)
	// group under their own section so the core daemon view stays tidy.
	var fleetNames []string
	for _, name := range m.CounterNames() {
		if isFleet(name) {
			fleetNames = append(fleetNames, name)
		}
	}
	if len(fleetNames) > 0 {
		fmt.Println("fleet:")
		for _, name := range fleetNames {
			fmt.Printf("  %-36s %d\n", name, m.Counters[name])
		}
	}
	for _, name := range m.HistogramNames() {
		h := m.Histograms[name]
		if h.Count == 0 {
			continue
		}
		if strings.HasSuffix(name, "_ns") {
			const ms = 1e6
			fmt.Printf("%s: n=%d mean=%.3fms p50=%.3fms p95=%.3fms p99=%.3fms p99.9=%.3fms\n",
				name, h.Count, h.Mean()/ms,
				h.Quantile(0.5)/ms, h.Quantile(0.95)/ms, h.Quantile(0.99)/ms, h.Quantile(0.999)/ms)
		} else {
			fmt.Printf("%s: n=%d mean=%.2f p50=%.0f p95=%.0f p99=%.0f\n",
				name, h.Count, h.Mean(), h.Quantile(0.5), h.Quantile(0.95), h.Quantile(0.99))
		}
	}
	return nil
}

func cmdDrain(client *rmswire.Client) error {
	if err := client.Drain(); err != nil {
		return err
	}
	fmt.Println("drain requested: the daemon finishes in-flight requests, checkpoints and exits")
	return nil
}

func cmdWALInfo(args []string) error {
	fs := flag.NewFlagSet("wal-info", flag.ExitOnError)
	data := fs.String("data", "", "gridtrustd data directory")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *data == "" {
		return fmt.Errorf("wal-info requires -data")
	}
	rec, err := wal.Inspect(*data, wal.Options{})
	if err != nil {
		return err
	}
	fmt.Printf("snapshot:      boundary seq %d\n", rec.SnapshotSeq)
	fmt.Printf("live records:  %d (next seq %d)\n", len(rec.Records), rec.NextSeq)
	fmt.Printf("segments:      %d\n", len(rec.Segments))
	for _, s := range rec.Segments {
		state := "ok"
		switch {
		case s.Dropped:
			state = "DROPPED"
		case s.TornBytes > 0:
			state = fmt.Sprintf("torn tail (%d bytes)", s.TornBytes)
		}
		fmt.Printf("  seg base %-8d %5d records %8d bytes  %s\n", s.Base, s.Records, s.Bytes, state)
	}
	if !rec.Clean() {
		fmt.Printf("damage:        %d truncated bytes, %d dropped segments, %d corrupt snapshots (repaired on next daemon start)\n",
			rec.TruncatedBytes, rec.DroppedSegments, rec.CorruptSnapshots)
	}
	return nil
}

func cmdWALDump(args []string) error {
	fs := flag.NewFlagSet("wal-dump", flag.ExitOnError)
	data := fs.String("data", "", "gridtrustd data directory")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *data == "" {
		return fmt.Errorf("wal-dump requires -data")
	}
	rec, err := wal.Inspect(*data, wal.Options{})
	if err != nil {
		return err
	}
	if rec.SnapshotSeq > 0 {
		fmt.Printf("snapshot@%d: %d bytes\n", rec.SnapshotSeq, len(rec.Snapshot))
	}
	for _, r := range rec.Records {
		fmt.Printf("%8d  %s\n", r.Seq, r.Payload)
	}
	return nil
}

func parseActivities(s string) ([]grid.Activity, error) {
	parts := strings.Split(s, ",")
	out := make([]grid.Activity, 0, len(parts))
	for _, p := range parts {
		p = strings.TrimSpace(p)
		if p == "" {
			continue
		}
		v, err := strconv.Atoi(p)
		if err != nil || v < 0 {
			return nil, fmt.Errorf("bad activity %q", p)
		}
		out = append(out, grid.Activity(v))
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no activities given")
	}
	return out, nil
}

func parseFloats(s string) ([]float64, error) {
	parts := strings.Split(s, ",")
	out := make([]float64, 0, len(parts))
	for _, p := range parts {
		p = strings.TrimSpace(p)
		if p == "" {
			continue
		}
		v, err := strconv.ParseFloat(p, 64)
		if err != nil || v < 0 {
			return nil, fmt.Errorf("bad value %q", p)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty list")
	}
	return out, nil
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: gridctl [-addr host:port] {submit|report|stats|metrics|health|drain|checkpoint|wal-info|wal-dump|fleet} [flags]")
	fmt.Fprintln(os.Stderr, "       gridctl fleet {status|health|metrics|ring|gossip|drain} -config configs/fleet.json [-wait 5s]")
	os.Exit(2)
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "gridctl: "+format+"\n", args...)
	os.Exit(1)
}
