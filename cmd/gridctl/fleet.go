package main

import (
	"flag"
	"fmt"
	"sort"
	"strings"
	"time"

	"gridtrust/internal/fleet"
	"gridtrust/internal/grid"
	"gridtrust/internal/metrics"
	"gridtrust/internal/rmswire"
)

// cmdFleet is the fleet-wide ops surface: every subcommand reads the
// static fleet config and fans out over the shards, so one invocation
// answers for the whole ring.
//
//	gridctl fleet status  -config configs/fleet.json   # per-shard gossip view
//	gridctl fleet health  -config configs/fleet.json   # one line per shard
//	gridctl fleet metrics -config configs/fleet.json   # aggregated fleet section
//	gridctl fleet ring    -config configs/fleet.json   # CD → owner dump
//	gridctl fleet gossip  -config configs/fleet.json -wait 5s  # convergence check
//	gridctl fleet drain   -config configs/fleet.json   # drain every shard
func cmdFleet(args []string, timeout time.Duration) error {
	sub := "status"
	if len(args) > 0 && !strings.HasPrefix(args[0], "-") {
		sub, args = args[0], args[1:]
	}
	fs := flag.NewFlagSet("fleet "+sub, flag.ExitOnError)
	cfgPath := fs.String("config", "configs/fleet.json", "fleet config (JSON)")
	wait := fs.Duration("wait", 0, "gossip: poll until converged or this deadline elapses (0 = single check)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	cfg, err := fleet.LoadConfig(*cfgPath)
	if err != nil {
		return err
	}
	switch sub {
	case "status":
		return fleetStatus(cfg, timeout)
	case "health":
		return fleetHealth(cfg, timeout)
	case "metrics":
		return fleetMetrics(cfg, timeout)
	case "ring":
		return fleetRing(cfg, timeout)
	case "gossip":
		return fleetGossip(cfg, timeout, *wait)
	case "drain":
		return fleetDrain(cfg, timeout)
	}
	return fmt.Errorf("unknown fleet subcommand %q (status|health|metrics|ring|gossip|drain)", sub)
}

// eachShard dials every shard and calls fn; unreachable shards are
// reported, not fatal — a fleet command must answer while a shard is down.
func eachShard(cfg fleet.Config, timeout time.Duration, fn func(s fleet.ShardConfig, c *rmswire.Client) error) error {
	var firstErr error
	for _, s := range cfg.Shards {
		c, err := rmswire.DialTimeout(s.Addr, timeout)
		if err != nil {
			fmt.Printf("%-12s unreachable: %v\n", s.Name, err)
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		c.Timeout = timeout
		if err := fn(s, c); err != nil {
			fmt.Printf("%-12s error: %v\n", s.Name, err)
			if firstErr == nil {
				firstErr = err
			}
		}
		_ = c.Close()
	}
	return firstErr
}

func fleetStatus(cfg fleet.Config, timeout time.Duration) error {
	return eachShard(cfg, timeout, func(s fleet.ShardConfig, c *rmswire.Client) error {
		info, err := c.Fleet()
		if err != nil {
			return err
		}
		fmt.Printf("%-12s table v%d (%d entries), %d member(s), %d vnodes, gossip every %dms (staleness bound %dms)\n",
			info.Shard, info.TableVersion, info.TableEntries, len(info.Members), info.VNodes,
			info.GossipIntervalMS, info.StalenessBoundMS)
		for _, p := range info.Peers {
			age := "never"
			if p.AgeMS >= 0 {
				age = fmt.Sprintf("%dms ago", p.AgeMS)
			}
			state := "fresh"
			if p.Stale {
				state = "STALE"
			}
			breaker := ""
			if p.Breaker != "" {
				breaker = fmt.Sprintf("  breaker=%s", p.Breaker)
				if p.BreakerOpens > 0 {
					breaker += fmt.Sprintf(" (opened %d, closed %d)", p.BreakerOpens, p.BreakerCloses)
				}
			}
			fmt.Printf("  peer %-10s synced v%d (%d entries) %s [%s]  syncs=%d errors=%d%s\n",
				p.Name, p.Version, p.Entries, age, state, p.Syncs, p.SyncErrors, breaker)
		}
		return nil
	})
}

func fleetHealth(cfg fleet.Config, timeout time.Duration) error {
	return eachShard(cfg, timeout, func(s fleet.ShardConfig, c *rmswire.Client) error {
		h, err := c.Health()
		if err != nil {
			return err
		}
		fmt.Printf("%-12s %-8s placed=%d open=%d conns=%d inflight=%d uptime=%.1fs\n",
			s.Name, h.Status, h.Placed, h.OpenPlacements, h.Conns, h.InFlight,
			float64(h.UptimeMS)/1000)
		return nil
	})
}

// fleetMetrics prints each shard's fleet section plus a fleet-wide
// aggregate: summed forward/gossip counters and the merged forward
// latency histogram.
func fleetMetrics(cfg fleet.Config, timeout time.Duration) error {
	total := make(map[string]uint64)
	merged := &metrics.HistSnapshot{}
	err := eachShard(cfg, timeout, func(s fleet.ShardConfig, c *rmswire.Client) error {
		m, err := c.Metrics()
		if err != nil {
			return err
		}
		fmt.Printf("%s:\n", s.Name)
		for _, name := range m.CounterNames() {
			if !strings.HasPrefix(name, "fleet_") {
				continue
			}
			fmt.Printf("  %-36s %d\n", name, m.Counters[name])
			total[name] += m.Counters[name]
		}
		if h := m.Histograms[fleet.MetricForwardNS]; h != nil && h.Count > 0 {
			printLatency("  "+fleet.MetricForwardNS, h)
			merged.Merge(h)
		}
		return nil
	})
	fmt.Println("fleet total:")
	names := make([]string, 0, len(total))
	for name := range total {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Printf("  %-36s %d\n", name, total[name])
	}
	if merged.Count > 0 {
		printLatency("  "+fleet.MetricForwardNS, merged)
	}
	return err
}

func printLatency(label string, h *metrics.HistSnapshot) {
	const ms = 1e6
	fmt.Printf("%s: n=%d mean=%.3fms p50=%.3fms p95=%.3fms p99=%.3fms\n",
		label, h.Count, h.Mean()/ms, h.Quantile(0.5)/ms, h.Quantile(0.95)/ms, h.Quantile(0.99)/ms)
}

// fleetRing rebuilds the ring locally from the config (ownership is
// deterministic) and dumps CD → owner, cross-checked against one
// reachable shard's view of the member list.
func fleetRing(cfg fleet.Config, timeout time.Duration) error {
	ring, err := fleet.NewRing(cfg.Names(), cfg.VNodes)
	if err != nil {
		return err
	}
	cds := 0
	for _, s := range cfg.Shards {
		c, err := rmswire.DialTimeout(s.Addr, timeout)
		if err != nil {
			continue
		}
		c.Timeout = timeout
		info, ferr := c.Fleet()
		_ = c.Close()
		if ferr != nil {
			continue
		}
		if strings.Join(info.Members, ",") != strings.Join(ring.Members(), ",") || info.VNodes != ring.VNodes() {
			return fmt.Errorf("shard %s runs ring {%v, %d vnodes}, config says {%v, %d vnodes}",
				info.Shard, info.Members, info.VNodes, ring.Members(), ring.VNodes())
		}
		cds = info.CDs
		break
	}
	fmt.Printf("ring: %d member(s), %d vnodes each\n", len(ring.Members()), ring.VNodes())
	if cds == 0 {
		fmt.Println("no shard reachable; dumping membership only")
		return nil
	}
	share := make(map[string]int)
	for cd := 0; cd < cds; cd++ {
		owner := ring.Owner(fleet.CDKey(grid.DomainID(cd)))
		share[owner]++
		fmt.Printf("  cd %-4d → %s\n", cd, owner)
	}
	for _, m := range ring.Members() {
		fmt.Printf("share: %-12s %d/%d CDs\n", m, share[m], cds)
	}
	return nil
}

// fleetGossip checks convergence: every shard's synced version for each
// peer has reached that peer's own current table version, and no claim
// set is stale.  With wait > 0 it polls until converged or the deadline.
func fleetGossip(cfg fleet.Config, timeout, wait time.Duration) error {
	deadline := time.Now().Add(wait)
	for {
		lag, err := gossipLag(cfg, timeout)
		if err == nil && len(lag) == 0 {
			fmt.Println("gossip converged: every shard holds every peer's current table")
			return nil
		}
		if wait <= 0 || time.Now().After(deadline) {
			for _, l := range lag {
				fmt.Println(l)
			}
			if err != nil {
				return err
			}
			return fmt.Errorf("gossip not converged (%d lagging view(s))", len(lag))
		}
		time.Sleep(100 * time.Millisecond)
	}
}

// gossipLag returns one line per lagging or stale peer view.
func gossipLag(cfg fleet.Config, timeout time.Duration) ([]string, error) {
	infos := make(map[string]*rmswire.FleetInfo)
	for _, s := range cfg.Shards {
		c, err := rmswire.DialTimeout(s.Addr, timeout)
		if err != nil {
			return nil, fmt.Errorf("shard %s unreachable: %w", s.Name, err)
		}
		c.Timeout = timeout
		info, ferr := c.Fleet()
		_ = c.Close()
		if ferr != nil {
			return nil, fmt.Errorf("shard %s: %w", s.Name, ferr)
		}
		infos[s.Name] = info
	}
	var lag []string
	for name, info := range infos {
		for _, p := range info.Peers {
			truth, ok := infos[p.Name]
			if !ok {
				continue
			}
			switch {
			case p.Stale:
				lag = append(lag, fmt.Sprintf("%s view of %s: stale (last sync %dms ago)", name, p.Name, p.AgeMS))
			case p.Version < truth.TableVersion:
				lag = append(lag, fmt.Sprintf("%s view of %s: synced v%d, peer is at v%d", name, p.Name, p.Version, truth.TableVersion))
			}
		}
	}
	sort.Strings(lag)
	return lag, nil
}

func fleetDrain(cfg fleet.Config, timeout time.Duration) error {
	return eachShard(cfg, timeout, func(s fleet.ShardConfig, c *rmswire.Client) error {
		if err := c.Drain(); err != nil {
			return err
		}
		fmt.Printf("%-12s drain requested\n", s.Name)
		return nil
	})
}
