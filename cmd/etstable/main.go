// Command etstable prints the paper's Table 1 — the expected trust
// supplement (ETS) for every (required TL, offered TL) pair — under either
// reading of the F row.
//
// Usage:
//
//	etstable                  # literal Table 1 (F row = 6 everywhere)
//	etstable -rule linear     # linear variant (F row = 6 − OTL)
//	etstable -format markdown
package main

import (
	"flag"
	"fmt"
	"os"

	"gridtrust"
	"gridtrust/internal/grid"
	"gridtrust/internal/report"
)

func main() {
	var (
		rule   = flag.String("rule", "table1", "ETS rule: table1 (literal) or linear")
		format = flag.String("format", "ascii", "output format: ascii, markdown or csv")
	)
	flag.Parse()

	var tb *report.Table
	switch *rule {
	case "table1":
		tb = gridtrust.ETSRows()
	case "linear":
		tb = report.NewTable(
			"Table 1 (linear variant). Expected trust supplement values with ETS = max(RTL−OTL, 0).",
			"requested TL", "A", "B", "C", "D", "E")
		for r := grid.LevelA; r <= grid.LevelF; r++ {
			row := []string{r.String()}
			for o := grid.MinOfferable; o <= grid.MaxOfferable; o++ {
				v, err := grid.ETSWith(grid.ETSLinear, r, o)
				if err != nil {
					fatalf("%v", err)
				}
				row = append(row, fmt.Sprintf("%d", v))
			}
			tb.AddRow(row...)
		}
	default:
		fatalf("-rule must be table1 or linear, got %q", *rule)
	}

	out, err := tb.Render(*format)
	if err != nil {
		fatalf("render: %v", err)
	}
	fmt.Print(out)
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "etstable: "+format+"\n", args...)
	os.Exit(1)
}
