package main

// observe_test.go covers the observability layer end to end against real
// daemon processes: restart detection via monotonic uptime + instance
// stamp + metrics scrape sequence, and the load driver's reconciliation
// holding across a mid-run SIGKILL + restart (WAL replay restores the
// durable placement and idempotency-key anchors).

import (
	"testing"
	"time"

	"gridtrust/internal/load"
	"gridtrust/internal/rmswire"
)

// TestRestartDetection pins the three restart signals a poller can use:
// the instance stamp changes, uptime goes backwards, and the metrics
// scrape sequence resets — even when the daemon comes back on the same
// address faster than the polling interval.
func TestRestartDetection(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess test")
	}
	cmd, addr, _ := spawnDaemon(t, "-addr", "127.0.0.1:0")
	client, err := rmswire.Dial(addr)
	if err != nil {
		_ = cmd.Process.Kill()
		t.Fatal(err)
	}
	// Two scrapes advance the sequence; health reports it without
	// scraping.
	if _, err := client.Metrics(); err != nil {
		t.Fatal(err)
	}
	if _, err := client.Metrics(); err != nil {
		t.Fatal(err)
	}
	h1, err := client.Health()
	if err != nil {
		t.Fatal(err)
	}
	if h1.StartUnixNanos == 0 || h1.UptimeMS < 0 {
		t.Fatalf("health missing instance identity: %+v", h1)
	}
	if h1.MetricsSeq != 2 {
		t.Fatalf("metrics seq = %d after two scrapes, want 2", h1.MetricsSeq)
	}
	// Uptime is monotonic within one instance.
	time.Sleep(20 * time.Millisecond)
	h1b, err := client.Health()
	if err != nil {
		t.Fatal(err)
	}
	if h1b.UptimeMS < h1.UptimeMS {
		t.Fatalf("uptime went backwards within one instance: %d -> %d", h1.UptimeMS, h1b.UptimeMS)
	}
	client.Close()

	if err := cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	_ = cmd.Wait()

	// Same address: a poller cannot tell a restart from the address.
	cmd2, addr2, _ := spawnDaemon(t, "-addr", addr)
	defer func() {
		_ = cmd2.Process.Kill()
		_ = cmd2.Wait()
	}()
	if addr2 != addr {
		t.Fatalf("restart bound %s, want %s", addr2, addr)
	}
	client2, err := rmswire.Dial(addr2)
	if err != nil {
		t.Fatal(err)
	}
	defer client2.Close()
	h2, err := client2.Health()
	if err != nil {
		t.Fatal(err)
	}
	if h2.StartUnixNanos == h1.StartUnixNanos {
		t.Fatal("instance stamp unchanged across restart")
	}
	if h2.MetricsSeq != 0 {
		t.Fatalf("metrics seq = %d after restart, want 0", h2.MetricsSeq)
	}
	if h2.UptimeMS >= h1b.UptimeMS {
		t.Fatalf("restarted uptime %dms not below pre-kill %dms", h2.UptimeMS, h1b.UptimeMS)
	}
}

// TestLoadReconcilesAcrossCrashRestart SIGKILLs a journalling daemon in
// the middle of a load run and restarts it on the same address and data
// directory.  The load driver's retriers ride through the outage, the
// settle pass resolves every ambiguous key, and the durable
// reconciliation anchors — placed, idem_entries, open_placements, all
// restored by WAL replay — must balance exactly against client totals.
func TestLoadReconcilesAcrossCrashRestart(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess test")
	}
	dir := t.TempDir()
	args := []string{"-data", dir, "-topology-seed", "7", "-domains", "3", "-agents", "1"}
	cmd, addr, _ := spawnDaemon(t, append([]string{"-addr", "127.0.0.1:0"}, args...)...)

	type result struct {
		rep *load.Report
		err error
	}
	done := make(chan result, 1)
	go func() {
		rep, err := load.Run(load.Config{
			Addr:          addr,
			Clients:       3,
			Mode:          load.ModeClosed,
			Duration:      3 * time.Second,
			Seed:          23,
			KeyPrefix:     "crash",
			MaxAttempts:   80,
			BaseBackoff:   10 * time.Millisecond,
			MaxBackoff:    200 * time.Millisecond,
			OpTimeout:     2 * time.Second,
			SettleTimeout: 30 * time.Second,
		})
		done <- result{rep, err}
	}()

	// Kill mid-run — no drain, no final checkpoint — and restart on the
	// same address against the same WAL.
	time.Sleep(time.Second)
	if err := cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	_ = cmd.Wait()
	cmd2, addr2, _ := spawnDaemon(t, append([]string{"-addr", addr}, args...)...)
	defer func() {
		_ = cmd2.Process.Kill()
		_ = cmd2.Wait()
	}()
	if addr2 != addr {
		t.Fatalf("restart bound %s, want %s", addr2, addr)
	}

	res := <-done
	if res.err != nil {
		t.Fatalf("load run: %v", res.err)
	}
	rep := res.rep
	if !rep.Reconcile.DaemonRestarted {
		t.Fatal("restart not detected by the load driver")
	}
	if rep.SubmitsOK == 0 {
		t.Fatal("no submits survived the crash window")
	}
	if rep.Unresolved != 0 {
		t.Fatalf("%d keys unresolved after settle:\n%s", rep.Unresolved, rep.Text())
	}
	if !rep.Reconcile.OK {
		t.Fatalf("reconcile failed across SIGKILL+restart:\n%s", rep.Text())
	}
	// The volatile counter checks must have been skipped, not silently
	// passed: the daemon restarted, so instance-local counters reset.
	skipped := 0
	for _, c := range rep.Reconcile.Checks {
		if c.Skipped {
			skipped++
		}
	}
	if skipped == 0 {
		t.Fatal("no volatile checks skipped although the daemon restarted")
	}
}
