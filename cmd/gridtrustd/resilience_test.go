package main

// resilience_test.go drives the daemon's overload-resilience layer from
// outside the process: a retry storm against a capacity-limited daemon
// SIGKILLed mid-storm must yield exactly one placement per acknowledged
// idempotency key after restart-and-replay, and SIGTERM (or the drain op)
// must drain gracefully — clean exit, final checkpoint, state preserved.

import (
	"encoding/json"
	"fmt"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"gridtrust/internal/grid"
	"gridtrust/internal/rmswire"
	"gridtrust/internal/wal"
)

// probeMachines discovers the generated topology's machine count by
// growing the EEC vector until the daemon accepts a submit (the count is
// not exposed over the wire).  The probe's placement carries no
// idempotency key, so keyed accounting is unaffected.
func probeMachines(t *testing.T, client *rmswire.Client) int {
	t.Helper()
	for n := 1; n <= 64; n++ {
		eec := make([]float64, n)
		for i := range eec {
			eec[i] = 100 + float64(i)
		}
		if _, err := client.Submit(0, []grid.Activity{grid.ActCompute}, grid.LevelD, eec, 0); err != nil {
			if strings.Contains(err.Error(), "EEC entries for") {
				continue
			}
			t.Fatal(err)
		}
		return n
	}
	t.Fatal("could not determine machine count")
	return 0
}

// TestRetryStormExactlyOnce is the acceptance scenario: N retrying
// clients hammer a daemon whose in-flight limit guarantees overload
// sheds, the daemon is SIGKILLed mid-storm, and after restart-and-replay
// every acknowledged placement exists exactly once — no duplicates from
// retried submits, no losses of acknowledged ones — verified both over
// the wire and against the WAL journal itself.
func TestRetryStormExactlyOnce(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess test")
	}
	dir := t.TempDir()
	args := []string{
		"-addr", "127.0.0.1:0", "-data", dir,
		"-topology-seed", "7", "-domains", "3", "-agents", "1",
		// A tiny admission limit makes overload sheds certain under the
		// storm; compaction off keeps every record inspectable on disk.
		"-max-inflight", "2", "-compact-every", "0",
	}
	cmd, addr, _ := spawnDaemon(t, args...)
	probe, err := rmswire.Dial(addr)
	if err != nil {
		_ = cmd.Process.Kill()
		t.Fatal(err)
	}
	nMachines := probeMachines(t, probe)
	probe.Close()

	const (
		clients = 4
		tasks   = 12
	)
	key := func(c, i int) string { return fmt.Sprintf("c%d-t%d", c, i) }
	var (
		ackMu sync.Mutex
		acked = map[string]uint64{} // key → acknowledged placement id
	)
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			r := rmswire.NewRetrier(rmswire.RetrierConfig{
				Addr:        addr,
				Seed:        uint64(c),
				MaxAttempts: 6,
				BaseBackoff: 2 * time.Millisecond,
				MaxBackoff:  50 * time.Millisecond,
				DialTimeout: 500 * time.Millisecond,
				OpTimeout:   time.Second,
				Budget:      50 * time.Millisecond,
			})
			defer r.Close()
			for i := 0; i < tasks; i++ {
				eec := make([]float64, nMachines)
				for m := range eec {
					eec[m] = 100 + float64((c*31+i*7+m*13)%40)
				}
				p, err := r.SubmitKeyed(key(c, i), 0, []grid.Activity{grid.ActCompute},
					grid.LevelD, eec, float64(i))
				if err != nil {
					continue // unacknowledged: the kill or sheds won
				}
				ackMu.Lock()
				acked[key(c, i)] = p.ID
				ackMu.Unlock()
				time.Sleep(4 * time.Millisecond)
			}
		}(c)
	}
	// SIGKILL mid-storm: no drain, no flush beyond what Append already
	// made durable before each acknowledgement.
	time.Sleep(25 * time.Millisecond)
	if err := cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	_ = cmd.Wait()
	wg.Wait()
	t.Logf("storm: %d/%d submits acknowledged before the kill", len(acked), clients*tasks)

	// Restart and replay, then resubmit EVERY key: acknowledged keys must
	// resolve to their original placement, unacknowledged ones place
	// fresh — exactly once either way.
	cmd2, addr2, _ := spawnDaemon(t, args...)
	defer func() {
		_ = cmd2.Process.Kill()
		_ = cmd2.Wait()
	}()
	r2 := rmswire.NewRetrier(rmswire.RetrierConfig{
		Addr: addr2, Seed: 999, MaxAttempts: 10,
		BaseBackoff: 5 * time.Millisecond, OpTimeout: 2 * time.Second,
		Budget: time.Second,
	})
	defer r2.Close()
	finalID := map[string]uint64{}
	for c := 0; c < clients; c++ {
		for i := 0; i < tasks; i++ {
			k := key(c, i)
			eec := make([]float64, nMachines)
			for m := range eec {
				eec[m] = 100 + float64((c*31+i*7+m*13)%40)
			}
			p, err := r2.SubmitKeyed(k, 0, []grid.Activity{grid.ActCompute},
				grid.LevelD, eec, float64(i))
			if err != nil {
				t.Fatalf("post-restart submit %s: %v", k, err)
			}
			finalID[k] = p.ID
		}
	}
	for k, id := range acked {
		if finalID[k] != id {
			t.Errorf("acknowledged key %s: placement %d before the kill, %d after replay", k, id, finalID[k])
		}
	}
	seen := map[uint64]string{}
	for k, id := range finalID {
		if prev, dup := seen[id]; dup {
			t.Errorf("keys %s and %s share placement id %d", prev, k, id)
		}
		seen[id] = k
	}
	st, err := r2.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if want := clients*tasks + 1; st.Placed != want { // +1 probe placement
		t.Errorf("placed %d, want exactly %d (one per key plus the probe)", st.Placed, want)
	}

	// Ground truth from the journal: SIGKILL the restarted daemon too and
	// read the WAL directly — each key must appear on exactly one place
	// record, and every acknowledged key must be present.
	_ = cmd2.Process.Kill()
	_ = cmd2.Wait()
	rec, err := wal.Inspect(dir, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	keyCount := map[string]int{}
	for _, w := range rec.Records {
		var r struct {
			Kind    string `json:"kind"`
			IdemKey string `json:"idem_key"`
		}
		if err := json.Unmarshal(w.Payload, &r); err != nil {
			t.Fatalf("record %d: %v", w.Seq, err)
		}
		if r.Kind == "place" && r.IdemKey != "" {
			keyCount[r.IdemKey]++
		}
	}
	for k, n := range keyCount {
		if n != 1 {
			t.Errorf("journal holds %d place records for key %s", n, k)
		}
	}
	for k := range acked {
		if keyCount[k] != 1 {
			t.Errorf("acknowledged key %s journalled %d times, want exactly 1", k, keyCount[k])
		}
	}
	if len(keyCount) != clients*tasks {
		t.Errorf("journal holds %d distinct keys, want %d", len(keyCount), clients*tasks)
	}
}

// TestGracefulDrainSIGTERM verifies the SIGTERM path: the daemon stops
// accepting, finishes in-flight work, takes a final checkpoint, exits 0,
// and a restart replays to the identical pre-drain state.
func TestGracefulDrainSIGTERM(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess test")
	}
	dir := t.TempDir()
	args := []string{
		"-addr", "127.0.0.1:0", "-data", dir,
		"-topology-seed", "7", "-domains", "3", "-agents", "1",
		"-drain-timeout", "5s",
	}
	cmd, addr, out := spawnDaemon(t, args...)
	client, err := rmswire.Dial(addr)
	if err != nil {
		_ = cmd.Process.Kill()
		t.Fatal(err)
	}
	nMachines := probeMachines(t, client)
	reported := 0
	for i := 1; i < 6; i++ {
		p, err := client.Submit(0, []grid.Activity{grid.ActCompute}, grid.LevelD, seqEEC(nMachines), float64(i))
		if err != nil {
			t.Fatal(err)
		}
		if i%2 == 0 {
			if err := client.Report(p.ID, 5, float64(i)+0.5); err != nil {
				t.Fatal(err)
			}
			reported++
		}
	}
	before := waitProcessed(t, client, reported)
	client.Close()

	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if err := cmd.Wait(); err != nil {
		t.Fatalf("SIGTERM drain exited dirty: %v\n%s", err, out)
	}
	text := out.String()
	if !strings.Contains(text, "draining: signal") ||
		!strings.Contains(text, "final checkpoint") ||
		!strings.Contains(text, "drained; exiting") {
		t.Fatalf("drain narrative missing:\n%s", text)
	}
	// The final checkpoint folded the whole history into one snapshot.
	rec, err := wal.Inspect(dir, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rec.SnapshotSeq == 0 {
		t.Fatal("no snapshot on disk after graceful drain")
	}
	if len(rec.Records) != 0 {
		t.Fatalf("%d records left outside the final snapshot", len(rec.Records))
	}

	cmd2, addr2, _ := spawnDaemon(t, args...)
	defer func() {
		_ = cmd2.Process.Kill()
		_ = cmd2.Wait()
	}()
	client2, err := rmswire.Dial(addr2)
	if err != nil {
		t.Fatal(err)
	}
	defer client2.Close()
	after, err := client2.Stats()
	if err != nil {
		t.Fatal(err)
	}
	// Full-struct equality: the final snapshot carries the agent counters
	// too, so every stats field survives the drain/restart cycle.
	if *after != *before {
		t.Fatalf("restart after drain diverged:\n before %+v\n after  %+v", before, after)
	}
}

// TestDrainOverTheWire verifies gridctl-style remote drain: the drain op
// makes the daemon exit 0 without any signal.
func TestDrainOverTheWire(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess test")
	}
	cmd, addr, out := spawnDaemon(t, "-addr", "127.0.0.1:0", "-drain-timeout", "5s")
	client, err := rmswire.Dial(addr)
	if err != nil {
		_ = cmd.Process.Kill()
		t.Fatal(err)
	}
	h, err := client.Health()
	if err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" || h.Journal {
		t.Fatalf("health %+v", h)
	}
	if err := client.Drain(); err != nil {
		t.Fatal(err)
	}
	client.Close()
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("drain op exited dirty: %v\n%s", err, out)
		}
	case <-time.After(10 * time.Second):
		_ = cmd.Process.Kill()
		t.Fatalf("daemon did not exit after drain op\n%s", out)
	}
	if text := out.String(); !strings.Contains(text, "draining: requested over the wire") {
		t.Fatalf("drain narrative missing:\n%s", text)
	}
	// New connections must be refused once drained.
	if _, err := rmswire.DialTimeout(addr, 500*time.Millisecond); err == nil {
		t.Fatal("drained daemon still accepting")
	}
}

// TestHealthUnderLimits verifies the admission flags are wired through
// to the served health view.
func TestHealthUnderLimits(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess test")
	}
	cmd, addr, _ := spawnDaemon(t, "-addr", "127.0.0.1:0", "-max-conns", "3", "-max-inflight", "2", "-drain-timeout", "1s")
	defer func() {
		_ = cmd.Process.Signal(syscall.SIGTERM)
		_ = cmd.Wait()
	}()
	client, err := rmswire.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	h, err := client.Health()
	if err != nil {
		t.Fatal(err)
	}
	if h.MaxConns != 3 || h.MaxInFlight != 2 {
		t.Fatalf("limits not wired through flags: %+v", h)
	}
}
