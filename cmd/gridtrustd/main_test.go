package main

import (
	"bufio"
	"os"
	"os/exec"
	"strings"
	"sync"
	"testing"
	"time"

	"gridtrust/internal/grid"
	"gridtrust/internal/rmswire"
)

// TestMain lets the test binary impersonate the daemon: re-executed with
// this variable set, it runs main() against its own flags, which gives the
// crash test a real process to SIGKILL.
func TestMain(m *testing.M) {
	if os.Getenv("GRIDTRUSTD_RUN_MAIN") == "1" {
		main()
		return
	}
	os.Exit(m.Run())
}

// daemonOutput accumulates a spawned daemon's stdout lines for assertions
// about its shutdown narrative.
type daemonOutput struct {
	mu    sync.Mutex
	lines []string
}

func (o *daemonOutput) String() string {
	o.mu.Lock()
	defer o.mu.Unlock()
	return strings.Join(o.lines, "\n")
}

// spawnDaemon re-executes the test binary as gridtrustd and waits for the
// listening line to learn the bound address.
func spawnDaemon(t *testing.T, args ...string) (*exec.Cmd, string, *daemonOutput) {
	t.Helper()
	cmd := exec.Command(os.Args[0], args...)
	cmd.Env = append(os.Environ(), "GRIDTRUSTD_RUN_MAIN=1")
	cmd.Stderr = os.Stderr
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	out := &daemonOutput{}
	addrCh := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			line := sc.Text()
			out.mu.Lock()
			out.lines = append(out.lines, line)
			out.mu.Unlock()
			if rest, ok := strings.CutPrefix(line, "gridtrustd listening on "); ok {
				addrCh <- rest
			}
		}
	}()
	select {
	case addr := <-addrCh:
		return cmd, addr, out
	case <-time.After(10 * time.Second):
		_ = cmd.Process.Kill()
		t.Fatal("daemon did not report a listening address")
		return nil, "", nil
	}
}

// TestCrashRestartRoundTrip kills a journalling daemon mid-stream with
// SIGKILL — no shutdown path runs — and asserts a restart against the same
// data directory recovers the exact pre-crash view: placements, open
// placements and the trust table.
func TestCrashRestartRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess test")
	}
	dir := t.TempDir()
	args := []string{
		"-addr", "127.0.0.1:0", "-data", dir,
		"-topology-seed", "7", "-domains", "3",
		// One agent keeps transaction processing order identical between
		// the live run and journal replay.
		"-agents", "1",
	}
	cmd, addr, _ := spawnDaemon(t, args...)
	client, err := rmswire.Dial(addr)
	if err != nil {
		_ = cmd.Process.Kill()
		t.Fatal(err)
	}

	const tasks = 12
	reported := 0
	var nMachines int
	// Submit needs one EEC per machine; the generated topology's machine
	// count is not exposed over the wire, so discover it by growing the
	// vector until the daemon accepts.
	for n := 1; n <= 64; n++ {
		eec := make([]float64, n)
		for i := range eec {
			eec[i] = 100 + float64(i)
		}
		if _, err := client.Submit(0, []grid.Activity{grid.ActCompute}, grid.LevelD, eec, 0); err != nil {
			if strings.Contains(err.Error(), "EEC entries for") {
				continue
			}
			t.Fatal(err)
		}
		nMachines = n
		break
	}
	if nMachines == 0 {
		t.Fatal("could not determine machine count")
	}
	if err := client.Report(1, 5, 0.5); err != nil {
		t.Fatal(err)
	}
	reported++
	for i := 1; i < tasks; i++ {
		eec := make([]float64, nMachines)
		for m := range eec {
			eec[m] = 100 + float64((i*7+m*13)%40)
		}
		p, err := client.Submit(0, []grid.Activity{grid.ActCompute}, grid.LevelD, eec, float64(i))
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		if i%4 == 3 {
			continue // leave some placements open across the crash
		}
		outcome := 6.0
		if i%2 == 0 {
			outcome = 2.0
		}
		if err := client.Report(p.ID, outcome, float64(i)+0.5); err != nil {
			t.Fatalf("report %d: %v", i, err)
		}
		reported++
	}
	// Checkpoint partway through history so recovery exercises both the
	// snapshot and the record tail.
	if i, err := client.Checkpoint(); err != nil {
		t.Fatal(err)
	} else if i.Compacted == 0 {
		t.Fatal("checkpoint compacted nothing")
	}
	p, err := client.Submit(0, []grid.Activity{grid.ActCompute}, grid.LevelD, seqEEC(nMachines), 90)
	if err != nil {
		t.Fatal(err)
	}
	if err := client.Report(p.ID, 6, 91); err != nil {
		t.Fatal(err)
	}
	reported++

	before := waitProcessed(t, client, reported)
	// Pin the expected pre-crash shape: 12 tasks + 1 post-checkpoint
	// placement, of which i=3,7,11 were left open.
	if before.Placed != tasks+1 || before.OpenPlacements != 3 {
		t.Fatalf("pre-crash state unexpected: %+v", before)
	}
	client.Close()

	// Hard kill: SIGKILL gives the daemon no chance to flush anything
	// beyond what the journal already made durable.
	if err := cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	_ = cmd.Wait()

	cmd2, addr2, _ := spawnDaemon(t, args...)
	defer func() {
		_ = cmd2.Process.Kill()
		_ = cmd2.Wait()
	}()
	client2, err := rmswire.Dial(addr2)
	if err != nil {
		t.Fatal(err)
	}
	defer client2.Close()
	st, err := client2.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Placed != before.Placed ||
		st.OpenPlacements != before.OpenPlacements ||
		st.TableVersion != before.TableVersion ||
		st.TableEntries != before.TableEntries {
		t.Fatalf("restart diverged from pre-crash view:\n before %+v\n after  %+v", before, st)
	}

	// A data dir started with different topology flags must refuse.
	bad := exec.Command(os.Args[0], "-addr", "127.0.0.1:0", "-data", dir, "-topology-seed", "8", "-agents", "1")
	bad.Env = append(os.Environ(), "GRIDTRUSTD_RUN_MAIN=1")
	out, err := bad.CombinedOutput()
	if err == nil || !strings.Contains(string(out), "was created with") {
		t.Fatalf("mismatched meta accepted: err=%v out=%s", err, out)
	}
}

func seqEEC(n int) []float64 {
	eec := make([]float64, n)
	for i := range eec {
		eec[i] = 100 + float64(i)
	}
	return eec
}

// waitProcessed polls until the daemon's single agent has consumed every
// reported transaction, so the stats view is settled before the kill.
func waitProcessed(t *testing.T, client *rmswire.Client, want int) *rmswire.StatsInfo {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		st, err := client.Stats()
		if err != nil {
			t.Fatal(err)
		}
		if st.AgentsProcessed >= want {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("agent processed %d of %d", st.AgentsProcessed, want)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestDemoSmoke runs the -demo path end to end in-process via re-exec.
func TestDemoSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess test")
	}
	cmd := exec.Command(os.Args[0], "-addr", "127.0.0.1:0", "-demo")
	cmd.Env = append(os.Environ(), "GRIDTRUSTD_RUN_MAIN=1")
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("demo failed: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "demo: placed=5") {
		t.Fatalf("demo output missing summary:\n%s", out)
	}
}
