// Command gridtrustd runs the trust-aware resource management system as a
// network daemon: the Figure 1 architecture (trust engine, monitoring
// agents, central trust-level table, trust-aware scheduler) behind a
// newline-delimited JSON protocol.
//
// Usage:
//
//	gridtrustd -addr 127.0.0.1:7431 -topology-seed 7
//	gridtrustd -data /var/lib/gridtrustd    # durable: WAL + checkpoints
//	gridtrustd -demo           # serve, drive a demo client, then exit
//
// With -data, every placement and outcome report is journalled to a
// write-ahead log under the directory before the response is sent, and the
// log is periodically compacted into a snapshot; a killed daemon restarted
// against the same directory resumes with its trust fabric, scheduler
// queues and open placements intact.  The directory also pins the topology
// parameters in meta.json so a restart cannot silently replay a journal
// against a different grid.
//
// Under load the daemon degrades gracefully instead of falling over:
// -max-conns and -max-inflight bound admission (excess work is shed with
// a retryable "overloaded" response carrying retry_after_ms), submits may
// carry idempotency keys so client retries never double-place, and
// SIGTERM/SIGINT (or gridctl drain) stops accepting, finishes in-flight
// requests under -drain-timeout, takes a final checkpoint and exits 0.
//
// The topology is drawn by internal/gridgen from -topology-seed; a real
// deployment would construct its grid.Topology from inventory instead.
// Protocol (one JSON object per line):
//
//	{"op":"submit","client":0,"activities":[0],"rtl":"E","eec":[100,110],"now":0,"idem_key":"k1","budget_ms":250}
//	{"op":"report","placement_id":1,"outcome":6,"now":1}
//	{"op":"stats"}
//	{"op":"checkpoint"}
//	{"op":"health"}
//	{"op":"drain"}
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"gridtrust/internal/core"
	"gridtrust/internal/fleet"
	"gridtrust/internal/grid"
	"gridtrust/internal/gridgen"
	"gridtrust/internal/rmswire"
	"gridtrust/internal/rng"
	"gridtrust/internal/trust"
	"gridtrust/internal/wal"
)

// daemonMeta pins the parameters a data directory was created with.
type daemonMeta struct {
	TopologySeed uint64  `json:"topology_seed"`
	Domains      int     `json:"domains"`
	Agents       int     `json:"agents"`
	TCWeight     float64 `json:"tc_weight"`
	// TrustModel and TrustParamHash pin the trust policy: replaying a
	// journal recorded under one model into another would silently
	// recompute every trust value, so a mismatch refuses startup.
	TrustModel     string `json:"trust_model,omitempty"`
	TrustParamHash string `json:"trust_param_hash,omitempty"`
}

// checkMeta verifies dir was written under the same meta, creating the
// file on first use.
func checkMeta(dir string, meta daemonMeta) error {
	path := filepath.Join(dir, "meta.json")
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		blob, merr := json.MarshalIndent(meta, "", "  ")
		if merr != nil {
			return merr
		}
		return os.WriteFile(path, append(blob, '\n'), 0o644)
	}
	if err != nil {
		return err
	}
	var have daemonMeta
	if err := json.Unmarshal(data, &have); err != nil {
		return fmt.Errorf("parse %s: %w", path, err)
	}
	// Directories from before the trust-model zoo carry no model stamp;
	// they were necessarily written by the paper's engine.
	if have.TrustModel == "" {
		have.TrustModel = trust.DefaultModel
		if meta.TrustModel == trust.DefaultModel {
			have.TrustParamHash = meta.TrustParamHash
		}
	}
	if have != meta {
		return fmt.Errorf("%s was created with %+v, started with %+v", dir, have, meta)
	}
	return nil
}

func main() {
	var (
		addr     = flag.String("addr", "127.0.0.1:7431", "listen address")
		seed     = flag.Uint64("topology-seed", 7, "seed for the generated grid topology")
		domains  = flag.Int("domains", 3, "grid domains to generate")
		agents   = flag.Int("agents", 2, "monitoring agents")
		tcWeight = flag.Float64("tcweight", 15, "trust-cost weight of the ESC formula")
		model    = flag.String("trust-model", "", "trust model from the registry (default: paper); see -list-models")
		listM    = flag.Bool("list-models", false, "list registered trust models and exit")
		demo     = flag.Bool("demo", false, "drive a short demo client against the daemon and exit")
		dot      = flag.Bool("dot", false, "print the topology as Graphviz DOT and exit")
		dataDir  = flag.String("data", "", "durability directory (empty disables the write-ahead log)")
		compact  = flag.Int("compact-every", 1024, "auto-checkpoint after this many journal records (0 disables; manual checkpoints always work)")

		fleetPath = flag.String("fleet", "", "fleet config (JSON, see configs/fleet.json); requires -shard and overrides -addr with the shard's configured address")
		shardName = flag.String("shard", "", "this daemon's shard name in the -fleet config")

		maxConns    = flag.Int("max-conns", 0, "max concurrent client connections (0 = unlimited); excess connections are answered with one overloaded frame and closed")
		maxInflight = flag.Int("max-inflight", 0, "max concurrently executing requests (0 = unlimited); excess requests are shed with a retryable overloaded response")
		drainWait   = flag.Duration("drain-timeout", 10*time.Second, "graceful-drain deadline on SIGTERM/SIGINT or gridctl drain")
	)
	flag.Parse()

	if *listM {
		for _, info := range trust.Models() {
			fmt.Printf("%-10s %s\n", info.Name, info.Description)
		}
		return
	}
	if !trust.KnownModel(*model) {
		fatalf("unknown trust model %q (see -list-models)", *model)
	}
	var fleetCfg fleet.Config
	if *fleetPath != "" {
		if *shardName == "" {
			fatalf("-fleet requires -shard")
		}
		var err error
		fleetCfg, err = fleet.LoadConfig(*fleetPath)
		if err != nil {
			fatalf("fleet: %v", err)
		}
		i := fleetCfg.Index(*shardName)
		if i < 0 {
			fatalf("fleet: shard %q not in %s (members: %v)", *shardName, *fleetPath, fleetCfg.Names())
		}
		// The fleet config is the single source of addresses: peers dial
		// this shard at its configured address, so listen exactly there.
		*addr = fleetCfg.Shards[i].Addr
	}

	top, err := gridgen.Generate(rng.New(*seed), gridgen.Spec{GridDomains: *domains})
	if err != nil {
		fatalf("topology: %v", err)
	}
	if *dot {
		if err := grid.WriteDOT(os.Stdout, top, nil); err != nil {
			fatalf("dot: %v", err)
		}
		return
	}
	trms, err := core.New(core.Config{
		Topology:   top,
		Agents:     *agents,
		TCWeight:   *tcWeight,
		Trust:      trust.Config{Alpha: 0.8, Beta: 0.2, Smoothing: 0.4},
		TrustModel: *model,
	})
	if err != nil {
		fatalf("TRMS: %v", err)
	}
	defer trms.Close()

	srv, err := rmswire.NewServer(trms)
	if err != nil {
		fatalf("server: %v", err)
	}
	srv.MaxConns = *maxConns
	srv.MaxInFlight = *maxInflight
	journalled := *dataDir != ""
	if *dataDir != "" {
		// Feed group-commit batch sizes into the metrics registry: the
		// observer runs on the WAL's sync path, and a histogram observe is
		// three atomic adds, well within its no-blocking contract.
		batchHist := srv.Metrics().Histogram(rmswire.MetricWALBatchRecords)
		log, rec, err := wal.Create(*dataDir, wal.Options{
			SyncObserver: func(records uint64) { batchHist.Observe(records) },
		})
		if err != nil {
			fatalf("wal: %v", err)
		}
		defer log.Close()
		tm := trms.Model()
		if err := checkMeta(*dataDir, daemonMeta{
			TopologySeed: *seed, Domains: *domains, Agents: *agents, TCWeight: *tcWeight,
			TrustModel:     tm.ModelName(),
			TrustParamHash: trust.ParamHash(tm.ModelName(), tm.ModelParams()),
		}); err != nil {
			fatalf("data dir: %v", err)
		}
		if err := srv.AttachJournal(log, rec, *compact); err != nil {
			fatalf("journal: %v", err)
		}
		if !rec.Clean() {
			fmt.Printf("wal: repaired on recovery (%d torn bytes, %d dropped segments, %d corrupt snapshots)\n",
				rec.TruncatedBytes, rec.DroppedSegments, rec.CorruptSnapshots)
		}
		fmt.Printf("wal: recovered snapshot@%d + %d records from %s\n",
			rec.SnapshotSeq, len(rec.Records), *dataDir)
	}
	// Join the fleet after the journal is attached (the placement-ID
	// namespace must be raised above what replay restored) and before
	// serving (router and status hooks are read without locks once
	// traffic starts).  All fleet chatter goes to stderr: a single-shard
	// fleet daemon must be byte-identical on stdout to a plain one.
	var fl *fleet.Fleet
	if *fleetPath != "" {
		var err error
		fl, err = fleet.Start(fleetCfg, *shardName, srv, trms)
		if err != nil {
			fatalf("fleet: %v", err)
		}
		defer fl.Close()
	}
	bound, err := srv.ListenAndServe(*addr)
	if err != nil {
		fatalf("listen: %v", err)
	}

	fmt.Printf("gridtrustd listening on %s\n", bound)
	if fl != nil {
		gossip := fl.TrustAddr()
		if gossip == "" {
			gossip = "none (single shard)"
		}
		fmt.Fprintf(os.Stderr, "fleet: shard %s, %d member(s), trust gossip on %s\n",
			*shardName, len(fleetCfg.Shards), gossip)
	}
	fmt.Printf("topology: %s, %d trust entries\n", grid.Summary(top), trms.Table().Len())

	if *demo {
		defer srv.Close()
		if err := runDemo(bound.String(), top); err != nil {
			fatalf("demo: %v", err)
		}
		return
	}

	// Graceful drain on SIGTERM/SIGINT or a client drain op: stop
	// accepting, finish in-flight requests under the drain deadline, take
	// a final checkpoint so restart replays from one snapshot, exit 0.
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case s := <-sig:
		fmt.Printf("draining: signal %v\n", s)
	case <-srv.DrainRequested():
		fmt.Println("draining: requested over the wire")
	}
	if !srv.Shutdown(*drainWait) {
		fmt.Printf("drain deadline %v exceeded; connections force-closed\n", *drainWait)
	}
	if journalled {
		if info, err := srv.Checkpoint(); err != nil {
			fmt.Fprintf(os.Stderr, "gridtrustd: final checkpoint: %v\n", err)
		} else {
			fmt.Printf("final checkpoint: boundary seq %d, %d record(s) compacted\n",
				info.Boundary, info.Compacted)
		}
	}
	fmt.Println("drained; exiting")
}

// runDemo exercises the daemon end to end with a handful of tasks.
func runDemo(addr string, top *grid.Topology) error {
	client, err := rmswire.Dial(addr)
	if err != nil {
		return err
	}
	defer client.Close()

	clientID := top.Clients()[0].ID
	nMachines := len(top.Machines())
	// Find an activity every RD supports so the demo always schedules;
	// fall back to compute.
	act := grid.ActCompute
	for a := grid.Activity(0); a < grid.NumBuiltinActivities; a++ {
		supported := true
		for _, rd := range top.ResourceDomains() {
			if _, ok := rd.Supported[a]; !ok {
				supported = false
				break
			}
		}
		if supported {
			act = a
			break
		}
	}
	for i := 0; i < 5; i++ {
		eec := make([]float64, nMachines)
		for m := range eec {
			eec[m] = 100 + float64((i*7+m*13)%40)
		}
		p, err := client.Submit(clientID, []grid.Activity{act}, grid.LevelD, eec, float64(i*10))
		if err != nil {
			return fmt.Errorf("submit %d: %w", i, err)
		}
		fmt.Printf("demo: task %d → machine %d (RD %d), TC=%d, ECC=%.1f\n",
			i, p.Machine, p.RD, p.TC, p.ECC)
		if err := client.Report(p.ID, 5.5, float64(i*10+5)); err != nil {
			return fmt.Errorf("report %d: %w", i, err)
		}
	}
	st, err := client.Stats()
	if err != nil {
		return err
	}
	fmt.Printf("demo: placed=%d agents processed=%d committed=%d table v%d\n",
		st.Placed, st.AgentsProcessed, st.AgentsCommitted, st.TableVersion)
	return nil
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "gridtrustd: "+format+"\n", args...)
	os.Exit(1)
}
