// Command secbench reproduces the security-overhead measurements of the
// paper's Section 5.1: secure (scp) versus plain (rcp) file transfer on
// 100 and 1000 Mbps networks (Tables 2 and 3) and the MiSFIT / SASI x86SFI
// sandboxing overheads.
//
// Usage:
//
//	secbench                 # Tables 2 and 3 plus the sandboxing summary
//	secbench -net 1000       # Table 3 only
//	secbench -sandbox        # sandboxing summary only
//	secbench -sizes 1,64,2048 -format csv
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"gridtrust"
	"gridtrust/internal/report"
	"gridtrust/internal/secover"
)

func main() {
	var (
		net     = flag.Float64("net", 0, "network speed in Mbps (100 or 1000; 0 = both)")
		sandbox = flag.Bool("sandbox", false, "print only the sandboxing overheads")
		format  = flag.String("format", "ascii", "output format: ascii, markdown or csv")
		sizes   = flag.String("sizes", "", "comma-separated file sizes in MB (default: the paper's 1,10,100,500,1000)")
	)
	flag.Parse()

	if *sandbox {
		printTable(gridtrust.SandboxTable(), *format)
		return
	}

	sizeList := secover.PaperSizes
	if *sizes != "" {
		var err error
		sizeList, err = parseFloats(*sizes)
		if err != nil {
			fatalf("bad -sizes: %v", err)
		}
	}

	speeds := []float64{100, 1000}
	if *net != 0 {
		speeds = []float64{*net}
	}
	for _, mbps := range speeds {
		link, err := secover.LinkFor(mbps)
		if err != nil {
			fatalf("%v", err)
		}
		rows, err := link.Table(sizeList)
		if err != nil {
			fatalf("%v", err)
		}
		id := gridtrust.Table2Transfer100
		if mbps == 1000 {
			id = gridtrust.Table3Transfer1000
		}
		tb := report.NewTable(id.Title(),
			"File size/MB", "Using rcp/(sec)", "Using scp/(sec)", "Overhead")
		for _, r := range rows {
			tb.AddRow(
				fmt.Sprintf("%g", r.SizeMB),
				fmt.Sprintf("%.2f", r.RcpSeconds),
				fmt.Sprintf("%.2f", r.ScpSeconds),
				report.Percent(r.OverheadPercent, 2),
			)
		}
		printTable(tb, *format)
		fmt.Printf("  asymptotic overhead (cipher-bound): %s\n\n",
			report.Percent(link.AsymptoticOverheadPercent(), 1))
	}

	fmt.Println("Sandboxing overheads cited in Section 5.1:")
	printTable(gridtrust.SandboxTable(), *format)
}

func printTable(tb *report.Table, format string) {
	out, err := tb.Render(format)
	if err != nil {
		fatalf("render: %v", err)
	}
	fmt.Print(out)
}

func parseFloats(s string) ([]float64, error) {
	var out []float64
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		v, err := strconv.ParseFloat(part, 64)
		if err != nil || v < 0 {
			return nil, fmt.Errorf("%q is not a non-negative number", part)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty list")
	}
	return out, nil
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "secbench: "+format+"\n", args...)
	os.Exit(1)
}
