// Command gridload is the load-bench driver for gridtrustd: it drives a
// running daemon with N concurrent clients in closed- or open-loop mode,
// measures client-side throughput and latency percentiles with
// coordinated-omission correction, and reconciles its totals against
// the daemon's {"op":"metrics"} counters — exiting non-zero if the
// books do not balance.
//
// Usage:
//
//	gridload -addr 127.0.0.1:7431 -clients 8 -duration 10s
//	gridload -mode open -rps 500 -arrival poisson -duration 10s
//	gridload -format json > run.json
//
// Every submit travels under an idempotency key derived from -key-prefix
// and -seed; runs against a durable daemon should use a fresh prefix per
// run so keys never collide with an earlier run's.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"gridtrust/internal/fleet"
	"gridtrust/internal/load"
)

func main() {
	var (
		addr     = flag.String("addr", "127.0.0.1:7431", "daemon address")
		fleetCfg = flag.String("fleet", "", "fleet config (JSON): drive every shard, reconcile fleet-wide; overrides -addr")
		clients  = flag.Int("clients", 4, "concurrent load clients")
		mode     = flag.String("mode", load.ModeClosed, "closed (capacity) or open (fixed arrival rate)")
		rate     = flag.Float64("rps", 0, "open-loop target requests per second")
		arrival  = flag.String("arrival", load.ArrivalConstant, "open-loop arrival process: constant, poisson, bursty")
		duration = flag.Duration("duration", 5*time.Second, "timed phase length")
		repFrac  = flag.Float64("report-fraction", 1, "fraction of placements that get an outcome report")
		outcome  = flag.Float64("outcome", 5, "reported outcome on [1,6]")
		rtl      = flag.String("rtl", "A", "required trust level letter A-F")
		slo      = flag.Duration("slo", 50*time.Millisecond, "submit latency objective")
		seed     = flag.Uint64("seed", 1, "deterministic seed for arrivals, tasks and keys")
		prefix   = flag.String("key-prefix", "", "idempotency-key namespace (default: load-<seed>)")
		attempts = flag.Int("max-attempts", 0, "retrier attempts per op (0 = default)")
		budget   = flag.Duration("budget", 0, "admission budget sent with each request")
		opTO     = flag.Duration("op-timeout", 5*time.Second, "per-op client deadline")
		settle   = flag.Duration("settle-timeout", 15*time.Second, "bound on the post-run settle pass")
		format   = flag.String("format", "text", "output format: text or json")
		full     = flag.Bool("daemon-snapshots", false, "include full before/after daemon metric snapshots in JSON output")
	)
	flag.Parse()

	if *prefix == "" {
		*prefix = fmt.Sprintf("load-%d", *seed)
	}
	var fleetAddrs []string
	if *fleetCfg != "" {
		cfg, err := fleet.LoadConfig(*fleetCfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "gridload: %v\n", err)
			os.Exit(1)
		}
		for _, s := range cfg.Shards {
			fleetAddrs = append(fleetAddrs, s.Addr)
		}
	}
	rep, err := load.Run(load.Config{
		Addr:           *addr,
		FleetAddrs:     fleetAddrs,
		Clients:        *clients,
		Mode:           *mode,
		Rate:           *rate,
		Arrival:        *arrival,
		Duration:       *duration,
		ReportFraction: *repFrac,
		Outcome:        *outcome,
		RTL:            *rtl,
		SLO:            *slo,
		Seed:           *seed,
		KeyPrefix:      *prefix,
		MaxAttempts:    *attempts,
		Budget:         *budget,
		OpTimeout:      *opTO,
		SettleTimeout:  *settle,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "gridload: %v\n", err)
		os.Exit(1)
	}
	if !*full {
		rep.DaemonBefore, rep.DaemonAfter = nil, nil
	}
	switch *format {
	case "json":
		blob, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "gridload: %v\n", err)
			os.Exit(1)
		}
		fmt.Println(string(blob))
	case "text":
		fmt.Print(rep.Text())
	default:
		fmt.Fprintf(os.Stderr, "gridload: unknown format %q\n", *format)
		os.Exit(2)
	}
	if !rep.Reconcile.OK {
		fmt.Fprintln(os.Stderr, "gridload: reconciliation FAILED: client totals disagree with daemon metrics")
		os.Exit(3)
	}
}
