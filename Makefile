# Convenience targets; scripts/ci.sh is the canonical verify flow.

.PHONY: verify test race smoke bench bench-kernels bench-sweep bench-fault bench-wal bench-des bench-des-flagship bench-trustzoo bench-serve bench-fleet

# verify runs the tier-1 flow: build, vet, full tests, race tests for
# the concurrent packages (exp's experiment engine, sim's cell runners,
# sched's pooled kernels), and a sweep smoke across every mode.
verify:
	./scripts/ci.sh

test:
	go test ./...

race:
	go test -race ./internal/exp/... ./internal/fault/... ./internal/sched/... ./internal/sim/... ./internal/trust/... ./internal/wal/... ./internal/rmswire/... ./internal/metrics/... ./internal/load/... ./internal/trustwire/... ./internal/fleet/... ./internal/chaos/...

# smoke runs every sweep mode once through the experiment engine on a
# tiny grid (mirrors the smoke stage of scripts/ci.sh).
smoke:
	go build -o /tmp/gridtrust-smoke-sweep ./cmd/sweep
	for mode in heuristics tcweight heterogeneity batch machines etsrule rate evolving deadline staging fault trustzoo; do \
		/tmp/gridtrust-smoke-sweep -mode $$mode -reps 2 -tasks 20 -seed 1 > /dev/null || exit 1; \
	done
	rm -f /tmp/gridtrust-smoke-sweep

# bench regenerates the paper-table and kernel benchmarks recorded in
# BENCH_sched.json (see EXPERIMENTS.md for methodology).
bench:
	go test -run '^$$' -bench 'Kernel|Table[4-9]' -benchmem ./...

# bench-kernels runs only the batch-kernel suite (optimized vs reference).
bench-kernels:
	go test ./internal/sched -run '^$$' -bench 'Kernel' -benchmem

# bench-sweep measures the experiment-engine flattening recorded in
# BENCH_sweep.json (serial-cells vs global-pool scheduling).
bench-sweep:
	go test -run '^$$' -bench 'SweepGrid|EngineFlattening' ./internal/sim ./internal/exp

# bench-fault measures the fault-path overhead recorded in
# BENCH_fault.json (fast path vs masking-only vs real churn).
bench-fault:
	go test ./internal/sim -run '^$$' -bench 'FaultPathOverhead' -benchmem

# bench-wal measures write-ahead-log append throughput (group commit vs
# NoSync) and recovery speed, recorded in BENCH_wal.json.
bench-wal:
	go test ./internal/wal -run '^$$' -bench 'Append|Recover' -benchmem

# bench-des measures the flat DES kernel against the closure-based
# reference (queue microbenchmarks plus end-to-end replications at 1024
# machines), recorded in BENCH_des.json.
bench-des:
	go test ./internal/des -run '^$$' -bench 'ScheduleDrain|SteadyState|CancelHeavy' -benchmem
	go test ./internal/sim -run '^$$' -bench 'SimRun' -benchmem

# bench-des-flagship runs the 5000-machine x 1M-task headline replication
# once (about half a minute; see BENCH_des.json).
bench-des-flagship:
	go test ./internal/sim -run '^$$' -bench 'SimFlagship' -benchtime 1x -benchmem -timeout 30m

# bench-serve measures the daemon end to end with gridload: sustained
# closed-loop RPS per core and open-loop latency percentiles at two
# concurrency levels, reconciled against the daemon's own metrics and
# recorded in BENCH_serve.json (see EXPERIMENTS.md for methodology).
bench-serve:
	./scripts/bench_serve.sh

# bench-fleet measures a 3-shard fleet against a single journalled
# daemon at the same total client count: aggregate closed-loop RPS with
# consistent-hash forwarding and trust gossip on, reconciled fleet-wide
# and recorded in BENCH_fleet.json.  Fails unless the fleet wins.
bench-fleet:
	./scripts/bench_fleet.sh

# bench-trustzoo measures every registered trust model: one reputation-
# study replication per adversary scenario, plus the model-driven DES
# overhead vs the static table path.  Recorded in BENCH_trustzoo.json.
bench-trustzoo:
	go test ./internal/fault -run '^$$' -bench 'TrustzooRunZoo' -benchmem
	go test ./internal/sim -run '^$$' -bench 'TrustzooModelOverhead' -benchmem
