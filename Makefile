# Convenience targets; scripts/ci.sh is the canonical verify flow.

.PHONY: verify test race bench bench-kernels

# verify runs the tier-1 flow: build, vet, full tests, and race tests for
# the concurrent packages (sim's worker pool, sched's pooled kernels).
verify:
	./scripts/ci.sh

test:
	go test ./...

race:
	go test -race ./internal/sched/... ./internal/sim/...

# bench regenerates the paper-table and kernel benchmarks recorded in
# BENCH_sched.json (see EXPERIMENTS.md for methodology).
bench:
	go test -run '^$$' -bench 'Kernel|Table[4-9]' -benchmem ./...

# bench-kernels runs only the batch-kernel suite (optimized vs reference).
bench-kernels:
	go test ./internal/sched -run '^$$' -bench 'Kernel' -benchmem
