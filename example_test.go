package gridtrust_test

import (
	"fmt"

	"gridtrust"
	"gridtrust/internal/secover"
)

// ExampleETSRows renders the paper's Table 1.
func ExampleETSRows() {
	out, err := gridtrust.ETSRows().Render("ascii")
	if err != nil {
		panic(err)
	}
	fmt.Print(out)
	// Output:
	// Table 1. Expected trust supplement values.
	// +--------------+---+---+---+---+---+
	// | requested TL | A | B | C | D | E |
	// +--------------+---+---+---+---+---+
	// | A            | 0 | 0 | 0 | 0 | 0 |
	// | B            | 1 | 0 | 0 | 0 | 0 |
	// | C            | 2 | 1 | 0 | 0 | 0 |
	// | D            | 3 | 2 | 1 | 0 | 0 |
	// | E            | 4 | 3 | 2 | 1 | 0 |
	// | F            | 6 | 6 | 6 | 6 | 6 |
	// +--------------+---+---+---+---+---+
}

// ExampleLink_OverheadPercent reproduces the paper's headline transfer
// overheads: securing a 1 GB copy costs ~37% of the transfer on a
// 100 Mbps LAN and ~67% on gigabit, where the cipher is the bottleneck.
func ExampleLink_OverheadPercent() {
	for _, link := range []secover.Link{secover.Link100, secover.Link1000} {
		ov, err := link.OverheadPercent(1000)
		if err != nil {
			panic(err)
		}
		fmt.Printf("%4.0f Mbps: %.1f%%\n", link.Mbps, ov)
	}
	// Output:
	//  100 Mbps: 37.4%
	// 1000 Mbps: 66.7%
}

// ExampleRunSimTable reproduces a (small, fast) slice of Table 4 and
// verifies the paper's qualitative claim programmatically.
func ExampleRunSimTable() {
	res, err := gridtrust.RunSimTable(gridtrust.Table4MCTInconsistent, gridtrust.SimOptions{
		Seed: 1, Reps: 8, TaskCounts: []int{30},
	})
	if err != nil {
		panic(err)
	}
	cell := res.Cells[0]
	fmt.Printf("trust-aware MCT improves average completion time: %v\n",
		cell.AwareCompletion < cell.UnawareCompletion)
	fmt.Printf("improvement is statistically significant: %v\n", cell.Significant)
	// Output:
	// trust-aware MCT improves average completion time: true
	// improvement is statistically significant: true
}
