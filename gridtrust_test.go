package gridtrust

import (
	"strings"
	"testing"
)

func TestSimTablesEnumeration(t *testing.T) {
	ids := SimTables()
	if len(ids) != 6 {
		t.Fatalf("SimTables returned %d ids", len(ids))
	}
	for _, id := range ids {
		h, _, err := simTableSpec(id)
		if err != nil || h == "" {
			t.Errorf("table %d has no spec: %v", int(id), err)
		}
		if !strings.HasPrefix(id.Title(), "Table") {
			t.Errorf("table %d title %q", int(id), id.Title())
		}
	}
	if _, _, err := simTableSpec(Table1ETS); err == nil {
		t.Error("Table 1 accepted as a simulation table")
	}
}

func TestRunSimTableSmall(t *testing.T) {
	res, err := RunSimTable(Table4MCTInconsistent, SimOptions{
		Seed: 1, Reps: 6, TaskCounts: []int{20},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cells) != 1 {
		t.Fatalf("cells = %d", len(res.Cells))
	}
	c := res.Cells[0]
	if c.ImprovementPct <= 0 {
		t.Errorf("trust-aware did not improve: %+v", c)
	}
	if c.AwareCompletion >= c.UnawareCompletion {
		t.Errorf("aware completion not below unaware: %+v", c)
	}
	out, err := res.Render().Render("ascii")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Using trust", "No", "Yes", "Improvement"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered table missing %q:\n%s", want, out)
		}
	}
}

func TestRunSimTableRejectsNonSim(t *testing.T) {
	if _, err := RunSimTable(Table2Transfer100, SimOptions{}); err == nil {
		t.Fatal("accepted a non-simulation table")
	}
}

func TestETSRowsMatchesPaperLayout(t *testing.T) {
	out, err := ETSRows().Render("ascii")
	if err != nil {
		t.Fatal(err)
	}
	// Spot-check the F row: all 6s.
	var fRow string
	for _, line := range strings.Split(out, "\n") {
		if strings.Contains(line, "| F") {
			fRow = line
		}
	}
	if fRow == "" || strings.Count(fRow, "6") != 5 {
		t.Fatalf("F row wrong: %q", fRow)
	}
}

func TestTransferTables(t *testing.T) {
	for _, mbps := range []float64{100, 1000} {
		tb, err := TransferTable(mbps)
		if err != nil {
			t.Fatal(err)
		}
		out, err := tb.Render("ascii")
		if err != nil {
			t.Fatal(err)
		}
		for _, want := range []string{"rcp", "scp", "Overhead", "1000"} {
			if !strings.Contains(out, want) {
				t.Errorf("%g Mbps table missing %q:\n%s", mbps, want, out)
			}
		}
	}
	if _, err := TransferTable(10); err == nil {
		t.Fatal("accepted uncalibrated link speed")
	}
}

func TestSandboxTableRendering(t *testing.T) {
	out, err := SandboxTable().Render("markdown")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"MiSFIT", "SASI", "137%", "264%", "MD5"} {
		if !strings.Contains(out, want) {
			t.Errorf("sandbox table missing %q:\n%s", want, out)
		}
	}
}

func TestTitlesUnique(t *testing.T) {
	seen := map[string]bool{}
	for id := Table1ETS; id <= Table9SufferageConsistent; id++ {
		title := id.Title()
		if seen[title] {
			t.Errorf("duplicate title %q", title)
		}
		seen[title] = true
	}
}

func TestRunEvolvingExperimentFacade(t *testing.T) {
	res, tb, err := RunEvolvingExperiment(EvolvingOptions{Seed: 42, Requests: 120})
	if err != nil {
		t.Fatal(err)
	}
	if res.LateUnreliableShare >= res.EarlyUnreliableShare {
		t.Fatalf("no placement shift: %.2f -> %.2f",
			res.EarlyUnreliableShare, res.LateUnreliableShare)
	}
	out, err := tb.Render("ascii")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "early") || !strings.Contains(out, "late") {
		t.Fatalf("summary table wrong:\n%s", out)
	}
}

func TestRunStagingExperimentFacade(t *testing.T) {
	tb, err := RunStagingExperiment(7, 6, 500)
	if err != nil {
		t.Fatal(err)
	}
	out, err := tb.Render("markdown")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "makespan improvement") || !strings.Contains(out, "plain-transfer share") {
		t.Fatalf("staging table wrong:\n%s", out)
	}
	if _, err := RunStagingExperiment(7, 0, 500); err == nil {
		t.Fatal("zero reps accepted")
	}
}
