// Benchmark harness: one testing.B benchmark per table of the paper, plus
// kernel micro-benchmarks.  The per-table benches report the reproduced
// headline metric (improvement %, overhead %) via b.ReportMetric so that
//
//	go test -bench=. -benchmem
//
// regenerates every experiment's number alongside its runtime cost.
package gridtrust_test

import (
	"fmt"
	"testing"

	"gridtrust"
	"gridtrust/internal/grid"
	"gridtrust/internal/rng"
	"gridtrust/internal/sched"
	"gridtrust/internal/secover"
	"gridtrust/internal/sim"
	"gridtrust/internal/trust"
	"gridtrust/internal/workload"
)

// benchSimTable runs one paper simulation table per iteration with a small
// replication count and reports the 100-task improvement.
func benchSimTable(b *testing.B, id gridtrust.TableID) {
	b.Helper()
	var lastImprovement float64
	for i := 0; i < b.N; i++ {
		res, err := gridtrust.RunSimTable(id, gridtrust.SimOptions{
			Seed: 2002, Reps: 10,
		})
		if err != nil {
			b.Fatal(err)
		}
		lastImprovement = res.Cells[len(res.Cells)-1].ImprovementPct
	}
	b.ReportMetric(lastImprovement, "improvement_%")
}

// BenchmarkTable1ETS regenerates Table 1 (deterministic ETS values).
func BenchmarkTable1ETS(b *testing.B) {
	var sink int
	for i := 0; i < b.N; i++ {
		t := grid.ETSTable()
		sink += t[5][0]
	}
	b.ReportMetric(float64(grid.MustETS(grid.LevelF, grid.LevelA)), "ets_F_A")
	_ = sink
}

// BenchmarkTable2Secover100Mbps regenerates Table 2 and reports the
// 1000 MB security overhead.
func BenchmarkTable2Secover100Mbps(b *testing.B) {
	var last float64
	for i := 0; i < b.N; i++ {
		rows, err := secover.Link100.Table(secover.PaperSizes)
		if err != nil {
			b.Fatal(err)
		}
		last = rows[len(rows)-1].OverheadPercent
	}
	b.ReportMetric(last, "overhead_%_1000MB")
}

// BenchmarkTable3Secover1000Mbps regenerates Table 3 and reports the
// 1000 MB security overhead.
func BenchmarkTable3Secover1000Mbps(b *testing.B) {
	var last float64
	for i := 0; i < b.N; i++ {
		rows, err := secover.Link1000.Table(secover.PaperSizes)
		if err != nil {
			b.Fatal(err)
		}
		last = rows[len(rows)-1].OverheadPercent
	}
	b.ReportMetric(last, "overhead_%_1000MB")
}

// BenchmarkSection51Sandbox regenerates the sandboxing overhead summary
// and reports the worst case (SASI on page-eviction hotlist).
func BenchmarkSection51Sandbox(b *testing.B) {
	var worst float64
	for i := 0; i < b.N; i++ {
		for _, row := range secover.SandboxTable() {
			if row.SASIPct > worst {
				worst = row.SASIPct
			}
		}
	}
	b.ReportMetric(worst, "worst_overhead_%")
}

// BenchmarkTable4MCTInconsistent .. BenchmarkTable9SufferageConsistent
// regenerate the six simulation tables.
func BenchmarkTable4MCTInconsistent(b *testing.B) {
	benchSimTable(b, gridtrust.Table4MCTInconsistent)
}

func BenchmarkTable5MCTConsistent(b *testing.B) {
	benchSimTable(b, gridtrust.Table5MCTConsistent)
}

func BenchmarkTable6MinMinInconsistent(b *testing.B) {
	benchSimTable(b, gridtrust.Table6MinMinInconsistent)
}

func BenchmarkTable7MinMinConsistent(b *testing.B) {
	benchSimTable(b, gridtrust.Table7MinMinConsistent)
}

func BenchmarkTable8SufferageInconsistent(b *testing.B) {
	benchSimTable(b, gridtrust.Table8SufferageInconsistent)
}

func BenchmarkTable9SufferageConsistent(b *testing.B) {
	benchSimTable(b, gridtrust.Table9SufferageConsistent)
}

// ── Kernel micro-benchmarks ──────────────────────────────────────────

// BenchmarkWorkloadGeneration measures drawing a full paper workload.
func BenchmarkWorkloadGeneration(b *testing.B) {
	spec := workload.PaperSpec(100, workload.Inconsistent)
	src := rng.New(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := workload.NewWorkload(src, spec); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPairedRun measures one full paired (aware+unaware) simulation.
func BenchmarkPairedRun(b *testing.B) {
	sc := sim.PaperScenario("mct", 100, workload.Inconsistent)
	src := rng.New(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := sim.RunPair(sc, src); err != nil {
			b.Fatal(err)
		}
	}
}

// benchHeuristicBatch measures one batch heuristic mapping a 100x5 batch.
func benchHeuristicBatch(b *testing.B, h sched.Batch) {
	b.Helper()
	src := rng.New(7)
	exec := make([][]float64, 100)
	tc := make([][]int, 100)
	for i := range exec {
		exec[i] = make([]float64, 5)
		tc[i] = make([]int, 5)
		for m := range exec[i] {
			exec[i][m] = src.Uniform(1, 1000)
			tc[i][m] = src.IntRange(0, 6)
		}
	}
	costs, err := sched.NewMatrixCosts(exec, tc)
	if err != nil {
		b.Fatal(err)
	}
	reqs := make([]int, 100)
	for i := range reqs {
		reqs[i] = i
	}
	avail := make([]float64, 5)
	p := sched.MustTrustAware(sched.DefaultTCWeight)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := h.AssignBatch(costs, p, reqs, avail); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMinMin100x5(b *testing.B)    { benchHeuristicBatch(b, sched.MinMin{}) }
func BenchmarkMaxMin100x5(b *testing.B)    { benchHeuristicBatch(b, sched.MaxMin{}) }
func BenchmarkSufferage100x5(b *testing.B) { benchHeuristicBatch(b, sched.Sufferage{}) }
func BenchmarkDuplex100x5(b *testing.B)    { benchHeuristicBatch(b, sched.Duplex{}) }

// BenchmarkMCTAssign measures a single immediate-mode MCT decision.
func BenchmarkMCTAssign(b *testing.B) {
	costs, err := sched.NewMatrixCosts(
		[][]float64{{10, 20, 30, 40, 50}},
		[][]int{{0, 1, 2, 3, 4}},
	)
	if err != nil {
		b.Fatal(err)
	}
	avail := []float64{5, 4, 3, 2, 1}
	p := sched.MustTrustAware(sched.DefaultTCWeight)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := (sched.MCT{}).AssignOne(costs, p, 0, avail); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCompareParallel measures the full parallel replication pool.
func BenchmarkCompareParallel(b *testing.B) {
	sc := sim.PaperScenario("sufferage", 50, workload.Inconsistent)
	for i := 0; i < b.N; i++ {
		if _, err := sim.Compare(sc, 1, 16, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// ── Ablation benchmarks (design-choice sensitivity, see DESIGN.md §6) ──

// benchAblationTCWeight reports the trust-aware improvement at a given TC
// weight; the paper "arbitrarily" fixes 15, and past ~25 the comparison
// inverts (see EXPERIMENTS.md).
func benchAblationTCWeight(b *testing.B, weight float64) {
	b.Helper()
	sc := sim.PaperScenario("mct", 100, workload.Inconsistent)
	sc.TCWeight = weight
	var last float64
	for i := 0; i < b.N; i++ {
		cmp, err := sim.Compare(sc, 2002, 10, 0)
		if err != nil {
			b.Fatal(err)
		}
		last = cmp.ImprovementPercent()
	}
	b.ReportMetric(last, "improvement_%")
}

func BenchmarkAblationTCWeight0(b *testing.B)  { benchAblationTCWeight(b, 0.001) }
func BenchmarkAblationTCWeight15(b *testing.B) { benchAblationTCWeight(b, 15) }
func BenchmarkAblationTCWeight30(b *testing.B) { benchAblationTCWeight(b, 30) }

// benchAblationETSRule reports the improvement under the two Table 1
// readings — the decisive calibration choice of this reproduction.
func benchAblationETSRule(b *testing.B, rule grid.ETSRule) {
	b.Helper()
	sc := sim.PaperScenario("mct", 100, workload.Inconsistent)
	sc.ETSRule = rule
	var last float64
	for i := 0; i < b.N; i++ {
		cmp, err := sim.Compare(sc, 2002, 10, 0)
		if err != nil {
			b.Fatal(err)
		}
		last = cmp.ImprovementPercent()
	}
	b.ReportMetric(last, "improvement_%")
}

func BenchmarkAblationETSTable1(b *testing.B) { benchAblationETSRule(b, grid.ETSTable1) }
func BenchmarkAblationETSLinear(b *testing.B) { benchAblationETSRule(b, grid.ETSLinear) }

// BenchmarkEvolvingTrust runs the Section 7 evolving-trust experiment and
// reports how little traffic the misbehaving domain retains.
func BenchmarkEvolvingTrust(b *testing.B) {
	var last float64
	for i := 0; i < b.N; i++ {
		res, err := sim.RunEvolving(sim.EvolvingConfig{Requests: 300}, rng.New(42))
		if err != nil {
			b.Fatal(err)
		}
		last = res.LateUnreliableShare * 100
	}
	b.ReportMetric(last, "late_bad_share_%")
}

// BenchmarkTrustEngineGamma measures one Γ computation with reputation
// over a populated engine.
func BenchmarkTrustEngineGamma(b *testing.B) {
	engine, err := trust.NewEngine(trust.Config{Alpha: 0.7, Beta: 0.3, Decay: trust.ExponentialDecay(30)})
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		id := trust.EntityID(fmt.Sprintf("z%d", i))
		if err := engine.SetDirect(id, "target", "compute", 4, float64(i)); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := engine.Trust("x", "target", "compute", 100); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGA100x5 and BenchmarkSAnneal100x5 measure the metaheuristic
// mappers on the standard batch size.
func BenchmarkGA100x5(b *testing.B)      { benchHeuristicBatch(b, sched.NewGeneticAlgorithm(1)) }
func BenchmarkSAnneal100x5(b *testing.B) { benchHeuristicBatch(b, sched.NewSimulatedAnnealing(1)) }
