// Heuristiccomparison reruns the paper's simulation protocol over the
// full heuristic family of Maheswaran et al. [10] — OLB, MET, MCT, KPB and
// SA in immediate mode; Min-min, Max-min, Sufferage and Duplex in batch
// mode — reporting how much each gains from trust awareness on identical
// workloads.
//
// Run with: go run ./examples/heuristiccomparison [-reps 30] [-tasks 100]
package main

import (
	"flag"
	"fmt"
	"log"

	"gridtrust/internal/report"
	"gridtrust/internal/sim"
	"gridtrust/internal/workload"
)

func main() {
	reps := flag.Int("reps", 30, "paired replications per heuristic")
	tasks := flag.Int("tasks", 100, "tasks per run")
	flag.Parse()

	type entry struct {
		name string
		mode sim.Mode
	}
	entries := []entry{
		{"olb", sim.Immediate}, {"met", sim.Immediate}, {"mct", sim.Immediate},
		{"kpb", sim.Immediate}, {"sa", sim.Immediate},
		{"minmin", sim.Batch}, {"maxmin", sim.Batch},
		{"sufferage", sim.Batch}, {"duplex", sim.Batch},
		{"ga", sim.Batch}, {"sanneal", sim.Batch}, {"gsa", sim.Batch},
	}

	tb := report.NewTable(
		fmt.Sprintf("Trust-awareness gain by heuristic (inconsistent LoLo, %d tasks, %d reps)", *tasks, *reps),
		"heuristic", "mode", "avg completion (unaware)", "avg completion (aware)", "improvement")
	tb.SetAlign(1, report.Left)

	for _, e := range entries {
		base := "mct"
		if e.mode == sim.Batch {
			base = "minmin"
		}
		sc := sim.PaperScenario(base, *tasks, workload.Inconsistent)
		sc.Heuristic = e.name
		sc.Mode = e.mode
		sc.Name = e.name
		cmp, err := sim.Compare(sc, 2002, *reps, 0)
		if err != nil {
			log.Fatal(err)
		}
		tb.AddRow(
			e.name,
			e.mode.String(),
			report.Seconds(cmp.Unaware.AvgCompletion.Mean()),
			report.Seconds(cmp.Aware.AvgCompletion.Mean()),
			report.Percent(cmp.ImprovementPercent(), 2),
		)
	}
	out, err := tb.Render("ascii")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(out)
	fmt.Println(`
OLB ignores cost and trails everything.  MET looks surprisingly strong on
*inconsistent* matrices — each machine is the execution-cost minimum for
about a fifth of the tasks, so MET both balances load and minimises total
work — but rerun with consistent matrices (edit the workload class) and it
collapses onto the single fastest machine, exactly as Maheswaran et al.
report.  Every heuristic gains from trust awareness; the magnitude tracks
how much freedom it has to trade execution speed against trust cost.`)
}
