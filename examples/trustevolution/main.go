// Trustevolution demonstrates the paper's Section 2 trust machinery in
// isolation: direct trust Θ, reputation Ω, the eventual trust
// Γ = α·Θ + β·Ω, time decay Υ, and the recommender trust factor R that
// blunts collusion.
//
// Run with: go run ./examples/trustevolution
package main

import (
	"fmt"
	"log"

	"gridtrust/internal/trust"
)

func main() {
	engine, err := trust.NewEngine(trust.Config{
		Alpha:        0.6,                        // weight of direct experience
		Beta:         0.4,                        // weight of reputation
		Decay:        trust.ExponentialDecay(30), // half-life of 30 days
		InitialScore: 1,                          // strangers start at level A
		Smoothing:    0.5,
	})
	if err != nil {
		log.Fatal(err)
	}

	const ctx = trust.Context("compute")
	show := func(when float64, label string) {
		g, err := engine.Trust("alice", "datacenter", ctx, when)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("day %3.0f  Γ(alice→datacenter) = %.2f   %s\n", when, g, label)
	}

	show(0, "(stranger: nothing known)")

	// ── Direct experience accumulates. ───────────────────────────────
	for day := 1.0; day <= 5; day++ {
		if _, err := engine.Observe("alice", "datacenter", ctx, 6, day); err != nil {
			log.Fatal(err)
		}
	}
	show(5, "(five flawless direct transactions)")

	// ── Reputation: two honest peers report mediocre experiences. ────
	if err := engine.SetDirect("bob", "datacenter", ctx, 3, 5); err != nil {
		log.Fatal(err)
	}
	if err := engine.SetDirect("carol", "datacenter", ctx, 2, 5); err != nil {
		log.Fatal(err)
	}
	show(5, "(reputation pulls Γ down: peers report 3 and 2)")

	// ── Collusion: a clique allied with the datacenter floods it with
	// perfect scores.  The recommender trust factor R discounts them. ─
	for _, shill := range []trust.EntityID{"shill-1", "shill-2", "shill-3", "shill-4"} {
		if err := engine.SetDirect(shill, "datacenter", ctx, 6, 5); err != nil {
			log.Fatal(err)
		}
		engine.DeclareAlliance(shill, "datacenter")
	}
	show(5, "(four colluding shills barely move Γ — R dampens allies)")

	// ── Decay: silence erodes trust toward the floor. ────────────────
	show(35, "(one half-life later: direct trust has halved)")
	show(125, "(four half-lives: approaching the level-A floor)")

	// ── A fresh transaction restores recency. ────────────────────────
	if _, err := engine.Observe("alice", "datacenter", ctx, 5, 125); err != nil {
		log.Fatal(err)
	}
	show(125, "(one new good transaction re-anchors the relationship)")

	fmt.Printf("\nengine tracks %d entities and %d relationships\n",
		len(engine.Entities()), engine.Relationships())
}
