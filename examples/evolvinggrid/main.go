// Evolvinggrid runs the paper's future-work loop end to end: a Grid with
// one well-behaved and one misbehaving resource domain, a trust table that
// starts optimistic, monitoring agents that score every transaction
// (timeliness, integrity, security incidents), and a trust-aware scheduler
// whose placements drift away from the domain that keeps causing
// incidents.
//
// Run with: go run ./examples/evolvinggrid [-requests 400] [-incident 0.5]
package main

import (
	"flag"
	"fmt"
	"log"

	"gridtrust/internal/report"
	"gridtrust/internal/rng"
	"gridtrust/internal/sim"
)

func main() {
	requests := flag.Int("requests", 400, "number of submitted tasks")
	incident := flag.Float64("incident", 0.5, "security-incident probability of the misbehaving domain")
	seed := flag.Uint64("seed", 42, "random seed")
	flag.Parse()

	res, err := sim.RunEvolving(sim.EvolvingConfig{
		Requests:               *requests,
		UnreliableIncidentProb: *incident,
	}, rng.New(*seed))
	if err != nil {
		log.Fatal(err)
	}

	tb := report.NewTable("Evolving trust: placement shares on the misbehaving domain",
		"phase", "share on misbehaving RD", "mean trust cost")
	tb.AddRow("early (cold table)",
		report.Fraction(res.EarlyUnreliableShare, 1),
		fmt.Sprintf("%.2f", res.MeanTCEarly))
	tb.AddRow("late (evolved table)",
		report.Fraction(res.LateUnreliableShare, 1),
		fmt.Sprintf("%.2f", res.MeanTCLate))
	out, err := tb.Render("ascii")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(out)

	fmt.Printf(`
final trust-level table (compute):  reliable RD = %v   misbehaving RD = %v
placements: %d reliable vs %d misbehaving; incidents observed: %d vs %d

The monitoring agents (Figure 1) scored each completed transaction with
the behavior package; security incidents floor the outcome at level A,
the trust engine's EWMA drags the misbehaving domain's Γ down, the agents
write the quantised level into the shared table, and the trust-aware MCT
scheduler — seeing a growing expected security cost there — routes new
work to the domain that earned its trust.
`,
		res.FinalTrustReliable, res.FinalTrustUnreliable,
		res.Placements[sim.ReliableRD], res.Placements[sim.UnreliableRD],
		res.Incidents[sim.ReliableRD], res.Incidents[sim.UnreliableRD])
}
