// Quickstart: build a two-domain Grid, stand up the trust-aware resource
// management system (TRMS) of the paper's Figure 1, submit a handful of
// tasks, report their outcomes, and watch placements move as the trust
// table evolves.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"gridtrust/internal/core"
	"gridtrust/internal/grid"
	"gridtrust/internal/trust"
)

func main() {
	// ── 1. Describe the Grid: two grid domains, each with one machine;
	// domain 0 also hosts our client. ────────────────────────────────
	newRD := func(id grid.DomainID) *grid.ResourceDomain {
		return &grid.ResourceDomain{
			ID:    id,
			Owner: fmt.Sprintf("org-%d", id),
			Supported: map[grid.Activity]grid.TrustLevel{
				grid.ActCompute: grid.LevelC,
				grid.ActStorage: grid.LevelC,
			},
			RTL:      grid.LevelA, // this resource trusts anyone
			Machines: []*grid.Machine{{ID: grid.MachineID(id), Name: fmt.Sprintf("m%d", id), RD: id}},
		}
	}
	topology, err := grid.NewTopology(
		&grid.GridDomain{
			ID: 0, Name: "alpha", Owner: "org-0",
			RD: newRD(0),
			CD: &grid.ClientDomain{
				ID: 0, Owner: "org-0",
				Sought:  map[grid.Activity]grid.TrustLevel{grid.ActCompute: grid.LevelC},
				RTL:     grid.LevelA,
				Clients: []*grid.Client{{ID: 0, Name: "alice", CD: 0}},
			},
		},
		&grid.GridDomain{ID: 1, Name: "beta", Owner: "org-1", RD: newRD(1)},
	)
	if err != nil {
		log.Fatal(err)
	}

	// ── 2. Start the TRMS: MCT heuristic, evolving trust engine, two
	// monitoring agents writing back into the shared trust table. ────
	trms, err := core.New(core.Config{
		Topology: topology,
		Trust:    trust.Config{Alpha: 0.8, Beta: 0.2, Smoothing: 0.6},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer trms.Close()

	// ── 3. Submit a security-sensitive task (requires level E).  Both
	// domains currently offer the default level C, so every machine
	// carries trust cost ETS(E,C) = 2 → ESC = 30% of EEC. ─────────────
	task := core.Task{
		Client: 0,
		ToA:    grid.MustToA(grid.ActCompute, grid.ActStorage),
		RTL:    grid.LevelE,
		EEC:    []float64{100, 110}, // machine 0 is a bit faster
	}
	p, err := trms.Submit(task, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("t=0    task → machine %d (RD %d)  OTL=%v TC=%d  EEC=%.0f ESC=%.0f → finishes at %.0f\n",
		p.Machine.ID, p.RD, p.OTL, p.TC, p.EEC, p.ESC, p.Finish)

	// ── 4. The interaction goes flawlessly: report outcome 6 (best) for
	// several transactions.  The agents feed the trust engine, which
	// lifts domain 0's trust level in the table. ──────────────────────
	for i := 0; i < 4; i++ {
		if err := trms.ReportOutcome(p, task.ToA, 6, float64(i+1)); err != nil {
			log.Fatal(err)
		}
	}
	trms.Drain()
	tl, _ := trms.Table().Get(0, 0, grid.ActCompute)
	fmt.Printf("t=5    after 4 excellent outcomes, trust table (CD0→RD0, compute) = %v\n", tl)

	// ── 5. Submit again at a later time: the trusted domain now carries
	// no security surcharge, so the scheduler keeps preferring it even
	// for this high-requirement task. ─────────────────────────────────
	p2, err := trms.Submit(task, 1000)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("t=1000 task → machine %d  OTL=%v TC=%d  ECC=%.0f (was %.0f before trust built up)\n",
		p2.Machine.ID, p2.OTL, p2.TC, p2.ECC, p.ECC)

	processed, committed, _ := trms.AgentStats()
	fmt.Printf("agents processed %d transactions, committed %d trust revisions\n", processed, committed)
}
