// Batchscheduling walks through the paper's batch-mode TRM algorithms on
// a small hand-inspectable meta-request: the same five tasks are mapped by
// trust-aware Min-min, Max-min, Sufferage and Duplex, first ignoring trust
// and then honouring it, printing the schedules side by side.
//
// Run with: go run ./examples/batchscheduling
package main

import (
	"fmt"
	"log"

	"gridtrust/internal/report"
	"gridtrust/internal/sched"
)

func main() {
	// Five tasks, three machines.  Machine 0 is fast but belongs to a
	// poorly trusted domain (TC 4 for most tasks); machine 2 is slow but
	// fully trusted.
	exec := [][]float64{
		{10, 14, 20},
		{12, 13, 22},
		{30, 34, 38},
		{8, 12, 16},
		{16, 18, 24},
	}
	tc := [][]int{
		{4, 1, 0},
		{4, 1, 0},
		{4, 2, 0},
		{4, 1, 0},
		{4, 2, 0},
	}
	costs, err := sched.NewMatrixCosts(exec, tc)
	if err != nil {
		log.Fatal(err)
	}

	heuristics := []sched.Batch{
		sched.MinMin{}, sched.MaxMin{}, sched.Sufferage{}, sched.Duplex{},
	}
	policies := []sched.Policy{
		sched.MustTrustUnaware(sched.DefaultFlatOverheadPct),
		sched.MustTrustAware(sched.DefaultTCWeight),
	}
	reqs := []int{0, 1, 2, 3, 4}
	avail := []float64{0, 0, 0}

	tb := report.NewTable("Batch-mode TRM schedules (5 tasks × 3 machines)",
		"heuristic", "policy", "schedule (task→machine)", "charged makespan")
	tb.SetAlign(2, report.Left)

	for _, h := range heuristics {
		for _, p := range policies {
			as, err := h.AssignBatch(costs, p, reqs, avail)
			if err != nil {
				log.Fatal(err)
			}
			ms, err := sched.ChargedMakespan(costs, p, as, avail)
			if err != nil {
				log.Fatal(err)
			}
			schedule := ""
			for i, a := range as {
				if i > 0 {
					schedule += " "
				}
				schedule += fmt.Sprintf("%d→%d", a.Req, a.Machine)
			}
			tb.AddRow(h.Name(), p.Name, schedule, fmt.Sprintf("%.1f", ms))
		}
	}
	out, err := tb.Render("ascii")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(out)
	fmt.Println(`
Reading the table: the trust-unaware policy maps by raw execution cost and
is then charged the flat 50% security surcharge of Section 4.1, so it
crowds the fast-but-distrusted machine 0.  The trust-aware policy sees
ESC = EEC × (TC × 15)/100 and shifts work toward trusted machines whenever
the security saving beats the speed loss — the paper's central effect.`)
}
