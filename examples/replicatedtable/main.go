// Replicatedtable demonstrates Section 3.1's distribution story: "we
// maintain a single table in a centrally organized RMS.  The table may,
// however, be replicated at different domains for reading purposes."
//
// A central trust table is served over TCP (loopback); two remote Grid
// domains run read-only replicas that poll for changes.  An agent then
// revises a trust level at the centre and the replicas converge.
//
// Run with: go run ./examples/replicatedtable
package main

import (
	"fmt"
	"log"
	"time"

	"gridtrust/internal/grid"
	"gridtrust/internal/trustwire"
)

func main() {
	// ── Central RMS: the authoritative table. ─────────────────────────
	table := grid.NewTrustTable()
	seed := map[grid.Activity]grid.TrustLevel{
		grid.ActCompute: grid.LevelC,
		grid.ActStorage: grid.LevelD,
	}
	for act, tl := range seed {
		if err := table.Set(0, 1, act, tl); err != nil {
			log.Fatal(err)
		}
	}
	srv, err := trustwire.NewServer(table, 4, 4, int(grid.NumBuiltinActivities))
	if err != nil {
		log.Fatal(err)
	}
	addr, err := srv.ListenAndServe("127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	fmt.Printf("central trust table serving on %s (version %d, %d entries)\n",
		addr, table.Version(), table.Len())

	// ── Two remote domains dial in and cold-sync. ─────────────────────
	replicas := make([]*trustwire.Replica, 2)
	for i := range replicas {
		rep, err := trustwire.Dial(addr.String())
		if err != nil {
			log.Fatal(err)
		}
		defer rep.Close()
		if _, err := rep.Sync(); err != nil {
			log.Fatal(err)
		}
		replicas[i] = rep
		tl, _ := rep.Table().Get(0, 1, grid.ActCompute)
		fmt.Printf("replica %d cold-synced at version %d: (CD0→RD1, compute) = %v\n",
			i, rep.Version(), tl)
	}

	// A remote scheduler computes an OTL from its local replica — no
	// network traffic on the scheduling hot path.
	toa := grid.MustToA(grid.ActCompute, grid.ActStorage)
	otl, err := replicas[0].Table().OTL(0, 1, toa)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("replica 0 computes OTL(CD0→RD1, compute+storage) = %v locally\n", otl)

	// ── A monitoring agent revises trust at the centre. ──────────────
	if err := table.Set(0, 1, grid.ActCompute, grid.LevelE); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ncentral agent raises (CD0→RD1, compute) to E (version %d)\n", table.Version())

	// Poll loops pick the change up.  (In production these run for the
	// process lifetime; here we poll briefly and stop.)
	stop := make(chan struct{})
	for _, rep := range replicas {
		go rep.Poll(5*time.Millisecond, stop, nil)
	}
	deadline := time.After(2 * time.Second)
	for _, rep := range replicas {
		for {
			if tl, ok := rep.Table().Get(0, 1, grid.ActCompute); ok && tl == grid.LevelE {
				break
			}
			select {
			case <-deadline:
				log.Fatal("replica did not converge")
			default:
				time.Sleep(time.Millisecond)
			}
		}
	}
	close(stop)
	for i, rep := range replicas {
		tl, _ := rep.Table().Get(0, 1, grid.ActCompute)
		fmt.Printf("replica %d converged at version %d: (CD0→RD1, compute) = %v (synced %d snapshots)\n",
			i, rep.Version(), tl, rep.SnapshotsApplied())
	}
	fmt.Printf("server sent %d snapshots in total\n", srv.SnapshotsServed())
}
