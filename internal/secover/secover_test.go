package secover

import (
	"math"
	"testing"
)

// paperTable2 and paperTable3 are the measured rows of Tables 2 and 3.
var paperTable2 = []Row{
	{1, 0.19, 0.63, 69.84},
	{10, 1.37, 2.45, 44.08},
	{100, 9.77, 15.34, 36.31},
	{500, 48.88, 77.56, 36.70},
	{1000, 97.00, 155.07, 37.45},
}

var paperTable3 = []Row{
	{1, 0.34, 0.65, 47.69},
	{10, 0.50, 2.18, 77.06},
	{100, 4.98, 14.23, 65.00},
	{500, 22.44, 69.86, 67.88},
	{1000, 46.05, 138.30, 66.70},
}

// relErr returns |got-want|/want.
func relErr(got, want float64) float64 {
	if want == 0 {
		return math.Abs(got)
	}
	return math.Abs(got-want) / math.Abs(want)
}

// TestTable2Calibration checks every row of Table 2 against the model.
// The 10 MB rows of both paper tables are visibly noisy outliers (the
// 1000 Mbps rcp at 10 MB is *faster per byte* than at 1 MB), so they get a
// looser tolerance; all other rows must reproduce within 5%.
func TestTable2Calibration(t *testing.T) {
	rows, err := Link100.Table(PaperSizes)
	if err != nil {
		t.Fatal(err)
	}
	for i, got := range rows {
		want := paperTable2[i]
		tol := 0.05
		if want.SizeMB == 10 {
			tol = 0.30
		}
		if relErr(got.RcpSeconds, want.RcpSeconds) > tol {
			t.Errorf("Table2 %gMB rcp = %.2fs, paper %.2fs", want.SizeMB, got.RcpSeconds, want.RcpSeconds)
		}
		if relErr(got.ScpSeconds, want.ScpSeconds) > tol {
			t.Errorf("Table2 %gMB scp = %.2fs, paper %.2fs", want.SizeMB, got.ScpSeconds, want.ScpSeconds)
		}
		if relErr(got.OverheadPercent, want.OverheadPercent) > 2*tol {
			t.Errorf("Table2 %gMB overhead = %.2f%%, paper %.2f%%",
				want.SizeMB, got.OverheadPercent, want.OverheadPercent)
		}
	}
}

// TestTable3Calibration checks every row of Table 3 against the model.
func TestTable3Calibration(t *testing.T) {
	rows, err := Link1000.Table(PaperSizes)
	if err != nil {
		t.Fatal(err)
	}
	for i, got := range rows {
		want := paperTable3[i]
		tol := 0.06
		if want.SizeMB == 10 {
			tol = 0.55
		}
		if relErr(got.RcpSeconds, want.RcpSeconds) > tol {
			t.Errorf("Table3 %gMB rcp = %.2fs, paper %.2fs", want.SizeMB, got.RcpSeconds, want.RcpSeconds)
		}
		if relErr(got.ScpSeconds, want.ScpSeconds) > tol {
			t.Errorf("Table3 %gMB scp = %.2fs, paper %.2fs", want.SizeMB, got.ScpSeconds, want.ScpSeconds)
		}
		if relErr(got.OverheadPercent, want.OverheadPercent) > 2*tol {
			t.Errorf("Table3 %gMB overhead = %.2f%%, paper %.2f%%",
				want.SizeMB, got.OverheadPercent, want.OverheadPercent)
		}
	}
}

// TestOverheadShape verifies the paper's headline findings rather than the
// exact percentages: overhead is always substantial (>30%), and the
// large-file overhead is larger on the gigabit link because scp is
// cipher-bound.
func TestOverheadShape(t *testing.T) {
	for _, size := range []float64{100, 500, 1000} {
		ov100, err := Link100.OverheadPercent(size)
		if err != nil {
			t.Fatal(err)
		}
		ov1000, err := Link1000.OverheadPercent(size)
		if err != nil {
			t.Fatal(err)
		}
		if ov100 < 30 {
			t.Errorf("100 Mbps overhead at %g MB = %.1f%%, want > 30%%", size, ov100)
		}
		if ov1000 <= ov100 {
			t.Errorf("gigabit overhead (%.1f%%) not above 100 Mbps (%.1f%%) at %g MB",
				ov1000, ov100, size)
		}
	}
}

// TestHighSpeedNegated: "the security overhead negates the benefits of
// using the high speed network" — scp barely improves from 100 to 1000
// Mbps while rcp more than halves its time.
func TestHighSpeedNegated(t *testing.T) {
	const size = 1000.0
	rcp100, _ := Link100.Rcp.Time(size)
	rcp1000, _ := Link1000.Rcp.Time(size)
	scp100, _ := Link100.Scp.Time(size)
	scp1000, _ := Link1000.Scp.Time(size)
	if rcp1000 > rcp100/1.8 {
		t.Errorf("rcp did not speed up on gigabit: %.1f -> %.1f", rcp100, rcp1000)
	}
	if scp1000 < scp100*0.8 {
		t.Errorf("scp sped up too much on gigabit: %.1f -> %.1f (cipher-bound expected)", scp100, scp1000)
	}
}

func TestTransferModelValidation(t *testing.T) {
	if _, err := Link100.Rcp.Time(-1); err == nil {
		t.Error("accepted negative size")
	}
	if _, err := Link100.Rcp.Time(math.NaN()); err == nil {
		t.Error("accepted NaN size")
	}
	bad := TransferModel{Name: "x", MBps: 0}
	if _, err := bad.Time(1); err == nil {
		t.Error("accepted zero throughput")
	}
}

func TestLinkFor(t *testing.T) {
	l, err := LinkFor(100)
	if err != nil || l.Mbps != 100 {
		t.Fatalf("LinkFor(100): %v %v", l, err)
	}
	l, err = LinkFor(1000)
	if err != nil || l.Mbps != 1000 {
		t.Fatalf("LinkFor(1000): %v %v", l, err)
	}
	if _, err := LinkFor(42); err == nil {
		t.Fatal("LinkFor(42) succeeded")
	}
}

func TestAsymptoticOverhead(t *testing.T) {
	// Under the paper's (scp−rcp)/scp definition the asymptotes land on
	// the paper's own large-file overheads: ~37% on 100 Mbps, ~67% on
	// gigabit.
	a100 := Link100.AsymptoticOverheadPercent()
	a1000 := Link1000.AsymptoticOverheadPercent()
	if relErr(a100, 37.45) > 0.03 {
		t.Fatalf("100 Mbps asymptote %.1f%%, paper's large-file overhead 37.45%%", a100)
	}
	if relErr(a1000, 66.70) > 0.03 {
		t.Fatalf("gigabit asymptote %.1f%%, paper's large-file overhead 66.70%%", a1000)
	}
	if a100 > a1000 {
		t.Fatalf("asymptotes out of order: %g vs %g", a100, a1000)
	}
}

func TestMonotoneInSize(t *testing.T) {
	prev := -1.0
	for _, size := range []float64{0, 1, 5, 50, 500, 5000} {
		v, err := Link1000.Scp.Time(size)
		if err != nil {
			t.Fatal(err)
		}
		if v <= prev {
			t.Fatalf("scp time not increasing at %g MB", size)
		}
		prev = v
	}
}

func TestSandboxOverheads(t *testing.T) {
	// The exact published values from Section 5.1.
	cases := []struct {
		tool  SandboxTool
		bench SandboxBenchmark
		want  float64
	}{
		{MiSFIT, PageEvictionHotlist, 137},
		{SASIx86SFI, PageEvictionHotlist, 264},
		{MiSFIT, LogicalLogDisk, 58},
		{SASIx86SFI, LogicalLogDisk, 65},
		{MiSFIT, MD5, 33},
		{SASIx86SFI, MD5, 36},
	}
	for _, tc := range cases {
		got, err := SandboxOverheadPercent(tc.tool, tc.bench)
		if err != nil {
			t.Fatal(err)
		}
		if got != tc.want {
			t.Errorf("%v/%v = %g%%, want %g%%", tc.tool, tc.bench, got, tc.want)
		}
		f, err := SandboxRuntimeFactor(tc.tool, tc.bench)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(f-(1+tc.want/100)) > 1e-12 {
			t.Errorf("factor %v/%v = %g", tc.tool, tc.bench, f)
		}
	}
}

func TestSandboxErrors(t *testing.T) {
	if _, err := SandboxOverheadPercent(SandboxTool(9), MD5); err == nil {
		t.Error("unknown tool accepted")
	}
	if _, err := SandboxOverheadPercent(MiSFIT, SandboxBenchmark(9)); err == nil {
		t.Error("unknown benchmark accepted")
	}
	if _, err := SandboxRuntimeFactor(SandboxTool(9), MD5); err == nil {
		t.Error("unknown tool accepted by factor")
	}
}

func TestSandboxTable(t *testing.T) {
	rows := SandboxTable()
	if len(rows) != 3 {
		t.Fatalf("sandbox table has %d rows", len(rows))
	}
	// SASI overhead dominates MiSFIT on every benchmark in the study.
	for _, r := range rows {
		if r.SASIPct < r.MiSFITPct {
			t.Errorf("%v: SASI %g%% below MiSFIT %g%%", r.Benchmark, r.SASIPct, r.MiSFITPct)
		}
	}
}

func TestStringers(t *testing.T) {
	if MiSFIT.String() != "MiSFIT" || SASIx86SFI.String() != "SASI x86SFI" {
		t.Error("tool names wrong")
	}
	if MD5.String() != "MD5" || PageEvictionHotlist.String() == "" {
		t.Error("benchmark names wrong")
	}
	if SandboxTool(9).String() == "" || SandboxBenchmark(9).String() == "" {
		t.Error("unknown stringers empty")
	}
}
