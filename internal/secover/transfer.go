// Package secover models the security overheads the paper measures in
// Section 5.1: secure (scp) versus plain (rcp) file transfer on 100 Mbps
// and 1000 Mbps networks (Tables 2 and 3), and the MiSFIT / SASI x86SFI
// sandboxing overheads the paper cites.
//
// Substitution note (see DESIGN.md §5): the paper measured real transfers
// on Pentium III 866 MHz hosts.  We replace the testbed with an analytic
// transfer-time model, time = startup + size/throughput, with per-link
// parameters least-squares calibrated to the paper's own measurements.
// The model preserves the paper's two findings: (a) securing transfers
// costs 35-77%, and (b) the overhead *grows* on the faster network because
// the cipher, not the wire, becomes the bottleneck — scp moves ~6.5-7.3
// MB/s on both links while rcp jumps from ~10 to ~22 MB/s.
package secover

import (
	"fmt"
	"math"
)

// TransferModel predicts transfer time as startup latency plus streaming
// time at a fixed effective throughput.
type TransferModel struct {
	// Name labels the protocol ("rcp"/"scp").
	Name string
	// StartupS is the per-session setup cost in seconds (connection,
	// authentication; for scp also the key exchange).
	StartupS float64
	// MBps is the effective streaming throughput in megabytes/second.
	MBps float64
}

// Time returns the predicted transfer time in seconds for a file of
// sizeMB megabytes.
func (m TransferModel) Time(sizeMB float64) (float64, error) {
	if sizeMB < 0 || math.IsNaN(sizeMB) || math.IsInf(sizeMB, 0) {
		return 0, fmt.Errorf("secover: invalid size %v MB", sizeMB)
	}
	if m.MBps <= 0 {
		return 0, fmt.Errorf("secover: model %q has non-positive throughput", m.Name)
	}
	return m.StartupS + sizeMB/m.MBps, nil
}

// Link bundles the calibrated rcp and scp models for one network speed.
type Link struct {
	// Mbps is the nominal link speed.
	Mbps float64
	Rcp  TransferModel
	Scp  TransferModel
}

// The two calibrated links of Tables 2 and 3.  Throughputs are the
// reciprocal slopes of the paper's measurements (endpoint fit over the
// 1-1000 MB range); startups are the residual intercepts.
var (
	// Link100 reproduces Table 2 (100 Mbps): rcp streams ~10.3 MB/s
	// (~83% of the wire), scp ~6.5 MB/s (cipher-bound on the PIII-866).
	Link100 = Link{
		Mbps: 100,
		Rcp:  TransferModel{Name: "rcp", StartupS: 0.093, MBps: 10.32},
		Scp:  TransferModel{Name: "scp", StartupS: 0.475, MBps: 6.47},
	}
	// Link1000 reproduces Table 3 (1000 Mbps): rcp reaches ~21.9 MB/s
	// (host-limited, far below the wire) while scp barely improves to
	// ~7.3 MB/s — "the security overhead negates the benefits of using
	// the high speed network".
	Link1000 = Link{
		Mbps: 1000,
		Rcp:  TransferModel{Name: "rcp", StartupS: 0.294, MBps: 21.86},
		Scp:  TransferModel{Name: "scp", StartupS: 0.512, MBps: 7.26},
	}
)

// LinkFor returns the calibrated link for a nominal speed of 100 or 1000
// Mbps.
func LinkFor(mbps float64) (Link, error) {
	switch mbps {
	case 100:
		return Link100, nil
	case 1000:
		return Link1000, nil
	default:
		return Link{}, fmt.Errorf("secover: no calibrated link for %g Mbps (have 100, 1000)", mbps)
	}
}

// OverheadPercent returns the security overhead of scp over rcp for a
// file of sizeMB on the link, using the paper's "Overhead" definition:
// (scp − rcp)/scp × 100, the fraction of the secure transfer spent on
// security.  (Cross-check: Table 2's 1000 MB row is (155.07−97.00)/155.07
// = 37.45%, exactly the printed value.)
func (l Link) OverheadPercent(sizeMB float64) (float64, error) {
	rcp, err := l.Rcp.Time(sizeMB)
	if err != nil {
		return 0, err
	}
	scp, err := l.Scp.Time(sizeMB)
	if err != nil {
		return 0, err
	}
	if scp == 0 {
		return 0, fmt.Errorf("secover: zero scp time for %g MB", sizeMB)
	}
	return (scp - rcp) / scp * 100, nil
}

// Row is one line of Tables 2/3.
type Row struct {
	SizeMB          float64
	RcpSeconds      float64
	ScpSeconds      float64
	OverheadPercent float64
}

// PaperSizes are the file sizes of Tables 2 and 3, in MB.
var PaperSizes = []float64{1, 10, 100, 500, 1000}

// Table generates the secure-vs-plain comparison for the given sizes (use
// PaperSizes for the paper's rows).
func (l Link) Table(sizes []float64) ([]Row, error) {
	rows := make([]Row, 0, len(sizes))
	for _, s := range sizes {
		rcp, err := l.Rcp.Time(s)
		if err != nil {
			return nil, err
		}
		scp, err := l.Scp.Time(s)
		if err != nil {
			return nil, err
		}
		ov, err := l.OverheadPercent(s)
		if err != nil {
			return nil, err
		}
		rows = append(rows, Row{SizeMB: s, RcpSeconds: rcp, ScpSeconds: scp, OverheadPercent: ov})
	}
	return rows, nil
}

// AsymptoticOverheadPercent is the large-file overhead limit, set purely
// by the throughput ratio: (1 − scp/rcp throughput) × 100 under the
// paper's overhead definition.
func (l Link) AsymptoticOverheadPercent() float64 {
	return (1 - l.Scp.MBps/l.Rcp.MBps) * 100
}
