package secover

import "fmt"

// SandboxTool identifies a software-fault-isolation sandboxing system from
// the study the paper cites (Erlingsson & Schneider; Small & Seltzer).
type SandboxTool int

// The two SFI tools of Section 5.1.
const (
	// MiSFIT transforms C++ into safe binary code.
	MiSFIT SandboxTool = iota
	// SASIx86SFI transforms gcc's x86 assembly output into safe binary
	// code.
	SASIx86SFI
)

// String names the tool.
func (t SandboxTool) String() string {
	switch t {
	case MiSFIT:
		return "MiSFIT"
	case SASIx86SFI:
		return "SASI x86SFI"
	default:
		return fmt.Sprintf("SandboxTool(%d)", int(t))
	}
}

// SandboxBenchmark identifies one of the three target applications.
type SandboxBenchmark int

// The three benchmark applications of Section 5.1.
const (
	// PageEvictionHotlist is the memory-intensive benchmark.
	PageEvictionHotlist SandboxBenchmark = iota
	// LogicalLogDisk is the logical log-structured disk benchmark.
	LogicalLogDisk
	// MD5 is the command-line message digest utility.
	MD5
)

// String names the benchmark.
func (b SandboxBenchmark) String() string {
	switch b {
	case PageEvictionHotlist:
		return "page-eviction hotlist"
	case LogicalLogDisk:
		return "logical log-structured disk"
	case MD5:
		return "MD5"
	default:
		return fmt.Sprintf("SandboxBenchmark(%d)", int(b))
	}
}

// sandboxOverheadPct holds the paper's published runtime overheads in
// percent relative to unsandboxed execution (Section 5.1).
var sandboxOverheadPct = map[SandboxTool]map[SandboxBenchmark]float64{
	MiSFIT: {
		PageEvictionHotlist: 137,
		LogicalLogDisk:      58,
		MD5:                 33,
	},
	SASIx86SFI: {
		PageEvictionHotlist: 264,
		LogicalLogDisk:      65,
		MD5:                 36,
	},
}

// SandboxOverheadPercent returns the runtime overhead in percent of
// running bench under tool relative to no sandboxing.
func SandboxOverheadPercent(tool SandboxTool, bench SandboxBenchmark) (float64, error) {
	row, ok := sandboxOverheadPct[tool]
	if !ok {
		return 0, fmt.Errorf("secover: unknown sandbox tool %v", tool)
	}
	v, ok := row[bench]
	if !ok {
		return 0, fmt.Errorf("secover: unknown benchmark %v", bench)
	}
	return v, nil
}

// SandboxRuntimeFactor returns the multiplicative slowdown: 1 + overhead%.
// A task that takes t seconds unsandboxed takes t·factor under the tool.
func SandboxRuntimeFactor(tool SandboxTool, bench SandboxBenchmark) (float64, error) {
	pct, err := SandboxOverheadPercent(tool, bench)
	if err != nil {
		return 0, err
	}
	return 1 + pct/100, nil
}

// SandboxRow is one line of the sandboxing summary.
type SandboxRow struct {
	Benchmark SandboxBenchmark
	MiSFITPct float64
	SASIPct   float64
}

// SandboxTable returns the Section 5.1 sandboxing numbers for all three
// benchmarks.
func SandboxTable() []SandboxRow {
	benches := []SandboxBenchmark{PageEvictionHotlist, LogicalLogDisk, MD5}
	rows := make([]SandboxRow, 0, len(benches))
	for _, b := range benches {
		m := sandboxOverheadPct[MiSFIT][b]
		s := sandboxOverheadPct[SASIx86SFI][b]
		rows = append(rows, SandboxRow{Benchmark: b, MiSFITPct: m, SASIPct: s})
	}
	return rows
}
