package load

import (
	"testing"
	"time"

	"gridtrust/internal/core"
	"gridtrust/internal/gridgen"
	"gridtrust/internal/rmswire"
	"gridtrust/internal/rng"
	"gridtrust/internal/trust"
	"gridtrust/internal/wal"
)

// startDaemon runs an in-process gridtrustd-equivalent server and
// returns its address.
func startDaemon(t *testing.T, tune func(*rmswire.Server)) string {
	addr, _ := startDaemonServer(t, tune)
	return addr
}

func startDaemonServer(t *testing.T, tune func(*rmswire.Server)) (string, *rmswire.Server) {
	t.Helper()
	top, err := gridgen.Generate(rng.New(7), gridgen.Spec{GridDomains: 3})
	if err != nil {
		t.Fatal(err)
	}
	trms, err := core.New(core.Config{
		Topology: top,
		Agents:   2,
		TCWeight: 15,
		Trust:    trust.Config{Alpha: 0.8, Beta: 0.2, Smoothing: 0.4},
	})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := rmswire.NewServer(trms)
	if err != nil {
		t.Fatal(err)
	}
	if tune != nil {
		tune(srv)
	}
	addr, err := srv.ListenAndServe("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		srv.Close()
		trms.Close()
	})
	return addr.String(), srv
}

func TestClosedLoopReconciles(t *testing.T) {
	addr := startDaemon(t, nil)
	rep, err := Run(Config{
		Addr:      addr,
		Clients:   4,
		Mode:      ModeClosed,
		Duration:  400 * time.Millisecond,
		Seed:      11,
		KeyPrefix: "t-closed",
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.SubmitsOK == 0 {
		t.Fatal("closed loop completed zero submits")
	}
	if rep.SubmitErrors != 0 || rep.Unresolved != 0 {
		t.Fatalf("errors=%d unresolved=%d against a healthy daemon", rep.SubmitErrors, rep.Unresolved)
	}
	if rep.ReportsOK != rep.SubmitsOK {
		t.Fatalf("report fraction 1 but %d reports for %d submits", rep.ReportsOK, rep.SubmitsOK)
	}
	if !rep.Reconcile.OK {
		t.Fatalf("reconcile failed:\n%s", rep.Text())
	}
	if rep.Reconcile.DaemonRestarted {
		t.Fatal("restart detected against a single daemon instance")
	}
	l := rep.SubmitLatency
	if l.N != int(rep.SubmitsOK) || l.P50MS <= 0 || l.P99MS < l.P50MS {
		t.Fatalf("implausible latency summary: %+v", l)
	}
	if rep.SLOAttained <= 0 || rep.SLOAttained > 1 {
		t.Fatalf("SLO attainment %v outside (0,1]", rep.SLOAttained)
	}
	if rep.ThroughputRPS <= 0 {
		t.Fatalf("throughput %v", rep.ThroughputRPS)
	}
}

func TestOpenLoopPacesArrivals(t *testing.T) {
	addr := startDaemon(t, nil)
	const rate = 200.0
	dur := 500 * time.Millisecond
	rep, err := Run(Config{
		Addr:      addr,
		Clients:   4,
		Mode:      ModeOpen,
		Rate:      rate,
		Arrival:   ArrivalPoisson,
		Duration:  dur,
		Seed:      13,
		KeyPrefix: "t-open",
	})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Reconcile.OK {
		t.Fatalf("reconcile failed:\n%s", rep.Text())
	}
	// The arrival schedule, not daemon speed, sets the issue count:
	// expect roughly rate*dur arrivals (Poisson, so allow wide slack).
	want := rate * dur.Seconds()
	if f := float64(rep.SubmitsIssued); f < want*0.5 || f > want*1.5 {
		t.Fatalf("issued %d submits, want ≈%.0f", rep.SubmitsIssued, want)
	}
}

func TestBurstyArrivalDeterministicCount(t *testing.T) {
	// The bursty schedule is deterministic: same seed, same arrivals.
	addr := startDaemon(t, nil)
	run := func() int64 {
		rep, err := Run(Config{
			Addr:      addr,
			Clients:   2,
			Mode:      ModeOpen,
			Rate:      100,
			Arrival:   ArrivalBursty,
			Duration:  300 * time.Millisecond,
			Seed:      17,
			KeyPrefix: "t-burst",
		})
		if err != nil {
			t.Fatal(err)
		}
		return rep.SubmitsIssued
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("bursty arrival count not deterministic: %d vs %d", a, b)
	}
}

// TestReconcilesThroughOverload drives a deliberately under-provisioned
// daemon: sheds and retries must not break the books.
func TestReconcilesThroughOverload(t *testing.T) {
	// Attach a journal whose sync observer sleeps: every submit holds its
	// admission slot ≥1ms, so eight closed-loop clients against one slot
	// are guaranteed to collide and shed.
	addr, srv := startDaemonServer(t, func(s *rmswire.Server) {
		s.MaxInFlight = 1
		s.RetryAfter = time.Millisecond
	})
	log, rec, err := wal.Create(t.TempDir(), wal.Options{
		SyncObserver: func(uint64) { time.Sleep(time.Millisecond) },
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { log.Close() })
	if err := srv.AttachJournal(log, rec, 0); err != nil {
		t.Fatal(err)
	}
	rep, err := Run(Config{
		Addr:        addr,
		Clients:     8,
		Mode:        ModeClosed,
		Duration:    400 * time.Millisecond,
		Seed:        19,
		KeyPrefix:   "t-overload",
		MaxAttempts: 30,
		BaseBackoff: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Reconcile.OK {
		t.Fatalf("reconcile failed under overload:\n%s", rep.Text())
	}
	if rep.Retrier.Overloads == 0 {
		t.Fatal("under-provisioned daemon shed nothing; the test exercised no retries")
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := Run(Config{}); err == nil {
		t.Fatal("empty config accepted")
	}
	if _, err := Run(Config{Addr: "x", Mode: "weird"}); err == nil {
		t.Fatal("unknown mode accepted")
	}
	if _, err := Run(Config{Addr: "x", Mode: ModeOpen}); err == nil {
		t.Fatal("open loop without rate accepted")
	}
	if _, err := Run(Config{Addr: "x", Arrival: "storm"}); err == nil {
		t.Fatal("unknown arrival accepted")
	}
}
