// Package load is the production load-bench driver behind cmd/gridload:
// it drives a running gridtrustd over the wire with N concurrent
// clients in closed- or open-loop mode, measures client-side throughput
// and latency percentiles, and — the part a plain benchmark skips —
// reconciles its own counts against the daemon's {"op":"metrics"}
// counters, so a run that silently dropped or double-placed work fails
// loudly instead of reporting a pretty number.
//
// Arrivals, task contents and idempotency keys are all drawn from
// internal/rng streams seeded by Config.Seed, so a run is exactly
// reproducible against a deterministic daemon.
//
// Closed loop: each worker issues its next request as soon as the
// previous one completes — it measures the daemon's capacity.  Open
// loop: arrivals are scheduled at Config.TargetRPS by an arrival
// process (constant, Poisson, or bursty) independent of completions,
// and latency is measured from the *scheduled* arrival time, so queueing
// delay is charged to the daemon rather than silently absorbed
// (coordinated-omission correction).
//
// Every submit travels under an idempotency key derived from the run's
// key prefix, which makes the accounting exact even through retries,
// overload sheds and daemon restarts: after the timed phase a settle
// pass resubmits every key whose outcome was ambiguous (attempts
// exhausted mid-run), and the daemon's idempotency layer guarantees each
// key maps to exactly one placement.  The durable reconciliation anchors
// — placed, idem_entries, open_placements — survive SIGKILL because the
// daemon restores them from its WAL.
package load

import (
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync"
	"time"

	"gridtrust/internal/grid"
	"gridtrust/internal/rmswire"
	"gridtrust/internal/rng"
	"gridtrust/internal/stats"
)

// Modes and arrival processes.
const (
	ModeClosed = "closed"
	ModeOpen   = "open"

	ArrivalConstant = "constant"
	ArrivalPoisson  = "poisson"
	ArrivalBursty   = "bursty"
)

// burstSize groups bursty arrivals: every burst arrives at one instant,
// bursts are spaced so the mean rate stays at TargetRPS.
const burstSize = 8

// Config parameterises one load run.  Zero values select defaults.
type Config struct {
	Addr string

	// FleetAddrs, when non-empty, runs the driver against a sharded
	// fleet: workers pin themselves round-robin to the listed shard
	// addresses (the fleet's exactly-once guarantee is per entry shard,
	// so a worker never migrates mid-run), health is probed from the
	// first shard, and reconciliation sums the durable anchors across
	// every shard instead of reading one daemon.  Addr is ignored.
	FleetAddrs []string

	Clients  int           // concurrent workers (default 4)
	Mode     string        // ModeClosed (default) or ModeOpen
	Rate     float64       // open-loop target RPS (required for ModeOpen)
	Arrival  string        // open-loop arrival process (default constant)
	Duration time.Duration // timed phase length (default 5s)

	// ReportFraction of successful placements receive an outcome report
	// (default 1); Outcome is the reported value on [1,6] (default 5).
	ReportFraction float64
	Outcome        float64

	RTL        string // required trust level letter (default "A")
	Activities []int  // task activities (default [0] = compute)

	// SLO is the submit-latency objective; the report carries the exact
	// fraction of submits that met it (default 50ms).
	SLO time.Duration

	Seed      uint64
	KeyPrefix string // idempotency-key namespace (default "load"); use a fresh prefix per run against a durable daemon

	// SampleCap bounds each worker's latency reservoir (default 65536;
	// negative = unbounded).
	SampleCap int

	// Retrier tuning; zero values select rmswire defaults.
	MaxAttempts int
	BaseBackoff time.Duration
	MaxBackoff  time.Duration
	OpTimeout   time.Duration
	Budget      time.Duration

	// SettleTimeout bounds the post-run settle pass (default 15s).
	SettleTimeout time.Duration
}

func (c Config) withDefaults() (Config, error) {
	if len(c.FleetAddrs) > 0 {
		c.Addr = c.FleetAddrs[0]
	}
	if c.Addr == "" {
		return c, fmt.Errorf("load: Addr required")
	}
	if c.Clients <= 0 {
		c.Clients = 4
	}
	if c.Mode == "" {
		c.Mode = ModeClosed
	}
	if c.Mode != ModeClosed && c.Mode != ModeOpen {
		return c, fmt.Errorf("load: unknown mode %q", c.Mode)
	}
	if c.Mode == ModeOpen && c.Rate <= 0 {
		return c, fmt.Errorf("load: open loop requires Rate > 0")
	}
	if c.Arrival == "" {
		c.Arrival = ArrivalConstant
	}
	switch c.Arrival {
	case ArrivalConstant, ArrivalPoisson, ArrivalBursty:
	default:
		return c, fmt.Errorf("load: unknown arrival process %q", c.Arrival)
	}
	if c.Duration <= 0 {
		c.Duration = 5 * time.Second
	}
	if c.ReportFraction == 0 {
		c.ReportFraction = 1
	}
	if c.ReportFraction < 0 || c.ReportFraction > 1 {
		return c, fmt.Errorf("load: ReportFraction %v outside [0,1]", c.ReportFraction)
	}
	if c.Outcome == 0 {
		c.Outcome = 5
	}
	if c.RTL == "" {
		c.RTL = "A"
	}
	if len(c.Activities) == 0 {
		c.Activities = []int{int(grid.ActCompute)}
	}
	if c.SLO <= 0 {
		c.SLO = 50 * time.Millisecond
	}
	if c.KeyPrefix == "" {
		c.KeyPrefix = "load"
	}
	if c.SampleCap == 0 {
		c.SampleCap = 65536
	}
	if c.SettleTimeout <= 0 {
		c.SettleTimeout = 15 * time.Second
	}
	return c, nil
}

// LatencySummary condenses one latency sample, in milliseconds.
type LatencySummary struct {
	N      int     `json:"n"`
	MeanMS float64 `json:"mean_ms"`
	P50MS  float64 `json:"p50_ms"`
	P90MS  float64 `json:"p90_ms"`
	P95MS  float64 `json:"p95_ms"`
	P99MS  float64 `json:"p99_ms"`
	P999MS float64 `json:"p999_ms"`
	MaxMS  float64 `json:"max_ms"`
}

func summarize(s *stats.Sample, maxMS float64) LatencySummary {
	if s.N() == 0 {
		return LatencySummary{}
	}
	return LatencySummary{
		N:      s.N(),
		MeanMS: s.Mean(),
		P50MS:  s.Quantile(0.50),
		P90MS:  s.Quantile(0.90),
		P95MS:  s.Quantile(0.95),
		P99MS:  s.Quantile(0.99),
		P999MS: s.Quantile(0.999),
		MaxMS:  maxMS,
	}
}

// Check is one reconciliation assertion between client-side and
// daemon-side accounting.
type Check struct {
	Name    string `json:"name"`
	Got     int64  `json:"got"`
	Want    int64  `json:"want"`
	OK      bool   `json:"ok"`
	Skipped bool   `json:"skipped,omitempty"`
	Note    string `json:"note,omitempty"`
}

// Reconcile is the full cross-check; OK means every non-skipped check
// held.
type Reconcile struct {
	OK              bool    `json:"ok"`
	DaemonRestarted bool    `json:"daemon_restarted"`
	Checks          []Check `json:"checks"`
}

// Report is the machine-readable result of one load run.
type Report struct {
	Mode        string  `json:"mode"`
	Clients     int     `json:"clients"`
	Arrival     string  `json:"arrival,omitempty"`
	TargetRPS   float64 `json:"target_rps,omitempty"`
	Seed        uint64  `json:"seed"`
	DurationSec float64 `json:"duration_sec"`
	CPUs        int     `json:"cpus"`

	SubmitsIssued int64 `json:"submits_issued"`
	SubmitsOK     int64 `json:"submits_ok"`
	SubmitErrors  int64 `json:"submit_errors"`
	Ambiguous     int64 `json:"ambiguous"`
	Settled       int64 `json:"settled"`
	Unresolved    int64 `json:"unresolved"`
	ReportsOK     int64 `json:"reports_ok"`
	ReportErrors  int64 `json:"report_errors"`

	// Throughput counts completed ops (submits+reports) per wall second
	// of the timed phase; PerCore divides by CPUs.
	ThroughputRPS float64 `json:"throughput_rps"`
	PerCoreRPS    float64 `json:"per_core_rps"`

	SubmitLatency LatencySummary `json:"submit_latency"`
	ReportLatency LatencySummary `json:"report_latency"`

	SLOTargetMS float64 `json:"slo_target_ms"`
	SLOAttained float64 `json:"slo_attained"` // exact fraction of submits within SLO

	Retrier rmswire.RetrierCounters `json:"retrier"`

	DaemonBefore *rmswire.MetricsInfo `json:"daemon_before,omitempty"`
	DaemonAfter  *rmswire.MetricsInfo `json:"daemon_after,omitempty"`

	// Fleet runs carry the shard addresses and per-shard snapshots
	// instead of the single-daemon pair above.
	FleetAddrs   []string               `json:"fleet_addrs,omitempty"`
	ShardsBefore []*rmswire.MetricsInfo `json:"shards_before,omitempty"`
	ShardsAfter  []*rmswire.MetricsInfo `json:"shards_after,omitempty"`

	Reconcile Reconcile `json:"reconcile"`
}

// pendingKey is a submit whose outcome was ambiguous when the timed
// phase ended; the settle pass resolves it.
type pendingKey struct {
	key string
	eec []float64
	now float64
}

// pendingReport is an outcome report whose acknowledgement was lost;
// the settle pass re-sends it, tolerating "already-reported".
type pendingReport struct {
	id      uint64
	outcome float64
	now     float64
}

// worker is one concurrent load client.
type worker struct {
	id       int
	clientID grid.ClientID
	retrier  *rmswire.Retrier
	src      *rng.Source

	submitLat *stats.Sample
	reportLat *stats.Sample
	maxSubmit float64
	maxReport float64

	submitsIssued int64
	submitsOK     int64
	submitErrors  int64
	ambiguous     int64
	reportsOK     int64
	reportErrors  int64
	sloAttained   int64

	pending        []pendingKey
	pendingReports []pendingReport
}

// Run executes one load run against a live daemon and returns the
// report.  It is synchronous; the caller owns cancellation by choosing
// Config.Duration.
func Run(cfg Config) (*Report, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	acts := make([]grid.Activity, len(cfg.Activities))
	for i, a := range cfg.Activities {
		acts[i] = grid.Activity(a)
	}
	rtl, err := grid.ParseLevel(cfg.RTL)
	if err != nil {
		return nil, err
	}

	// One probe per shard (one total outside fleet mode): the probes
	// scrape the before/after metric snapshots reconciliation compares.
	shardAddrs := cfg.FleetAddrs
	if len(shardAddrs) == 0 {
		shardAddrs = []string{cfg.Addr}
	}
	probes := make([]*rmswire.Retrier, len(shardAddrs))
	for i, a := range shardAddrs {
		probes[i] = rmswire.NewRetrier(cfg.retrierConfigAddr(a, cfg.Seed^(0x9e3779b97f4a7c15+uint64(i))))
	}
	defer func() {
		for _, p := range probes {
			p.Close()
		}
	}()
	health, err := probes[0].Health()
	if err != nil {
		return nil, fmt.Errorf("load: health probe: %w", err)
	}
	if health.TopologyMachines <= 0 || health.TopologyClients <= 0 {
		return nil, fmt.Errorf("load: daemon reports empty topology (%d machines, %d clients)",
			health.TopologyMachines, health.TopologyClients)
	}
	before := make([]*rmswire.MetricsInfo, len(probes))
	for i, p := range probes {
		if before[i], err = p.Metrics(); err != nil {
			return nil, fmt.Errorf("load: metrics scrape (%s): %w", shardAddrs[i], err)
		}
	}

	streams := rng.Streams(cfg.Seed, cfg.Clients+1)
	workers := make([]*worker, cfg.Clients)
	for i := range workers {
		w := &worker{
			id:       i,
			clientID: grid.ClientID(i % health.TopologyClients),
			// Workers pin one entry shard for their whole run: the
			// fleet's exactly-once story (forwarded keys, failover keys)
			// is anchored on retries re-entering through the same shard.
			retrier:   rmswire.NewRetrier(cfg.retrierConfigAddr(shardAddrs[i%len(shardAddrs)], cfg.Seed+uint64(i)*0x1000)),
			src:       streams[i],
			submitLat: &stats.Sample{},
			reportLat: &stats.Sample{},
		}
		if cfg.SampleCap > 0 {
			w.submitLat.Bound(cfg.SampleCap, cfg.Seed+uint64(i)*2+1)
			w.reportLat.Bound(cfg.SampleCap, cfg.Seed+uint64(i)*2+2)
		}
		workers[i] = w
	}
	defer func() {
		for _, w := range workers {
			w.retrier.Close()
		}
	}()

	start := time.Now()
	deadline := start.Add(cfg.Duration)
	var wg sync.WaitGroup
	var arrivalsCh chan time.Time
	if cfg.Mode == ModeOpen {
		arrivalsCh = make(chan time.Time, openQueueCap(cfg))
		go scheduleArrivals(cfg, streams[cfg.Clients], start, deadline, arrivalsCh)
	}
	for _, w := range workers {
		wg.Add(1)
		go func(w *worker) {
			defer wg.Done()
			if cfg.Mode == ModeOpen {
				w.runOpen(cfg, acts, rtl, health.TopologyMachines, start, arrivalsCh)
			} else {
				w.runClosed(cfg, acts, rtl, health.TopologyMachines, start, deadline)
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)

	// Settle: resolve every ambiguous submit to a definitive outcome so
	// the placement accounting is exact.  Idempotency keys make this
	// safe: a key that was placed replays its original placement, a key
	// that never landed places now.
	var settled, unresolved int64
	settleBy := time.Now().Add(cfg.SettleTimeout)
	for _, w := range workers {
		for _, p := range w.pending {
			if time.Now().After(settleBy) {
				unresolved++
				continue
			}
			if _, err := w.retrier.SubmitKeyed(p.key, w.clientID, acts, rtl, p.eec, p.now); err != nil {
				if errors.Is(err, rmswire.ErrExhausted) {
					unresolved++
				} else {
					w.submitErrors++
				}
				continue
			}
			w.submitsOK++
			settled++
		}
		for _, p := range w.pendingReports {
			if time.Now().After(settleBy) {
				unresolved++
				continue
			}
			err := w.retrier.Report(p.id, p.outcome, p.now)
			if err != nil && strings.Contains(err.Error(), "already-reported") {
				err = nil // the lost-ack attempt did land
			}
			if err != nil {
				if errors.Is(err, rmswire.ErrExhausted) {
					unresolved++
				} else {
					w.reportErrors++
				}
				continue
			}
			w.reportsOK++
			settled++
		}
	}

	after := make([]*rmswire.MetricsInfo, len(probes))
	for i, p := range probes {
		if after[i], err = p.Metrics(); err != nil {
			return nil, fmt.Errorf("load: final metrics scrape (%s): %w", shardAddrs[i], err)
		}
	}

	rep := &Report{
		Mode:        cfg.Mode,
		Clients:     cfg.Clients,
		Seed:        cfg.Seed,
		DurationSec: elapsed.Seconds(),
		CPUs:        runtime.NumCPU(),
		Settled:     settled,
		Unresolved:  unresolved,
		SLOTargetMS: float64(cfg.SLO.Milliseconds()),
	}
	if cfg.Mode == ModeOpen {
		rep.Arrival = cfg.Arrival
		rep.TargetRPS = cfg.Rate
	}
	submitAll, reportAll := &stats.Sample{}, &stats.Sample{}
	var maxSubmit, maxReport float64
	var sloAttained int64
	for _, w := range workers {
		rep.SubmitsIssued += w.submitsIssued
		rep.SubmitsOK += w.submitsOK
		rep.SubmitErrors += w.submitErrors
		rep.Ambiguous += w.ambiguous
		rep.ReportsOK += w.reportsOK
		rep.ReportErrors += w.reportErrors
		sloAttained += w.sloAttained
		submitAll.Merge(w.submitLat)
		reportAll.Merge(w.reportLat)
		if w.maxSubmit > maxSubmit {
			maxSubmit = w.maxSubmit
		}
		if w.maxReport > maxReport {
			maxReport = w.maxReport
		}
		rep.Retrier.Add(w.retrier.Counters())
	}
	rep.ThroughputRPS = float64(rep.SubmitsOK+rep.ReportsOK-settled) / elapsed.Seconds()
	rep.PerCoreRPS = rep.ThroughputRPS / float64(rep.CPUs)
	rep.SubmitLatency = summarize(submitAll, maxSubmit)
	rep.ReportLatency = summarize(reportAll, maxReport)
	if n := submitAll.N(); n > 0 {
		rep.SLOAttained = float64(sloAttained) / float64(n)
	}
	if len(cfg.FleetAddrs) > 0 {
		rep.FleetAddrs = cfg.FleetAddrs
		rep.ShardsBefore = before
		rep.ShardsAfter = after
		rep.Reconcile = reconcileFleet(before, after, rep)
	} else {
		rep.DaemonBefore = before[0]
		rep.DaemonAfter = after[0]
		rep.Reconcile = reconcile(before[0], after[0], rep)
	}
	return rep, nil
}

func (c Config) retrierConfigAddr(addr string, seed uint64) rmswire.RetrierConfig {
	return rmswire.RetrierConfig{
		Addr:        addr,
		MaxAttempts: c.MaxAttempts,
		BaseBackoff: c.BaseBackoff,
		MaxBackoff:  c.MaxBackoff,
		OpTimeout:   c.OpTimeout,
		Budget:      c.Budget,
		Seed:        seed,
	}
}

func openQueueCap(cfg Config) int {
	n := int(cfg.Rate*cfg.Duration.Seconds()) + cfg.Clients + 16
	if n > 1<<20 {
		n = 1 << 20
	}
	return n
}

// scheduleArrivals emits scheduled arrival instants at cfg.Rate until
// deadline, then closes ch.  The schedule is computed, not measured:
// a slow daemon cannot slow the arrival process down (open loop).
func scheduleArrivals(cfg Config, src *rng.Source, start, deadline time.Time, ch chan<- time.Time) {
	defer close(ch)
	mean := float64(time.Second) / cfg.Rate
	t := start
	burst := 0
	for {
		switch cfg.Arrival {
		case ArrivalPoisson:
			t = t.Add(time.Duration(src.Exponential(1) * mean))
		case ArrivalBursty:
			if burst == 0 {
				t = t.Add(time.Duration(float64(burstSize) * mean))
			}
			burst = (burst + 1) % burstSize
		default: // constant
			t = t.Add(time.Duration(mean))
		}
		if t.After(deadline) {
			return
		}
		ch <- t
	}
}

// genEEC draws one expected-execution-cost vector, uniform on [50,150)
// per machine.
func (w *worker) genEEC(machines int) []float64 {
	eec := make([]float64, machines)
	for i := range eec {
		eec[i] = 50 + 100*w.src.Float64()
	}
	return eec
}

// doTask issues one submit (and, by ReportFraction, its outcome report),
// charging latency from chargeFrom — the call instant in closed loop,
// the scheduled arrival in open loop.
func (w *worker) doTask(cfg Config, acts []grid.Activity, rtl grid.TrustLevel, machines int, start, chargeFrom time.Time, seq int) {
	key := fmt.Sprintf("%s-w%d-%d", cfg.KeyPrefix, w.id, seq)
	eec := w.genEEC(machines)
	now := time.Since(start).Seconds()
	w.submitsIssued++
	p, err := w.retrier.SubmitKeyed(key, w.clientID, acts, rtl, eec, now)
	latMS := float64(time.Since(chargeFrom)) / float64(time.Millisecond)
	if err != nil {
		if errors.Is(err, rmswire.ErrExhausted) {
			// Ambiguous: an earlier attempt may have placed with the ack
			// lost.  Deferred to the settle pass.
			w.ambiguous++
			w.pending = append(w.pending, pendingKey{key: key, eec: eec, now: now})
		} else {
			// Definitive rejection: the idempotency key was never placed
			// (a placed key always replays OK).
			w.submitErrors++
		}
		return
	}
	w.submitsOK++
	w.submitLat.Add(latMS)
	if latMS > w.maxSubmit {
		w.maxSubmit = latMS
	}
	if time.Duration(latMS*float64(time.Millisecond)) <= cfg.SLO {
		w.sloAttained++
	}
	if cfg.ReportFraction >= 1 || w.src.Float64() < cfg.ReportFraction {
		t0 := time.Now()
		rnow := time.Since(start).Seconds()
		err := w.retrier.Report(p.ID, cfg.Outcome, rnow)
		rMS := float64(time.Since(t0)) / float64(time.Millisecond)
		if err != nil {
			if errors.Is(err, rmswire.ErrExhausted) {
				// Ambiguous: the outcome may be applied with the ack lost.
				w.ambiguous++
				w.pendingReports = append(w.pendingReports,
					pendingReport{id: p.ID, outcome: cfg.Outcome, now: rnow})
			} else {
				w.reportErrors++
			}
			return
		}
		w.reportsOK++
		w.reportLat.Add(rMS)
		if rMS > w.maxReport {
			w.maxReport = rMS
		}
	}
}

func (w *worker) runClosed(cfg Config, acts []grid.Activity, rtl grid.TrustLevel, machines int, start, deadline time.Time) {
	for seq := 0; ; seq++ {
		now := time.Now()
		if !now.Before(deadline) {
			return
		}
		w.doTask(cfg, acts, rtl, machines, start, now, seq)
	}
}

func (w *worker) runOpen(cfg Config, acts []grid.Activity, rtl grid.TrustLevel, machines int, start time.Time, arrivals <-chan time.Time) {
	for sched := range arrivals {
		if wait := time.Until(sched); wait > 0 {
			time.Sleep(wait)
		}
		// seq must be unique across workers pulling from one channel;
		// derive it from the worker-local issue count.
		w.doTask(cfg, acts, rtl, machines, start, sched, int(w.submitsIssued))
	}
}

// reconcile cross-checks client totals against daemon metrics.
//
// Durable checks compare gauges the daemon restores from its WAL
// (placed, idem_entries, open_placements), so they must hold even if
// the daemon was SIGKILLed and restarted mid-run.  Counter checks
// (placements, report_ok, overload replies) only hold within one daemon
// instance — counters reset on restart — and are skipped, with a note,
// when the start stamp changed between scrapes.
func reconcile(before, after *rmswire.MetricsInfo, rep *Report) Reconcile {
	rec := Reconcile{OK: true,
		DaemonRestarted: after.StartUnixNanos != before.StartUnixNanos}
	gaugeDelta := func(name string) int64 { return after.Gauges[name] - before.Gauges[name] }
	counterDelta := func(name string) int64 {
		return int64(after.Counters[name]) - int64(before.Counters[name])
	}
	add := func(name string, got, want int64, skipped bool, note string) {
		ok := skipped || got == want
		if !ok {
			rec.OK = false
		}
		rec.Checks = append(rec.Checks, Check{
			Name: name, Got: got, Want: want, OK: got == want, Skipped: skipped, Note: note,
		})
	}
	if rep.Unresolved > 0 {
		rec.OK = false
		rec.Checks = append(rec.Checks, Check{
			Name: "settle", Got: rep.Unresolved, Want: 0, OK: false,
			Note: "keys still ambiguous after the settle pass; placement accounting is not exact",
		})
	}

	// Durable anchors: valid across restarts (WAL replay restores them).
	add("placed_delta == submits_ok",
		gaugeDelta(rmswire.MetricPlaced), rep.SubmitsOK, false,
		"durable: placed survives restart via WAL replay")
	add("idem_entries_delta == submits_ok",
		gaugeDelta(rmswire.MetricIdemEntries), rep.SubmitsOK, false,
		"durable: every submit travels under a fresh idempotency key")
	add("open_placements_delta == submits_ok - reports_ok",
		gaugeDelta(rmswire.MetricOpenPlacements), rep.SubmitsOK-rep.ReportsOK, false,
		"durable: outcome reports close placements")

	// Volatile counters: one daemon instance only.
	restarted := rec.DaemonRestarted
	note := ""
	if restarted {
		note = "skipped: daemon restarted between scrapes, counters reset"
	}
	add("placements_total_delta == submits_ok",
		counterDelta(rmswire.MetricPlacements), rep.SubmitsOK, restarted, note)
	add("report_ok_delta == reports_ok",
		counterDelta(rmswire.MetricReportOK), rep.ReportsOK, restarted, note)
	sheds := counterDelta(rmswire.MetricShedConnLimit)
	skipOver := restarted || sheds > 0
	overNote := note
	if sheds > 0 && !restarted {
		overNote = "skipped: accept-time conn sheds race the peer's first write, so an overloaded frame may surface client-side as a transport error"
	}
	add("overload_replies_delta == client_overloads",
		counterDelta(rmswire.MetricOverloadReplies), int64(rep.Retrier.Overloads), skipOver, overNote)
	return rec
}

// reconcileFleet cross-checks client totals against the whole fleet.
// Every logical placement lives on exactly one shard — the ring owner,
// or the entry shard after a proven-safe failover — so the durable
// anchors must balance when *summed* across shards, and that holds even
// through a mid-run SIGKILL + restart of any shard (each shard's gauges
// are restored from its own WAL).  Volatile counter checks additionally
// require that no shard restarted.  The overload-equality check is
// skipped outright: the forwarding layer both relays owners' overload
// frames and synthesizes its own retryable overloads when a peer is
// unreachable, so per-shard overload counters and the client's view
// legitimately disagree.
func reconcileFleet(before, after []*rmswire.MetricsInfo, rep *Report) Reconcile {
	rec := Reconcile{OK: true}
	for i := range before {
		if after[i].StartUnixNanos != before[i].StartUnixNanos {
			rec.DaemonRestarted = true
		}
	}
	sumGaugeDelta := func(name string) int64 {
		var d int64
		for i := range before {
			d += after[i].Gauges[name] - before[i].Gauges[name]
		}
		return d
	}
	sumCounterDelta := func(name string) int64 {
		var d int64
		for i := range before {
			d += int64(after[i].Counters[name]) - int64(before[i].Counters[name])
		}
		return d
	}
	add := func(name string, got, want int64, skipped bool, note string) {
		ok := skipped || got == want
		if !ok {
			rec.OK = false
		}
		rec.Checks = append(rec.Checks, Check{
			Name: name, Got: got, Want: want, OK: got == want, Skipped: skipped, Note: note,
		})
	}
	if rep.Unresolved > 0 {
		rec.OK = false
		rec.Checks = append(rec.Checks, Check{
			Name: "settle", Got: rep.Unresolved, Want: 0, OK: false,
			Note: "keys still ambiguous after the settle pass; placement accounting is not exact",
		})
	}

	add("fleet placed_delta == submits_ok",
		sumGaugeDelta(rmswire.MetricPlaced), rep.SubmitsOK, false,
		"durable, summed across shards: each key placed on exactly one shard")
	add("fleet idem_entries_delta == submits_ok",
		sumGaugeDelta(rmswire.MetricIdemEntries), rep.SubmitsOK, false,
		"durable, summed across shards: every key recorded exactly once fleet-wide")
	add("fleet open_placements_delta == submits_ok - reports_ok",
		sumGaugeDelta(rmswire.MetricOpenPlacements), rep.SubmitsOK-rep.ReportsOK, false,
		"durable, summed across shards: reports route to whichever shard placed")

	restarted := rec.DaemonRestarted
	note := ""
	if restarted {
		note = "skipped: a shard restarted between scrapes, counters reset"
	}
	add("fleet placements_total_delta == submits_ok",
		sumCounterDelta(rmswire.MetricPlacements), rep.SubmitsOK, restarted, note)
	add("fleet report_ok_delta == reports_ok",
		sumCounterDelta(rmswire.MetricReportOK), rep.ReportsOK, restarted, note)
	add("overload_replies_delta == client_overloads",
		sumCounterDelta(rmswire.MetricOverloadReplies), int64(rep.Retrier.Overloads), true,
		"skipped: forwarding relays and synthesizes overloads, so shard and client counts differ by design")
	return rec
}

// Text renders the report for humans.
func (r *Report) Text() string {
	var b strings.Builder
	if len(r.FleetAddrs) > 0 {
		fmt.Fprintf(&b, "fleet: %d shard(s), workers pinned round-robin\n", len(r.FleetAddrs))
	}
	fmt.Fprintf(&b, "mode %s, %d clients", r.Mode, r.Clients)
	if r.Mode == ModeOpen {
		fmt.Fprintf(&b, ", %s arrivals @ %.0f rps target", r.Arrival, r.TargetRPS)
	}
	fmt.Fprintf(&b, ", %.2fs\n", r.DurationSec)
	fmt.Fprintf(&b, "submits: %d ok / %d issued (%d errors, %d ambiguous, %d settled, %d unresolved)\n",
		r.SubmitsOK, r.SubmitsIssued, r.SubmitErrors, r.Ambiguous, r.Settled, r.Unresolved)
	fmt.Fprintf(&b, "reports: %d ok (%d errors)\n", r.ReportsOK, r.ReportErrors)
	fmt.Fprintf(&b, "throughput: %.1f ops/s (%.1f per core, %d cores)\n",
		r.ThroughputRPS, r.PerCoreRPS, r.CPUs)
	p := r.SubmitLatency
	fmt.Fprintf(&b, "submit latency ms: p50 %.3f  p90 %.3f  p95 %.3f  p99 %.3f  p99.9 %.3f  max %.3f (n=%d)\n",
		p.P50MS, p.P90MS, p.P95MS, p.P99MS, p.P999MS, p.MaxMS, p.N)
	if r.ReportLatency.N > 0 {
		q := r.ReportLatency
		fmt.Fprintf(&b, "report latency ms: p50 %.3f  p99 %.3f  max %.3f (n=%d)\n",
			q.P50MS, q.P99MS, q.MaxMS, q.N)
	}
	fmt.Fprintf(&b, "slo: %.0f%% of submits within %.0fms\n", 100*r.SLOAttained, r.SLOTargetMS)
	c := r.Retrier
	fmt.Fprintf(&b, "retrier: %d attempts, %d dials, %d overloads, %d transport errors, %d exhausted\n",
		c.Attempts, c.Dials, c.Overloads, c.TransportErrors, c.Exhausted)
	status := "OK"
	if !r.Reconcile.OK {
		status = "FAILED"
	}
	fmt.Fprintf(&b, "reconcile vs daemon metrics: %s", status)
	if r.Reconcile.DaemonRestarted {
		b.WriteString(" (daemon restarted mid-run; durable anchors only)")
	}
	b.WriteByte('\n')
	for _, ch := range r.Reconcile.Checks {
		mark := "ok  "
		switch {
		case ch.Skipped:
			mark = "skip"
		case !ch.OK:
			mark = "FAIL"
		}
		fmt.Fprintf(&b, "  [%s] %-50s got %d want %d\n", mark, ch.Name, ch.Got, ch.Want)
	}
	return b.String()
}
