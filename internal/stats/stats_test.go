package stats

import (
	"math"
	"testing"
	"testing/quick"

	"gridtrust/internal/rng"
)

func almostEqual(a, b, tol float64) bool {
	if math.IsNaN(a) || math.IsNaN(b) {
		return false
	}
	return math.Abs(a-b) <= tol
}

func TestRunningBasics(t *testing.T) {
	var r Running
	if !math.IsNaN(r.Mean()) || !math.IsNaN(r.Min()) || !math.IsNaN(r.Max()) {
		t.Fatal("empty accumulator should report NaN")
	}
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		r.Add(x)
	}
	if r.N() != 8 {
		t.Fatalf("N = %d, want 8", r.N())
	}
	if !almostEqual(r.Mean(), 5, 1e-12) {
		t.Fatalf("Mean = %g, want 5", r.Mean())
	}
	// Population variance is 4; unbiased sample variance = 32/7.
	if !almostEqual(r.Variance(), 32.0/7.0, 1e-12) {
		t.Fatalf("Variance = %g, want %g", r.Variance(), 32.0/7.0)
	}
	if r.Min() != 2 || r.Max() != 9 {
		t.Fatalf("Min/Max = %g/%g, want 2/9", r.Min(), r.Max())
	}
	if !almostEqual(r.Sum(), 40, 1e-9) {
		t.Fatalf("Sum = %g, want 40", r.Sum())
	}
}

func TestRunningSingleObservation(t *testing.T) {
	var r Running
	r.Add(3.5)
	if r.Mean() != 3.5 || r.Min() != 3.5 || r.Max() != 3.5 {
		t.Fatal("single observation stats wrong")
	}
	if !math.IsNaN(r.Variance()) {
		t.Fatal("variance of one sample should be NaN")
	}
	if r.CI95() != 0 {
		t.Fatal("CI95 of one sample should be 0")
	}
}

func TestRunningMergeMatchesSequential(t *testing.T) {
	src := rng.New(42)
	var whole Running
	var a, b Running
	for i := 0; i < 1000; i++ {
		x := src.Normal(10, 3)
		whole.Add(x)
		if i%2 == 0 {
			a.Add(x)
		} else {
			b.Add(x)
		}
	}
	a.Merge(b)
	if a.N() != whole.N() {
		t.Fatalf("merged N = %d, want %d", a.N(), whole.N())
	}
	if !almostEqual(a.Mean(), whole.Mean(), 1e-9) {
		t.Fatalf("merged mean %g != %g", a.Mean(), whole.Mean())
	}
	if !almostEqual(a.Variance(), whole.Variance(), 1e-7) {
		t.Fatalf("merged variance %g != %g", a.Variance(), whole.Variance())
	}
	if a.Min() != whole.Min() || a.Max() != whole.Max() {
		t.Fatal("merged min/max mismatch")
	}
}

func TestRunningMergeEmptyCases(t *testing.T) {
	var a, b Running
	a.Merge(b) // empty into empty
	if a.N() != 0 {
		t.Fatal("merge of empties should stay empty")
	}
	b.Add(7)
	a.Merge(b) // non-empty into empty
	if a.N() != 1 || a.Mean() != 7 {
		t.Fatal("merge into empty failed")
	}
	var c Running
	a.Merge(c) // empty into non-empty
	if a.N() != 1 || a.Mean() != 7 {
		t.Fatal("merge of empty changed accumulator")
	}
}

func TestRunningAddN(t *testing.T) {
	var r Running
	r.AddN(4, 5)
	if r.N() != 5 || r.Mean() != 4 || r.Variance() != 0 {
		t.Fatalf("AddN stats wrong: %v", r.String())
	}
}

func TestRunningMeanBoundsProperty(t *testing.T) {
	f := func(xs []float64) bool {
		var r Running
		ok := true
		for _, x := range xs {
			if math.IsNaN(x) || math.Abs(x) > 1e100 {
				// Huge magnitudes overflow Welford's m2; simulation
				// quantities are bounded far below this.
				return true
			}
			r.Add(x)
		}
		if r.N() == 0 {
			return true
		}
		m := r.Mean()
		ok = ok && m >= r.Min()-1e-9 && m <= r.Max()+1e-9
		if r.N() >= 2 {
			ok = ok && r.Variance() >= -1e-9
		}
		return ok
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCI95Width(t *testing.T) {
	// For n=10000 N(0,1) samples the CI should be ~1.96/100.
	src := rng.New(7)
	var r Running
	for i := 0; i < 10000; i++ {
		r.Add(src.Normal(0, 1))
	}
	ci := r.CI95()
	if !almostEqual(ci, 1.96/100, 0.002) {
		t.Fatalf("CI95 = %g, want ~0.0196", ci)
	}
}

func TestTCritical(t *testing.T) {
	if got := tCritical95(1); got != 12.706 {
		t.Fatalf("t(1) = %g", got)
	}
	if got := tCritical95(29); got != 2.045 {
		t.Fatalf("t(29) = %g", got)
	}
	if got := tCritical95(1000); got != 1.96 {
		t.Fatalf("t(1000) = %g", got)
	}
	if !math.IsNaN(tCritical95(0)) {
		t.Fatal("t(0) should be NaN")
	}
}

func TestSampleQuantiles(t *testing.T) {
	var s Sample
	for _, x := range []float64{9, 1, 8, 2, 7, 3, 6, 4, 5} {
		s.Add(x)
	}
	if got := s.Median(); got != 5 {
		t.Fatalf("Median = %g, want 5", got)
	}
	if got := s.Quantile(0); got != 1 {
		t.Fatalf("Q0 = %g, want 1", got)
	}
	if got := s.Quantile(1); got != 9 {
		t.Fatalf("Q1 = %g, want 9", got)
	}
	if got := s.Quantile(0.25); got != 3 {
		t.Fatalf("Q25 = %g, want 3", got)
	}
	if !math.IsNaN(s.Quantile(-0.1)) || !math.IsNaN(s.Quantile(1.1)) {
		t.Fatal("out-of-range quantiles should be NaN")
	}
}

func TestSampleQuantileInterpolation(t *testing.T) {
	var s Sample
	s.Add(0)
	s.Add(10)
	if got := s.Quantile(0.5); got != 5 {
		t.Fatalf("interpolated median = %g, want 5", got)
	}
	if got := s.Quantile(0.75); got != 7.5 {
		t.Fatalf("Q75 = %g, want 7.5", got)
	}
}

func TestSampleEmptyAndSingle(t *testing.T) {
	var s Sample
	if !math.IsNaN(s.Mean()) || !math.IsNaN(s.Median()) {
		t.Fatal("empty sample should report NaN")
	}
	s.Add(42)
	if s.Mean() != 42 || s.Quantile(0.3) != 42 {
		t.Fatal("single-element sample stats wrong")
	}
}

func TestSampleAddAfterQuantile(t *testing.T) {
	var s Sample
	s.Add(3)
	s.Add(1)
	_ = s.Median() // triggers sort
	s.Add(2)
	if got := s.Median(); got != 2 {
		t.Fatalf("median after re-add = %g, want 2", got)
	}
}

func TestHistogram(t *testing.T) {
	var s Sample
	for _, x := range []float64{-5, 0, 1, 2.5, 4.9, 5, 100} {
		s.Add(x)
	}
	h := s.Histogram(0, 5, 5)
	// -5 clamps to bin 0; 5 and 100 clamp to bin 4.
	want := []int{2, 1, 1, 0, 3}
	if len(h) != len(want) {
		t.Fatalf("histogram has %d bins", len(h))
	}
	for i := range want {
		if h[i] != want[i] {
			t.Fatalf("bin %d = %d, want %d (h=%v)", i, h[i], want[i], h)
		}
	}
	if s.Histogram(0, 5, 0) != nil || s.Histogram(5, 0, 3) != nil {
		t.Fatal("degenerate histograms should be nil")
	}
}

func TestHistogramCountsProperty(t *testing.T) {
	f := func(raw []float64) bool {
		var s Sample
		n := 0
		for _, x := range raw {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				continue
			}
			s.Add(x)
			n++
		}
		h := s.Histogram(-100, 100, 7)
		total := 0
		for _, c := range h {
			total += c
		}
		return total == n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPairedImprovement(t *testing.T) {
	var p Paired
	p.Add(100, 60)
	p.Add(200, 120)
	// Aggregate means: 150 vs 90 -> 40% improvement.
	if got := p.ImprovementPercent(); !almostEqual(got, 40, 1e-9) {
		t.Fatalf("ImprovementPercent = %g, want 40", got)
	}
	if got := p.MeanPairwiseImprovementPercent(); !almostEqual(got, 40, 1e-9) {
		t.Fatalf("MeanPairwiseImprovementPercent = %g, want 40", got)
	}
	if p.BaselineMean() != 150 || p.TreatmentMean() != 90 {
		t.Fatal("paired means wrong")
	}
	if p.MeanDiff() != 60 {
		t.Fatalf("MeanDiff = %g, want 60", p.MeanDiff())
	}
}

func TestPairedSignificance(t *testing.T) {
	var p Paired
	// Consistent large improvement across many pairs: must be significant.
	src := rng.New(3)
	for i := 0; i < 30; i++ {
		base := src.Uniform(90, 110)
		p.Add(base, base*0.6+src.Uniform(-1, 1))
	}
	if !p.Significant() {
		t.Fatal("clear 40% improvement not flagged significant")
	}
	var q Paired
	// Pure noise must not be significant (overwhelmingly).
	for i := 0; i < 30; i++ {
		q.Add(100+src.Normal(0, 5), 100+src.Normal(0, 5))
	}
	if q.Significant() && math.Abs(q.MeanDiff()) > 5 {
		t.Fatal("noise comparison flagged with large diff")
	}
}

func TestPairedZeroBaseline(t *testing.T) {
	var p Paired
	p.Add(0, 0)
	if !math.IsNaN(p.MeanPairwiseImprovementPercent()) {
		// ratio accumulator skipped the pair, so mean is NaN
		t.Fatal("zero baseline should not contribute a ratio")
	}
	if !math.IsNaN(p.ImprovementPercent()) {
		t.Fatal("zero aggregate baseline should give NaN improvement")
	}
}

func TestRunningStringNonEmpty(t *testing.T) {
	var r Running
	r.Add(1)
	r.Add(2)
	if r.String() == "" {
		t.Fatal("String returned empty")
	}
}

// TestSampleMergeUnboundedExact: merging unbounded samples pools the
// exact multiset, so every quantile matches the pooled sample bit for
// bit.
func TestSampleMergeUnboundedExact(t *testing.T) {
	src := rng.New(3)
	var pooled Sample
	parts := make([]*Sample, 4)
	for i := range parts {
		parts[i] = &Sample{}
	}
	for i := 0; i < 4000; i++ {
		x := src.Normal(50, 12)
		pooled.Add(x)
		parts[i%4].Add(x)
	}
	var merged Sample
	for _, p := range parts {
		merged.Merge(p)
	}
	if merged.N() != pooled.N() {
		t.Fatalf("merged N=%d, pooled N=%d", merged.N(), pooled.N())
	}
	for _, q := range []float64{0, 0.25, 0.5, 0.9, 0.95, 0.99, 1} {
		if m, p := merged.Quantile(q), pooled.Quantile(q); m != p {
			t.Fatalf("q%.2f: merged %v != pooled %v", q, m, p)
		}
	}
	if math.Abs(merged.Mean()-pooled.Mean()) > 1e-9 {
		t.Fatalf("mean diverged: %v vs %v", merged.Mean(), pooled.Mean())
	}
}

// TestSampleBoundedReservoir: a bounded sample keeps N, Mean exact and
// quantiles within reservoir tolerance of the full stream.
func TestSampleBoundedReservoir(t *testing.T) {
	const n = 50000
	const capacity = 2000
	src := rng.New(9)
	var full, bounded Sample
	bounded.Bound(capacity, 77)
	exactSum := 0.0
	for i := 0; i < n; i++ {
		x := src.Exponential(0.02) // mean 50, long tail
		full.Add(x)
		bounded.Add(x)
		exactSum += x
	}
	if bounded.N() != n {
		t.Fatalf("bounded N=%d, want %d", bounded.N(), n)
	}
	if bounded.Retained() != capacity {
		t.Fatalf("retained %d, want %d", bounded.Retained(), capacity)
	}
	if math.Abs(bounded.Mean()-exactSum/n) > 1e-9 {
		t.Fatalf("bounded mean %v, exact %v", bounded.Mean(), exactSum/n)
	}
	for _, q := range []float64{0.5, 0.9, 0.95, 0.99} {
		f, b := full.Quantile(q), bounded.Quantile(q)
		if rel := math.Abs(b-f) / f; rel > 0.15 {
			t.Errorf("q%.2f: bounded %v vs full %v (rel err %.3f)", q, b, f, rel)
		}
	}
}

// TestSampleMergeBoundedTolerance: per-worker bounded reservoirs merged
// into one must track the pooled quantiles within tolerance — the shape
// gridload uses to aggregate per-client latency without unbounded
// memory.
func TestSampleMergeBoundedTolerance(t *testing.T) {
	const workers = 8
	const perWorker = 20000
	const capacity = 4096
	src := rng.New(21)
	var pooled Sample
	parts := make([]*Sample, workers)
	for w := range parts {
		parts[w] = &Sample{}
		parts[w].Bound(capacity, uint64(100+w))
	}
	for w := 0; w < workers; w++ {
		// Heterogeneous workers: different scales, like fast vs slow
		// clients.
		scale := 1.0 + 0.5*float64(w)
		for i := 0; i < perWorker; i++ {
			x := scale * src.Exponential(0.1)
			pooled.Add(x)
			parts[w].Add(x)
		}
	}
	var merged Sample
	merged.Bound(capacity, 999)
	for _, p := range parts {
		merged.Merge(p)
	}
	if merged.N() != workers*perWorker {
		t.Fatalf("merged N=%d, want %d", merged.N(), workers*perWorker)
	}
	if merged.Retained() > capacity {
		t.Fatalf("merged retained %d > cap %d", merged.Retained(), capacity)
	}
	wantMean := pooled.Mean()
	if rel := math.Abs(merged.Mean()-wantMean) / wantMean; rel > 1e-9 {
		t.Fatalf("merged mean %v, pooled %v", merged.Mean(), wantMean)
	}
	for _, q := range []float64{0.5, 0.9, 0.95, 0.99} {
		p, m := pooled.Quantile(q), merged.Quantile(q)
		if rel := math.Abs(m-p) / p; rel > 0.2 {
			t.Errorf("q%.2f: merged %v vs pooled %v (rel err %.3f)", q, m, p, rel)
		}
	}
}

// TestSampleBoundDownsamplesExisting: bounding an already-filled sample
// keeps exact N/Mean and retains exactly cap values.
func TestSampleBoundDownsamplesExisting(t *testing.T) {
	var s Sample
	for i := 0; i < 1000; i++ {
		s.Add(float64(i))
	}
	s.Bound(100, 5)
	if s.N() != 1000 || s.Retained() != 100 {
		t.Fatalf("N=%d retained=%d", s.N(), s.Retained())
	}
	if want := 999.0 / 2; math.Abs(s.Mean()-want) > 1e-9 {
		t.Fatalf("mean %v, want %v", s.Mean(), want)
	}
	med := s.Quantile(0.5)
	if med < 250 || med > 750 {
		t.Fatalf("downsampled median %v implausible", med)
	}
}
