// Package stats provides the statistical accumulators used by the
// simulator's metric pipeline and by the benchmark harness: numerically
// stable running moments (Welford), min/max tracking, percentiles,
// Student-t confidence intervals, and paired-sample comparisons.
//
// Every experiment in the paper (Tables 4-9) reports a mean over stochastic
// replications; the harness additionally reports 95% confidence intervals
// so that "who wins" claims are statistically grounded even though the
// paper itself reports point estimates only.
package stats

import (
	"fmt"
	"math"
	"sort"

	"gridtrust/internal/rng"
)

// Running accumulates count, mean, variance (Welford's online algorithm),
// minimum and maximum without storing samples.  The zero value is ready to
// use.
type Running struct {
	n        int64
	mean, m2 float64
	min, max float64
}

// Add incorporates one observation.
func (r *Running) Add(x float64) {
	r.n++
	if r.n == 1 {
		r.min, r.max = x, x
	} else {
		if x < r.min {
			r.min = x
		}
		if x > r.max {
			r.max = x
		}
	}
	delta := x - r.mean
	r.mean += delta / float64(r.n)
	r.m2 += delta * (x - r.mean)
}

// AddN incorporates the same observation n times.
func (r *Running) AddN(x float64, n int64) {
	for i := int64(0); i < n; i++ {
		r.Add(x)
	}
}

// Merge combines another accumulator into r (Chan et al. parallel update),
// enabling per-worker accumulators in the parallel replication pool to be
// reduced without loss of precision.
func (r *Running) Merge(o Running) {
	if o.n == 0 {
		return
	}
	if r.n == 0 {
		*r = o
		return
	}
	delta := o.mean - r.mean
	total := r.n + o.n
	r.mean += delta * float64(o.n) / float64(total)
	r.m2 += o.m2 + delta*delta*float64(r.n)*float64(o.n)/float64(total)
	if o.min < r.min {
		r.min = o.min
	}
	if o.max > r.max {
		r.max = o.max
	}
	r.n = total
}

// N returns the number of observations.
func (r *Running) N() int64 { return r.n }

// Mean returns the sample mean, or NaN if empty.
func (r *Running) Mean() float64 {
	if r.n == 0 {
		return math.NaN()
	}
	return r.mean
}

// Variance returns the unbiased sample variance, or NaN if n < 2.
func (r *Running) Variance() float64 {
	if r.n < 2 {
		return math.NaN()
	}
	return r.m2 / float64(r.n-1)
}

// StdDev returns the sample standard deviation.
func (r *Running) StdDev() float64 { return math.Sqrt(r.Variance()) }

// StdErr returns the standard error of the mean.
func (r *Running) StdErr() float64 {
	if r.n < 2 {
		return math.NaN()
	}
	return r.StdDev() / math.Sqrt(float64(r.n))
}

// Min returns the smallest observation, or NaN if empty.
func (r *Running) Min() float64 {
	if r.n == 0 {
		return math.NaN()
	}
	return r.min
}

// Max returns the largest observation, or NaN if empty.
func (r *Running) Max() float64 {
	if r.n == 0 {
		return math.NaN()
	}
	return r.max
}

// Sum returns mean*n, the total of all observations.
func (r *Running) Sum() float64 { return r.mean * float64(r.n) }

// CI95 returns the half-width of the 95% Student-t confidence interval on
// the mean.  It returns 0 for n < 2 so callers can print it unconditionally.
func (r *Running) CI95() float64 {
	if r.n < 2 {
		return 0
	}
	return tCritical95(r.n-1) * r.StdErr()
}

// String summarises the accumulator for logs.
func (r *Running) String() string {
	return fmt.Sprintf("n=%d mean=%.4g ±%.3g sd=%.4g min=%.4g max=%.4g",
		r.n, r.Mean(), r.CI95(), r.StdDev(), r.Min(), r.Max())
}

// tCritical95 returns the two-sided 95% critical value of the Student t
// distribution for the given degrees of freedom.  Values above the table
// fall back to the normal approximation (1.96), which is accurate to <1%
// for df > 30.
func tCritical95(df int64) float64 {
	table := []float64{
		0, // df = 0 unused
		12.706, 4.303, 3.182, 2.776, 2.571,
		2.447, 2.365, 2.306, 2.262, 2.228,
		2.201, 2.179, 2.160, 2.145, 2.131,
		2.120, 2.110, 2.101, 2.093, 2.086,
		2.080, 2.074, 2.069, 2.064, 2.060,
		2.056, 2.052, 2.048, 2.045, 2.042,
	}
	if df <= 0 {
		return math.NaN()
	}
	if int(df) < len(table) {
		return table[df]
	}
	return 1.96
}

// Sample stores raw observations for quantile queries.  Unlike Running it
// holds all data by default; use it for per-request completion times where
// percentiles matter.  For unbounded streams — a load driver recording
// millions of latencies — call Bound first: the sample then keeps a
// fixed-size uniform reservoir (deterministically seeded via internal/rng)
// while count and sum stay exact, so Mean and N are always precise and
// quantiles are estimated from the reservoir.
type Sample struct {
	xs     []float64
	sorted bool

	// seen and sum track every observation exactly, including those the
	// reservoir dropped.
	seen int64
	sum  float64

	// cap > 0 bounds len(xs); src drives the reservoir decisions.
	cap int
	src *rng.Source
}

// Bound switches the sample to bounded-reservoir mode holding at most
// capacity observations, using a deterministic rng stream from seed.  If
// the sample already holds more than capacity observations they are
// downsampled uniformly.  capacity <= 0 is a no-op.
func (s *Sample) Bound(capacity int, seed uint64) {
	if capacity <= 0 {
		return
	}
	s.cap = capacity
	s.src = rng.New(seed)
	if len(s.xs) > capacity {
		// Partial Fisher-Yates: uniformly select capacity survivors.
		for i := 0; i < capacity; i++ {
			j := i + s.src.Intn(len(s.xs)-i)
			s.xs[i], s.xs[j] = s.xs[j], s.xs[i]
		}
		s.xs = s.xs[:capacity]
		s.sorted = false
	}
}

// Bounded reports whether the sample runs in reservoir mode.
func (s *Sample) Bounded() bool { return s.cap > 0 }

// Add appends an observation.  In bounded mode it runs Vitter's
// algorithm R: once the reservoir is full, the new observation replaces
// a uniformly random slot with probability cap/seen.
func (s *Sample) Add(x float64) {
	s.seen++
	s.sum += x
	if s.cap > 0 && len(s.xs) >= s.cap {
		if j := int(s.src.Uint64() % uint64(s.seen)); j < s.cap {
			s.xs[j] = x
			s.sorted = false
		}
		return
	}
	s.xs = append(s.xs, x)
	s.sorted = false
}

// N returns the number of observations, including any the reservoir
// dropped.
func (s *Sample) N() int { return int(s.seen) }

// Retained returns how many observations are held for quantile queries
// (== N() for an unbounded sample).
func (s *Sample) Retained() int { return len(s.xs) }

// Mean returns the sample mean over every observation, or NaN if empty.
func (s *Sample) Mean() float64 {
	if s.seen == 0 {
		return math.NaN()
	}
	if s.cap > 0 {
		return s.sum / float64(s.seen)
	}
	// Unbounded: sum the retained values in their current order, which
	// preserves the historical bit-exact behaviour downstream outputs
	// are byte-compared against.
	sum := 0.0
	for _, x := range s.xs {
		sum += x
	}
	return sum / float64(len(s.xs))
}

// Merge folds other into s: counts and sums combine exactly; retained
// values combine exactly when both samples are unbounded, and by
// weighted reservoir sampling (Efraimidis–Spirakis A-Res, where each
// retained value represents seen/retained observations of its source)
// when s is bounded — quantiles of the merge then match the pooled
// stream within reservoir error.  other is not modified.
func (s *Sample) Merge(other *Sample) {
	if other == nil || other.seen == 0 {
		return
	}
	if s.cap == 0 {
		// Unbounded target: keep everything other retained.
		s.xs = append(s.xs, other.xs...)
		s.sorted = false
		s.seen += other.seen
		s.sum += other.sum
		return
	}
	type weighted struct {
		x   float64
		key float64
	}
	keyed := make([]weighted, 0, len(s.xs)+len(other.xs))
	draw := func(xs []float64, seen int64) {
		if len(xs) == 0 {
			return
		}
		w := float64(seen) / float64(len(xs))
		for _, x := range xs {
			u := s.src.Float64()
			for u == 0 {
				u = s.src.Float64()
			}
			keyed = append(keyed, weighted{x: x, key: math.Pow(u, 1/w)})
		}
	}
	draw(s.xs, s.seen)
	draw(other.xs, other.seen)
	sort.Slice(keyed, func(i, j int) bool { return keyed[i].key > keyed[j].key })
	n := len(keyed)
	if n > s.cap {
		n = s.cap
	}
	s.xs = s.xs[:0]
	for _, kv := range keyed[:n] {
		s.xs = append(s.xs, kv.x)
	}
	s.sorted = false
	s.seen += other.seen
	s.sum += other.sum
}

// Quantile returns the q-quantile (0 <= q <= 1) using linear interpolation
// between order statistics.  It returns NaN if the sample is empty or q is
// out of range.
func (s *Sample) Quantile(q float64) float64 {
	if len(s.xs) == 0 || q < 0 || q > 1 || math.IsNaN(q) {
		return math.NaN()
	}
	if !s.sorted {
		sort.Float64s(s.xs)
		s.sorted = true
	}
	if len(s.xs) == 1 {
		return s.xs[0]
	}
	pos := q * float64(len(s.xs)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return s.xs[lo]
	}
	frac := pos - float64(lo)
	return s.xs[lo]*(1-frac) + s.xs[hi]*frac
}

// Median returns the 0.5 quantile.
func (s *Sample) Median() float64 { return s.Quantile(0.5) }

// Histogram builds a fixed-width histogram over [min,max] with the given
// number of bins; values outside the range clamp to the end bins.
func (s *Sample) Histogram(min, max float64, bins int) []int {
	if bins <= 0 || max <= min {
		return nil
	}
	h := make([]int, bins)
	width := (max - min) / float64(bins)
	for _, x := range s.xs {
		i := int((x - min) / width)
		if i < 0 {
			i = 0
		}
		if i >= bins {
			i = bins - 1
		}
		h[i]++
	}
	return h
}

// Values returns a copy of the raw observations.
func (s *Sample) Values() []float64 {
	out := make([]float64, len(s.xs))
	copy(out, s.xs)
	return out
}

// Paired accumulates paired observations (a_i, b_i) — e.g. trust-unaware vs
// trust-aware completion time on the identical workload — and reports the
// mean relative improvement (a-b)/a the way the paper's "Improvement"
// column is defined.
type Paired struct {
	a, b  Running
	diff  Running // a_i - b_i
	ratio Running // (a_i - b_i)/a_i, skipping a_i == 0
}

// Add records one pair.  By the paper's convention a is the baseline
// (trust-unaware) value and b the treatment (trust-aware) value.
func (p *Paired) Add(a, b float64) {
	p.a.Add(a)
	p.b.Add(b)
	p.diff.Add(a - b)
	if a != 0 {
		p.ratio.Add((a - b) / a)
	}
}

// N returns the number of pairs.
func (p *Paired) N() int64 { return p.a.N() }

// BaselineMean returns the mean of the baseline series.
func (p *Paired) BaselineMean() float64 { return p.a.Mean() }

// TreatmentMean returns the mean of the treatment series.
func (p *Paired) TreatmentMean() float64 { return p.b.Mean() }

// ImprovementPercent returns the paper-style improvement computed from the
// aggregate means: (mean(a) - mean(b)) / mean(a) * 100.
func (p *Paired) ImprovementPercent() float64 {
	am := p.a.Mean()
	if am == 0 || math.IsNaN(am) {
		return math.NaN()
	}
	return (am - p.b.Mean()) / am * 100
}

// MeanPairwiseImprovementPercent returns the mean of the per-pair relative
// improvements, which weights every replication equally.
func (p *Paired) MeanPairwiseImprovementPercent() float64 {
	return p.ratio.Mean() * 100
}

// DiffCI95 returns the 95% confidence half-width on the mean paired
// difference a-b; if the interval excludes zero the improvement is
// statistically significant at the 5% level.
func (p *Paired) DiffCI95() float64 { return p.diff.CI95() }

// MeanDiff returns the mean paired difference a-b.
func (p *Paired) MeanDiff() float64 { return p.diff.Mean() }

// Significant reports whether the mean paired difference is significantly
// different from zero at the 5% level.
func (p *Paired) Significant() bool {
	ci := p.DiffCI95()
	d := p.diff.Mean()
	return p.diff.N() >= 2 && !math.IsNaN(d) && math.Abs(d) > ci
}
