// Package metrics is the daemon observability substrate: a registry of
// named counters, gauges and latency histograms designed so that the hot
// path — a request handler bumping a counter or recording one latency —
// costs a handful of atomic operations and zero allocations.
//
// The paper evaluates the trust-aware RMS only in simulation; a daemon
// serving real traffic needs the operational view the simulator never
// did: admission sheds, retries observed, WAL sync batching, per-op
// latency percentiles.  Both the load driver (internal/load) and ops
// tooling (gridctl metrics) read the same registry through the daemon's
// {"op":"metrics"} wire op, so a load test's client-side totals can be
// reconciled against exactly the numbers an operator would see.
//
// Concurrency model: registration (Counter/Gauge/Histogram lookup by
// name) takes a lock and may allocate — do it once at startup and keep
// the pointer.  The returned handles are lock-free: Counter.Add,
// Gauge.Set and Histogram.Observe are single atomic operations (Observe
// is three) safe from any goroutine.  Snapshot reads the registry
// without stopping writers; under concurrent writes a snapshot is
// per-word atomic but not globally consistent (a histogram's count may
// transiently disagree with the sum of its buckets by in-flight
// observations).  Scrape a quiescent daemon when exact reconciliation
// matters.
package metrics

import (
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing uint64.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Load returns the current value.
func (c *Counter) Load() uint64 { return c.v.Load() }

// Gauge is an instantaneous int64 value (queue depth, in-flight count).
type Gauge struct {
	v atomic.Int64
}

// Set replaces the value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add moves the value by delta.
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Load returns the current value.
func (g *Gauge) Load() int64 { return g.v.Load() }

// Registry holds named metrics.  Lookups are get-or-create and
// idempotent: the same name always returns the same handle, so
// independent subsystems can share a metric by naming convention.
type Registry struct {
	mu       sync.RWMutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram

	seq atomic.Uint64
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns the counter registered under name, creating it on
// first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.RLock()
	c, ok := r.counters[name]
	r.mu.RUnlock()
	if ok {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok = r.counters[name]; ok {
		return c
	}
	c = &Counter{}
	r.counters[name] = c
	return c
}

// Gauge returns the gauge registered under name, creating it on first
// use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.RLock()
	g, ok := r.gauges[name]
	r.mu.RUnlock()
	if ok {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g, ok = r.gauges[name]; ok {
		return g
	}
	g = &Gauge{}
	r.gauges[name] = g
	return g
}

// Histogram returns the histogram registered under name, creating it on
// first use.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.RLock()
	h, ok := r.hists[name]
	r.mu.RUnlock()
	if ok {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok = r.hists[name]; ok {
		return h
	}
	h = &Histogram{}
	r.hists[name] = h
	return h
}

// Seq returns the number of snapshots taken so far without taking one.
// A poller that sees the sequence (or the owning process's uptime) go
// backwards between scrapes knows the process restarted.
func (r *Registry) Seq() uint64 { return r.seq.Load() }

// Snapshot captures every registered metric and increments the scrape
// sequence number.  The returned structure is detached: mutating it does
// not touch the registry, and it marshals directly to JSON for the wire.
func (r *Registry) Snapshot() *Snapshot {
	snap := &Snapshot{
		Seq:      r.seq.Add(1),
		Counters: make(map[string]uint64),
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	for name, c := range r.counters {
		snap.Counters[name] = c.Load()
	}
	if len(r.gauges) > 0 {
		snap.Gauges = make(map[string]int64, len(r.gauges))
		for name, g := range r.gauges {
			snap.Gauges[name] = g.Load()
		}
	}
	if len(r.hists) > 0 {
		snap.Histograms = make(map[string]*HistSnapshot, len(r.hists))
		for name, h := range r.hists {
			snap.Histograms[name] = h.Snapshot()
		}
	}
	return snap
}

// Snapshot is a point-in-time copy of a registry, the payload of the
// daemon's metrics wire op.
type Snapshot struct {
	// Seq is the 1-based scrape sequence number; it resets to 1 when the
	// owning process restarts.
	Seq        uint64                   `json:"seq"`
	Counters   map[string]uint64        `json:"counters"`
	Gauges     map[string]int64         `json:"gauges,omitempty"`
	Histograms map[string]*HistSnapshot `json:"histograms,omitempty"`
}

// CounterNames returns the counter names in sorted order, for stable
// text rendering.
func (s *Snapshot) CounterNames() []string { return sortedKeys(s.Counters) }

// GaugeNames returns the gauge names in sorted order.
func (s *Snapshot) GaugeNames() []string { return sortedKeys(s.Gauges) }

// HistogramNames returns the histogram names in sorted order.
func (s *Snapshot) HistogramNames() []string { return sortedKeys(s.Histograms) }

func sortedKeys[V any](m map[string]V) []string {
	names := make([]string, 0, len(m))
	for name := range m {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}
