package metrics

import (
	"encoding/json"
	"math"
	"sync"
	"testing"

	"gridtrust/internal/rng"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("reqs")
	c.Inc()
	c.Add(4)
	if got := c.Load(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if r.Counter("reqs") != c {
		t.Fatal("Counter lookup is not idempotent")
	}
	g := r.Gauge("depth")
	g.Set(7)
	g.Add(-3)
	if got := g.Load(); got != 4 {
		t.Fatalf("gauge = %d, want 4", got)
	}
	if r.Gauge("depth") != g {
		t.Fatal("Gauge lookup is not idempotent")
	}
}

func TestSnapshotSeqMonotonicAndDetached(t *testing.T) {
	r := NewRegistry()
	r.Counter("a").Add(1)
	s1 := r.Snapshot()
	s2 := r.Snapshot()
	if s1.Seq != 1 || s2.Seq != 2 {
		t.Fatalf("seq = %d, %d; want 1, 2", s1.Seq, s2.Seq)
	}
	if r.Seq() != 2 {
		t.Fatalf("Seq() = %d, want 2", r.Seq())
	}
	s1.Counters["a"] = 999
	if got := r.Counter("a").Load(); got != 1 {
		t.Fatalf("mutating a snapshot touched the registry: %d", got)
	}
}

// TestBucketLayout pins the bucket function: indices are monotone in the
// value, every bucket's Lo/Hi bracket exactly the values mapping to it,
// and the relative width stays within ~25% above the exact range.
func TestBucketLayout(t *testing.T) {
	if bucketIndex(0) != 0 || bucketIndex(1) != 1 || bucketIndex(3) != 3 || bucketIndex(4) != 4 {
		t.Fatalf("small-value buckets misplaced: %d %d %d %d",
			bucketIndex(0), bucketIndex(1), bucketIndex(3), bucketIndex(4))
	}
	if idx := bucketIndex(math.MaxUint64); idx != NumBuckets-1 {
		t.Fatalf("max value lands in bucket %d, want %d", idx, NumBuckets-1)
	}
	for idx := 0; idx < NumBuckets; idx++ {
		lo, hi := BucketLo(idx), BucketHi(idx)
		if bucketIndex(lo) != idx {
			t.Fatalf("BucketLo(%d)=%d maps to bucket %d", idx, lo, bucketIndex(lo))
		}
		if bucketIndex(hi) != idx {
			t.Fatalf("BucketHi(%d)=%d maps to bucket %d", idx, hi, bucketIndex(hi))
		}
		if idx > 0 && lo > 0 && BucketHi(idx-1) != lo-1 {
			t.Fatalf("gap between bucket %d and %d", idx-1, idx)
		}
		if idx >= 4 && idx < NumBuckets-1 {
			width := float64(hi-lo+1) / float64(lo)
			if width > 0.26 {
				t.Fatalf("bucket %d relative width %.3f > 0.26", idx, width)
			}
		}
	}
	// Monotone: a larger value never lands in a smaller bucket.
	src := rng.New(11)
	prevV, prevIdx := uint64(0), 0
	for i := 0; i < 10000; i++ {
		v := src.Uint64() >> uint(src.Intn(64))
		if v >= prevV {
			if got := bucketIndex(v); got < prevIdx {
				t.Fatalf("bucketIndex not monotone: %d->%d for %d->%d", prevIdx, got, prevV, v)
			}
		}
		prevV, prevIdx = v, bucketIndex(v)
	}
}

func TestHistogramQuantile(t *testing.T) {
	var h Histogram
	for v := uint64(1); v <= 1000; v++ {
		h.Observe(v)
	}
	s := h.Snapshot()
	if s.Count != 1000 || s.Sum != 500500 {
		t.Fatalf("count=%d sum=%d", s.Count, s.Sum)
	}
	if m := s.Mean(); m != 500.5 {
		t.Fatalf("mean = %v, want 500.5", m)
	}
	for _, tc := range []struct{ q, want float64 }{
		{0.5, 500}, {0.95, 950}, {0.99, 990}, {0, 1}, {1, 1000},
	} {
		got := s.Quantile(tc.q)
		if math.Abs(got-tc.want)/tc.want > 0.26 {
			t.Errorf("q%.2f = %.1f, want within 26%% of %.1f", tc.q, got, tc.want)
		}
	}
	if !math.IsNaN((&HistSnapshot{}).Quantile(0.5)) {
		t.Fatal("empty quantile should be NaN")
	}
}

// TestHistogramMergeOrderIndependent is the merge property test: a value
// stream split across k histograms and merged in any order yields exactly
// the same buckets, count and sum as one histogram observing everything.
func TestHistogramMergeOrderIndependent(t *testing.T) {
	src := rng.New(42)
	for trial := 0; trial < 20; trial++ {
		k := 2 + src.Intn(6)
		parts := make([]*Histogram, k)
		for i := range parts {
			parts[i] = &Histogram{}
		}
		var whole Histogram
		n := 200 + src.Intn(2000)
		for i := 0; i < n; i++ {
			v := src.Uint64() >> uint(src.Intn(64))
			parts[src.Intn(k)].Observe(v)
			whole.Observe(v)
		}
		// Merge the parts in a random order.
		order := src.Perm(k)
		merged := &HistSnapshot{}
		for _, idx := range order {
			merged.Merge(parts[idx].Snapshot())
		}
		want := whole.Snapshot()
		if merged.Count != want.Count || merged.Sum != want.Sum {
			t.Fatalf("trial %d: merged count/sum %d/%d, want %d/%d",
				trial, merged.Count, merged.Sum, want.Count, want.Sum)
		}
		if len(merged.Buckets) != len(want.Buckets) {
			t.Fatalf("trial %d: %d buckets, want %d", trial, len(merged.Buckets), len(want.Buckets))
		}
		for i := range want.Buckets {
			if merged.Buckets[i] != want.Buckets[i] {
				t.Fatalf("trial %d bucket %d: %+v want %+v", trial, i, merged.Buckets[i], want.Buckets[i])
			}
		}
	}
}

// TestRegistryConcurrent hammers counters and a histogram from many
// goroutines while a scraper snapshots concurrently; run under -race in
// ci.sh.  Final totals must be exact, and every intermediate snapshot
// must be internally plausible (count never exceeds the final total).
func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	const writers = 8
	const perWriter = 5000
	var writerWG sync.WaitGroup
	for w := 0; w < writers; w++ {
		writerWG.Add(1)
		go func(w int) {
			defer writerWG.Done()
			c := r.Counter("ops")
			h := r.Histogram("lat")
			g := r.Gauge("depth")
			for i := 0; i < perWriter; i++ {
				c.Inc()
				h.Observe(uint64(w*perWriter + i))
				g.Add(1)
				g.Add(-1)
			}
		}(w)
	}
	stop := make(chan struct{})
	scraped := make(chan int, 1)
	go func() { // concurrent scrape loop
		n := 0
		for {
			select {
			case <-stop:
				scraped <- n
				return
			default:
			}
			s := r.Snapshot()
			n++
			if s.Counters["ops"] > writers*perWriter {
				t.Error("snapshot counter exceeds possible total")
			}
		}
	}()
	writerWG.Wait()
	close(stop)
	if nScrapes := <-scraped; nScrapes == 0 {
		t.Fatal("scraper never ran")
	}
	s := r.Snapshot()
	if s.Counters["ops"] != writers*perWriter {
		t.Fatalf("ops = %d, want %d", s.Counters["ops"], writers*perWriter)
	}
	hs := s.Histograms["lat"]
	if hs.Count != writers*perWriter {
		t.Fatalf("hist count = %d, want %d", hs.Count, writers*perWriter)
	}
	var bucketSum uint64
	for _, b := range hs.Buckets {
		bucketSum += b.Count
	}
	if bucketSum != hs.Count {
		t.Fatalf("bucket sum %d != count %d after quiescence", bucketSum, hs.Count)
	}
	if s.Gauges["depth"] != 0 {
		t.Fatalf("gauge = %d, want 0", s.Gauges["depth"])
	}
}

func TestSnapshotJSONRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("a").Add(3)
	r.Gauge("g").Set(-2)
	r.Histogram("h").Observe(1500)
	blob, err := json.Marshal(r.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(blob, &back); err != nil {
		t.Fatal(err)
	}
	if back.Counters["a"] != 3 || back.Gauges["g"] != -2 || back.Histograms["h"].Count != 1 {
		t.Fatalf("round trip mangled snapshot: %+v", back)
	}
	if got := back.CounterNames(); len(got) != 1 || got[0] != "a" {
		t.Fatalf("CounterNames = %v", got)
	}
}
