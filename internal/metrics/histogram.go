package metrics

// histogram.go implements the fixed-bucket log-scale latency histogram.
// Values (nanoseconds by convention, but any uint64 works) land in one
// of 252 buckets: the four smallest values exactly, then four
// logarithmically spaced sub-buckets per power of two — ~25% relative
// resolution across the full uint64 range, which is tighter than the
// run-to-run noise of any latency measurement it will hold.
//
// The bucket layout is a pure function of the value, with no
// configuration, so histograms recorded by different goroutines,
// processes or binary versions merge by adding bucket counts.  Merging
// is associative and commutative and loses no counts — the property
// test in metrics_test.go pins this.

import (
	"math"
	"math/bits"
	"sync/atomic"
)

// NumBuckets is the fixed bucket count of every Histogram.
const NumBuckets = 252

// bucketIndex maps a value to its bucket.  Values 0..3 get exact
// buckets 0..3; larger values use bits.Len64 for the octave and the two
// bits below the leading one for the sub-bucket.
func bucketIndex(v uint64) int {
	if v < 4 {
		return int(v)
	}
	o := bits.Len64(v)              // 3..64
	sub := (v >> (uint(o) - 3)) & 3 // two bits after the leading one
	return (o-3)*4 + int(sub) + 4
}

// BucketLo returns the smallest value that lands in bucket idx.
func BucketLo(idx int) uint64 {
	if idx < 4 {
		return uint64(idx)
	}
	g := (idx - 4) / 4
	sub := (idx - 4) % 4
	return uint64(4+sub) << uint(g)
}

// BucketHi returns the largest value that lands in bucket idx.
func BucketHi(idx int) uint64 {
	if idx >= NumBuckets-1 {
		return math.MaxUint64
	}
	return BucketLo(idx+1) - 1
}

// Histogram is a concurrent fixed-bucket log-scale histogram.  The zero
// value is ready to use.  Observe is wait-free: three atomic adds, no
// locks, no allocation.
type Histogram struct {
	count   atomic.Uint64
	sum     atomic.Uint64
	buckets [NumBuckets]atomic.Uint64
}

// Observe records one value.
func (h *Histogram) Observe(v uint64) {
	h.count.Add(1)
	h.sum.Add(v)
	h.buckets[bucketIndex(v)].Add(1)
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Snapshot captures the histogram as a detached, mergeable value.
func (h *Histogram) Snapshot() *HistSnapshot {
	snap := &HistSnapshot{
		Count: h.count.Load(),
		Sum:   h.sum.Load(),
	}
	for i := range h.buckets {
		if n := h.buckets[i].Load(); n > 0 {
			snap.Buckets = append(snap.Buckets, Bucket{Idx: i, Lo: BucketLo(i), Count: n})
		}
	}
	return snap
}

// Bucket is one occupied histogram bucket in a snapshot.  Lo is
// redundant with Idx (it is BucketLo(Idx)) and carried so a JSON dump
// is readable without the bucket formula.
type Bucket struct {
	Idx   int    `json:"idx"`
	Lo    uint64 `json:"lo"`
	Count uint64 `json:"n"`
}

// HistSnapshot is a point-in-time histogram: sparse occupied buckets
// plus exact count and sum.
type HistSnapshot struct {
	Count   uint64   `json:"count"`
	Sum     uint64   `json:"sum"`
	Buckets []Bucket `json:"buckets,omitempty"`
}

// Merge adds other's buckets and totals into s.  Bucket layouts are
// universal, so any two snapshots merge; the operation is commutative
// and associative and exact for counts.
func (s *HistSnapshot) Merge(other *HistSnapshot) {
	if other == nil || other.Count == 0 {
		return
	}
	s.Count += other.Count
	s.Sum += other.Sum
	// Merge two sparse sorted bucket lists.
	merged := make([]Bucket, 0, len(s.Buckets)+len(other.Buckets))
	i, j := 0, 0
	for i < len(s.Buckets) || j < len(other.Buckets) {
		switch {
		case j >= len(other.Buckets) || (i < len(s.Buckets) && s.Buckets[i].Idx < other.Buckets[j].Idx):
			merged = append(merged, s.Buckets[i])
			i++
		case i >= len(s.Buckets) || other.Buckets[j].Idx < s.Buckets[i].Idx:
			merged = append(merged, other.Buckets[j])
			j++
		default:
			b := s.Buckets[i]
			b.Count += other.Buckets[j].Count
			merged = append(merged, b)
			i++
			j++
		}
	}
	s.Buckets = merged
}

// Mean returns the mean of the observed values, exact (from the running
// sum), or NaN when empty.
func (s *HistSnapshot) Mean() float64 {
	if s.Count == 0 {
		return math.NaN()
	}
	return float64(s.Sum) / float64(s.Count)
}

// Quantile estimates the q-quantile (0 <= q <= 1) by locating the
// bucket holding the target rank and interpolating linearly inside it.
// The estimate is within the bucket's ~25% relative width of the true
// value.  It returns NaN for an empty snapshot or out-of-range q.
func (s *HistSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 || q < 0 || q > 1 || math.IsNaN(q) {
		return math.NaN()
	}
	rank := q * float64(s.Count-1) // 0-based fractional rank
	seen := uint64(0)
	for _, b := range s.Buckets {
		if float64(seen+b.Count) > rank {
			lo, hi := float64(b.Lo), float64(BucketHi(b.Idx))
			if b.Count == 1 {
				return lo
			}
			frac := (rank - float64(seen)) / float64(b.Count-1)
			if frac < 0 {
				frac = 0
			} else if frac > 1 {
				frac = 1
			}
			return lo + frac*(hi-lo)
		}
		seen += b.Count
	}
	// Rank beyond the last bucket (only by floating rounding).
	if n := len(s.Buckets); n > 0 {
		return float64(BucketHi(s.Buckets[n-1].Idx))
	}
	return math.NaN()
}
