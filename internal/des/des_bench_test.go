package des

import (
	"fmt"
	"testing"
)

// Benchmarks comparing the closure-based reference kernel against the
// flat queue on the event mixes the simulator produces: bulk
// schedule-then-drain (arrival streams), steady-state schedule/fire
// churn (finish events begetting finish events), and cancel-heavy
// traffic (fault-path finish cancellations).  Run with
// `make bench-des`; results are recorded in BENCH_des.json.

var benchSizes = []int{1_000, 10_000, 100_000, 1_000_000}

// BenchmarkScheduleDrainReference pushes n events (pre-sorted arrival
// times, like a workload's request stream) and drains them.
func BenchmarkScheduleDrainReference(b *testing.B) {
	for _, n := range benchSizes {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			fn := func(*Simulator) {}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				s := New()
				for j := 0; j < n; j++ {
					if _, err := s.ScheduleAt(float64(j), fn); err != nil {
						b.Fatal(err)
					}
				}
				if got := s.Run(); got != uint64(n) {
					b.Fatalf("ran %d of %d", got, n)
				}
			}
		})
	}
}

// BenchmarkScheduleDrainFlat is the flat-queue counterpart of
// BenchmarkScheduleDrainReference.
func BenchmarkScheduleDrainFlat(b *testing.B) {
	for _, n := range benchSizes {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			q := NewQueue()
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				q.Reset()
				kind := q.RegisterKind(func(*Queue, int32, int32) {})
				for j := 0; j < n; j++ {
					if _, err := q.ScheduleAt(float64(j), kind, int32(j), 0); err != nil {
						b.Fatal(err)
					}
				}
				if got := q.Run(); got != uint64(n) {
					b.Fatalf("ran %d of %d", got, n)
				}
			}
		})
	}
}

// BenchmarkSteadyStateReference measures the schedule/fire churn of a
// long-running simulation: a fixed population of k self-rescheduling
// event chains fires n total events.
func BenchmarkSteadyStateReference(b *testing.B) {
	for _, n := range benchSizes {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			const k = 64
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				s := New()
				remaining := n
				var chain Handler
				chain = func(sim *Simulator) {
					if remaining <= 0 {
						return
					}
					remaining--
					if _, err := sim.ScheduleAfter(1, chain); err != nil {
						b.Fatal(err)
					}
				}
				for j := 0; j < k; j++ {
					if _, err := s.ScheduleAt(float64(j), chain); err != nil {
						b.Fatal(err)
					}
				}
				s.RunUntil(float64(n/k + k + 2))
			}
		})
	}
}

// BenchmarkSteadyStateFlat is the flat-queue counterpart of
// BenchmarkSteadyStateReference.
func BenchmarkSteadyStateFlat(b *testing.B) {
	for _, n := range benchSizes {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			const k = 64
			q := NewQueue()
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				q.Reset()
				remaining := n
				var kind int32
				kind = q.RegisterKind(func(q *Queue, _, _ int32) {
					if remaining <= 0 {
						return
					}
					remaining--
					if _, err := q.ScheduleAfter(1, kind, 0, 0); err != nil {
						b.Fatal(err)
					}
				})
				for j := 0; j < k; j++ {
					if _, err := q.ScheduleAt(float64(j), kind, 0, 0); err != nil {
						b.Fatal(err)
					}
				}
				q.RunUntil(float64(n/k + k + 2))
			}
		})
	}
}

// BenchmarkCancelHeavyReference schedules n events, cancels every other
// one, and drains — the fault path's crash-cancels-finish pattern.
func BenchmarkCancelHeavyReference(b *testing.B) {
	for _, n := range benchSizes {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			fn := func(*Simulator) {}
			ids := make([]EventID, n)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				s := New()
				for j := 0; j < n; j++ {
					id, err := s.ScheduleAt(float64(j/2), fn)
					if err != nil {
						b.Fatal(err)
					}
					ids[j] = id
				}
				for j := 0; j < n; j += 2 {
					s.Cancel(ids[j])
				}
				if got := s.Run(); got != uint64(n/2) {
					b.Fatalf("ran %d of %d", got, n/2)
				}
			}
		})
	}
}

// BenchmarkCancelHeavyFlat is the flat-queue counterpart of
// BenchmarkCancelHeavyReference.
func BenchmarkCancelHeavyFlat(b *testing.B) {
	for _, n := range benchSizes {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			q := NewQueue()
			ids := make([]FlatID, n)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				q.Reset()
				kind := q.RegisterKind(func(*Queue, int32, int32) {})
				for j := 0; j < n; j++ {
					id, err := q.ScheduleAt(float64(j/2), kind, 0, 0)
					if err != nil {
						b.Fatal(err)
					}
					ids[j] = id
				}
				for j := 0; j < n; j += 2 {
					q.Cancel(ids[j])
				}
				if got := q.Run(); got != uint64(n/2) {
					b.Fatalf("ran %d of %d", got, n/2)
				}
			}
		})
	}
}

// TestFlatQueueZeroAllocSteadyState pins the tentpole claim: once warm,
// schedule, fire and cancel perform no heap allocation at all.
func TestFlatQueueZeroAllocSteadyState(t *testing.T) {
	q := NewQueue()
	var kind int32
	kind = q.RegisterKind(func(q *Queue, a, _ int32) {
		if a > 0 {
			if _, err := q.ScheduleAfter(1, kind, a-1, 0); err != nil {
				t.Error(err)
			}
		}
	})
	// Warm the buffers: grow heap, slots and free list to working size.
	var ids []FlatID
	for j := 0; j < 256; j++ {
		id, err := q.ScheduleAt(float64(j), kind, 4, 0)
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	for j := 0; j < 256; j += 2 {
		q.Cancel(ids[j])
	}
	q.Run()

	allocs := testing.AllocsPerRun(100, func() {
		base := q.Now()
		var last FlatID
		for j := 0; j < 128; j++ {
			id, err := q.ScheduleAt(base+float64(j), kind, 3, 0)
			if err != nil {
				t.Fatal(err)
			}
			last = id
		}
		q.Cancel(last)
		q.Run()
	})
	if allocs != 0 {
		t.Fatalf("steady-state schedule/fire/cancel allocates %.1f times per run, want 0", allocs)
	}
}
