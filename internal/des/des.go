// Package des is a deterministic discrete-event simulation kernel: a
// binary-heap event queue keyed by (time, sequence) and a simulator loop.
// The paper's evaluation runs on exactly such a simulator: "the resource
// allocation process was simulated using a discrete event simulator with
// the requests arrivals modeled using a Poisson random process"
// (Section 5.3).
//
// Determinism contract: events with equal timestamps fire in scheduling
// order (FIFO tie-break via a monotone sequence number), so a simulation
// driven by a seeded rng.Source is bit-reproducible.
package des

import (
	"container/heap"
	"fmt"
	"math"
)

// Handler is the action an event performs.  It receives the simulator so
// it can schedule follow-up events.
type Handler func(sim *Simulator)

// event is a scheduled handler.
type event struct {
	at    float64
	seq   uint64
	fn    Handler
	index int // heap index, -1 once popped or cancelled
	dead  bool
}

// EventID allows cancelling a scheduled event.
type EventID struct{ ev *event }

// eventQueue implements heap.Interface ordered by (at, seq).
type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}
func (q *eventQueue) Push(x any) {
	ev := x.(*event)
	ev.index = len(*q)
	*q = append(*q, ev)
}
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*q = old[:n-1]
	return ev
}

// Simulator owns the virtual clock and the event queue.  It is not safe
// for concurrent use; a simulation is a single logical thread (parallelism
// in this project happens *across* simulations, in internal/sim).
type Simulator struct {
	now     float64
	seq     uint64
	queue   eventQueue
	stopped bool

	executed uint64
}

// New returns a simulator with the clock at zero.
func New() *Simulator {
	return &Simulator{}
}

// Now returns the current simulated time.
func (s *Simulator) Now() float64 { return s.now }

// Pending returns the number of events still scheduled.
func (s *Simulator) Pending() int {
	n := 0
	for _, ev := range s.queue {
		if !ev.dead {
			n++
		}
	}
	return n
}

// Executed returns the number of events that have fired.
func (s *Simulator) Executed() uint64 { return s.executed }

// ScheduleAt schedules fn at absolute time at.  Scheduling in the past
// (before Now) is an error: the paper's model is causal.
func (s *Simulator) ScheduleAt(at float64, fn Handler) (EventID, error) {
	if fn == nil {
		return EventID{}, fmt.Errorf("des: nil handler")
	}
	if math.IsNaN(at) || math.IsInf(at, 0) {
		return EventID{}, fmt.Errorf("des: non-finite event time %v", at)
	}
	if at < s.now {
		return EventID{}, fmt.Errorf("des: cannot schedule at %g, now is %g", at, s.now)
	}
	ev := &event{at: at, seq: s.seq, fn: fn}
	s.seq++
	heap.Push(&s.queue, ev)
	return EventID{ev: ev}, nil
}

// ScheduleAfter schedules fn delay time units from now.
func (s *Simulator) ScheduleAfter(delay float64, fn Handler) (EventID, error) {
	if delay < 0 {
		return EventID{}, fmt.Errorf("des: negative delay %g", delay)
	}
	return s.ScheduleAt(s.now+delay, fn)
}

// Cancel marks a scheduled event dead; it will be skipped when reached.
// Cancelling an already-fired or already-cancelled event is a no-op
// returning false.
func (s *Simulator) Cancel(id EventID) bool {
	if id.ev == nil || id.ev.dead || id.ev.index == -1 {
		return false
	}
	id.ev.dead = true
	return true
}

// Stop halts the run loop after the current event completes.
func (s *Simulator) Stop() { s.stopped = true }

// Run executes events in order until the queue drains or Stop is called.
// It returns the number of events executed in this call.
func (s *Simulator) Run() uint64 {
	return s.RunUntil(math.Inf(1))
}

// RunUntil executes events with time <= deadline, advancing the clock to
// each event's timestamp.  On return the clock rests at the last executed
// event (or min(deadline, next event time) if the deadline cut the run
// short with events remaining).
func (s *Simulator) RunUntil(deadline float64) uint64 {
	s.stopped = false
	var ran uint64
	for len(s.queue) > 0 && !s.stopped {
		next := s.queue[0]
		if next.at > deadline {
			// Clock advances to the deadline, not past it.
			if deadline > s.now && !math.IsInf(deadline, 1) {
				s.now = deadline
			}
			break
		}
		heap.Pop(&s.queue)
		if next.dead {
			continue
		}
		s.now = next.at
		next.fn(s)
		ran++
		s.executed++
	}
	return ran
}

// Step executes exactly one live event, returning false if none remain.
func (s *Simulator) Step() bool {
	for len(s.queue) > 0 {
		next := heap.Pop(&s.queue).(*event)
		if next.dead {
			continue
		}
		s.now = next.at
		next.fn(s)
		s.executed++
		return true
	}
	return false
}

// Periodic schedules fn every interval, starting one interval from now,
// until the returned cancel function is called or fn returns false.  The
// simulator's batch-mode meta-request ticks are exactly this pattern.
func (s *Simulator) Periodic(interval float64, fn func(sim *Simulator) bool) (cancel func(), err error) {
	if interval <= 0 {
		return nil, fmt.Errorf("des: non-positive period %g", interval)
	}
	if fn == nil {
		return nil, fmt.Errorf("des: nil periodic handler")
	}
	stopped := false
	var current EventID
	var tick Handler
	tick = func(sim *Simulator) {
		if stopped {
			return
		}
		if !fn(sim) {
			stopped = true
			return
		}
		id, err := sim.ScheduleAfter(interval, tick)
		if err != nil {
			// Re-arming can only fail on a non-finite interval sum;
			// treat as the end of the series.
			stopped = true
			return
		}
		current = id
	}
	id, err := s.ScheduleAfter(interval, tick)
	if err != nil {
		return nil, err
	}
	current = id
	return func() {
		stopped = true
		s.Cancel(current)
	}, nil
}
