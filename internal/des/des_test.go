package des

import (
	"fmt"
	"math"
	"sort"
	"testing"
	"testing/quick"

	"gridtrust/internal/rng"
)

func TestEventsFireInTimeOrder(t *testing.T) {
	s := New()
	var fired []float64
	for _, at := range []float64{5, 1, 3, 2, 4} {
		at := at
		if _, err := s.ScheduleAt(at, func(sim *Simulator) {
			fired = append(fired, sim.Now())
		}); err != nil {
			t.Fatal(err)
		}
	}
	if n := s.Run(); n != 5 {
		t.Fatalf("ran %d events, want 5", n)
	}
	if !sort.Float64sAreSorted(fired) {
		t.Fatalf("events fired out of order: %v", fired)
	}
	if s.Now() != 5 {
		t.Fatalf("clock at %g, want 5", s.Now())
	}
}

func TestEqualTimesFIFO(t *testing.T) {
	s := New()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		if _, err := s.ScheduleAt(7, func(*Simulator) { order = append(order, i) }); err != nil {
			t.Fatal(err)
		}
	}
	s.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("tie-break not FIFO: %v", order)
		}
	}
}

func TestScheduleDuringRun(t *testing.T) {
	s := New()
	var log []string
	if _, err := s.ScheduleAt(1, func(sim *Simulator) {
		log = append(log, "a")
		if _, err := sim.ScheduleAfter(1, func(*Simulator) { log = append(log, "b") }); err != nil {
			t.Error(err)
		}
		// Same-time follow-up fires after currently queued same-time events.
		if _, err := sim.ScheduleAfter(0, func(*Simulator) { log = append(log, "a2") }); err != nil {
			t.Error(err)
		}
	}); err != nil {
		t.Fatal(err)
	}
	s.Run()
	want := []string{"a", "a2", "b"}
	if len(log) != len(want) {
		t.Fatalf("log = %v", log)
	}
	for i := range want {
		if log[i] != want[i] {
			t.Fatalf("log = %v, want %v", log, want)
		}
	}
}

func TestSchedulePastRejected(t *testing.T) {
	s := New()
	if _, err := s.ScheduleAt(5, func(*Simulator) {}); err != nil {
		t.Fatal(err)
	}
	s.Run()
	if _, err := s.ScheduleAt(1, func(*Simulator) {}); err == nil {
		t.Fatal("scheduled an event in the past")
	}
	if _, err := s.ScheduleAfter(-1, func(*Simulator) {}); err == nil {
		t.Fatal("accepted negative delay")
	}
	if _, err := s.ScheduleAt(math.NaN(), func(*Simulator) {}); err == nil {
		t.Fatal("accepted NaN time")
	}
	if _, err := s.ScheduleAt(6, nil); err == nil {
		t.Fatal("accepted nil handler")
	}
}

func TestCancel(t *testing.T) {
	s := New()
	fired := false
	id, err := s.ScheduleAt(1, func(*Simulator) { fired = true })
	if err != nil {
		t.Fatal(err)
	}
	if !s.Cancel(id) {
		t.Fatal("cancel failed")
	}
	if s.Cancel(id) {
		t.Fatal("double cancel succeeded")
	}
	s.Run()
	if fired {
		t.Fatal("cancelled event fired")
	}
	if s.Cancel(EventID{}) {
		t.Fatal("cancelling the zero EventID succeeded")
	}
}

func TestRunUntilDeadline(t *testing.T) {
	s := New()
	var fired []float64
	for _, at := range []float64{1, 2, 3, 4, 5} {
		at := at
		if _, err := s.ScheduleAt(at, func(sim *Simulator) { fired = append(fired, sim.Now()) }); err != nil {
			t.Fatal(err)
		}
	}
	n := s.RunUntil(3)
	if n != 3 || len(fired) != 3 {
		t.Fatalf("ran %d events before deadline, want 3", n)
	}
	if s.Now() != 3 {
		t.Fatalf("clock at %g after deadline run, want 3", s.Now())
	}
	if got := s.Pending(); got != 2 {
		t.Fatalf("pending = %d, want 2", got)
	}
	n = s.Run()
	if n != 2 || s.Now() != 5 {
		t.Fatalf("resume ran %d ended at %g", n, s.Now())
	}
}

func TestRunUntilAdvancesClockToDeadline(t *testing.T) {
	s := New()
	if _, err := s.ScheduleAt(10, func(*Simulator) {}); err != nil {
		t.Fatal(err)
	}
	s.RunUntil(4)
	if s.Now() != 4 {
		t.Fatalf("clock at %g, want 4 (deadline)", s.Now())
	}
}

func TestStop(t *testing.T) {
	s := New()
	count := 0
	for i := 1; i <= 5; i++ {
		i := i
		if _, err := s.ScheduleAt(float64(i), func(sim *Simulator) {
			count++
			if i == 2 {
				sim.Stop()
			}
		}); err != nil {
			t.Fatal(err)
		}
	}
	s.Run()
	if count != 2 {
		t.Fatalf("Stop did not halt the loop: ran %d", count)
	}
	// Run resumes after Stop.
	s.Run()
	if count != 5 {
		t.Fatalf("resume after Stop ran to %d, want 5", count)
	}
}

func TestStep(t *testing.T) {
	s := New()
	count := 0
	for i := 1; i <= 3; i++ {
		if _, err := s.ScheduleAt(float64(i), func(*Simulator) { count++ }); err != nil {
			t.Fatal(err)
		}
	}
	if !s.Step() || count != 1 {
		t.Fatal("Step did not execute one event")
	}
	s.Run()
	if s.Step() {
		t.Fatal("Step on a drained queue returned true")
	}
	if s.Executed() != 3 {
		t.Fatalf("Executed = %d, want 3", s.Executed())
	}
}

// TestOrderProperty: random event times always fire in non-decreasing time
// order with FIFO tie-break.
func TestOrderProperty(t *testing.T) {
	f := func(raw []uint16) bool {
		s := New()
		type rec struct {
			at  float64
			seq int
		}
		var fired []rec
		for i, v := range raw {
			at := float64(v % 100)
			i := i
			if _, err := s.ScheduleAt(at, func(sim *Simulator) {
				fired = append(fired, rec{sim.Now(), i})
			}); err != nil {
				return false
			}
		}
		s.Run()
		for k := 1; k < len(fired); k++ {
			if fired[k].at < fired[k-1].at {
				return false
			}
			if fired[k].at == fired[k-1].at && fired[k].seq < fired[k-1].seq {
				return false
			}
		}
		return len(fired) == len(raw)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestMM1QueueSanity runs an M/M/1 queue through the kernel and checks
// Little's law within tolerance — an end-to-end correctness check that
// exercises schedule-during-run heavily.
func TestMM1QueueSanity(t *testing.T) {
	const (
		lambda = 0.7
		mu     = 1.0
		n      = 200000
	)
	src := rng.New(123)
	s := New()

	var (
		queueLen   int
		busy       bool
		arrivals   int
		totalWait  float64 // sum of sojourn times
		arriveTime []float64
	)
	var startService func(sim *Simulator)
	startService = func(sim *Simulator) {
		if busy || queueLen == 0 {
			return
		}
		busy = true
		queueLen--
		t0 := arriveTime[0]
		arriveTime = arriveTime[1:]
		svc := src.Exponential(mu)
		if _, err := sim.ScheduleAfter(svc, func(sim *Simulator) {
			totalWait += sim.Now() - t0
			busy = false
			startService(sim)
		}); err != nil {
			t.Error(err)
		}
	}
	var arrive func(sim *Simulator)
	arrive = func(sim *Simulator) {
		arrivals++
		queueLen++
		arriveTime = append(arriveTime, sim.Now())
		startService(sim)
		if arrivals < n {
			if _, err := sim.ScheduleAfter(src.Exponential(lambda), arrive); err != nil {
				t.Error(err)
			}
		}
	}
	if _, err := s.ScheduleAt(0, arrive); err != nil {
		t.Fatal(err)
	}
	s.Run()

	// M/M/1 mean sojourn = 1/(mu-lambda) = 1/0.3 ≈ 3.33.
	meanSojourn := totalWait / float64(n)
	want := 1 / (mu - lambda)
	if math.Abs(meanSojourn-want)/want > 0.1 {
		t.Fatalf("M/M/1 mean sojourn = %g, want ~%g", meanSojourn, want)
	}
}

func BenchmarkScheduleRun(b *testing.B) {
	src := rng.New(1)
	times := make([]float64, 1024)
	for i := range times {
		times[i] = src.Float64() * 1000
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := New()
		for _, at := range times {
			_, _ = s.ScheduleAt(at, func(*Simulator) {})
		}
		s.Run()
	}
}

func TestPeriodicFiresUntilFalse(t *testing.T) {
	s := New()
	count := 0
	if _, err := s.Periodic(10, func(sim *Simulator) bool {
		count++
		return count < 4
	}); err != nil {
		t.Fatal(err)
	}
	s.Run()
	if count != 4 {
		t.Fatalf("periodic fired %d times, want 4", count)
	}
	if s.Now() != 40 {
		t.Fatalf("clock at %g, want 40", s.Now())
	}
}

func TestPeriodicCancel(t *testing.T) {
	s := New()
	count := 0
	cancel, err := s.Periodic(5, func(*Simulator) bool {
		count++
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	// Cancel after the second firing via a one-shot event.
	if _, err := s.ScheduleAt(12, func(*Simulator) { cancel() }); err != nil {
		t.Fatal(err)
	}
	s.RunUntil(100)
	if count != 2 {
		t.Fatalf("cancelled periodic fired %d times, want 2", count)
	}
}

func TestPeriodicValidation(t *testing.T) {
	s := New()
	if _, err := s.Periodic(0, func(*Simulator) bool { return true }); err == nil {
		t.Error("zero interval accepted")
	}
	if _, err := s.Periodic(1, nil); err == nil {
		t.Error("nil handler accepted")
	}
}

func TestPeriodicInterleavesWithEvents(t *testing.T) {
	s := New()
	var log []string
	if _, err := s.Periodic(10, func(sim *Simulator) bool {
		log = append(log, fmt.Sprintf("tick@%g", sim.Now()))
		return sim.Now() < 30
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.ScheduleAt(15, func(sim *Simulator) {
		log = append(log, "event@15")
	}); err != nil {
		t.Fatal(err)
	}
	s.Run()
	want := []string{"tick@10", "event@15", "tick@20", "tick@30"}
	if len(log) != len(want) {
		t.Fatalf("log = %v", log)
	}
	for i := range want {
		if log[i] != want[i] {
			t.Fatalf("log = %v, want %v", log, want)
		}
	}
}
