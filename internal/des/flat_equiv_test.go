package des

import (
	"math"
	"testing"

	"gridtrust/internal/rng"
)

// This file proves the flat queue and the reference kernel interchangeable:
// the same program of schedule/cancel/run/step operations — including
// cancels and spawns performed from inside firing events — must produce
// identical fire order, fire times, clock positions, pending counts and
// executed counts on both.  FuzzQueueEquivalence (flat_fuzz_test.go) feeds
// the same harness with fuzzer-derived programs.

// Operation codes for equivalence programs.
const (
	opSchedule = iota // schedule an event at `at` (cancelAt/spawn attached)
	opCancel          // cancel the event with tag `target` from outside
	opRun             // RunUntil(at)
	opStep            // Step once
)

// equivOp is one step of an equivalence program.
type equivOp struct {
	kind     int
	at       float64 // schedule: absolute fire time; run: deadline
	cancelAt int     // schedule: tag to cancel when this event fires, -1 none
	spawn    float64 // schedule: relative delay of a spawned follow-up, 0 none
	target   int     // cancel: tag to cancel
}

// fireRec is one observed firing.
type fireRec struct {
	tag int
	at  float64
}

// kernelObs is everything observable about a program execution.
type kernelObs struct {
	fired    []fireRec
	scheds   []bool // per schedule op: did ScheduleAt succeed
	cancels  []bool // per cancel op: Cancel's return
	runs     []uint64
	steps    []bool
	nows     []float64 // Now() after every op
	pendings []int     // Pending() after every op
	executed uint64
}

// runReferenceProgram executes ops on the closure-based Simulator.
func runReferenceProgram(ops []equivOp) kernelObs {
	var obs kernelObs
	s := New()
	var ids []EventID
	var schedule func(tag int, at float64, cancelAt int, spawn float64) bool
	nextSpawn := 0
	for _, o := range ops {
		if o.kind == opSchedule {
			nextSpawn++
		}
	}
	schedule = func(tag int, at float64, cancelAt int, spawn float64) bool {
		id, err := s.ScheduleAt(at, func(sim *Simulator) {
			obs.fired = append(obs.fired, fireRec{tag, sim.Now()})
			if cancelAt >= 0 && cancelAt < len(ids) {
				sim.Cancel(ids[cancelAt])
			}
			if spawn > 0 {
				tag := nextSpawn
				nextSpawn++
				// Spawned events carry no behaviour of their own; the
				// id list still records them so later cancels can hit.
				id, err := sim.ScheduleAfter(spawn, func(sim2 *Simulator) {
					obs.fired = append(obs.fired, fireRec{tag, sim2.Now()})
				})
				if err == nil {
					for len(ids) <= tag {
						ids = append(ids, EventID{})
					}
					ids[tag] = id
				}
			}
		})
		if err != nil {
			return false
		}
		for len(ids) <= tag {
			ids = append(ids, EventID{})
		}
		ids[tag] = id
		return true
	}
	tag := 0
	for _, o := range ops {
		switch o.kind {
		case opSchedule:
			obs.scheds = append(obs.scheds, schedule(tag, o.at, o.cancelAt, o.spawn))
			tag++
		case opCancel:
			ok := false
			if o.target >= 0 && o.target < len(ids) {
				ok = s.Cancel(ids[o.target])
			}
			obs.cancels = append(obs.cancels, ok)
		case opRun:
			obs.runs = append(obs.runs, s.RunUntil(o.at))
		case opStep:
			obs.steps = append(obs.steps, s.Step())
		}
		obs.nows = append(obs.nows, s.Now())
		obs.pendings = append(obs.pendings, s.Pending())
	}
	obs.runs = append(obs.runs, s.Run())
	obs.nows = append(obs.nows, s.Now())
	obs.pendings = append(obs.pendings, s.Pending())
	obs.executed = s.Executed()
	return obs
}

// runFlatProgram executes the same ops on the flat queue, with event
// behaviour (cancel target, spawn delay) carried in side tables indexed
// by the event's tag instead of captured in closures.
func runFlatProgram(ops []equivOp) kernelObs {
	var obs kernelObs
	q := NewQueue()
	var (
		ids      []FlatID
		cancelOf []int
		spawnOf  []float64
	)
	nextSpawn := 0
	for _, o := range ops {
		if o.kind == opSchedule {
			nextSpawn++
		}
	}
	grow := func(tag int) {
		for len(ids) <= tag {
			ids = append(ids, FlatID{})
			cancelOf = append(cancelOf, -1)
			spawnOf = append(spawnOf, 0)
		}
	}
	kind := q.RegisterKind(func(q *Queue, a, _ int32) {
		tag := int(a)
		obs.fired = append(obs.fired, fireRec{tag, q.Now()})
		if c := cancelOf[tag]; c >= 0 && c < len(ids) {
			q.Cancel(ids[c])
		}
		if sp := spawnOf[tag]; sp > 0 {
			stag := nextSpawn
			nextSpawn++
			grow(stag)
			id, err := q.ScheduleAfter(sp, 0, int32(stag), 0)
			if err == nil {
				ids[stag] = id
			}
		}
	})
	tag := 0
	for _, o := range ops {
		switch o.kind {
		case opSchedule:
			grow(tag)
			cancelOf[tag] = o.cancelAt
			spawnOf[tag] = o.spawn
			id, err := q.ScheduleAt(o.at, kind, int32(tag), 0)
			if err == nil {
				ids[tag] = id
			}
			obs.scheds = append(obs.scheds, err == nil)
			tag++
		case opCancel:
			ok := false
			if o.target >= 0 && o.target < len(ids) {
				ok = q.Cancel(ids[o.target])
			}
			obs.cancels = append(obs.cancels, ok)
		case opRun:
			obs.runs = append(obs.runs, q.RunUntil(o.at))
		case opStep:
			obs.steps = append(obs.steps, q.Step())
		}
		obs.nows = append(obs.nows, q.Now())
		obs.pendings = append(obs.pendings, q.Pending())
	}
	obs.runs = append(obs.runs, q.Run())
	obs.nows = append(obs.nows, q.Now())
	obs.pendings = append(obs.pendings, q.Pending())
	obs.executed = q.Executed()
	return obs
}

// checkEquivProgram runs ops on both kernels and reports any divergence.
func checkEquivProgram(t testing.TB, ops []equivOp) {
	t.Helper()
	ref := runReferenceProgram(ops)
	flat := runFlatProgram(ops)
	if len(ref.fired) != len(flat.fired) {
		t.Fatalf("fired %d events on reference, %d on flat\nops: %+v", len(ref.fired), len(flat.fired), ops)
	}
	for i := range ref.fired {
		if ref.fired[i] != flat.fired[i] {
			t.Fatalf("fire %d diverges: reference %+v, flat %+v\nops: %+v", i, ref.fired[i], flat.fired[i], ops)
		}
	}
	for i := range ref.scheds {
		if ref.scheds[i] != flat.scheds[i] {
			t.Fatalf("schedule %d: reference ok=%v, flat ok=%v", i, ref.scheds[i], flat.scheds[i])
		}
	}
	for i := range ref.cancels {
		if ref.cancels[i] != flat.cancels[i] {
			t.Fatalf("cancel %d: reference %v, flat %v", i, ref.cancels[i], flat.cancels[i])
		}
	}
	for i := range ref.runs {
		if ref.runs[i] != flat.runs[i] {
			t.Fatalf("run %d executed %d on reference, %d on flat", i, ref.runs[i], flat.runs[i])
		}
	}
	for i := range ref.steps {
		if ref.steps[i] != flat.steps[i] {
			t.Fatalf("step %d: reference %v, flat %v", i, ref.steps[i], flat.steps[i])
		}
	}
	for i := range ref.nows {
		if ref.nows[i] != flat.nows[i] {
			t.Fatalf("clock after op %d: reference %g, flat %g", i, ref.nows[i], flat.nows[i])
		}
	}
	for i := range ref.pendings {
		if ref.pendings[i] != flat.pendings[i] {
			t.Fatalf("pending after op %d: reference %d, flat %d", i, ref.pendings[i], flat.pendings[i])
		}
	}
	if ref.executed != flat.executed {
		t.Fatalf("executed: reference %d, flat %d", ref.executed, flat.executed)
	}
}

// randomEquivProgram draws a program heavy on equal timestamps (times are
// small quarter-integers) so the FIFO tie-break is constantly exercised.
func randomEquivProgram(src *rng.Source) []equivOp {
	n := 1 + src.Intn(60)
	ops := make([]equivOp, 0, n)
	scheduled := 0
	for i := 0; i < n; i++ {
		switch {
		case scheduled == 0 || src.Bool(0.55):
			op := equivOp{kind: opSchedule, at: float64(src.Intn(48)) / 4, cancelAt: -1}
			if scheduled > 0 && src.Bool(0.25) {
				op.cancelAt = src.Intn(scheduled)
			}
			if src.Bool(0.3) {
				op.spawn = float64(src.Intn(16)) / 4
			}
			ops = append(ops, op)
			scheduled++
		case src.Bool(0.35):
			ops = append(ops, equivOp{kind: opCancel, target: src.Intn(scheduled + 2)})
		case src.Bool(0.5):
			ops = append(ops, equivOp{kind: opRun, at: float64(src.Intn(40)) / 4})
		default:
			ops = append(ops, equivOp{kind: opStep})
		}
	}
	return ops
}

// TestFlatQueueEquivalence property-checks the flat queue against the
// reference kernel over randomized interleavings.
func TestFlatQueueEquivalence(t *testing.T) {
	src := rng.New(20260807)
	for trial := 0; trial < 300; trial++ {
		checkEquivProgram(t, randomEquivProgram(src))
	}
}

// TestFlatQueueEquivalenceDirected pins the corner cases the random
// generator might under-sample.
func TestFlatQueueEquivalenceDirected(t *testing.T) {
	cases := [][]equivOp{
		// Equal-timestamp FIFO across a cancel hole.
		{
			{kind: opSchedule, at: 1, cancelAt: -1},
			{kind: opSchedule, at: 1, cancelAt: -1},
			{kind: opSchedule, at: 1, cancelAt: -1},
			{kind: opCancel, target: 1},
			{kind: opRun, at: 2},
		},
		// Cancel from inside a same-timestamp event.
		{
			{kind: opSchedule, at: 1, cancelAt: 1},
			{kind: opSchedule, at: 1, cancelAt: -1},
			{kind: opRun, at: 5},
		},
		// Spawn at zero-ish delay, then cancel the spawner's victim twice.
		{
			{kind: opSchedule, at: 0, cancelAt: -1, spawn: 0.25},
			{kind: opCancel, target: 0},
			{kind: opCancel, target: 0},
			{kind: opRun, at: 10},
		},
		// Deadline rests between events; scheduling resumes after.
		{
			{kind: opSchedule, at: 4, cancelAt: -1},
			{kind: opRun, at: 2},
			{kind: opSchedule, at: 3, cancelAt: -1},
			{kind: opRun, at: 8},
		},
		// Step through a cancelled head.
		{
			{kind: opSchedule, at: 1, cancelAt: -1},
			{kind: opSchedule, at: 2, cancelAt: -1},
			{kind: opCancel, target: 0},
			{kind: opStep},
			{kind: opStep},
		},
		// Past-time schedule must fail identically on both kernels.
		{
			{kind: opSchedule, at: 3, cancelAt: -1},
			{kind: opRun, at: 5},
			{kind: opSchedule, at: 1, cancelAt: -1},
		},
	}
	for i, ops := range cases {
		i, ops := i, ops
		t.Run("", func(t *testing.T) {
			_ = i
			checkEquivProgram(t, ops)
		})
	}
}

// TestFlatQueueNonFinite checks the validation parity the programs above
// cannot express.
func TestFlatQueueNonFinite(t *testing.T) {
	q := NewQueue()
	kind := q.RegisterKind(func(*Queue, int32, int32) {})
	if _, err := q.ScheduleAt(math.NaN(), kind, 0, 0); err == nil {
		t.Fatal("NaN time accepted")
	}
	if _, err := q.ScheduleAt(math.Inf(1), kind, 0, 0); err == nil {
		t.Fatal("infinite time accepted")
	}
	if _, err := q.ScheduleAfter(-1, kind, 0, 0); err == nil {
		t.Fatal("negative delay accepted")
	}
	if _, err := q.ScheduleAt(1, kind+1, 0, 0); err == nil {
		t.Fatal("unregistered kind accepted")
	}
	if q.Cancel(FlatID{}) {
		t.Fatal("zero FlatID cancelled something")
	}
}

// TestFlatQueueReset checks that a recycled queue behaves like a fresh one.
func TestFlatQueueReset(t *testing.T) {
	src := rng.New(42)
	q := NewQueue()
	for trial := 0; trial < 20; trial++ {
		q.Reset()
		var fired []int
		kind := q.RegisterKind(func(q *Queue, a, _ int32) { fired = append(fired, int(a)) })
		n := 1 + src.Intn(30)
		want := make([]int, n)
		for i := 0; i < n; i++ {
			if _, err := q.ScheduleAt(float64(i%7), kind, int32(i), 0); err != nil {
				t.Fatal(err)
			}
		}
		// FIFO within equal times: sort by (time, insertion order).
		idx := 0
		for tm := 0; tm < 7; tm++ {
			for i := 0; i < n; i++ {
				if i%7 == tm {
					want[idx] = i
					idx++
				}
			}
		}
		if got := q.Run(); got != uint64(n) {
			t.Fatalf("trial %d: ran %d of %d", trial, got, n)
		}
		for i := range want {
			if fired[i] != want[i] {
				t.Fatalf("trial %d: fired %v, want %v", trial, fired, want)
			}
		}
		lastTime := 6.0
		if n < 7 {
			lastTime = float64(n - 1)
		}
		if q.Now() != lastTime || q.Pending() != 0 {
			t.Fatalf("trial %d: now=%g pending=%d after drain", trial, q.Now(), q.Pending())
		}
	}
}
