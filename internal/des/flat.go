package des

import (
	"fmt"
	"math"
)

// Queue is the flat event queue: the allocation-free counterpart of
// Simulator.  Where the reference kernel schedules one heap-allocated
// event plus one closure per occurrence, Queue stores events as plain
// values in a 4-ary heap and dispatches them through a fixed table of
// typed handlers, so a steady-state run schedules, fires and cancels
// events without touching the heap allocator at all.
//
// The two kernels implement the same contract — (time, sequence) order,
// equal-timestamp FIFO, lazy cancellation, Stop/Run/RunUntil/Step — and
// flat_equiv_test.go plus FuzzQueueEquivalence prove the fire orders
// identical on arbitrary schedule/cancel/now interleavings.  Simulator
// stays as the executable reference; Queue is what the simulator's hot
// paths run on.
//
// Design notes:
//   - The heap is a slice of 32-byte entry values.  A 4-ary layout
//     halves the tree height of the reference binary heap, and keeps
//     parent and children on one or two cache lines instead of chasing
//     *event pointers.
//   - Events carry a kind plus two int32 arguments instead of a
//     closure.  Handlers are registered once per run; the per-event
//     cost of varying state is two integers, not a captured
//     environment.
//   - Cancellation needs an identity that survives heap sifts, so each
//     entry points at a slot in a side array; slots carry a generation
//     counter and are recycled through a free list.  A FlatID is
//     (slot, generation): cancelling a fired or stale ID compares
//     generations and returns false, exactly like the reference.
type Queue struct {
	now     float64
	seq     uint64
	heap    []entry
	slots   []slotState
	free    []int32
	dead    int // cancelled entries still buried in the heap
	stopped bool

	executed uint64
	handlers []TypedHandler
}

// TypedHandler is the action a typed event performs.  It receives the
// queue (to schedule follow-ups) and the two int arguments the event
// was scheduled with; the event's timestamp is q.Now().
type TypedHandler func(q *Queue, a, b int32)

// entry is one scheduled occurrence, stored by value in the heap.
type entry struct {
	at   float64
	seq  uint64
	slot int32 // 1-based slot index carrying cancel identity
	kind int32
	a, b int32
}

// slotState carries the out-of-heap identity of a scheduled event.
type slotState struct {
	gen    uint32
	queued bool // false once fired, cancelled or never used
	dead   bool // cancelled but not yet popped
}

// FlatID identifies a scheduled event for cancellation.  The zero value
// is valid and names no event.
type FlatID struct {
	slot int32 // 1-based; 0 means "no event"
	gen  uint32
}

// NewQueue returns an empty flat queue with the clock at zero.
func NewQueue() *Queue {
	return &Queue{}
}

// Reset returns the queue to its initial state — clock zero, no events,
// no handlers — while keeping every internal buffer's capacity, so one
// queue can be recycled across replications without reallocating.
func (q *Queue) Reset() {
	q.now = 0
	q.seq = 0
	q.heap = q.heap[:0]
	q.slots = q.slots[:0]
	q.free = q.free[:0]
	q.dead = 0
	q.stopped = false
	q.executed = 0
	q.handlers = q.handlers[:0]
}

// RegisterKind installs a handler and returns the kind to schedule it
// under.  Kinds are registered once per run, before scheduling.
func (q *Queue) RegisterKind(h TypedHandler) int32 {
	q.handlers = append(q.handlers, h)
	return int32(len(q.handlers) - 1)
}

// Now returns the current simulated time.
func (q *Queue) Now() float64 { return q.now }

// Pending returns the number of events still scheduled (cancelled
// events awaiting their lazy removal are not counted).
func (q *Queue) Pending() int { return len(q.heap) - q.dead }

// Executed returns the number of events that have fired.
func (q *Queue) Executed() uint64 { return q.executed }

// ScheduleAt schedules an event of the given kind at absolute time at.
// Scheduling in the past is an error, matching the reference kernel.
func (q *Queue) ScheduleAt(at float64, kind, a, b int32) (FlatID, error) {
	if kind < 0 || int(kind) >= len(q.handlers) || q.handlers[kind] == nil {
		return FlatID{}, fmt.Errorf("des: unregistered event kind %d", kind)
	}
	if math.IsNaN(at) || math.IsInf(at, 0) {
		return FlatID{}, fmt.Errorf("des: non-finite event time %v", at)
	}
	if at < q.now {
		return FlatID{}, fmt.Errorf("des: cannot schedule at %g, now is %g", at, q.now)
	}
	var slot int32
	if n := len(q.free); n > 0 {
		slot = q.free[n-1]
		q.free = q.free[:n-1]
	} else {
		q.slots = append(q.slots, slotState{})
		slot = int32(len(q.slots))
	}
	st := &q.slots[slot-1]
	st.queued = true
	st.dead = false
	ev := entry{at: at, seq: q.seq, slot: slot, kind: kind, a: a, b: b}
	q.seq++
	q.push(ev)
	return FlatID{slot: slot, gen: st.gen}, nil
}

// ScheduleAfter schedules an event delay time units from now.
func (q *Queue) ScheduleAfter(delay float64, kind, a, b int32) (FlatID, error) {
	if delay < 0 {
		return FlatID{}, fmt.Errorf("des: negative delay %g", delay)
	}
	return q.ScheduleAt(q.now+delay, kind, a, b)
}

// Cancel marks a scheduled event dead; it will be skipped when reached.
// Cancelling the zero FlatID, an already-fired or an already-cancelled
// event is a no-op returning false.
func (q *Queue) Cancel(id FlatID) bool {
	if id.slot <= 0 || int(id.slot) > len(q.slots) {
		return false
	}
	st := &q.slots[id.slot-1]
	if st.gen != id.gen || !st.queued || st.dead {
		return false
	}
	st.dead = true
	q.dead++
	return true
}

// Stop halts the run loop after the current event completes.
func (q *Queue) Stop() { q.stopped = true }

// Run executes events in order until the queue drains or Stop is
// called.  It returns the number of events executed in this call.
func (q *Queue) Run() uint64 {
	return q.RunUntil(math.Inf(1))
}

// RunUntil executes events with time <= deadline, advancing the clock
// to each event's timestamp; semantics mirror Simulator.RunUntil.
func (q *Queue) RunUntil(deadline float64) uint64 {
	q.stopped = false
	var ran uint64
	for len(q.heap) > 0 && !q.stopped {
		if q.heap[0].at > deadline {
			if deadline > q.now && !math.IsInf(deadline, 1) {
				q.now = deadline
			}
			break
		}
		ev := q.pop()
		if q.release(ev.slot) {
			continue
		}
		q.now = ev.at
		q.handlers[ev.kind](q, ev.a, ev.b)
		ran++
		q.executed++
	}
	return ran
}

// Step executes exactly one live event, returning false if none remain.
func (q *Queue) Step() bool {
	for len(q.heap) > 0 {
		ev := q.pop()
		if q.release(ev.slot) {
			continue
		}
		q.now = ev.at
		q.handlers[ev.kind](q, ev.a, ev.b)
		q.executed++
		return true
	}
	return false
}

// release retires a popped event's slot, returning whether the event
// had been cancelled.  The slot's generation advances so stale FlatIDs
// can never cancel a recycled slot.
func (q *Queue) release(slot int32) (wasDead bool) {
	st := &q.slots[slot-1]
	wasDead = st.dead
	if wasDead {
		q.dead--
	}
	st.queued = false
	st.dead = false
	st.gen++
	q.free = append(q.free, slot)
	return wasDead
}

// 4-ary heap ordered by (at, seq): children of i sit at 4i+1..4i+4.

// less orders entries by time, then scheduling sequence (FIFO ties).
func less(x, y *entry) bool {
	if x.at != y.at {
		return x.at < y.at
	}
	return x.seq < y.seq
}

// push appends ev and sifts it up.
func (q *Queue) push(ev entry) {
	q.heap = append(q.heap, ev)
	i := len(q.heap) - 1
	for i > 0 {
		parent := (i - 1) / 4
		if !less(&q.heap[i], &q.heap[parent]) {
			break
		}
		q.heap[i], q.heap[parent] = q.heap[parent], q.heap[i]
		i = parent
	}
}

// pop removes and returns the minimum entry.
func (q *Queue) pop() entry {
	h := q.heap
	top := h[0]
	n := len(h) - 1
	h[0] = h[n]
	q.heap = h[:n]
	if n > 1 {
		q.siftDown(0)
	}
	return top
}

// siftDown restores heap order below index i.
func (q *Queue) siftDown(i int) {
	h := q.heap
	n := len(h)
	for {
		first := 4*i + 1
		if first >= n {
			return
		}
		min := first
		last := first + 4
		if last > n {
			last = n
		}
		for c := first + 1; c < last; c++ {
			if less(&h[c], &h[min]) {
				min = c
			}
		}
		if !less(&h[min], &h[i]) {
			return
		}
		h[i], h[min] = h[min], h[i]
		i = min
	}
}
