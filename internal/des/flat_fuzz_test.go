package des

import "testing"

// FuzzQueueEquivalence cross-checks the flat queue against the reference
// kernel on fuzzer-derived programs of schedule/cancel/run/step operations.
// Times are quantized to quarter-units over a small range so equal
// timestamps — the FIFO tie-break — dominate the search space.
func FuzzQueueEquivalence(f *testing.F) {
	f.Add([]byte{0, 4, 0, 4, 1, 1, 2, 8})
	f.Add([]byte{0, 0, 0, 0, 0, 0, 3, 3, 2, 40})
	f.Add([]byte{0, 9, 1, 0, 0, 9, 2, 12, 0, 3, 2, 60})
	f.Fuzz(func(t *testing.T, data []byte) {
		ops := decodeEquivProgram(data)
		if len(ops) == 0 {
			t.Skip()
		}
		checkEquivProgram(t, ops)
	})
}

// decodeEquivProgram turns fuzz bytes into an equivalence program.  The
// encoding is positional: an op code byte followed by its operand bytes;
// truncated trailing operands default to zero.
func decodeEquivProgram(data []byte) []equivOp {
	const maxOps = 256
	var ops []equivOp
	next := func(i *int) byte {
		if *i >= len(data) {
			return 0
		}
		b := data[*i]
		*i++
		return b
	}
	scheduled := 0
	for i := 0; i < len(data) && len(ops) < maxOps; {
		switch next(&i) % 5 {
		case 0, 1: // schedule (weighted double so programs have substance)
			op := equivOp{
				kind:     opSchedule,
				at:       float64(next(&i)%64) / 4,
				cancelAt: -1,
			}
			if c := next(&i); c%4 == 0 && scheduled > 0 {
				op.cancelAt = int(c) % scheduled
			}
			if s := next(&i); s%3 == 0 {
				op.spawn = float64(s%16) / 4
			}
			ops = append(ops, op)
			scheduled++
		case 2:
			ops = append(ops, equivOp{kind: opCancel, target: int(next(&i)) % (scheduled + 3)})
		case 3:
			ops = append(ops, equivOp{kind: opRun, at: float64(next(&i)%80) / 4})
		case 4:
			ops = append(ops, equivOp{kind: opStep})
		}
	}
	return ops
}
