package des

import (
	"sort"
	"testing"

	"gridtrust/internal/rng"
)

// TestKernelAgainstListOracle model-checks the heap-based kernel against a
// naive reference implementation (a sorted list re-scanned on every pop)
// over randomized schedules including cancellations and mid-run insertions.
// Any divergence in firing order or count is a kernel bug.
func TestKernelAgainstListOracle(t *testing.T) {
	src := rng.New(987)
	for trial := 0; trial < 50; trial++ {
		nInitial := 1 + src.Intn(40)
		ops := make([]kernelOp, nInitial)
		for i := range ops {
			ops[i] = kernelOp{at: float64(src.Intn(50))}
			if i > 0 && src.Bool(0.2) {
				ops[i].cancelAt = src.Intn(i)
			} else {
				ops[i].cancelAt = -1
			}
			if src.Bool(0.3) {
				ops[i].spawnAt = float64(src.Intn(20)) + 1
			}
		}

		// Run through the kernel.
		kernelOrder := runKernel(t, ops)
		// Run through the oracle.
		oracleOrder := runOracle(ops)

		if len(kernelOrder) != len(oracleOrder) {
			t.Fatalf("trial %d: kernel fired %d events, oracle %d",
				trial, len(kernelOrder), len(oracleOrder))
		}
		for i := range kernelOrder {
			if kernelOrder[i] != oracleOrder[i] {
				t.Fatalf("trial %d: order diverges at %d: kernel %v vs oracle %v",
					trial, i, kernelOrder, oracleOrder)
			}
		}
	}
}

// oracleEvent mirrors the kernel's scheduling semantics in the reference
// implementation.
type oracleEvent struct {
	at   float64
	seq  int
	id   int
	dead bool
	// behaviour attached to the source op (only initial events carry it)
	cancelAt int
	spawnAt  float64
}

// kernelOp describes one randomly generated scheduling operation: fire at
// `at`, optionally cancel an earlier op's event, optionally spawn a
// follow-up event spawnAt time units later.
type kernelOp struct {
	at       float64
	cancelAt int // index of an earlier event to cancel when fired, -1 none
	spawnAt  float64
}

// runKernel executes the schedule on the production simulator, returning
// fired event ids (initial events are 0..n-1, spawned events n, n+1, ...
// in spawn order).
func runKernel(t *testing.T, ops []kernelOp) []int {
	t.Helper()
	s := New()
	var fired []int
	ids := make([]EventID, len(ops))
	nextSpawn := len(ops)
	for i, o := range ops {
		i, o := i, o
		var err error
		ids[i], err = s.ScheduleAt(o.at, func(sim *Simulator) {
			fired = append(fired, i)
			if o.cancelAt >= 0 {
				sim.Cancel(ids[o.cancelAt])
			}
			if o.spawnAt > 0 {
				id := nextSpawn
				nextSpawn++
				if _, err := sim.ScheduleAfter(o.spawnAt, func(*Simulator) {
					fired = append(fired, id)
				}); err != nil {
					t.Error(err)
				}
			}
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	s.Run()
	return fired
}

// runOracle executes the same schedule with a naive list: on each step,
// scan for the live event with the smallest (at, seq).
func runOracle(ops []kernelOp) []int {
	events := make([]*oracleEvent, 0, len(ops)*2)
	for i, o := range ops {
		events = append(events, &oracleEvent{
			at: o.at, seq: i, id: i, cancelAt: o.cancelAt, spawnAt: o.spawnAt,
		})
	}
	seq := len(ops)
	nextSpawn := len(ops)
	var fired []int
	now := 0.0
	for {
		// Find the earliest live, unfired event.
		live := make([]*oracleEvent, 0, len(events))
		for _, e := range events {
			if !e.dead {
				live = append(live, e)
			}
		}
		if len(live) == 0 {
			break
		}
		sort.Slice(live, func(i, j int) bool {
			if live[i].at != live[j].at {
				return live[i].at < live[j].at
			}
			return live[i].seq < live[j].seq
		})
		e := live[0]
		e.dead = true
		now = e.at
		fired = append(fired, e.id)
		if e.cancelAt >= 0 {
			// Cancel the original event with that id if still pending.
			for _, other := range events {
				if other.id == e.cancelAt && !other.dead {
					other.dead = true
				}
			}
		}
		if e.spawnAt > 0 {
			events = append(events, &oracleEvent{
				at: now + e.spawnAt, seq: seq, id: nextSpawn, cancelAt: -1,
			})
			seq++
			nextSpawn++
		}
	}
	return fired
}
