package wal

import (
	"fmt"
	"testing"
)

// benchPayload sizes cover the journal's working range: a placement
// record is ~200 bytes, a trust transaction ~120.
var benchSizes = []int{64, 256, 1024}

// BenchmarkAppendSerial measures one appender paying every fsync alone —
// the group-commit worst case and the per-record durability floor.
func BenchmarkAppendSerial(b *testing.B) {
	for _, size := range benchSizes {
		b.Run(fmt.Sprintf("%dB", size), func(b *testing.B) {
			l, _, err := Create(b.TempDir(), Options{})
			if err != nil {
				b.Fatal(err)
			}
			defer l.Close()
			payload := make([]byte, size)
			b.SetBytes(int64(size))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := l.Append(payload); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAppendParallel measures concurrent appenders sharing fsyncs:
// the throughput the daemon sees under load.  Compare records/sec against
// AppendSerial to read the group-commit amortisation directly; the
// reported syncs-per-append ratio is in the logs via Stats.
func BenchmarkAppendParallel(b *testing.B) {
	for _, size := range benchSizes {
		b.Run(fmt.Sprintf("%dB", size), func(b *testing.B) {
			l, _, err := Create(b.TempDir(), Options{})
			if err != nil {
				b.Fatal(err)
			}
			defer l.Close()
			payload := make([]byte, size)
			b.SetBytes(int64(size))
			// 8 goroutines per core: group commit only amortises when
			// appenders actually queue behind the leader's fsync, which
			// GOMAXPROCS alone cannot guarantee on small machines.
			b.SetParallelism(8)
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					if _, err := l.Append(payload); err != nil {
						b.Fatal(err)
					}
				}
			})
			b.StopTimer()
			st := l.Stats()
			if st.Appends > 0 {
				b.ReportMetric(float64(st.Syncs)/float64(st.Appends), "syncs/append")
			}
		})
	}
}

// BenchmarkAppendNoSync isolates framing + buffering cost from disk
// flushes.
func BenchmarkAppendNoSync(b *testing.B) {
	l, _, err := Create(b.TempDir(), Options{NoSync: true})
	if err != nil {
		b.Fatal(err)
	}
	defer l.Close()
	payload := make([]byte, 256)
	b.SetBytes(256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := l.Append(payload); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRecover measures replaying a 10k-record log — the daemon's
// restart cost when compaction has not run.
func BenchmarkRecover(b *testing.B) {
	dir := b.TempDir()
	l, _, err := Create(dir, Options{NoSync: true})
	if err != nil {
		b.Fatal(err)
	}
	payload := make([]byte, 256)
	const records = 10000
	for i := 0; i < records; i++ {
		if _, err := l.Append(payload); err != nil {
			b.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(records * (256 + frameHeader))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec, err := Inspect(dir, Options{})
		if err != nil {
			b.Fatal(err)
		}
		if len(rec.Records) != records {
			b.Fatalf("recovered %d", len(rec.Records))
		}
	}
}
