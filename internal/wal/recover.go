package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"path/filepath"
	"sort"
)

// Record is one recovered log entry.
type Record struct {
	Seq     uint64
	Payload []byte
}

// SegmentInfo describes one scanned segment file.
type SegmentInfo struct {
	// Base is the sequence of the segment's first record.
	Base uint64
	// Records is how many valid records the segment holds.
	Records int
	// Bytes is the valid prefix length (header + intact frames).
	Bytes int64
	// TornBytes is how much trailing garbage followed the valid prefix.
	TornBytes int64
	// Dropped marks a segment discarded whole: unreadable header, or
	// unreachable because an earlier segment's tail was torn.
	Dropped bool
}

// Recovered is the result of replaying a log directory: the longest valid
// prefix.  Corruption never surfaces as an error here unless state is
// unrecoverable (ErrCorrupt); a torn tail is truncated and accounted in
// TruncatedBytes/DroppedSegments.
type Recovered struct {
	// SnapshotSeq is the boundary of the recovered snapshot: the first
	// record NOT covered by it.  0 means no snapshot.
	SnapshotSeq uint64
	// Snapshot is the snapshot payload, nil when SnapshotSeq is 0.
	Snapshot []byte
	// Records holds every recovered record with seq >= SnapshotSeq, in
	// sequence order with no gaps.
	Records []Record
	// NextSeq is the sequence the next append will receive.
	NextSeq uint64
	// Segments describes the scanned chain (inspection/debugging).
	Segments []SegmentInfo
	// TruncatedBytes counts torn tail bytes cut from the last valid
	// segment; DroppedSegments counts files discarded whole;
	// CorruptSnapshots counts unreadable snapshot files skipped over.
	TruncatedBytes   int64
	DroppedSegments  int
	CorruptSnapshots int
}

// Clean reports whether recovery found no damage at all.
func (r *Recovered) Clean() bool {
	return r.TruncatedBytes == 0 && r.DroppedSegments == 0 && r.CorruptSnapshots == 0
}

// Inspect replays a log directory read-only: nothing is truncated,
// deleted or created.  The same prefix rules as Create apply, so the
// result is exactly what a subsequent Create would recover.
func Inspect(dir string, opts Options) (*Recovered, error) {
	rec, _, err := recoverDir(dir, opts.withDefaults(), false)
	return rec, err
}

// recoverDir scans dir and returns the longest valid prefix plus the
// bases of the segments kept live.  With mutate set it also repairs:
// truncating the torn tail, deleting dropped/obsolete segments and
// corrupt snapshot files.
func recoverDir(dir string, opts Options, mutate bool) (*Recovered, []uint64, error) {
	entries, err := opts.FS.ReadDir(dir)
	if err != nil {
		if isNotExist(err) && !mutate {
			return &Recovered{NextSeq: 1}, nil, nil
		}
		return nil, nil, fmt.Errorf("wal: list dir: %w", err)
	}

	var bases []uint64
	var snapSeqs []uint64
	for _, e := range entries {
		var v uint64
		if n, serr := fmt.Sscanf(e.Name(), "wal-%016x.seg", &v); serr == nil && n == 1 && e.Name() == segmentName(v) {
			bases = append(bases, v)
			continue
		}
		if n, serr := fmt.Sscanf(e.Name(), "snap-%016x.snap", &v); serr == nil && n == 1 && e.Name() == snapshotName(v) {
			snapSeqs = append(snapSeqs, v)
		}
	}
	sort.Slice(bases, func(i, j int) bool { return bases[i] < bases[j] })
	sort.Slice(snapSeqs, func(i, j int) bool { return snapSeqs[i] > snapSeqs[j] })

	rec := &Recovered{}

	// Newest readable snapshot wins; unreadable ones are skipped (and
	// removed under mutate).
	for _, s := range snapSeqs {
		payload, serr := readSnapshotFile(opts.FS, filepath.Join(dir, snapshotName(s)), s)
		if serr != nil {
			rec.CorruptSnapshots++
			if mutate {
				_ = opts.FS.Remove(filepath.Join(dir, snapshotName(s)))
			}
			continue
		}
		rec.SnapshotSeq, rec.Snapshot = s, payload
		break
	}

	// Segments wholly below the snapshot boundary are redundant: skip
	// them (and delete under mutate).  start is the first segment that
	// may hold live records.
	start := 0
	for start < len(bases)-1 && bases[start+1] <= rec.SnapshotSeq {
		if mutate {
			_ = opts.FS.Remove(filepath.Join(dir, segmentName(bases[start])))
		}
		start++
	}
	// Coverage check: the chain must begin at seq 1 or at/below the
	// snapshot boundary, else records were lost with no snapshot to
	// stand in for them.
	if len(bases) > 0 {
		first := bases[start]
		covered := first == 1 || (rec.SnapshotSeq > 0 && first <= rec.SnapshotSeq)
		if !covered {
			return nil, nil, fmt.Errorf("%w: first segment starts at seq %d with snapshot boundary %d",
				ErrCorrupt, first, rec.SnapshotSeq)
		}
	} else if rec.SnapshotSeq == 0 && rec.CorruptSnapshots > 0 {
		return nil, nil, fmt.Errorf("%w: no readable snapshot and no segments", ErrCorrupt)
	}

	// Scan the chain: contiguous valid records, prefix rule on any
	// damage.
	var kept []uint64
	expect := uint64(0)
	broken := false
	for i := start; i < len(bases); i++ {
		base := bases[i]
		path := filepath.Join(dir, segmentName(base))
		if broken || (expect != 0 && base != expect) {
			// Unreachable: an earlier tear or a sequence gap.
			rec.DroppedSegments++
			rec.Segments = append(rec.Segments, SegmentInfo{Base: base, Dropped: true})
			if mutate {
				_ = opts.FS.Remove(path)
			}
			broken = true
			continue
		}
		info, payloads, serr := scanSegment(opts.FS, path, base, opts.MaxRecordBytes)
		if serr != nil {
			return nil, nil, serr
		}
		if info.Records == 0 && info.Bytes == 0 {
			// Header unreadable: drop the file whole.
			info.Dropped = true
			rec.DroppedSegments++
			rec.Segments = append(rec.Segments, info)
			if mutate {
				_ = opts.FS.Remove(path)
			}
			broken = true
			continue
		}
		rec.Segments = append(rec.Segments, info)
		for j, p := range payloads {
			seq := base + uint64(j)
			if seq >= rec.SnapshotSeq {
				rec.Records = append(rec.Records, Record{Seq: seq, Payload: p})
			}
		}
		expect = base + uint64(info.Records)
		kept = append(kept, base)
		if info.TornBytes > 0 {
			rec.TruncatedBytes += info.TornBytes
			if mutate {
				if terr := opts.FS.Truncate(path, info.Bytes); terr != nil {
					return nil, nil, fmt.Errorf("wal: truncate torn tail: %w", terr)
				}
			}
			broken = true
		}
	}

	switch {
	case expect > 0:
		rec.NextSeq = expect
	case rec.SnapshotSeq > 0:
		rec.NextSeq = rec.SnapshotSeq
	default:
		rec.NextSeq = 1
	}
	return rec, kept, nil
}

// readSnapshotFile validates and returns one snapshot payload.
func readSnapshotFile(fs FS, path string, wantSeq uint64) ([]byte, error) {
	data, err := fs.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("wal: read snapshot: %w", err)
	}
	if len(data) < snapHeaderLen || string(data[:8]) != snapMagic {
		return nil, fmt.Errorf("wal: snapshot header invalid")
	}
	seq := binary.LittleEndian.Uint64(data[8:16])
	n := binary.LittleEndian.Uint32(data[16:20])
	crc := binary.LittleEndian.Uint32(data[20:24])
	if seq != wantSeq {
		return nil, fmt.Errorf("wal: snapshot seq %d does not match name %d", seq, wantSeq)
	}
	if int64(n) != int64(len(data)-snapHeaderLen) {
		return nil, fmt.Errorf("wal: snapshot length mismatch")
	}
	sum := crc32.Checksum(data[:20], castagnoli)
	sum = crc32.Update(sum, castagnoli, data[snapHeaderLen:])
	if sum != crc {
		return nil, fmt.Errorf("wal: snapshot checksum mismatch")
	}
	return data[snapHeaderLen:], nil
}

// scanSegment reads one segment's longest valid prefix.  It returns the
// segment description and the record payloads in order.  A damaged or
// missing header yields Records == 0 and Bytes == 0 (drop the file); any
// later damage yields the valid prefix with TornBytes > 0.
func scanSegment(fs FS, path string, base uint64, maxRecord int) (SegmentInfo, [][]byte, error) {
	info := SegmentInfo{Base: base}
	data, err := fs.ReadFile(path)
	if err != nil {
		return info, nil, fmt.Errorf("wal: read segment: %w", err)
	}
	size := int64(len(data))
	if size < segHeaderLen || string(data[:8]) != segMagic ||
		binary.LittleEndian.Uint64(data[8:16]) != base {
		info.TornBytes = size
		return info, nil, nil
	}
	var payloads [][]byte
	off := int64(segHeaderLen)
	for {
		if off == size {
			break // clean end at a record boundary
		}
		if size-off < frameHeader {
			break // torn mid-header
		}
		n := binary.LittleEndian.Uint32(data[off : off+4])
		crc := binary.LittleEndian.Uint32(data[off+4 : off+8])
		if n == 0 || int(n) > maxRecord || off+frameHeader+int64(n) > size {
			break // absurd or truncated length
		}
		payload := data[off+frameHeader : off+frameHeader+int64(n)]
		seq := base + uint64(len(payloads))
		if frameCRC(seq, data[off:off+4], payload) != crc {
			break // corrupt, or a valid frame relocated from elsewhere
		}
		// Copy out: data is one big read buffer.
		p := make([]byte, n)
		copy(p, payload)
		payloads = append(payloads, p)
		off += frameHeader + int64(n)
	}
	info.Records = len(payloads)
	info.Bytes = off
	info.TornBytes = size - off
	return info, payloads, nil
}
