// Package wal implements the crash-safe durability substrate of the
// gridtrust daemon and the experiment engine: a segmented, CRC32C-framed
// append-only log with group-committed batched fsync, snapshot-triggered
// compaction and prefix-truncating recovery.
//
// The paper's trust fabric is explicitly long-lived state — "techniques
// for managing and evolving trust in a large-scale distributed system"
// (Section 7) — so the state must survive a crash.  The WAL provides the
// standard contract:
//
//   - An Append that returned has been fsynced: the record survives a
//     kill -9 or power cut.
//   - Concurrent appenders share one fsync (group commit): while a sync
//     is in flight, later appenders buffer their frames and the next
//     sync covers them all, so throughput scales with concurrency
//     instead of paying one disk flush per record.
//   - Recovery replays the longest valid prefix.  A torn or corrupt tail
//     is truncated cleanly — never a panic, never a corrupt record — and
//     at most the last unsynced batch is lost.
//   - A snapshot subsumes every record below its boundary; compaction
//     deletes the now-redundant segments, bounding disk use and recovery
//     time.
//
// Layout of a log directory:
//
//	wal-%016x.seg   segment; the hex field is the base sequence number
//	snap-%016x.snap latest snapshot; the hex field is the boundary
//	                sequence (first record NOT covered by the snapshot)
//
// Segment format: a 16-byte header (8-byte magic, little-endian uint64
// base sequence) followed by frames of
//
//	uint32 LE payload length | uint32 LE CRC32C(seq ‖ length bytes ‖ payload) | payload
//
// The CRC covers the length prefix, so a corrupted length cannot cause a
// misframed but checksum-valid read, and it covers the record's sequence
// number (implied by position: segment base + index), so a valid frame
// spliced in from elsewhere in the log is rejected rather than replayed
// at the wrong position.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"path/filepath"
	"sync"
)

// Framing and file-format constants.
const (
	segMagic  = "gtWALs01" // segment header magic
	snapMagic = "gtWALn01" // snapshot header magic

	segHeaderLen  = 16 // magic + base seq
	frameHeader   = 8  // length + crc
	snapHeaderLen = 24 // magic + next seq + length + crc

	// DefaultSegmentBytes is the rotation threshold: a segment that has
	// grown past it is sealed and a fresh one opened.
	DefaultSegmentBytes = 4 << 20

	// DefaultMaxRecordBytes bounds one record payload.  Recovery treats a
	// larger claimed length as corruption, so the bound also caps the
	// allocation a corrupt length field can demand.
	DefaultMaxRecordBytes = 8 << 20
)

// castagnoli is the CRC32C polynomial table (hardware-accelerated on
// amd64/arm64).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Typed errors callers can branch on with errors.Is.
var (
	// ErrClosed reports an operation on a closed log.
	ErrClosed = errors.New("wal: log is closed")
	// ErrRecordTooLarge reports an Append payload over MaxRecordBytes
	// (or an empty one — zero-length records are not representable).
	ErrRecordTooLarge = errors.New("wal: record size outside (0, MaxRecordBytes]")
	// ErrCorrupt reports unrecoverable corruption: state the log is
	// supposed to hold cannot be reconstructed (e.g. every snapshot is
	// unreadable but the pre-snapshot segments were already compacted
	// away).  Tail corruption is NOT this error — it is repaired by
	// truncation and reported in Recovered.
	ErrCorrupt = errors.New("wal: corrupt log")
	// ErrFailStop reports an operation on a log that has already failed a
	// segment write or fsync.  The failure is sticky: after one failed
	// sync the on-disk state of the current segment is unknowable (the
	// kernel may have dropped the dirty page and cleared the error), so
	// the log refuses every further append rather than risk acknowledging
	// a record behind a hole.  Recovery of the pre-error prefix is the
	// only way forward: reopen the directory in a fresh process.
	ErrFailStop = errors.New("wal: fail-stop after write/sync error")
)

// Options configure a Log.
type Options struct {
	// SegmentBytes is the rotation threshold; 0 selects
	// DefaultSegmentBytes.
	SegmentBytes int64
	// MaxRecordBytes bounds one payload; 0 selects DefaultMaxRecordBytes.
	MaxRecordBytes int
	// NoSync skips the fsync on commit (tests and benchmarks that
	// measure framing cost, not disk cost).  Durability is forfeited.
	NoSync bool
	// SyncObserver, when set, is called after each commit batch with the
	// number of records the batch made durable — the group-commit batch
	// size (Appends/Syncs gives only the lifetime mean; the observer sees
	// the distribution).  It runs on the committing goroutine's path with
	// internal locks held: it must be fast, must not block, and must not
	// call back into the Log.  An atomic histogram qualifies.
	SyncObserver func(records uint64)
	// FS overrides the filesystem the log writes through (fault
	// injection; see internal/chaos).  nil selects the real filesystem.
	FS FS
}

func (o Options) withDefaults() Options {
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = DefaultSegmentBytes
	}
	if o.MaxRecordBytes <= 0 {
		o.MaxRecordBytes = DefaultMaxRecordBytes
	}
	if o.FS == nil {
		o.FS = osFS{}
	}
	return o
}

// Stats counts log activity since Open.
type Stats struct {
	// Appends is the number of records appended.
	Appends uint64
	// Syncs is the number of fsync batches issued; Appends−Syncs is the
	// group-commit saving.
	Syncs uint64
	// Rotations counts segment rolls.
	Rotations uint64
	// Segments is the number of live segment files.
	Segments int
}

// Log is an append-only segmented log.  It is safe for concurrent use;
// concurrent Appends share fsyncs via group commit.
type Log struct {
	dir  string
	opts Options

	// mu guards the writer state: the open segment, its buffered tail,
	// and the sequence counters.
	mu       sync.Mutex
	f        File
	buf      []byte   // frames written but not yet handed to the OS+synced
	segBases []uint64 // base seq of every live segment, ascending
	segSize  int64    // size of the current segment including buffered tail
	nextSeq  uint64   // sequence the next Append will receive
	written  uint64   // highest seq written into buf
	closed   bool
	failed   error // first write/sync failure; sticky fail-stop cause

	appends   uint64
	rotations uint64

	// Group commit: appenders wait on cond until synced covers their
	// record; the first waiter to find no sync in flight becomes the
	// leader and flushes everything buffered so far with one fsync.
	syncMu   sync.Mutex
	syncCond *sync.Cond
	synced   uint64
	syncing  bool
	syncErr  error
	syncs    uint64

	// beforeSync, when set (tests only), runs before the leader takes
	// the writer lock — a window in which followers can pile more
	// records into the batch.
	beforeSync func()
}

// Create opens the log directory for appending, running recovery first:
// the tail is truncated to the longest valid prefix and the recovered
// snapshot and records are returned for the caller to rebuild its state.
func Create(dir string, opts Options) (*Log, *Recovered, error) {
	opts = opts.withDefaults()
	if err := opts.FS.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, fmt.Errorf("wal: create dir: %w", err)
	}
	rec, bases, err := recoverDir(dir, opts, true)
	if err != nil {
		return nil, nil, err
	}
	l := &Log{
		dir:      dir,
		opts:     opts,
		segBases: bases,
		nextSeq:  rec.NextSeq,
		written:  rec.NextSeq - 1,
	}
	l.syncCond = sync.NewCond(&l.syncMu)
	l.synced = l.written
	if len(l.segBases) == 0 {
		if err := l.openSegment(l.nextSeq); err != nil {
			return nil, nil, err
		}
	} else {
		// Append to the recovered tail segment.
		name := segmentName(l.segBases[len(l.segBases)-1])
		f, err := opts.FS.OpenFile(filepath.Join(dir, name), openWronlyAppend, 0o644)
		if err != nil {
			return nil, nil, fmt.Errorf("wal: open tail segment: %w", err)
		}
		info, err := f.Stat()
		if err != nil {
			_ = f.Close()
			return nil, nil, fmt.Errorf("wal: stat tail segment: %w", err)
		}
		l.f, l.segSize = f, info.Size()
	}
	return l, rec, nil
}

// segmentName formats the on-disk name for a segment with the given base
// sequence.
func segmentName(base uint64) string { return fmt.Sprintf("wal-%016x.seg", base) }

// snapshotName formats the on-disk name for a snapshot with the given
// boundary sequence.
func snapshotName(next uint64) string { return fmt.Sprintf("snap-%016x.snap", next) }

// openSegment creates a fresh segment with the given base sequence and
// makes it the append target.  Callers must hold mu (or own the log
// exclusively, as Create does).
func (l *Log) openSegment(base uint64) error {
	f, err := l.opts.FS.OpenFile(filepath.Join(l.dir, segmentName(base)),
		openCreateExcl, 0o644)
	if err != nil {
		return fmt.Errorf("wal: create segment: %w", err)
	}
	var hdr [segHeaderLen]byte
	copy(hdr[:8], segMagic)
	binary.LittleEndian.PutUint64(hdr[8:], base)
	if _, err := f.Write(hdr[:]); err != nil {
		_ = f.Close()
		return fmt.Errorf("wal: write segment header: %w", err)
	}
	if !l.opts.NoSync {
		if err := f.Sync(); err != nil {
			_ = f.Close()
			return fmt.Errorf("wal: sync segment header: %w", err)
		}
		if err := l.opts.FS.SyncDir(l.dir); err != nil {
			_ = f.Close()
			return err
		}
	}
	l.f = f
	l.segSize = segHeaderLen
	l.segBases = append(l.segBases, base)
	return nil
}

// appendFrame encodes one record frame into dst.  The CRC mixes in seq so
// the frame is only valid at its own position in the log.
func appendFrame(dst []byte, seq uint64, payload []byte) []byte {
	var hdr [frameHeader]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], frameCRC(seq, hdr[0:4], payload))
	dst = append(dst, hdr[:]...)
	return append(dst, payload...)
}

// frameCRC computes CRC32C over (seq ‖ length bytes ‖ payload).
func frameCRC(seq uint64, lenBytes, payload []byte) uint32 {
	var seqBuf [8]byte
	binary.LittleEndian.PutUint64(seqBuf[:], seq)
	crc := crc32.Checksum(seqBuf[:], castagnoli)
	crc = crc32.Update(crc, castagnoli, lenBytes)
	return crc32.Update(crc, castagnoli, payload)
}

// Append writes one record and blocks until it is durable (fsynced),
// returning its sequence number.  Concurrent appenders are group
// committed: one fsync covers every record buffered while the previous
// sync was in flight.
func (l *Log) Append(payload []byte) (uint64, error) {
	if len(payload) == 0 || len(payload) > l.opts.MaxRecordBytes {
		return 0, fmt.Errorf("%w: %d bytes", ErrRecordTooLarge, len(payload))
	}
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return 0, ErrClosed
	}
	if l.failed != nil {
		err := l.failStopLocked()
		l.mu.Unlock()
		return 0, err
	}
	if l.segSize >= l.opts.SegmentBytes && l.segSize > segHeaderLen {
		if err := l.rotateLocked(); err != nil {
			l.mu.Unlock()
			return 0, err
		}
	}
	seq := l.nextSeq
	l.nextSeq++
	l.buf = appendFrame(l.buf, seq, payload)
	l.segSize += int64(frameHeader + len(payload))
	l.written = seq
	l.appends++
	l.mu.Unlock()

	if err := l.waitSync(seq); err != nil {
		return 0, err
	}
	return seq, nil
}

// rotateLocked seals the current segment (flushing and syncing its
// buffered tail) and opens a fresh one based at nextSeq.  Callers hold mu.
func (l *Log) rotateLocked() error {
	if err := l.flushLocked(); err != nil {
		return err
	}
	if err := l.f.Close(); err != nil {
		return l.failLocked(fmt.Errorf("wal: close sealed segment: %w", err))
	}
	l.rotations++
	// Everything written so far is durable in the sealed segment.
	l.syncMu.Lock()
	if l.written > l.synced {
		l.observeBatch(l.written - l.synced)
		l.synced = l.written
	}
	l.syncCond.Broadcast()
	l.syncMu.Unlock()
	if err := l.openSegment(l.nextSeq); err != nil {
		return l.failLocked(err)
	}
	return nil
}

// flushLocked hands the buffered frames to the OS and fsyncs.  Callers
// hold mu.  Any failure converts the log to sticky fail-stop: the
// kernel may drop a dirty page and clear the error after reporting it
// once, so retrying the flush could "succeed" while leaving a hole in
// the segment.  Never retry a dirty page.
func (l *Log) flushLocked() error {
	if l.failed != nil {
		return l.failStopLocked()
	}
	if len(l.buf) > 0 {
		if _, err := l.f.Write(l.buf); err != nil {
			return l.failLocked(fmt.Errorf("wal: write: %w", err))
		}
		l.buf = l.buf[:0]
	}
	if !l.opts.NoSync {
		if err := l.f.Sync(); err != nil {
			return l.failLocked(fmt.Errorf("wal: fsync: %w", err))
		}
	}
	return nil
}

// failLocked records the first write/sync failure and returns the
// fail-stop error that every subsequent operation will see.  Callers
// hold mu.
func (l *Log) failLocked(cause error) error {
	if l.failed == nil {
		l.failed = cause
	}
	return l.failStopLocked()
}

// failStopLocked wraps the sticky cause as an ErrFailStop.  Callers
// hold mu and have checked l.failed != nil (or just set it).
func (l *Log) failStopLocked() error {
	return fmt.Errorf("%w: %w", ErrFailStop, l.failed)
}

// Failed returns the sticky fail-stop error, or nil while the log is
// healthy.
func (l *Log) Failed() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.failed == nil {
		return nil
	}
	return l.failStopLocked()
}

// waitSync blocks until seq is durable.  The first waiter that finds no
// sync in flight becomes the leader: it flushes and fsyncs everything
// buffered, covering its own record and every follower's.
func (l *Log) waitSync(seq uint64) error {
	l.syncMu.Lock()
	defer l.syncMu.Unlock()
	for {
		if l.synced >= seq {
			return nil
		}
		if l.syncErr != nil {
			return l.syncErr
		}
		if l.syncing {
			l.syncCond.Wait()
			continue
		}
		l.syncing = true
		l.syncMu.Unlock()

		if h := l.beforeSync; h != nil {
			h()
		}
		l.mu.Lock()
		var err error
		var hw uint64
		if l.closed {
			err = ErrClosed
		} else {
			hw = l.written
			err = l.flushLocked()
		}
		l.mu.Unlock()

		l.syncMu.Lock()
		l.syncing = false
		l.syncs++
		if err != nil {
			l.syncErr = err
		} else if hw > l.synced {
			l.observeBatch(hw - l.synced)
			l.synced = hw
		}
		l.syncCond.Broadcast()
	}
}

// Sync forces everything appended so far to disk.  Appends that already
// returned are durable without it; Sync is for NoSync logs and tests.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	if l.failed != nil {
		return l.failStopLocked()
	}
	if len(l.buf) > 0 {
		if _, err := l.f.Write(l.buf); err != nil {
			return l.failLocked(fmt.Errorf("wal: write: %w", err))
		}
		l.buf = l.buf[:0]
	}
	if err := l.f.Sync(); err != nil {
		return l.failLocked(fmt.Errorf("wal: fsync: %w", err))
	}
	return nil
}

// NextSeq returns the sequence number the next Append will receive;
// records with seq < NextSeq have been appended.
func (l *Log) NextSeq() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.nextSeq
}

// LiveRecords returns how many appended records are not yet subsumed by a
// snapshot boundary (an upper bound: torn tails recovered away are not
// re-counted).
func (l *Log) LiveRecords() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	if len(l.segBases) == 0 {
		return 0
	}
	return l.nextSeq - l.segBases[0]
}

// Stats returns activity counters since Create.
func (l *Log) Stats() Stats {
	l.mu.Lock()
	segs := len(l.segBases)
	appends, rotations := l.appends, l.rotations
	l.mu.Unlock()
	l.syncMu.Lock()
	syncs := l.syncs
	l.syncMu.Unlock()
	return Stats{Appends: appends, Syncs: syncs, Rotations: rotations, Segments: segs}
}

// Snapshot durably installs a snapshot covering every record with
// seq < nextSeq, then compacts: segments whose records all fall below the
// boundary are deleted, as are older snapshot files.  The caller
// guarantees payload reflects the state after applying exactly those
// records; capture the state and NextSeq under the same quiescence.
func (l *Log) Snapshot(nextSeq uint64, payload []byte) error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return ErrClosed
	}
	if nextSeq > l.nextSeq {
		l.mu.Unlock()
		return fmt.Errorf("wal: snapshot boundary %d beyond next seq %d", nextSeq, l.nextSeq)
	}
	// Seal the boundary: buffered records below it must be on disk
	// before the segments claiming to hold them become deletable.
	if err := l.flushLocked(); err != nil {
		l.mu.Unlock()
		return err
	}
	l.mu.Unlock()

	if err := writeSnapshotFile(l.opts.FS, l.dir, nextSeq, payload, !l.opts.NoSync); err != nil {
		return err
	}

	l.mu.Lock()
	defer l.mu.Unlock()
	// Drop segments fully below the boundary (never the current one).
	kept := l.segBases[:0]
	for i, base := range l.segBases {
		last := i == len(l.segBases)-1
		if !last && l.segBases[i+1] <= nextSeq {
			if err := l.opts.FS.Remove(filepath.Join(l.dir, segmentName(base))); err != nil && !isNotExist(err) {
				return fmt.Errorf("wal: compact: %w", err)
			}
			continue
		}
		kept = append(kept, base)
	}
	l.segBases = kept
	// Drop superseded snapshot files.
	if err := removeOldSnapshots(l.opts.FS, l.dir, nextSeq); err != nil {
		return err
	}
	if !l.opts.NoSync {
		return l.opts.FS.SyncDir(l.dir)
	}
	return nil
}

// writeSnapshotFile atomically writes the snapshot for boundary nextSeq:
// temp file, fsync, rename, directory fsync.
func writeSnapshotFile(fs FS, dir string, nextSeq uint64, payload []byte, durable bool) error {
	hdr := make([]byte, snapHeaderLen)
	copy(hdr[:8], snapMagic)
	binary.LittleEndian.PutUint64(hdr[8:16], nextSeq)
	binary.LittleEndian.PutUint32(hdr[16:20], uint32(len(payload)))
	crc := crc32.Checksum(hdr[:20], castagnoli)
	crc = crc32.Update(crc, castagnoli, payload)
	binary.LittleEndian.PutUint32(hdr[20:24], crc)

	tmp, err := fs.CreateTemp(dir, "snap-*.tmp")
	if err != nil {
		return fmt.Errorf("wal: snapshot temp: %w", err)
	}
	defer fs.Remove(tmp.Name())
	if _, err := tmp.Write(hdr); err == nil {
		_, err = tmp.Write(payload)
	}
	if err != nil {
		_ = tmp.Close()
		return fmt.Errorf("wal: snapshot write: %w", err)
	}
	if durable {
		if err := tmp.Sync(); err != nil {
			_ = tmp.Close()
			return fmt.Errorf("wal: snapshot fsync: %w", err)
		}
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("wal: snapshot close: %w", err)
	}
	if err := fs.Rename(tmp.Name(), filepath.Join(dir, snapshotName(nextSeq))); err != nil {
		return fmt.Errorf("wal: snapshot rename: %w", err)
	}
	if durable {
		return fs.SyncDir(dir)
	}
	return nil
}

// removeOldSnapshots deletes snapshot files with a boundary below keep.
func removeOldSnapshots(fs FS, dir string, keep uint64) error {
	entries, err := fs.ReadDir(dir)
	if err != nil {
		return fmt.Errorf("wal: list snapshots: %w", err)
	}
	for _, e := range entries {
		var next uint64
		if n, err := fmt.Sscanf(e.Name(), "snap-%016x.snap", &next); err != nil || n != 1 {
			continue
		}
		if next < keep {
			if err := fs.Remove(filepath.Join(dir, e.Name())); err != nil && !isNotExist(err) {
				return fmt.Errorf("wal: remove old snapshot: %w", err)
			}
		}
	}
	return nil
}

// Close flushes, fsyncs and closes the log.  Blocked appenders are
// released (their records were flushed by the final sync).
func (l *Log) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	err := l.flushLocked()
	hw := l.written
	l.closed = true
	if cerr := l.f.Close(); err == nil && cerr != nil {
		err = fmt.Errorf("wal: close: %w", cerr)
	}
	l.mu.Unlock()

	l.syncMu.Lock()
	if err == nil && hw > l.synced {
		l.observeBatch(hw - l.synced)
		l.synced = hw
	}
	if err != nil && l.syncErr == nil {
		l.syncErr = err
	}
	l.syncCond.Broadcast()
	l.syncMu.Unlock()
	return err
}

// observeBatch reports one commit batch to the observer, if any.
// Callers hold syncMu and have just advanced (or are about to advance)
// synced by records.
func (l *Log) observeBatch(records uint64) {
	if l.opts.SyncObserver != nil {
		l.opts.SyncObserver(records)
	}
}
