package wal

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// buildSeedSegment produces the bytes of a valid single-segment log with
// n records whose payloads are a pure function of their index, so any
// recovered record can be checked against what was originally written.
func buildSeedSegment(tb testing.TB, n int) []byte {
	tb.Helper()
	dir := tb.TempDir()
	l, _, err := Create(dir, Options{SegmentBytes: 1 << 20, NoSync: true})
	if err != nil {
		tb.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if _, err := l.Append(fuzzPayload(i)); err != nil {
			tb.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		tb.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, segmentName(1)))
	if err != nil {
		tb.Fatal(err)
	}
	return data
}

func fuzzPayload(i int) []byte {
	return []byte(fmt.Sprintf("fuzz-record-%04d", i))
}

// FuzzWALRecover feeds arbitrary mutations of a valid segment file into
// recovery.  The durability invariants under any corruption — bit flips,
// truncation, appended garbage, wholesale rewrites:
//
//  1. recovery never panics;
//  2. it either succeeds or fails with the typed ErrCorrupt;
//  3. every record it does return is exactly a record that was written:
//     the recovered sequence is a strict prefix of the original, in
//     order, with byte-identical payloads (never a corrupt record).
func FuzzWALRecover(f *testing.F) {
	const records = 12
	seed := buildSeedSegment(f, records)
	f.Add(seed)                                  // intact
	f.Add(seed[:len(seed)-3])                    // torn tail
	f.Add(seed[:segHeaderLen])                   // header only
	f.Add(append(bytes.Clone(seed), 0xde, 0xad)) // trailing garbage
	flipped := bytes.Clone(seed)
	flipped[len(flipped)/2] ^= 0x40
	f.Add(flipped) // mid-file bit flip
	f.Add([]byte("not a segment at all"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, mutated []byte) {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, segmentName(1)), mutated, 0o644); err != nil {
			t.Fatal(err)
		}
		l, rec, err := Create(dir, Options{NoSync: true})
		if err != nil {
			// The only legal failure is the typed corruption error;
			// anything else (or a panic, which the harness catches)
			// violates the recovery contract.  With a single segment
			// based at 1 and no snapshot this should in fact never
			// trigger, since an empty prefix is always recoverable.
			t.Fatalf("recovery refused with %v (want nil error)", err)
		}
		defer l.Close()
		if len(rec.Records) > records {
			t.Fatalf("recovered %d records from a %d-record log", len(rec.Records), records)
		}
		for i, r := range rec.Records {
			if r.Seq != uint64(i+1) {
				t.Fatalf("recovered seq %d at position %d: not a prefix", r.Seq, i)
			}
			if !bytes.Equal(r.Payload, fuzzPayload(i)) {
				t.Fatalf("record %d corrupted: %q", i, r.Payload)
			}
		}
		// The repaired log must accept appends and recover them plus the
		// prefix on a second open — recovery converges.
		n := len(rec.Records)
		if _, err := l.Append([]byte("post-repair")); err != nil {
			t.Fatalf("append after repair: %v", err)
		}
		if err := l.Close(); err != nil {
			t.Fatalf("close after repair: %v", err)
		}
		_, rec2, err := Create(dir, Options{NoSync: true})
		if err != nil {
			t.Fatalf("second recovery: %v", err)
		}
		if len(rec2.Records) != n+1 {
			t.Fatalf("second recovery found %d records, want %d", len(rec2.Records), n+1)
		}
		if !rec2.Clean() {
			t.Fatalf("second recovery still repairing: %+v", rec2)
		}
	})
}

// FuzzWALRecoverSnapshot mutates a snapshot file next to an intact
// segment chain: recovery must fall back to replaying the full chain (the
// segments still cover seq 1) or fail typed — never serve a damaged
// snapshot.
func FuzzWALRecoverSnapshot(f *testing.F) {
	dir := f.TempDir()
	l, _, err := Create(dir, Options{SegmentBytes: 1 << 20, NoSync: true})
	if err != nil {
		f.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		if _, err := l.Append(fuzzPayload(i)); err != nil {
			f.Fatal(err)
		}
	}
	if err := writeSnapshotFile(osFS{}, dir, 4, []byte("snapshot-state"), false); err != nil {
		f.Fatal(err)
	}
	if err := l.Close(); err != nil {
		f.Fatal(err)
	}
	segBytes, err := os.ReadFile(filepath.Join(dir, segmentName(1)))
	if err != nil {
		f.Fatal(err)
	}
	snapBytes, err := os.ReadFile(filepath.Join(dir, snapshotName(4)))
	if err != nil {
		f.Fatal(err)
	}
	f.Add(snapBytes)
	f.Add(snapBytes[:len(snapBytes)-1])
	f.Add([]byte("junk"))

	f.Fuzz(func(t *testing.T, mutated []byte) {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, segmentName(1)), segBytes, 0o644); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, snapshotName(4)), mutated, 0o644); err != nil {
			t.Fatal(err)
		}
		l, rec, err := Create(dir, Options{NoSync: true})
		if err != nil {
			t.Fatalf("recovery error with intact segments: %v", err)
		}
		defer l.Close()
		if rec.SnapshotSeq == 4 {
			// The mutation left (or reconstructed) a valid snapshot:
			// payload must be exactly the original.
			if string(rec.Snapshot) != "snapshot-state" {
				t.Fatalf("snapshot corrupted to %q", rec.Snapshot)
			}
			if len(rec.Records) != 3 || rec.Records[0].Seq != 4 {
				t.Fatalf("tail after snapshot: %+v", rec.Records)
			}
		} else {
			// Snapshot rejected: the full chain replays instead.
			if rec.SnapshotSeq != 0 || len(rec.Records) != 6 {
				t.Fatalf("fallback recovery got snapseq %d, %d records", rec.SnapshotSeq, len(rec.Records))
			}
		}
		for i, r := range rec.Records {
			want := fuzzPayload(int(r.Seq) - 1)
			if !bytes.Equal(r.Payload, want) {
				t.Fatalf("record %d corrupted: %q", i, r.Payload)
			}
		}
	})
}
