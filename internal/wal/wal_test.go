package wal

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
)

// testOptions keeps unit tests fast: tiny segments force rotation, and
// NoSync skips disk flushes the assertions do not depend on.
func testOptions() Options {
	return Options{SegmentBytes: 512, NoSync: true}
}

func payloadFor(i int) []byte {
	return []byte(fmt.Sprintf("record-%06d-%s", i, "payload"))
}

// fill appends n records and returns the log's directory contents for
// later mutation.
func fill(t *testing.T, dir string, n int, opts Options) {
	t.Helper()
	l, rec, err := Create(dir, opts)
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	if rec.NextSeq != 1 || len(rec.Records) != 0 {
		t.Fatalf("fresh log recovered %+v", rec)
	}
	for i := 0; i < n; i++ {
		seq, err := l.Append(payloadFor(i))
		if err != nil {
			t.Fatalf("Append %d: %v", i, err)
		}
		if seq != uint64(i+1) {
			t.Fatalf("Append %d: seq %d, want %d", i, seq, i+1)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}

func TestAppendRecoverRoundTrip(t *testing.T) {
	dir := t.TempDir()
	fill(t, dir, 100, testOptions())

	l, rec, err := Create(dir, testOptions())
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer l.Close()
	if !rec.Clean() {
		t.Fatalf("clean shutdown recovered damage: %+v", rec)
	}
	if len(rec.Records) != 100 {
		t.Fatalf("recovered %d records, want 100", len(rec.Records))
	}
	for i, r := range rec.Records {
		if r.Seq != uint64(i+1) {
			t.Fatalf("record %d has seq %d", i, r.Seq)
		}
		if !bytes.Equal(r.Payload, payloadFor(i)) {
			t.Fatalf("record %d payload %q", i, r.Payload)
		}
	}
	if rec.NextSeq != 101 {
		t.Fatalf("NextSeq %d, want 101", rec.NextSeq)
	}
	// The 512-byte segments must have rotated for 100 ~23-byte frames.
	if len(rec.Segments) < 2 {
		t.Fatalf("expected rotation, got %d segments", len(rec.Segments))
	}
	// Appending after recovery continues the sequence.
	seq, err := l.Append([]byte("after"))
	if err != nil || seq != 101 {
		t.Fatalf("post-recovery append: seq %d err %v", seq, err)
	}
}

func TestTornTailTruncates(t *testing.T) {
	for _, cut := range []int{1, 3, 7} {
		t.Run(fmt.Sprintf("cut%d", cut), func(t *testing.T) {
			dir := t.TempDir()
			fill(t, dir, 20, Options{SegmentBytes: 1 << 20, NoSync: true})
			// Chop bytes off the single segment's tail: the last record
			// frame becomes torn.
			segs, _ := filepath.Glob(filepath.Join(dir, "wal-*.seg"))
			if len(segs) != 1 {
				t.Fatalf("want 1 segment, got %d", len(segs))
			}
			info, _ := os.Stat(segs[0])
			if err := os.Truncate(segs[0], info.Size()-int64(cut)); err != nil {
				t.Fatal(err)
			}
			l, rec, err := Create(dir, testOptions())
			if err != nil {
				t.Fatalf("reopen: %v", err)
			}
			defer l.Close()
			if len(rec.Records) != 19 {
				t.Fatalf("recovered %d records, want 19", len(rec.Records))
			}
			if rec.TruncatedBytes == 0 {
				t.Fatal("truncation not reported")
			}
			// The torn record is gone for good: append then reopen.
			if _, err := l.Append([]byte("fresh")); err != nil {
				t.Fatal(err)
			}
			if err := l.Close(); err != nil {
				t.Fatal(err)
			}
			_, rec2, err := Create(dir, testOptions())
			if err != nil {
				t.Fatal(err)
			}
			if !rec2.Clean() {
				t.Fatalf("second recovery found damage: %+v", rec2)
			}
			last := rec2.Records[len(rec2.Records)-1]
			if string(last.Payload) != "fresh" || last.Seq != 20 {
				t.Fatalf("last record %d %q", last.Seq, last.Payload)
			}
		})
	}
}

func TestCorruptMiddleDropsSuffix(t *testing.T) {
	dir := t.TempDir()
	fill(t, dir, 200, testOptions()) // several 512-byte segments

	segs, _ := filepath.Glob(filepath.Join(dir, "wal-*.seg"))
	if len(segs) < 3 {
		t.Fatalf("want >=3 segments, got %d", len(segs))
	}
	// Flip a payload byte in the middle of the SECOND segment: its valid
	// prefix ends there and every later segment is unreachable.
	f, err := os.OpenFile(segs[1], os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte{0xff}, segHeaderLen+frameHeader+2); err != nil {
		t.Fatal(err)
	}
	f.Close()

	l, rec, err := Create(dir, testOptions())
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer l.Close()
	if rec.DroppedSegments == 0 {
		t.Fatalf("no dropped segments: %+v", rec)
	}
	// Prefix property: recovered records are exactly 1..N for some N,
	// all with their original payloads.
	for i, r := range rec.Records {
		if r.Seq != uint64(i+1) || !bytes.Equal(r.Payload, payloadFor(i)) {
			t.Fatalf("record %d: seq %d payload %q", i, r.Seq, r.Payload)
		}
	}
	if len(rec.Records) >= 200 || len(rec.Records) == 0 {
		t.Fatalf("recovered %d records", len(rec.Records))
	}
	if rec.NextSeq != uint64(len(rec.Records))+1 {
		t.Fatalf("NextSeq %d after %d records", rec.NextSeq, len(rec.Records))
	}
}

func TestSnapshotCompaction(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Create(dir, testOptions())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 150; i++ {
		if _, err := l.Append(payloadFor(i)); err != nil {
			t.Fatal(err)
		}
	}
	boundary := l.NextSeq() // covers all 150
	if err := l.Snapshot(boundary, []byte("state-after-150")); err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	if st := l.Stats(); st.Segments != 1 {
		t.Fatalf("compaction kept %d segments", st.Segments)
	}
	for i := 150; i < 170; i++ {
		if _, err := l.Append(payloadFor(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2, rec, err := Create(dir, testOptions())
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer l2.Close()
	if rec.SnapshotSeq != boundary || string(rec.Snapshot) != "state-after-150" {
		t.Fatalf("snapshot seq %d payload %q", rec.SnapshotSeq, rec.Snapshot)
	}
	if len(rec.Records) != 20 {
		t.Fatalf("recovered %d tail records, want 20", len(rec.Records))
	}
	for i, r := range rec.Records {
		if r.Seq != boundary+uint64(i) || !bytes.Equal(r.Payload, payloadFor(150+i)) {
			t.Fatalf("tail record %d: seq %d payload %q", i, r.Seq, r.Payload)
		}
	}
}

func TestSnapshotOnlyRecovery(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Create(dir, testOptions())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if _, err := l.Append(payloadFor(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Snapshot(l.NextSeq(), []byte("all-in-snapshot")); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l2, rec, err := Create(dir, testOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if string(rec.Snapshot) != "all-in-snapshot" || len(rec.Records) != 0 {
		t.Fatalf("recovered %+v", rec)
	}
	if seq, err := l2.Append([]byte("next")); err != nil || seq != 11 {
		t.Fatalf("append after snapshot-only recovery: seq %d err %v", seq, err)
	}
}

func TestCorruptSnapshotFallsBackToOlder(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Create(dir, Options{SegmentBytes: 1 << 20, NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, err := l.Append(payloadFor(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Snapshot(3, []byte("snap-at-3")); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// Fabricate a newer, corrupt snapshot file.
	bad := filepath.Join(dir, snapshotName(6))
	if err := os.WriteFile(bad, []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	l2, rec, err := Create(dir, testOptions())
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer l2.Close()
	if rec.CorruptSnapshots != 1 || rec.SnapshotSeq != 3 || string(rec.Snapshot) != "snap-at-3" {
		t.Fatalf("recovered %+v", rec)
	}
	// Records 3..5 replay on top of the older snapshot.
	if len(rec.Records) != 3 || rec.Records[0].Seq != 3 {
		t.Fatalf("tail records %+v", rec.Records)
	}
	if _, err := os.Stat(bad); !os.IsNotExist(err) {
		t.Fatal("corrupt snapshot not removed by recovery")
	}
}

func TestUnrecoverableCorruption(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Create(dir, testOptions())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 150; i++ {
		if _, err := l.Append(payloadFor(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Snapshot(l.NextSeq(), []byte("state")); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// Destroy the only snapshot: the compacted-away prefix cannot be
	// rebuilt, which must surface as a typed error, not silence.
	snaps, _ := filepath.Glob(filepath.Join(dir, "snap-*.snap"))
	if len(snaps) != 1 {
		t.Fatalf("want 1 snapshot, got %d", len(snaps))
	}
	if err := os.WriteFile(snaps[0], []byte("junk"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, _, err = Create(dir, testOptions())
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("err = %v, want ErrCorrupt", err)
	}
}

func TestGroupCommitBatchesSyncs(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Create(dir, Options{SegmentBytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	const n = 8
	release := make(chan struct{})
	var once sync.Once
	l.beforeSync = func() {
		// The first leader stalls here until all n appenders have
		// buffered their frames; its single fsync then covers them all.
		once.Do(func() { <-release })
	}
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if _, err := l.Append(payloadFor(i)); err != nil {
				t.Errorf("append %d: %v", i, err)
			}
		}(i)
	}
	// Wait until every appender has written its frame (Appends counts at
	// write time, before the commit wait).
	for l.Stats().Appends < n {
	}
	close(release)
	wg.Wait()
	if st := l.Stats(); st.Syncs > 2 {
		t.Fatalf("%d appends took %d syncs; group commit failed", st.Appends, st.Syncs)
	}
}

func TestConcurrentAppendsRecoverInOrder(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Create(dir, Options{SegmentBytes: 2048, NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	const goroutines, each = 8, 50
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				if _, err := l.Append([]byte(fmt.Sprintf("g%d-%d", g, i))); err != nil {
					t.Errorf("append: %v", err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	_, rec, err := Create(dir, testOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Records) != goroutines*each {
		t.Fatalf("recovered %d records, want %d", len(rec.Records), goroutines*each)
	}
	for i, r := range rec.Records {
		if r.Seq != uint64(i+1) {
			t.Fatalf("gap at %d: seq %d", i, r.Seq)
		}
	}
}

func TestAppendValidation(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Create(dir, Options{MaxRecordBytes: 64, NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append(nil); !errors.Is(err, ErrRecordTooLarge) {
		t.Fatalf("empty append: %v", err)
	}
	if _, err := l.Append(make([]byte, 65)); !errors.Is(err, ErrRecordTooLarge) {
		t.Fatalf("oversized append: %v", err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append([]byte("x")); !errors.Is(err, ErrClosed) {
		t.Fatalf("append after close: %v", err)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("double close: %v", err)
	}
}

func TestInspectIsReadOnly(t *testing.T) {
	dir := t.TempDir()
	fill(t, dir, 30, Options{SegmentBytes: 1 << 20, NoSync: true})
	segs, _ := filepath.Glob(filepath.Join(dir, "wal-*.seg"))
	info, _ := os.Stat(segs[0])
	if err := os.Truncate(segs[0], info.Size()-2); err != nil {
		t.Fatal(err)
	}
	before, _ := os.Stat(segs[0])

	rec, err := Inspect(dir, Options{})
	if err != nil {
		t.Fatalf("Inspect: %v", err)
	}
	if len(rec.Records) != 29 || rec.TruncatedBytes == 0 {
		t.Fatalf("inspect recovered %d records, truncated %d", len(rec.Records), rec.TruncatedBytes)
	}
	after, _ := os.Stat(segs[0])
	if before.Size() != after.Size() {
		t.Fatal("Inspect mutated the segment file")
	}
	// A subsequent Create recovers exactly what Inspect predicted.
	_, rec2, err := Create(dir, testOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(rec2.Records) != len(rec.Records) || rec2.NextSeq != rec.NextSeq {
		t.Fatalf("Create recovered %d/%d, Inspect said %d/%d",
			len(rec2.Records), rec2.NextSeq, len(rec.Records), rec.NextSeq)
	}
}

func TestInspectMissingDir(t *testing.T) {
	rec, err := Inspect(filepath.Join(t.TempDir(), "nope"), Options{})
	if err != nil {
		t.Fatalf("Inspect on missing dir: %v", err)
	}
	if rec.NextSeq != 1 || len(rec.Records) != 0 {
		t.Fatalf("missing dir recovered %+v", rec)
	}
}

func TestSnapshotBoundaryValidation(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Create(dir, testOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if err := l.Snapshot(99, []byte("x")); err == nil {
		t.Fatal("snapshot beyond next seq accepted")
	}
}

func TestDurableAppendSurvivesCopy(t *testing.T) {
	// With real fsync enabled, everything an Append acknowledged is in
	// the file even without Close — simulate a crash by copying the dir.
	dir := t.TempDir()
	l, _, err := Create(dir, Options{SegmentBytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if _, err := l.Append(payloadFor(i)); err != nil {
			t.Fatal(err)
		}
	}
	// No Close: read the files as a post-crash recovery would.
	crash := t.TempDir()
	segs, _ := filepath.Glob(filepath.Join(dir, "wal-*.seg"))
	for _, s := range segs {
		data, err := os.ReadFile(s)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(crash, filepath.Base(s)), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	_ = l.Close()
	_, rec, err := Create(crash, testOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Records) != 10 {
		t.Fatalf("crash copy recovered %d records, want 10", len(rec.Records))
	}
}

// TestSyncObserverLossless asserts every appended record is reported to
// the SyncObserver exactly once across commit batches, rotations and
// Close, and that concurrent appends produce multi-record batches whose
// sizes still sum to the append count.
func TestSyncObserverLossless(t *testing.T) {
	var observed atomic.Uint64
	var batches atomic.Uint64
	opts := testOptions()
	opts.SegmentBytes = 256 // force rotations mid-stream
	opts.SyncObserver = func(records uint64) {
		observed.Add(records)
		batches.Add(1)
	}
	l, _, err := Create(t.TempDir(), opts)
	if err != nil {
		t.Fatal(err)
	}
	const appenders = 4
	const perAppender = 50
	var wg sync.WaitGroup
	for a := 0; a < appenders; a++ {
		wg.Add(1)
		go func(a int) {
			defer wg.Done()
			for i := 0; i < perAppender; i++ {
				if _, err := l.Append([]byte(fmt.Sprintf("rec-%d-%d", a, i))); err != nil {
					t.Error(err)
					return
				}
			}
		}(a)
	}
	wg.Wait()
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if got := observed.Load(); got != appenders*perAppender {
		t.Fatalf("observer saw %d records, want %d", got, appenders*perAppender)
	}
	if b := batches.Load(); b == 0 || b > appenders*perAppender {
		t.Fatalf("implausible batch count %d", b)
	}
}
