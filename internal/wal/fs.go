package wal

import (
	"fmt"
	"io"
	"os"
)

// FS abstracts every filesystem operation the log performs, so fault
// injection (internal/chaos) can sit between the WAL and the disk:
// short writes, failed fsyncs, ENOSPC, and torn-tail "crashes" are all
// one seam away.  Production code never sets Options.FS; the default
// osFS is a zero-cost pass-through and the chaos-off path is
// byte-identical to a WAL without the seam.
type FS interface {
	MkdirAll(path string, perm os.FileMode) error
	OpenFile(name string, flag int, perm os.FileMode) (File, error)
	CreateTemp(dir, pattern string) (File, error)
	Rename(oldpath, newpath string) error
	Remove(name string) error
	Truncate(name string, size int64) error
	ReadDir(name string) ([]os.DirEntry, error)
	ReadFile(name string) ([]byte, error)
	// SyncDir fsyncs a directory so renames and creates within it are
	// durable.
	SyncDir(dir string) error
}

// Open-flag combinations the log uses, kept beside the seam.
const (
	openWronlyAppend = os.O_WRONLY | os.O_APPEND
	openCreateExcl   = os.O_WRONLY | os.O_CREATE | os.O_EXCL
)

// File is the subset of *os.File the log writes through.
type File interface {
	io.Writer
	io.Closer
	Sync() error
	Stat() (os.FileInfo, error)
	Name() string
}

// isNotExist reports a missing-file error from any FS implementation.
func isNotExist(err error) bool { return os.IsNotExist(err) }

// osFS is the real filesystem.
type osFS struct{}

func (osFS) MkdirAll(path string, perm os.FileMode) error { return os.MkdirAll(path, perm) }

func (osFS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	return os.OpenFile(name, flag, perm)
}

func (osFS) CreateTemp(dir, pattern string) (File, error) { return os.CreateTemp(dir, pattern) }

func (osFS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }

func (osFS) Remove(name string) error { return os.Remove(name) }

func (osFS) Truncate(name string, size int64) error { return os.Truncate(name, size) }

func (osFS) ReadDir(name string) ([]os.DirEntry, error) { return os.ReadDir(name) }

func (osFS) ReadFile(name string) ([]byte, error) { return os.ReadFile(name) }

func (osFS) SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("wal: open dir: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("wal: sync dir: %w", err)
	}
	return nil
}
