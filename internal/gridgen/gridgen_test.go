package gridgen

import (
	"testing"

	"gridtrust/internal/grid"
	"gridtrust/internal/rng"
)

func TestGenerateDefaults(t *testing.T) {
	for seed := uint64(0); seed < 20; seed++ {
		top, err := Generate(rng.New(seed), Spec{})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if len(top.Machines()) == 0 {
			t.Fatalf("seed %d: no machines", seed)
		}
		if len(top.Clients()) == 0 {
			t.Fatalf("seed %d: no clients", seed)
		}
		n := len(top.Domains)
		if n < 1 || n > 4 {
			t.Fatalf("seed %d: %d grid domains, want [1,4]", seed, n)
		}
	}
}

func TestGenerateRespectsBounds(t *testing.T) {
	spec := Spec{
		GridDomains: 3,
		MinMachines: 2, MaxMachines: 2,
		MinClients: 4, MaxClients: 4,
	}
	top, err := Generate(rng.New(1), spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(top.Domains) != 3 {
		t.Fatalf("domains = %d", len(top.Domains))
	}
	for _, rd := range top.ResourceDomains() {
		if len(rd.Machines) != 2 {
			t.Fatalf("RD %d has %d machines, want 2", rd.ID, len(rd.Machines))
		}
		if len(rd.Supported) == 0 {
			t.Fatalf("RD %d supports nothing", rd.ID)
		}
		for _, tl := range rd.Supported {
			if !tl.Offerable() {
				t.Fatalf("RD %d offers non-offerable %v", rd.ID, tl)
			}
		}
		if !rd.RTL.Valid() {
			t.Fatalf("RD %d has invalid RTL", rd.ID)
		}
	}
	for _, cd := range top.ClientDomains() {
		if len(cd.Clients) != 4 {
			t.Fatalf("CD %d has %d clients, want 4", cd.ID, len(cd.Clients))
		}
	}
}

func TestGenerateAlwaysSchedulable(t *testing.T) {
	// Even with low RD/CD probabilities the topology must contain at
	// least one machine and one client.
	for seed := uint64(0); seed < 50; seed++ {
		top, err := Generate(rng.New(seed), Spec{
			GridDomains:   4,
			RDProbability: 0.2,
			CDProbability: 0.2,
		})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if len(top.Machines()) == 0 || len(top.Clients()) == 0 {
			t.Fatalf("seed %d: unschedulable topology", seed)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, err := Generate(rng.New(9), Spec{GridDomains: 3})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(rng.New(9), Spec{GridDomains: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Machines()) != len(b.Machines()) || len(a.Clients()) != len(b.Clients()) {
		t.Fatal("same seed produced different topologies")
	}
	for i := range a.Machines() {
		if a.Machines()[i].ID != b.Machines()[i].ID || a.Machines()[i].RD != b.Machines()[i].RD {
			t.Fatal("machine layout differs between identical seeds")
		}
	}
}

func TestGenerateValidation(t *testing.T) {
	src := rng.New(1)
	if _, err := Generate(nil, Spec{}); err == nil {
		t.Error("accepted nil source")
	}
	bad := []Spec{
		{GridDomains: -1},
		{MinMachines: 3, MaxMachines: 2},
		{MinClients: 5, MaxClients: 1},
		{Activities: -1},
		{RDProbability: 1.5},
	}
	for i, s := range bad {
		if _, err := Generate(src, s); err == nil {
			t.Errorf("bad spec %d accepted: %+v", i, s)
		}
	}
}

func TestSeedTable(t *testing.T) {
	src := rng.New(4)
	top, err := Generate(src, Spec{GridDomains: 3})
	if err != nil {
		t.Fatal(err)
	}
	table := grid.NewTrustTable()
	if err := SeedTable(src, top, table); err != nil {
		t.Fatal(err)
	}
	// Every (CD, RD, supported activity) triple must be present.
	want := 0
	for range top.ClientDomains() {
		for _, rd := range top.ResourceDomains() {
			want += len(rd.Supported)
		}
	}
	if table.Len() != want {
		t.Fatalf("table has %d entries, want %d", table.Len(), want)
	}
	for _, cd := range top.ClientDomains() {
		for _, rd := range top.ResourceDomains() {
			for act := range rd.Supported {
				tl, ok := table.Get(cd.ID, rd.ID, act)
				if !ok || !tl.Offerable() {
					t.Fatalf("entry (%d,%d,%v) = %v/%v", cd.ID, rd.ID, act, tl, ok)
				}
			}
		}
	}
	if err := SeedTable(nil, top, table); err == nil {
		t.Error("accepted nil source")
	}
	if err := SeedTable(src, nil, table); err == nil {
		t.Error("accepted nil topology")
	}
	if err := SeedTable(src, top, nil); err == nil {
		t.Error("accepted nil table")
	}
}

// TestGeneratedTopologyWorksWithCore is the integration check: a random
// topology must be consumable by the TRMS stack (indirectly via
// grid.NewTopology, already called) and by OTL computation.
func TestGeneratedTopologyOTL(t *testing.T) {
	src := rng.New(11)
	top, err := Generate(src, Spec{GridDomains: 4})
	if err != nil {
		t.Fatal(err)
	}
	table := grid.NewTrustTable()
	if err := SeedTable(src, top, table); err != nil {
		t.Fatal(err)
	}
	for _, cd := range top.ClientDomains() {
		for _, rd := range top.ResourceDomains() {
			for act := range rd.Supported {
				otl, err := table.OTL(cd.ID, rd.ID, grid.MustToA(act))
				if err != nil {
					t.Fatalf("OTL(%d,%d,%v): %v", cd.ID, rd.ID, act, err)
				}
				if !otl.Offerable() {
					t.Fatalf("OTL %v not offerable", otl)
				}
			}
		}
	}
}
