// Package gridgen generates random Grid topologies — grid domains with
// resource/client domains, machines and clients — following the paper's
// Section 5.3 conventions (domain counts in [1,4], per-activity trust
// levels in the offerable range).  It exists so examples, tests and the
// evolving-trust simulations can build structurally valid Grids without
// hand-wiring every domain.
package gridgen

import (
	"fmt"

	"gridtrust/internal/grid"
	"gridtrust/internal/rng"
)

// Spec bounds the generated topology.
type Spec struct {
	// GridDomains is the number of GDs; 0 draws from [1,4] as in the
	// paper's simulations.
	GridDomains int
	// MachinesPerRD bounds machines per resource domain (inclusive);
	// zero values default to [1,3].
	MinMachines, MaxMachines int
	// ClientsPerCD bounds clients per client domain (inclusive); zero
	// values default to [1,3].
	MinClients, MaxClients int
	// Activities is the size of the activity vocabulary; 0 defaults to
	// the built-in five.
	Activities int
	// RDProbability and CDProbability are the chances a GD hosts a
	// resource (resp. client) domain; zeros default to 1 (every GD has
	// both).  At least one RD with a machine and one CD with a client
	// are always guaranteed.
	RDProbability, CDProbability float64
}

// withDefaults fills unset fields.
func (s Spec) withDefaults(src *rng.Source) Spec {
	if s.GridDomains == 0 {
		s.GridDomains = src.IntRange(1, 4)
	}
	if s.MinMachines == 0 {
		s.MinMachines = 1
	}
	if s.MaxMachines == 0 {
		s.MaxMachines = 3
	}
	if s.MinClients == 0 {
		s.MinClients = 1
	}
	if s.MaxClients == 0 {
		s.MaxClients = 3
	}
	if s.Activities == 0 {
		s.Activities = int(grid.NumBuiltinActivities)
	}
	if s.RDProbability == 0 {
		s.RDProbability = 1
	}
	if s.CDProbability == 0 {
		s.CDProbability = 1
	}
	return s
}

// validate rejects impossible bounds.
func (s Spec) validate() error {
	switch {
	case s.GridDomains < 0:
		return fmt.Errorf("gridgen: negative GridDomains %d", s.GridDomains)
	case s.MinMachines < 1 || s.MaxMachines < s.MinMachines:
		return fmt.Errorf("gridgen: bad machine bounds [%d,%d]", s.MinMachines, s.MaxMachines)
	case s.MinClients < 1 || s.MaxClients < s.MinClients:
		return fmt.Errorf("gridgen: bad client bounds [%d,%d]", s.MinClients, s.MaxClients)
	case s.Activities < 1:
		return fmt.Errorf("gridgen: need at least one activity")
	case s.RDProbability < 0 || s.RDProbability > 1 || s.CDProbability < 0 || s.CDProbability > 1:
		return fmt.Errorf("gridgen: probabilities outside [0,1]")
	}
	return nil
}

// Generate draws a topology.  Identical source state yields an identical
// topology.
func Generate(src *rng.Source, spec Spec) (*grid.Topology, error) {
	if src == nil {
		return nil, fmt.Errorf("gridgen: nil random source")
	}
	spec = spec.withDefaults(src)
	if err := spec.validate(); err != nil {
		return nil, err
	}

	nextMachine := 0
	nextClient := 0
	domains := make([]*grid.GridDomain, 0, spec.GridDomains)
	haveRD, haveCD := false, false
	for g := 0; g < spec.GridDomains; g++ {
		gd := &grid.GridDomain{
			ID:    grid.DomainID(g),
			Name:  fmt.Sprintf("gd-%d", g),
			Owner: fmt.Sprintf("org-%d", g),
		}
		wantRD := src.Bool(spec.RDProbability)
		wantCD := src.Bool(spec.CDProbability)
		// The last GD back-fills whatever is still missing so the
		// topology is always schedulable.
		if g == spec.GridDomains-1 {
			wantRD = wantRD || !haveRD
			wantCD = wantCD || !haveCD
		}
		if wantRD {
			gd.RD = genRD(src, spec, grid.DomainID(g), &nextMachine)
			haveRD = true
		}
		if wantCD {
			gd.CD = genCD(src, spec, grid.DomainID(g), &nextClient)
			haveCD = true
		}
		domains = append(domains, gd)
	}
	return grid.NewTopology(domains...)
}

// genRD draws one resource domain with its machines and per-activity
// offered trust levels.
func genRD(src *rng.Source, spec Spec, id grid.DomainID, nextMachine *int) *grid.ResourceDomain {
	rd := &grid.ResourceDomain{
		ID:        id,
		Owner:     fmt.Sprintf("org-%d", id),
		Supported: make(map[grid.Activity]grid.TrustLevel),
		RTL:       grid.TrustLevel(src.IntRange(int(grid.MinRequirable), int(grid.MaxRequirable))),
	}
	// Every RD supports a random non-empty subset of the vocabulary.
	supported := 0
	for a := 0; a < spec.Activities; a++ {
		if src.Bool(0.8) {
			rd.Supported[grid.Activity(a)] = grid.TrustLevel(
				src.IntRange(int(grid.MinOfferable), int(grid.MaxOfferable)))
			supported++
		}
	}
	if supported == 0 {
		a := grid.Activity(src.Intn(spec.Activities))
		rd.Supported[a] = grid.TrustLevel(src.IntRange(int(grid.MinOfferable), int(grid.MaxOfferable)))
	}
	n := src.IntRange(spec.MinMachines, spec.MaxMachines)
	for i := 0; i < n; i++ {
		rd.Machines = append(rd.Machines, &grid.Machine{
			ID:   grid.MachineID(*nextMachine),
			Name: fmt.Sprintf("m-%d", *nextMachine),
			RD:   id,
		})
		*nextMachine++
	}
	return rd
}

// genCD draws one client domain with its clients and sought activities.
func genCD(src *rng.Source, spec Spec, id grid.DomainID, nextClient *int) *grid.ClientDomain {
	cd := &grid.ClientDomain{
		ID:     id,
		Owner:  fmt.Sprintf("org-%d", id),
		Sought: make(map[grid.Activity]grid.TrustLevel),
		RTL:    grid.TrustLevel(src.IntRange(int(grid.MinRequirable), int(grid.MaxRequirable))),
	}
	for a := 0; a < spec.Activities; a++ {
		if src.Bool(0.6) {
			cd.Sought[grid.Activity(a)] = grid.TrustLevel(
				src.IntRange(int(grid.MinOfferable), int(grid.MaxOfferable)))
		}
	}
	n := src.IntRange(spec.MinClients, spec.MaxClients)
	for i := 0; i < n; i++ {
		cd.Clients = append(cd.Clients, &grid.Client{
			ID:   grid.ClientID(*nextClient),
			Name: fmt.Sprintf("c-%d", *nextClient),
			CD:   id,
		})
		*nextClient++
	}
	return cd
}

// SeedTable fills a trust table with offerable levels drawn from [1,5]
// for every (CD, RD, supported activity) triple of the topology — the
// Section 5.3 initialisation.
func SeedTable(src *rng.Source, top *grid.Topology, table *grid.TrustTable) error {
	if src == nil || top == nil || table == nil {
		return fmt.Errorf("gridgen: nil argument to SeedTable")
	}
	for _, cd := range top.ClientDomains() {
		for _, rd := range top.ResourceDomains() {
			for act := range rd.Supported {
				tl := grid.TrustLevel(src.IntRange(int(grid.MinOfferable), int(grid.MaxOfferable)))
				if err := table.Set(cd.ID, rd.ID, act, tl); err != nil {
					return err
				}
			}
		}
	}
	return nil
}
