package chaos_test

import (
	"bytes"
	"errors"
	"io"
	"net"
	"testing"
	"time"

	"gridtrust/internal/chaos"
)

// echoPair starts a TCP echo server whose accepted conns pass through
// w, and returns a dialled (and wrapped) client conn.
func echoPair(t *testing.T, w *chaos.Wire) net.Conn {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	wrapped := w.Listener(ln)
	t.Cleanup(func() { wrapped.Close() })
	go func() {
		for {
			c, err := wrapped.Accept()
			if err != nil {
				return
			}
			go func() {
				defer c.Close()
				io.Copy(c, c)
			}()
		}
	}()
	c, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func TestWirePassthrough(t *testing.T) {
	w := chaos.NewWire(1)
	c := echoPair(t, w)
	msg := []byte("clean bytes through a quiet wire")
	if _, err := c.Write(msg); err != nil {
		t.Fatalf("write: %v", err)
	}
	got := make([]byte, len(msg))
	if _, err := io.ReadFull(c, got); err != nil {
		t.Fatalf("read: %v", err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatalf("echo mismatch: %q", got)
	}
	if w.Resets() != 0 || w.Drops() != 0 || w.Trickles() != 0 {
		t.Fatalf("quiet wire injected faults: resets=%d drops=%d trickles=%d",
			w.Resets(), w.Drops(), w.Trickles())
	}
}

func TestWirePartitionHonorsDeadlineAndHeals(t *testing.T) {
	w := chaos.NewWire(2)
	c := echoPair(t, w)

	// Prime the conn so the server side is wrapped and blocked too.
	if _, err := c.Write([]byte("a")); err != nil {
		t.Fatalf("write: %v", err)
	}
	buf := make([]byte, 1)
	if _, err := io.ReadFull(c, buf); err != nil {
		t.Fatalf("read: %v", err)
	}

	w.Partition(true)
	if _, err := c.Write([]byte("b")); err != nil {
		t.Fatalf("write during partition: %v", err)
	}
	// The server cannot echo: its read is gated.  A deadline-bounded
	// client read must time out instead of wedging.
	c.SetReadDeadline(time.Now().Add(150 * time.Millisecond))
	start := time.Now()
	_, err := c.Read(buf)
	var nerr net.Error
	if !errors.As(err, &nerr) || !nerr.Timeout() {
		t.Fatalf("read during partition: err = %v, want timeout", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("partitioned read took %v, deadline not honored", elapsed)
	}

	w.Partition(false)
	c.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := io.ReadFull(c, buf); err != nil {
		t.Fatalf("read after heal: %v", err)
	}
	if buf[0] != 'b' {
		t.Fatalf("read %q after heal, want %q", buf, "b")
	}
}

func TestWireTrickleDeliversByteAtATime(t *testing.T) {
	w := chaos.NewWire(3)
	w.SetFaults(chaos.Faults{TrickleProb: 1})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	defer ln.Close()
	done := make(chan struct{})
	go func() {
		defer close(done)
		c, err := ln.Accept()
		if err != nil {
			return
		}
		defer c.Close()
		c.Write([]byte("trickle"))
	}()
	raw, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	c := w.Conn(raw)
	defer c.Close()

	buf := make([]byte, 16)
	n, err := c.Read(buf)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if n != 1 {
		t.Fatalf("trickle read returned %d bytes, want 1", n)
	}
	if w.Trickles() != 1 {
		t.Fatalf("Trickles = %d, want 1", w.Trickles())
	}
	<-done
}

func TestWireResetFires(t *testing.T) {
	w := chaos.NewWire(4)
	w.SetFaults(chaos.Faults{ResetProb: 1, ResetAfterMax: 1})
	c := echoPair(t, w)

	// The server-side conn rolled a reset after at most 1 byte; pushing
	// traffic through must surface a broken conn on the client, and the
	// wire must count exactly the fates it fired.
	deadline := time.Now().Add(5 * time.Second)
	c.SetDeadline(deadline)
	var failed bool
	for time.Now().Before(deadline) {
		if _, err := c.Write([]byte("x")); err != nil {
			failed = true
			break
		}
		buf := make([]byte, 1)
		if _, err := c.Read(buf); err != nil {
			failed = true
			break
		}
	}
	if !failed {
		t.Fatalf("reset fate never surfaced")
	}
	if w.Resets() == 0 {
		t.Fatalf("Resets = 0 after injected reset")
	}
}

func TestWireFatesAreSeedDeterministic(t *testing.T) {
	roll := func(seed uint64) []bool {
		w := chaos.NewWire(seed)
		w.SetFaults(chaos.Faults{TrickleProb: 0.5, ResetProb: 0.3, ResetAfterMax: 64})
		var fates []bool
		for i := 0; i < 64; i++ {
			a, b := net.Pipe()
			wc := w.Conn(a)
			// Probe the trickle fate: a 2-byte read against a 2-byte
			// send returns 1 byte iff the conn trickles.
			go b.Write([]byte("zz"))
			buf := make([]byte, 2)
			wc.SetReadDeadline(time.Now().Add(2 * time.Second))
			n, err := wc.Read(buf)
			if err != nil {
				t.Fatalf("probe read: %v", err)
			}
			fates = append(fates, n == 1)
			wc.Close()
			b.Close()
		}
		return fates
	}
	a, b := roll(42), roll(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at conn %d", i)
		}
	}
}

// FuzzWireDeliveredPrefix asserts the wire never corrupts data: under
// any fate mix, the bytes a reader receives before an error are an
// exact prefix of the bytes written.
func FuzzWireDeliveredPrefix(f *testing.F) {
	f.Add(uint64(1), []byte("hello fleet"), byte(0))
	f.Add(uint64(77), bytes.Repeat([]byte("abc"), 50), byte(3))
	f.Fuzz(func(t *testing.T, seed uint64, payload []byte, mode byte) {
		if len(payload) == 0 || len(payload) > 1<<12 {
			return
		}
		w := chaos.NewWire(seed)
		w.SetFaults(chaos.Faults{
			TrickleProb:   float64(mode&1) * 0.8,
			ResetProb:     float64((mode>>1)&1) * 0.6,
			ResetAfterMax: 32,
		})
		srv, cli := net.Pipe()
		wc := w.Conn(srv)
		go func() {
			wc.Write(payload)
			wc.Close()
		}()
		cli.SetReadDeadline(time.Now().Add(5 * time.Second))
		got, _ := io.ReadAll(cli)
		cli.Close()
		if len(got) > len(payload) || !bytes.Equal(got, payload[:len(got)]) {
			t.Fatalf("delivered bytes are not a prefix: sent %d, got %d", len(payload), len(got))
		}
	})
}
