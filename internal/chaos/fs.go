// Package chaos injects deterministic, scripted faults at the two
// boundaries the serving stack crosses: the wire (net.Conn/net.Listener
// wrappers that drop, reset, black-hole, trickle and delay traffic —
// see wire.go) and the disk (a wal.FS implementation that produces
// short writes, failed fsyncs, ENOSPC and torn-tail "crashes" — this
// file).
//
// Everything is seed-driven or explicitly scripted; nothing consults
// the global math/rand state, so a failing soak replays byte-for-byte
// from its seed.  The package is imported only by tests and the chaos
// soak — production binaries never construct a chaos FS or Wire, and
// the seams it plugs into (wal.Options.FS, fleet.Config.WrapListener)
// default to zero-cost pass-throughs.
package chaos

import (
	"io"
	"os"
	"sync"

	"gridtrust/internal/wal"
)

// FS implements wal.FS over the real filesystem with scripted write
// faults.  The zero value (via NewFS) injects nothing and behaves
// exactly like the default filesystem.
//
// Fault precedence per write: FailWrites, then ShortWriteNext, then the
// CrashAfterBytes budget.  Reads, renames and directory operations are
// never faulted — recovery-path faults are modelled by what the faulty
// writes left on disk, which is what a real crash leaves too.
type FS struct {
	mu         sync.Mutex
	failWrites error // every write fails with this (ENOSPC et al.)
	failSyncs  error // every fsync fails with this
	shortNext  bool  // the next write persists and reports half its bytes
	budget     int64 // persisted-byte budget; <0 = unlimited

	shortWrites int64
	tornBytes   int64 // bytes silently discarded by the crash budget
}

// NewFS returns a pass-through FS with no faults armed.
func NewFS() *FS {
	return &FS{budget: -1}
}

// FailWrites arms (or with nil disarms) an error every subsequent file
// write returns — ENOSPC is the classic.  No bytes reach the disk.
func (f *FS) FailWrites(err error) {
	f.mu.Lock()
	f.failWrites = err
	f.mu.Unlock()
}

// FailSyncs arms (or with nil disarms) an error every subsequent fsync
// returns.  Writes still land in the page cache, which is exactly the
// fsyncgate shape: data "written", durability unknown.
func (f *FS) FailSyncs(err error) {
	f.mu.Lock()
	f.failSyncs = err
	f.mu.Unlock()
}

// ShortWriteNext makes the next write persist only half its bytes and
// report io.ErrShortWrite.
func (f *FS) ShortWriteNext() {
	f.mu.Lock()
	f.shortNext = true
	f.mu.Unlock()
}

// CrashAfterBytes arms a torn-tail crash: after n more bytes persist,
// subsequent bytes are silently discarded while every write still
// reports success — the page cache accepted them and the power died
// before they hit the platter.  The caller then abandons the log
// without Close and recovers the directory, exactly like a kill -9.
func (f *FS) CrashAfterBytes(n int64) {
	f.mu.Lock()
	f.budget = n
	f.mu.Unlock()
}

// Heal disarms every fault.
func (f *FS) Heal() {
	f.mu.Lock()
	f.failWrites, f.failSyncs, f.shortNext, f.budget = nil, nil, false, -1
	f.mu.Unlock()
}

// TornBytes reports how many bytes the crash budget silently discarded.
func (f *FS) TornBytes() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.tornBytes
}

// ShortWrites reports how many short writes were injected.
func (f *FS) ShortWrites() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.shortWrites
}

// admitWrite decides one write's fate: report is how many bytes the
// caller is told were written (alongside err), persist is how many
// actually reach the disk.
func (f *FS) admitWrite(n int) (report, persist int, err error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.failWrites != nil {
		return 0, 0, f.failWrites
	}
	if f.shortNext {
		f.shortNext = false
		f.shortWrites++
		half := n / 2
		return half, f.consume(half), io.ErrShortWrite
	}
	return n, f.consume(n), nil
}

// consume charges n bytes against the crash budget, returning how many
// may persist.  Callers hold mu.
func (f *FS) consume(n int) int {
	if f.budget < 0 {
		return n
	}
	persist := n
	if int64(persist) > f.budget {
		persist = int(f.budget)
	}
	f.budget -= int64(persist)
	f.tornBytes += int64(n - persist)
	return persist
}

// syncErr returns the armed fsync error, if any.
func (f *FS) syncErr() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.failSyncs
}

// --- wal.FS implementation (faults on the write path only) ---

func (f *FS) MkdirAll(path string, perm os.FileMode) error { return os.MkdirAll(path, perm) }

func (f *FS) OpenFile(name string, flag int, perm os.FileMode) (wal.File, error) {
	of, err := os.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return &fsFile{fs: f, f: of}, nil
}

func (f *FS) CreateTemp(dir, pattern string) (wal.File, error) {
	of, err := os.CreateTemp(dir, pattern)
	if err != nil {
		return nil, err
	}
	return &fsFile{fs: f, f: of}, nil
}

func (f *FS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }

func (f *FS) Remove(name string) error { return os.Remove(name) }

func (f *FS) Truncate(name string, size int64) error { return os.Truncate(name, size) }

func (f *FS) ReadDir(name string) ([]os.DirEntry, error) { return os.ReadDir(name) }

func (f *FS) ReadFile(name string) ([]byte, error) { return os.ReadFile(name) }

func (f *FS) SyncDir(dir string) error {
	if err := f.syncErr(); err != nil {
		return err
	}
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

// fsFile routes one file's writes and fsyncs through the fault state.
type fsFile struct {
	fs *FS
	f  *os.File
}

func (c *fsFile) Write(p []byte) (int, error) {
	report, persist, err := c.fs.admitWrite(len(p))
	if err != nil && report == 0 {
		return 0, err
	}
	if persist > 0 {
		if n, werr := c.f.Write(p[:persist]); werr != nil {
			return n, werr
		}
	}
	return report, err
}

func (c *fsFile) Sync() error {
	if err := c.fs.syncErr(); err != nil {
		return err
	}
	return c.f.Sync()
}

func (c *fsFile) Close() error { return c.f.Close() }

func (c *fsFile) Stat() (os.FileInfo, error) { return c.f.Stat() }

func (c *fsFile) Name() string { return c.f.Name() }
