package chaos_test

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"syscall"
	"testing"

	"gridtrust/internal/chaos"
	"gridtrust/internal/wal"
)

// refPayloads is the record sequence the recovery tests replay.
func refPayloads() [][]byte {
	var out [][]byte
	for i := 0; i < 12; i++ {
		out = append(out, []byte(fmt.Sprintf("record-%02d-%s", i, string(bytes.Repeat([]byte{'x'}, i)))))
	}
	return out
}

// appendAll writes payloads to a fresh log in dir, ignoring append
// errors (fault runs are expected to fail partway).
func appendAll(t *testing.T, dir string, fs wal.FS, payloads [][]byte) *wal.Log {
	t.Helper()
	l, rec, err := wal.Create(dir, wal.Options{FS: fs})
	if err != nil {
		t.Fatalf("create: %v", err)
	}
	if len(rec.Records) != 0 {
		t.Fatalf("fresh dir recovered %d records", len(rec.Records))
	}
	for _, p := range payloads {
		if _, err := l.Append(p); err != nil {
			break
		}
	}
	return l
}

// recoverReal abandons any writer and replays dir through the real
// filesystem, as a restarted process would.
func recoverReal(t *testing.T, dir string) *wal.Recovered {
	t.Helper()
	l, rec, err := wal.Create(dir, wal.Options{})
	if err != nil {
		t.Fatalf("recover: %v", err)
	}
	defer l.Close()
	return rec
}

// assertPrefix checks that recovered records are byte-identical to a
// leading prefix of want.
func assertPrefix(t *testing.T, rec *wal.Recovered, want [][]byte) int {
	t.Helper()
	if len(rec.Records) > len(want) {
		t.Fatalf("recovered %d records, reference has %d", len(rec.Records), len(want))
	}
	for i, r := range rec.Records {
		if r.Seq != uint64(i)+1 {
			t.Fatalf("record %d has seq %d", i, r.Seq)
		}
		if !bytes.Equal(r.Payload, want[i]) {
			t.Fatalf("record %d payload %q, want %q", i, r.Payload, want[i])
		}
	}
	return len(rec.Records)
}

func TestFailSyncIsStickyFailStop(t *testing.T) {
	dir := t.TempDir()
	fs := chaos.NewFS()
	payloads := refPayloads()

	l, _, err := wal.Create(dir, wal.Options{FS: fs})
	if err != nil {
		t.Fatalf("create: %v", err)
	}
	for _, p := range payloads[:6] {
		if _, err := l.Append(p); err != nil {
			t.Fatalf("clean append: %v", err)
		}
	}

	fs.FailSyncs(syscall.EIO)
	if _, err := l.Append(payloads[6]); !errors.Is(err, wal.ErrFailStop) {
		t.Fatalf("append under failed fsync: err = %v, want ErrFailStop", err)
	}

	// The fsyncgate lesson: healing the disk must not revive the log.
	fs.Heal()
	if _, err := l.Append(payloads[7]); !errors.Is(err, wal.ErrFailStop) {
		t.Fatalf("append after heal: err = %v, want sticky ErrFailStop", err)
	}
	if err := l.Sync(); !errors.Is(err, wal.ErrFailStop) {
		t.Fatalf("sync after fail-stop: err = %v, want ErrFailStop", err)
	}
	if err := l.Snapshot(1, []byte("s")); !errors.Is(err, wal.ErrFailStop) {
		t.Fatalf("snapshot after fail-stop: err = %v, want ErrFailStop", err)
	}
	if err := l.Failed(); !errors.Is(err, wal.ErrFailStop) {
		t.Fatalf("Failed() = %v, want ErrFailStop", err)
	}

	// The acked prefix must recover byte-identically.  The 7th record's
	// write reached the page cache before the fsync failed, so it may
	// legitimately survive too — as an exact byte-identical suffix,
	// which assertPrefix already enforces — but never fewer than the 6
	// acked records.
	rec := recoverReal(t, dir)
	if n := assertPrefix(t, rec, payloads); n < 6 {
		t.Fatalf("recovered %d records, want at least the 6 acked ones", n)
	}
}

func TestFailWritesENOSPC(t *testing.T) {
	dir := t.TempDir()
	fs := chaos.NewFS()
	payloads := refPayloads()

	l, _, err := wal.Create(dir, wal.Options{FS: fs})
	if err != nil {
		t.Fatalf("create: %v", err)
	}
	for _, p := range payloads[:4] {
		if _, err := l.Append(p); err != nil {
			t.Fatalf("clean append: %v", err)
		}
	}
	fs.FailWrites(syscall.ENOSPC)
	_, err = l.Append(payloads[4])
	if !errors.Is(err, wal.ErrFailStop) {
		t.Fatalf("append under ENOSPC: err = %v, want ErrFailStop", err)
	}
	if !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("append under ENOSPC: err = %v, want cause ENOSPC", err)
	}

	rec := recoverReal(t, dir)
	if n := assertPrefix(t, rec, payloads); n != 4 {
		t.Fatalf("recovered %d records, want the 4 pre-error ones", n)
	}
}

func TestShortWriteRecoversPrefix(t *testing.T) {
	dir := t.TempDir()
	fs := chaos.NewFS()
	payloads := refPayloads()

	l, _, err := wal.Create(dir, wal.Options{FS: fs})
	if err != nil {
		t.Fatalf("create: %v", err)
	}
	for _, p := range payloads[:5] {
		if _, err := l.Append(p); err != nil {
			t.Fatalf("clean append: %v", err)
		}
	}
	fs.ShortWriteNext()
	if _, err := l.Append(payloads[5]); !errors.Is(err, wal.ErrFailStop) {
		t.Fatalf("append with short write: err = %v, want ErrFailStop", err)
	}
	if fs.ShortWrites() != 1 {
		t.Fatalf("ShortWrites = %d, want 1", fs.ShortWrites())
	}

	// The torn half-frame must be truncated away, leaving the prefix.
	rec := recoverReal(t, dir)
	if n := assertPrefix(t, rec, payloads); n != 5 {
		t.Fatalf("recovered %d records, want the 5 pre-error ones", n)
	}
	if rec.Clean() {
		t.Fatalf("recovery reported clean over a torn tail")
	}
}

// TestTornTailRecoveryEveryOffset is the satellite table test: for every
// persisted-byte budget from zero to the full log, a torn-tail crash
// must recover a byte-identical prefix of the reference sequence —
// never a corrupt record, never a record past the tear.
func TestTornTailRecoveryEveryOffset(t *testing.T) {
	payloads := refPayloads()

	// Reference run on the real filesystem: total segment bytes and the
	// expected record sequence.
	refDir := t.TempDir()
	l := appendAll(t, refDir, nil, payloads)
	if err := l.Close(); err != nil {
		t.Fatalf("close reference: %v", err)
	}
	total := segmentBytes(t, refDir)
	if total == 0 {
		t.Fatalf("reference run produced no segment bytes")
	}

	prevRecovered := -1
	for offset := int64(0); offset <= total; offset++ {
		dir := t.TempDir()
		fs := chaos.NewFS()
		fs.CrashAfterBytes(offset)
		// Appends "succeed" — the page cache lies — then the process
		// dies without Close, so the tail past offset never persists.
		appendAll(t, dir, fs, payloads)

		rec := recoverReal(t, dir)
		n := assertPrefix(t, rec, payloads)
		if n < prevRecovered {
			t.Fatalf("offset %d: recovered %d records, fewer than offset %d's %d",
				offset, n, offset-1, prevRecovered)
		}
		prevRecovered = n
	}
	if prevRecovered != len(payloads) {
		t.Fatalf("full budget recovered %d records, want all %d", prevRecovered, len(payloads))
	}
}

// segmentBytes sums the sizes of all segment files in dir.
func segmentBytes(t *testing.T, dir string) int64 {
	t.Helper()
	matches, err := filepath.Glob(filepath.Join(dir, "wal-*.seg"))
	if err != nil {
		t.Fatalf("glob: %v", err)
	}
	var total int64
	for _, m := range matches {
		fi, err := os.Stat(m)
		if err != nil {
			t.Fatalf("stat: %v", err)
		}
		total += fi.Size()
	}
	return total
}

// FuzzTornTailRecovery drives the crash budget and record shape from
// the fuzzer: recovery after any torn tail must yield an exact prefix.
func FuzzTornTailRecovery(f *testing.F) {
	f.Add(uint16(0), uint8(3), uint8(7))
	f.Add(uint16(41), uint8(5), uint8(0))
	f.Add(uint16(9999), uint8(12), uint8(31))
	f.Fuzz(func(t *testing.T, offset uint16, nrecords, fill uint8) {
		n := int(nrecords%16) + 1
		var payloads [][]byte
		for i := 0; i < n; i++ {
			payloads = append(payloads, []byte(fmt.Sprintf("r%02d-%d", i, fill)))
		}
		dir := t.TempDir()
		fs := chaos.NewFS()
		fs.CrashAfterBytes(int64(offset))
		appendAll(t, dir, fs, payloads)

		l, rec, err := wal.Create(dir, wal.Options{})
		if err != nil {
			t.Fatalf("recover: %v", err)
		}
		defer l.Close()
		if len(rec.Records) > len(payloads) {
			t.Fatalf("recovered %d records from %d appended", len(rec.Records), len(payloads))
		}
		for i, r := range rec.Records {
			if !bytes.Equal(r.Payload, payloads[i]) {
				t.Fatalf("record %d corrupt after torn tail at %d", i, offset)
			}
		}
	})
}
