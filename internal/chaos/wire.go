package chaos

import (
	"errors"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"gridtrust/internal/rng"
)

// ErrReset is returned by a connection whose injected reset fate fired.
var ErrReset = errors.New("chaos: connection reset by injected fault")

// gatePoll is how often a blocked (partitioned/black-holed) connection
// re-checks its deadline, the partition flag, and its own closed state.
const gatePoll = 2 * time.Millisecond

// Faults describes the probabilistic per-connection fates a Wire draws
// when it wraps a connection.  Each new connection rolls its fate once,
// from the Wire's seeded stream, so a schedule of dials replays
// identically for a given seed.  The zero value injects nothing.
type Faults struct {
	// ResetProb is the probability a connection is hard-reset after
	// transferring ResetAfterMax-bounded bytes: the underlying conn is
	// closed and both directions return ErrReset.
	ResetProb     float64
	ResetAfterMax int // max bytes before the reset fires; default 256

	// DropProb is the probability a connection black-holes after
	// transferring DropAfterMax-bounded bytes: reads and writes block
	// until the caller's deadline (or forever without one), the
	// TCP-incast shape a dial deadline must bound.
	DropProb     float64
	DropAfterMax int // max bytes before the black-hole; default 256

	// TrickleProb is the probability reads deliver one byte at a time.
	TrickleProb float64

	// Latency is a fixed delay added before every read; Jitter adds a
	// uniformly drawn extra delay in [0, Jitter) rolled once per conn.
	Latency time.Duration
	Jitter  time.Duration
}

// Wire wraps listeners and connections with seed-driven fault
// injection plus a scripted partition toggle.  With zero Faults and the
// partition off, wrapped connections pass bytes through untouched.
type Wire struct {
	mu          sync.Mutex
	src         *rng.Source
	faults      Faults
	partitioned bool

	resets   atomic.Int64
	drops    atomic.Int64
	trickles atomic.Int64
}

// NewWire returns a Wire drawing connection fates from the given seed.
func NewWire(seed uint64) *Wire {
	return &Wire{src: rng.New(seed)}
}

// SetFaults installs the fate distribution for subsequently wrapped
// connections.  Existing connections keep the fate they rolled.
func (w *Wire) SetFaults(f Faults) {
	w.mu.Lock()
	w.faults = f
	w.mu.Unlock()
}

// Partition toggles a scripted full partition: every wrapped connection
// (existing and future) blocks on read and write until the partition
// heals, the caller's deadline expires, or the connection is closed.
func (w *Wire) Partition(on bool) {
	w.mu.Lock()
	w.partitioned = on
	w.mu.Unlock()
}

// Partitioned reports the scripted partition state.
func (w *Wire) Partitioned() bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.partitioned
}

// Resets reports how many injected resets have fired.
func (w *Wire) Resets() int64 { return w.resets.Load() }

// Drops reports how many injected black-holes have engaged.
func (w *Wire) Drops() int64 { return w.drops.Load() }

// Trickles reports how many connections rolled the trickle fate.
func (w *Wire) Trickles() int64 { return w.trickles.Load() }

// Listener wraps ln so every accepted connection passes through the
// Wire.  Addr and Close delegate to the underlying listener.
func (w *Wire) Listener(ln net.Listener) net.Listener {
	return &wireListener{Listener: ln, w: w}
}

// Conn wraps an already-established connection (the dial side).
func (w *Wire) Conn(c net.Conn) net.Conn {
	return w.wrap(c)
}

// wrap rolls a fate for c from the seeded stream and returns the
// fault-injecting wrapper.
func (w *Wire) wrap(c net.Conn) *wireConn {
	w.mu.Lock()
	f := w.faults
	fate := connFate{
		latency: f.Latency,
	}
	if f.Jitter > 0 {
		fate.latency += time.Duration(w.src.Uint64() % uint64(f.Jitter))
	}
	if f.ResetProb > 0 && w.src.Bool(f.ResetProb) {
		fate.reset = true
		fate.resetAfter = int64(w.src.Intn(max(f.ResetAfterMax, 1) + 1))
	}
	if f.DropProb > 0 && w.src.Bool(f.DropProb) {
		fate.drop = true
		fate.dropAfter = int64(w.src.Intn(max(f.DropAfterMax, 1) + 1))
	}
	if f.TrickleProb > 0 && w.src.Bool(f.TrickleProb) {
		fate.trickle = true
		w.trickles.Add(1)
	}
	w.mu.Unlock()
	return &wireConn{Conn: c, w: w, fate: fate}
}

type wireListener struct {
	net.Listener
	w *Wire
}

func (l *wireListener) Accept() (net.Conn, error) {
	c, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	return l.w.wrap(c), nil
}

// connFate is the fault profile one connection rolled at wrap time.
type connFate struct {
	reset      bool
	resetAfter int64 // transferred bytes before the reset fires
	drop       bool
	dropAfter  int64 // transferred bytes before the black-hole engages
	trickle    bool
	latency    time.Duration
}

// wireConn injects its rolled fate into one connection.  It tracks
// deadlines itself (as well as forwarding them) so the partition and
// black-hole gates can honor them while blocking above the socket.
type wireConn struct {
	net.Conn
	w    *Wire
	fate connFate

	mu            sync.Mutex
	transferred   int64
	closed        bool
	resetFired    bool
	dropEngaged   bool
	readDeadline  time.Time
	writeDeadline time.Time
}

// timeoutError satisfies net.Error for deadline expiries the gate
// synthesizes while a connection is blocked above the socket.
type timeoutError struct{}

func (timeoutError) Error() string   { return "chaos: i/o timeout (gated)" }
func (timeoutError) Timeout() bool   { return true }
func (timeoutError) Temporary() bool { return true }

// gate blocks while the wire is partitioned or this connection's
// black-hole is engaged, returning early when the relevant deadline
// passes or the connection is closed.
func (c *wireConn) gate(deadline func() time.Time) error {
	for {
		c.mu.Lock()
		if c.closed {
			c.mu.Unlock()
			return net.ErrClosed
		}
		if c.resetFired {
			c.mu.Unlock()
			return ErrReset
		}
		blocked := c.fate.drop && c.transferred >= c.fate.dropAfter
		if blocked && !c.dropEngaged {
			c.dropEngaged = true
			c.w.drops.Add(1)
		}
		d := deadline()
		c.mu.Unlock()
		if !blocked && !c.w.Partitioned() {
			return nil
		}
		if !d.IsZero() && time.Now().After(d) {
			return timeoutError{}
		}
		time.Sleep(gatePoll)
	}
}

func (c *wireConn) Read(p []byte) (int, error) {
	if c.fate.latency > 0 {
		time.Sleep(c.fate.latency)
	}
	if err := c.gate(func() time.Time { return c.readDeadline }); err != nil {
		return 0, err
	}
	if c.fate.trickle && len(p) > 1 {
		p = p[:1]
	}
	n, err := c.Conn.Read(p)
	return n, c.account(n, err)
}

func (c *wireConn) Write(p []byte) (int, error) {
	if err := c.gate(func() time.Time { return c.writeDeadline }); err != nil {
		return 0, err
	}
	n, err := c.Conn.Write(p)
	return n, c.account(n, err)
}

// account adds transferred bytes and fires the reset fate once its
// byte budget is exhausted.  The byte count that crossed before the
// reset is still reported to the caller — a real RST arrives after the
// kernel already accepted those bytes.
func (c *wireConn) account(n int, err error) error {
	c.mu.Lock()
	c.transferred += int64(n)
	fire := c.fate.reset && !c.resetFired && c.transferred >= c.fate.resetAfter
	if fire {
		c.resetFired = true
	}
	c.mu.Unlock()
	if fire {
		c.w.resets.Add(1)
		_ = c.Conn.Close()
		if err == nil && n == 0 {
			return ErrReset
		}
	}
	return err
}

func (c *wireConn) Close() error {
	c.mu.Lock()
	c.closed = true
	c.mu.Unlock()
	return c.Conn.Close()
}

func (c *wireConn) SetDeadline(t time.Time) error {
	c.mu.Lock()
	c.readDeadline, c.writeDeadline = t, t
	c.mu.Unlock()
	return c.Conn.SetDeadline(t)
}

func (c *wireConn) SetReadDeadline(t time.Time) error {
	c.mu.Lock()
	c.readDeadline = t
	c.mu.Unlock()
	return c.Conn.SetReadDeadline(t)
}

func (c *wireConn) SetWriteDeadline(t time.Time) error {
	c.mu.Lock()
	c.writeDeadline = t
	c.mu.Unlock()
	return c.Conn.SetWriteDeadline(t)
}
