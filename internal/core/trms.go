// Package core implements the paper's primary contribution as a running
// system: the trust-aware resource management system (TRMS) of Figure 1.
//
// A TRMS owns (a) the grid topology of GDs with their client and resource
// domains, (b) the central trust-level table, (c) the trust engine that
// evolves Γ values from transaction outcomes, and (d) monitoring agents
// that observe completed Grid-level transactions and write revised trust
// levels back into the table — exactly the block diagram of Figure 1.
// Scheduling requests flow through a trust-aware mapping heuristic whose
// expected security cost comes from the live table.
//
// The simulation experiments of Tables 4-9 bypass this package and use
// internal/sim directly (their trust tables are statically drawn, as in
// the paper); core is the architecture a deployment would embed, and its
// integration tests demonstrate the closed loop: placements influence
// outcomes, outcomes move trust, trust moves placements.
package core

import (
	"fmt"
	"math"
	"runtime"
	"sync"

	"gridtrust/internal/grid"
	"gridtrust/internal/sched"
	"gridtrust/internal/trust"
)

// Config assembles a TRMS.
type Config struct {
	// Topology is the static Grid structure.  Required.
	Topology *grid.Topology

	// Heuristic maps arriving tasks; nil defaults to sched.MCT.
	Heuristic sched.Immediate

	// TCWeight is the trust-cost weight of the ESC formula (paper: 15).
	// Zero defaults to sched.DefaultTCWeight.
	TCWeight float64

	// ETSRule selects the Table 1 reading (default: literal ETSTable1).
	ETSRule grid.ETSRule

	// Trust configures the evolving trust engine.  A zero value gets
	// sensible defaults (α=0.7, β=0.3, batch 1, smoothing 0.3).
	Trust trust.Config

	// TrustModel selects the trust policy from the model registry
	// ("paper", "purge", "frtrust", "bawa", ...).  Empty selects the
	// paper's engine, preserving pre-zoo behaviour exactly.
	TrustModel string

	// InitialTrust seeds the trust-level table for every
	// (CD, RD, activity) triple where the RD supports the activity.
	// Zero defaults to grid.LevelC.
	InitialTrust grid.TrustLevel

	// Agents is the number of monitoring agents draining the
	// transaction stream (Figure 1 shows one per domain; any positive
	// count works since they share the engine).  Zero defaults to 2.
	Agents int
}

// Task is a request submitted to the TRMS: which client wants to run what
// kind of activity, at what required trust level, with per-machine
// expected execution costs (topology machine order).
type Task struct {
	Client grid.ClientID
	ToA    grid.ToA
	RTL    grid.TrustLevel
	EEC    []float64
}

// Placement describes where the TRMS put a task and at what expected cost.
type Placement struct {
	Machine *grid.Machine
	// MachineIdx is the machine's index in topology order, the stable
	// handle journals use to replay a placement with RecoverPlacement.
	MachineIdx int
	RD         grid.DomainID
	CD         grid.DomainID
	OTL        grid.TrustLevel
	TC         int
	EEC        float64
	ESC        float64
	ECC        float64
	Start      float64
	Finish     float64
}

// OTLFuser folds externally learned trust into the offered trust level
// the scheduler prices a machine at.  FuseOTL receives the local
// table's OTL for (cd, rd, toa) and returns the level to use; a fleet
// claims overlay returns min(local, freshest peer claims) — the
// conservative max-trust-cost fusion — and implementations must never
// return a level above local (remote optimism cannot outvote direct
// experience).  FuseOTL is called concurrently and must be lock-cheap.
type OTLFuser interface {
	FuseOTL(cd, rd grid.DomainID, toa grid.ToA, local grid.TrustLevel) grid.TrustLevel
}

// TRMS is the trust-aware resource management system.  Its methods are
// safe for concurrent use.
type TRMS struct {
	cfg    Config
	policy sched.Policy

	table *grid.TrustTable
	model trust.Model

	// fuser, when non-nil, adjusts per-machine OTLs on the submit path.
	// Installed once before the TRMS takes traffic (SetOTLFuser); nil
	// keeps the submit path byte-for-byte identical to a fuser-free TRMS.
	fuser OTLFuser

	txCh   chan trust.Transaction
	agents []*trust.Agent
	wg     sync.WaitGroup

	mu       sync.Mutex
	freeTime []float64 // indexed by topology machine order
	// availBuf and asgBuf are mapping scratch reused across submit and
	// batch events (guarded by mu): steady-state mapping allocates
	// nothing for availability vectors or schedules.
	availBuf []float64
	asgBuf   []sched.Assignment
	placed   int
	reported int
	closed   bool
	// base* seed the cumulative agent counters when a TRMS is rebuilt
	// from a durability snapshot (RestoreAgentStats); AgentStats adds
	// them to the live agents' counts.
	baseProcessed int
	baseCommitted int
	baseRejected  int
}

// New builds and starts a TRMS; call Close to stop its agents.
func New(cfg Config) (*TRMS, error) {
	if cfg.Topology == nil {
		return nil, fmt.Errorf("core: config requires a topology")
	}
	if cfg.Heuristic == nil {
		cfg.Heuristic = sched.MCT{}
	}
	if cfg.TCWeight == 0 {
		cfg.TCWeight = sched.DefaultTCWeight
	}
	if cfg.InitialTrust == grid.LevelNone {
		cfg.InitialTrust = grid.LevelC
	}
	if !cfg.InitialTrust.Offerable() {
		return nil, fmt.Errorf("core: initial trust %v is not offerable", cfg.InitialTrust)
	}
	if cfg.Agents == 0 {
		cfg.Agents = 2
	}
	if cfg.Agents < 0 {
		return nil, fmt.Errorf("core: negative agent count %d", cfg.Agents)
	}
	if !cfg.ETSRule.Valid() {
		return nil, fmt.Errorf("core: invalid ETS rule %d", int(cfg.ETSRule))
	}
	if cfg.Trust.Alpha == 0 && cfg.Trust.Beta == 0 {
		cfg.Trust.Alpha, cfg.Trust.Beta = 0.7, 0.3
	}
	policy, err := sched.TrustAware(cfg.TCWeight)
	if err != nil {
		return nil, err
	}
	model, err := trust.NewModel(cfg.TrustModel, cfg.Trust)
	if err != nil {
		return nil, err
	}

	t := &TRMS{
		cfg:      cfg,
		policy:   policy,
		table:    grid.NewTrustTable(),
		model:    model,
		txCh:     make(chan trust.Transaction, 128),
		freeTime: make([]float64, len(cfg.Topology.Machines())),
		availBuf: make([]float64, len(cfg.Topology.Machines())),
	}

	// Seed the table: every CD trusts every RD at the initial level for
	// each activity the RD supports.
	for _, cd := range cfg.Topology.ClientDomains() {
		for _, rd := range cfg.Topology.ResourceDomains() {
			for act := range rd.Supported {
				if err := t.table.Set(cd.ID, rd.ID, act, cfg.InitialTrust); err != nil {
					return nil, err
				}
			}
		}
	}

	// Figure 1: monitoring agents share the transaction stream, feed the
	// engine, and push committed trust revisions into the table.
	update := t.applyTrustUpdate
	for i := 0; i < cfg.Agents; i++ {
		agent, err := trust.NewAgent(fmt.Sprintf("agent-%d", i), model, t.txCh, update)
		if err != nil {
			return nil, err
		}
		t.agents = append(t.agents, agent)
		t.wg.Add(1)
		go func() {
			defer t.wg.Done()
			agent.Run()
		}()
	}
	return t, nil
}

// entity naming: trust-engine entities are domains, matching the paper's
// CD/RD-granularity trust ("resources and clients within a GD inherit the
// parameters associated with the RD and CD").
func cdEntity(id grid.DomainID) trust.EntityID {
	return trust.EntityID(fmt.Sprintf("cd:%d", id))
}

func rdEntity(id grid.DomainID) trust.EntityID {
	return trust.EntityID(fmt.Sprintf("rd:%d", id))
}

func activityContext(a grid.Activity) trust.Context {
	return trust.Context(a.String())
}

// applyTrustUpdate is the agents' table hook: quantise the fresh Γ score
// onto the discrete scale and update the table if the level changed.
// Entities that are not a cd→rd pair (or contexts that are not activities)
// are ignored; the engine may track them but the table cannot.
func (t *TRMS) applyTrustUpdate(x, y trust.EntityID, c trust.Context, score float64) {
	var cd, rd grid.DomainID
	if _, err := fmt.Sscanf(string(x), "cd:%d", &cd); err != nil {
		return
	}
	if _, err := fmt.Sscanf(string(y), "rd:%d", &rd); err != nil {
		return
	}
	act, ok := activityByName(string(c))
	if !ok {
		return
	}
	level := grid.LevelFromScore(score)
	if !level.Offerable() {
		level = grid.MaxOfferable // F quantises down: F is requirable only
	}
	if cur, exists := t.table.Get(cd, rd, act); exists && cur == level {
		return // "if the new trust values ... are different ... update"
	}
	_ = t.table.Set(cd, rd, act, level)
}

// activityByName inverts grid.Activity.String for the built-in vocabulary.
func activityByName(name string) (grid.Activity, bool) {
	for a := grid.Activity(0); a < grid.NumBuiltinActivities; a++ {
		if a.String() == name {
			return a, true
		}
	}
	return 0, false
}

// SetOTLFuser installs an OTL fusion hook (e.g. a fleet claims overlay).
// Call it once, before the TRMS takes traffic: Submit reads the hook
// without synchronisation, relying on the happens-before edge of
// starting the serving goroutines afterwards.
func (t *TRMS) SetOTLFuser(f OTLFuser) { t.fuser = f }

// Table exposes the live trust-level table (read it, snapshot it; direct
// writes are legal and mirror out-of-band administrative overrides).
func (t *TRMS) Table() *grid.TrustTable { return t.table }

// Engine exposes the underlying trust engine (the shared relationship
// store every model is backed by), e.g. to declare alliances or inject
// recommender factors.
func (t *TRMS) Engine() *trust.Engine { return t.model.UnderlyingEngine() }

// Model exposes the configured trust model.  Persistence must snapshot
// through the model, not the raw engine, so model-specific state (and the
// model stamp that guards replay) round-trips.
func (t *TRMS) Model() trust.Model { return t.model }

// Topology exposes the static grid structure the TRMS was built over.
func (t *TRMS) Topology() *grid.Topology { return t.cfg.Topology }

// Placed returns how many tasks have been placed.
func (t *TRMS) Placed() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.placed
}

// SchedulerState captures the mutable scheduler state — placement count
// and per-machine free times in topology machine order — for persistence.
func (t *TRMS) SchedulerState() (placed int, freeTime []float64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	ft := make([]float64, len(t.freeTime))
	copy(ft, t.freeTime)
	return t.placed, ft
}

// RestoreSchedulerState installs state captured by SchedulerState, e.g.
// when rebuilding a TRMS from a durability snapshot.  It replaces, not
// merges: call it on a fresh TRMS before submitting work.
func (t *TRMS) RestoreSchedulerState(placed int, freeTime []float64) error {
	if placed < 0 {
		return fmt.Errorf("core: negative placement count %d", placed)
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(freeTime) != len(t.freeTime) {
		return fmt.Errorf("core: restore has %d machine free times, topology has %d",
			len(freeTime), len(t.freeTime))
	}
	copy(t.freeTime, freeTime)
	t.placed = placed
	return nil
}

// RecoverPlacement replays one journalled placement: machine m (topology
// order) is busy until finish, and the placement counts.  Replay is
// order-insensitive — free time only ever advances — so records may be
// applied in any order after a snapshot restore.
func (t *TRMS) RecoverPlacement(m int, finish float64) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if m < 0 || m >= len(t.freeTime) {
		return fmt.Errorf("core: recovered placement on machine %d of %d", m, len(t.freeTime))
	}
	t.freeTime[m] = math.Max(t.freeTime[m], finish)
	t.placed++
	return nil
}

// Submit maps a task at time now and commits it to the chosen machine's
// queue.  The expected security cost is computed from the *current* trust
// table: ESC = EEC × (TC × weight)/100 with TC = ETS(max(task RTL, RD
// RTL), OTL) per Section 4.1.
func (t *TRMS) Submit(task Task, now float64) (*Placement, error) {
	machines := t.cfg.Topology.Machines()
	if len(task.EEC) != len(machines) {
		return nil, fmt.Errorf("core: task has %d EEC entries for %d machines",
			len(task.EEC), len(machines))
	}
	if len(task.ToA.Activities) == 0 {
		return nil, fmt.Errorf("core: task has an empty ToA")
	}
	if !task.RTL.Valid() {
		return nil, fmt.Errorf("core: task RTL %v invalid", task.RTL)
	}
	cd, err := t.cfg.Topology.ClientCD(task.Client)
	if err != nil {
		return nil, err
	}

	// Build the 1×M scheduling instance against a consistent table
	// snapshot.
	snap := t.table.Snapshot()
	tcs := make([]int, len(machines))
	otls := make([]grid.TrustLevel, len(machines))
	eligible := false
	for m, machine := range machines {
		rd, err := t.cfg.Topology.MachineRD(machine.ID)
		if err != nil {
			return nil, err
		}
		if !rd.Supports(task.ToA) {
			tcs[m] = -1 // ineligible marker
			continue
		}
		otl, err := snap.OTL(cd.ID, rd.ID, task.ToA)
		if err != nil {
			return nil, err
		}
		if t.fuser != nil {
			otl = t.fuser.FuseOTL(cd.ID, rd.ID, task.ToA, otl)
		}
		tc, err := grid.TrustCostWith(t.cfg.ETSRule, task.RTL, rd.RTL, otl)
		if err != nil {
			return nil, err
		}
		tcs[m], otls[m] = tc, otl
		eligible = true
	}
	if !eligible {
		return nil, fmt.Errorf("core: no resource domain supports ToA %v", task.ToA)
	}

	costs := &submitCosts{eec: task.EEC, tc: tcs}

	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return nil, fmt.Errorf("core: TRMS is closed")
	}
	avail := t.currentAvail(now)
	asg, err := t.cfg.Heuristic.AssignOne(costs, t.policy, 0, avail)
	if err != nil {
		return nil, err
	}
	m := asg.Machine
	if tcs[m] < 0 {
		return nil, fmt.Errorf("core: heuristic chose ineligible machine %d", m)
	}
	machine := machines[m]
	rd, err := t.cfg.Topology.MachineRD(machine.ID)
	if err != nil {
		return nil, err
	}
	eec := task.EEC[m]
	esc := t.policy.ChargedESC(eec, tcs[m])
	start := avail[m]
	finish := start + eec + esc
	t.freeTime[m] = finish
	t.placed++
	return &Placement{
		Machine:    machine,
		MachineIdx: m,
		RD:         rd.ID,
		CD:         cd.ID,
		OTL:        otls[m],
		TC:         tcs[m],
		EEC:        eec,
		ESC:        esc,
		ECC:        eec + esc,
		Start:      start,
		Finish:     finish,
	}, nil
}

// currentAvail fills the reusable availability buffer from the machine
// free times at time now.  Callers must hold t.mu; the buffer is valid
// until the next locked mapping event.
func (t *TRMS) currentAvail(now float64) []float64 {
	for m, ft := range t.freeTime {
		t.availBuf[m] = math.Max(ft, now)
	}
	return t.availBuf
}

// submitCosts is the single-task scheduling instance Submit hands to the
// heuristic.  Ineligible machines (tc == -1) carry an infinite EEC so no
// sane heuristic selects them.
type submitCosts struct {
	eec []float64
	tc  []int
}

func (c *submitCosts) NumRequests() int { return 1 }
func (c *submitCosts) NumMachines() int { return len(c.eec) }
func (c *submitCosts) EEC(_, m int) float64 {
	if c.tc[m] < 0 {
		return math.Inf(1)
	}
	return c.eec[m]
}
func (c *submitCosts) TrustCost(_, m int) (int, error) {
	if c.tc[m] < 0 {
		return 0, nil
	}
	return c.tc[m], nil
}

// ReportOutcome feeds the observed behaviour of a completed placement back
// into the trust fabric: one transaction per activity of the ToA, from the
// client's domain about the resource's domain.  outcome is on the [1,6]
// scale.  The table update happens asynchronously via the agents; callers
// needing a synchronous view can Drain first.
func (t *TRMS) ReportOutcome(p *Placement, toa grid.ToA, outcome, now float64) error {
	if p == nil {
		return fmt.Errorf("core: nil placement")
	}
	if outcome < trust.MinScore || outcome > trust.MaxScore {
		return fmt.Errorf("core: outcome %g outside [%g,%g]", outcome, trust.MinScore, trust.MaxScore)
	}
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return fmt.Errorf("core: TRMS is closed")
	}
	t.mu.Unlock()
	for _, act := range toa.Activities {
		t.mu.Lock()
		t.reported++
		t.mu.Unlock()
		t.txCh <- trust.Transaction{
			From:    cdEntity(p.CD),
			To:      rdEntity(p.RD),
			Ctx:     activityContext(act),
			Outcome: outcome,
			Now:     now,
		}
	}
	return nil
}

// Close stops the monitoring agents after draining queued transactions.
// Close is idempotent.
func (t *TRMS) Close() {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return
	}
	t.closed = true
	t.mu.Unlock()
	close(t.txCh)
	t.wg.Wait()
}

// Drain blocks until every transaction reported so far has been processed
// by the agents.  Concurrent ReportOutcome calls extend the wait.
func (t *TRMS) Drain() {
	for {
		t.mu.Lock()
		want := t.reported
		t.mu.Unlock()
		got, _, _ := t.AgentStats()
		if got >= want {
			return
		}
		runtime.Gosched()
	}
}

// RestoreAgentStats seeds the cumulative agent counters from a
// durability snapshot, so a restarted daemon reports the same lifetime
// totals its predecessor acknowledged.  The restored count also enters
// the Drain ledger, keeping "reported vs processed" consistent.  Call
// it on a fresh TRMS before it takes traffic.
func (t *TRMS) RestoreAgentStats(processed, committed, rejected int) error {
	if processed < 0 || committed < 0 || rejected < 0 {
		return fmt.Errorf("core: negative agent stats %d/%d/%d", processed, committed, rejected)
	}
	if committed+rejected > processed {
		return fmt.Errorf("core: agent stats %d committed + %d rejected exceed %d processed",
			committed, rejected, processed)
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.baseProcessed = processed
	t.baseCommitted = committed
	t.baseRejected = rejected
	t.reported += processed
	return nil
}

// AgentStats sums processed/committed/rejected across the agents, on
// top of any snapshot-restored base counts.
func (t *TRMS) AgentStats() (processed, committed, rejected int) {
	t.mu.Lock()
	processed, committed, rejected = t.baseProcessed, t.baseCommitted, t.baseRejected
	t.mu.Unlock()
	for _, a := range t.agents {
		p, c, r := a.Stats()
		processed += p
		committed += c
		rejected += r
	}
	return
}
