package core

import (
	"fmt"
	"math"

	"gridtrust/internal/grid"
	"gridtrust/internal/sched"
)

// SubmitBatch maps a meta-request of tasks atomically with a batch-mode
// heuristic (Min-min, Sufferage, ...), mirroring the paper's batch TRM
// algorithms at the TRMS level: all tasks see the same trust-table
// snapshot and the same starting availability, and the whole batch commits
// or none of it does.
func (t *TRMS) SubmitBatch(tasks []Task, h sched.Batch, now float64) ([]*Placement, error) {
	if h == nil {
		return nil, fmt.Errorf("core: nil batch heuristic")
	}
	if len(tasks) == 0 {
		return nil, fmt.Errorf("core: empty batch")
	}
	machines := t.cfg.Topology.Machines()
	nm := len(machines)

	// Resolve per-task trust costs against one table snapshot.
	snap := t.table.Snapshot()
	eec := make([][]float64, len(tasks))
	tcs := make([][]int, len(tasks))
	otls := make([][]grid.TrustLevel, len(tasks))
	cds := make([]grid.DomainID, len(tasks))
	for i, task := range tasks {
		if len(task.EEC) != nm {
			return nil, fmt.Errorf("core: batch task %d has %d EEC entries for %d machines",
				i, len(task.EEC), nm)
		}
		if len(task.ToA.Activities) == 0 {
			return nil, fmt.Errorf("core: batch task %d has an empty ToA", i)
		}
		if !task.RTL.Valid() {
			return nil, fmt.Errorf("core: batch task %d RTL %v invalid", i, task.RTL)
		}
		cd, err := t.cfg.Topology.ClientCD(task.Client)
		if err != nil {
			return nil, fmt.Errorf("core: batch task %d: %w", i, err)
		}
		cds[i] = cd.ID
		eec[i] = make([]float64, nm)
		tcs[i] = make([]int, nm)
		otls[i] = make([]grid.TrustLevel, nm)
		eligible := false
		for m, machine := range machines {
			rd, err := t.cfg.Topology.MachineRD(machine.ID)
			if err != nil {
				return nil, err
			}
			if !rd.Supports(task.ToA) {
				eec[i][m] = math.Inf(1)
				tcs[i][m] = -1
				continue
			}
			otl, err := snap.OTL(cd.ID, rd.ID, task.ToA)
			if err != nil {
				return nil, err
			}
			tc, err := grid.TrustCostWith(t.cfg.ETSRule, task.RTL, rd.RTL, otl)
			if err != nil {
				return nil, err
			}
			eec[i][m] = task.EEC[m]
			tcs[i][m] = tc
			otls[i][m] = otl
			eligible = true
		}
		if !eligible {
			return nil, fmt.Errorf("core: batch task %d: no resource domain supports ToA %v", i, task.ToA)
		}
	}

	costs := &batchCosts{eec: eec, tc: tcs}
	reqs := make([]int, len(tasks))
	for i := range reqs {
		reqs[i] = i
	}

	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return nil, fmt.Errorf("core: TRMS is closed")
	}
	avail := t.currentAvail(now)
	// Reuse the TRMS schedule buffer across batch events when the
	// heuristic supports allocation-free mapping.
	var as []sched.Assignment
	var err error
	if bi, ok := h.(sched.BatchInto); ok {
		as, err = bi.AssignBatchInto(costs, t.policy, reqs, avail, t.asgBuf[:0])
		t.asgBuf = as[:0]
	} else {
		as, err = h.AssignBatch(costs, t.policy, reqs, avail)
	}
	if err != nil {
		return nil, err
	}
	if len(as) != len(tasks) {
		return nil, fmt.Errorf("core: heuristic mapped %d of %d batch tasks", len(as), len(tasks))
	}
	// Validate before committing anything.
	for _, a := range as {
		if tcs[a.Req][a.Machine] < 0 {
			return nil, fmt.Errorf("core: heuristic placed batch task %d on ineligible machine %d",
				a.Req, a.Machine)
		}
	}
	placements := make([]*Placement, len(tasks))
	for _, a := range as {
		i, m := a.Req, a.Machine
		machine := machines[m]
		rd, err := t.cfg.Topology.MachineRD(machine.ID)
		if err != nil {
			return nil, err
		}
		e := eec[i][m]
		esc := t.policy.ChargedESC(e, tcs[i][m])
		start := math.Max(t.freeTime[m], now)
		finish := start + e + esc
		t.freeTime[m] = finish
		t.placed++
		placements[i] = &Placement{
			Machine: machine,
			RD:      rd.ID,
			CD:      cds[i],
			OTL:     otls[i][m],
			TC:      tcs[i][m],
			EEC:     e,
			ESC:     esc,
			ECC:     e + esc,
			Start:   start,
			Finish:  finish,
		}
	}
	return placements, nil
}

// batchCosts is the multi-task instance SubmitBatch hands the heuristic.
type batchCosts struct {
	eec [][]float64
	tc  [][]int
}

func (c *batchCosts) NumRequests() int     { return len(c.eec) }
func (c *batchCosts) NumMachines() int     { return len(c.eec[0]) }
func (c *batchCosts) EEC(r, m int) float64 { return c.eec[r][m] }
func (c *batchCosts) TrustCost(r, m int) (int, error) {
	if c.tc[r][m] < 0 {
		return 0, nil
	}
	return c.tc[r][m], nil
}
