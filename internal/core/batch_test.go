package core

import (
	"testing"

	"gridtrust/internal/grid"
	"gridtrust/internal/sched"
)

func batchTasks(n int, eec ...float64) []Task {
	tasks := make([]Task, n)
	for i := range tasks {
		cp := make([]float64, len(eec))
		copy(cp, eec)
		tasks[i] = Task{
			Client: 0,
			ToA:    grid.MustToA(grid.ActCompute),
			RTL:    grid.LevelA,
			EEC:    cp,
		}
	}
	return tasks
}

func TestSubmitBatchMapsEveryTask(t *testing.T) {
	trms := newTRMS(t, Config{Topology: twoDomainTopology(t)})
	tasks := batchTasks(6, 10, 12)
	ps, err := trms.SubmitBatch(tasks, sched.MinMin{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(ps) != 6 {
		t.Fatalf("placements = %d", len(ps))
	}
	usage := map[grid.MachineID]int{}
	for i, p := range ps {
		if p == nil {
			t.Fatalf("placement %d missing", i)
		}
		usage[p.Machine.ID]++
		if p.Finish <= p.Start {
			t.Fatalf("placement %d timing %+v", i, p)
		}
	}
	// Min-min over equal tasks on two machines must use both.
	if len(usage) != 2 {
		t.Fatalf("batch crowded one machine: %v", usage)
	}
	if trms.Placed() != 6 {
		t.Fatalf("placed = %d", trms.Placed())
	}
}

func TestSubmitBatchSequencesPerMachine(t *testing.T) {
	trms := newTRMS(t, Config{Topology: twoDomainTopology(t)})
	ps, err := trms.SubmitBatch(batchTasks(4, 10, 10), sched.Sufferage{}, 5)
	if err != nil {
		t.Fatal(err)
	}
	// Per machine, placements must not overlap and must start at or
	// after the batch time.
	last := map[grid.MachineID]float64{}
	for _, p := range ps {
		if p.Start < 5 {
			t.Fatalf("placement started before batch time: %+v", p)
		}
		if p.Start < last[p.Machine.ID] {
			t.Fatalf("overlapping placements on machine %d", p.Machine.ID)
		}
		last[p.Machine.ID] = p.Finish
	}
}

func TestSubmitBatchTrustAware(t *testing.T) {
	trms := newTRMS(t, Config{Topology: twoDomainTopology(t)})
	// RD 1 offers E for compute; RD 0 stays at the default C.
	if err := trms.Table().Set(0, 1, grid.ActCompute, grid.LevelE); err != nil {
		t.Fatal(err)
	}
	tasks := batchTasks(4, 100, 100)
	for i := range tasks {
		tasks[i].RTL = grid.LevelE
	}
	ps, err := trms.SubmitBatch(tasks, sched.MinMin{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Machine 1 (RD 1) carries TC 0 vs machine 0's TC 2 (+30%): the
	// batch should lean on machine 1.
	m1 := 0
	for _, p := range ps {
		if p.Machine.ID == 1 {
			m1++
			if p.TC != 0 {
				t.Fatalf("machine 1 placement TC = %d", p.TC)
			}
		}
	}
	if m1 < 2 {
		t.Fatalf("trusted machine got only %d of 4 batch tasks", m1)
	}
}

func TestSubmitBatchValidation(t *testing.T) {
	trms := newTRMS(t, Config{Topology: twoDomainTopology(t)})
	if _, err := trms.SubmitBatch(nil, sched.MinMin{}, 0); err == nil {
		t.Error("empty batch accepted")
	}
	if _, err := trms.SubmitBatch(batchTasks(1, 10, 12), nil, 0); err == nil {
		t.Error("nil heuristic accepted")
	}
	bad := batchTasks(2, 10, 12)
	bad[1].EEC = []float64{1}
	if _, err := trms.SubmitBatch(bad, sched.MinMin{}, 0); err == nil {
		t.Error("short EEC accepted")
	}
	bad = batchTasks(1, 10, 12)
	bad[0].ToA = grid.MustToA(grid.ActNetwork) // unsupported
	if _, err := trms.SubmitBatch(bad, sched.MinMin{}, 0); err == nil {
		t.Error("unsupported ToA accepted")
	}
	bad = batchTasks(1, 10, 12)
	bad[0].Client = 99
	if _, err := trms.SubmitBatch(bad, sched.MinMin{}, 0); err == nil {
		t.Error("unknown client accepted")
	}
	bad = batchTasks(1, 10, 12)
	bad[0].RTL = grid.LevelNone
	if _, err := trms.SubmitBatch(bad, sched.MinMin{}, 0); err == nil {
		t.Error("invalid RTL accepted")
	}
}

func TestSubmitBatchAfterClose(t *testing.T) {
	trms, err := New(Config{Topology: twoDomainTopology(t)})
	if err != nil {
		t.Fatal(err)
	}
	trms.Close()
	if _, err := trms.SubmitBatch(batchTasks(1, 10, 12), sched.MinMin{}, 0); err == nil {
		t.Fatal("closed TRMS accepted a batch")
	}
}

func TestSubmitBatchThenImmediateShareAvailability(t *testing.T) {
	trms := newTRMS(t, Config{Topology: twoDomainTopology(t)})
	if _, err := trms.SubmitBatch(batchTasks(2, 100, 100), sched.MinMin{}, 0); err != nil {
		t.Fatal(err)
	}
	// Both machines are busy until ~100; an immediate submit at t=0
	// must queue behind the batch.
	p, err := trms.Submit(batchTasks(1, 10, 10)[0], 0)
	if err != nil {
		t.Fatal(err)
	}
	if p.Start < 100 {
		t.Fatalf("immediate submit ignored batch backlog: start %g", p.Start)
	}
}
