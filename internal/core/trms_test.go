package core

import (
	"sync"
	"testing"

	"gridtrust/internal/grid"
	"gridtrust/internal/sched"
	"gridtrust/internal/trust"
)

// twoDomainTopology builds two GDs: GD0 has clients and one machine, GD1
// has one machine.  Both RDs support compute and storage.
func twoDomainTopology(t *testing.T) *grid.Topology {
	t.Helper()
	mkRD := func(id grid.DomainID, rtl grid.TrustLevel) *grid.ResourceDomain {
		return &grid.ResourceDomain{
			ID:    id,
			Owner: "org",
			Supported: map[grid.Activity]grid.TrustLevel{
				grid.ActCompute: grid.LevelC,
				grid.ActStorage: grid.LevelC,
			},
			RTL: rtl,
			Machines: []*grid.Machine{
				{ID: grid.MachineID(id), Name: "m", RD: id},
			},
		}
	}
	gd0 := &grid.GridDomain{
		ID: 0, Name: "gd0", Owner: "org",
		RD: mkRD(0, grid.LevelA),
		CD: &grid.ClientDomain{
			ID:     0,
			Owner:  "org",
			Sought: map[grid.Activity]grid.TrustLevel{grid.ActCompute: grid.LevelC},
			RTL:    grid.LevelA,
			Clients: []*grid.Client{
				{ID: 0, Name: "c0", CD: 0},
			},
		},
	}
	gd1 := &grid.GridDomain{
		ID: 1, Name: "gd1", Owner: "org2",
		RD: mkRD(1, grid.LevelA),
	}
	top, err := grid.NewTopology(gd0, gd1)
	if err != nil {
		t.Fatal(err)
	}
	return top
}

func newTRMS(t *testing.T, cfg Config) *TRMS {
	t.Helper()
	trms, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(trms.Close)
	return trms
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("accepted nil topology")
	}
	top := twoDomainTopology(t)
	if _, err := New(Config{Topology: top, InitialTrust: grid.LevelF}); err == nil {
		t.Error("accepted non-offerable initial trust")
	}
	if _, err := New(Config{Topology: top, Agents: -1}); err == nil {
		t.Error("accepted negative agents")
	}
	if _, err := New(Config{Topology: top, ETSRule: grid.ETSRule(9)}); err == nil {
		t.Error("accepted invalid ETS rule")
	}
	if _, err := New(Config{Topology: top, TCWeight: -3}); err == nil {
		t.Error("accepted negative TC weight")
	}
}

func TestSubmitBasicPlacement(t *testing.T) {
	trms := newTRMS(t, Config{Topology: twoDomainTopology(t)})
	task := Task{
		Client: 0,
		ToA:    grid.MustToA(grid.ActCompute),
		RTL:    grid.LevelA,
		EEC:    []float64{10, 20},
	}
	p, err := trms.Submit(task, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Both RDs offer C >= required A: TC = 0 everywhere, so MCT picks
	// the faster machine 0.
	if p.Machine.ID != 0 || p.TC != 0 || p.ESC != 0 {
		t.Fatalf("placement %+v, want machine 0 with zero trust cost", p)
	}
	if p.Finish != 10 || p.Start != 0 {
		t.Fatalf("timing %+v", p)
	}
	if trms.Placed() != 1 {
		t.Fatal("placed counter wrong")
	}
	// Second identical task: machine 0 is busy until 10; 10+10=20 vs
	// 0+20=20 tie -> machine 0 (lower index).
	p2, err := trms.Submit(task, 0)
	if err != nil {
		t.Fatal(err)
	}
	if p2.Start != 10 && p2.Machine.ID != 1 {
		t.Fatalf("second placement %+v ignored queueing", p2)
	}
}

func TestSubmitValidation(t *testing.T) {
	trms := newTRMS(t, Config{Topology: twoDomainTopology(t)})
	base := Task{Client: 0, ToA: grid.MustToA(grid.ActCompute), RTL: grid.LevelA, EEC: []float64{1, 2}}
	bad := base
	bad.EEC = []float64{1}
	if _, err := trms.Submit(bad, 0); err == nil {
		t.Error("accepted wrong EEC length")
	}
	bad = base
	bad.ToA = grid.ToA{}
	if _, err := trms.Submit(bad, 0); err == nil {
		t.Error("accepted empty ToA")
	}
	bad = base
	bad.RTL = grid.LevelNone
	if _, err := trms.Submit(bad, 0); err == nil {
		t.Error("accepted invalid RTL")
	}
	bad = base
	bad.Client = 99
	if _, err := trms.Submit(bad, 0); err == nil {
		t.Error("accepted unknown client")
	}
	bad = base
	bad.ToA = grid.MustToA(grid.ActNetwork) // unsupported everywhere
	if _, err := trms.Submit(bad, 0); err == nil {
		t.Error("accepted unsupported ToA")
	}
}

func TestTrustCostInfluencesPlacement(t *testing.T) {
	// Requiring level E with the default C table means TC = 2 on both
	// machines (ETS(E, C) = 2).  Raise RD 1's offered trust to E via a
	// direct table write: the scheduler should now prefer machine 1 even
	// though it is slower, when the trust saving outweighs speed.
	trms := newTRMS(t, Config{Topology: twoDomainTopology(t)})
	if err := trms.Table().Set(0, 1, grid.ActCompute, grid.LevelE); err != nil {
		t.Fatal(err)
	}
	task := Task{
		Client: 0,
		ToA:    grid.MustToA(grid.ActCompute),
		RTL:    grid.LevelE,
		EEC:    []float64{100, 105},
	}
	p, err := trms.Submit(task, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Machine 0: 100 * (1 + 0.15*2) = 130.  Machine 1: 105 * 1 = 105.
	if p.Machine.ID != 1 {
		t.Fatalf("placement chose machine %d; trust table ignored", p.Machine.ID)
	}
	if p.TC != 0 || p.ECC != 105 {
		t.Fatalf("placement costs %+v", p)
	}
}

// TestFigure1Architecture exercises the full closed loop of Figure 1:
// schedule → execute → report outcome → agents update the trust table →
// later schedules shift.
func TestFigure1Architecture(t *testing.T) {
	trms := newTRMS(t, Config{
		Topology: twoDomainTopology(t),
		Trust:    trust.Config{Alpha: 1, Beta: 0, Smoothing: 1},
	})
	task := Task{
		Client: 0,
		ToA:    grid.MustToA(grid.ActCompute),
		RTL:    grid.LevelE,
		EEC:    []float64{100, 100},
	}
	// Initially both RDs offer C: TC = ETS(E,C) = 2 on both; MCT picks
	// machine 0.
	p, err := trms.Submit(task, 0)
	if err != nil {
		t.Fatal(err)
	}
	if p.Machine.ID != 0 || p.TC != 2 {
		t.Fatalf("initial placement %+v", p)
	}

	// The interaction goes extremely well: outcome 6 (level F region,
	// quantised to offerable E).  Report it repeatedly so the EWMA-free
	// (smoothing=1) engine jumps immediately.
	if err := trms.ReportOutcome(p, task.ToA, 6, 1); err != nil {
		t.Fatal(err)
	}
	trms.Drain()

	tl, ok := trms.Table().Get(0, 0, grid.ActCompute)
	if !ok {
		t.Fatal("table entry vanished")
	}
	if tl != grid.LevelE {
		t.Fatalf("table entry = %v after glowing outcome, want E", tl)
	}

	// A new task at a much later time, machines idle: RD0 now offers E
	// (TC 0), RD1 still C (TC 2).  MCT must choose machine 0 every time.
	p2, err := trms.Submit(task, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if p2.Machine.ID != 0 || p2.TC != 0 {
		t.Fatalf("post-update placement %+v, want machine 0 with TC 0", p2)
	}

	processed, committed, rejected := trms.AgentStats()
	if processed == 0 || committed == 0 || rejected != 0 {
		t.Fatalf("agent stats %d/%d/%d", processed, committed, rejected)
	}
}

func TestBadOutcomeLowersTrust(t *testing.T) {
	trms := newTRMS(t, Config{
		Topology: twoDomainTopology(t),
		Trust:    trust.Config{Alpha: 1, Beta: 0, Smoothing: 1},
	})
	task := Task{
		Client: 0,
		ToA:    grid.MustToA(grid.ActCompute),
		RTL:    grid.LevelC,
		EEC:    []float64{100, 100},
	}
	p, err := trms.Submit(task, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := trms.ReportOutcome(p, task.ToA, 1, 1); err != nil { // terrible
		t.Fatal(err)
	}
	trms.Drain()
	tl, _ := trms.Table().Get(0, p.RD, grid.ActCompute)
	if tl >= grid.LevelC {
		t.Fatalf("trust did not fall after bad outcome: %v", tl)
	}
}

func TestReportOutcomeValidation(t *testing.T) {
	trms := newTRMS(t, Config{Topology: twoDomainTopology(t)})
	if err := trms.ReportOutcome(nil, grid.MustToA(grid.ActCompute), 3, 0); err == nil {
		t.Error("accepted nil placement")
	}
	p := &Placement{CD: 0, RD: 0}
	if err := trms.ReportOutcome(p, grid.MustToA(grid.ActCompute), 9, 0); err == nil {
		t.Error("accepted off-scale outcome")
	}
}

func TestCloseIdempotentAndRejects(t *testing.T) {
	trms, err := New(Config{Topology: twoDomainTopology(t)})
	if err != nil {
		t.Fatal(err)
	}
	trms.Close()
	trms.Close() // must not panic
	task := Task{Client: 0, ToA: grid.MustToA(grid.ActCompute), RTL: grid.LevelA, EEC: []float64{1, 2}}
	if _, err := trms.Submit(task, 0); err == nil {
		t.Error("closed TRMS accepted a task")
	}
	if err := trms.ReportOutcome(&Placement{}, task.ToA, 3, 0); err == nil {
		t.Error("closed TRMS accepted an outcome")
	}
}

func TestConcurrentSubmitAndReport(t *testing.T) {
	trms := newTRMS(t, Config{Topology: twoDomainTopology(t), Agents: 4})
	task := Task{Client: 0, ToA: grid.MustToA(grid.ActCompute), RTL: grid.LevelC, EEC: []float64{5, 7}}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				p, err := trms.Submit(task, float64(i))
				if err != nil {
					t.Error(err)
					return
				}
				if err := trms.ReportOutcome(p, task.ToA, 4, float64(i)); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	trms.Drain()
	if trms.Placed() != 400 {
		t.Fatalf("placed %d, want 400", trms.Placed())
	}
	processed, _, rejected := trms.AgentStats()
	if processed != 400 || rejected != 0 {
		t.Fatalf("agents processed %d (rejected %d), want 400/0", processed, rejected)
	}
}

func TestCustomHeuristic(t *testing.T) {
	// OLB ignores cost: with machine 0 busy it must pick machine 1.
	trms := newTRMS(t, Config{Topology: twoDomainTopology(t), Heuristic: sched.OLB{}})
	task := Task{Client: 0, ToA: grid.MustToA(grid.ActCompute), RTL: grid.LevelA, EEC: []float64{1, 1000}}
	if _, err := trms.Submit(task, 0); err != nil {
		t.Fatal(err)
	}
	p, err := trms.Submit(task, 0)
	if err != nil {
		t.Fatal(err)
	}
	if p.Machine.ID != 1 {
		t.Fatalf("OLB placement %+v, want machine 1", p)
	}
}

func TestSchedulerStateRoundTrip(t *testing.T) {
	trms := newTRMS(t, Config{Topology: twoDomainTopology(t)})
	task := Task{Client: 0, ToA: grid.MustToA(grid.ActCompute), RTL: grid.LevelA, EEC: []float64{10, 20}}
	p, err := trms.Submit(task, 0)
	if err != nil {
		t.Fatal(err)
	}
	placed, freeTime := trms.SchedulerState()
	if placed != 1 || freeTime[p.MachineIdx] != p.Finish {
		t.Fatalf("state %d %v, want 1 placement finishing at %g", placed, freeTime, p.Finish)
	}
	// Mutating the returned slice must not touch the live TRMS.
	freeTime[0] = 999
	_, again := trms.SchedulerState()
	if again[0] == 999 {
		t.Fatal("SchedulerState aliases internal state")
	}

	fresh := newTRMS(t, Config{Topology: twoDomainTopology(t)})
	if err := fresh.RestoreSchedulerState(placed, []float64{p.Finish, 0}); err != nil {
		t.Fatal(err)
	}
	if fresh.Placed() != 1 {
		t.Fatal("restore lost the placement count")
	}
	// The restored machine queue must shape the next placement exactly as
	// on the original: machine 0 is busy until 10, so 10+10 vs 0+20 ties
	// and MCT keeps machine 0.
	pOrig, err := trms.Submit(task, 0)
	if err != nil {
		t.Fatal(err)
	}
	pRest, err := fresh.Submit(task, 0)
	if err != nil {
		t.Fatal(err)
	}
	if pOrig.MachineIdx != pRest.MachineIdx || pOrig.Start != pRest.Start || pOrig.Finish != pRest.Finish {
		t.Fatalf("restored TRMS diverged: %+v vs %+v", pOrig, pRest)
	}

	if err := fresh.RestoreSchedulerState(0, []float64{1}); err == nil {
		t.Fatal("RestoreSchedulerState accepted wrong machine count")
	}
	if err := fresh.RestoreSchedulerState(-1, []float64{0, 0}); err == nil {
		t.Fatal("RestoreSchedulerState accepted negative count")
	}
}

func TestRecoverPlacementIsOrderInsensitive(t *testing.T) {
	a := newTRMS(t, Config{Topology: twoDomainTopology(t)})
	b := newTRMS(t, Config{Topology: twoDomainTopology(t)})
	finishes := []float64{30, 10, 20}
	for _, f := range finishes {
		if err := a.RecoverPlacement(0, f); err != nil {
			t.Fatal(err)
		}
	}
	for i := len(finishes) - 1; i >= 0; i-- {
		if err := b.RecoverPlacement(0, finishes[i]); err != nil {
			t.Fatal(err)
		}
	}
	pa, fa := a.SchedulerState()
	pb, fb := b.SchedulerState()
	if pa != pb || fa[0] != fb[0] || fa[0] != 30 {
		t.Fatalf("replay order changed state: %d %v vs %d %v", pa, fa, pb, fb)
	}
	if err := a.RecoverPlacement(7, 1); err == nil {
		t.Fatal("RecoverPlacement accepted an out-of-range machine")
	}
}

func TestRestoreAgentStats(t *testing.T) {
	trms := newTRMS(t, Config{Topology: twoDomainTopology(t)})
	if err := trms.RestoreAgentStats(10, 7, 2); err != nil {
		t.Fatal(err)
	}
	p, c, r := trms.AgentStats()
	if p != 10 || c != 7 || r != 2 {
		t.Fatalf("restored stats %d/%d/%d, want 10/7/2", p, c, r)
	}
	// Drain must still wait for genuinely queued transactions: the base
	// count entered the reported ledger too, so one live report raises
	// the processed target past the base.
	task := Task{Client: 0, ToA: grid.MustToA(grid.ActCompute), RTL: grid.LevelA, EEC: []float64{10, 20}}
	pl, err := trms.Submit(task, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := trms.ReportOutcome(pl, task.ToA, 6, 1); err != nil {
		t.Fatal(err)
	}
	trms.Drain()
	p, _, r = trms.AgentStats()
	if p != 11 || r != 2 {
		t.Fatalf("stats after one live report %d/%d, want 11 processed, 2 rejected", p, r)
	}

	if err := trms.RestoreAgentStats(-1, 0, 0); err == nil {
		t.Fatal("accepted negative processed")
	}
	if err := trms.RestoreAgentStats(3, 2, 2); err == nil {
		t.Fatal("accepted committed+rejected > processed")
	}
}
