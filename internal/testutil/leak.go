// Package testutil holds small helpers shared by tests across the
// module.  Nothing here is imported by production code.
package testutil

import (
	"fmt"
	"runtime"
	"sort"
	"strings"
	"testing"
	"time"
)

// leakGrace is how long a leak check waits for goroutines to unwind
// before declaring them leaked.  Shutdown paths are asynchronous
// (handlers notice a closed listener, gossip loops notice a closed stop
// channel), so the check polls instead of snapshotting once.
const leakGrace = 5 * time.Second

// LeakCheck snapshots the set of live goroutines and returns a function
// that fails t if goroutines created after the snapshot are still
// running when it is called.  Use it around daemon-lifecycle tests:
//
//	check := testutil.LeakCheck(t)
//	defer check()
//	// ... start and stop servers, fleets, gossip loops ...
//
// A wedged gossip loop, a handler blocked on a dead connection, or a
// forgotten ticker all surface here with their full stack.  The check
// polls for up to leakGrace so legitimate asynchronous teardown does
// not flake it.
func LeakCheck(t testing.TB) func() {
	t.Helper()
	base := goroutineIDs()
	return func() {
		t.Helper()
		deadline := time.Now().Add(leakGrace)
		var leaked []string
		for {
			leaked = leakedSince(base)
			if len(leaked) == 0 {
				return
			}
			if time.Now().After(deadline) {
				break
			}
			time.Sleep(10 * time.Millisecond)
		}
		sort.Strings(leaked)
		t.Errorf("testutil: %d goroutine(s) leaked:\n\n%s",
			len(leaked), strings.Join(leaked, "\n\n"))
	}
}

// leakedSince returns the stacks of goroutines not in base and not on
// the ignore list.
func leakedSince(base map[string]bool) []string {
	var leaked []string
	for _, g := range goroutineStanzas() {
		id := stanzaID(g)
		if id == "" || base[id] || ignorable(g) {
			continue
		}
		leaked = append(leaked, g)
	}
	return leaked
}

// goroutineIDs returns the set of currently-live goroutine IDs.
func goroutineIDs(extra ...string) map[string]bool {
	ids := make(map[string]bool)
	for _, g := range goroutineStanzas() {
		if id := stanzaID(g); id != "" {
			ids[id] = true
		}
	}
	for _, id := range extra {
		ids[id] = true
	}
	return ids
}

// goroutineStanzas captures every goroutine's stack as one stanza each.
func goroutineStanzas() []string {
	buf := make([]byte, 1<<20)
	for {
		n := runtime.Stack(buf, true)
		if n < len(buf) {
			buf = buf[:n]
			break
		}
		buf = make([]byte, 2*len(buf))
	}
	return strings.Split(strings.TrimSpace(string(buf)), "\n\n")
}

// stanzaID extracts the "goroutine N" identity from a stack stanza.
func stanzaID(stanza string) string {
	var id int
	var state string
	if _, err := fmt.Sscanf(stanza, "goroutine %d [%s", &id, &state); err != nil {
		return ""
	}
	return fmt.Sprintf("g%d", id)
}

// ignorable reports goroutines the runtime or the testing framework
// owns — they outlive individual tests by design.
func ignorable(stanza string) bool {
	for _, frag := range []string{
		"created by runtime",
		"created by testing.",
		"testing.(*T).Run",
		"testing.(*F).Fuzz",
		"testing.runTests",
		"testing.tRunner",
		"os/signal.signal_recv",
		"runtime.goexit()\n\tgoroutine running on other thread",
	} {
		if strings.Contains(stanza, frag) {
			return true
		}
	}
	return false
}
