package fault

import (
	"testing"

	"gridtrust/internal/rng"
	"gridtrust/internal/stats"
)

func TestRunStudyDeterministic(t *testing.T) {
	cfg := StudyConfig{LiarFraction: 0.5, RWeighted: true, Rounds: 60}
	a, err := RunStudy(cfg, rng.New(11))
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunStudy(cfg, rng.New(11))
	if err != nil {
		t.Fatal(err)
	}
	if *a != *b {
		t.Fatalf("same seed diverged: %+v vs %+v", a, b)
	}
}

func TestRunStudyValidation(t *testing.T) {
	if _, err := RunStudy(StudyConfig{LiarFraction: 2}, rng.New(1)); err == nil {
		t.Fatal("liar fraction 2 must be rejected")
	}
	if _, err := RunStudy(StudyConfig{Resources: 1, Recommenders: 1, Rounds: 1}, rng.New(1)); err == nil {
		t.Fatal("single resource must be rejected")
	}
}

// TestRWeightedResistsCollusion is the subsystem's reason to exist: under
// a collusive lying majority, unweighted reputation collapses (the
// observer keeps placing on boosted bad resources) while the R-weighted
// observer audits the liars down to zero weight and keeps both its trust
// table and its placements close to the truth.
func TestRWeightedResistsCollusion(t *testing.T) {
	const reps = 5
	run := func(weighted bool) (te, bad, liarR stats.Running) {
		srcs := rng.Streams(2002, reps)
		for rep := 0; rep < reps; rep++ {
			r, err := RunStudy(StudyConfig{LiarFraction: 0.75, RWeighted: weighted}, srcs[rep])
			if err != nil {
				t.Fatal(err)
			}
			te.Add(r.TrustError)
			bad.Add(r.BadShare)
			liarR.Add(r.MeanLiarR)
		}
		return
	}
	uwTE, uwBad, uwR := run(false)
	wTE, wBad, wR := run(true)
	if uwR.Mean() != 1 {
		t.Fatalf("unweighted liar R = %g, want pinned 1", uwR.Mean())
	}
	if wR.Mean() > 0.2 {
		t.Fatalf("weighted liar R = %.2f, want audited below 0.2", wR.Mean())
	}
	if wTE.Mean() >= uwTE.Mean() {
		t.Fatalf("trust error: weighted %.2f !< unweighted %.2f", wTE.Mean(), uwTE.Mean())
	}
	if uwBad.Mean() < 0.5 {
		t.Fatalf("unweighted bad share %.2f: collusion should have collapsed placements", uwBad.Mean())
	}
	if wBad.Mean() > 0.3 {
		t.Fatalf("weighted bad share %.2f: defense failed", wBad.Mean())
	}
}

// TestStudyNoLiars checks the defense costs nothing when nobody lies:
// both variants track the truth.
func TestStudyNoLiars(t *testing.T) {
	for _, weighted := range []bool{false, true} {
		r, err := RunStudy(StudyConfig{RWeighted: weighted}, rng.New(5))
		if err != nil {
			t.Fatal(err)
		}
		if r.TrustError > 1.2 {
			t.Fatalf("weighted=%v: trust error %.2f without liars", weighted, r.TrustError)
		}
		if r.BadShare > 0.1 {
			t.Fatalf("weighted=%v: bad share %.2f without liars", weighted, r.BadShare)
		}
	}
}

// TestStudyOscillate smoke-checks the oscillating-resource variant: the
// adversaries still get caught, if more slowly.
func TestStudyOscillate(t *testing.T) {
	r, err := RunStudy(StudyConfig{LiarFraction: 0.5, RWeighted: true, Oscillate: true}, rng.New(9))
	if err != nil {
		t.Fatal(err)
	}
	if r.MeanLiarR > 0.3 {
		t.Fatalf("oscillating study left liar R at %.2f", r.MeanLiarR)
	}
}
