package fault

import (
	"math"
	"testing"

	"gridtrust/internal/rng"
)

func TestPlanValidate(t *testing.T) {
	cases := []struct {
		name string
		p    Plan
		ok   bool
	}{
		{"zero", Plan{}, true},
		{"churn", Plan{MTBF: 1000, MTTR: 100}, true},
		{"weibull", Plan{MTBF: 1000, MTTR: 100, UpShape: 2, DownShape: 0.5}, true},
		{"adversary", Plan{AdversaryFraction: 0.5}, true},
		{"churn without MTTR", Plan{MTBF: 1000}, false},
		{"negative MTBF", Plan{MTBF: -1, MTTR: 1}, false},
		{"negative shape", Plan{MTBF: 1, MTTR: 1, UpShape: -1}, false},
		{"fraction above 1", Plan{AdversaryFraction: 1.5}, false},
		{"negative requeues", Plan{MaxRequeues: -1}, false},
	}
	for _, tc := range cases {
		if err := tc.p.Validate(); (err == nil) != tc.ok {
			t.Errorf("%s: Validate() = %v, want ok=%v", tc.name, err, tc.ok)
		}
	}
}

func TestPlanActive(t *testing.T) {
	if (Plan{}).Active() {
		t.Fatal("zero plan must be inactive")
	}
	if !(Plan{MTBF: 10, MTTR: 1}).Active() || !(Plan{AdversaryFraction: 0.1}).Active() {
		t.Fatal("churn and adversary plans must be active")
	}
	if got := (Plan{}).RequeueCap(); got != DefaultMaxRequeues {
		t.Fatalf("default requeue cap = %d, want %d", got, DefaultMaxRequeues)
	}
	if got := (Plan{MaxRequeues: 3}).RequeueCap(); got != 3 {
		t.Fatalf("requeue cap = %d, want 3", got)
	}
}

func TestWeibullMean(t *testing.T) {
	// The inversion sampler must hit the requested mean for both the
	// exponential special case and true Weibull shapes.
	for _, shape := range []float64{0, 1, 0.7, 2, 3.5} {
		src := rng.New(7)
		const n = 200000
		sum := 0.0
		for i := 0; i < n; i++ {
			x := Weibull(src, 500, shape)
			if x < 0 || math.IsNaN(x) || math.IsInf(x, 0) {
				t.Fatalf("shape %g: bad draw %g", shape, x)
			}
			sum += x
		}
		mean := sum / n
		if math.Abs(mean-500) > 15 {
			t.Errorf("shape %g: sample mean %.1f, want ≈500", shape, mean)
		}
	}
}

func TestChurnDeterminism(t *testing.T) {
	p := Plan{MTBF: 1000, MTTR: 100, UpShape: 2, Seed: 99}
	a, err := NewChurn(p, 4)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewChurn(p, 4)
	if err != nil {
		t.Fatal(err)
	}
	// Wider grid: the same machines must see the same timelines — the
	// rng.Streams discipline makes machine m's draws a pure function of
	// (seed, m).
	c, err := NewChurn(p, 9)
	if err != nil {
		t.Fatal(err)
	}
	for m := 0; m < 4; m++ {
		for i := 0; i < 50; i++ {
			ua, ub, uc := a.UpTime(m), b.UpTime(m), c.UpTime(m)
			if ua != ub || ua != uc {
				t.Fatalf("machine %d draw %d: up times diverge (%g, %g, %g)", m, i, ua, ub, uc)
			}
			da, db, dc := a.DownTime(m), b.DownTime(m), c.DownTime(m)
			if da != db || da != dc {
				t.Fatalf("machine %d draw %d: down times diverge", m, i)
			}
		}
	}
}

func TestNewChurnRejectsBadPlans(t *testing.T) {
	if _, err := NewChurn(Plan{}, 4); err == nil {
		t.Fatal("churn-free plan must be rejected")
	}
	if _, err := NewChurn(Plan{MTBF: 10, MTTR: 1}, 0); err == nil {
		t.Fatal("zero machines must be rejected")
	}
}

func TestAdversarialRDs(t *testing.T) {
	p := Plan{AdversaryFraction: 0.5, Seed: 7}
	a := p.AdversarialRDs(100)
	b := p.AdversarialRDs(100)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("adversary selection not deterministic at %d", i)
		}
	}
	n := 0
	for _, adv := range a {
		if adv {
			n++
		}
	}
	if n < 30 || n > 70 {
		t.Fatalf("fraction 0.5 marked %d/100 adversarial", n)
	}
	for i, adv := range (Plan{Seed: 7}).AdversarialRDs(50) {
		if adv {
			t.Fatalf("fraction 0 marked rd %d adversarial", i)
		}
	}
	for i, adv := range (Plan{AdversaryFraction: 1, Seed: 7}).AdversarialRDs(50) {
		if !adv {
			t.Fatalf("fraction 1 left rd %d honest", i)
		}
	}
}

func TestOscillatorRecords(t *testing.T) {
	o := Oscillator{GoodRun: 3, BadRun: 2, IncidentProb: 1}
	recs, err := o.Records(rng.New(1), 10)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range recs {
		wantClean := i%5 < 3
		isClean := !r.SecurityIncident && r.ResultIntegrityOK && r.ActualDuration <= r.PromisedDuration
		if isClean != wantClean {
			t.Fatalf("record %d: clean=%v, want %v", i, isClean, wantClean)
		}
	}
	if _, err := (Oscillator{GoodRun: 0, BadRun: 1}).Records(rng.New(1), 5); err == nil {
		t.Fatal("zero good run must be rejected")
	}
}

func TestWhitewasherRecords(t *testing.T) {
	w := Whitewasher{CleanRun: 2, Period: 5, IncidentProb: 0}
	recs, err := w.Records(rng.New(1), 10)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range recs {
		wantClean := i%5 < 2
		isClean := r.ResultIntegrityOK && r.ActualDuration <= r.PromisedDuration
		if isClean != wantClean {
			t.Fatalf("record %d: clean=%v, want %v", i, isClean, wantClean)
		}
	}
	if _, err := (Whitewasher{CleanRun: 5, Period: 5}).Records(rng.New(1), 5); err == nil {
		t.Fatal("clean run >= period must be rejected")
	}
}
