package fault

import (
	"fmt"
	"math"

	"gridtrust/internal/behavior"
	"gridtrust/internal/rng"
	"gridtrust/internal/trust"
)

// The trust-model zoo: RunZoo pits any registered trust model against the
// adversary strategies of the literature in the same closed Figure 1 loop
// RunStudy uses for the paper's R factor.  Every model faces the same
// four environments —
//
//	lying-clique: a collusive recommender clique boosts the bad
//	    resources and badmouths the good ones;
//	whitewash:    the bad resources periodically shed their identity
//	    and re-register clean;
//	oscillate:    the bad resources build trust, milk it, rebuild;
//	churn:        resources crash and recover on Weibull timelines, and
//	    a placement on a down resource fails outright —
//
// and the same metrics come out (trust error against ground truth,
// placement-cost degradation against an omniscient oracle, bad-placement
// share), so `sweep -mode trustzoo` can rank the models head-to-head.
// Deterministic given (cfg, src): all entity iteration is index-ordered
// and every model honors the trust.Model determinism contract.

// ZooScenario names one adversary environment.
type ZooScenario string

// The four environments every model is scored under.
const (
	ZooClique    ZooScenario = "lying-clique"
	ZooWhitewash ZooScenario = "whitewash"
	ZooOscillate ZooScenario = "oscillate"
	ZooChurn     ZooScenario = "churn"
)

// ZooScenarios returns the environments in canonical report order.
func ZooScenarios() []ZooScenario {
	return []ZooScenario{ZooClique, ZooWhitewash, ZooOscillate, ZooChurn}
}

// Zoo phase constants: the whitewashers shed identity every
// zooWhitewashPeriod rounds; churn resources cycle on Weibull(shape
// zooChurnShape) up/down phases, with the bad population crashing an
// order of magnitude more often.
const (
	zooWhitewashPeriod = 25
	zooChurnShape      = 1.5
	zooBadMTBF         = 12.0
	zooGoodMTBF        = 120.0
	zooMTTR            = 8.0
)

// ZooConfig parameterises one model × scenario cell.  Zero-valued fields
// take the StudyConfig defaults; LiarFraction additionally defaults to
// 0.4 in the lying-clique scenario (a clique with no liars is no clique).
type ZooConfig struct {
	// Model is the trust-model registry name; empty selects the paper's
	// default engine.
	Model string
	// Scenario selects the adversary environment.
	Scenario ZooScenario

	Resources      int
	BadFraction    float64
	GoodDefectProb float64
	BadDefectProb  float64
	Recommenders   int
	LiarFraction   float64
	Rounds         int
	Alpha, Beta    float64
}

// withDefaults fills unset fields from the study defaults.
func (c ZooConfig) withDefaults() ZooConfig {
	s := StudyConfig{
		Resources: c.Resources, BadFraction: c.BadFraction,
		GoodDefectProb: c.GoodDefectProb, BadDefectProb: c.BadDefectProb,
		Recommenders: c.Recommenders, Rounds: c.Rounds,
		Alpha: c.Alpha, Beta: c.Beta,
	}.withDefaults()
	c.Resources, c.BadFraction = s.Resources, s.BadFraction
	c.GoodDefectProb, c.BadDefectProb = s.GoodDefectProb, s.BadDefectProb
	c.Recommenders, c.Rounds = s.Recommenders, s.Rounds
	c.Alpha, c.Beta = s.Alpha, s.Beta
	if c.Scenario == ZooClique && c.LiarFraction == 0 {
		c.LiarFraction = 0.4
	}
	return c
}

// Validate rejects unrunnable configurations.
func (c ZooConfig) Validate() error {
	if !trust.KnownModel(c.Model) {
		return fmt.Errorf("fault: zoo model %q not registered (have %v)", c.Model, trust.ModelNames())
	}
	switch c.Scenario {
	case ZooClique, ZooWhitewash, ZooOscillate, ZooChurn:
	default:
		return fmt.Errorf("fault: unknown zoo scenario %q", c.Scenario)
	}
	return StudyConfig{
		Resources: c.Resources, BadFraction: c.BadFraction,
		GoodDefectProb: c.GoodDefectProb, BadDefectProb: c.BadDefectProb,
		Recommenders: c.Recommenders, LiarFraction: c.LiarFraction,
		Rounds: c.Rounds,
	}.Validate()
}

// ZooResult reports one model's performance in one environment.
type ZooResult struct {
	// TrustError is the mean absolute error of the model's final Γ for
	// each resource's current identity versus its true expected behavior.
	TrustError float64
	// DegradationPct is the mean per-round placement cost as a percentage
	// above an oracle that always picks the best resource.
	DegradationPct float64
	// BadShare is the fraction of placements on misbehaving resources.
	BadShare float64
}

// zooState bundles one run's derived state.
type zooState struct {
	cfg    ZooConfig
	scorer *behavior.DefaultScorer
	src    *rng.Source

	trueScore []float64
	bad       []bool
	osc       Oscillator
	txCount   []int

	gen []int // whitewash: identity generation per resource

	// churn: per-resource phase machine over round time.
	chUp  []bool
	chEnd []float64

	failScore float64 // outcome of a transaction against a down resource
}

// resID names resource i's current identity; whitewashing bumps the
// generation so the model sees a stranger.
func (z *zooState) resID(i int) trust.EntityID {
	if z.gen[i] == 0 {
		return trust.EntityID(fmt.Sprintf("res:%d", i))
	}
	return trust.EntityID(fmt.Sprintf("res:%d#%d", i, z.gen[i]))
}

// churnAdvance rolls resource i's up/down phase machine forward to now,
// drawing fresh Weibull phase lengths as needed.
func (z *zooState) churnAdvance(i int, now float64) {
	for now >= z.chEnd[i] {
		mtbf := zooGoodMTBF
		if z.bad[i] {
			mtbf = zooBadMTBF
		}
		if z.chUp[i] {
			z.chUp[i] = false
			z.chEnd[i] += Weibull(z.src, zooMTTR, zooChurnShape)
		} else {
			z.chUp[i] = true
			z.chEnd[i] += Weibull(z.src, mtbf, zooChurnShape)
		}
	}
}

// drawOutcome samples resource i's true transaction outcome at round now
// under the configured scenario.
func (z *zooState) drawOutcome(i int, now float64) (float64, error) {
	z.txCount[i]++
	if z.cfg.Scenario == ZooChurn {
		z.churnAdvance(i, now)
		if !z.chUp[i] {
			return z.failScore, nil
		}
		if z.src.Float64() < z.cfg.GoodDefectProb {
			return z.scorer.Score(defectRecord(z.src, 0.5))
		}
		return z.scorer.Score(cleanRecord())
	}
	defect := false
	switch {
	case !z.bad[i]:
		defect = z.src.Float64() < z.cfg.GoodDefectProb
	case z.cfg.Scenario == ZooOscillate:
		defect = (z.txCount[i]-1)%(z.osc.GoodRun+z.osc.BadRun) >= z.osc.GoodRun
	default: // clique and whitewash populations defect persistently
		defect = z.src.Float64() < z.cfg.BadDefectProb
	}
	if defect {
		return z.scorer.Score(defectRecord(z.src, 0.5))
	}
	return z.scorer.Score(cleanRecord())
}

// RunZoo runs one model × scenario cell of the trust zoo: the closed
// observe → place → transact → audit loop of RunStudy, with the trust
// policy behind the Model interface and the adversary population drawn
// from the scenario.  The recommender audit (the R factor loop) is always
// on: every model receives the same recommender-quality signal and spends
// it according to its own aggregation rule.
func RunZoo(cfg ZooConfig, src *rng.Source) (*ZooResult, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	model, err := trust.NewModel(cfg.Model, trust.Config{
		Alpha: cfg.Alpha, Beta: cfg.Beta,
		InitialScore: (trust.MinScore + trust.MaxScore) / 2,
		PurgeBelow:   PurgeThreshold,
	})
	if err != nil {
		return nil, err
	}

	z := &zooState{
		cfg:       cfg,
		scorer:    behavior.MustDefaultScorer(),
		src:       src,
		trueScore: make([]float64, cfg.Resources),
		bad:       make([]bool, cfg.Resources),
		osc:       Oscillator{GoodRun: 8, BadRun: 8, IncidentProb: 0.5},
		txCount:   make([]int, cfg.Resources),
		gen:       make([]int, cfg.Resources),
		chUp:      make([]bool, cfg.Resources),
		chEnd:     make([]float64, cfg.Resources),
	}
	// Expected outcome of one defection (as in RunStudy) and of a failed
	// placement against a down machine.
	incident := cleanRecord()
	incident.SecurityIncident = true
	si, err := z.scorer.Score(incident)
	if err != nil {
		return nil, err
	}
	late := cleanRecord()
	late.ActualDuration = 250
	late.ResultIntegrityOK = false
	sl, err := z.scorer.Score(late)
	if err != nil {
		return nil, err
	}
	clean, err := z.scorer.Score(cleanRecord())
	if err != nil {
		return nil, err
	}
	failed := cleanRecord()
	failed.Completed = false
	failed.ResultIntegrityOK = false
	if z.failScore, err = z.scorer.Score(failed); err != nil {
		return nil, err
	}
	expDefect := (si + sl) / 2

	nBad := int(math.Round(cfg.BadFraction * float64(cfg.Resources)))
	for i := range z.bad {
		z.bad[i] = i < nBad
		switch cfg.Scenario {
		case ZooChurn:
			// Every resource behaves honestly when up; the bad population
			// is simply down far more often.
			mtbf := zooGoodMTBF
			if z.bad[i] {
				mtbf = zooBadMTBF
			}
			avail := mtbf / (mtbf + zooMTTR)
			up := (1-cfg.GoodDefectProb)*clean + cfg.GoodDefectProb*expDefect
			z.trueScore[i] = avail*up + (1-avail)*z.failScore
			z.chUp[i] = true
			z.chEnd[i] = Weibull(src, mtbf, zooChurnShape)
		case ZooOscillate:
			p := cfg.GoodDefectProb
			if z.bad[i] {
				p = float64(z.osc.BadRun) / float64(z.osc.GoodRun+z.osc.BadRun)
			}
			z.trueScore[i] = (1-p)*clean + p*expDefect
		default:
			p := cfg.GoodDefectProb
			if z.bad[i] {
				p = cfg.BadDefectProb
			}
			z.trueScore[i] = (1-p)*clean + p*expDefect
		}
	}

	obs := trust.EntityID("observer")
	recID := func(j int) trust.EntityID { return trust.EntityID(fmt.Sprintf("rec:%d", j)) }
	nLiars := int(math.Round(cfg.LiarFraction * float64(cfg.Recommenders)))
	liar := func(j int) bool { return j < nLiars }

	errEWMA := make([]float64, cfg.Recommenders)
	seenErr := make([]bool, cfg.Recommenders)
	directN := make([]int, cfg.Resources)
	var costSum float64
	badPlacements := 0
	for t := 0; t < cfg.Rounds; t++ {
		now := float64(t)
		// Whitewash resets: the bad population sheds its identities on a
		// fixed cadence, reappearing to the model as strangers carrying
		// the uninformed prior.  Direct-evidence counters reset with the
		// identity — the observer's history died with the old name.
		if cfg.Scenario == ZooWhitewash && t > 0 && t%zooWhitewashPeriod == 0 {
			for i := range z.bad {
				if z.bad[i] {
					z.gen[i]++
					directN[i] = 0
				}
			}
		}
		// Recommender observations; in the clique scenario the liars
		// report the inversion of reality.
		for j := 0; j < cfg.Recommenders; j++ {
			y := src.Intn(cfg.Resources)
			var outcome float64
			if liar(j) {
				outcome = trust.MinScore
				if z.bad[y] {
					outcome = trust.MaxScore
				}
			} else {
				if outcome, err = z.drawOutcome(y, now); err != nil {
					return nil, err
				}
			}
			if _, err := model.Observe(recID(j), z.resID(y), StudyContext, outcome, now); err != nil {
				return nil, err
			}
		}
		// Placement: trust-greedy over current identities, ties toward
		// the lower index.
		best, bestG := -1, math.Inf(-1)
		for i := 0; i < cfg.Resources; i++ {
			g, err := model.Trust(obs, z.resID(i), StudyContext, now)
			if err != nil {
				return nil, err
			}
			if g > bestG {
				bestG, best = g, i
			}
		}
		outcome, err := z.drawOutcome(best, now)
		if err != nil {
			return nil, err
		}
		if _, err := model.Observe(obs, z.resID(best), StudyContext, outcome, now); err != nil {
			return nil, err
		}
		directN[best]++
		costSum += roundCost(outcome)
		if z.bad[best] {
			badPlacements++
		}
		// Audit loop (RunStudy's R-weighted defense, always on): claims
		// are compared against direct experience and each recommender's
		// factor follows its error EWMA.
		if t >= auditWarmup {
			for j := 0; j < cfg.Recommenders; j++ {
				var errSum float64
				n := 0
				for i := 0; i < cfg.Resources; i++ {
					if directN[i] < directEvidenceMin {
						continue
					}
					claim, ok, err := model.Recommendation(recID(j), z.resID(i), StudyContext, now)
					if err != nil {
						return nil, err
					}
					if !ok {
						continue
					}
					direct, err := model.Direct(obs, z.resID(i), StudyContext, now)
					if err != nil {
						return nil, err
					}
					errSum += math.Abs(claim - direct)
					n++
				}
				if n == 0 {
					continue
				}
				e := errSum / float64(n)
				if !seenErr[j] {
					errEWMA[j], seenErr[j] = e, true
				} else {
					errEWMA[j] = 0.7*errEWMA[j] + 0.3*e
				}
				rel := errEWMA[j] / (trust.MaxScore - trust.MinScore)
				r := 1 - 4*rel*rel
				if r < 0 {
					r = 0
				}
				for i := 0; i < cfg.Resources; i++ {
					if err := model.SetRecommenderFactor(recID(j), z.resID(i), r); err != nil {
						return nil, err
					}
				}
			}
		}
	}

	res := &ZooResult{}
	now := float64(cfg.Rounds)
	for i := 0; i < cfg.Resources; i++ {
		g, err := model.Trust(obs, z.resID(i), StudyContext, now)
		if err != nil {
			return nil, err
		}
		res.TrustError += math.Abs(g - z.trueScore[i])
	}
	res.TrustError /= float64(cfg.Resources)
	bestTrue := math.Inf(-1)
	for _, s := range z.trueScore {
		bestTrue = math.Max(bestTrue, s)
	}
	oracle := roundCost(bestTrue)
	res.DegradationPct = (costSum/float64(cfg.Rounds) - oracle) / oracle * 100
	res.BadShare = float64(badPlacements) / float64(cfg.Rounds)
	return res, nil
}
