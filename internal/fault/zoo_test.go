package fault

import (
	"math"
	"testing"

	"gridtrust/internal/rng"
	"gridtrust/internal/trust"
)

// TestRunZooAllCells runs every registered model against every scenario
// and checks the metrics are sane and the run is bit-deterministic.
func TestRunZooAllCells(t *testing.T) {
	for _, m := range trust.ModelNames() {
		for _, sc := range ZooScenarios() {
			cfg := ZooConfig{Model: m, Scenario: sc, Rounds: 120}
			a, err := RunZoo(cfg, rng.New(42))
			if err != nil {
				t.Fatalf("%s/%s: %v", m, sc, err)
			}
			if math.IsNaN(a.TrustError) || a.TrustError < 0 {
				t.Errorf("%s/%s: trust error %g", m, sc, a.TrustError)
			}
			if a.BadShare < 0 || a.BadShare > 1 {
				t.Errorf("%s/%s: bad share %g", m, sc, a.BadShare)
			}
			if math.IsNaN(a.DegradationPct) || math.IsInf(a.DegradationPct, 0) {
				t.Errorf("%s/%s: degradation %g", m, sc, a.DegradationPct)
			}
			b, err := RunZoo(cfg, rng.New(42))
			if err != nil {
				t.Fatalf("%s/%s rerun: %v", m, sc, err)
			}
			if *a != *b {
				t.Errorf("%s/%s: nondeterministic: %+v vs %+v", m, sc, a, b)
			}
		}
	}
}

// TestRunZooRejectsBadConfig checks validation surfaces unknown models and
// scenarios.
func TestRunZooRejectsBadConfig(t *testing.T) {
	if _, err := RunZoo(ZooConfig{Model: "nope", Scenario: ZooClique}, rng.New(1)); err == nil {
		t.Fatal("unknown model accepted")
	}
	if _, err := RunZoo(ZooConfig{Scenario: "nope"}, rng.New(1)); err == nil {
		t.Fatal("unknown scenario accepted")
	}
}

// TestRunZooCliqueDefault checks the clique scenario defaults to a
// non-empty liar population (a clique with no liars is no clique).
func TestRunZooCliqueDefault(t *testing.T) {
	cfg := ZooConfig{Scenario: ZooClique}.withDefaults()
	if cfg.LiarFraction != 0.4 {
		t.Fatalf("clique liar fraction defaulted to %g", cfg.LiarFraction)
	}
	if cfg := (ZooConfig{Scenario: ZooOscillate}.withDefaults()); cfg.LiarFraction != 0 {
		t.Fatalf("oscillate liar fraction defaulted to %g", cfg.LiarFraction)
	}
}
