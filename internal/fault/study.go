package fault

import (
	"fmt"
	"math"

	"gridtrust/internal/behavior"
	"gridtrust/internal/rng"
	"gridtrust/internal/trust"
)

// StudyContext is the trust context the adversary study runs in.
const StudyContext = trust.Context("compute")

// PurgeThreshold is the R below which the R-weighted variant purges a
// recommender from Ω (trust.Config.PurgeBelow).
const PurgeThreshold = 0.2

// auditWarmup is the number of rounds before the observer starts auditing
// recommenders: R is "learned based on actual outcomes" (Section 2.2), so
// some direct experience must exist first.
const auditWarmup = 10

// directEvidenceMin is how many direct transactions the observer needs
// with a resource before using it as an audit reference.
const directEvidenceMin = 3

// StudyConfig parameterises RunStudy, the closed-loop experiment pitting
// the paper's recommender trust factor R against a collusive lying
// population.  Zero-valued fields take the documented defaults.
type StudyConfig struct {
	// Resources is the number of placement targets (default 10);
	// BadFraction of them (default 0.4) misbehave, defecting with
	// probability BadDefectProb (default 0.7) per transaction versus
	// GoodDefectProb (default 0.02) for the honest rest.
	Resources      int
	BadFraction    float64
	GoodDefectProb float64
	BadDefectProb  float64

	// Oscillate makes the bad resources oscillators instead of constant
	// defectors: they behave cleanly until trusted, then defect, in
	// alternating phases (the "milk the trust you built" strategy).
	Oscillate bool

	// Recommenders is the recommender population size (default 10);
	// LiarFraction of them form a collusive clique that boosts the bad
	// resources to the top of the scale and badmouths the good ones to
	// the bottom.
	Recommenders int
	LiarFraction float64

	// Rounds is the number of placement rounds (default 200).
	Rounds int

	// RWeighted enables the defense under study: the observer audits each
	// recommender's claims against its own direct experience, learns a
	// recommender trust factor R, and purges recommenders below
	// PurgeThreshold.  When false every R is pinned to 1 — the paper's
	// reputation formula with its defense amputated.
	RWeighted bool

	// Alpha and Beta weight direct trust vs reputation in Γ (defaults
	// 0.3/0.7 — a reputation-dominated regime, the setting that actually
	// stresses R; with α ≫ β lies barely matter either way).
	Alpha, Beta float64
}

// withDefaults fills unset fields.
func (c StudyConfig) withDefaults() StudyConfig {
	if c.Resources == 0 {
		c.Resources = 10
	}
	if c.BadFraction == 0 {
		c.BadFraction = 0.4
	}
	if c.GoodDefectProb == 0 {
		c.GoodDefectProb = 0.02
	}
	if c.BadDefectProb == 0 {
		c.BadDefectProb = 0.7
	}
	if c.Recommenders == 0 {
		c.Recommenders = 10
	}
	if c.Rounds == 0 {
		c.Rounds = 200
	}
	if c.Alpha == 0 && c.Beta == 0 {
		c.Alpha, c.Beta = 0.3, 0.7
	}
	return c
}

// Validate rejects unrunnable configurations.
func (c StudyConfig) Validate() error {
	if c.Resources < 2 || c.Recommenders < 1 || c.Rounds < 1 {
		return fmt.Errorf("fault: study needs >= 2 resources, >= 1 recommenders, >= 1 rounds")
	}
	for name, v := range map[string]float64{
		"bad fraction": c.BadFraction, "liar fraction": c.LiarFraction,
		"good defect prob": c.GoodDefectProb, "bad defect prob": c.BadDefectProb,
	} {
		if v < 0 || v > 1 {
			return fmt.Errorf("fault: study %s %g outside [0,1]", name, v)
		}
	}
	return nil
}

// StudyResult reports how the observer's trust table and placements fared
// against the adversary population.
type StudyResult struct {
	// TrustError is the mean absolute error of the observer's eventual
	// trust Γ versus each resource's true expected behavior score — how
	// corrupted the trust table ended up.
	TrustError float64
	// DegradationPct is the mean per-round placement cost relative to an
	// oracle that always uses the best resource, as a percentage above
	// the oracle's expected cost.
	DegradationPct float64
	// BadShare is the fraction of placements that landed on misbehaving
	// resources.
	BadShare float64
	// MeanLiarR and MeanHonestR are the final learned recommender trust
	// factors, averaged over the lying and honest populations (both 1
	// when RWeighted is false).
	MeanLiarR, MeanHonestR float64
}

// studyState bundles the derived constants of one study run.
type studyState struct {
	cfg    StudyConfig
	scorer *behavior.DefaultScorer
	// trueScore[i] is resource i's expected transaction outcome.
	trueScore []float64
	bad       []bool
	osc       Oscillator
	txCount   []int // per-resource transactions (drives oscillator phase)
}

// drawOutcome samples resource y's true transaction outcome.
func (st *studyState) drawOutcome(src *rng.Source, y int) (float64, error) {
	st.txCount[y]++
	defect := false
	switch {
	case !st.bad[y]:
		defect = src.Float64() < st.cfg.GoodDefectProb
	case st.cfg.Oscillate:
		defect = (st.txCount[y]-1)%(st.osc.GoodRun+st.osc.BadRun) >= st.osc.GoodRun
	default:
		defect = src.Float64() < st.cfg.BadDefectProb
	}
	if defect {
		return st.scorer.Score(defectRecord(src, 0.5))
	}
	return st.scorer.Score(cleanRecord())
}

// roundCost models the completion cost of one placement given its
// transaction outcome: a flat base plus a misbehavior premium (re-runs,
// verification, cleanup) proportional to how far below perfect the
// outcome fell.
func roundCost(outcome float64) float64 {
	return 100 * (1 + 0.15*(trust.MaxScore-outcome))
}

// RunStudy runs the closed trust loop of Figure 1 against a lying
// recommender clique and misbehaving resources: each round every
// recommender reports on a random resource (liars boost the clique's bad
// resources and badmouth the rest), the observer places one task on its
// currently most-trusted resource, transacts, and observes the true
// outcome.  With RWeighted the observer additionally audits each
// recommender's stored claim against its own direct experience and
// weights (or purges) accordingly.  Deterministic given (cfg, src).
func RunStudy(cfg StudyConfig, src *rng.Source) (*StudyResult, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	purge := 0.0
	if cfg.RWeighted {
		purge = PurgeThreshold
	}
	eng, err := trust.NewEngine(trust.Config{
		Alpha: cfg.Alpha, Beta: cfg.Beta,
		InitialScore: (trust.MinScore + trust.MaxScore) / 2,
		PurgeBelow:   purge,
	})
	if err != nil {
		return nil, err
	}

	st := &studyState{
		cfg:       cfg,
		scorer:    behavior.MustDefaultScorer(),
		trueScore: make([]float64, cfg.Resources),
		bad:       make([]bool, cfg.Resources),
		osc:       Oscillator{GoodRun: 8, BadRun: 8, IncidentProb: 0.5},
		txCount:   make([]int, cfg.Resources),
	}
	// Expected outcome of one defection: half incidents (floor), half
	// late+corrupt deliveries.
	incident := cleanRecord()
	incident.SecurityIncident = true
	si, err := st.scorer.Score(incident)
	if err != nil {
		return nil, err
	}
	late := cleanRecord()
	late.ActualDuration = 250
	late.ResultIntegrityOK = false
	sl, err := st.scorer.Score(late)
	if err != nil {
		return nil, err
	}
	clean, err := st.scorer.Score(cleanRecord())
	if err != nil {
		return nil, err
	}
	expDefect := (si + sl) / 2
	nBad := int(math.Round(cfg.BadFraction * float64(cfg.Resources)))
	for i := range st.bad {
		st.bad[i] = i < nBad
		p := cfg.GoodDefectProb
		if st.bad[i] {
			p = cfg.BadDefectProb
			if cfg.Oscillate {
				p = float64(st.osc.BadRun) / float64(st.osc.GoodRun+st.osc.BadRun)
			}
		}
		st.trueScore[i] = (1-p)*clean + p*expDefect
	}

	obs := trust.EntityID("observer")
	resID := func(i int) trust.EntityID { return trust.EntityID(fmt.Sprintf("res:%d", i)) }
	recID := func(j int) trust.EntityID { return trust.EntityID(fmt.Sprintf("rec:%d", j)) }
	nLiars := int(math.Round(cfg.LiarFraction * float64(cfg.Recommenders)))
	liar := func(j int) bool { return j < nLiars }

	lastR := make([]float64, cfg.Recommenders)
	errEWMA := make([]float64, cfg.Recommenders)
	seenErr := make([]bool, cfg.Recommenders)
	for j := range lastR {
		lastR[j] = 1
	}
	if !cfg.RWeighted {
		// Amputate the defense: every recommendation carries full weight,
		// alliances and audits notwithstanding.
		for j := 0; j < cfg.Recommenders; j++ {
			for i := 0; i < cfg.Resources; i++ {
				if err := eng.SetRecommenderFactor(recID(j), resID(i), 1); err != nil {
					return nil, err
				}
			}
		}
	}

	directN := make([]int, cfg.Resources)
	var costSum float64
	badPlacements := 0
	for t := 0; t < cfg.Rounds; t++ {
		now := float64(t)
		// Recommender observations: honest ones report what they see,
		// the clique reports the inversion of reality.
		for j := 0; j < cfg.Recommenders; j++ {
			y := src.Intn(cfg.Resources)
			outcome := 0.0
			if liar(j) {
				outcome = trust.MinScore
				if st.bad[y] {
					outcome = trust.MaxScore
				}
			} else {
				outcome, err = st.drawOutcome(src, y)
				if err != nil {
					return nil, err
				}
			}
			if _, err := eng.Observe(recID(j), resID(y), StudyContext, outcome, now); err != nil {
				return nil, err
			}
		}
		// Observer placement: trust-greedy, ties toward the lower index.
		best, bestG := -1, math.Inf(-1)
		for i := 0; i < cfg.Resources; i++ {
			g, err := eng.Trust(obs, resID(i), StudyContext, now)
			if err != nil {
				return nil, err
			}
			if g > bestG {
				bestG, best = g, i
			}
		}
		outcome, err := st.drawOutcome(src, best)
		if err != nil {
			return nil, err
		}
		if _, err := eng.Observe(obs, resID(best), StudyContext, outcome, now); err != nil {
			return nil, err
		}
		directN[best]++
		costSum += roundCost(outcome)
		if st.bad[best] {
			badPlacements++
		}
		// Audit: compare each recommender's stored claim against direct
		// experience wherever the observer has enough of it, and convert
		// the error EWMA into R.
		if cfg.RWeighted && t >= auditWarmup {
			for j := 0; j < cfg.Recommenders; j++ {
				var errSum float64
				n := 0
				for i := 0; i < cfg.Resources; i++ {
					if directN[i] < directEvidenceMin {
						continue
					}
					claim, ok, err := eng.Recommendation(recID(j), resID(i), StudyContext, now)
					if err != nil {
						return nil, err
					}
					if !ok {
						continue
					}
					direct, err := eng.Direct(obs, resID(i), StudyContext, now)
					if err != nil {
						return nil, err
					}
					errSum += math.Abs(claim - direct)
					n++
				}
				if n == 0 {
					continue
				}
				e := errSum / float64(n)
				if !seenErr[j] {
					errEWMA[j], seenErr[j] = e, true
				} else {
					errEWMA[j] = 0.7*errEWMA[j] + 0.3*e
				}
				// Quadratic falloff: small honest disagreement keeps
				// near-full weight, systematic lying drives R to 0.
				rel := errEWMA[j] / (trust.MaxScore - trust.MinScore)
				r := 1 - 4*rel*rel
				if r < 0 {
					r = 0
				}
				lastR[j] = r
				for i := 0; i < cfg.Resources; i++ {
					if err := eng.SetRecommenderFactor(recID(j), resID(i), r); err != nil {
						return nil, err
					}
				}
			}
		}
	}

	// Final metrics.
	res := &StudyResult{}
	now := float64(cfg.Rounds)
	for i := 0; i < cfg.Resources; i++ {
		g, err := eng.Trust(obs, resID(i), StudyContext, now)
		if err != nil {
			return nil, err
		}
		res.TrustError += math.Abs(g - st.trueScore[i])
	}
	res.TrustError /= float64(cfg.Resources)
	bestTrue := math.Inf(-1)
	for _, s := range st.trueScore {
		bestTrue = math.Max(bestTrue, s)
	}
	oracle := roundCost(bestTrue)
	res.DegradationPct = (costSum/float64(cfg.Rounds) - oracle) / oracle * 100
	res.BadShare = float64(badPlacements) / float64(cfg.Rounds)
	var liarR, honestR float64
	for j := range lastR {
		if liar(j) {
			liarR += lastR[j]
		} else {
			honestR += lastR[j]
		}
	}
	if nLiars > 0 {
		res.MeanLiarR = liarR / float64(nLiars)
	} else {
		res.MeanLiarR = 1
	}
	if n := cfg.Recommenders - nLiars; n > 0 {
		res.MeanHonestR = honestR / float64(n)
	} else {
		res.MeanHonestR = 1
	}
	return res, nil
}
