package fault

import (
	"fmt"

	"gridtrust/internal/behavior"
	"gridtrust/internal/rng"
)

// This file models misbehaving resources as generators of the transaction
// telemetry a monitoring agent would observe.  The two strategies the
// literature singles out — oscillation (milk the trust you built, then
// rebuild) and whitewashing (defect, then shed the identity and start
// clean) — are expressed as deterministic phase machines over
// behavior.TransactionRecord sequences, so both the DES studies and the
// behavior-layer property tests consume the same adversaries.

// cleanRecord is an on-time, complete, verified transaction — the record
// an honest resource produces, scoring trust.MaxScore under the default
// scorer.
func cleanRecord() behavior.TransactionRecord {
	return behavior.TransactionRecord{
		PromisedDuration:  100,
		ActualDuration:    100,
		Completed:         true,
		ResultIntegrityOK: true,
	}
}

// defectRecord is one misbehaving transaction: with probability
// incidentProb a detected security incident (trust-destroying), otherwise
// a late, integrity-failed delivery.  Every defection scores strictly
// below a clean record.
func defectRecord(src *rng.Source, incidentProb float64) behavior.TransactionRecord {
	rec := cleanRecord()
	if src.Float64() < incidentProb {
		rec.SecurityIncident = true
		return rec
	}
	rec.ActualDuration = 250 // 150% late: timeliness factor 0.4
	rec.ResultIntegrityOK = false
	return rec
}

// HonestRecords returns n clean transactions — the baseline adversarial
// sequences are measured against.
func HonestRecords(n int) []behavior.TransactionRecord {
	out := make([]behavior.TransactionRecord, n)
	for i := range out {
		out[i] = cleanRecord()
	}
	return out
}

// Oscillator is a resource that behaves well until it is trusted, then
// defects: GoodRun clean transactions to build trust, BadRun defections
// to exploit it, repeating.  IncidentProb is the chance a defection is a
// detected security incident rather than a mere late/corrupt delivery.
type Oscillator struct {
	GoodRun, BadRun int
	IncidentProb    float64
}

// Validate rejects degenerate phase lengths.
func (o Oscillator) Validate() error {
	if o.GoodRun < 1 || o.BadRun < 1 {
		return fmt.Errorf("fault: oscillator runs %d/%d must be >= 1", o.GoodRun, o.BadRun)
	}
	if o.IncidentProb < 0 || o.IncidentProb > 1 {
		return fmt.Errorf("fault: oscillator incident prob %g outside [0,1]", o.IncidentProb)
	}
	return nil
}

// Records generates the oscillator's first n transactions.
func (o Oscillator) Records(src *rng.Source, n int) ([]behavior.TransactionRecord, error) {
	if err := o.Validate(); err != nil {
		return nil, err
	}
	out := make([]behavior.TransactionRecord, n)
	period := o.GoodRun + o.BadRun
	for i := range out {
		if i%period < o.GoodRun {
			out[i] = cleanRecord()
		} else {
			out[i] = defectRecord(src, o.IncidentProb)
		}
	}
	return out, nil
}

// Whitewasher is a resource that defects persistently but periodically
// re-registers under a fresh identity: after every reset it produces
// CleanRun clean transactions (the new identity's honeymoon), then
// defects until the next reset, Period transactions after the last.
type Whitewasher struct {
	CleanRun, Period int
	IncidentProb     float64
}

// Validate rejects phase machines that never defect or never reset.
func (w Whitewasher) Validate() error {
	if w.CleanRun < 1 || w.Period <= w.CleanRun {
		return fmt.Errorf("fault: whitewasher clean run %d must be >= 1 and < period %d", w.CleanRun, w.Period)
	}
	if w.IncidentProb < 0 || w.IncidentProb > 1 {
		return fmt.Errorf("fault: whitewasher incident prob %g outside [0,1]", w.IncidentProb)
	}
	return nil
}

// Records generates the whitewasher's first n transactions, as seen
// across its successive identities.
func (w Whitewasher) Records(src *rng.Source, n int) ([]behavior.TransactionRecord, error) {
	if err := w.Validate(); err != nil {
		return nil, err
	}
	out := make([]behavior.TransactionRecord, n)
	for i := range out {
		if i%w.Period < w.CleanRun {
			out[i] = cleanRecord()
		} else {
			out[i] = defectRecord(src, w.IncidentProb)
		}
	}
	return out, nil
}
