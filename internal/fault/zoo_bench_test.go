package fault

import (
	"testing"

	"gridtrust/internal/rng"
	"gridtrust/internal/trust"
)

// BenchmarkTrustzooRunZoo measures one full reputation-study replication
// (200 rounds, 10 resources, audits on) per registered model and
// adversary scenario.  Recorded in BENCH_trustzoo.json.
func BenchmarkTrustzooRunZoo(b *testing.B) {
	for _, sc := range ZooScenarios() {
		for _, m := range trust.ModelNames() {
			b.Run(string(sc)+"/"+m, func(b *testing.B) {
				cfg := ZooConfig{Model: m, Scenario: sc}
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if _, err := RunZoo(cfg, rng.New(uint64(i+1))); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}
