// Package fault injects deterministic failures and adversaries into the
// reproduction: machine churn (crash/repair renewal processes) for the
// discrete-event simulator and adversary populations (lying recommenders,
// collusive cliques, oscillating and whitewashing resources) for the trust
// machinery.  The paper's recommender trust factor R and decay Υ exist to
// survive exactly these conditions (Section 3); this package supplies the
// hostile environment that stresses them.
//
// Everything is seed-reproducible.  A Plan carries its own Seed; every
// consumer derives independent sub-streams from it with the same
// rng.Streams discipline internal/exp uses for replications, so fault
// timelines are a pure function of (seed, machine) — bit-identical under
// any worker count, and replayable for debugging.
package fault

import (
	"fmt"
	"math"

	"gridtrust/internal/rng"
)

// DefaultMaxRequeues caps how many times one request may be rescheduled
// after machine crashes before the run is declared stuck.  Real churn
// rates requeue a task once or twice; hitting this cap means the plan
// describes a grid that cannot finish the workload.
const DefaultMaxRequeues = 64

// Plan configures fault and adversary injection for one simulation run.
// The zero value is the null plan: no churn, no adversaries, and a
// guarantee that consumers take their fault-free fast paths untouched.
type Plan struct {
	// MTBF is the mean up-time in simulated seconds between a machine
	// coming up and its next crash; 0 disables churn entirely.
	MTBF float64
	// MTTR is the mean repair (down) time; must be positive when MTBF is.
	MTTR float64
	// UpShape and DownShape are Weibull shape parameters for the up- and
	// down-time distributions; 0 or 1 selects the exponential special
	// case.  Shape > 1 models wear-out (failures cluster around MTBF),
	// shape < 1 models infant mortality.
	UpShape, DownShape float64

	// AdversaryFraction is the probability that a resource domain
	// whitewashes: it advertises the maximum offerable trust level to the
	// scheduler while actually providing its true, lower one.  The
	// scheduler's decision view and the charged reality then diverge —
	// the trust-table error the fault studies report.
	AdversaryFraction float64

	// MaxRequeues caps per-request rescheduling; 0 means
	// DefaultMaxRequeues.
	MaxRequeues int

	// Seed sub-seeds every fault stream.  Experiment grids derive it from
	// the replication stream so paired policy runs replay the identical
	// fault timeline; standalone callers set it directly.
	Seed uint64
}

// Active reports whether the plan injects anything at all.  Inactive plans
// must leave simulations byte-identical to runs without the subsystem.
func (p Plan) Active() bool { return p.Churn() || p.AdversaryFraction > 0 }

// Churn reports whether machines crash under this plan.
func (p Plan) Churn() bool { return p.MTBF > 0 }

// RequeueCap resolves the effective per-request requeue limit.
func (p Plan) RequeueCap() int {
	if p.MaxRequeues > 0 {
		return p.MaxRequeues
	}
	return DefaultMaxRequeues
}

// Validate rejects unrunnable plans with a descriptive error.
func (p Plan) Validate() error {
	if p.MTBF < 0 || p.MTTR < 0 {
		return fmt.Errorf("fault: negative MTBF/MTTR %g/%g", p.MTBF, p.MTTR)
	}
	if p.MTBF > 0 && p.MTTR <= 0 {
		return fmt.Errorf("fault: churn needs a positive MTTR, got %g", p.MTTR)
	}
	if p.UpShape < 0 || p.DownShape < 0 {
		return fmt.Errorf("fault: negative Weibull shape %g/%g", p.UpShape, p.DownShape)
	}
	if p.AdversaryFraction < 0 || p.AdversaryFraction > 1 {
		return fmt.Errorf("fault: adversary fraction %g outside [0,1]", p.AdversaryFraction)
	}
	if p.MaxRequeues < 0 {
		return fmt.Errorf("fault: negative requeue cap %d", p.MaxRequeues)
	}
	return nil
}

// Sub-stream indices of the plan seed.  Each consumer owns one derived
// seed so adding a stream never perturbs the draws of another.
const (
	subAdversary = iota
	subChurn
)

// subSeed derives the i-th independent sub-seed from the plan seed.
func (p Plan) subSeed(i int) uint64 {
	s := rng.New(p.Seed)
	var v uint64
	for k := 0; k <= i; k++ {
		v = s.Uint64()
	}
	return v
}

// AdversarialRDs deterministically marks which of numRDs resource domains
// whitewash under this plan: domain d is adversarial with probability
// AdversaryFraction, drawn from the plan's adversary stream.  The result
// depends only on (Seed, numRDs), never on scheduling order.
func (p Plan) AdversarialRDs(numRDs int) []bool {
	out := make([]bool, numRDs)
	if p.AdversaryFraction <= 0 {
		return out
	}
	src := rng.New(p.subSeed(subAdversary))
	for d := range out {
		out[d] = src.Float64() < p.AdversaryFraction
	}
	return out
}

// Weibull draws a Weibull variate with the given mean and shape by
// inversion: scale·(−ln(1−U))^(1/shape) with the scale chosen so the
// distribution's mean is exactly mean.  Shape 0 or 1 degenerates to the
// exponential distribution.
func Weibull(src *rng.Source, mean, shape float64) float64 {
	if shape == 0 || shape == 1 {
		return src.Exponential(1 / mean)
	}
	scale := mean / math.Gamma(1+1/shape)
	return scale * math.Pow(-math.Log1p(-src.Float64()), 1/shape)
}

// Churn generates each machine's crash/repair renewal process.  Machine
// m's up/down duration sequence is drawn from stream m of the plan's
// churn seed (the rng.Streams discipline), so the timeline of one machine
// is a pure function of (Seed, m): independent of how many machines
// exist, which policies consume the timeline, or which worker runs the
// replication.
type Churn struct {
	plan Plan
	srcs []*rng.Source
}

// NewChurn builds the renewal processes for `machines` machines.
func NewChurn(p Plan, machines int) (*Churn, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if !p.Churn() {
		return nil, fmt.Errorf("fault: plan has no churn (MTBF %g)", p.MTBF)
	}
	if machines <= 0 {
		return nil, fmt.Errorf("fault: churn needs positive machines, got %d", machines)
	}
	return &Churn{plan: p, srcs: rng.Streams(p.subSeed(subChurn), machines)}, nil
}

// UpTime draws machine m's next up duration (time until its next crash).
func (c *Churn) UpTime(m int) float64 {
	return Weibull(c.srcs[m], c.plan.MTBF, c.plan.UpShape)
}

// DownTime draws machine m's next down duration (repair time).
func (c *Churn) DownTime(m int) float64 {
	return Weibull(c.srcs[m], c.plan.MTTR, c.plan.DownShape)
}
