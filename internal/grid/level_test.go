package grid

import (
	"testing"
	"testing/quick"
)

func TestTrustLevelNumericValues(t *testing.T) {
	// "The trust levels A to F are assigned corresponding numeric values
	// that range from 1 to 6" (Section 4.1).
	want := map[TrustLevel]int{
		LevelA: 1, LevelB: 2, LevelC: 3, LevelD: 4, LevelE: 5, LevelF: 6,
	}
	for l, v := range want {
		if int(l) != v {
			t.Errorf("%v has numeric value %d, want %d", l, int(l), v)
		}
	}
}

func TestTrustLevelString(t *testing.T) {
	cases := map[TrustLevel]string{
		LevelNone: "-", LevelA: "A", LevelB: "B", LevelC: "C",
		LevelD: "D", LevelE: "E", LevelF: "F",
		TrustLevel(9): "TrustLevel(9)",
	}
	for l, want := range cases {
		if got := l.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int(l), got, want)
		}
	}
}

func TestParseLevel(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want TrustLevel
		err  bool
	}{
		{"A", LevelA, false},
		{"f", LevelF, false},
		{"c", LevelC, false},
		{"G", LevelNone, true},
		{"", LevelNone, true},
		{"AB", LevelNone, true},
		{"1", LevelNone, true},
	} {
		got, err := ParseLevel(tc.in)
		if tc.err != (err != nil) {
			t.Errorf("ParseLevel(%q) error = %v, want error=%v", tc.in, err, tc.err)
			continue
		}
		if !tc.err && got != tc.want {
			t.Errorf("ParseLevel(%q) = %v, want %v", tc.in, got, tc.want)
		}
	}
}

func TestParseLevelRoundTrip(t *testing.T) {
	for l := LevelA; l <= LevelF; l++ {
		got, err := ParseLevel(l.String())
		if err != nil || got != l {
			t.Errorf("round trip of %v failed: got %v err %v", l, got, err)
		}
	}
}

func TestOfferable(t *testing.T) {
	for l := LevelA; l <= LevelE; l++ {
		if !l.Offerable() {
			t.Errorf("%v should be offerable", l)
		}
	}
	if LevelF.Offerable() {
		t.Error("F must not be offerable (Section 3.1)")
	}
	if LevelNone.Offerable() {
		t.Error("LevelNone must not be offerable")
	}
}

func TestLevelFromScore(t *testing.T) {
	cases := []struct {
		score float64
		want  TrustLevel
	}{
		{-3, LevelA}, {0, LevelA}, {1, LevelA}, {1.49, LevelA},
		{1.5, LevelB}, {2.4, LevelB}, {3.0, LevelC}, {5.5, LevelF},
		{6, LevelF}, {100, LevelF},
	}
	for _, tc := range cases {
		if got := LevelFromScore(tc.score); got != tc.want {
			t.Errorf("LevelFromScore(%g) = %v, want %v", tc.score, got, tc.want)
		}
	}
}

func TestLevelFromScoreAlwaysValid(t *testing.T) {
	f := func(score float64) bool {
		return LevelFromScore(score).Valid()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMinMaxLevel(t *testing.T) {
	if minLevel(LevelB, LevelD) != LevelB || minLevel(LevelD, LevelB) != LevelB {
		t.Error("minLevel wrong")
	}
	if MaxLevel(LevelB, LevelD) != LevelD || MaxLevel(LevelD, LevelB) != LevelD {
		t.Error("MaxLevel wrong")
	}
}
