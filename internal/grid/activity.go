package grid

import (
	"fmt"
	"strings"
)

// Activity identifies a type of activity (ToA) a client may engage in on a
// resource.  "Some example activities a task can engage at an RD include
// printing, storing data, and using display services" (Section 3.1).
// Activities are small integers so they can index per-activity trust rows.
type Activity int

// The built-in activity vocabulary.  The model is open-ended: any Activity
// value >= 0 is legal, and NumBuiltinActivities merely names the defaults
// used by the paper-style workload generator (which draws composed ToAs of
// 1-4 activities).
const (
	ActCompute Activity = iota // executing programs
	ActStorage                 // storing data
	ActPrint                   // printing
	ActDisplay                 // using display services
	ActNetwork                 // outbound network access

	NumBuiltinActivities = 5
)

var activityNames = [...]string{
	ActCompute: "compute",
	ActStorage: "storage",
	ActPrint:   "print",
	ActDisplay: "display",
	ActNetwork: "network",
}

// String names built-in activities and falls back to a numeric form.
func (a Activity) String() string {
	if a >= 0 && int(a) < len(activityNames) {
		return activityNames[a]
	}
	return fmt.Sprintf("activity(%d)", int(a))
}

// Valid reports whether the activity identifier is usable (non-negative).
func (a Activity) Valid() bool { return a >= 0 }

// ToA is a type-of-activity request: atomic (one activity) or composed
// (multiple).  "A client with an atomic ToA requires just one activity
// whereas a client with a composed ToA requires multiple activities"
// (Section 3.1).  The paper's workloads use 1-4 activities per request.
type ToA struct {
	Activities []Activity
}

// NewToA builds a ToA, rejecting empty or invalid activity sets.
func NewToA(activities ...Activity) (ToA, error) {
	if len(activities) == 0 {
		return ToA{}, fmt.Errorf("grid: a ToA requires at least one activity")
	}
	for _, a := range activities {
		if !a.Valid() {
			return ToA{}, fmt.Errorf("grid: invalid activity %d in ToA", int(a))
		}
	}
	out := make([]Activity, len(activities))
	copy(out, activities)
	return ToA{Activities: out}, nil
}

// MustToA is NewToA that panics, for literals in tests and examples.
func MustToA(activities ...Activity) ToA {
	t, err := NewToA(activities...)
	if err != nil {
		panic(err)
	}
	return t
}

// Atomic reports whether the ToA consists of a single activity.
func (t ToA) Atomic() bool { return len(t.Activities) == 1 }

// String renders e.g. "{compute+storage}".
func (t ToA) String() string {
	parts := make([]string, len(t.Activities))
	for i, a := range t.Activities {
		parts[i] = a.String()
	}
	return "{" + strings.Join(parts, "+") + "}"
}
