package grid

import (
	"fmt"
	"sort"
	"sync"
)

// TrustTable is the trust-level table of Section 3.1: a symmetric
// quantifier TL[i][j][k] for client domain i and resource domain j engaging
// in activity A_k.  "In this study, we maintain a single table in a
// centrally organized RMS.  The table may, however, be replicated at
// different domains for reading purposes."
//
// The table is safe for concurrent use: the CD/RD monitoring agents of
// Figure 1 update entries while the scheduler reads them.  Updates are rare
// relative to reads — "trust is a slow varying attribute, therefore, the
// update overhead associated with the trust level table is not significant"
// — so a single RWMutex suffices and keeps read paths cheap.
type TrustTable struct {
	mu      sync.RWMutex
	entries map[tableKey]TrustLevel
	version uint64 // bumped on every successful Set, for replication
}

type tableKey struct {
	cd  DomainID
	rd  DomainID
	act Activity
}

// NewTrustTable returns an empty trust-level table.
func NewTrustTable() *TrustTable {
	return &TrustTable{entries: make(map[tableKey]TrustLevel)}
}

// Set records the trust level for (cd, rd, activity).  Only offerable
// levels A-E may be stored: F exists solely as a requirement.
func (t *TrustTable) Set(cd, rd DomainID, act Activity, tl TrustLevel) error {
	if !tl.Offerable() {
		return fmt.Errorf("grid: table entries must be offerable levels A-E, got %v", tl)
	}
	if !act.Valid() {
		return fmt.Errorf("grid: invalid activity %d", int(act))
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.entries[tableKey{cd, rd, act}] = tl
	t.version++
	return nil
}

// Get returns the trust level for (cd, rd, activity) and whether an entry
// exists.
func (t *TrustTable) Get(cd, rd DomainID, act Activity) (TrustLevel, bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	tl, ok := t.entries[tableKey{cd, rd, act}]
	return tl, ok
}

// Version returns a monotonically increasing counter of table mutations.
// Read-only replicas use it to decide when to refresh.
func (t *TrustTable) Version() uint64 {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.version
}

// Len returns the number of entries.
func (t *TrustTable) Len() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.entries)
}

// OTL computes the offered trust level for a client of cd engaging in the
// (possibly composed) ToA on a resource of rd: the minimum of the per-
// activity table entries.  "TL_ij^o = min(TL for A_p, TL for A_q, TL for
// A_r)" (Section 3.1).  It returns an error if any activity has no entry,
// which means the pairing is simply not offered.
func (t *TrustTable) OTL(cd, rd DomainID, toa ToA) (TrustLevel, error) {
	if len(toa.Activities) == 0 {
		return LevelNone, fmt.Errorf("grid: OTL of an empty ToA")
	}
	t.mu.RLock()
	defer t.mu.RUnlock()
	otl := MaxOfferable + 1 // sentinel above any offerable level
	for _, a := range toa.Activities {
		tl, ok := t.entries[tableKey{cd, rd, a}]
		if !ok {
			return LevelNone, fmt.Errorf("grid: no trust entry for CD %d / RD %d / %v", cd, rd, a)
		}
		otl = minLevel(otl, tl)
	}
	return otl, nil
}

// ForEach invokes fn for every entry under the read lock.  fn must not
// call back into the table (it would deadlock on the RWMutex).
func (t *TrustTable) ForEach(fn func(cd, rd DomainID, act Activity, tl TrustLevel)) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	for k, tl := range t.entries {
		fn(k.cd, k.rd, k.act, tl)
	}
}

// TableEntry is one (cd, rd, activity) → level record in exported form,
// used to persist the table and rebuild it on recovery.
type TableEntry struct {
	CD       DomainID   `json:"cd"`
	RD       DomainID   `json:"rd"`
	Activity Activity   `json:"activity"`
	Level    TrustLevel `json:"level"`
}

// Entries exports every table entry in deterministic (cd, rd, activity)
// order, suitable for serialisation.
func (t *TrustTable) Entries() []TableEntry {
	t.mu.RLock()
	defer t.mu.RUnlock()
	out := make([]TableEntry, 0, len(t.entries))
	for k, tl := range t.entries {
		out = append(out, TableEntry{CD: k.cd, RD: k.rd, Activity: k.act, Level: tl})
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.CD != b.CD {
			return a.CD < b.CD
		}
		if a.RD != b.RD {
			return a.RD < b.RD
		}
		return a.Activity < b.Activity
	})
	return out
}

// Restore replaces the table contents with the given entries and sets the
// mutation counter, rebuilding a persisted table exactly.  Entries are
// validated up front; on error the table is left unchanged.
func (t *TrustTable) Restore(entries []TableEntry, version uint64) error {
	fresh := make(map[tableKey]TrustLevel, len(entries))
	for _, e := range entries {
		if !e.Level.Offerable() {
			return fmt.Errorf("grid: restore entry for CD %d / RD %d has non-offerable level %v", e.CD, e.RD, e.Level)
		}
		if !e.Activity.Valid() {
			return fmt.Errorf("grid: restore entry has invalid activity %d", int(e.Activity))
		}
		fresh[tableKey{e.CD, e.RD, e.Activity}] = e.Level
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.entries = fresh
	t.version = version
	return nil
}

// Snapshot returns a read-only copy of the table, the "replicated at
// different domains for reading purposes" mechanism of Section 3.1.  The
// replica is immutable and does not track later updates; compare Version
// with the live table to detect staleness.
func (t *TrustTable) Snapshot() *TableReplica {
	t.mu.RLock()
	defer t.mu.RUnlock()
	cp := make(map[tableKey]TrustLevel, len(t.entries))
	for k, v := range t.entries {
		cp[k] = v
	}
	return &TableReplica{entries: cp, version: t.version}
}

// TableReplica is an immutable point-in-time copy of a TrustTable.
type TableReplica struct {
	entries map[tableKey]TrustLevel
	version uint64
}

// Get returns the replicated trust level for (cd, rd, activity).
func (r *TableReplica) Get(cd, rd DomainID, act Activity) (TrustLevel, bool) {
	tl, ok := r.entries[tableKey{cd, rd, act}]
	return tl, ok
}

// Version returns the version of the source table at snapshot time.
func (r *TableReplica) Version() uint64 { return r.version }

// OTL computes the offered trust level from the replica, mirroring
// TrustTable.OTL.
func (r *TableReplica) OTL(cd, rd DomainID, toa ToA) (TrustLevel, error) {
	if len(toa.Activities) == 0 {
		return LevelNone, fmt.Errorf("grid: OTL of an empty ToA")
	}
	otl := MaxOfferable + 1
	for _, a := range toa.Activities {
		tl, ok := r.entries[tableKey{cd, rd, a}]
		if !ok {
			return LevelNone, fmt.Errorf("grid: no trust entry for CD %d / RD %d / %v", cd, rd, a)
		}
		otl = minLevel(otl, tl)
	}
	return otl, nil
}
