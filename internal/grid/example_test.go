package grid_test

import (
	"fmt"

	"gridtrust/internal/grid"
)

// ExampleETS reproduces cells of the paper's Table 1.
func ExampleETS() {
	for _, pair := range []struct{ rtl, otl grid.TrustLevel }{
		{grid.LevelC, grid.LevelA}, // C - A = 2
		{grid.LevelB, grid.LevelE}, // satisfied: 0
		{grid.LevelF, grid.LevelE}, // F row: always the full supplement
	} {
		v, err := grid.ETS(pair.rtl, pair.otl)
		if err != nil {
			panic(err)
		}
		fmt.Printf("ETS(%v, %v) = %d\n", pair.rtl, pair.otl, v)
	}
	// Output:
	// ETS(C, A) = 2
	// ETS(B, E) = 0
	// ETS(F, E) = 6
}

// ExampleTrustTable_OTL shows the composed-activity rule: the offered
// trust level of a ToA is the minimum over its activities.
func ExampleTrustTable_OTL() {
	table := grid.NewTrustTable()
	_ = table.Set(0, 1, grid.ActCompute, grid.LevelD)
	_ = table.Set(0, 1, grid.ActStorage, grid.LevelB)
	_ = table.Set(0, 1, grid.ActPrint, grid.LevelE)

	otl, err := table.OTL(0, 1, grid.MustToA(grid.ActCompute, grid.ActStorage, grid.ActPrint))
	if err != nil {
		panic(err)
	}
	fmt.Printf("OTL(compute+storage+print) = min(D, B, E) = %v\n", otl)
	// Output:
	// OTL(compute+storage+print) = min(D, B, E) = B
}
