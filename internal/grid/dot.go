package grid

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// WriteDOT renders a topology as a Graphviz document in the spirit of the
// paper's Figure 1: one cluster per Grid domain containing its resource
// domain (with machines) and client domain (with clients), plus CD→RD
// edges labelled with the trust-level table entries when a table is
// supplied (nil table renders structure only).
//
// Output is deterministic: domains, machines, clients and edges are
// emitted in ID order.
func WriteDOT(w io.Writer, top *Topology, table *TrustTable) error {
	if top == nil {
		return fmt.Errorf("grid: nil topology")
	}
	// dotQuote wraps a label in double quotes, escaping embedded quotes;
	// backslash sequences like \n are left intact because DOT itself
	// interprets them (fmt's %q would double-escape them).
	dotQuote := func(label string) string {
		return "\"" + strings.ReplaceAll(label, "\"", "\\\"") + "\""
	}
	var b strings.Builder
	b.WriteString("digraph gridtrust {\n")
	b.WriteString("  rankdir=LR;\n")
	b.WriteString("  node [shape=box, fontsize=10];\n")

	domains := make([]*GridDomain, len(top.Domains))
	copy(domains, top.Domains)
	sort.Slice(domains, func(i, j int) bool { return domains[i].ID < domains[j].ID })

	for _, gd := range domains {
		fmt.Fprintf(&b, "  subgraph cluster_gd%d {\n", gd.ID)
		fmt.Fprintf(&b, "    label=%s;\n", dotQuote(fmt.Sprintf("GD %d (%s, owner %s)", gd.ID, gd.Name, gd.Owner)))
		if gd.RD != nil {
			fmt.Fprintf(&b, "    rd%d [label=%s, shape=folder];\n",
				gd.RD.ID, dotQuote(fmt.Sprintf("RD %d\\nRTL %s", gd.RD.ID, gd.RD.RTL)))
			machines := make([]*Machine, len(gd.RD.Machines))
			copy(machines, gd.RD.Machines)
			sort.Slice(machines, func(i, j int) bool { return machines[i].ID < machines[j].ID })
			for _, m := range machines {
				fmt.Fprintf(&b, "    m%d [label=%s, shape=component];\n",
					m.ID, dotQuote(fmt.Sprintf("machine %d", m.ID)))
				fmt.Fprintf(&b, "    rd%d -> m%d [style=dotted, arrowhead=none];\n", gd.RD.ID, m.ID)
			}
		}
		if gd.CD != nil {
			fmt.Fprintf(&b, "    cd%d [label=%s, shape=house];\n",
				gd.CD.ID, dotQuote(fmt.Sprintf("CD %d\\nRTL %s", gd.CD.ID, gd.CD.RTL)))
			clients := make([]*Client, len(gd.CD.Clients))
			copy(clients, gd.CD.Clients)
			sort.Slice(clients, func(i, j int) bool { return clients[i].ID < clients[j].ID })
			for _, c := range clients {
				fmt.Fprintf(&b, "    c%d [label=%s, shape=oval];\n",
					c.ID, dotQuote(fmt.Sprintf("client %d", c.ID)))
				fmt.Fprintf(&b, "    cd%d -> c%d [style=dotted, arrowhead=none];\n", gd.CD.ID, c.ID)
			}
		}
		b.WriteString("  }\n")
	}

	// Trust edges: CD -> RD labelled with per-activity levels.
	if table != nil {
		type edgeKey struct{ cd, rd DomainID }
		labels := make(map[edgeKey][]string)
		table.ForEach(func(cd, rd DomainID, act Activity, tl TrustLevel) {
			k := edgeKey{cd, rd}
			labels[k] = append(labels[k], fmt.Sprintf("%s:%s", act, tl))
		})
		keys := make([]edgeKey, 0, len(labels))
		for k := range labels {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(i, j int) bool {
			if keys[i].cd != keys[j].cd {
				return keys[i].cd < keys[j].cd
			}
			return keys[i].rd < keys[j].rd
		})
		for _, k := range keys {
			parts := labels[k]
			sort.Strings(parts)
			fmt.Fprintf(&b, "  cd%d -> rd%d [label=%s, fontsize=8];\n",
				k.cd, k.rd, dotQuote(strings.Join(parts, "\\n")))
		}
	}
	b.WriteString("}\n")
	_, err := io.WriteString(w, b.String())
	return err
}

// Summary returns a one-paragraph human description of a topology, used by
// daemon startup logs and the workload tooling.
func Summary(top *Topology) string {
	if top == nil {
		return "<nil topology>"
	}
	var rds, cds, machines, clients int
	for _, gd := range top.Domains {
		if gd.RD != nil {
			rds++
			machines += len(gd.RD.Machines)
		}
		if gd.CD != nil {
			cds++
			clients += len(gd.CD.Clients)
		}
	}
	return fmt.Sprintf("%d grid domains (%d RDs with %d machines, %d CDs with %d clients)",
		len(top.Domains), rds, machines, cds, clients)
}
