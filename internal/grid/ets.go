package grid

import "fmt"

// ETSRule selects between the two readings of the paper's Table 1 for the
// RTL = F row.
//
// Table 1 literally lists the supplement "F" (numeric 6) in every cell of
// the F row: a domain that requires F can never be satisfied by an offered
// level, so the full supplement applies regardless of the OTL.  That is
// ETSTable1.
//
// The simulation results of Tables 4-9, however, are only reproducible
// when the F row degrades linearly like every other row (supplement =
// RTL − OTL, i.e. 1..5 across the columns): under the literal rule,
// requests with an effective RTL of F (≈31% of them, since both RTLs are
// drawn from [1,6]) carry TC = 6 on *every* machine, the trust-aware
// scheduler cannot dodge them, and the measured improvement collapses to
// roughly half the paper's reported 23-40%.  ETSLinear is therefore the
// rule the paper-reproduction scenarios use; see EXPERIMENTS.md for the
// calibration data behind this choice.
type ETSRule int

const (
	// ETSTable1 is the literal Table 1: ETS(F, otl) = 6 for every OTL.
	ETSTable1 ETSRule = iota
	// ETSLinear treats the F row like the others: ETS = max(RTL−OTL, 0).
	ETSLinear
)

// String names the rule.
func (r ETSRule) String() string {
	switch r {
	case ETSTable1:
		return "table1"
	case ETSLinear:
		return "linear"
	default:
		return fmt.Sprintf("ETSRule(%d)", int(r))
	}
}

// Valid reports whether the rule is one of the defined constants.
func (r ETSRule) Valid() bool { return r == ETSTable1 || r == ETSLinear }

// ETS returns the expected trust supplement of Table 1 (literal reading)
// for a required trust level rtl and an offered trust level otl.
//
// The table's rule is ETS = RTL − OTL clamped at zero ("The ETS value is
// zero, when RTL-OTL < 0"), with one special row: RTL = F always yields
// the full supplement F (numeric 6) because "the RTL has a value F that is
// not provided by OTL ... so that client or resource domains can enforce
// enhanced security" (Section 3.1).
//
// The returned value is the paper's trust cost TC in [0,6].
func ETS(rtl, otl TrustLevel) (int, error) {
	return ETSWith(ETSTable1, rtl, otl)
}

// ETSWith returns the expected trust supplement under the given rule.
func ETSWith(rule ETSRule, rtl, otl TrustLevel) (int, error) {
	if !rule.Valid() {
		return 0, fmt.Errorf("grid: unknown ETS rule %d", int(rule))
	}
	if !rtl.Valid() {
		return 0, fmt.Errorf("grid: ETS requires a valid RTL, got %v", rtl)
	}
	if !otl.Offerable() {
		return 0, fmt.Errorf("grid: ETS requires an offerable OTL (A-E), got %v", otl)
	}
	if rule == ETSTable1 && rtl == LevelF {
		return int(LevelF), nil
	}
	d := int(rtl) - int(otl)
	if d < 0 {
		return 0, nil
	}
	return d, nil
}

// MustETS is ETS for statically valid levels; it panics on invalid input
// and exists for table construction and tests.
func MustETS(rtl, otl TrustLevel) int {
	v, err := ETS(rtl, otl)
	if err != nil {
		panic(err)
	}
	return v
}

// TCMin and TCMax bound the trust cost produced by ETS.
const (
	TCMin = 0
	TCMax = int(LevelF)
)

// ETSTable materialises the full Table 1 (literal reading): rows indexed
// by RTL A-F, columns by OTL A-E.  Cell [r][o] holds ETS(A+r, A+o).
func ETSTable() [6][5]int {
	var t [6][5]int
	for r := LevelA; r <= LevelF; r++ {
		for o := MinOfferable; o <= MaxOfferable; o++ {
			t[int(r)-1][int(o)-1] = MustETS(r, o)
		}
	}
	return t
}

// TrustCost computes the trust cost TC under the literal Table 1 rule for
// a request whose client requires clientRTL, whose resource requires
// resourceRTL, and whose offered trust level is otl.  Per Section 3.1,
// "if the OTL is greater than or equal to the maximum of client and
// resource RTLs, then the activity can proceed with no additional
// overhead"; the effective requirement is therefore
// max(clientRTL, resourceRTL).
func TrustCost(clientRTL, resourceRTL, otl TrustLevel) (int, error) {
	return TrustCostWith(ETSTable1, clientRTL, resourceRTL, otl)
}

// TrustCostWith computes the trust cost under the given ETS rule.
func TrustCostWith(rule ETSRule, clientRTL, resourceRTL, otl TrustLevel) (int, error) {
	if !clientRTL.Valid() {
		return 0, fmt.Errorf("grid: invalid client RTL %v", clientRTL)
	}
	if !resourceRTL.Valid() {
		return 0, fmt.Errorf("grid: invalid resource RTL %v", resourceRTL)
	}
	return ETSWith(rule, maxLevel(clientRTL, resourceRTL), otl)
}
