package grid

import (
	"errors"
	"strings"
	"testing"
)

func dotTopology(t *testing.T) (*Topology, *TrustTable) {
	t.Helper()
	top, err := NewTopology(makeGD(0, 2, 1), makeGD(1, 1, 2))
	if err != nil {
		t.Fatal(err)
	}
	table := NewTrustTable()
	if err := table.Set(0, 1, ActCompute, LevelD); err != nil {
		t.Fatal(err)
	}
	if err := table.Set(0, 1, ActStorage, LevelB); err != nil {
		t.Fatal(err)
	}
	if err := table.Set(1, 0, ActCompute, LevelE); err != nil {
		t.Fatal(err)
	}
	return top, table
}

func TestWriteDOTStructure(t *testing.T) {
	top, table := dotTopology(t)
	var sb strings.Builder
	if err := WriteDOT(&sb, top, table); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"digraph gridtrust {",
		"subgraph cluster_gd0",
		"subgraph cluster_gd1",
		"rd0 [",
		"cd1 [",
		"machine 100", // GD1's first machine id = 100
		`cd0 -> rd1 [label="compute:D\nstorage:B"`,
		`cd1 -> rd0 [label="compute:E"`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("DOT missing %q:\n%s", want, out)
		}
	}
	if !strings.HasSuffix(strings.TrimSpace(out), "}") {
		t.Error("DOT not terminated")
	}
}

func TestWriteDOTWithoutTable(t *testing.T) {
	top, _ := dotTopology(t)
	var sb strings.Builder
	if err := WriteDOT(&sb, top, nil); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(sb.String(), "label=\"compute") {
		t.Error("structure-only DOT rendered trust edges")
	}
}

func TestWriteDOTDeterministic(t *testing.T) {
	top, table := dotTopology(t)
	var a, b strings.Builder
	if err := WriteDOT(&a, top, table); err != nil {
		t.Fatal(err)
	}
	if err := WriteDOT(&b, top, table); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatal("DOT output is not deterministic")
	}
}

func TestWriteDOTErrors(t *testing.T) {
	if err := WriteDOT(&strings.Builder{}, nil, nil); err == nil {
		t.Error("nil topology accepted")
	}
	top, _ := dotTopology(t)
	if err := WriteDOT(failWriter{}, top, nil); err == nil {
		t.Error("write error swallowed")
	}
}

type failWriter struct{}

func (failWriter) Write([]byte) (int, error) { return 0, errors.New("sink closed") }

func TestSummary(t *testing.T) {
	top, _ := dotTopology(t)
	s := Summary(top)
	if !strings.Contains(s, "2 grid domains") || !strings.Contains(s, "3 machines") ||
		!strings.Contains(s, "3 clients") {
		t.Errorf("summary = %q", s)
	}
	if Summary(nil) != "<nil topology>" {
		t.Error("nil summary wrong")
	}
}
