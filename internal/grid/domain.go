package grid

import "fmt"

// DomainID identifies a Grid domain, resource domain or client domain.
type DomainID int

// GridDomain is an autonomous administrative entity "consisting of a set of
// resources and clients managed by a single administrative authority"
// (Section 3.1).  Each GD carries two virtual domains: a resource domain
// and a client domain, either of which may be empty.
type GridDomain struct {
	ID    DomainID
	Name  string
	Owner string

	// RD and CD are the virtual domains mapped onto this GD.  Nil means
	// the GD hosts no resources (resp. clients).
	RD *ResourceDomain
	CD *ClientDomain
}

// ResourceDomain signifies the resources within a GD.  Its TRMS-relevant
// attributes are "(a) ownership, (b) set of type of activity (ToA) it
// supports, and (c) trust level (TL) for each ToA" (Section 3.1).
type ResourceDomain struct {
	ID    DomainID
	Owner string

	// Supported maps each offered activity to the RD's own baseline trust
	// level for that activity.  An absent activity is not offered at all.
	Supported map[Activity]TrustLevel

	// RTL is the trust level this RD requires of clients before it will
	// host their tasks without supplementary security (the resource-side
	// required trust level of Section 3.1).
	RTL TrustLevel

	// Machines enumerates the machines belonging to the RD.  Resources
	// inherit the RD's trust parameters: "the resources and clients
	// within a GD inherit the parameters associated with the RD and CD"
	// (Section 3.1).
	Machines []*Machine
}

// Supports reports whether the RD offers every activity of the ToA.
func (rd *ResourceDomain) Supports(t ToA) bool {
	for _, a := range t.Activities {
		if _, ok := rd.Supported[a]; !ok {
			return false
		}
	}
	return true
}

// ClientDomain signifies the clients within a GD.  "The CD trust attributes
// include: (a) ownership, (b) ToAs sought, and (c) TLs associated with
// ToAs" (Section 3.1).
type ClientDomain struct {
	ID    DomainID
	Owner string

	// Sought maps each activity the domain's clients request to the trust
	// level the clients associate with it.
	Sought map[Activity]TrustLevel

	// RTL is the trust level this CD requires of resources (the
	// client-side required trust level of Section 3.1).
	RTL TrustLevel

	// Clients enumerates the clients belonging to the CD.
	Clients []*Client
}

// MachineID identifies a machine within the Grid.
type MachineID int

// Machine is a single resource capable of executing one task at a time,
// non-preemptively (the TRM algorithms' assumption (b), Section 4.1).
type Machine struct {
	ID   MachineID
	Name string
	RD   DomainID // owning resource domain
}

// ClientID identifies a client within the Grid.
type ClientID int

// Client originates requests.  Different requests of the same CD may be
// mapped onto different RDs (Section 4.1).
type Client struct {
	ID   ClientID
	Name string
	CD   DomainID // owning client domain
}

// Topology is the static shape of a simulated Grid: the GDs with their RDs,
// CDs, machines and clients.  It is deliberately a plain data structure;
// behaviour lives in the trust table, the trust engine and the scheduler.
type Topology struct {
	Domains  []*GridDomain
	machines []*Machine
	clients  []*Client
	rds      []*ResourceDomain
	cds      []*ClientDomain
}

// NewTopology assembles a topology from grid domains, validating that IDs
// are unique and machines/clients reference their owning domains.
func NewTopology(domains ...*GridDomain) (*Topology, error) {
	t := &Topology{Domains: domains}
	seenGD := map[DomainID]bool{}
	seenMachine := map[MachineID]bool{}
	seenClient := map[ClientID]bool{}
	for _, gd := range domains {
		if gd == nil {
			return nil, fmt.Errorf("grid: nil GridDomain")
		}
		if seenGD[gd.ID] {
			return nil, fmt.Errorf("grid: duplicate GridDomain ID %d", gd.ID)
		}
		seenGD[gd.ID] = true
		if gd.RD != nil {
			t.rds = append(t.rds, gd.RD)
			for _, m := range gd.RD.Machines {
				if m == nil {
					return nil, fmt.Errorf("grid: nil Machine in RD %d", gd.RD.ID)
				}
				if seenMachine[m.ID] {
					return nil, fmt.Errorf("grid: duplicate Machine ID %d", m.ID)
				}
				if m.RD != gd.RD.ID {
					return nil, fmt.Errorf("grid: machine %d claims RD %d but belongs to RD %d",
						m.ID, m.RD, gd.RD.ID)
				}
				seenMachine[m.ID] = true
				t.machines = append(t.machines, m)
			}
		}
		if gd.CD != nil {
			t.cds = append(t.cds, gd.CD)
			for _, c := range gd.CD.Clients {
				if c == nil {
					return nil, fmt.Errorf("grid: nil Client in CD %d", gd.CD.ID)
				}
				if seenClient[c.ID] {
					return nil, fmt.Errorf("grid: duplicate Client ID %d", c.ID)
				}
				if c.CD != gd.CD.ID {
					return nil, fmt.Errorf("grid: client %d claims CD %d but belongs to CD %d",
						c.ID, c.CD, gd.CD.ID)
				}
				seenClient[c.ID] = true
				t.clients = append(t.clients, c)
			}
		}
	}
	if len(t.machines) == 0 {
		return nil, fmt.Errorf("grid: topology has no machines")
	}
	return t, nil
}

// Machines returns all machines in topology order.
func (t *Topology) Machines() []*Machine { return t.machines }

// Clients returns all clients in topology order.
func (t *Topology) Clients() []*Client { return t.clients }

// ResourceDomains returns all RDs in topology order.
func (t *Topology) ResourceDomains() []*ResourceDomain { return t.rds }

// ClientDomains returns all CDs in topology order.
func (t *Topology) ClientDomains() []*ClientDomain { return t.cds }

// MachineRD returns the resource domain owning machine id.
func (t *Topology) MachineRD(id MachineID) (*ResourceDomain, error) {
	for _, m := range t.machines {
		if m.ID == id {
			for _, rd := range t.rds {
				if rd.ID == m.RD {
					return rd, nil
				}
			}
			return nil, fmt.Errorf("grid: machine %d references unknown RD %d", id, m.RD)
		}
	}
	return nil, fmt.Errorf("grid: unknown machine %d", id)
}

// ClientCD returns the client domain owning client id.
func (t *Topology) ClientCD(id ClientID) (*ClientDomain, error) {
	for _, c := range t.clients {
		if c.ID == id {
			for _, cd := range t.cds {
				if cd.ID == c.CD {
					return cd, nil
				}
			}
			return nil, fmt.Errorf("grid: client %d references unknown CD %d", id, c.CD)
		}
	}
	return nil, fmt.Errorf("grid: unknown client %d", id)
}
