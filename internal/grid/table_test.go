package grid

import (
	"sync"
	"testing"
	"testing/quick"
)

func TestTrustTableSetGet(t *testing.T) {
	tt := NewTrustTable()
	if _, ok := tt.Get(0, 1, ActCompute); ok {
		t.Fatal("empty table returned an entry")
	}
	if err := tt.Set(0, 1, ActCompute, LevelC); err != nil {
		t.Fatal(err)
	}
	got, ok := tt.Get(0, 1, ActCompute)
	if !ok || got != LevelC {
		t.Fatalf("Get = %v/%v, want C/true", got, ok)
	}
	// Distinct keys are independent.
	if _, ok := tt.Get(1, 0, ActCompute); ok {
		t.Fatal("table is not keyed by (cd, rd) order")
	}
	if _, ok := tt.Get(0, 1, ActStorage); ok {
		t.Fatal("table is not keyed by activity")
	}
}

func TestTrustTableRejectsBadEntries(t *testing.T) {
	tt := NewTrustTable()
	if err := tt.Set(0, 1, ActCompute, LevelF); err == nil {
		t.Error("table accepted OTL=F (F is requirable only)")
	}
	if err := tt.Set(0, 1, ActCompute, LevelNone); err == nil {
		t.Error("table accepted LevelNone")
	}
	if err := tt.Set(0, 1, Activity(-1), LevelB); err == nil {
		t.Error("table accepted a negative activity")
	}
	if tt.Len() != 0 {
		t.Error("rejected entries were stored")
	}
}

func TestTrustTableVersion(t *testing.T) {
	tt := NewTrustTable()
	v0 := tt.Version()
	if err := tt.Set(0, 1, ActCompute, LevelB); err != nil {
		t.Fatal(err)
	}
	if tt.Version() != v0+1 {
		t.Fatal("version did not advance on Set")
	}
	_ = tt.Set(0, 1, ActCompute, LevelF) // rejected
	if tt.Version() != v0+1 {
		t.Fatal("version advanced on a rejected Set")
	}
}

func TestOTLIsMinOverActivities(t *testing.T) {
	// Section 3.1: TL^o = min(TL for A_p, TL for A_q, TL for A_r).
	tt := NewTrustTable()
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(tt.Set(3, 7, ActCompute, LevelD))
	must(tt.Set(3, 7, ActStorage, LevelB))
	must(tt.Set(3, 7, ActPrint, LevelE))

	otl, err := tt.OTL(3, 7, MustToA(ActCompute, ActStorage, ActPrint))
	if err != nil {
		t.Fatal(err)
	}
	if otl != LevelB {
		t.Fatalf("OTL = %v, want B (the minimum)", otl)
	}

	// Atomic ToA returns its own level.
	otl, err = tt.OTL(3, 7, MustToA(ActPrint))
	if err != nil || otl != LevelE {
		t.Fatalf("atomic OTL = %v/%v, want E", otl, err)
	}
}

func TestOTLMissingActivity(t *testing.T) {
	tt := NewTrustTable()
	if err := tt.Set(0, 0, ActCompute, LevelC); err != nil {
		t.Fatal(err)
	}
	if _, err := tt.OTL(0, 0, MustToA(ActCompute, ActNetwork)); err == nil {
		t.Fatal("OTL succeeded despite a missing activity entry")
	}
	if _, err := tt.OTL(0, 0, ToA{}); err == nil {
		t.Fatal("OTL accepted an empty ToA")
	}
}

// TestOTLMinProperty checks that OTL equals the minimum entry for random
// activity subsets.
func TestOTLMinProperty(t *testing.T) {
	f := func(levels [5]uint8, mask uint8) bool {
		tt := NewTrustTable()
		min := MaxOfferable + 1
		var acts []Activity
		for i, lv := range levels {
			l := TrustLevel(int(lv)%5) + LevelA
			if err := tt.Set(1, 2, Activity(i), l); err != nil {
				return false
			}
			if mask&(1<<uint(i)) != 0 {
				acts = append(acts, Activity(i))
				if l < min {
					min = l
				}
			}
		}
		if len(acts) == 0 {
			return true
		}
		otl, err := tt.OTL(1, 2, MustToA(acts...))
		return err == nil && otl == min
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSnapshotIsolation(t *testing.T) {
	tt := NewTrustTable()
	if err := tt.Set(0, 1, ActCompute, LevelB); err != nil {
		t.Fatal(err)
	}
	rep := tt.Snapshot()
	if err := tt.Set(0, 1, ActCompute, LevelE); err != nil {
		t.Fatal(err)
	}
	got, ok := rep.Get(0, 1, ActCompute)
	if !ok || got != LevelB {
		t.Fatalf("replica saw later update: %v/%v", got, ok)
	}
	if rep.Version() == tt.Version() {
		t.Fatal("replica version should be stale after update")
	}
	live, _ := tt.Get(0, 1, ActCompute)
	if live != LevelE {
		t.Fatal("live table lost the update")
	}
}

func TestReplicaOTL(t *testing.T) {
	tt := NewTrustTable()
	_ = tt.Set(2, 4, ActCompute, LevelC)
	_ = tt.Set(2, 4, ActStorage, LevelA)
	rep := tt.Snapshot()
	otl, err := rep.OTL(2, 4, MustToA(ActCompute, ActStorage))
	if err != nil || otl != LevelA {
		t.Fatalf("replica OTL = %v/%v, want A", otl, err)
	}
	if _, err := rep.OTL(2, 4, ToA{}); err == nil {
		t.Fatal("replica OTL accepted empty ToA")
	}
	if _, err := rep.OTL(9, 9, MustToA(ActCompute)); err == nil {
		t.Fatal("replica OTL invented a missing entry")
	}
}

// TestTrustTableConcurrency exercises the agents-write / scheduler-reads
// pattern of Figure 1 under the race detector.
func TestTrustTableConcurrency(t *testing.T) {
	tt := NewTrustTable()
	for a := Activity(0); a < NumBuiltinActivities; a++ {
		if err := tt.Set(0, 1, a, LevelC); err != nil {
			t.Fatal(err)
		}
	}
	var writers, readers sync.WaitGroup
	stop := make(chan struct{})
	// Writers: four agents cycling levels.
	for w := 0; w < 4; w++ {
		writers.Add(1)
		go func(w int) {
			defer writers.Done()
			lvl := LevelA
			for i := 0; i < 500; i++ {
				_ = tt.Set(0, 1, Activity(w%NumBuiltinActivities), lvl)
				lvl++
				if lvl > MaxOfferable {
					lvl = LevelA
				}
			}
		}(w)
	}
	// Readers: schedulers computing OTLs and snapshotting.
	for r := 0; r < 4; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			toa := MustToA(ActCompute, ActStorage, ActPrint)
			for {
				select {
				case <-stop:
					return
				default:
				}
				if otl, err := tt.OTL(0, 1, toa); err == nil && !otl.Offerable() {
					t.Error("concurrent OTL out of range")
					return
				}
				_ = tt.Snapshot().Version()
			}
		}()
	}
	writers.Wait()
	close(stop)
	readers.Wait()
	if tt.Version() < 2000 {
		t.Fatalf("expected ~2000 writes, saw version %d", tt.Version())
	}
}

func TestForEachVisitsEveryEntry(t *testing.T) {
	tt := NewTrustTable()
	want := map[[3]int]TrustLevel{}
	for cd := 0; cd < 2; cd++ {
		for rd := 0; rd < 2; rd++ {
			lvl := TrustLevel(cd+rd+1) + 0
			if lvl > MaxOfferable {
				lvl = MaxOfferable
			}
			if err := tt.Set(DomainID(cd), DomainID(rd), ActCompute, lvl); err != nil {
				t.Fatal(err)
			}
			want[[3]int{cd, rd, int(ActCompute)}] = lvl
		}
	}
	got := map[[3]int]TrustLevel{}
	tt.ForEach(func(cd, rd DomainID, act Activity, tl TrustLevel) {
		got[[3]int{int(cd), int(rd), int(act)}] = tl
	})
	if len(got) != len(want) {
		t.Fatalf("ForEach visited %d entries, want %d", len(got), len(want))
	}
	for k, v := range want {
		if got[k] != v {
			t.Fatalf("entry %v = %v, want %v", k, got[k], v)
		}
	}
}

func TestEntriesRestoreRoundTrip(t *testing.T) {
	tt := NewTrustTable()
	seed := []struct {
		cd, rd DomainID
		act    Activity
		tl     TrustLevel
	}{
		{1, 2, ActCompute, LevelB},
		{0, 3, ActStorage, LevelD},
		{2, 0, ActCompute, LevelA},
	}
	for _, s := range seed {
		if err := tt.Set(s.cd, s.rd, s.act, s.tl); err != nil {
			t.Fatal(err)
		}
	}
	entries := tt.Entries()
	if len(entries) != len(seed) {
		t.Fatalf("Entries returned %d, want %d", len(entries), len(seed))
	}
	// Deterministic order: (cd, rd, activity) ascending.
	for i := 1; i < len(entries); i++ {
		a, b := entries[i-1], entries[i]
		if a.CD > b.CD || (a.CD == b.CD && a.RD > b.RD) {
			t.Fatalf("entries out of order: %+v before %+v", a, b)
		}
	}

	restored := NewTrustTable()
	if err := restored.Restore(entries, tt.Version()); err != nil {
		t.Fatal(err)
	}
	if restored.Version() != tt.Version() || restored.Len() != tt.Len() {
		t.Fatalf("restored version/len %d/%d, want %d/%d",
			restored.Version(), restored.Len(), tt.Version(), tt.Len())
	}
	for _, s := range seed {
		got, ok := restored.Get(s.cd, s.rd, s.act)
		if !ok || got != s.tl {
			t.Fatalf("restored entry (%d,%d,%v) = %v/%v, want %v", s.cd, s.rd, s.act, got, ok, s.tl)
		}
	}
}

func TestRestoreValidatesAndReplaces(t *testing.T) {
	tt := NewTrustTable()
	if err := tt.Set(9, 9, ActCompute, LevelE); err != nil {
		t.Fatal(err)
	}
	// Invalid entries reject atomically: the table keeps its old contents.
	err := tt.Restore([]TableEntry{{CD: 0, RD: 1, Activity: ActCompute, Level: LevelF}}, 5)
	if err == nil {
		t.Fatal("Restore accepted a non-offerable level")
	}
	err = tt.Restore([]TableEntry{{CD: 0, RD: 1, Activity: Activity(-2), Level: LevelB}}, 5)
	if err == nil {
		t.Fatal("Restore accepted an invalid activity")
	}
	if _, ok := tt.Get(9, 9, ActCompute); !ok {
		t.Fatal("failed Restore clobbered the table")
	}
	// A valid Restore replaces rather than merges.
	if err := tt.Restore([]TableEntry{{CD: 0, RD: 1, Activity: ActCompute, Level: LevelB}}, 7); err != nil {
		t.Fatal(err)
	}
	if _, ok := tt.Get(9, 9, ActCompute); ok {
		t.Fatal("Restore merged instead of replacing")
	}
	if tl, ok := tt.Get(0, 1, ActCompute); !ok || tl != LevelB {
		t.Fatal("Restore dropped the new entry")
	}
	if tt.Version() != 7 {
		t.Fatalf("Restore version = %d, want 7", tt.Version())
	}
}
