// Package grid implements the paper's Grid trust model (Section 3): trust
// levels A-F, types of activity (ToA), Grid domains with their virtual
// resource domains (RDs) and client domains (CDs), the CDxRD trust-level
// table, the offered/required trust level computation, and the expected
// trust supplement (ETS) of Table 1.
package grid

import "fmt"

// TrustLevel is one of the six discrete trust levels of the paper's model.
// "The trust levels A to F are assigned corresponding numeric values that
// range from 1 to 6, respectively" (Section 4.1).  A is "very low trust
// level" and F is "extremely high trust level"; F is only ever *required*
// (RTL), never *offered* (OTL), which lets a domain force maximal security.
type TrustLevel int

// The six trust levels.  LevelNone (0) is the zero value and marks an
// absent table entry; it is not a paper trust level.
const (
	LevelNone TrustLevel = iota
	LevelA               // 1: very low trust
	LevelB               // 2
	LevelC               // 3
	LevelD               // 4
	LevelE               // 5: highest offerable trust
	LevelF               // 6: extremely high trust, requirable only
)

// MinOfferable and MaxOfferable bound OTL values; MaxRequirable bounds RTLs.
// Section 5.3: "the OTL values were randomly generated from [1, 5]" and
// "the two RTL values were randomly generated from [1, 6]".
const (
	MinOfferable  = LevelA
	MaxOfferable  = LevelE
	MinRequirable = LevelA
	MaxRequirable = LevelF
)

// Valid reports whether l is one of the six paper levels A-F.
func (l TrustLevel) Valid() bool { return l >= LevelA && l <= LevelF }

// Offerable reports whether l may appear as an offered trust level.
func (l TrustLevel) Offerable() bool { return l >= MinOfferable && l <= MaxOfferable }

// String renders the paper's letter name.
func (l TrustLevel) String() string {
	switch {
	case l == LevelNone:
		return "-"
	case l.Valid():
		return string(rune('A' + int(l) - 1))
	default:
		return fmt.Sprintf("TrustLevel(%d)", int(l))
	}
}

// ParseLevel converts a letter A-F (upper or lower case) to a TrustLevel.
func ParseLevel(s string) (TrustLevel, error) {
	if len(s) != 1 {
		return LevelNone, fmt.Errorf("grid: trust level must be a single letter A-F, got %q", s)
	}
	c := s[0]
	if c >= 'a' && c <= 'f' {
		c -= 'a' - 'A'
	}
	if c < 'A' || c > 'F' {
		return LevelNone, fmt.Errorf("grid: trust level must be A-F, got %q", s)
	}
	return TrustLevel(c-'A') + LevelA, nil
}

// LevelFromScore maps a continuous trust score in [1,6] (as produced by the
// trust engine's Γ computation) onto the nearest discrete level, clamping
// out-of-range scores.  This is the quantisation step by which the evolving
// trust values of Section 2 populate the scheduling table of Section 3.
func LevelFromScore(score float64) TrustLevel {
	switch {
	case score < 1:
		return LevelA
	case score > 6:
		return LevelF
	default:
		// Round to nearest integer level.
		l := TrustLevel(int(score + 0.5))
		if l > LevelF {
			l = LevelF
		}
		if l < LevelA {
			l = LevelA
		}
		return l
	}
}

// minLevel returns the lower of two levels; used for composing activities.
func minLevel(a, b TrustLevel) TrustLevel {
	if a < b {
		return a
	}
	return b
}

// maxLevel returns the higher of two levels; used for combining the client
// and resource RTLs.
func maxLevel(a, b TrustLevel) TrustLevel {
	if a > b {
		return a
	}
	return b
}

// MaxLevel is the exported form of maxLevel for callers combining RTLs.
func MaxLevel(a, b TrustLevel) TrustLevel { return maxLevel(a, b) }
