package grid

import "testing"

// FuzzParseLevel checks ParseLevel never panics and that accepted inputs
// round-trip through String.
func FuzzParseLevel(f *testing.F) {
	for _, seed := range []string{"A", "f", "", "G", "AB", "1", "\x00", "Æ"} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		l, err := ParseLevel(s)
		if err != nil {
			return
		}
		if !l.Valid() {
			t.Fatalf("ParseLevel(%q) accepted invalid level %d", s, int(l))
		}
		back, err := ParseLevel(l.String())
		if err != nil || back != l {
			t.Fatalf("round trip of %q failed: %v %v", s, back, err)
		}
	})
}

// FuzzETSWith checks both ETS rules across the whole input space: valid
// inputs produce values in [0,6]; invalid inputs produce errors, never
// panics.
func FuzzETSWith(f *testing.F) {
	f.Add(0, 1, 1)
	f.Add(1, 6, 5)
	f.Add(1, 6, 1)
	f.Add(0, -3, 99)
	f.Fuzz(func(t *testing.T, rule, rtl, otl int) {
		v, err := ETSWith(ETSRule(rule), TrustLevel(rtl), TrustLevel(otl))
		if err != nil {
			return
		}
		if v < TCMin || v > TCMax {
			t.Fatalf("ETSWith(%d,%d,%d) = %d outside [0,6]", rule, rtl, otl, v)
		}
		// Valid output implies valid inputs.
		if !ETSRule(rule).Valid() || !TrustLevel(rtl).Valid() || !TrustLevel(otl).Offerable() {
			t.Fatalf("ETSWith accepted invalid inputs (%d,%d,%d)", rule, rtl, otl)
		}
	})
}

// FuzzLevelFromScore checks quantisation totality.
func FuzzLevelFromScore(f *testing.F) {
	f.Add(0.0)
	f.Add(3.49)
	f.Add(6.0)
	f.Add(-1e300)
	f.Fuzz(func(t *testing.T, score float64) {
		l := LevelFromScore(score)
		if !l.Valid() {
			t.Fatalf("LevelFromScore(%g) = %d invalid", score, int(l))
		}
	})
}
