package grid

import (
	"strings"
	"testing"
)

func TestToAConstruction(t *testing.T) {
	if _, err := NewToA(); err == nil {
		t.Error("NewToA accepted an empty activity set")
	}
	if _, err := NewToA(Activity(-2)); err == nil {
		t.Error("NewToA accepted an invalid activity")
	}
	toa, err := NewToA(ActCompute)
	if err != nil {
		t.Fatal(err)
	}
	if !toa.Atomic() {
		t.Error("single-activity ToA should be atomic")
	}
	composed, err := NewToA(ActCompute, ActStorage)
	if err != nil {
		t.Fatal(err)
	}
	if composed.Atomic() {
		t.Error("two-activity ToA should not be atomic")
	}
}

func TestToACopiesInput(t *testing.T) {
	acts := []Activity{ActCompute, ActStorage}
	toa, err := NewToA(acts...)
	if err != nil {
		t.Fatal(err)
	}
	acts[0] = ActPrint
	if toa.Activities[0] != ActCompute {
		t.Error("ToA aliases the caller's slice")
	}
}

func TestToAString(t *testing.T) {
	s := MustToA(ActCompute, ActStorage).String()
	if !strings.Contains(s, "compute") || !strings.Contains(s, "storage") {
		t.Errorf("ToA string %q missing activity names", s)
	}
}

func TestActivityString(t *testing.T) {
	if ActPrint.String() != "print" {
		t.Errorf("ActPrint = %q", ActPrint.String())
	}
	if got := Activity(42).String(); got != "activity(42)" {
		t.Errorf("unknown activity = %q", got)
	}
}

func TestMustToAPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustToA did not panic")
		}
	}()
	MustToA()
}

func makeGD(id DomainID, machines, clients int) *GridDomain {
	gd := &GridDomain{ID: id, Name: "gd", Owner: "org"}
	rd := &ResourceDomain{
		ID:        id,
		Owner:     "org",
		Supported: map[Activity]TrustLevel{ActCompute: LevelC},
		RTL:       LevelB,
	}
	for i := 0; i < machines; i++ {
		rd.Machines = append(rd.Machines, &Machine{
			ID: MachineID(int(id)*100 + i), RD: id,
		})
	}
	cd := &ClientDomain{
		ID:     id,
		Owner:  "org",
		Sought: map[Activity]TrustLevel{ActCompute: LevelC},
		RTL:    LevelB,
	}
	for i := 0; i < clients; i++ {
		cd.Clients = append(cd.Clients, &Client{
			ID: ClientID(int(id)*100 + i), CD: id,
		})
	}
	gd.RD, gd.CD = rd, cd
	return gd
}

func TestTopologyConstruction(t *testing.T) {
	top, err := NewTopology(makeGD(0, 2, 1), makeGD(1, 3, 2))
	if err != nil {
		t.Fatal(err)
	}
	if got := len(top.Machines()); got != 5 {
		t.Errorf("machines = %d, want 5", got)
	}
	if got := len(top.Clients()); got != 3 {
		t.Errorf("clients = %d, want 3", got)
	}
	if got := len(top.ResourceDomains()); got != 2 {
		t.Errorf("RDs = %d, want 2", got)
	}
	if got := len(top.ClientDomains()); got != 2 {
		t.Errorf("CDs = %d, want 2", got)
	}
}

func TestTopologyValidation(t *testing.T) {
	if _, err := NewTopology(makeGD(0, 1, 1), makeGD(0, 1, 1)); err == nil {
		t.Error("accepted duplicate GD IDs")
	}
	if _, err := NewTopology(); err == nil {
		t.Error("accepted a topology with no machines")
	}
	gdNoMachines := makeGD(0, 0, 1)
	if _, err := NewTopology(gdNoMachines); err == nil {
		t.Error("accepted a machineless topology")
	}
	// Machine claiming the wrong RD.
	bad := makeGD(0, 1, 0)
	bad.RD.Machines[0].RD = 99
	if _, err := NewTopology(bad); err == nil {
		t.Error("accepted a machine with mismatched RD")
	}
	// Client claiming the wrong CD.
	bad2 := makeGD(0, 1, 1)
	bad2.CD.Clients[0].CD = 99
	if _, err := NewTopology(bad2); err == nil {
		t.Error("accepted a client with mismatched CD")
	}
	// Duplicate machine IDs across GDs.
	a, b := makeGD(0, 1, 0), makeGD(1, 1, 0)
	b.RD.Machines[0].ID = a.RD.Machines[0].ID
	if _, err := NewTopology(a, b); err == nil {
		t.Error("accepted duplicate machine IDs")
	}
	if _, err := NewTopology(nil); err == nil {
		t.Error("accepted a nil GridDomain")
	}
}

func TestTopologyLookups(t *testing.T) {
	top, err := NewTopology(makeGD(0, 1, 1), makeGD(1, 1, 1))
	if err != nil {
		t.Fatal(err)
	}
	m := top.Machines()[1]
	rd, err := top.MachineRD(m.ID)
	if err != nil {
		t.Fatal(err)
	}
	if rd.ID != m.RD {
		t.Errorf("MachineRD returned RD %d, want %d", rd.ID, m.RD)
	}
	c := top.Clients()[0]
	cd, err := top.ClientCD(c.ID)
	if err != nil {
		t.Fatal(err)
	}
	if cd.ID != c.CD {
		t.Errorf("ClientCD returned CD %d, want %d", cd.ID, c.CD)
	}
	if _, err := top.MachineRD(MachineID(999)); err == nil {
		t.Error("MachineRD found an unknown machine")
	}
	if _, err := top.ClientCD(ClientID(999)); err == nil {
		t.Error("ClientCD found an unknown client")
	}
}

func TestResourceDomainSupports(t *testing.T) {
	rd := &ResourceDomain{Supported: map[Activity]TrustLevel{
		ActCompute: LevelC, ActStorage: LevelB,
	}}
	if !rd.Supports(MustToA(ActCompute)) {
		t.Error("RD should support compute")
	}
	if !rd.Supports(MustToA(ActCompute, ActStorage)) {
		t.Error("RD should support compute+storage")
	}
	if rd.Supports(MustToA(ActCompute, ActPrint)) {
		t.Error("RD should not support print")
	}
}
