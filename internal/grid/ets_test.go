package grid

import (
	"testing"
	"testing/quick"
)

// TestETSMatchesPaperTable1 enumerates every cell of the paper's Table 1.
// Rows are RTL A-F, columns OTL A-E; symbolic differences like "C - A" are
// the numeric level differences, and the F row is the constant F (=6).
func TestETSMatchesPaperTable1(t *testing.T) {
	want := [6][5]int{
		//        OTL:  A  B  C  D  E
		/* RTL A */ {0, 0, 0, 0, 0},
		/* RTL B */ {1, 0, 0, 0, 0},
		/* RTL C */ {2, 1, 0, 0, 0},
		/* RTL D */ {3, 2, 1, 0, 0},
		/* RTL E */ {4, 3, 2, 1, 0},
		/* RTL F */ {6, 6, 6, 6, 6},
	}
	got := ETSTable()
	for r := 0; r < 6; r++ {
		for o := 0; o < 5; o++ {
			if got[r][o] != want[r][o] {
				t.Errorf("ETS(RTL=%v, OTL=%v) = %d, want %d",
					TrustLevel(r+1), TrustLevel(o+1), got[r][o], want[r][o])
			}
		}
	}
}

func TestETSErrors(t *testing.T) {
	if _, err := ETS(LevelNone, LevelA); err == nil {
		t.Error("ETS accepted invalid RTL")
	}
	if _, err := ETS(LevelA, LevelF); err == nil {
		t.Error("ETS accepted non-offerable OTL=F")
	}
	if _, err := ETS(LevelA, LevelNone); err == nil {
		t.Error("ETS accepted OTL=none")
	}
	if _, err := ETS(TrustLevel(7), LevelA); err == nil {
		t.Error("ETS accepted out-of-range RTL")
	}
}

func TestETSProperties(t *testing.T) {
	// ETS is in [0,6]; zero exactly when OTL >= RTL (except the F row);
	// monotone non-decreasing in RTL and non-increasing in OTL.
	f := func(rRaw, oRaw uint8) bool {
		rtl := TrustLevel(int(rRaw)%6) + LevelA
		otl := TrustLevel(int(oRaw)%5) + LevelA
		v := MustETS(rtl, otl)
		if v < TCMin || v > TCMax {
			return false
		}
		if rtl == LevelF {
			return v == 6
		}
		if otl >= rtl && v != 0 {
			return false
		}
		if otl < rtl && v != int(rtl)-int(otl) {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestETSMonotonicity(t *testing.T) {
	for otl := MinOfferable; otl <= MaxOfferable; otl++ {
		prev := -1
		for rtl := LevelA; rtl <= LevelF; rtl++ {
			v := MustETS(rtl, otl)
			if v < prev {
				t.Errorf("ETS not monotone in RTL at (%v,%v)", rtl, otl)
			}
			prev = v
		}
	}
	for rtl := LevelA; rtl <= LevelF; rtl++ {
		prev := TCMax + 1
		for otl := MinOfferable; otl <= MaxOfferable; otl++ {
			v := MustETS(rtl, otl)
			if v > prev {
				t.Errorf("ETS not anti-monotone in OTL at (%v,%v)", rtl, otl)
			}
			prev = v
		}
	}
}

func TestMustETSPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustETS did not panic on invalid input")
		}
	}()
	MustETS(LevelNone, LevelA)
}

// TestETSLinearRule enumerates the linear variant: every row, including F,
// is max(RTL−OTL, 0).
func TestETSLinearRule(t *testing.T) {
	for rtl := LevelA; rtl <= LevelF; rtl++ {
		for otl := MinOfferable; otl <= MaxOfferable; otl++ {
			got, err := ETSWith(ETSLinear, rtl, otl)
			if err != nil {
				t.Fatal(err)
			}
			want := int(rtl) - int(otl)
			if want < 0 {
				want = 0
			}
			if got != want {
				t.Errorf("ETSLinear(%v,%v) = %d, want %d", rtl, otl, got, want)
			}
		}
	}
}

func TestETSRulesAgreeBelowF(t *testing.T) {
	for rtl := LevelA; rtl < LevelF; rtl++ {
		for otl := MinOfferable; otl <= MaxOfferable; otl++ {
			a, err := ETSWith(ETSTable1, rtl, otl)
			if err != nil {
				t.Fatal(err)
			}
			b, err := ETSWith(ETSLinear, rtl, otl)
			if err != nil {
				t.Fatal(err)
			}
			if a != b {
				t.Errorf("rules disagree at (%v,%v): %d vs %d", rtl, otl, a, b)
			}
		}
	}
}

func TestETSRuleValidation(t *testing.T) {
	if _, err := ETSWith(ETSRule(9), LevelA, LevelA); err == nil {
		t.Error("accepted unknown rule")
	}
	if !ETSTable1.Valid() || !ETSLinear.Valid() || ETSRule(9).Valid() {
		t.Error("rule validity wrong")
	}
	if ETSTable1.String() != "table1" || ETSLinear.String() != "linear" {
		t.Error("rule names wrong")
	}
}

func TestTrustCostWithLinear(t *testing.T) {
	// Under the linear rule the F row can be partially satisfied.
	got, err := TrustCostWith(ETSLinear, LevelF, LevelA, LevelE)
	if err != nil {
		t.Fatal(err)
	}
	if got != 1 {
		t.Fatalf("linear TC(F,A,E) = %d, want 1", got)
	}
	got, err = TrustCostWith(ETSTable1, LevelF, LevelA, LevelE)
	if err != nil {
		t.Fatal(err)
	}
	if got != 6 {
		t.Fatalf("table1 TC(F,A,E) = %d, want 6", got)
	}
}

func TestTrustCost(t *testing.T) {
	// Effective RTL is max(client, resource).
	cases := []struct {
		client, resource, otl TrustLevel
		want                  int
	}{
		{LevelA, LevelA, LevelE, 0},
		{LevelC, LevelB, LevelA, 2}, // max=C, C-A=2
		{LevelB, LevelD, LevelB, 2}, // max=D, D-B=2
		{LevelF, LevelA, LevelE, 6}, // F row
		{LevelA, LevelF, LevelE, 6},
		{LevelE, LevelE, LevelE, 0},
		{LevelE, LevelE, LevelA, 4},
	}
	for _, tc := range cases {
		got, err := TrustCost(tc.client, tc.resource, tc.otl)
		if err != nil {
			t.Errorf("TrustCost(%v,%v,%v): %v", tc.client, tc.resource, tc.otl, err)
			continue
		}
		if got != tc.want {
			t.Errorf("TrustCost(%v,%v,%v) = %d, want %d",
				tc.client, tc.resource, tc.otl, got, tc.want)
		}
	}
}

func TestTrustCostErrors(t *testing.T) {
	if _, err := TrustCost(LevelNone, LevelA, LevelA); err == nil {
		t.Error("accepted invalid client RTL")
	}
	if _, err := TrustCost(LevelA, LevelNone, LevelA); err == nil {
		t.Error("accepted invalid resource RTL")
	}
	if _, err := TrustCost(LevelA, LevelA, LevelF); err == nil {
		t.Error("accepted non-offerable OTL")
	}
}

// TestTrustCostNoOverheadCondition encodes Section 3.1's rule: "If the OTL
// is greater than or equal to the maximum of client and resource RTLs, then
// the activity can proceed with no additional overhead."
func TestTrustCostNoOverheadCondition(t *testing.T) {
	f := func(cRaw, rRaw, oRaw uint8) bool {
		client := TrustLevel(int(cRaw)%6) + LevelA
		resource := TrustLevel(int(rRaw)%6) + LevelA
		otl := TrustLevel(int(oRaw)%5) + LevelA
		tc, err := TrustCost(client, resource, otl)
		if err != nil {
			return false
		}
		eff := MaxLevel(client, resource)
		if eff == LevelF {
			return tc == 6 // F can never be satisfied by an OTL
		}
		if otl >= eff {
			return tc == 0
		}
		return tc > 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
