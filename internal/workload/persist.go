package workload

import (
	"encoding/json"
	"fmt"
	"io"

	"gridtrust/internal/grid"
)

// serialisedWorkload is the JSON form of a Workload.  Instances can be
// saved and reloaded bit-exactly, so a surprising simulation result can be
// shared and replayed without shipping the generator seed and code
// version together.
type serialisedWorkload struct {
	Version  int                 `json:"version"`
	Spec     serialisedSpec      `json:"spec"`
	EEC      [][]float64         `json:"eec"`
	Requests []serialisedRequest `json:"requests"`

	NumCDs      int            `json:"num_cds"`
	NumRDs      int            `json:"num_rds"`
	MachineRD   []int          `json:"machine_rd"`
	ResourceRTL map[string]int `json:"resource_rtl"`
	Table       []tableEntry   `json:"table"`
}

type serialisedSpec struct {
	Tasks         int     `json:"tasks"`
	Machines      int     `json:"machines"`
	NumCDs        int     `json:"num_cds"`
	NumRDs        int     `json:"num_rds"`
	ArrivalRate   float64 `json:"arrival_rate"`
	MinToAs       int     `json:"min_toas"`
	MaxToAs       int     `json:"max_toas"`
	TaskRange     float64 `json:"task_range"`
	MachineRange  float64 `json:"machine_range"`
	Consistency   int     `json:"consistency"`
	ETSRule       int     `json:"ets_rule"`
	DeadlineSlack float64 `json:"deadline_slack"`
}

type serialisedRequest struct {
	ID         int     `json:"id"`
	ArrivalAt  float64 `json:"arrival_at"`
	TaskIndex  int     `json:"task_index"`
	CD         int     `json:"cd"`
	Activities []int   `json:"activities"`
	ClientRTL  int     `json:"client_rtl"`
	Deadline   float64 `json:"deadline,omitempty"`
}

type tableEntry struct {
	CD       int `json:"cd"`
	RD       int `json:"rd"`
	Activity int `json:"activity"`
	Level    int `json:"level"`
}

const workloadFormatVersion = 1

// Save writes the workload as JSON.
func (w *Workload) Save(out io.Writer) error {
	sw := serialisedWorkload{
		Version: workloadFormatVersion,
		Spec: serialisedSpec{
			Tasks: w.Spec.Tasks, Machines: w.Spec.Machines,
			NumCDs: w.Spec.NumCDs, NumRDs: w.Spec.NumRDs,
			ArrivalRate: w.Spec.ArrivalRate,
			MinToAs:     w.Spec.MinToAs, MaxToAs: w.Spec.MaxToAs,
			TaskRange:     w.Spec.Heterogeneity.TaskRange,
			MachineRange:  w.Spec.Heterogeneity.MachineRange,
			Consistency:   int(w.Spec.Consistency),
			ETSRule:       int(w.Spec.ETSRule),
			DeadlineSlack: w.Spec.DeadlineSlack,
		},
		NumCDs: w.NumCDs, NumRDs: w.NumRDs,
		ResourceRTL: make(map[string]int, len(w.ResourceRTL)),
	}
	sw.EEC = make([][]float64, w.EEC.Tasks)
	for t := 0; t < w.EEC.Tasks; t++ {
		sw.EEC[t] = w.EEC.Row(t)
	}
	for _, r := range w.Requests {
		acts := make([]int, len(r.ToA.Activities))
		for i, a := range r.ToA.Activities {
			acts[i] = int(a)
		}
		sw.Requests = append(sw.Requests, serialisedRequest{
			ID: r.ID, ArrivalAt: r.ArrivalAt, TaskIndex: r.TaskIndex,
			CD: int(r.CD), Activities: acts, ClientRTL: int(r.ClientRTL),
			Deadline: r.Deadline,
		})
	}
	sw.MachineRD = make([]int, len(w.MachineRD))
	for m, rd := range w.MachineRD {
		sw.MachineRD[m] = int(rd)
	}
	for rd, rtl := range w.ResourceRTL {
		sw.ResourceRTL[fmt.Sprintf("%d", rd)] = int(rtl)
	}
	for cd := 0; cd < w.NumCDs; cd++ {
		for rd := 0; rd < w.NumRDs; rd++ {
			for a := grid.Activity(0); a < grid.NumBuiltinActivities; a++ {
				if tl, ok := w.Table.Get(grid.DomainID(cd), grid.DomainID(rd), a); ok {
					sw.Table = append(sw.Table, tableEntry{
						CD: cd, RD: rd, Activity: int(a), Level: int(tl),
					})
				}
			}
		}
	}
	data, err := json.MarshalIndent(&sw, "", " ")
	if err != nil {
		return fmt.Errorf("workload: marshal: %w", err)
	}
	data = append(data, '\n')
	if _, err := out.Write(data); err != nil {
		return fmt.Errorf("workload: write: %w", err)
	}
	return nil
}

// Load reads a workload saved with Save, validating structure and ranges.
func Load(in io.Reader) (*Workload, error) {
	data, err := io.ReadAll(in)
	if err != nil {
		return nil, fmt.Errorf("workload: read: %w", err)
	}
	var sw serialisedWorkload
	if err := json.Unmarshal(data, &sw); err != nil {
		return nil, fmt.Errorf("workload: parse: %w", err)
	}
	if sw.Version != workloadFormatVersion {
		return nil, fmt.Errorf("workload: unsupported format version %d", sw.Version)
	}
	spec := Spec{
		Tasks: sw.Spec.Tasks, Machines: sw.Spec.Machines,
		NumCDs: sw.Spec.NumCDs, NumRDs: sw.Spec.NumRDs,
		ArrivalRate: sw.Spec.ArrivalRate,
		MinToAs:     sw.Spec.MinToAs, MaxToAs: sw.Spec.MaxToAs,
		Heterogeneity: Heterogeneity{
			TaskRange: sw.Spec.TaskRange, MachineRange: sw.Spec.MachineRange,
		},
		Consistency:   Consistency(sw.Spec.Consistency),
		ETSRule:       grid.ETSRule(sw.Spec.ETSRule),
		DeadlineSlack: sw.Spec.DeadlineSlack,
	}
	if err := spec.validate(); err != nil {
		return nil, err
	}
	if len(sw.EEC) != spec.Tasks {
		return nil, fmt.Errorf("workload: EEC has %d rows for %d tasks", len(sw.EEC), spec.Tasks)
	}
	m, err := NewMatrix(spec.Tasks, spec.Machines)
	if err != nil {
		return nil, err
	}
	for t, row := range sw.EEC {
		if len(row) != spec.Machines {
			return nil, fmt.Errorf("workload: EEC row %d has %d entries", t, len(row))
		}
		for j, v := range row {
			if v < 0 {
				return nil, fmt.Errorf("workload: negative EEC at (%d,%d)", t, j)
			}
			m.Set(t, j, v)
		}
	}
	if len(sw.Requests) != spec.Tasks {
		return nil, fmt.Errorf("workload: %d requests for %d tasks", len(sw.Requests), spec.Tasks)
	}
	if len(sw.MachineRD) != spec.Machines {
		return nil, fmt.Errorf("workload: machine_rd has %d entries", len(sw.MachineRD))
	}

	w := &Workload{
		Spec: spec, EEC: m,
		NumCDs: sw.NumCDs, NumRDs: sw.NumRDs,
		MachineRD:   make([]grid.DomainID, spec.Machines),
		ResourceRTL: make(map[grid.DomainID]grid.TrustLevel, len(sw.ResourceRTL)),
		Table:       grid.NewTrustTable(),
	}
	if w.NumCDs < 1 || w.NumRDs < 1 {
		return nil, fmt.Errorf("workload: non-positive domain counts %d/%d", w.NumCDs, w.NumRDs)
	}
	for i, rd := range sw.MachineRD {
		if rd < 0 || rd >= sw.NumRDs {
			return nil, fmt.Errorf("workload: machine %d references RD %d", i, rd)
		}
		w.MachineRD[i] = grid.DomainID(rd)
	}
	for key, rtl := range sw.ResourceRTL {
		var rd int
		if _, err := fmt.Sscanf(key, "%d", &rd); err != nil {
			return nil, fmt.Errorf("workload: bad resource RTL key %q", key)
		}
		lvl := grid.TrustLevel(rtl)
		if !lvl.Valid() {
			return nil, fmt.Errorf("workload: RD %d RTL %d invalid", rd, rtl)
		}
		w.ResourceRTL[grid.DomainID(rd)] = lvl
	}
	for _, e := range sw.Table {
		if err := w.Table.Set(grid.DomainID(e.CD), grid.DomainID(e.RD),
			grid.Activity(e.Activity), grid.TrustLevel(e.Level)); err != nil {
			return nil, err
		}
	}
	w.Requests = make([]Request, spec.Tasks)
	for i, sr := range sw.Requests {
		acts := make([]grid.Activity, len(sr.Activities))
		for k, a := range sr.Activities {
			acts[k] = grid.Activity(a)
		}
		toa, err := grid.NewToA(acts...)
		if err != nil {
			return nil, fmt.Errorf("workload: request %d: %w", i, err)
		}
		rtl := grid.TrustLevel(sr.ClientRTL)
		if !rtl.Valid() {
			return nil, fmt.Errorf("workload: request %d client RTL %d invalid", i, sr.ClientRTL)
		}
		if sr.TaskIndex < 0 || sr.TaskIndex >= spec.Tasks {
			return nil, fmt.Errorf("workload: request %d task index %d out of range", i, sr.TaskIndex)
		}
		w.Requests[i] = Request{
			ID: sr.ID, ArrivalAt: sr.ArrivalAt, TaskIndex: sr.TaskIndex,
			CD: grid.DomainID(sr.CD), ToA: toa, ClientRTL: rtl,
			Deadline: sr.Deadline,
		}
	}
	// Every request must be able to compute a trust cost on every
	// machine; surface gaps now rather than mid-simulation.
	for _, r := range w.Requests {
		for mi := 0; mi < spec.Machines; mi++ {
			if _, err := w.TrustCost(r, mi); err != nil {
				return nil, fmt.Errorf("workload: loaded instance incomplete: %w", err)
			}
		}
	}
	return w, nil
}
