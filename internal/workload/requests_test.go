package workload

import (
	"testing"

	"gridtrust/internal/grid"
	"gridtrust/internal/rng"
)

func TestPaperSpecShape(t *testing.T) {
	s := PaperSpec(50, Inconsistent)
	if s.Tasks != 50 || s.Machines != 5 {
		t.Fatalf("paper spec dims wrong: %+v", s)
	}
	if s.MinToAs != 1 || s.MaxToAs != 4 {
		t.Fatalf("paper spec ToA bounds wrong: %+v", s)
	}
	if s.Heterogeneity != LoLo {
		t.Fatalf("paper spec heterogeneity = %v, want LoLo", s.Heterogeneity)
	}
}

func TestNewWorkloadPaperRanges(t *testing.T) {
	src := rng.New(42)
	w, err := NewWorkload(src, PaperSpec(100, Inconsistent))
	if err != nil {
		t.Fatal(err)
	}
	if w.NumCDs < 1 || w.NumCDs > 4 || w.NumRDs < 1 || w.NumRDs > 4 {
		t.Fatalf("domain counts outside [1,4]: CDs=%d RDs=%d", w.NumCDs, w.NumRDs)
	}
	if len(w.Requests) != 100 {
		t.Fatalf("requests = %d", len(w.Requests))
	}
	prevArrival := 0.0
	for i, r := range w.Requests {
		if n := len(r.ToA.Activities); n < 1 || n > 4 {
			t.Fatalf("request %d has %d ToAs, want [1,4]", i, n)
		}
		if r.ClientRTL < grid.LevelA || r.ClientRTL > grid.LevelF {
			t.Fatalf("request %d client RTL %v outside [1,6]", i, r.ClientRTL)
		}
		if int(r.CD) < 0 || int(r.CD) >= w.NumCDs {
			t.Fatalf("request %d CD %d outside [0,%d)", i, r.CD, w.NumCDs)
		}
		if r.ArrivalAt < prevArrival {
			t.Fatalf("arrivals not monotone at request %d", i)
		}
		prevArrival = r.ArrivalAt
		if r.TaskIndex != i {
			t.Fatalf("request %d task index %d", i, r.TaskIndex)
		}
		// ToA activities must be distinct.
		seen := map[grid.Activity]bool{}
		for _, a := range r.ToA.Activities {
			if seen[a] {
				t.Fatalf("request %d repeats activity %v", i, a)
			}
			seen[a] = true
		}
	}
	for rd, rtl := range w.ResourceRTL {
		if rtl < grid.LevelA || rtl > grid.LevelF {
			t.Fatalf("RD %d RTL %v outside [1,6]", rd, rtl)
		}
	}
	// Every (CD, RD, activity) triple must have a table entry in [1,5].
	for cd := 0; cd < w.NumCDs; cd++ {
		for rd := 0; rd < w.NumRDs; rd++ {
			for a := grid.Activity(0); a < grid.NumBuiltinActivities; a++ {
				tl, ok := w.Table.Get(grid.DomainID(cd), grid.DomainID(rd), a)
				if !ok {
					t.Fatalf("missing table entry (%d,%d,%v)", cd, rd, a)
				}
				if !tl.Offerable() {
					t.Fatalf("table entry (%d,%d,%v) = %v is not offerable", cd, rd, a, tl)
				}
			}
		}
	}
}

func TestNewWorkloadMachineRDAssignment(t *testing.T) {
	src := rng.New(7)
	s := PaperSpec(10, Consistent)
	s.NumRDs = 3
	w, err := NewWorkload(src, s)
	if err != nil {
		t.Fatal(err)
	}
	if len(w.MachineRD) != 5 {
		t.Fatalf("machineRD len = %d", len(w.MachineRD))
	}
	rdSeen := map[grid.DomainID]bool{}
	for m, rd := range w.MachineRD {
		if int(rd) < 0 || int(rd) >= 3 {
			t.Fatalf("machine %d assigned to RD %d", m, rd)
		}
		rdSeen[rd] = true
	}
	if len(rdSeen) != 3 {
		t.Fatalf("only %d RDs own machines, want 3", len(rdSeen))
	}
}

func TestNewWorkloadDeterminism(t *testing.T) {
	a, err := NewWorkload(rng.New(5), PaperSpec(30, Inconsistent))
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewWorkload(rng.New(5), PaperSpec(30, Inconsistent))
	if err != nil {
		t.Fatal(err)
	}
	if a.NumCDs != b.NumCDs || a.NumRDs != b.NumRDs {
		t.Fatal("same seed produced different domain counts")
	}
	for i := range a.Requests {
		ra, rb := a.Requests[i], b.Requests[i]
		if ra.ArrivalAt != rb.ArrivalAt || ra.CD != rb.CD || ra.ClientRTL != rb.ClientRTL {
			t.Fatalf("request %d differs between identical seeds", i)
		}
	}
}

func TestNewWorkloadValidation(t *testing.T) {
	src := rng.New(1)
	bad := []Spec{
		{},
		{Tasks: 10},
		{Tasks: 10, Machines: 5},
		{Tasks: 10, Machines: 5, ArrivalRate: 1, MinToAs: 0, MaxToAs: 4},
		{Tasks: 10, Machines: 5, ArrivalRate: 1, MinToAs: 3, MaxToAs: 2},
		{Tasks: 10, Machines: 5, ArrivalRate: 1, MinToAs: 1, MaxToAs: 99},
		{Tasks: -1, Machines: 5, ArrivalRate: 1, MinToAs: 1, MaxToAs: 2},
	}
	for i, s := range bad {
		s.Heterogeneity = LoLo
		if _, err := NewWorkload(src, s); err == nil {
			t.Errorf("bad spec %d accepted: %+v", i, s)
		}
	}
	if _, err := NewWorkload(nil, PaperSpec(5, Consistent)); err == nil {
		t.Error("accepted nil source")
	}
}

func TestWorkloadTrustCost(t *testing.T) {
	src := rng.New(9)
	w, err := NewWorkload(src, PaperSpec(20, Inconsistent))
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range w.Requests {
		for m := 0; m < w.Spec.Machines; m++ {
			tc, err := w.TrustCost(r, m)
			if err != nil {
				t.Fatalf("TrustCost(req %d, machine %d): %v", r.ID, m, err)
			}
			if tc < grid.TCMin || tc > grid.TCMax {
				t.Fatalf("TC = %d outside [0,6]", tc)
			}
			// Cross-check against a manual computation.
			rd := w.MachineRD[m]
			otl, err := w.Table.OTL(r.CD, rd, r.ToA)
			if err != nil {
				t.Fatal(err)
			}
			want, err := grid.TrustCostWith(w.Spec.ETSRule, r.ClientRTL, w.ResourceRTL[rd], otl)
			if err != nil {
				t.Fatal(err)
			}
			if tc != want {
				t.Fatalf("TC mismatch: got %d want %d", tc, want)
			}
		}
	}
	if _, err := w.TrustCost(w.Requests[0], -1); err == nil {
		t.Error("accepted negative machine index")
	}
	if _, err := w.TrustCost(w.Requests[0], 99); err == nil {
		t.Error("accepted out-of-range machine index")
	}
}

func TestWorkloadExplicitDomainCounts(t *testing.T) {
	src := rng.New(11)
	s := PaperSpec(10, Consistent)
	s.NumCDs, s.NumRDs = 2, 4
	w, err := NewWorkload(src, s)
	if err != nil {
		t.Fatal(err)
	}
	if w.NumCDs != 2 || w.NumRDs != 4 {
		t.Fatalf("explicit domain counts ignored: %d/%d", w.NumCDs, w.NumRDs)
	}
}

func TestArrivalRateControlsSpacing(t *testing.T) {
	fast, err := NewWorkload(rng.New(3), Spec{
		Tasks: 200, Machines: 5, ArrivalRate: 10, MinToAs: 1, MaxToAs: 4,
		Heterogeneity: LoLo, Consistency: Inconsistent,
	})
	if err != nil {
		t.Fatal(err)
	}
	slow, err := NewWorkload(rng.New(3), Spec{
		Tasks: 200, Machines: 5, ArrivalRate: 0.1, MinToAs: 1, MaxToAs: 4,
		Heterogeneity: LoLo, Consistency: Inconsistent,
	})
	if err != nil {
		t.Fatal(err)
	}
	fastSpan := fast.Requests[len(fast.Requests)-1].ArrivalAt
	slowSpan := slow.Requests[len(slow.Requests)-1].ArrivalAt
	if slowSpan < 10*fastSpan {
		t.Fatalf("arrival rate has no effect: fast span %g, slow span %g", fastSpan, slowSpan)
	}
}

func TestDeadlineGeneration(t *testing.T) {
	spec := PaperSpec(30, Inconsistent)
	spec.DeadlineSlack = 4
	w, err := NewWorkload(rng.New(51), spec)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range w.Requests {
		if r.Deadline <= r.ArrivalAt {
			t.Fatalf("request %d deadline %g not after arrival %g", i, r.Deadline, r.ArrivalAt)
		}
		meanEEC := 0.0
		for m := 0; m < spec.Machines; m++ {
			meanEEC += w.EEC.At(i, m)
		}
		meanEEC /= float64(spec.Machines)
		want := r.ArrivalAt + 4*meanEEC
		if diff := r.Deadline - want; diff > 1e-9 || diff < -1e-9 {
			t.Fatalf("request %d deadline %g, want %g", i, r.Deadline, want)
		}
	}
	// Slack 0 disables deadlines.
	w2, err := NewWorkload(rng.New(51), PaperSpec(10, Inconsistent))
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range w2.Requests {
		if r.Deadline != 0 {
			t.Fatal("deadline set without slack")
		}
	}
	bad := PaperSpec(10, Inconsistent)
	bad.DeadlineSlack = -1
	if _, err := NewWorkload(rng.New(1), bad); err == nil {
		t.Fatal("negative slack accepted")
	}
}

func TestTCStats(t *testing.T) {
	w, err := NewWorkload(rng.New(61), PaperSpec(60, Inconsistent))
	if err != nil {
		t.Fatal(err)
	}
	d, err := w.TCStats()
	if err != nil {
		t.Fatal(err)
	}
	if d.Pairs != 60*5 {
		t.Fatalf("pairs = %d, want 300", d.Pairs)
	}
	total := 0
	var weighted float64
	for tc, c := range d.Counts {
		if c < 0 {
			t.Fatalf("negative count at TC %d", tc)
		}
		total += c
		weighted += float64(tc * c)
	}
	if total != d.Pairs {
		t.Fatalf("counts sum to %d, want %d", total, d.Pairs)
	}
	if got := weighted / float64(total); got != d.Mean {
		t.Fatalf("mean %g inconsistent with counts (%g)", d.Mean, got)
	}
	// The paper's calibration: "the average TC value is 3".  Any single
	// instance fluctuates; allow a generous band.
	if d.Mean < 1.5 || d.Mean > 4.5 {
		t.Fatalf("mean TC %g far from the paper's ~3", d.Mean)
	}
}

// TestTCStatsMeanAcrossSeeds verifies the ~3 calibration in aggregate,
// where the law of large numbers applies.
func TestTCStatsMeanAcrossSeeds(t *testing.T) {
	var sum float64
	const seeds = 40
	for seed := uint64(0); seed < seeds; seed++ {
		w, err := NewWorkload(rng.New(seed), PaperSpec(50, Inconsistent))
		if err != nil {
			t.Fatal(err)
		}
		d, err := w.TCStats()
		if err != nil {
			t.Fatal(err)
		}
		sum += d.Mean
	}
	mean := sum / seeds
	if mean < 2.5 || mean > 3.5 {
		t.Fatalf("aggregate mean TC %g outside the paper's ~3 band", mean)
	}
}
