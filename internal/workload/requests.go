package workload

import (
	"fmt"

	"gridtrust/internal/grid"
	"gridtrust/internal/rng"
)

// Request is one client request: a task to execute, its originating client
// domain, the (possibly composed) type of activity it engages in, and the
// client-side required trust level.  TaskIndex keys the EEC matrix row.
type Request struct {
	ID        int
	ArrivalAt float64
	TaskIndex int
	CD        grid.DomainID
	ToA       grid.ToA
	ClientRTL grid.TrustLevel
	// Deadline is the absolute time by which the client wants the task
	// finished; 0 means no deadline.  Deadlines extend the paper with
	// the QoS concern its introduction motivates (refs [7, 11]).
	Deadline float64
}

// Spec captures the stochastic workload parameters of Section 5.3.
type Spec struct {
	// Tasks is the number of requests to generate (the paper runs 50 and
	// 100).
	Tasks int
	// Machines is the number of machines (the paper uses 5).
	Machines int

	// NumCDs and NumRDs are the domain counts; "the number of CDs and
	// RDs were randomly generated from [1, 4]" — the generator draws
	// them when these are zero, otherwise the given values are used.
	NumCDs, NumRDs int

	// ArrivalRate is the Poisson arrival rate (requests per simulated
	// second).  Inter-arrival times are exponential with this rate.
	ArrivalRate float64

	// MinToAs/MaxToAs bound the number of activities per request:
	// "randomly generated from [1, 4]".
	MinToAs, MaxToAs int

	// Heterogeneity and Consistency select the EEC matrix class.
	Heterogeneity Heterogeneity
	Consistency   Consistency

	// ETSRule selects the Table 1 reading used for trust costs.  The
	// zero value is grid.ETSTable1 (the literal table); PaperSpec uses
	// grid.ETSLinear, which is what reproduces Tables 4-9 (see the
	// grid.ETSRule doc comment and EXPERIMENTS.md).
	ETSRule grid.ETSRule

	// DeadlineSlack, when positive, gives every request a deadline of
	// arrival + DeadlineSlack x (its mean EEC across machines).  Zero
	// disables deadlines (the paper's setting).
	DeadlineSlack float64
}

// PaperSpec returns the Section 5.3 configuration for the given task count
// and consistency class (the two knobs the paper varies across Tables 4-9).
// Domain counts are drawn from [1,4] at generation time.
func PaperSpec(tasks int, c Consistency) Spec {
	return Spec{
		Tasks:    tasks,
		Machines: 5,
		// 0.04 req/s puts the trust-unaware system at the paper's
		// 85-95% machine utilization with LoLo costs on 5 machines —
		// the near-saturation regime its Tables 4-9 report.
		ArrivalRate:   0.04,
		MinToAs:       1,
		MaxToAs:       4,
		Heterogeneity: LoLo,
		Consistency:   c,
		ETSRule:       grid.ETSLinear,
	}
}

// Workload is a fully materialised simulation input: the EEC matrix, the
// request stream sorted by arrival, the domain structure, the per-domain
// resource RTLs and the populated trust-level table.
type Workload struct {
	Spec     Spec
	EEC      *Matrix
	Requests []Request

	NumCDs, NumRDs int

	// MachineRD maps machine index -> resource domain.
	MachineRD []grid.DomainID
	// ResourceRTL maps resource domain -> the RD-side required trust
	// level ("the two RTL values were randomly generated from [1, 6]").
	ResourceRTL map[grid.DomainID]grid.TrustLevel
	// Table holds OTL entries for every (CD, RD, activity) triple,
	// drawn from [1, 5] per Section 5.3.
	Table *grid.TrustTable
}

// validate checks a Spec before generation.
func (s Spec) validate() error {
	switch {
	case s.Tasks <= 0:
		return fmt.Errorf("workload: Tasks must be positive, got %d", s.Tasks)
	case s.Machines <= 0:
		return fmt.Errorf("workload: Machines must be positive, got %d", s.Machines)
	case s.ArrivalRate <= 0:
		return fmt.Errorf("workload: ArrivalRate must be positive, got %g", s.ArrivalRate)
	case s.MinToAs < 1 || s.MaxToAs < s.MinToAs:
		return fmt.Errorf("workload: bad ToA bounds [%d,%d]", s.MinToAs, s.MaxToAs)
	case s.MaxToAs > int(grid.NumBuiltinActivities):
		return fmt.Errorf("workload: MaxToAs %d exceeds the %d available activities",
			s.MaxToAs, grid.NumBuiltinActivities)
	case s.NumCDs < 0 || s.NumRDs < 0:
		return fmt.Errorf("workload: negative domain counts")
	case !s.ETSRule.Valid():
		return fmt.Errorf("workload: invalid ETS rule %d", int(s.ETSRule))
	case s.DeadlineSlack < 0:
		return fmt.Errorf("workload: negative deadline slack %g", s.DeadlineSlack)
	}
	return nil
}

// NewWorkload draws a complete workload from the spec using src.  The same
// source state yields the same workload, which is what makes paired
// trust-aware vs trust-unaware comparisons exact.
func NewWorkload(src *rng.Source, s Spec) (*Workload, error) {
	if src == nil {
		return nil, fmt.Errorf("workload: nil random source")
	}
	if err := s.validate(); err != nil {
		return nil, err
	}

	numCDs := s.NumCDs
	if numCDs == 0 {
		numCDs = src.IntRange(1, 4)
	}
	numRDs := s.NumRDs
	if numRDs == 0 {
		numRDs = src.IntRange(1, 4)
	}

	eec, err := Generate(src, s.Tasks, s.Machines, s.Heterogeneity, s.Consistency)
	if err != nil {
		return nil, err
	}

	w := &Workload{
		Spec:        s,
		EEC:         eec,
		NumCDs:      numCDs,
		NumRDs:      numRDs,
		MachineRD:   make([]grid.DomainID, s.Machines),
		ResourceRTL: make(map[grid.DomainID]grid.TrustLevel, numRDs),
		Table:       grid.NewTrustTable(),
	}

	// Assign machines to RDs round-robin so every RD owns at least one
	// machine whenever machines >= RDs.
	for m := 0; m < s.Machines; m++ {
		w.MachineRD[m] = grid.DomainID(m % numRDs)
	}

	// Resource-side RTL per RD, drawn from [1,6].
	for rd := 0; rd < numRDs; rd++ {
		w.ResourceRTL[grid.DomainID(rd)] = grid.TrustLevel(src.IntRange(1, 6))
	}

	// Populate the trust-level table: an OTL in [1,5] for every
	// (CD, RD, activity) triple, so OTL lookups never miss.
	for cd := 0; cd < numCDs; cd++ {
		for rd := 0; rd < numRDs; rd++ {
			for a := grid.Activity(0); a < grid.NumBuiltinActivities; a++ {
				tl := grid.TrustLevel(src.IntRange(1, 5))
				if err := w.Table.Set(grid.DomainID(cd), grid.DomainID(rd), a, tl); err != nil {
					return nil, err
				}
			}
		}
	}

	// Request stream: Poisson arrivals, random CD, composed ToA of
	// [MinToAs,MaxToAs] distinct activities, client RTL in [1,6].
	now := 0.0
	w.Requests = make([]Request, s.Tasks)
	for i := 0; i < s.Tasks; i++ {
		now += src.Exponential(s.ArrivalRate)
		nActs := src.IntRange(s.MinToAs, s.MaxToAs)
		perm := src.Perm(int(grid.NumBuiltinActivities))
		acts := make([]grid.Activity, nActs)
		for k := 0; k < nActs; k++ {
			acts[k] = grid.Activity(perm[k])
		}
		toa, err := grid.NewToA(acts...)
		if err != nil {
			return nil, err
		}
		req := Request{
			ID:        i,
			ArrivalAt: now,
			TaskIndex: i,
			CD:        grid.DomainID(src.Intn(numCDs)),
			ToA:       toa,
			ClientRTL: grid.TrustLevel(src.IntRange(1, 6)),
		}
		if s.DeadlineSlack > 0 {
			meanEEC := 0.0
			for m := 0; m < s.Machines; m++ {
				meanEEC += eec.At(i, m)
			}
			meanEEC /= float64(s.Machines)
			req.Deadline = now + s.DeadlineSlack*meanEEC
		}
		w.Requests[i] = req
	}
	return w, nil
}

// TrustCost returns the paper's TC for request r on machine m: the ETS of
// the effective RTL (max of client and resource) against the OTL offered
// by the machine's RD for the request's composed ToA.
func (w *Workload) TrustCost(r Request, machine int) (int, error) {
	if machine < 0 || machine >= len(w.MachineRD) {
		return 0, fmt.Errorf("workload: machine %d out of range", machine)
	}
	rd := w.MachineRD[machine]
	otl, err := w.Table.OTL(r.CD, rd, r.ToA)
	if err != nil {
		return 0, err
	}
	return grid.TrustCostWith(w.Spec.ETSRule, r.ClientRTL, w.ResourceRTL[rd], otl)
}

// TCDistribution summarises the trust costs of a workload over all
// (request, machine) pairs: Counts[tc] pairs carry trust cost tc, and Mean
// is the average.  The paper calibrates its ESC weights around "the
// average TC value is 3"; this helper lets callers verify that property on
// any generated instance.
type TCDistribution struct {
	Counts [grid.TCMax + 1]int
	Mean   float64
	Pairs  int
}

// TCStats computes the trust-cost distribution of the workload.
func (w *Workload) TCStats() (TCDistribution, error) {
	var d TCDistribution
	var sum float64
	for _, r := range w.Requests {
		for m := 0; m < w.Spec.Machines; m++ {
			tc, err := w.TrustCost(r, m)
			if err != nil {
				return TCDistribution{}, err
			}
			d.Counts[tc]++
			d.Pairs++
			sum += float64(tc)
		}
	}
	if d.Pairs > 0 {
		d.Mean = sum / float64(d.Pairs)
	}
	return d, nil
}
