package workload

import (
	"math"
	"testing"
	"testing/quick"

	"gridtrust/internal/rng"
)

func TestNewMatrixValidation(t *testing.T) {
	if _, err := NewMatrix(0, 5); err == nil {
		t.Error("accepted zero tasks")
	}
	if _, err := NewMatrix(5, -1); err == nil {
		t.Error("accepted negative machines")
	}
	m, err := NewMatrix(3, 4)
	if err != nil {
		t.Fatal(err)
	}
	if m.Tasks != 3 || m.Machines != 4 {
		t.Fatalf("dims = %dx%d", m.Tasks, m.Machines)
	}
}

func TestMatrixSetAtRow(t *testing.T) {
	m, _ := NewMatrix(2, 3)
	m.Set(1, 2, 42)
	m.Set(0, 0, 7)
	if m.At(1, 2) != 42 || m.At(0, 0) != 7 || m.At(0, 1) != 0 {
		t.Fatal("Set/At broken")
	}
	row := m.Row(1)
	if len(row) != 3 || row[2] != 42 {
		t.Fatalf("Row = %v", row)
	}
	row[0] = 99
	if m.At(1, 0) == 99 {
		t.Fatal("Row aliases matrix storage")
	}
}

func TestMatrixClone(t *testing.T) {
	m, _ := NewMatrix(2, 2)
	m.Set(0, 0, 5)
	c := m.Clone()
	c.Set(0, 0, 9)
	if m.At(0, 0) != 5 {
		t.Fatal("Clone shares storage")
	}
}

func TestGenerateBounds(t *testing.T) {
	src := rng.New(1)
	m, err := Generate(src, 200, 8, LoLo, Inconsistent)
	if err != nil {
		t.Fatal(err)
	}
	for task := 0; task < m.Tasks; task++ {
		for j := 0; j < m.Machines; j++ {
			v := m.At(task, j)
			if v < 1 || v >= LoLo.TaskRange*LoLo.MachineRange {
				t.Fatalf("cell (%d,%d) = %g out of range", task, j, v)
			}
		}
	}
}

func TestGenerateConsistentOrdering(t *testing.T) {
	src := rng.New(2)
	m, err := Generate(src, 100, 6, LoLo, Consistent)
	if err != nil {
		t.Fatal(err)
	}
	for task := 0; task < m.Tasks; task++ {
		for j := 1; j < m.Machines; j++ {
			if m.At(task, j) < m.At(task, j-1) {
				t.Fatalf("consistent matrix row %d not sorted at col %d", task, j)
			}
		}
	}
}

func TestGenerateInconsistentIsNotSorted(t *testing.T) {
	src := rng.New(3)
	m, err := Generate(src, 100, 6, LoLo, Inconsistent)
	if err != nil {
		t.Fatal(err)
	}
	sortedRows := 0
	for task := 0; task < m.Tasks; task++ {
		sorted := true
		for j := 1; j < m.Machines; j++ {
			if m.At(task, j) < m.At(task, j-1) {
				sorted = false
				break
			}
		}
		if sorted {
			sortedRows++
		}
	}
	// 100 random rows of 6 elements: expected sorted rows ~ 100/720.
	if sortedRows > 5 {
		t.Fatalf("%d/100 inconsistent rows are sorted — generator is not random", sortedRows)
	}
}

func TestGenerateSemiConsistent(t *testing.T) {
	src := rng.New(4)
	m, err := Generate(src, 50, 7, LoLo, SemiConsistent)
	if err != nil {
		t.Fatal(err)
	}
	for task := 0; task < m.Tasks; task++ {
		prev := math.Inf(-1)
		for j := 0; j < m.Machines; j += 2 {
			if m.At(task, j) < prev {
				t.Fatalf("semi-consistent row %d: even columns not sorted", task)
			}
			prev = m.At(task, j)
		}
	}
}

func TestGenerateHeterogeneityScales(t *testing.T) {
	// HiHi matrices must have a much larger mean than LoLo.
	src := rng.New(5)
	lolo, err := Generate(src, 300, 5, LoLo, Inconsistent)
	if err != nil {
		t.Fatal(err)
	}
	hihi, err := Generate(src, 300, 5, HiHi, Inconsistent)
	if err != nil {
		t.Fatal(err)
	}
	if hihi.MeanCost() < 100*lolo.MeanCost() {
		t.Fatalf("HiHi mean %g not far above LoLo mean %g", hihi.MeanCost(), lolo.MeanCost())
	}
	// LoLo grand mean ~ E[U(1,100)]*E[U(1,10)] = 50.5*5.5 ≈ 278.
	if lolo.MeanCost() < 200 || lolo.MeanCost() > 360 {
		t.Fatalf("LoLo mean %g outside the expected ~278 band", lolo.MeanCost())
	}
}

func TestGenerateErrors(t *testing.T) {
	src := rng.New(6)
	if _, err := Generate(nil, 5, 5, LoLo, Consistent); err == nil {
		t.Error("accepted nil source")
	}
	if _, err := Generate(src, 5, 5, Heterogeneity{TaskRange: 0.5, MachineRange: 10}, Consistent); err == nil {
		t.Error("accepted sub-1 task range")
	}
	if _, err := Generate(src, 5, 5, LoLo, Consistency(99)); err == nil {
		t.Error("accepted unknown consistency")
	}
	if _, err := Generate(src, 0, 5, LoLo, Consistent); err == nil {
		t.Error("accepted zero tasks")
	}
}

func TestGenerateDeterminism(t *testing.T) {
	a, err := Generate(rng.New(7), 20, 5, LoLo, Inconsistent)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(rng.New(7), 20, 5, LoLo, Inconsistent)
	if err != nil {
		t.Fatal(err)
	}
	for task := 0; task < 20; task++ {
		for j := 0; j < 5; j++ {
			if a.At(task, j) != b.At(task, j) {
				t.Fatalf("same seed produced different matrices at (%d,%d)", task, j)
			}
		}
	}
}

func TestSortFloatsProperty(t *testing.T) {
	f := func(xs []float64) bool {
		for _, x := range xs {
			if math.IsNaN(x) {
				return true
			}
		}
		cp := make([]float64, len(xs))
		copy(cp, xs)
		sortFloats(cp)
		for i := 1; i < len(cp); i++ {
			if cp[i] < cp[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestConsistencyString(t *testing.T) {
	if Consistent.String() != "consistent" || Inconsistent.String() != "inconsistent" ||
		SemiConsistent.String() != "semi-consistent" {
		t.Fatal("consistency names wrong")
	}
}

func TestHeterogeneityString(t *testing.T) {
	if LoLo.String() != "LoLo" || HiHi.String() != "HiHi" {
		t.Fatal("preset names wrong")
	}
	custom := Heterogeneity{TaskRange: 7, MachineRange: 9}
	if custom.String() == "LoLo" {
		t.Fatal("custom heterogeneity claimed a preset name")
	}
}
