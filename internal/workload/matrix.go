// Package workload generates the synthetic workloads of the paper's
// evaluation (Section 5.3): expected-execution-cost (EEC) matrices with
// controlled task and machine heterogeneity, and Poisson streams of client
// requests with randomly drawn ToAs, RTLs and trust-table OTLs.
package workload

import (
	"fmt"

	"gridtrust/internal/rng"
)

// Matrix is a tasks x machines cost matrix stored row-major.  Entry (t,m)
// is the expected execution cost of task t on machine m, in simulated
// seconds.
type Matrix struct {
	Tasks    int
	Machines int
	cells    []float64
}

// NewMatrix allocates a zero matrix.
func NewMatrix(tasks, machines int) (*Matrix, error) {
	if tasks <= 0 || machines <= 0 {
		return nil, fmt.Errorf("workload: matrix dimensions must be positive, got %dx%d", tasks, machines)
	}
	return &Matrix{Tasks: tasks, Machines: machines, cells: make([]float64, tasks*machines)}, nil
}

// At returns entry (task, machine).  Indices are bounds-checked by the
// underlying slice; callers iterate within Tasks/Machines.
func (m *Matrix) At(task, machine int) float64 {
	return m.cells[task*m.Machines+machine]
}

// Set writes entry (task, machine).
func (m *Matrix) Set(task, machine int, v float64) {
	m.cells[task*m.Machines+machine] = v
}

// Row returns a copy of the task's cost row across machines.
func (m *Matrix) Row(task int) []float64 {
	out := make([]float64, m.Machines)
	copy(out, m.cells[task*m.Machines:(task+1)*m.Machines])
	return out
}

// RowView returns the task's cost row without copying.  The slice aliases
// the matrix storage: callers must treat it as read-only and must not
// retain it across a Set.  The simulator's fused scans use it to walk a
// row with one bounds check instead of a multiply per machine.
func (m *Matrix) RowView(task int) []float64 {
	return m.cells[task*m.Machines : (task+1)*m.Machines]
}

// Clone deep-copies the matrix.
func (m *Matrix) Clone() *Matrix {
	cp := &Matrix{Tasks: m.Tasks, Machines: m.Machines, cells: make([]float64, len(m.cells))}
	copy(cp.cells, m.cells)
	return cp
}

// MeanCost returns the grand mean of the matrix.
func (m *Matrix) MeanCost() float64 {
	sum := 0.0
	for _, v := range m.cells {
		sum += v
	}
	return sum / float64(len(m.cells))
}

// Consistency describes the structure of machine orderings across tasks in
// an EEC matrix (Section 5.3 uses consistent and inconsistent; the
// semi-consistent class from the underlying heterogeneity literature is
// included for the extended sweeps).
type Consistency int

const (
	// Inconsistent: machine orderings vary per task — "the machines are
	// not related".
	Inconsistent Consistency = iota
	// Consistent: if machine j is faster than k for one task it is
	// faster for all — "related machines that are similar in
	// performance".
	Consistent
	// SemiConsistent: even-indexed columns are consistent, the rest
	// inconsistent.
	SemiConsistent
)

// String names the consistency class.
func (c Consistency) String() string {
	switch c {
	case Inconsistent:
		return "inconsistent"
	case Consistent:
		return "consistent"
	case SemiConsistent:
		return "semi-consistent"
	default:
		return fmt.Sprintf("Consistency(%d)", int(c))
	}
}

// Heterogeneity is a range-based heterogeneity specification: costs are
// generated as tau_t(i) * tau_m(j) with tau_t ~ U[1, TaskRange] and
// tau_m ~ U[1, MachineRange], the standard range-based method used with
// the heuristics of [10].
type Heterogeneity struct {
	TaskRange    float64
	MachineRange float64
}

// The heterogeneity classes.  The paper's simulations use LoLo ("low task
// and low machine heterogeneity") in consistent and inconsistent variants;
// the other classes serve the extended sweeps.
var (
	LoLo = Heterogeneity{TaskRange: 100, MachineRange: 10}
	LoHi = Heterogeneity{TaskRange: 100, MachineRange: 1000}
	HiLo = Heterogeneity{TaskRange: 3000, MachineRange: 10}
	HiHi = Heterogeneity{TaskRange: 3000, MachineRange: 1000}
)

// String names the class when it matches a preset.
func (h Heterogeneity) String() string {
	switch h {
	case LoLo:
		return "LoLo"
	case LoHi:
		return "LoHi"
	case HiLo:
		return "HiLo"
	case HiHi:
		return "HiHi"
	default:
		return fmt.Sprintf("Het(task=%g,machine=%g)", h.TaskRange, h.MachineRange)
	}
}

// Generate builds a tasks x machines EEC matrix with the given
// heterogeneity and consistency using the supplied random source.
//
// The range-based method: draw a task weight tau_t(i) ~ U[1, TaskRange)
// per task, then for each machine draw an independent factor
// U[1, MachineRange); cell (i,j) = tau_t(i) * factor.  For a consistent
// matrix each row is then sorted so machine 0 is always fastest — the
// canonical construction for consistent heterogeneity.
func Generate(src *rng.Source, tasks, machines int, h Heterogeneity, c Consistency) (*Matrix, error) {
	if src == nil {
		return nil, fmt.Errorf("workload: nil random source")
	}
	if h.TaskRange < 1 || h.MachineRange < 1 {
		return nil, fmt.Errorf("workload: heterogeneity ranges must be >= 1, got %+v", h)
	}
	m, err := NewMatrix(tasks, machines)
	if err != nil {
		return nil, err
	}
	row := make([]float64, machines)
	for t := 0; t < tasks; t++ {
		taskWeight := src.Uniform(1, h.TaskRange)
		for j := 0; j < machines; j++ {
			row[j] = taskWeight * src.Uniform(1, h.MachineRange)
		}
		switch c {
		case Consistent:
			sortFloats(row)
		case SemiConsistent:
			sortEvenColumns(row)
		case Inconsistent:
			// keep raw draws
		default:
			return nil, fmt.Errorf("workload: unknown consistency %d", int(c))
		}
		for j := 0; j < machines; j++ {
			m.Set(t, j, row[j])
		}
	}
	return m, nil
}

// sortFloats is a small insertion sort: rows are tiny (machine counts in
// the tens) and this avoids pulling in sort for a hot path.
func sortFloats(xs []float64) {
	for i := 1; i < len(xs); i++ {
		v := xs[i]
		j := i - 1
		for j >= 0 && xs[j] > v {
			xs[j+1] = xs[j]
			j--
		}
		xs[j+1] = v
	}
}

// sortEvenColumns sorts the values situated at even indices among
// themselves, leaving odd columns untouched — the standard construction of
// semi-consistent matrices.
func sortEvenColumns(xs []float64) {
	evens := make([]float64, 0, (len(xs)+1)/2)
	for i := 0; i < len(xs); i += 2 {
		evens = append(evens, xs[i])
	}
	sortFloats(evens)
	for i, k := 0, 0; i < len(xs); i += 2 {
		xs[i] = evens[k]
		k++
	}
}
