package workload

import (
	"bytes"
	"strings"
	"testing"

	"gridtrust/internal/rng"
)

func TestWorkloadSaveLoadRoundTrip(t *testing.T) {
	spec := PaperSpec(25, Consistent)
	spec.DeadlineSlack = 3
	orig, err := NewWorkload(rng.New(77), spec)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := orig.Save(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Spec != orig.Spec {
		t.Fatalf("spec differs:\n%+v\n%+v", back.Spec, orig.Spec)
	}
	if back.NumCDs != orig.NumCDs || back.NumRDs != orig.NumRDs {
		t.Fatal("domain counts differ")
	}
	for ti := 0; ti < orig.EEC.Tasks; ti++ {
		for m := 0; m < orig.EEC.Machines; m++ {
			if back.EEC.At(ti, m) != orig.EEC.At(ti, m) {
				t.Fatalf("EEC differs at (%d,%d)", ti, m)
			}
		}
	}
	for i := range orig.Requests {
		a, b := orig.Requests[i], back.Requests[i]
		if a.ArrivalAt != b.ArrivalAt || a.CD != b.CD || a.ClientRTL != b.ClientRTL ||
			a.Deadline != b.Deadline || a.ToA.String() != b.ToA.String() {
			t.Fatalf("request %d differs:\n%+v\n%+v", i, a, b)
		}
	}
	// Trust costs — the quantity the scheduler consumes — must agree
	// everywhere.
	for _, r := range orig.Requests {
		for m := 0; m < orig.Spec.Machines; m++ {
			want, err := orig.TrustCost(r, m)
			if err != nil {
				t.Fatal(err)
			}
			got, err := back.TrustCost(back.Requests[r.ID], m)
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Fatalf("TC differs for request %d machine %d: %d vs %d", r.ID, m, got, want)
			}
		}
	}
}

func TestWorkloadSaveDeterministic(t *testing.T) {
	w, err := NewWorkload(rng.New(3), PaperSpec(10, Inconsistent))
	if err != nil {
		t.Fatal(err)
	}
	var a, b bytes.Buffer
	if err := w.Save(&a); err != nil {
		t.Fatal(err)
	}
	if err := w.Save(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatal("save is not deterministic")
	}
}

func TestWorkloadLoadRejectsGarbage(t *testing.T) {
	cases := []string{
		"{not json",
		`{"version": 99}`,
		`{"version": 1, "spec": {"tasks": 0}}`,
	}
	for i, blob := range cases {
		if _, err := Load(strings.NewReader(blob)); err == nil {
			t.Errorf("garbage %d accepted", i)
		}
	}
}

func TestWorkloadLoadValidatesCrossReferences(t *testing.T) {
	w, err := NewWorkload(rng.New(4), PaperSpec(5, Inconsistent))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := w.Save(&buf); err != nil {
		t.Fatal(err)
	}
	// Corrupt the table so a trust-cost lookup must fail.
	blob := buf.String()
	corrupted := strings.Replace(blob, `"table": [`, `"table": [`, 1)
	// Remove all table entries by cutting between "table": [ and the
	// closing bracket — crude but effective for a validation test.
	start := strings.Index(corrupted, `"table": [`)
	if start < 0 {
		t.Fatal("serialised form changed; update the test")
	}
	end := strings.Index(corrupted[start:], "]")
	corrupted = corrupted[:start] + `"table": [` + corrupted[start+end:]
	if _, err := Load(strings.NewReader(corrupted)); err == nil {
		t.Fatal("workload with empty trust table accepted")
	}
}
