package rmswire

import (
	"strings"
	"syscall"
	"testing"

	"gridtrust/internal/chaos"
	"gridtrust/internal/core"
	"gridtrust/internal/grid"
	"gridtrust/internal/testutil"
	"gridtrust/internal/trust"
	"gridtrust/internal/wal"
)

// startChaosJournaled is startJournaled over a chaos filesystem, so
// tests can inject fsync and write faults under a live daemon.
func startChaosJournaled(t *testing.T, dir string, cfs *chaos.FS) (*Server, *Client, func()) {
	t.Helper()
	trms, err := core.New(core.Config{
		Topology: journalTopology(t),
		Trust:    trust.Config{Alpha: 1, Beta: 0, Smoothing: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewServer(trms)
	if err != nil {
		t.Fatal(err)
	}
	log, rec, err := wal.Create(dir, wal.Options{FS: cfs})
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.AttachJournal(log, rec, 0); err != nil {
		t.Fatal(err)
	}
	addr, err := srv.ListenAndServe("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	client, err := Dial(addr.String())
	if err != nil {
		t.Fatal(err)
	}
	stop := func() {
		client.Close()
		srv.Close()
		trms.Close()
		log.Close()
	}
	return srv, client, stop
}

// TestFsyncFaultDegradesDaemon walks the acceptance criterion end to
// end: after one injected fsync error the WAL fail-stops, the daemon
// latches degraded (mutations refused, reads and health still served),
// and a restart over the same directory recovers every acked record.
func TestFsyncFaultDegradesDaemon(t *testing.T) {
	t.Cleanup(testutil.LeakCheck(t))
	dir := t.TempDir()
	cfs := chaos.NewFS()
	srv, client, stop := startChaosJournaled(t, dir, cfs)

	p, err := client.Submit(0, []grid.Activity{grid.ActCompute}, grid.LevelD, []float64{10, 12}, 0)
	if err != nil {
		t.Fatalf("clean submit: %v", err)
	}
	if err := client.Report(p.ID, 5, 0.5); err != nil {
		t.Fatalf("clean report: %v", err)
	}

	// One fsync error.  The submit that trips it surfaces an
	// applied-but-not-journalled error, and the daemon latches degraded.
	cfs.FailSyncs(syscall.EIO)
	if _, err := client.Submit(0, []grid.Activity{grid.ActCompute}, grid.LevelD, []float64{10, 12}, 1); err == nil {
		t.Fatal("submit with failing fsync succeeded")
	}
	if deg, cause := srv.Degraded(); !deg || cause == "" {
		t.Fatalf("daemon not degraded after fsync fault (deg=%v cause=%q)", deg, cause)
	}

	// Healing the filesystem does not un-latch anything: the WAL is
	// fail-stopped, so every further mutation is refused with a
	// non-retryable error naming the degradation.
	cfs.Heal()
	_, err = client.Submit(0, []grid.Activity{grid.ActCompute}, grid.LevelD, []float64{10, 12}, 2)
	if err == nil {
		t.Fatal("submit on degraded daemon succeeded")
	}
	if !strings.Contains(err.Error(), "degraded") {
		t.Fatalf("degraded submit error = %v, want mention of degradation", err)
	}
	if err := client.Report(p.ID, 5, 2.5); err == nil || !strings.Contains(err.Error(), "degraded") {
		t.Fatalf("degraded report error = %v, want refusal", err)
	}

	// Reads and liveness keep working: health answers, flags degraded.
	h, err := client.Health()
	if err != nil {
		t.Fatalf("health on degraded daemon: %v", err)
	}
	if h.Status != "degraded" || !h.Degraded || h.DegradedCause == "" {
		t.Fatalf("health = %+v, want status degraded with cause", h)
	}
	snap, err := client.Metrics()
	if err != nil {
		t.Fatalf("metrics on degraded daemon: %v", err)
	}
	if snap.Gauges[MetricDegraded] != 1 {
		t.Fatalf("degraded gauge = %d, want 1", snap.Gauges[MetricDegraded])
	}
	if snap.Counters[MetricRefusedDegraded] != 2 {
		t.Fatalf("refused_degraded_total = %d, want 2", snap.Counters[MetricRefusedDegraded])
	}
	stop()

	// Restart over the real filesystem: the acked prefix — one place,
	// one report — recovers, and the reborn daemon is healthy.
	srv2, client2, stop2 := startChaosJournaled(t, dir, chaos.NewFS())
	defer stop2()
	if deg, _ := srv2.Degraded(); deg {
		t.Fatal("restarted daemon started degraded")
	}
	st, err := client2.Stats()
	if err != nil {
		t.Fatal(err)
	}
	// The acked prefix — one place, its report — must replay.  The
	// submit that tripped the fsync fault was written before the sync
	// failed, so its unacked record may legitimately survive too (the
	// client saw an error and will retry under a fresh key); it replays
	// as a second, open placement.
	if st.Placed < 1 || st.Placed > 2 {
		t.Fatalf("recovered %d placements, want the acked one (+ at most the unacked survivor)", st.Placed)
	}
	if st.OpenPlacements != st.Placed-1 {
		t.Fatalf("recovered %d open of %d placed, want the acked report replayed", st.OpenPlacements, st.Placed)
	}
	h2, err := client2.Health()
	if err != nil {
		t.Fatal(err)
	}
	if h2.Status != "ok" {
		t.Fatalf("restarted health = %q, want ok", h2.Status)
	}
}
