package rmswire

// observe_test.go covers the observability layer: the metrics wire op
// (counter/gauge/histogram snapshot with scrape-time gauges injected),
// its admission bypass, restart-detection fields on health, the
// Retrier's attempt accounting, and the conn_closing protocol fix that
// stops a connection-level shed from costing two retry attempts.

import (
	"bufio"
	"errors"
	"net"
	"testing"
	"time"

	"gridtrust/internal/grid"
)

// TestMetricsOpReconcile drives a known op mix through the wire and
// checks the daemon's counters, gauges and histograms agree with it
// exactly — the same reconciliation gridload performs at scale.
func TestMetricsOpReconcile(t *testing.T) {
	trms, _, client := newDaemon(t)
	acts := []grid.Activity{grid.ActCompute}
	eec := []float64{5, 7}
	var ids []uint64
	for i := 0; i < 3; i++ {
		p, err := client.Submit(0, acts, grid.LevelC, eec, float64(i))
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, p.ID)
	}
	for _, id := range ids[:2] {
		if err := client.Report(id, 5, 10); err != nil {
			t.Fatal(err)
		}
	}
	// One keyed submit plus its replay: a placement and an idem hit.
	if _, err := client.SubmitKeyed("obs-key", 0, acts, grid.LevelC, eec, 20); err != nil {
		t.Fatal(err)
	}
	if _, err := client.SubmitKeyed("obs-key", 0, acts, grid.LevelC, eec, 20); err != nil {
		t.Fatal(err)
	}

	m, err := client.Metrics()
	if err != nil {
		t.Fatal(err)
	}
	wantCounters := map[string]uint64{
		MetricRequests:   7, // 3 submits + 2 reports + 2 keyed submits
		MetricSubmitOK:   5,
		MetricSubmitErr:  0,
		MetricReportOK:   2,
		MetricReportErr:  0,
		MetricPlacements: 4,
		MetricIdemHits:   1,
	}
	for name, want := range wantCounters {
		if got := m.Counters[name]; got != want {
			t.Errorf("counter %s = %d, want %d", name, got, want)
		}
	}
	wantGauges := map[string]int64{
		MetricPlaced:         int64(trms.Placed()),
		MetricOpenPlacements: 2, // 4 placements − 2 reported
		MetricIdemEntries:    1,
		MetricInFlight:       0,
		MetricDraining:       0,
		MetricConns:          1,
	}
	for name, want := range wantGauges {
		if got := m.Gauges[name]; got != want {
			t.Errorf("gauge %s = %d, want %d", name, got, want)
		}
	}
	if h := m.Histograms[MetricOpSubmitNS]; h == nil || h.Count != 5 {
		t.Errorf("submit latency histogram = %+v, want count 5", h)
	}
	if h := m.Histograms[MetricOpReportNS]; h == nil || h.Count != 2 {
		t.Errorf("report latency histogram = %+v, want count 2", h)
	}
	if m.StartUnixNanos == 0 || m.UptimeMS < 0 {
		t.Errorf("instance identity missing: start=%d uptime=%d", m.StartUnixNanos, m.UptimeMS)
	}
	if m.Seq != 1 {
		t.Errorf("first scrape seq = %d, want 1", m.Seq)
	}
	m2, err := client.Metrics()
	if err != nil {
		t.Fatal(err)
	}
	if m2.Seq != 2 {
		t.Errorf("second scrape seq = %d, want 2", m2.Seq)
	}
	h, err := client.Health()
	if err != nil {
		t.Fatal(err)
	}
	if h.MetricsSeq != 2 {
		t.Errorf("health metrics_seq = %d, want 2", h.MetricsSeq)
	}
	if h.StartUnixNanos != m.StartUnixNanos {
		t.Errorf("health start %d != metrics start %d", h.StartUnixNanos, m.StartUnixNanos)
	}
	if h.TopologyMachines != 2 || h.TopologyClients != 1 {
		t.Errorf("topology %d machines / %d clients, want 2/1", h.TopologyMachines, h.TopologyClients)
	}
}

// TestMetricsOpBypassesAdmission pins that a saturated daemon still
// answers metrics scrapes, and that the shed it is refusing others with
// is itself visible in the scrape.
func TestMetricsOpBypassesAdmission(t *testing.T) {
	trms, _, _ := newDaemon(t)
	srv, err := NewServer(trms)
	if err != nil {
		t.Fatal(err)
	}
	srv.MaxInFlight = 1
	addr, err := srv.ListenAndServe("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	client, err := Dial(addr.String())
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	if !srv.acquire(0) {
		t.Fatal("could not occupy the free slot")
	}
	defer srv.release()
	if _, err := client.Stats(); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("saturated stats returned %v, want overloaded", err)
	}
	m, err := client.Metrics()
	if err != nil {
		t.Fatalf("metrics shed by admission control: %v", err)
	}
	if m.Counters[MetricShedInflight] != 1 || m.Counters[MetricOverloadReplies] != 1 {
		t.Fatalf("shed not visible in scrape: inflight=%d overload=%d",
			m.Counters[MetricShedInflight], m.Counters[MetricOverloadReplies])
	}
	if m.Gauges[MetricInFlight] != 1 {
		t.Fatalf("in_flight gauge = %d, want 1", m.Gauges[MetricInFlight])
	}
}

// TestRetrierCountersReconcile checks the client-side half of the
// reconciliation story: the Retrier's overload count matches the
// daemon's overload_replies_total when no connection-level sheds race.
func TestRetrierCountersReconcile(t *testing.T) {
	trms, _, _ := newDaemon(t)
	srv, err := NewServer(trms)
	if err != nil {
		t.Fatal(err)
	}
	srv.MaxInFlight = 1
	srv.RetryAfter = 5 * time.Millisecond
	addr, err := srv.ListenAndServe("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	if !srv.acquire(0) {
		t.Fatal("acquire")
	}
	go func() {
		time.Sleep(60 * time.Millisecond)
		srv.release()
	}()
	r := NewRetrier(RetrierConfig{Addr: addr.String(), Seed: 3,
		BaseBackoff: 5 * time.Millisecond, MaxAttempts: 20})
	defer r.Close()
	if _, err := r.Stats(); err != nil {
		t.Fatalf("retrier gave up although the server recovered: %v", err)
	}
	c := r.Counters()
	if c.OK != 1 {
		t.Fatalf("OK = %d, want 1", c.OK)
	}
	if c.Overloads == 0 {
		t.Fatal("no overloads recorded although the server shed")
	}
	if c.TransportErrors != 0 {
		t.Fatalf("transport errors %d on a healthy connection", c.TransportErrors)
	}
	if c.Attempts != c.Overloads+c.OK {
		t.Fatalf("attempts %d != overloads %d + ok %d", c.Attempts, c.Overloads, c.OK)
	}
	if got := srv.Metrics().Counter(MetricOverloadReplies).Load(); got != c.Overloads {
		t.Fatalf("daemon overload replies %d != client overloads %d", got, c.Overloads)
	}
}

// TestConnClosingSavesAnAttempt is the regression test for the hidden
// retry-accounting bug: a server that sheds with one overloaded frame
// and then closes the connection used to cost the Retrier TWO attempts
// — the overload, plus a transport error discovering the dead cached
// connection.  With conn_closing announced, the Retrier redials
// immediately: exactly one attempt per shed, zero transport errors.
func TestConnClosingSavesAnAttempt(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	const sheds = 2
	go func() {
		for i := 0; ; i++ {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func(conn net.Conn, i int) {
				defer conn.Close()
				r := bufio.NewReader(conn)
				var req Request
				if err := readFrame(r, &req); err != nil {
					return
				}
				if i < sheds {
					_ = writeFrame(conn, Response{
						Status: StatusOverloaded, Error: "conn shed",
						RetryAfterMS: 1, ConnClosing: true,
					})
					return // close: the frame said so
				}
				_ = writeFrame(conn, Response{Status: StatusOK, Stats: &StatsInfo{}})
			}(conn, i)
		}
	}()

	r := NewRetrier(RetrierConfig{Addr: ln.Addr().String(), Seed: 29,
		BaseBackoff: time.Millisecond, MaxAttempts: sheds + 1})
	defer r.Close()
	if _, err := r.Stats(); err != nil {
		t.Fatalf("stats after %d conn sheds: %v", sheds, err)
	}
	c := r.Counters()
	if c.TransportErrors != 0 {
		t.Fatalf("conn sheds burned %d attempts on transport errors", c.TransportErrors)
	}
	if c.Attempts != sheds+1 || c.Overloads != sheds || c.OK != 1 {
		t.Fatalf("attempts/overloads/ok = %d/%d/%d, want %d/%d/1",
			c.Attempts, c.Overloads, c.OK, sheds+1, sheds)
	}
	if c.Dials != sheds+1 {
		t.Fatalf("dials = %d, want %d (one per shed plus the final)", c.Dials, sheds+1)
	}
}

// TestDrainAnnouncesConnClosing pins that a response produced while the
// daemon drains carries conn_closing, and the client records it.
func TestDrainAnnouncesConnClosing(t *testing.T) {
	_, srv, client := newDaemon(t)
	srv.draining.Store(true)
	_, err := client.Stats()
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("draining stats returned %v, want overloaded", err)
	}
	if !client.Closing() {
		t.Fatal("client did not record the server's conn_closing announcement")
	}
}
