// Package rmswire exposes a running TRMS (internal/core) over a
// stream-oriented transport, making the trust-aware resource management
// system deployable as a daemon: clients submit tasks, receive placements,
// and report transaction outcomes; the server schedules against the live
// trust table and feeds outcomes to the monitoring agents.
//
// The wire format is newline-delimited JSON frames, one request and one
// response per line, mirroring internal/trustwire.  The protocol is
// deliberately synchronous (request/response over one connection) — the
// paper's RMS is centrally organised, and scheduling throughput is bounded
// by the mapping heuristic, not the transport.
package rmswire

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"time"

	"gridtrust/internal/grid"
	"gridtrust/internal/metrics"
)

// MaxFrameBytes bounds one JSON frame.
const MaxFrameBytes = 1 << 20

// ErrFrameTooLarge reports a frame exceeding MaxFrameBytes.  The reader
// fails as soon as the limit is crossed — it never buffers an unbounded
// line waiting for a newline that may not come — and the server answers
// with an error frame instead of silently dropping the connection.
var ErrFrameTooLarge = errors.New("rmswire: frame exceeds MaxFrameBytes")

// Operation names.
const (
	OpSubmit     = "submit"
	OpReport     = "report"
	OpStats      = "stats"
	OpCheckpoint = "checkpoint"
	OpHealth     = "health"
	OpDrain      = "drain"
	OpMetrics    = "metrics"
	// OpFleet reports the shard's fleet view (ring membership, per-peer
	// gossip state).  Like health it bypasses admission; it answers
	// StatusError on a daemon running without -fleet.
	OpFleet = "fleet"
)

// ShardIDShift namespaces placement ids in a fleet: shard k issues ids
// with k in the bits at and above the shift, so any shard can route an
// outcome report to the owner with id >> ShardIDShift — statelessly,
// even for placements created before a restart.  A non-fleet daemon
// issues ids from 0 and is shard 0 by construction.  48 low bits leave
// room for ~2.8e14 placements per shard before namespaces could touch.
const ShardIDShift = 48

// Metric names served by the metrics op.  Exported so the load driver
// and tests reconcile against the same strings the server maintains.
//
// Counters (monotonic since process start; they do NOT survive restart —
// reconciliation across a restart must use the durable gauges below):
const (
	// MetricConnsAccepted counts connections admitted into serving.
	MetricConnsAccepted = "conns_accepted_total"
	// MetricShedConnLimit counts connections rejected at accept time by
	// MaxConns.  These rejections race the peer's first write, so a
	// client may observe them as either an overloaded reply or a broken
	// connection — reconcile with an interval, not equality.
	MetricShedConnLimit = "shed_conn_limit_total"
	// MetricShedDraining counts requests and connections shed because
	// the server is draining.
	MetricShedDraining = "shed_draining_total"
	// MetricShedInflight counts requests shed by the MaxInFlight
	// admission semaphore after their budget expired.
	MetricShedInflight = "shed_inflight_total"
	// MetricShedIdemPending counts submits shed because their
	// idempotency key's first attempt was still executing.
	MetricShedIdemPending = "shed_idem_pending_total"
	// MetricOverloadReplies counts every overloaded frame written,
	// whatever the shed reason; it equals the sum of the shed_* counters.
	MetricOverloadReplies = "overload_replies_total"
	// MetricRequests counts admitted, executed requests (submit, report,
	// stats).  Health, drain, checkpoint and metrics bypass admission
	// and are not counted.
	MetricRequests = "requests_total"
	// MetricSubmitOK / MetricSubmitErr count submit responses; OK
	// includes idempotent replays of an already-placed key.
	MetricSubmitOK  = "submit_ok_total"
	MetricSubmitErr = "submit_err_total"
	// MetricReportOK / MetricReportErr count report responses.
	MetricReportOK  = "report_ok_total"
	MetricReportErr = "report_err_total"
	// MetricPlacements counts fresh placements (excludes idempotent
	// replays).
	MetricPlacements = "placements_total"
	// MetricIdemHits counts submits answered from the idempotency table.
	MetricIdemHits = "idem_hits_total"
	// MetricRefusedDegraded counts mutations refused because the daemon
	// latched into journal fail-stop (see MetricDegraded).
	MetricRefusedDegraded = "refused_degraded_total"
	// MetricWALAppends / MetricWALSyncs / MetricWALRotations mirror the
	// attached journal's wal.Stats at scrape time.
	MetricWALAppends   = "wal_appends_total"
	MetricWALSyncs     = "wal_syncs_total"
	MetricWALRotations = "wal_rotations_total"
)

// Gauges (instantaneous, refreshed at scrape time).  MetricPlaced and
// MetricIdemEntries are rebuilt from the WAL on restart, so they are the
// reconciliation anchors that survive a SIGKILL.
const (
	MetricConns          = "conns"
	MetricInFlight       = "in_flight"
	MetricOpenPlacements = "open_placements"
	MetricIdemEntries    = "idem_entries"
	MetricPlaced         = "placed"
	MetricDraining       = "draining"
	// MetricDegraded is 1 once the journal hit fail-stop and the daemon
	// refuses mutations, 0 while healthy.  It never returns to 0 within
	// one process lifetime — fail-stop is sticky by design.
	MetricDegraded       = "degraded"
	MetricWALSegments    = "wal_segments"
	MetricJournalNextSeq = "journal_next_seq"
)

// Histograms.
const (
	// MetricOpSubmitNS / MetricOpReportNS / MetricOpStatsNS record
	// server-side execution latency per op in nanoseconds.
	MetricOpSubmitNS = "op_submit_ns"
	MetricOpReportNS = "op_report_ns"
	MetricOpStatsNS  = "op_stats_ns"
	// MetricWALBatchRecords records records-per-fsync group-commit batch
	// sizes (attached by the daemon via wal.Options.SyncObserver).
	MetricWALBatchRecords = "wal_batch_records"
)

// Request is one client request frame.
type Request struct {
	Op string `json:"op"`

	// Submit fields.
	Client     int       `json:"client,omitempty"`
	Activities []int     `json:"activities,omitempty"`
	RTL        string    `json:"rtl,omitempty"`
	EEC        []float64 `json:"eec,omitempty"`

	// IdemKey makes a Submit idempotent: the server remembers the key in
	// its journal and a replayed or retried submit with the same key
	// returns the original placement instead of double-placing.  Empty
	// disables deduplication (and keeps the frame byte-identical to the
	// pre-resilience protocol).
	IdemKey string `json:"idem_key,omitempty"`

	// BudgetMS is the client's remaining deadline budget for this request
	// in milliseconds.  A loaded server holds admission for at most this
	// long before shedding; zero means "do not wait at all" when the
	// server is at its in-flight limit.
	BudgetMS int64 `json:"budget_ms,omitempty"`

	// Report fields.
	PlacementID uint64  `json:"placement_id,omitempty"`
	Outcome     float64 `json:"outcome,omitempty"`

	// Shared simulated-time stamp.
	Now float64 `json:"now,omitempty"`

	// Forwarded marks a shard-to-shard forward in a fleet: the receiving
	// shard executes it locally even if its ring view disagrees, which
	// terminates any possible forwarding loop at one hop.  Clients never
	// set it; non-fleet daemons ignore it.
	Forwarded bool `json:"fwd,omitempty"`
}

// PlacementInfo is the wire form of a core.Placement.
type PlacementInfo struct {
	ID      uint64  `json:"id"`
	Machine int     `json:"machine"`
	RD      int     `json:"rd"`
	CD      int     `json:"cd"`
	OTL     string  `json:"otl"`
	TC      int     `json:"tc"`
	EEC     float64 `json:"eec"`
	ESC     float64 `json:"esc"`
	ECC     float64 `json:"ecc"`
	Start   float64 `json:"start"`
	Finish  float64 `json:"finish"`
}

// StatsInfo summarises the daemon state.
type StatsInfo struct {
	Placed          int    `json:"placed"`
	AgentsProcessed int    `json:"agents_processed"`
	AgentsCommitted int    `json:"agents_committed"`
	AgentsRejected  int    `json:"agents_rejected"`
	TableVersion    uint64 `json:"table_version"`
	TableEntries    int    `json:"table_entries"`
	OpenPlacements  int    `json:"open_placements"`
}

// HealthInfo is the readiness view returned by the health op.  It is
// served even when the daemon is shedding load, so probes and balancers
// can distinguish "overloaded but alive" from "draining" from "dead".
type HealthInfo struct {
	Status   string `json:"status"` // "ok" | "draining" | "degraded"
	Draining bool   `json:"draining,omitempty"`
	// Degraded reports the sticky journal fail-stop latch: the daemon
	// refuses all mutations and will not recover without a restart onto
	// healthy storage.  DegradedCause is the first error that tripped it.
	Degraded       bool   `json:"degraded,omitempty"`
	DegradedCause  string `json:"degraded_cause,omitempty"`
	Conns          int    `json:"conns"`
	MaxConns       int    `json:"max_conns,omitempty"`
	InFlight       int    `json:"in_flight"`
	MaxInFlight    int    `json:"max_in_flight,omitempty"`
	OpenPlacements int    `json:"open_placements"`
	Placed         int    `json:"placed"`

	// Journal state; all zero when the daemon runs without a WAL.
	Journal         bool   `json:"journal,omitempty"`
	JournalNextSeq  uint64 `json:"journal_next_seq,omitempty"`
	JournalSegments int    `json:"journal_segments,omitempty"`
	IdemEntries     int    `json:"idem_entries,omitempty"`

	// UptimeMS is milliseconds since the server started, measured on the
	// monotonic clock; StartUnixNanos identifies the process instance.
	// A scripted poller that sees uptime decrease (or the start stamp
	// change) between scrapes knows the daemon restarted, even if the
	// restart was faster than its polling interval.
	UptimeMS       int64 `json:"uptime_ms"`
	StartUnixNanos int64 `json:"start_unix_nanos"`
	// MetricsSeq is the metrics-snapshot sequence number of the last
	// metrics scrape (0 if none yet); like uptime, it resets on restart.
	MetricsSeq uint64 `json:"metrics_seq"`

	// Topology sizes, so load drivers can build EEC vectors and spread
	// client ids without probing.
	TopologyMachines int `json:"topology_machines"`
	TopologyClients  int `json:"topology_clients"`
}

// MetricsInfo is the payload of the metrics op: a point-in-time registry
// snapshot plus the instance identity needed to detect restarts between
// scrapes.
type MetricsInfo struct {
	metrics.Snapshot
	UptimeMS       int64 `json:"uptime_ms"`
	StartUnixNanos int64 `json:"start_unix_nanos"`
}

// FleetInfo is the payload of the fleet op: this shard's identity, its
// ring view, and the gossip state it holds about every peer.  gridctl
// aggregates it across shards for fleet-wide health and convergence
// checks (shard i's view of peer j has converged when its synced
// version equals j's own TableVersion).
type FleetInfo struct {
	Shard      string   `json:"shard"`
	ShardIndex int      `json:"shard_index"`
	Members    []string `json:"members"`
	VNodes     int      `json:"vnodes"`

	// CDs is the number of client domains in the topology — the ring's
	// key space (tooling dumps ownership for cd 0..CDs-1).
	CDs int `json:"cds"`

	// TableVersion/TableEntries describe the local authoritative table —
	// the state peers replicate.
	TableVersion uint64 `json:"table_version"`
	TableEntries int    `json:"table_entries"`

	GossipIntervalMS int64 `json:"gossip_interval_ms"`
	StalenessBoundMS int64 `json:"staleness_bound_ms"`

	Peers []FleetPeerInfo `json:"peers,omitempty"`
}

// FleetPeerInfo is one peer's gossip state as seen from this shard.
type FleetPeerInfo struct {
	Name      string `json:"name"`
	Addr      string `json:"addr"`
	TrustAddr string `json:"trust_addr,omitempty"`

	// Version/Entries describe the last claim set applied from this
	// peer; AgeMS is how long ago that sync succeeded (-1 = never).
	// Stale reports whether the claims have outlived the staleness
	// bound and are currently ignored by the scheduler.
	Version uint64 `json:"version"`
	Entries int    `json:"entries"`
	AgeMS   int64  `json:"age_ms"`
	Stale   bool   `json:"stale"`

	Syncs      uint64 `json:"syncs"`
	SyncErrors uint64 `json:"sync_errors"`

	// Breaker is this shard's circuit-breaker state for forwards to the
	// peer ("closed" | "open" | "half-open"; empty on older shards);
	// BreakerOpens/BreakerCloses count its lifetime transitions.
	Breaker       string `json:"breaker,omitempty"`
	BreakerOpens  uint64 `json:"breaker_opens,omitempty"`
	BreakerCloses uint64 `json:"breaker_closes,omitempty"`
}

// Response is one server response frame.
type Response struct {
	Status     string          `json:"status"` // "ok" | "error" | "overloaded"
	Error      string          `json:"error,omitempty"`
	Placement  *PlacementInfo  `json:"placement,omitempty"`
	Stats      *StatsInfo      `json:"stats,omitempty"`
	Checkpoint *CheckpointInfo `json:"checkpoint,omitempty"`
	Health     *HealthInfo     `json:"health,omitempty"`
	Metrics    *MetricsInfo    `json:"metrics,omitempty"`
	Fleet      *FleetInfo      `json:"fleet,omitempty"`

	// RetryAfterMS accompanies StatusOverloaded: the server's hint for how
	// long a well-behaved client should back off before retrying.
	RetryAfterMS int64 `json:"retry_after_ms,omitempty"`

	// ConnClosing tells the client the server will close this connection
	// after the frame (accept-time shed, drain).  A retrier that sees it
	// redials immediately instead of burning its next attempt discovering
	// a dead connection — without it, every conn-level shed cost two
	// attempts (one overloaded reply + one transport error on the reuse).
	ConnClosing bool `json:"conn_closing,omitempty"`
}

// Response statuses.
const (
	StatusOK    = "ok"
	StatusError = "error"
	// StatusOverloaded is a typed, retryable rejection: the request was
	// not admitted (no state changed) and may be retried after the
	// carried retry_after_ms hint.
	StatusOverloaded = "overloaded"
)

// ErrOverloaded matches (via errors.Is) the client-side error produced by
// a StatusOverloaded response.
var ErrOverloaded = errors.New("rmswire: server overloaded")

// OverloadedError is the typed client-side form of a StatusOverloaded
// response.  errors.Is(err, ErrOverloaded) reports true for it.
type OverloadedError struct {
	Reason     string
	RetryAfter time.Duration
}

func (e *OverloadedError) Error() string {
	if e.Reason != "" {
		return fmt.Sprintf("rmswire: server overloaded: %s (retry after %v)", e.Reason, e.RetryAfter)
	}
	return fmt.Sprintf("rmswire: server overloaded (retry after %v)", e.RetryAfter)
}

// Is lets errors.Is(err, ErrOverloaded) match without unwrapping.
func (e *OverloadedError) Is(target error) bool { return target == ErrOverloaded }

// writeFrame marshals v as one newline-terminated frame.
func writeFrame(w io.Writer, v any) error {
	data, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("rmswire: marshal: %w", err)
	}
	if len(data) > MaxFrameBytes {
		return fmt.Errorf("rmswire: frame of %d bytes exceeds limit", len(data))
	}
	data = append(data, '\n')
	if _, err := w.Write(data); err != nil {
		return fmt.Errorf("rmswire: write: %w", err)
	}
	return nil
}

// readFrame reads one newline-terminated frame into v, enforcing
// MaxFrameBytes while the line accumulates.
func readFrame(r *bufio.Reader, v any) error {
	line, err := readLineBounded(r)
	if err != nil {
		return err
	}
	if err := json.Unmarshal(line, v); err != nil {
		return fmt.Errorf("rmswire: unmarshal: %w", err)
	}
	return nil
}

// readLineBounded accumulates one newline-terminated line from r,
// returning ErrFrameTooLarge the moment the accumulated bytes exceed
// MaxFrameBytes — bounded memory no matter how much a peer streams
// without a newline.
func readLineBounded(r *bufio.Reader) ([]byte, error) {
	var line []byte
	for {
		chunk, err := r.ReadSlice('\n')
		line = append(line, chunk...)
		payload := len(line)
		if err == nil {
			payload-- // the trailing newline is framing, not payload
		}
		if payload > MaxFrameBytes {
			return nil, fmt.Errorf("%w: got %d bytes", ErrFrameTooLarge, payload)
		}
		switch {
		case err == nil:
			return line, nil
		case errors.Is(err, bufio.ErrBufferFull):
			continue
		default:
			return nil, err
		}
	}
}

// activitiesToToA validates and converts wire activity ids.
func activitiesToToA(ids []int) (grid.ToA, error) {
	if len(ids) == 0 {
		return grid.ToA{}, fmt.Errorf("rmswire: empty activity list")
	}
	acts := make([]grid.Activity, len(ids))
	for i, id := range ids {
		if id < 0 {
			return grid.ToA{}, fmt.Errorf("rmswire: negative activity id %d", id)
		}
		acts[i] = grid.Activity(id)
	}
	return grid.NewToA(acts...)
}
