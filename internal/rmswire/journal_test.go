package rmswire

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"gridtrust/internal/core"
	"gridtrust/internal/grid"
	"gridtrust/internal/trust"
	"gridtrust/internal/wal"
)

// journalTopology rebuilds the same two-domain topology every call, so a
// "restarted" daemon sees the grid the journal was written against.
func journalTopology(t *testing.T) *grid.Topology {
	t.Helper()
	mkRD := func(id grid.DomainID) *grid.ResourceDomain {
		return &grid.ResourceDomain{
			ID: id, Owner: "org",
			Supported: map[grid.Activity]grid.TrustLevel{
				grid.ActCompute: grid.LevelC,
				grid.ActStorage: grid.LevelC,
			},
			RTL:      grid.LevelA,
			Machines: []*grid.Machine{{ID: grid.MachineID(id), RD: id}},
		}
	}
	top, err := grid.NewTopology(
		&grid.GridDomain{
			ID: 0, RD: mkRD(0),
			CD: &grid.ClientDomain{
				ID:      0,
				Sought:  map[grid.Activity]grid.TrustLevel{grid.ActCompute: grid.LevelC},
				RTL:     grid.LevelA,
				Clients: []*grid.Client{{ID: 0, CD: 0}},
			},
		},
		&grid.GridDomain{ID: 1, RD: mkRD(1)},
	)
	if err != nil {
		t.Fatal(err)
	}
	return top
}

// startJournaled boots a daemon over the WAL in dir: a fresh TRMS with one
// deterministic agent, journal recovery replayed, server listening.
func startJournaled(t *testing.T, dir string, compactEvery int) (*Server, *Client, func()) {
	t.Helper()
	trms, err := core.New(core.Config{
		Topology: journalTopology(t),
		Agents:   1,
		Trust:    trust.Config{Alpha: 1, Beta: 0, Smoothing: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewServer(trms)
	if err != nil {
		t.Fatal(err)
	}
	log, rec, err := wal.Create(dir, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.AttachJournal(log, rec, compactEvery); err != nil {
		t.Fatal(err)
	}
	addr, err := srv.ListenAndServe("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	client, err := Dial(addr.String())
	if err != nil {
		t.Fatal(err)
	}
	stop := func() {
		client.Close()
		srv.Close()
		trms.Close()
		log.Close()
	}
	return srv, client, stop
}

// settle polls stats until the agents have processed want transactions.
func settle(t *testing.T, client *Client, want int) *StatsInfo {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		st, err := client.Stats()
		if err != nil {
			t.Fatal(err)
		}
		if st.AgentsProcessed >= want {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("agents processed %d of %d", st.AgentsProcessed, want)
		}
		time.Sleep(time.Millisecond)
	}
}

// driveTraffic submits n tasks, reporting an outcome for all but the last
// two (left open across the restart).  Outcomes alternate so the table
// actually moves.
func driveTraffic(t *testing.T, client *Client, n int) (reported int) {
	t.Helper()
	for i := 0; i < n; i++ {
		eec := []float64{10 + float64(i%3), 12 + float64((i*5)%7)}
		p, err := client.Submit(0, []grid.Activity{grid.ActCompute}, grid.LevelD, eec, float64(i))
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		if i >= n-2 {
			continue
		}
		outcome := 6.0
		if i%3 == 0 {
			outcome = 2.0
		}
		if err := client.Report(p.ID, outcome, float64(i)+0.5); err != nil {
			t.Fatalf("report %d: %v", i, err)
		}
		reported++
	}
	return reported
}

func TestJournalRestartRestoresState(t *testing.T) {
	dir := t.TempDir()
	_, client, stop := startJournaled(t, dir, 0)
	reported := driveTraffic(t, client, 9)
	before := settle(t, client, reported)
	stop()

	_, client2, stop2 := startJournaled(t, dir, 0)
	defer stop2()
	after := settle(t, client2, reported)
	if after.Placed != before.Placed ||
		after.OpenPlacements != before.OpenPlacements ||
		after.TableVersion != before.TableVersion ||
		after.TableEntries != before.TableEntries {
		t.Fatalf("restart diverged:\n before %+v\n after  %+v", before, after)
	}
	// The restarted daemon keeps issuing ids where the old one stopped
	// and still resolves placements left open across the restart.
	p, err := client2.Submit(0, []grid.Activity{grid.ActCompute}, grid.LevelD, []float64{10, 12}, 100)
	if err != nil {
		t.Fatal(err)
	}
	if p.ID != 10 {
		t.Fatalf("post-restart placement id %d, want 10", p.ID)
	}
	if err := client2.Report(8, 5, 101); err != nil {
		t.Fatalf("report of pre-restart placement: %v", err)
	}
}

func TestCheckpointCompactsAndRecovers(t *testing.T) {
	dir := t.TempDir()
	_, client, stop := startJournaled(t, dir, 0)
	reported := driveTraffic(t, client, 8)
	settle(t, client, reported)

	info, err := client.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	// 8 places + 6 reports journalled before the checkpoint.
	if info.Compacted != 14 || info.Boundary != 15 {
		t.Fatalf("checkpoint %+v, want 14 records compacted at boundary 15", info)
	}
	// Traffic after the checkpoint lands in the record tail.
	p, err := client.Submit(0, []grid.Activity{grid.ActCompute}, grid.LevelD, []float64{10, 12}, 50)
	if err != nil {
		t.Fatal(err)
	}
	if err := client.Report(p.ID, 6, 51); err != nil {
		t.Fatal(err)
	}
	before := settle(t, client, reported+1)
	stop()

	// The restart must recover from snapshot + tail.
	rec, err := wal.Inspect(dir, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rec.SnapshotSeq != 15 || len(rec.Records) != 2 {
		t.Fatalf("on disk: snapshot %d + %d records, want 15 + 2", rec.SnapshotSeq, len(rec.Records))
	}
	_, client2, stop2 := startJournaled(t, dir, 0)
	defer stop2()
	// Agent counters are activity metrics, not state: after a checkpoint
	// restart only the tail's one report replays through the agents.
	after := settle(t, client2, 1)
	if after.Placed != before.Placed ||
		after.OpenPlacements != before.OpenPlacements ||
		after.TableVersion != before.TableVersion {
		t.Fatalf("post-checkpoint restart diverged:\n before %+v\n after  %+v", before, after)
	}
}

func TestAutoCheckpoint(t *testing.T) {
	dir := t.TempDir()
	_, client, stop := startJournaled(t, dir, 4)
	defer stop()
	reported := driveTraffic(t, client, 6)
	settle(t, client, reported)
	names, err := filepath.Glob(filepath.Join(dir, "snap-*.snap"))
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 1 {
		t.Fatalf("auto-checkpoint left %d snapshot files, want 1", len(names))
	}
}

func TestCheckpointWithoutJournalFails(t *testing.T) {
	_, _, client := newDaemon(t)
	if _, err := client.Checkpoint(); err == nil || !strings.Contains(err.Error(), "no journal") {
		t.Fatalf("checkpoint without journal: %v", err)
	}
}

func TestReplayRejectsGarbageRecords(t *testing.T) {
	dir := t.TempDir()
	log, _, err := wal.Create(dir, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := log.Append([]byte(`{"kind":"wat"}`)); err != nil {
		t.Fatal(err)
	}
	if err := log.Close(); err != nil {
		t.Fatal(err)
	}
	trms, err := core.New(core.Config{Topology: journalTopology(t), Agents: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer trms.Close()
	srv, err := NewServer(trms)
	if err != nil {
		t.Fatal(err)
	}
	log2, rec, err := wal.Create(dir, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer log2.Close()
	if err := srv.AttachJournal(log2, rec, 0); err == nil {
		t.Fatal("replayed an unknown record kind without error")
	}
}

func TestJournalFilesAreBounded(t *testing.T) {
	// A long-running daemon with auto-checkpointing must not accumulate
	// unbounded log files.
	dir := t.TempDir()
	_, client, stop := startJournaled(t, dir, 3)
	defer stop()
	reported := driveTraffic(t, client, 12)
	settle(t, client, reported)
	if _, err := client.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) > 3 {
		for _, e := range entries {
			t.Logf("  %s", e.Name())
		}
		t.Fatalf("%d files in journal dir after compaction", len(entries))
	}
}
