package rmswire

import (
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"gridtrust/internal/grid"
)

func TestRetrierBackoffDeterministic(t *testing.T) {
	mk := func(seed uint64) *Retrier {
		return NewRetrier(RetrierConfig{Addr: "unused", Seed: seed,
			BaseBackoff: 10 * time.Millisecond, MaxBackoff: 500 * time.Millisecond})
	}
	a, b := mk(42), mk(42)
	for i := 0; i < 10; i++ {
		da, db := a.backoff(i, nil), b.backoff(i, nil)
		if da != db {
			t.Fatalf("attempt %d: same seed diverged: %v vs %v", i, da, db)
		}
		// Capped exponential with half-jitter: d/2 ≤ sleep ≤ d.
		want := 10 * time.Millisecond << uint(i)
		if want > 500*time.Millisecond {
			want = 500 * time.Millisecond
		}
		if da < want/2 || da > want {
			t.Fatalf("attempt %d: backoff %v outside [%v,%v]", i, da, want/2, want)
		}
	}
	if ka, kb := mk(7).NewKey(), mk(7).NewKey(); ka != kb {
		t.Fatalf("same seed produced different keys: %s vs %s", ka, kb)
	}
	if ka, kc := mk(7).NewKey(), mk(8).NewKey(); ka == kc {
		t.Fatalf("different seeds produced the same key %s", ka)
	}
}

func TestRetrierHonorsRetryAfterHint(t *testing.T) {
	r := NewRetrier(RetrierConfig{Addr: "unused", Seed: 1,
		BaseBackoff: time.Millisecond, MaxBackoff: 2 * time.Millisecond})
	hint := &OverloadedError{RetryAfter: 80 * time.Millisecond}
	if d := r.backoff(0, hint); d < 40*time.Millisecond {
		t.Fatalf("backoff %v ignored the 80ms server hint", d)
	}
}

func TestRetrierRetriesOverloadThenSucceeds(t *testing.T) {
	trms, _, _ := newDaemon(t)
	srv, err := NewServer(trms)
	if err != nil {
		t.Fatal(err)
	}
	srv.MaxInFlight = 1
	srv.RetryAfter = 5 * time.Millisecond
	addr, err := srv.ListenAndServe("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	if !srv.acquire(0) {
		t.Fatal("acquire")
	}
	go func() {
		time.Sleep(60 * time.Millisecond)
		srv.release()
	}()
	r := NewRetrier(RetrierConfig{Addr: addr.String(), Seed: 3,
		BaseBackoff: 5 * time.Millisecond, MaxAttempts: 20})
	defer r.Close()
	if _, err := r.Stats(); err != nil {
		t.Fatalf("retrier gave up although the server recovered: %v", err)
	}
}

func TestRetrierReconnectsAfterBrokenConnection(t *testing.T) {
	_, srv, _ := newDaemon(t)
	r := NewRetrier(RetrierConfig{Addr: srv.ln.Addr().String(), Seed: 9,
		BaseBackoff: time.Millisecond})
	defer r.Close()
	if _, err := r.Stats(); err != nil {
		t.Fatal(err)
	}
	// Sever the cached connection behind the retrier's back: the next op
	// must fail over to a fresh dial transparently.
	r.mu.Lock()
	r.client.conn.Close()
	r.mu.Unlock()
	if _, err := r.Stats(); err != nil {
		t.Fatalf("retrier did not recover from a broken connection: %v", err)
	}
}

func TestRetrierSubmitSameKeyNeverDoublePlaces(t *testing.T) {
	trms, srv, _ := newDaemon(t)
	r := NewRetrier(RetrierConfig{Addr: srv.ln.Addr().String(), Seed: 11,
		BaseBackoff: time.Millisecond})
	defer r.Close()
	acts := []grid.Activity{grid.ActCompute}
	eec := []float64{100, 110}
	p1, err := r.SubmitKeyed("storm-key", 0, acts, grid.LevelE, eec, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Simulate a lost acknowledgement: the connection dies after the
	// submit was applied, and the caller retries the same key.
	r.mu.Lock()
	r.client.conn.Close()
	r.mu.Unlock()
	p2, err := r.SubmitKeyed("storm-key", 0, acts, grid.LevelE, eec, 0)
	if err != nil {
		t.Fatal(err)
	}
	if p2.ID != p1.ID {
		t.Fatalf("retried key re-placed: ids %d and %d", p1.ID, p2.ID)
	}
	if trms.Placed() != 1 {
		t.Fatalf("placed %d for one key", trms.Placed())
	}
}

func TestRetrierDoesNotRetryApplicationErrors(t *testing.T) {
	_, srv, _ := newDaemon(t)
	r := NewRetrier(RetrierConfig{Addr: srv.ln.Addr().String(), Seed: 13,
		BaseBackoff: 500 * time.Millisecond, MaxAttempts: 10})
	defer r.Close()
	start := time.Now()
	_, err := r.SubmitKeyed("bad", 99, []grid.Activity{grid.ActCompute}, grid.LevelE, []float64{1, 2}, 0)
	if err == nil {
		t.Fatal("unknown client accepted")
	}
	if strings.Contains(err.Error(), "attempts exhausted") {
		t.Fatalf("application error was retried to exhaustion: %v", err)
	}
	// No backoff sleeps: the first attempt's answer was final.
	if time.Since(start) > 400*time.Millisecond {
		t.Fatal("application error burned retry backoff")
	}
}

func TestRetrierExhaustsAgainstDeadServer(t *testing.T) {
	r := NewRetrier(RetrierConfig{Addr: "127.0.0.1:1", Seed: 17,
		MaxAttempts: 3, BaseBackoff: time.Millisecond, DialTimeout: 200 * time.Millisecond})
	_, err := r.Stats()
	if err == nil {
		t.Fatal("stats against a dead address succeeded")
	}
	if !strings.Contains(err.Error(), "attempts exhausted") {
		t.Fatalf("unexpected terminal error: %v", err)
	}
}

func TestRetrierConcurrentSubmits(t *testing.T) {
	trms, srv, _ := newDaemon(t)
	r := NewRetrier(RetrierConfig{Addr: srv.ln.Addr().String(), Seed: 19,
		BaseBackoff: time.Millisecond})
	defer r.Close()
	const n = 16
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = r.Submit(0, []grid.Activity{grid.ActCompute}, grid.LevelC, []float64{5, 7}, float64(i))
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
	}
	if trms.Placed() != n {
		t.Fatalf("placed %d of %d distinct-key submits", trms.Placed(), n)
	}
}

func TestRetrierSubmitRequiresKey(t *testing.T) {
	r := NewRetrier(RetrierConfig{Addr: "unused", Seed: 23})
	if _, err := r.SubmitKeyed("", 0, []grid.Activity{grid.ActCompute}, grid.LevelC, []float64{1, 2}, 0); err == nil {
		t.Fatal("empty idempotency key accepted")
	}
}

func TestOverloadedErrorTyping(t *testing.T) {
	var err error = &OverloadedError{Reason: "x", RetryAfter: time.Second}
	if !errors.Is(err, ErrOverloaded) {
		t.Fatal("errors.Is(ErrOverloaded) failed")
	}
	var oe *OverloadedError
	if !errors.As(err, &oe) || oe.RetryAfter != time.Second {
		t.Fatal("errors.As failed")
	}
	if !strings.Contains(err.Error(), "overloaded") {
		t.Fatalf("error text %q", err)
	}
}
