package rmswire

// retrier.go is the client-side half of the overload-resilience layer: a
// wrapper that dials, retries and reconnects so callers see one logical
// request stream over an unreliable daemon.  Retries are safe because the
// only non-idempotent op, Submit, always travels under an idempotency key
// here — an ambiguous failure (connection died after the frame was
// written) is resolved by resubmitting the same key, and the server
// answers with the original placement instead of double-placing.
//
// Backoff jitter is drawn from internal/rng seeded by the caller, so a
// retry storm in a test is exactly reproducible run to run.

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"time"

	"gridtrust/internal/grid"
	"gridtrust/internal/rng"
)

// Retrier defaults.
const (
	DefaultMaxAttempts = 8
	DefaultBaseBackoff = 10 * time.Millisecond
	DefaultMaxBackoff  = time.Second
)

// RetrierConfig parameterises a Retrier.  Zero values select defaults.
type RetrierConfig struct {
	Addr        string
	MaxAttempts int           // attempts per op, including the first
	BaseBackoff time.Duration // backoff before the first retry
	MaxBackoff  time.Duration // exponential growth cap
	DialTimeout time.Duration // per-reconnect dial bound
	OpTimeout   time.Duration // per-op client deadline (0 disables)
	Budget      time.Duration // admission budget sent with each request
	Seed        uint64        // jitter + idempotency-key stream seed
}

func (c RetrierConfig) withDefaults() RetrierConfig {
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = DefaultMaxAttempts
	}
	if c.BaseBackoff <= 0 {
		c.BaseBackoff = DefaultBaseBackoff
	}
	if c.MaxBackoff <= 0 {
		c.MaxBackoff = DefaultMaxBackoff
	}
	if c.DialTimeout <= 0 {
		c.DialTimeout = DefaultDialTimeout
	}
	return c
}

// Retrier is a self-healing client: it retries retryable failures
// (overload sheds, broken or refused connections) with capped exponential
// backoff and deterministic jitter, reconnecting as needed.  Application
// errors — validation failures, unknown placements — are returned
// immediately.  Safe for concurrent use.
type Retrier struct {
	cfg RetrierConfig

	mu     sync.Mutex
	client *Client
	jitter *rng.Source
	keys   *rng.Source
}

// NewRetrier builds a Retrier for addr-style config.  Connections are
// dialed lazily on first use.
func NewRetrier(cfg RetrierConfig) *Retrier {
	cfg = cfg.withDefaults()
	master := rng.New(cfg.Seed)
	return &Retrier{
		cfg:    cfg,
		jitter: master.Split(),
		keys:   master.Split(),
	}
}

// NewKey draws the next idempotency key from the Retrier's deterministic
// key stream.
func (r *Retrier) NewKey() string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return fmt.Sprintf("%016x%016x", r.keys.Uint64(), r.keys.Uint64())
}

// Close releases the current connection, if any.
func (r *Retrier) Close() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.client == nil {
		return nil
	}
	err := r.client.Close()
	r.client = nil
	return err
}

// connect returns a healthy client, dialing a fresh connection if the
// cached one is missing or broken.
func (r *Retrier) connect() (*Client, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.client != nil && !r.client.Broken() {
		return r.client, nil
	}
	if r.client != nil {
		_ = r.client.Close()
		r.client = nil
	}
	c, err := DialTimeout(r.cfg.Addr, r.cfg.DialTimeout)
	if err != nil {
		return nil, err
	}
	c.Timeout = r.cfg.OpTimeout
	c.Budget = r.cfg.Budget
	r.client = c
	return c, nil
}

// drop discards a connection the retrier no longer trusts.
func (r *Retrier) drop(c *Client) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.client == c {
		_ = r.client.Close()
		r.client = nil
	}
}

// backoff computes the sleep before retry number attempt (0-based): capped
// exponential with deterministic half-jitter, floored by the server's
// retry_after hint when the previous failure was an overload shed.
func (r *Retrier) backoff(attempt int, lastErr error) time.Duration {
	d := r.cfg.BaseBackoff
	for i := 0; i < attempt && d < r.cfg.MaxBackoff; i++ {
		d *= 2
	}
	if d > r.cfg.MaxBackoff {
		d = r.cfg.MaxBackoff
	}
	var oe *OverloadedError
	if errors.As(lastErr, &oe) && oe.RetryAfter > d {
		d = oe.RetryAfter
	}
	r.mu.Lock()
	jittered := d/2 + time.Duration(r.jitter.Uniform(0, float64(d/2)))
	r.mu.Unlock()
	return jittered
}

// do runs op with retries.  op receives a healthy client; the error it
// returns is classified: overload sheds and transport failures retry,
// anything else is final.
func (r *Retrier) do(op func(*Client) error) error {
	var lastErr error
	for attempt := 0; attempt < r.cfg.MaxAttempts; attempt++ {
		if attempt > 0 {
			time.Sleep(r.backoff(attempt-1, lastErr))
		}
		c, err := r.connect()
		if err != nil {
			lastErr = err
			continue
		}
		if err := op(c); err != nil {
			lastErr = err
			if errors.Is(err, ErrOverloaded) {
				continue // shed before execution; the connection is fine
			}
			if c.Broken() || errors.Is(err, ErrClientBroken) {
				r.drop(c)
				continue
			}
			return err // application error: retrying cannot help
		}
		return nil
	}
	return fmt.Errorf("rmswire: %d attempts exhausted: %w", r.cfg.MaxAttempts, lastErr)
}

// Submit schedules a task under a fresh idempotency key, retrying until
// the daemon acknowledges exactly one placement for it.
func (r *Retrier) Submit(client grid.ClientID, activities []grid.Activity, rtl grid.TrustLevel, eec []float64, now float64) (*PlacementInfo, error) {
	return r.SubmitKeyed(r.NewKey(), client, activities, rtl, eec, now)
}

// SubmitKeyed retries a submit under a caller-pinned idempotency key —
// callers that must survive their own restarts derive keys from durable
// task identity instead of the Retrier's stream.
func (r *Retrier) SubmitKeyed(key string, client grid.ClientID, activities []grid.Activity, rtl grid.TrustLevel, eec []float64, now float64) (*PlacementInfo, error) {
	if key == "" {
		return nil, fmt.Errorf("rmswire: retried submit requires an idempotency key")
	}
	var p *PlacementInfo
	err := r.do(func(c *Client) error {
		var e error
		p, e = c.SubmitKeyed(key, client, activities, rtl, eec, now)
		return e
	})
	return p, err
}

// Report retries an outcome report.  Reports carry no idempotency key, so
// after a retried attempt an "already-reported" rejection is treated as
// success: the only plausible writer of this placement's outcome is the
// earlier attempt whose acknowledgement was lost.
func (r *Retrier) Report(placementID uint64, outcome, now float64) error {
	attempts := 0
	return r.do(func(c *Client) error {
		attempts++
		err := c.Report(placementID, outcome, now)
		if err != nil && attempts > 1 && strings.Contains(err.Error(), "already-reported") {
			return nil
		}
		return err
	})
}

// Stats fetches daemon statistics with retries.
func (r *Retrier) Stats() (*StatsInfo, error) {
	var st *StatsInfo
	err := r.do(func(c *Client) error {
		var e error
		st, e = c.Stats()
		return e
	})
	return st, err
}

// Health fetches the daemon readiness view with retries.
func (r *Retrier) Health() (*HealthInfo, error) {
	var h *HealthInfo
	err := r.do(func(c *Client) error {
		var e error
		h, e = c.Health()
		return e
	})
	return h, err
}
