package rmswire

// retrier.go is the client-side half of the overload-resilience layer: a
// wrapper that dials, retries and reconnects so callers see one logical
// request stream over an unreliable daemon.  Retries are safe because the
// only non-idempotent op, Submit, always travels under an idempotency key
// here — an ambiguous failure (connection died after the frame was
// written) is resolved by resubmitting the same key, and the server
// answers with the original placement instead of double-placing.
//
// Backoff jitter is drawn from internal/rng seeded by the caller, so a
// retry storm in a test is exactly reproducible run to run.

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"gridtrust/internal/grid"
	"gridtrust/internal/rng"
)

// Retrier defaults.
const (
	DefaultMaxAttempts = 8
	DefaultBaseBackoff = 10 * time.Millisecond
	DefaultMaxBackoff  = time.Second
)

// ErrExhausted marks a Retrier op that burned every attempt without a
// definitive answer.  For a keyed submit this outcome is AMBIGUOUS: an
// earlier attempt may have placed the task with its acknowledgement
// lost.  Resubmitting the same key resolves it either way.
var ErrExhausted = errors.New("attempts exhausted")

// RetrierConfig parameterises a Retrier.  Zero values select defaults.
type RetrierConfig struct {
	Addr        string
	MaxAttempts int           // attempts per op, including the first
	BaseBackoff time.Duration // backoff before the first retry
	MaxBackoff  time.Duration // exponential growth cap
	DialTimeout time.Duration // per-reconnect dial bound
	OpTimeout   time.Duration // per-op client deadline (0 disables)
	Budget      time.Duration // admission budget sent with each request
	Seed        uint64        // jitter + idempotency-key stream seed
}

func (c RetrierConfig) withDefaults() RetrierConfig {
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = DefaultMaxAttempts
	}
	if c.BaseBackoff <= 0 {
		c.BaseBackoff = DefaultBaseBackoff
	}
	if c.MaxBackoff <= 0 {
		c.MaxBackoff = DefaultMaxBackoff
	}
	if c.DialTimeout <= 0 {
		c.DialTimeout = DefaultDialTimeout
	}
	return c
}

// Retrier is a self-healing client: it retries retryable failures
// (overload sheds, broken or refused connections) with capped exponential
// backoff and deterministic jitter, reconnecting as needed.  Application
// errors — validation failures, unknown placements — are returned
// immediately.  Safe for concurrent use.
type Retrier struct {
	cfg RetrierConfig

	mu     sync.Mutex
	client *Client
	jitter *rng.Source
	keys   *rng.Source

	// Attempt accounting, readable while ops run (Counters).
	attempts        atomic.Uint64
	dials           atomic.Uint64
	dialErrors      atomic.Uint64
	overloads       atomic.Uint64
	transportErrors atomic.Uint64
	appErrors       atomic.Uint64
	exhausted       atomic.Uint64
	ok              atomic.Uint64
}

// RetrierCounters is a point-in-time view of a Retrier's attempt
// accounting.  Attempts counts every wire attempt (including redials
// that failed before a frame was sent); Overloads counts overloaded
// replies received; TransportErrors counts attempts lost to a broken
// connection.  OK + AppErrors + Exhausted equals the number of logical
// ops completed.  These are the client-side half of the reconciliation
// story: Overloads here must match the daemon's overload_replies_total
// (within one daemon instance, and when shed_conn_limit is zero — an
// accept-time shed races the peer's first write, so its overloaded
// frame may surface as a transport error instead).
type RetrierCounters struct {
	Attempts        uint64 `json:"attempts"`
	Dials           uint64 `json:"dials"`
	DialErrors      uint64 `json:"dial_errors"`
	Overloads       uint64 `json:"overloads"`
	TransportErrors uint64 `json:"transport_errors"`
	AppErrors       uint64 `json:"app_errors"`
	Exhausted       uint64 `json:"exhausted"`
	OK              uint64 `json:"ok"`
}

// Counters snapshots the Retrier's attempt accounting.
func (r *Retrier) Counters() RetrierCounters {
	return RetrierCounters{
		Attempts:        r.attempts.Load(),
		Dials:           r.dials.Load(),
		DialErrors:      r.dialErrors.Load(),
		Overloads:       r.overloads.Load(),
		TransportErrors: r.transportErrors.Load(),
		AppErrors:       r.appErrors.Load(),
		Exhausted:       r.exhausted.Load(),
		OK:              r.ok.Load(),
	}
}

// Add accumulates other into c, so per-worker counters fold into a
// fleet-wide total.
func (c *RetrierCounters) Add(other RetrierCounters) {
	c.Attempts += other.Attempts
	c.Dials += other.Dials
	c.DialErrors += other.DialErrors
	c.Overloads += other.Overloads
	c.TransportErrors += other.TransportErrors
	c.AppErrors += other.AppErrors
	c.Exhausted += other.Exhausted
	c.OK += other.OK
}

// NewRetrier builds a Retrier for addr-style config.  Connections are
// dialed lazily on first use.
func NewRetrier(cfg RetrierConfig) *Retrier {
	cfg = cfg.withDefaults()
	master := rng.New(cfg.Seed)
	return &Retrier{
		cfg:    cfg,
		jitter: master.Split(),
		keys:   master.Split(),
	}
}

// NewKey draws the next idempotency key from the Retrier's deterministic
// key stream.
func (r *Retrier) NewKey() string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return fmt.Sprintf("%016x%016x", r.keys.Uint64(), r.keys.Uint64())
}

// Close releases the current connection, if any.
func (r *Retrier) Close() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.client == nil {
		return nil
	}
	err := r.client.Close()
	r.client = nil
	return err
}

// connect returns a healthy client, dialing a fresh connection if the
// cached one is missing, broken, or announced closing by the server.
// Treating closing like broken is the fix for a subtle double-spend:
// before it, a server that shed at accept time (one overloaded frame,
// then close) left the retrier holding a dead connection, so the shed
// cost TWO attempts — the overload itself, plus a transport error
// discovering the corpse on the next attempt.
func (r *Retrier) connect() (*Client, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.client != nil && !r.client.Broken() && !r.client.Closing() {
		return r.client, nil
	}
	if r.client != nil {
		_ = r.client.Close()
		r.client = nil
	}
	r.dials.Add(1)
	c, err := DialTimeout(r.cfg.Addr, r.cfg.DialTimeout)
	if err != nil {
		r.dialErrors.Add(1)
		return nil, err
	}
	c.Timeout = r.cfg.OpTimeout
	c.Budget = r.cfg.Budget
	r.client = c
	return c, nil
}

// drop discards a connection the retrier no longer trusts.
func (r *Retrier) drop(c *Client) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.client == c {
		_ = r.client.Close()
		r.client = nil
	}
}

// backoff computes the sleep before retry number attempt (0-based): capped
// exponential with deterministic half-jitter, floored by the server's
// retry_after hint when the previous failure was an overload shed.
func (r *Retrier) backoff(attempt int, lastErr error) time.Duration {
	d := r.cfg.BaseBackoff
	for i := 0; i < attempt && d < r.cfg.MaxBackoff; i++ {
		d *= 2
	}
	if d > r.cfg.MaxBackoff {
		d = r.cfg.MaxBackoff
	}
	var oe *OverloadedError
	if errors.As(lastErr, &oe) && oe.RetryAfter > d {
		d = oe.RetryAfter
	}
	r.mu.Lock()
	jittered := d/2 + time.Duration(r.jitter.Uniform(0, float64(d/2)))
	r.mu.Unlock()
	return jittered
}

// do runs op with retries.  op receives a healthy client; the error it
// returns is classified: overload sheds and transport failures retry,
// anything else is final.
func (r *Retrier) do(op func(*Client) error) error {
	var lastErr error
	for attempt := 0; attempt < r.cfg.MaxAttempts; attempt++ {
		if attempt > 0 {
			time.Sleep(r.backoff(attempt-1, lastErr))
		}
		r.attempts.Add(1)
		c, err := r.connect()
		if err != nil {
			lastErr = err
			continue
		}
		if err := op(c); err != nil {
			lastErr = err
			if errors.Is(err, ErrOverloaded) {
				r.overloads.Add(1)
				// Shed before execution.  Usually the connection is fine
				// and is reused; if the server said it is closing it (an
				// accept-time or drain shed), drop it now so the next
				// attempt redials instead of dying on a dead conn.
				if c.Closing() {
					r.drop(c)
				}
				continue
			}
			if c.Broken() || errors.Is(err, ErrClientBroken) {
				r.transportErrors.Add(1)
				r.drop(c)
				continue
			}
			r.appErrors.Add(1)
			return err // application error: retrying cannot help
		}
		r.ok.Add(1)
		return nil
	}
	r.exhausted.Add(1)
	return fmt.Errorf("rmswire: %d %w: %w", r.cfg.MaxAttempts, ErrExhausted, lastErr)
}

// Submit schedules a task under a fresh idempotency key, retrying until
// the daemon acknowledges exactly one placement for it.
func (r *Retrier) Submit(client grid.ClientID, activities []grid.Activity, rtl grid.TrustLevel, eec []float64, now float64) (*PlacementInfo, error) {
	return r.SubmitKeyed(r.NewKey(), client, activities, rtl, eec, now)
}

// SubmitKeyed retries a submit under a caller-pinned idempotency key —
// callers that must survive their own restarts derive keys from durable
// task identity instead of the Retrier's stream.
func (r *Retrier) SubmitKeyed(key string, client grid.ClientID, activities []grid.Activity, rtl grid.TrustLevel, eec []float64, now float64) (*PlacementInfo, error) {
	if key == "" {
		return nil, fmt.Errorf("rmswire: retried submit requires an idempotency key")
	}
	var p *PlacementInfo
	err := r.do(func(c *Client) error {
		var e error
		p, e = c.SubmitKeyed(key, client, activities, rtl, eec, now)
		return e
	})
	return p, err
}

// Report retries an outcome report.  Reports carry no idempotency key, so
// after a retried attempt an "already-reported" rejection is treated as
// success: the only plausible writer of this placement's outcome is the
// earlier attempt whose acknowledgement was lost.
func (r *Retrier) Report(placementID uint64, outcome, now float64) error {
	attempts := 0
	return r.do(func(c *Client) error {
		attempts++
		err := c.Report(placementID, outcome, now)
		if err != nil && attempts > 1 && strings.Contains(err.Error(), "already-reported") {
			return nil
		}
		return err
	})
}

// Stats fetches daemon statistics with retries.
func (r *Retrier) Stats() (*StatsInfo, error) {
	var st *StatsInfo
	err := r.do(func(c *Client) error {
		var e error
		st, e = c.Stats()
		return e
	})
	return st, err
}

// Metrics scrapes the daemon's metrics registry with retries.
func (r *Retrier) Metrics() (*MetricsInfo, error) {
	var m *MetricsInfo
	err := r.do(func(c *Client) error {
		var e error
		m, e = c.Metrics()
		return e
	})
	return m, err
}

// Health fetches the daemon readiness view with retries.
func (r *Retrier) Health() (*HealthInfo, error) {
	var h *HealthInfo
	err := r.do(func(c *Client) error {
		var e error
		h, e = c.Health()
		return e
	})
	return h, err
}
