package rmswire

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"gridtrust/internal/core"
	"gridtrust/internal/grid"
	"gridtrust/internal/metrics"
	"gridtrust/internal/wal"
)

// DefaultIdleTimeout is the per-connection read/write deadline applied
// when Server.IdleTimeout is zero: a client that neither sends a frame
// nor drains a response for this long is reaped instead of pinning a
// handler goroutine forever.
const DefaultIdleTimeout = 2 * time.Minute

// DefaultRetryAfter is the backoff hint carried on StatusOverloaded
// responses when Server.RetryAfter is zero.
const DefaultRetryAfter = 50 * time.Millisecond

// Server exposes one TRMS over the wire.  It owns a placement registry so
// outcome reports can reference placements by id across connections.
type Server struct {
	trms *core.TRMS

	// IdleTimeout is the per-connection read/write deadline; 0 selects
	// DefaultIdleTimeout, negative disables deadlines.  Set before
	// ListenAndServe.
	IdleTimeout time.Duration

	// MaxConns bounds concurrently served connections; a connection over
	// the limit is answered with one StatusOverloaded frame and closed.
	// 0 means unlimited.  Set before ListenAndServe.
	MaxConns int

	// MaxInFlight bounds concurrently executing requests across all
	// connections.  A request that cannot be admitted within its budget
	// (Request.BudgetMS) is shed with StatusOverloaded; nothing about it
	// is applied or journalled.  0 means unlimited.  Set before
	// ListenAndServe.
	MaxInFlight int

	// RetryAfter overrides the backoff hint on StatusOverloaded
	// responses; 0 selects DefaultRetryAfter.
	RetryAfter time.Duration

	// Router, when non-nil, sees every submit and report before local
	// execution (after admission, outside the journal lock) and may
	// execute it on another shard.  Requests already marked Forwarded
	// bypass it, so rings that momentarily disagree cannot loop a
	// request.  Set before ListenAndServe.
	Router Router

	// FleetStatus, when non-nil, serves the fleet op (admission-free,
	// like health).  Set before ListenAndServe.
	FleetStatus func() *FleetInfo

	ln     net.Listener
	wg     sync.WaitGroup
	closed atomic.Bool

	// tokens is the admission semaphore (nil when MaxInFlight == 0);
	// inflight counts executing requests for health and drain even when
	// admission is unlimited.
	tokens   chan struct{}
	inflight atomic.Int64
	draining atomic.Bool
	drainReq chan struct{}

	// degraded is the daemon-level fail-stop latch: once the journal
	// reports a WAL fail-stop (a failed write or fsync — durability can
	// no longer be promised) every subsequent mutation is refused and
	// health reports "degraded".  Reads, health, metrics and drain keep
	// working so the operator can inspect and retire the shard.
	// degradedCause holds the first error, for health and logs.
	degraded      atomic.Bool
	degradedCause atomic.Value // string

	connMu sync.Mutex
	conns  map[net.Conn]struct{}

	mu         sync.Mutex
	nextID     uint64
	placements map[uint64]openPlacement

	// idem maps Submit idempotency keys to the acknowledged placement
	// record so a retried submit returns the original placement instead
	// of double-placing; idemPending reserves keys whose first attempt is
	// still executing.  Both live under mu; idem is rebuilt from the
	// journal on replay, so it survives restart.
	idem        map[string]journalRecord
	idemPending map[string]struct{}

	// jmu serialises operations against checkpoints: handlers that
	// mutate the TRMS and append to the journal hold it for reading,
	// Checkpoint holds it for writing so the captured state matches the
	// journal position exactly.  See journal.go.
	jmu          sync.RWMutex
	journal      *wal.Log
	compactEvery int
	lastBoundary uint64

	// start anchors uptime on the monotonic clock; startUnixNanos is the
	// wall-clock instance stamp reported alongside it.
	start          time.Time
	startUnixNanos int64

	// reg is the metrics registry; sm caches the hot-path handles so
	// request handling never takes the registry lock.
	reg *metrics.Registry
	sm  serverMetrics
}

// Router decides whether a request belongs elsewhere.  Route returns
// (response, true) when it executed the request on another shard — the
// response is relayed to the client verbatim — or (zero, false) when
// the request is local (including deliberate failover after the owner
// proved unreachable).  Implementations must not call back into the
// server they are attached to.
type Router interface {
	Route(req Request) (Response, bool)
}

// serverMetrics caches registry handles used on the request path.
type serverMetrics struct {
	connsAccepted   *metrics.Counter
	shedConnLimit   *metrics.Counter
	shedDraining    *metrics.Counter
	shedInflight    *metrics.Counter
	shedIdemPending *metrics.Counter
	overloadReplies *metrics.Counter
	requests        *metrics.Counter
	submitOK        *metrics.Counter
	submitErr       *metrics.Counter
	reportOK        *metrics.Counter
	reportErr       *metrics.Counter
	placements      *metrics.Counter
	idemHits        *metrics.Counter
	refusedDegraded *metrics.Counter
	opSubmit        *metrics.Histogram
	opReport        *metrics.Histogram
	opStats         *metrics.Histogram
}

// openPlacement pairs a placement with the ToA it was submitted under so
// ReportOutcome can attribute per-activity transactions.
type openPlacement struct {
	p   *core.Placement
	toa grid.ToA
}

// NewServer wraps a TRMS.  The server does not own the TRMS: callers
// close both, server first.
func NewServer(trms *core.TRMS) (*Server, error) {
	if trms == nil {
		return nil, fmt.Errorf("rmswire: nil TRMS")
	}
	now := time.Now()
	s := &Server{
		trms:           trms,
		placements:     make(map[uint64]openPlacement),
		conns:          make(map[net.Conn]struct{}),
		idem:           make(map[string]journalRecord),
		idemPending:    make(map[string]struct{}),
		drainReq:       make(chan struct{}, 1),
		start:          now,
		startUnixNanos: now.UnixNano(),
		reg:            metrics.NewRegistry(),
	}
	s.sm = serverMetrics{
		connsAccepted:   s.reg.Counter(MetricConnsAccepted),
		shedConnLimit:   s.reg.Counter(MetricShedConnLimit),
		shedDraining:    s.reg.Counter(MetricShedDraining),
		shedInflight:    s.reg.Counter(MetricShedInflight),
		shedIdemPending: s.reg.Counter(MetricShedIdemPending),
		overloadReplies: s.reg.Counter(MetricOverloadReplies),
		requests:        s.reg.Counter(MetricRequests),
		submitOK:        s.reg.Counter(MetricSubmitOK),
		submitErr:       s.reg.Counter(MetricSubmitErr),
		reportOK:        s.reg.Counter(MetricReportOK),
		reportErr:       s.reg.Counter(MetricReportErr),
		placements:      s.reg.Counter(MetricPlacements),
		idemHits:        s.reg.Counter(MetricIdemHits),
		refusedDegraded: s.reg.Counter(MetricRefusedDegraded),
		opSubmit:        s.reg.Histogram(MetricOpSubmitNS),
		opReport:        s.reg.Histogram(MetricOpReportNS),
		opStats:         s.reg.Histogram(MetricOpStatsNS),
	}
	return s, nil
}

// Metrics exposes the server's registry so the owning process can hang
// its own instruments (e.g. WAL batch sizes) off the same scrape.
func (s *Server) Metrics() *metrics.Registry { return s.reg }

// SetNextIDBase raises the placement-id counter to at least base,
// namespacing this server's ids in a fleet (shard k passes
// k << ShardIDShift).  Call after AttachJournal — replayed ids from an
// earlier fleet run already carry the namespace and must not be
// lowered — and before serving.  Shard 0's base is zero, which keeps a
// single-shard fleet's ids (and hence its WAL) byte-identical to a
// non-fleet daemon's.
func (s *Server) SetNextIDBase(base uint64) {
	s.mu.Lock()
	if s.nextID < base {
		s.nextID = base
	}
	s.mu.Unlock()
}

// ListenAndServe binds addr and serves in the background, returning the
// bound address.
func (s *Server) ListenAndServe(addr string) (net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	return s.ServeListener(ln), nil
}

// ServeListener serves on an already-bound listener in the background,
// returning its address.  It exists so owners can interpose on the
// listener (fault injection, TLS, test harnesses) before the server
// starts accepting.
func (s *Server) ServeListener(ln net.Listener) net.Addr {
	if s.MaxInFlight > 0 {
		s.tokens = make(chan struct{}, s.MaxInFlight)
	}
	s.ln = ln
	go s.acceptLoop()
	return ln.Addr()
}

// degrade latches the daemon into fail-stop refusal of mutations.  The
// first cause wins; later calls are no-ops.
func (s *Server) degrade(cause error) {
	if s.degraded.CompareAndSwap(false, true) {
		s.degradedCause.Store(cause.Error())
	}
}

// Degraded reports whether the daemon has latched into fail-stop mode,
// and the cause.
func (s *Server) Degraded() (bool, string) {
	if !s.degraded.Load() {
		return false, ""
	}
	cause, _ := s.degradedCause.Load().(string)
	return true, cause
}

// rejectConn answers an unadmitted connection with a single overloaded
// frame and closes it, so the peer learns "retry later" instead of seeing
// a bare RST.
func (s *Server) rejectConn(conn net.Conn, reason string) {
	if t := s.idleTimeout(); t > 0 {
		_ = conn.SetWriteDeadline(time.Now().Add(t))
	}
	resp := s.overloaded(reason)
	resp.ConnClosing = true
	_ = writeFrame(conn, resp)
	_ = conn.Close()
}

func (s *Server) acceptLoop() {
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return
		}
		if s.draining.Load() {
			s.sm.shedDraining.Inc()
			s.rejectConn(conn, "draining")
			continue
		}
		s.connMu.Lock()
		if s.closed.Load() {
			s.connMu.Unlock()
			_ = conn.Close()
			return
		}
		if s.MaxConns > 0 && len(s.conns) >= s.MaxConns {
			s.connMu.Unlock()
			s.sm.shedConnLimit.Inc()
			s.rejectConn(conn, fmt.Sprintf("connection limit %d reached", s.MaxConns))
			continue
		}
		s.conns[conn] = struct{}{}
		s.connMu.Unlock()
		s.sm.connsAccepted.Inc()
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			defer func() {
				s.connMu.Lock()
				delete(s.conns, conn)
				s.connMu.Unlock()
				_ = conn.Close()
			}()
			s.handle(conn)
		}()
	}
}

// Close stops accepting, force-closes connections and waits for handlers.
func (s *Server) Close() {
	if s.closed.Swap(true) {
		return
	}
	if s.ln != nil {
		_ = s.ln.Close()
	}
	s.connMu.Lock()
	for c := range s.conns {
		_ = c.Close()
	}
	s.connMu.Unlock()
	s.wg.Wait()
}

// Shutdown drains the server gracefully: it stops accepting, sheds every
// request that arrives after the call with StatusOverloaded("draining"),
// and waits up to timeout for already-admitted requests to finish before
// force-closing the remaining connections.  It returns true if all
// in-flight work completed inside the deadline.  Callers holding a
// journal typically take a final Checkpoint afterwards.
func (s *Server) Shutdown(timeout time.Duration) bool {
	s.draining.Store(true)
	if s.ln != nil {
		_ = s.ln.Close()
	}
	deadline := time.Now().Add(timeout)
	clean := true
	for s.inflight.Load() > 0 {
		if time.Now().After(deadline) {
			clean = false
			break
		}
		time.Sleep(time.Millisecond)
	}
	s.Close()
	return clean
}

// DrainRequested is signalled (once, non-blocking) when a client issues
// the drain op; the process owning the server decides how to shut down.
func (s *Server) DrainRequested() <-chan struct{} { return s.drainReq }

// retryAfter resolves the overload backoff hint.
func (s *Server) retryAfter() time.Duration {
	if s.RetryAfter > 0 {
		return s.RetryAfter
	}
	return DefaultRetryAfter
}

// overloaded builds the typed retryable rejection frame.  Every
// overloaded reply the server produces goes through here, so the
// counter is the exact number of overloaded frames written (modulo
// frames lost to a peer that hung up first — see MetricShedConnLimit).
func (s *Server) overloaded(reason string) Response {
	s.sm.overloadReplies.Inc()
	return Response{
		Status:       StatusOverloaded,
		Error:        reason,
		RetryAfterMS: s.retryAfter().Milliseconds(),
	}
}

// acquire admits one request, waiting at most budget for an in-flight
// slot.  It reports false when the request must be shed; nothing was
// applied.  release undoes a successful acquire.
func (s *Server) acquire(budget time.Duration) bool {
	if s.tokens == nil {
		s.inflight.Add(1)
		return true
	}
	select {
	case s.tokens <- struct{}{}:
		s.inflight.Add(1)
		return true
	default:
	}
	if budget <= 0 {
		return false
	}
	timer := time.NewTimer(budget)
	defer timer.Stop()
	select {
	case s.tokens <- struct{}{}:
		s.inflight.Add(1)
		return true
	case <-timer.C:
		return false
	}
}

func (s *Server) release() {
	s.inflight.Add(-1)
	if s.tokens != nil {
		<-s.tokens
	}
}

// idleTimeout resolves the effective per-connection deadline.
func (s *Server) idleTimeout() time.Duration {
	if s.IdleTimeout == 0 {
		return DefaultIdleTimeout
	}
	if s.IdleTimeout < 0 {
		return 0
	}
	return s.IdleTimeout
}

// handle serves one connection's request stream.  Each frame read and
// each response write runs under the idle deadline; an oversized frame is
// answered with a typed error before the connection closes (the rest of
// the line is unread, so the stream cannot be resynchronised).
func (s *Server) handle(conn net.Conn) {
	r := bufio.NewReaderSize(conn, 64<<10)
	timeout := s.idleTimeout()
	deadline := func(set func(time.Time) error) {
		if timeout > 0 {
			_ = set(time.Now().Add(timeout))
		}
	}
	for {
		var req Request
		deadline(conn.SetReadDeadline)
		if err := readFrame(r, &req); err != nil {
			if !errors.Is(err, io.EOF) && !s.closed.Load() {
				deadline(conn.SetWriteDeadline)
				_ = writeFrame(conn, Response{Status: StatusError, Error: err.Error()})
			}
			return
		}
		resp := s.respond(req)
		// A draining server finishes the request it already answered and
		// then closes the stream so the client reconnects elsewhere; say
		// so in the frame so the client redials instead of discovering a
		// dead connection on its next request.
		closing := s.draining.Load()
		if closing {
			resp.ConnClosing = true
		}
		deadline(conn.SetWriteDeadline)
		if err := writeFrame(conn, resp); err != nil {
			return
		}
		if closing {
			return
		}
	}
}

// respond executes one request against the TRMS.  Mutating ops run under
// the journal read-lock so checkpoints observe a quiescent daemon.
// Health and drain bypass admission entirely — they must answer precisely
// when the daemon is overloaded or draining.
func (s *Server) respond(req Request) Response {
	switch req.Op {
	case OpHealth:
		return s.handleHealth()
	case OpMetrics:
		return s.handleMetrics()
	case OpDrain:
		return s.handleDrain()
	case OpCheckpoint:
		return s.handleCheckpoint()
	case OpFleet:
		return s.handleFleet()
	}
	s.sm.requests.Inc()
	if s.draining.Load() {
		s.sm.shedDraining.Inc()
		return s.overloaded("draining")
	}
	// Fail-stop: a daemon whose journal can no longer promise durability
	// refuses every mutation outright (StatusError, not overloaded — a
	// retry here can never succeed; the client must go elsewhere).
	// Reads still serve.
	if (req.Op == OpSubmit || req.Op == OpReport) && s.degraded.Load() {
		s.sm.refusedDegraded.Inc()
		cause, _ := s.degradedCause.Load().(string)
		return Response{Status: StatusError,
			Error: fmt.Sprintf("daemon degraded (journal fail-stop): %s", cause)}
	}
	if !s.acquire(time.Duration(req.BudgetMS) * time.Millisecond) {
		s.sm.shedInflight.Inc()
		return s.overloaded(fmt.Sprintf("in-flight limit %d reached", s.MaxInFlight))
	}
	defer s.release()
	// Fleet routing: a mis-routed submit or report is executed on its
	// owning shard and the owner's response relayed verbatim.  Forwards
	// hold an in-flight slot (they are real work this shard performs)
	// but never touch the journal lock — nothing local is mutated.
	// A submit key already in the local idempotency table is replayed
	// here even if the ring says a peer owns it: the key was placed on
	// this shard (typically by failover while the owner was down), and
	// re-forwarding its retry would double-place it at the owner.
	if s.Router != nil && !req.Forwarded && (req.Op == OpSubmit || req.Op == OpReport) {
		if req.Op != OpSubmit || !s.idemKnown(req.IdemKey) {
			if resp, handled := s.Router.Route(req); handled {
				return resp
			}
		}
	}
	began := time.Now()
	s.jmu.RLock()
	var resp Response
	switch req.Op {
	case OpSubmit:
		resp = s.handleSubmit(req)
		s.sm.opSubmit.Observe(uint64(time.Since(began)))
	case OpReport:
		resp = s.handleReport(req)
		s.sm.opReport.Observe(uint64(time.Since(began)))
	case OpStats:
		resp = s.handleStats()
		s.sm.opStats.Observe(uint64(time.Since(began)))
	default:
		resp = Response{Status: StatusError, Error: fmt.Sprintf("unknown op %q", req.Op)}
	}
	s.jmu.RUnlock()
	s.maybeCompact()
	return resp
}

// handleFleet serves the shard's fleet view, admission-free like health
// so fleet tooling can observe gossip state on a loaded shard.
func (s *Server) handleFleet() Response {
	if s.FleetStatus == nil {
		return Response{Status: StatusError, Error: "daemon is not running in fleet mode"}
	}
	return Response{Status: StatusOK, Fleet: s.FleetStatus()}
}

// handleHealth reports readiness without touching admission: probes see a
// truthful view even while the daemon sheds or drains.
func (s *Server) handleHealth() Response {
	s.connMu.Lock()
	conns := len(s.conns)
	s.connMu.Unlock()
	s.mu.Lock()
	open := len(s.placements)
	idem := len(s.idem)
	s.mu.Unlock()
	topo := s.trms.Topology()
	h := &HealthInfo{
		Status:           "ok",
		Draining:         s.draining.Load(),
		Conns:            conns,
		MaxConns:         s.MaxConns,
		InFlight:         int(s.inflight.Load()),
		MaxInFlight:      s.MaxInFlight,
		OpenPlacements:   open,
		Placed:           s.trms.Placed(),
		IdemEntries:      idem,
		UptimeMS:         time.Since(s.start).Milliseconds(),
		StartUnixNanos:   s.startUnixNanos,
		MetricsSeq:       s.reg.Seq(),
		TopologyMachines: len(topo.Machines()),
		TopologyClients:  len(topo.Clients()),
	}
	if h.Draining {
		h.Status = "draining"
	}
	if deg, cause := s.Degraded(); deg {
		h.Status = "degraded"
		h.Degraded = true
		h.DegradedCause = cause
	}
	s.jmu.RLock()
	if s.journal != nil {
		h.Journal = true
		h.JournalNextSeq = s.journal.NextSeq()
		h.JournalSegments = s.journal.Stats().Segments
	}
	s.jmu.RUnlock()
	return Response{Status: StatusOK, Health: h}
}

// handleMetrics scrapes the registry.  Like health it bypasses admission
// — an overloaded daemon must still be observable.  Counters and
// histograms come from the registry; point-in-time gauges (connection
// and queue depths, durable placement/idempotency anchors, WAL totals)
// are read at scrape time and injected into the snapshot, keeping the
// request hot path free of gauge bookkeeping.
func (s *Server) handleMetrics() Response {
	snap := s.reg.Snapshot()
	if snap.Gauges == nil {
		snap.Gauges = make(map[string]int64)
	}
	if snap.Counters == nil {
		snap.Counters = make(map[string]uint64)
	}
	s.connMu.Lock()
	snap.Gauges[MetricConns] = int64(len(s.conns))
	s.connMu.Unlock()
	s.mu.Lock()
	snap.Gauges[MetricOpenPlacements] = int64(len(s.placements))
	snap.Gauges[MetricIdemEntries] = int64(len(s.idem))
	s.mu.Unlock()
	snap.Gauges[MetricInFlight] = s.inflight.Load()
	snap.Gauges[MetricPlaced] = int64(s.trms.Placed())
	if s.draining.Load() {
		snap.Gauges[MetricDraining] = 1
	} else {
		snap.Gauges[MetricDraining] = 0
	}
	if s.degraded.Load() {
		snap.Gauges[MetricDegraded] = 1
	} else {
		snap.Gauges[MetricDegraded] = 0
	}
	s.jmu.RLock()
	if s.journal != nil {
		js := s.journal.Stats()
		snap.Counters[MetricWALAppends] = js.Appends
		snap.Counters[MetricWALSyncs] = js.Syncs
		snap.Counters[MetricWALRotations] = js.Rotations
		snap.Gauges[MetricWALSegments] = int64(js.Segments)
		snap.Gauges[MetricJournalNextSeq] = int64(s.journal.NextSeq())
	}
	s.jmu.RUnlock()
	return Response{Status: StatusOK, Metrics: &MetricsInfo{
		Snapshot:       *snap,
		UptimeMS:       time.Since(s.start).Milliseconds(),
		StartUnixNanos: s.startUnixNanos,
	}}
}

// handleDrain acknowledges the request and signals the process owner; the
// actual drain (Shutdown + final checkpoint) is the owner's call, because
// only it knows whether to exit afterwards.
func (s *Server) handleDrain() Response {
	select {
	case s.drainReq <- struct{}{}:
	default:
	}
	return Response{Status: StatusOK}
}

func (s *Server) handleCheckpoint() Response {
	info, err := s.Checkpoint()
	if err != nil {
		return Response{Status: StatusError, Error: err.Error()}
	}
	return Response{Status: StatusOK, Checkpoint: info}
}

// idemKnown reports whether a submit key is already bound to this
// shard: acknowledged (idem) or mid-first-attempt (idemPending).  The
// routing hook consults it so fleet forwarding never re-forwards a key
// this shard has durably placed.
func (s *Server) idemKnown(key string) bool {
	if key == "" {
		return false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.idem[key]; ok {
		return true
	}
	_, ok := s.idemPending[key]
	return ok
}

func (s *Server) handleSubmit(req Request) Response {
	// Idempotency: a key already acknowledged replays the original
	// placement; a key whose first attempt is still executing is shed as
	// retryable rather than racing it into a double-place.
	if req.IdemKey != "" {
		s.mu.Lock()
		if rec, ok := s.idem[req.IdemKey]; ok {
			s.mu.Unlock()
			s.sm.idemHits.Inc()
			s.sm.submitOK.Inc()
			return Response{Status: StatusOK, Placement: rec.placementInfo()}
		}
		if _, busy := s.idemPending[req.IdemKey]; busy {
			s.mu.Unlock()
			s.sm.shedIdemPending.Inc()
			return s.overloaded(fmt.Sprintf("submit with idempotency key %q in flight", req.IdemKey))
		}
		s.idemPending[req.IdemKey] = struct{}{}
		s.mu.Unlock()
		defer func() {
			s.mu.Lock()
			delete(s.idemPending, req.IdemKey)
			s.mu.Unlock()
		}()
	}
	toa, err := activitiesToToA(req.Activities)
	if err != nil {
		s.sm.submitErr.Inc()
		return Response{Status: StatusError, Error: err.Error()}
	}
	rtl, err := grid.ParseLevel(req.RTL)
	if err != nil {
		s.sm.submitErr.Inc()
		return Response{Status: StatusError, Error: err.Error()}
	}
	p, err := s.trms.Submit(core.Task{
		Client: grid.ClientID(req.Client),
		ToA:    toa,
		RTL:    rtl,
		EEC:    req.EEC,
	}, req.Now)
	if err != nil {
		s.sm.submitErr.Inc()
		return Response{Status: StatusError, Error: err.Error()}
	}
	s.mu.Lock()
	s.nextID++
	id := s.nextID
	s.placements[id] = openPlacement{p: p, toa: toa}
	s.mu.Unlock()
	s.sm.placements.Inc()
	rec := placeRecord(id, p, toa, req.Now)
	rec.IdemKey = req.IdemKey
	if err := s.journalAppend(rec); err != nil {
		s.sm.submitErr.Inc()
		// The placement is applied but not durable: surface that instead
		// of pretending either way.  The key is deliberately not recorded
		// — the client saw an error, and a dedup hit must never vouch for
		// a placement the journal does not hold.
		return Response{Status: StatusError,
			Error: fmt.Sprintf("placement %d applied but not journalled: %v", id, err)}
	}
	if req.IdemKey != "" {
		s.mu.Lock()
		s.idem[req.IdemKey] = rec
		s.mu.Unlock()
	}
	s.sm.submitOK.Inc()
	return Response{Status: StatusOK, Placement: &PlacementInfo{
		ID:      id,
		Machine: int(p.Machine.ID),
		RD:      int(p.RD),
		CD:      int(p.CD),
		OTL:     p.OTL.String(),
		TC:      p.TC,
		EEC:     p.EEC,
		ESC:     p.ESC,
		ECC:     p.ECC,
		Start:   p.Start,
		Finish:  p.Finish,
	}}
}

func (s *Server) handleReport(req Request) Response {
	s.mu.Lock()
	op, ok := s.placements[req.PlacementID]
	if ok {
		delete(s.placements, req.PlacementID)
	}
	s.mu.Unlock()
	if !ok {
		s.sm.reportErr.Inc()
		return Response{Status: StatusError,
			Error: fmt.Sprintf("unknown or already-reported placement %d", req.PlacementID)}
	}
	if err := s.trms.ReportOutcome(op.p, op.toa, req.Outcome, req.Now); err != nil {
		// Reporting failed (e.g. off-scale outcome): restore the
		// placement so the client can retry with a valid outcome.
		s.mu.Lock()
		s.placements[req.PlacementID] = op
		s.mu.Unlock()
		s.sm.reportErr.Inc()
		return Response{Status: StatusError, Error: err.Error()}
	}
	if err := s.journalAppend(journalRecord{
		Kind: recReport, ID: req.PlacementID, Outcome: req.Outcome, Now: req.Now,
	}); err != nil {
		s.sm.reportErr.Inc()
		return Response{Status: StatusError,
			Error: fmt.Sprintf("report for %d applied but not journalled: %v", req.PlacementID, err)}
	}
	s.sm.reportOK.Inc()
	return Response{Status: StatusOK}
}

func (s *Server) handleStats() Response {
	processed, committed, rejected := s.trms.AgentStats()
	s.mu.Lock()
	open := len(s.placements)
	s.mu.Unlock()
	return Response{Status: StatusOK, Stats: &StatsInfo{
		Placed:          s.trms.Placed(),
		AgentsProcessed: processed,
		AgentsCommitted: committed,
		AgentsRejected:  rejected,
		TableVersion:    s.trms.Table().Version(),
		TableEntries:    s.trms.Table().Len(),
		OpenPlacements:  open,
	}}
}
