package rmswire

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"gridtrust/internal/core"
	"gridtrust/internal/grid"
	"gridtrust/internal/wal"
)

// DefaultIdleTimeout is the per-connection read/write deadline applied
// when Server.IdleTimeout is zero: a client that neither sends a frame
// nor drains a response for this long is reaped instead of pinning a
// handler goroutine forever.
const DefaultIdleTimeout = 2 * time.Minute

// Server exposes one TRMS over the wire.  It owns a placement registry so
// outcome reports can reference placements by id across connections.
type Server struct {
	trms *core.TRMS

	// IdleTimeout is the per-connection read/write deadline; 0 selects
	// DefaultIdleTimeout, negative disables deadlines.  Set before
	// ListenAndServe.
	IdleTimeout time.Duration

	ln     net.Listener
	wg     sync.WaitGroup
	closed atomic.Bool

	connMu sync.Mutex
	conns  map[net.Conn]struct{}

	mu         sync.Mutex
	nextID     uint64
	placements map[uint64]openPlacement

	// jmu serialises operations against checkpoints: handlers that
	// mutate the TRMS and append to the journal hold it for reading,
	// Checkpoint holds it for writing so the captured state matches the
	// journal position exactly.  See journal.go.
	jmu          sync.RWMutex
	journal      *wal.Log
	compactEvery int
	lastBoundary uint64
}

// openPlacement pairs a placement with the ToA it was submitted under so
// ReportOutcome can attribute per-activity transactions.
type openPlacement struct {
	p   *core.Placement
	toa grid.ToA
}

// NewServer wraps a TRMS.  The server does not own the TRMS: callers
// close both, server first.
func NewServer(trms *core.TRMS) (*Server, error) {
	if trms == nil {
		return nil, fmt.Errorf("rmswire: nil TRMS")
	}
	return &Server{
		trms:       trms,
		placements: make(map[uint64]openPlacement),
		conns:      make(map[net.Conn]struct{}),
	}, nil
}

// ListenAndServe binds addr and serves in the background, returning the
// bound address.
func (s *Server) ListenAndServe(addr string) (net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s.ln = ln
	go s.acceptLoop()
	return ln.Addr(), nil
}

func (s *Server) acceptLoop() {
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return
		}
		s.connMu.Lock()
		if s.closed.Load() {
			s.connMu.Unlock()
			_ = conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.connMu.Unlock()
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			defer func() {
				s.connMu.Lock()
				delete(s.conns, conn)
				s.connMu.Unlock()
				_ = conn.Close()
			}()
			s.handle(conn)
		}()
	}
}

// Close stops accepting, force-closes connections and waits for handlers.
func (s *Server) Close() {
	if s.closed.Swap(true) {
		return
	}
	if s.ln != nil {
		_ = s.ln.Close()
	}
	s.connMu.Lock()
	for c := range s.conns {
		_ = c.Close()
	}
	s.connMu.Unlock()
	s.wg.Wait()
}

// idleTimeout resolves the effective per-connection deadline.
func (s *Server) idleTimeout() time.Duration {
	if s.IdleTimeout == 0 {
		return DefaultIdleTimeout
	}
	if s.IdleTimeout < 0 {
		return 0
	}
	return s.IdleTimeout
}

// handle serves one connection's request stream.  Each frame read and
// each response write runs under the idle deadline; an oversized frame is
// answered with a typed error before the connection closes (the rest of
// the line is unread, so the stream cannot be resynchronised).
func (s *Server) handle(conn net.Conn) {
	r := bufio.NewReaderSize(conn, 64<<10)
	timeout := s.idleTimeout()
	deadline := func(set func(time.Time) error) {
		if timeout > 0 {
			_ = set(time.Now().Add(timeout))
		}
	}
	for {
		var req Request
		deadline(conn.SetReadDeadline)
		if err := readFrame(r, &req); err != nil {
			if !errors.Is(err, io.EOF) && !s.closed.Load() {
				deadline(conn.SetWriteDeadline)
				_ = writeFrame(conn, Response{Status: StatusError, Error: err.Error()})
			}
			return
		}
		resp := s.respond(req)
		deadline(conn.SetWriteDeadline)
		if err := writeFrame(conn, resp); err != nil {
			return
		}
	}
}

// respond executes one request against the TRMS.  Mutating ops run under
// the journal read-lock so checkpoints observe a quiescent daemon.
func (s *Server) respond(req Request) Response {
	if req.Op == OpCheckpoint {
		return s.handleCheckpoint()
	}
	s.jmu.RLock()
	var resp Response
	switch req.Op {
	case OpSubmit:
		resp = s.handleSubmit(req)
	case OpReport:
		resp = s.handleReport(req)
	case OpStats:
		resp = s.handleStats()
	default:
		resp = Response{Status: StatusError, Error: fmt.Sprintf("unknown op %q", req.Op)}
	}
	s.jmu.RUnlock()
	s.maybeCompact()
	return resp
}

func (s *Server) handleCheckpoint() Response {
	info, err := s.Checkpoint()
	if err != nil {
		return Response{Status: StatusError, Error: err.Error()}
	}
	return Response{Status: StatusOK, Checkpoint: info}
}

func (s *Server) handleSubmit(req Request) Response {
	toa, err := activitiesToToA(req.Activities)
	if err != nil {
		return Response{Status: StatusError, Error: err.Error()}
	}
	rtl, err := grid.ParseLevel(req.RTL)
	if err != nil {
		return Response{Status: StatusError, Error: err.Error()}
	}
	p, err := s.trms.Submit(core.Task{
		Client: grid.ClientID(req.Client),
		ToA:    toa,
		RTL:    rtl,
		EEC:    req.EEC,
	}, req.Now)
	if err != nil {
		return Response{Status: StatusError, Error: err.Error()}
	}
	s.mu.Lock()
	s.nextID++
	id := s.nextID
	s.placements[id] = openPlacement{p: p, toa: toa}
	s.mu.Unlock()
	if err := s.journalAppend(placeRecord(id, p, toa, req.Now)); err != nil {
		// The placement is applied but not durable: surface that instead
		// of pretending either way.
		return Response{Status: StatusError,
			Error: fmt.Sprintf("placement %d applied but not journalled: %v", id, err)}
	}
	return Response{Status: StatusOK, Placement: &PlacementInfo{
		ID:      id,
		Machine: int(p.Machine.ID),
		RD:      int(p.RD),
		CD:      int(p.CD),
		OTL:     p.OTL.String(),
		TC:      p.TC,
		EEC:     p.EEC,
		ESC:     p.ESC,
		ECC:     p.ECC,
		Start:   p.Start,
		Finish:  p.Finish,
	}}
}

func (s *Server) handleReport(req Request) Response {
	s.mu.Lock()
	op, ok := s.placements[req.PlacementID]
	if ok {
		delete(s.placements, req.PlacementID)
	}
	s.mu.Unlock()
	if !ok {
		return Response{Status: StatusError,
			Error: fmt.Sprintf("unknown or already-reported placement %d", req.PlacementID)}
	}
	if err := s.trms.ReportOutcome(op.p, op.toa, req.Outcome, req.Now); err != nil {
		// Reporting failed (e.g. off-scale outcome): restore the
		// placement so the client can retry with a valid outcome.
		s.mu.Lock()
		s.placements[req.PlacementID] = op
		s.mu.Unlock()
		return Response{Status: StatusError, Error: err.Error()}
	}
	if err := s.journalAppend(journalRecord{
		Kind: recReport, ID: req.PlacementID, Outcome: req.Outcome, Now: req.Now,
	}); err != nil {
		return Response{Status: StatusError,
			Error: fmt.Sprintf("report for %d applied but not journalled: %v", req.PlacementID, err)}
	}
	return Response{Status: StatusOK}
}

func (s *Server) handleStats() Response {
	processed, committed, rejected := s.trms.AgentStats()
	s.mu.Lock()
	open := len(s.placements)
	s.mu.Unlock()
	return Response{Status: StatusOK, Stats: &StatsInfo{
		Placed:          s.trms.Placed(),
		AgentsProcessed: processed,
		AgentsCommitted: committed,
		AgentsRejected:  rejected,
		TableVersion:    s.trms.Table().Version(),
		TableEntries:    s.trms.Table().Len(),
		OpenPlacements:  open,
	}}
}
