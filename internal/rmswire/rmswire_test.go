package rmswire

import (
	"bufio"
	"bytes"
	"errors"
	"io"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"gridtrust/internal/core"
	"gridtrust/internal/grid"
	"gridtrust/internal/trust"
)

// newDaemon builds a two-domain TRMS, wraps it in a server on an ephemeral
// port and returns a connected client.
func newDaemon(t *testing.T) (*core.TRMS, *Server, *Client) {
	t.Helper()
	mkRD := func(id grid.DomainID) *grid.ResourceDomain {
		return &grid.ResourceDomain{
			ID: id, Owner: "org",
			Supported: map[grid.Activity]grid.TrustLevel{
				grid.ActCompute: grid.LevelC,
				grid.ActStorage: grid.LevelC,
			},
			RTL:      grid.LevelA,
			Machines: []*grid.Machine{{ID: grid.MachineID(id), RD: id}},
		}
	}
	top, err := grid.NewTopology(
		&grid.GridDomain{
			ID: 0, RD: mkRD(0),
			CD: &grid.ClientDomain{
				ID:      0,
				Sought:  map[grid.Activity]grid.TrustLevel{grid.ActCompute: grid.LevelC},
				RTL:     grid.LevelA,
				Clients: []*grid.Client{{ID: 0, CD: 0}},
			},
		},
		&grid.GridDomain{ID: 1, RD: mkRD(1)},
	)
	if err != nil {
		t.Fatal(err)
	}
	trms, err := core.New(core.Config{
		Topology: top,
		Trust:    trust.Config{Alpha: 1, Beta: 0, Smoothing: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewServer(trms)
	if err != nil {
		t.Fatal(err)
	}
	addr, err := srv.ListenAndServe("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	client, err := Dial(addr.String())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		client.Close()
		srv.Close()
		trms.Close()
	})
	return trms, srv, client
}

func TestNewServerValidation(t *testing.T) {
	if _, err := NewServer(nil); err == nil {
		t.Fatal("accepted nil TRMS")
	}
}

func TestSubmitReportStats(t *testing.T) {
	trms, _, client := newDaemon(t)
	p, err := client.Submit(0, []grid.Activity{grid.ActCompute}, grid.LevelE, []float64{100, 110}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if p.ID == 0 || p.Machine != 0 || p.TC != 2 /* ETS(E,C) */ {
		t.Fatalf("placement %+v", p)
	}
	if p.ECC != p.EEC+p.ESC {
		t.Fatalf("ECC arithmetic wrong: %+v", p)
	}
	if err := client.Report(p.ID, 6, 1); err != nil {
		t.Fatal(err)
	}
	trms.Drain()
	st, err := client.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Placed != 1 || st.AgentsProcessed != 1 || st.OpenPlacements != 0 {
		t.Fatalf("stats %+v", st)
	}
	if st.TableEntries == 0 || st.TableVersion == 0 {
		t.Fatalf("table stats empty: %+v", st)
	}
}

func TestTrustFeedbackAcrossWire(t *testing.T) {
	trms, _, client := newDaemon(t)
	acts := []grid.Activity{grid.ActCompute}
	eec := []float64{100, 100}
	p, err := client.Submit(0, acts, grid.LevelE, eec, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := client.Report(p.ID, 6, 1); err != nil {
		t.Fatal(err)
	}
	trms.Drain()
	// The served RD's trust rose to E; a later submit must prefer it
	// with TC 0.
	p2, err := client.Submit(0, acts, grid.LevelE, eec, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if p2.RD != p.RD || p2.TC != 0 {
		t.Fatalf("trust feedback not visible over the wire: %+v", p2)
	}
}

func TestReportUnknownAndDoubleReport(t *testing.T) {
	_, _, client := newDaemon(t)
	if err := client.Report(999, 5, 0); err == nil {
		t.Fatal("unknown placement accepted")
	}
	p, err := client.Submit(0, []grid.Activity{grid.ActCompute}, grid.LevelA, []float64{1, 2}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := client.Report(p.ID, 5, 1); err != nil {
		t.Fatal(err)
	}
	if err := client.Report(p.ID, 5, 2); err == nil {
		t.Fatal("double report accepted")
	}
}

func TestReportBadOutcomeIsRetriable(t *testing.T) {
	_, _, client := newDaemon(t)
	p, err := client.Submit(0, []grid.Activity{grid.ActCompute}, grid.LevelA, []float64{1, 2}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := client.Report(p.ID, 99, 1); err == nil {
		t.Fatal("off-scale outcome accepted")
	}
	// The placement must still be reportable after the failed attempt.
	if err := client.Report(p.ID, 4, 2); err != nil {
		t.Fatalf("retry after bad outcome failed: %v", err)
	}
}

func TestSubmitValidationOverWire(t *testing.T) {
	_, _, client := newDaemon(t)
	if _, err := client.Submit(0, nil, grid.LevelA, []float64{1, 2}, 0); err == nil {
		t.Error("empty activities accepted")
	}
	if _, err := client.Submit(0, []grid.Activity{grid.ActCompute}, grid.LevelNone, []float64{1, 2}, 0); err == nil {
		t.Error("invalid RTL accepted")
	}
	if _, err := client.Submit(0, []grid.Activity{grid.ActCompute}, grid.LevelA, []float64{1}, 0); err == nil {
		t.Error("short EEC accepted")
	}
	if _, err := client.Submit(99, []grid.Activity{grid.ActCompute}, grid.LevelA, []float64{1, 2}, 0); err == nil {
		t.Error("unknown client accepted")
	}
	// The connection must survive all those errors.
	if _, err := client.Submit(0, []grid.Activity{grid.ActCompute}, grid.LevelA, []float64{1, 2}, 0); err != nil {
		t.Fatalf("connection broken after errors: %v", err)
	}
}

func TestUnknownOp(t *testing.T) {
	_, srv, _ := newDaemon(t)
	_ = srv
	resp := srv.respond(Request{Op: "detonate"})
	if resp.Status != StatusError || !strings.Contains(resp.Error, "detonate") {
		t.Fatalf("response %+v", resp)
	}
}

func TestConcurrentClientsSharedServer(t *testing.T) {
	_, srv, first := newDaemon(t)
	addr := srv.ln.Addr().String()
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			client, err := Dial(addr)
			if err != nil {
				t.Error(err)
				return
			}
			defer client.Close()
			for i := 0; i < 25; i++ {
				p, err := client.Submit(0, []grid.Activity{grid.ActCompute},
					grid.LevelC, []float64{5, 7}, float64(i))
				if err != nil {
					t.Error(err)
					return
				}
				if err := client.Report(p.ID, 4, float64(i)); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	st, err := first.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Placed != 100 || st.OpenPlacements != 0 {
		t.Fatalf("stats after concurrent load: %+v", st)
	}
}

func TestMalformedFrame(t *testing.T) {
	_, srv, _ := newDaemon(t)
	conn, err := net.Dial("tcp", srv.ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write([]byte("gibberish\n")); err != nil {
		t.Fatal(err)
	}
	var resp Response
	if err := readFrame(bufio.NewReader(conn), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Status != StatusError {
		t.Fatalf("response %+v", resp)
	}
}

func TestReadLineBoundedLimits(t *testing.T) {
	read := func(payload []byte, terminated bool) ([]byte, error) {
		buf := payload
		if terminated {
			buf = append(append([]byte(nil), payload...), '\n')
		}
		return readLineBounded(bufio.NewReaderSize(bytes.NewReader(buf), 64))
	}

	// A maximal legal frame (exactly MaxFrameBytes of payload) must pass:
	// writeFrame emits payloads up to that size.
	line, err := read(bytes.Repeat([]byte{'x'}, MaxFrameBytes), true)
	if err != nil {
		t.Fatalf("maximal frame rejected: %v", err)
	}
	if len(line) != MaxFrameBytes+1 {
		t.Fatalf("maximal frame truncated to %d bytes", len(line))
	}

	// One byte over the limit fails with the typed error.
	if _, err := read(bytes.Repeat([]byte{'x'}, MaxFrameBytes+1), true); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("oversized frame: got %v, want ErrFrameTooLarge", err)
	}

	// An unterminated flood fails as soon as the limit is crossed — the
	// reader must not wait for a newline that never comes.
	if _, err := read(bytes.Repeat([]byte{'x'}, MaxFrameBytes+100), false); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("unterminated flood: got %v, want ErrFrameTooLarge", err)
	}

	// A short unterminated line is a plain EOF, not a framing error.
	if _, err := read([]byte("short"), false); !errors.Is(err, io.EOF) {
		t.Fatalf("short unterminated line: got %v, want EOF", err)
	}
}

func TestOversizeFrameAnsweredWithError(t *testing.T) {
	_, srv, _ := newDaemon(t)
	conn, err := net.Dial("tcp", srv.ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// Concurrently: the server starts reading while we are still
	// flooding, so neither side blocks on a full socket buffer.
	go func() {
		_, _ = conn.Write(bytes.Repeat([]byte{'z'}, MaxFrameBytes+2))
		_, _ = conn.Write([]byte{'\n'})
	}()
	var resp Response
	if err := readFrame(bufio.NewReader(conn), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Status != StatusError || !strings.Contains(resp.Error, "MaxFrameBytes") {
		t.Fatalf("response %+v", resp)
	}
}

func TestIdleConnectionIsReaped(t *testing.T) {
	trms, _, _ := newDaemon(t)
	srv, err := NewServer(trms)
	if err != nil {
		t.Fatal(err)
	}
	srv.IdleTimeout = 250 * time.Millisecond
	addr, err := srv.ListenAndServe("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	client, err := Dial(addr.String())
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	// Activity within the timeout refreshes the deadline.
	for i := 0; i < 3; i++ {
		time.Sleep(100 * time.Millisecond)
		if _, err := client.Stats(); err != nil {
			t.Fatalf("live connection reaped after %d requests: %v", i, err)
		}
	}
	// Going idle past the timeout gets the connection closed: the next
	// request fails instead of hanging.
	time.Sleep(time.Second)
	if _, err := client.Stats(); err == nil {
		t.Fatal("idle connection survived past the timeout")
	}
}

func TestIdleTimeoutResolution(t *testing.T) {
	s := &Server{}
	if got := s.idleTimeout(); got != DefaultIdleTimeout {
		t.Fatalf("zero value resolved to %v", got)
	}
	s.IdleTimeout = -1
	if got := s.idleTimeout(); got != 0 {
		t.Fatalf("negative (disabled) resolved to %v", got)
	}
	s.IdleTimeout = time.Second
	if got := s.idleTimeout(); got != time.Second {
		t.Fatalf("explicit value resolved to %v", got)
	}
}

func TestPipeTransport(t *testing.T) {
	trms, srv, _ := newDaemon(t)
	_ = trms
	client, server := net.Pipe()
	go srv.handle(server)
	c := NewClient(client)
	defer c.Close()
	p, err := c.Submit(0, []grid.Activity{grid.ActStorage}, grid.LevelB, []float64{3, 4}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if p.Machine != 0 {
		t.Fatalf("pipe placement %+v", p)
	}
}
