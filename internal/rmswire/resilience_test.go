package rmswire

// resilience_test.go covers the overload-resilience layer: bounded
// admission with typed retryable sheds, budget-bounded waits, the health
// op, graceful drain semantics, and idempotent submits surviving both
// server restart and log compaction.

import (
	"errors"
	"io"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"gridtrust/internal/grid"
)

func TestMaxInFlightSheds(t *testing.T) {
	trms, _, _ := newDaemon(t)
	srv, err := NewServer(trms)
	if err != nil {
		t.Fatal(err)
	}
	srv.MaxInFlight = 1
	addr, err := srv.ListenAndServe("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	client, err := Dial(addr.String())
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	// Occupy the only in-flight slot; the next request must be shed with
	// a typed retryable response, not queued and not executed.
	if !srv.acquire(0) {
		t.Fatal("could not occupy the free slot")
	}
	_, err = client.Stats()
	var oe *OverloadedError
	if !errors.As(err, &oe) || !errors.Is(err, ErrOverloaded) {
		t.Fatalf("saturated server returned %v, want OverloadedError", err)
	}
	if oe.RetryAfter <= 0 {
		t.Fatalf("overloaded response carried no retry-after hint: %+v", oe)
	}
	// Shedding must not poison the connection: the same client succeeds
	// once capacity frees up.
	srv.release()
	if _, err := client.Stats(); err != nil {
		t.Fatalf("after release: %v", err)
	}
}

func TestBudgetBoundedAdmission(t *testing.T) {
	trms, _, _ := newDaemon(t)
	srv, err := NewServer(trms)
	if err != nil {
		t.Fatal(err)
	}
	srv.MaxInFlight = 1
	addr, err := srv.ListenAndServe("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	client, err := Dial(addr.String())
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	// A request with budget waits for a slot that frees inside it.
	if !srv.acquire(0) {
		t.Fatal("could not occupy the free slot")
	}
	go func() {
		time.Sleep(50 * time.Millisecond)
		srv.release()
	}()
	client.Budget = 2 * time.Second
	if _, err := client.Stats(); err != nil {
		t.Fatalf("budgeted request shed although a slot freed in time: %v", err)
	}

	// A budget too small to see the slot free is shed at its deadline.
	if !srv.acquire(0) {
		t.Fatal("could not re-occupy the slot")
	}
	defer srv.release()
	client.Budget = 30 * time.Millisecond
	start := time.Now()
	_, err = client.Stats()
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("expired budget returned %v, want overloaded", err)
	}
	if waited := time.Since(start); waited < 25*time.Millisecond || waited > time.Second {
		t.Fatalf("budget wait lasted %v, want ≈30ms", waited)
	}
}

func TestMaxConnsSheds(t *testing.T) {
	trms, _, _ := newDaemon(t)
	srv, err := NewServer(trms)
	if err != nil {
		t.Fatal(err)
	}
	srv.MaxConns = 1
	addr, err := srv.ListenAndServe("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	first, err := Dial(addr.String())
	if err != nil {
		t.Fatal(err)
	}
	defer first.Close()
	if _, err := first.Stats(); err != nil {
		t.Fatal(err)
	}
	// The connection over the limit is told "overloaded" (or dropped,
	// depending on write/close interleaving) — never served.
	second, err := Dial(addr.String())
	if err != nil {
		t.Fatal(err)
	}
	defer second.Close()
	second.Timeout = 2 * time.Second
	if _, err := second.Stats(); err == nil {
		t.Fatal("connection over MaxConns was served")
	} else if !errors.Is(err, ErrOverloaded) && !isTransportErr(err) {
		t.Fatalf("unexpected rejection error: %v", err)
	}
	// The admitted connection keeps working.
	if _, err := first.Stats(); err != nil {
		t.Fatalf("admitted connection broken by shed: %v", err)
	}
}

// isTransportErr reports whether err looks like a connection-level
// failure rather than an application response.
func isTransportErr(err error) bool {
	var ne net.Error
	return errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) ||
		errors.As(err, &ne) || strings.Contains(err.Error(), "reset") ||
		strings.Contains(err.Error(), "broken pipe")
}

func TestHealthOp(t *testing.T) {
	trms, _, plain := newDaemon(t)
	h, err := plain.Health()
	if err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" || h.Draining || h.Journal {
		t.Fatalf("health %+v", h)
	}
	if h.Conns < 1 {
		t.Fatalf("health sees %d conns, want ≥1", h.Conns)
	}

	// Health answers even when admission is saturated: it bypasses the
	// in-flight semaphore entirely.
	srv, err := NewServer(trms)
	if err != nil {
		t.Fatal(err)
	}
	srv.MaxInFlight = 1
	addr, err := srv.ListenAndServe("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	client, err := Dial(addr.String())
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	if !srv.acquire(0) {
		t.Fatal("could not occupy the slot")
	}
	defer srv.release()
	if _, err := client.Stats(); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("stats under saturation returned %v, want overloaded", err)
	}
	h, err = client.Health()
	if err != nil {
		t.Fatalf("health shed under load: %v", err)
	}
	if h.InFlight != 1 || h.MaxInFlight != 1 {
		t.Fatalf("health in-flight view %+v", h)
	}
}

func TestHealthReportsJournal(t *testing.T) {
	dir := t.TempDir()
	_, client, stop := startJournaled(t, dir, 0)
	defer stop()
	if _, err := client.Submit(0, []grid.Activity{grid.ActCompute}, grid.LevelD, []float64{10, 12}, 0); err != nil {
		t.Fatal(err)
	}
	h, err := client.Health()
	if err != nil {
		t.Fatal(err)
	}
	if !h.Journal || h.JournalNextSeq < 2 || h.JournalSegments < 1 {
		t.Fatalf("journal health %+v", h)
	}
}

func TestDrainRejectsAndReportsDraining(t *testing.T) {
	_, srv, client := newDaemon(t)
	srv.draining.Store(true)
	resp := srv.respond(Request{Op: OpStats})
	if resp.Status != StatusOverloaded || !strings.Contains(resp.Error, "draining") {
		t.Fatalf("draining server answered %+v", resp)
	}
	if resp.RetryAfterMS <= 0 {
		t.Fatalf("draining shed carried no retry hint: %+v", resp)
	}
	h, err := client.Health()
	if err != nil {
		t.Fatalf("health during drain: %v", err)
	}
	if h.Status != "draining" || !h.Draining {
		t.Fatalf("health during drain %+v", h)
	}
}

func TestShutdownWaitsForInFlight(t *testing.T) {
	trms, _, _ := newDaemon(t)
	srv, err := NewServer(trms)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := srv.ListenAndServe("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}

	// An in-flight request that finishes inside the deadline drains clean.
	if !srv.acquire(0) {
		t.Fatal("acquire")
	}
	done := make(chan bool, 1)
	go func() { done <- srv.Shutdown(2 * time.Second) }()
	time.Sleep(30 * time.Millisecond)
	srv.release()
	if clean := <-done; !clean {
		t.Fatal("drain reported dirty although in-flight work finished in time")
	}
}

func TestShutdownDeadlineExceeded(t *testing.T) {
	trms, _, _ := newDaemon(t)
	srv, err := NewServer(trms)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := srv.ListenAndServe("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	srv.inflight.Add(1) // a request that never finishes
	if clean := srv.Shutdown(50 * time.Millisecond); clean {
		t.Fatal("drain reported clean although a request never finished")
	}
	srv.inflight.Add(-1)
}

func TestDrainOpSignalsOwner(t *testing.T) {
	_, srv, client := newDaemon(t)
	if err := client.Drain(); err != nil {
		t.Fatal(err)
	}
	select {
	case <-srv.DrainRequested():
	case <-time.After(2 * time.Second):
		t.Fatal("drain op did not signal the owner")
	}
}

func TestIdempotentSubmitDedup(t *testing.T) {
	trms, _, client := newDaemon(t)
	acts := []grid.Activity{grid.ActCompute}
	eec := []float64{100, 110}
	p1, err := client.SubmitKeyed("key-1", 0, acts, grid.LevelE, eec, 0)
	if err != nil {
		t.Fatal(err)
	}
	// The retry returns the original placement, field for field, and the
	// scheduler places nothing new.
	p2, err := client.SubmitKeyed("key-1", 0, acts, grid.LevelE, eec, 5)
	if err != nil {
		t.Fatal(err)
	}
	if *p2 != *p1 {
		t.Fatalf("dedup hit diverged:\n first %+v\n retry %+v", p1, p2)
	}
	if trms.Placed() != 1 {
		t.Fatalf("placed %d tasks for one key", trms.Placed())
	}
	// A different key is a different task.
	p3, err := client.SubmitKeyed("key-2", 0, acts, grid.LevelE, eec, 10)
	if err != nil {
		t.Fatal(err)
	}
	if p3.ID == p1.ID {
		t.Fatalf("distinct keys shared placement id %d", p3.ID)
	}
	if trms.Placed() != 2 {
		t.Fatalf("placed %d, want 2", trms.Placed())
	}
}

func TestIdempotentSubmitPendingKeySheds(t *testing.T) {
	_, srv, client := newDaemon(t)
	srv.mu.Lock()
	srv.idemPending["busy"] = struct{}{}
	srv.mu.Unlock()
	_, err := client.SubmitKeyed("busy", 0, []grid.Activity{grid.ActCompute}, grid.LevelE, []float64{1, 2}, 0)
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("concurrent same-key submit returned %v, want overloaded", err)
	}
	srv.mu.Lock()
	delete(srv.idemPending, "busy")
	srv.mu.Unlock()
	if _, err := client.SubmitKeyed("busy", 0, []grid.Activity{grid.ActCompute}, grid.LevelE, []float64{1, 2}, 1); err != nil {
		t.Fatalf("key unusable after pending cleared: %v", err)
	}
}

func TestIdempotencySurvivesRestartAndCompaction(t *testing.T) {
	dir := t.TempDir()
	_, client, stop := startJournaled(t, dir, 0)
	acts := []grid.Activity{grid.ActCompute}
	eec := []float64{10, 12}
	p1, err := client.SubmitKeyed("tail-key", 0, acts, grid.LevelD, eec, 0)
	if err != nil {
		t.Fatal(err)
	}
	stop()

	// Restart #1 replays the key from the record tail.
	_, client2, stop2 := startJournaled(t, dir, 0)
	r1, err := client2.SubmitKeyed("tail-key", 0, acts, grid.LevelD, eec, 1)
	if err != nil {
		t.Fatal(err)
	}
	if *r1 != *p1 {
		t.Fatalf("replayed dedup diverged:\n orig  %+v\n retry %+v", p1, r1)
	}
	st, err := client2.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Placed != 1 {
		t.Fatalf("restart + retry double-placed: %+v", st)
	}
	// Report the placement and checkpoint: the key must survive
	// compaction via the snapshot's idem table even though its placement
	// is closed and its journal record folded away.
	if err := client2.Report(p1.ID, 6, 2); err != nil {
		t.Fatal(err)
	}
	settle(t, client2, 1)
	if _, err := client2.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	stop2()

	// Restart #2 recovers the key from the snapshot alone.
	_, client3, stop3 := startJournaled(t, dir, 0)
	defer stop3()
	r2, err := client3.SubmitKeyed("tail-key", 0, acts, grid.LevelD, eec, 3)
	if err != nil {
		t.Fatal(err)
	}
	if *r2 != *p1 {
		t.Fatalf("post-compaction dedup diverged:\n orig  %+v\n retry %+v", p1, r2)
	}
	st3, err := client3.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st3.Placed != 1 {
		t.Fatalf("compaction forgot the key, double-placed: %+v", st3)
	}
}

func TestIdleReaperManyConcurrentClients(t *testing.T) {
	trms, _, _ := newDaemon(t)
	srv, err := NewServer(trms)
	if err != nil {
		t.Fatal(err)
	}
	srv.IdleTimeout = 100 * time.Millisecond
	addr, err := srv.ListenAndServe("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	// Many clients churn, then all go idle past the timeout: every
	// handler must be reaped without racing the accept loop, the conn
	// registry or the admission counters (run under -race in CI).
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			client, err := Dial(addr.String())
			if err != nil {
				t.Error(err)
				return
			}
			defer client.Close()
			for i := 0; i < 5; i++ {
				if _, err := client.Stats(); err != nil {
					t.Errorf("live client reaped: %v", err)
					return
				}
				time.Sleep(20 * time.Millisecond)
			}
			time.Sleep(400 * time.Millisecond)
			if _, err := client.Stats(); err == nil {
				t.Error("idle connection survived past the timeout")
			}
		}()
	}
	wg.Wait()
}

func TestClientFrameTooLargeOnReadPath(t *testing.T) {
	// A rogue server floods an over-limit response line: the client must
	// fail with the typed framing error, not buffer unboundedly, and mark
	// itself broken.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		buf := make([]byte, 4096)
		_, _ = conn.Read(buf) // swallow the request frame
		junk := make([]byte, MaxFrameBytes+2)
		for i := range junk {
			junk[i] = 'z'
		}
		junk = append(junk, '\n')
		_, _ = conn.Write(junk)
	}()

	client, err := Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	_, err = client.Stats()
	if !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("oversized response returned %v, want ErrFrameTooLarge", err)
	}
	if !client.Broken() {
		t.Fatal("client not marked broken after a desynchronizing read")
	}
	if _, err := client.Stats(); !errors.Is(err, ErrClientBroken) {
		t.Fatalf("broken client returned %v, want ErrClientBroken", err)
	}
}

func TestClientBrokenFailsFast(t *testing.T) {
	_, _, client := newDaemon(t)
	if _, err := client.Stats(); err != nil {
		t.Fatal(err)
	}
	// Kill the transport under the client: the in-flight op fails and
	// every later op short-circuits with the typed error.
	client.conn.Close()
	if _, err := client.Stats(); err == nil {
		t.Fatal("op succeeded over a closed connection")
	}
	start := time.Now()
	if _, err := client.Stats(); !errors.Is(err, ErrClientBroken) {
		t.Fatalf("got %v, want ErrClientBroken", err)
	}
	if time.Since(start) > 100*time.Millisecond {
		t.Fatal("broken client did not fail fast")
	}
}

func TestDialTimeoutBounded(t *testing.T) {
	// The address is a blackhole or unreachable either way; Dial must
	// come back quickly instead of hanging (the pre-resilience client
	// hung indefinitely on a dead address).
	start := time.Now()
	_, err := DialTimeout("10.255.255.1:9", 150*time.Millisecond)
	if err == nil {
		t.Skip("blackhole address unexpectedly connected")
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("dial took %v, want bounded by the timeout", elapsed)
	}
}

func TestClientOpTimeout(t *testing.T) {
	// A server that accepts but never answers: the per-op timeout must
	// bound the round trip.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		io.Copy(io.Discard, conn) // read forever, answer never
	}()
	client, err := Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	client.Timeout = 100 * time.Millisecond
	start := time.Now()
	if _, err := client.Stats(); err == nil {
		t.Fatal("op against a mute server succeeded")
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("op took %v despite 100ms timeout", elapsed)
	}
	if !client.Broken() {
		t.Fatal("timed-out client not marked broken")
	}
}
