package rmswire

// journal.go makes the daemon crash-safe: every accepted placement and
// outcome report is appended to a write-ahead log before the response
// frame leaves the server, and checkpoints fold the log into one snapshot
// so restart cost stays bounded.
//
// Records journal *results*, not requests.  A placement record carries the
// machine, timing and trust figures the heuristic chose, and replay applies
// them directly with TRMS.RecoverPlacement — re-running the heuristic
// against a replayed table could diverge, because the live table evolves
// asynchronously under the monitoring agents.  Replay of placements is
// therefore order-insensitive; reports replay through ReportOutcome so the
// trust engine sees the same transaction stream it saw live.
//
// Concurrency: request handlers hold jmu for reading while they mutate the
// TRMS and append to the journal; Checkpoint takes jmu for writing, so it
// observes a quiescent daemon whose journal position exactly matches the
// captured state.

import (
	"encoding/json"
	"errors"
	"fmt"
	"sort"

	"gridtrust/internal/core"
	"gridtrust/internal/grid"
	"gridtrust/internal/trust"
	"gridtrust/internal/wal"
)

// journal record kinds.
const (
	recPlace  = "place"
	recReport = "report"
)

// journalRecord is one WAL entry, JSON-encoded.  Place records hold the
// complete placement so recovery needs no rescheduling; report records
// reference the placement id.
type journalRecord struct {
	Kind string `json:"kind"`

	// Place fields.
	ID         uint64  `json:"id,omitempty"`
	Machine    int     `json:"machine"` // topology machine index
	MachineID  int     `json:"machine_id,omitempty"`
	RD         int     `json:"rd"`
	CD         int     `json:"cd"`
	OTL        string  `json:"otl,omitempty"`
	TC         int     `json:"tc,omitempty"`
	EEC        float64 `json:"eec,omitempty"`
	ESC        float64 `json:"esc,omitempty"`
	Start      float64 `json:"start,omitempty"`
	Finish     float64 `json:"finish,omitempty"`
	Activities []int   `json:"activities,omitempty"`

	// IdemKey, when non-empty, registers the placement in the submit
	// dedup table on replay so retried submits survive a restart without
	// double-placing.
	IdemKey string `json:"idem_key,omitempty"`

	// Report fields.
	Outcome float64 `json:"outcome,omitempty"`

	Now float64 `json:"now,omitempty"`
}

// daemonSnapshotVersion guards the checkpoint payload format.
const daemonSnapshotVersion = 1

// daemonSnapshot is the checkpoint payload: everything needed to rebuild
// the daemon at a journal boundary.  The trust fabric reuses the engine's
// own snapshot format, so its version discipline (trust.ErrSnapshotVersion)
// applies on the recovery path too.
type daemonSnapshot struct {
	Version      int               `json:"version"`
	NextID       uint64            `json:"next_id"`
	Placed       int               `json:"placed"`
	FreeTime     []float64         `json:"free_time"`
	TableVersion uint64            `json:"table_version"`
	Table        []grid.TableEntry `json:"table"`
	Trust        *trust.Snapshot   `json:"trust"`
	// Open holds the placements still awaiting an outcome report, as
	// place records.  Their scheduler effect is already inside
	// Placed/FreeTime; they are kept so late reports still resolve.
	Open []journalRecord `json:"open,omitempty"`
	// Idem holds the submit dedup table (place records with their keys),
	// including entries whose placements were already reported — a retry
	// may arrive arbitrarily late, and compaction must not forget it.
	Idem []journalRecord `json:"idem,omitempty"`
	// Agent counters at the boundary: the lifetime totals the daemon
	// acknowledged, restored so a restart's stats view matches exactly
	// (the record tail re-runs its reports through the agents on top).
	AgentsProcessed int `json:"agents_processed,omitempty"`
	AgentsCommitted int `json:"agents_committed,omitempty"`
	AgentsRejected  int `json:"agents_rejected,omitempty"`
}

// CheckpointInfo reports the outcome of a WAL checkpoint.
type CheckpointInfo struct {
	// Boundary is the first sequence NOT covered by the new snapshot.
	Boundary uint64 `json:"boundary"`
	// Compacted is how many live records the snapshot subsumed.
	Compacted uint64 `json:"compacted"`
	// Segments is the live segment-file count after compaction.
	Segments int `json:"segments"`
}

// AttachJournal replays a recovered WAL into the server's TRMS and starts
// journaling subsequent operations to log.  Call it on a freshly built
// server before ListenAndServe.  compactEvery > 0 checkpoints automatically
// once that many records accumulate past the last boundary.
func (s *Server) AttachJournal(log *wal.Log, rec *wal.Recovered, compactEvery int) error {
	if log == nil {
		return fmt.Errorf("rmswire: nil journal")
	}
	if rec != nil {
		if err := s.replay(rec); err != nil {
			return fmt.Errorf("rmswire: journal replay: %w", err)
		}
	}
	s.jmu.Lock()
	s.journal = log
	s.compactEvery = compactEvery
	s.lastBoundary = log.NextSeq()
	if rec != nil && rec.SnapshotSeq > 0 {
		s.lastBoundary = rec.SnapshotSeq
	}
	s.jmu.Unlock()
	return nil
}

// replay rebuilds daemon state from a recovered snapshot + record tail.
func (s *Server) replay(rec *wal.Recovered) error {
	if rec.Snapshot != nil {
		var snap daemonSnapshot
		if err := json.Unmarshal(rec.Snapshot, &snap); err != nil {
			return fmt.Errorf("decode snapshot: %w", err)
		}
		if snap.Version != daemonSnapshotVersion {
			return fmt.Errorf("snapshot version %d, want %d", snap.Version, daemonSnapshotVersion)
		}
		if err := s.trms.RestoreSchedulerState(snap.Placed, snap.FreeTime); err != nil {
			return err
		}
		if err := s.trms.RestoreAgentStats(snap.AgentsProcessed, snap.AgentsCommitted, snap.AgentsRejected); err != nil {
			return err
		}
		if err := s.trms.Table().Restore(snap.Table, snap.TableVersion); err != nil {
			return err
		}
		if snap.Trust != nil {
			if err := s.trms.Model().Import(snap.Trust); err != nil {
				return err
			}
		}
		s.mu.Lock()
		s.nextID = snap.NextID
		s.mu.Unlock()
		for i := range snap.Open {
			r := &snap.Open[i]
			p, toa, err := r.placement(s.trms.Topology())
			if err != nil {
				return fmt.Errorf("open placement %d: %w", r.ID, err)
			}
			s.mu.Lock()
			s.placements[r.ID] = openPlacement{p: p, toa: toa}
			s.mu.Unlock()
		}
		s.mu.Lock()
		for _, r := range snap.Idem {
			if r.IdemKey != "" {
				s.idem[r.IdemKey] = r
			}
		}
		s.mu.Unlock()
	}
	for _, w := range rec.Records {
		var r journalRecord
		if err := json.Unmarshal(w.Payload, &r); err != nil {
			return fmt.Errorf("decode record %d: %w", w.Seq, err)
		}
		switch r.Kind {
		case recPlace:
			p, toa, err := r.placement(s.trms.Topology())
			if err != nil {
				return fmt.Errorf("record %d: %w", w.Seq, err)
			}
			if err := s.trms.RecoverPlacement(r.Machine, r.Finish); err != nil {
				return fmt.Errorf("record %d: %w", w.Seq, err)
			}
			s.mu.Lock()
			s.placements[r.ID] = openPlacement{p: p, toa: toa}
			if r.IdemKey != "" {
				s.idem[r.IdemKey] = r
			}
			if r.ID > s.nextID {
				s.nextID = r.ID
			}
			s.mu.Unlock()
		case recReport:
			s.mu.Lock()
			op, ok := s.placements[r.ID]
			if ok {
				delete(s.placements, r.ID)
			}
			s.mu.Unlock()
			if !ok {
				return fmt.Errorf("record %d: report for unknown placement %d", w.Seq, r.ID)
			}
			if err := s.trms.ReportOutcome(op.p, op.toa, r.Outcome, r.Now); err != nil {
				return fmt.Errorf("record %d: %w", w.Seq, err)
			}
		default:
			return fmt.Errorf("record %d: unknown kind %q", w.Seq, r.Kind)
		}
	}
	// Settle the agents so the table reflects every replayed report before
	// the daemon takes traffic.
	s.trms.Drain()
	return nil
}

// placement rebuilds the in-memory placement a record describes.
func (r *journalRecord) placement(top *grid.Topology) (*core.Placement, grid.ToA, error) {
	machines := top.Machines()
	if r.Machine < 0 || r.Machine >= len(machines) {
		return nil, grid.ToA{}, fmt.Errorf("machine index %d of %d", r.Machine, len(machines))
	}
	toa, err := activitiesToToA(r.Activities)
	if err != nil {
		return nil, grid.ToA{}, err
	}
	otl, err := grid.ParseLevel(r.OTL)
	if err != nil {
		return nil, grid.ToA{}, err
	}
	return &core.Placement{
		Machine:    machines[r.Machine],
		MachineIdx: r.Machine,
		RD:         grid.DomainID(r.RD),
		CD:         grid.DomainID(r.CD),
		OTL:        otl,
		TC:         r.TC,
		EEC:        r.EEC,
		ESC:        r.ESC,
		ECC:        r.EEC + r.ESC,
		Start:      r.Start,
		Finish:     r.Finish,
	}, toa, nil
}

// placementInfo rebuilds the wire response a place record was acknowledged
// with, so an idempotent retry returns exactly what the original submit
// returned.
func (r *journalRecord) placementInfo() *PlacementInfo {
	return &PlacementInfo{
		ID:      r.ID,
		Machine: r.MachineID,
		RD:      r.RD,
		CD:      r.CD,
		OTL:     r.OTL,
		TC:      r.TC,
		EEC:     r.EEC,
		ESC:     r.ESC,
		ECC:     r.EEC + r.ESC,
		Start:   r.Start,
		Finish:  r.Finish,
	}
}

// placeRecord encodes a placement for the journal or a snapshot's open set.
func placeRecord(id uint64, p *core.Placement, toa grid.ToA, now float64) journalRecord {
	acts := make([]int, len(toa.Activities))
	for i, a := range toa.Activities {
		acts[i] = int(a)
	}
	return journalRecord{
		Kind:       recPlace,
		ID:         id,
		Machine:    p.MachineIdx,
		MachineID:  int(p.Machine.ID),
		RD:         int(p.RD),
		CD:         int(p.CD),
		OTL:        p.OTL.String(),
		TC:         p.TC,
		EEC:        p.EEC,
		ESC:        p.ESC,
		Start:      p.Start,
		Finish:     p.Finish,
		Activities: acts,
		Now:        now,
	}
}

// journalAppend durably appends one record; a nil journal is a no-op.  The
// caller holds jmu for reading.
func (s *Server) journalAppend(r journalRecord) error {
	if s.journal == nil {
		return nil
	}
	data, err := json.Marshal(r)
	if err != nil {
		return fmt.Errorf("rmswire: encode journal record: %w", err)
	}
	if _, err := s.journal.Append(data); err != nil {
		// A WAL fail-stop means durability is gone for good on this
		// journal: latch the daemon into degraded mode so every further
		// mutation is refused up front instead of failing one by one.
		if errors.Is(err, wal.ErrFailStop) {
			s.degrade(err)
		}
		return fmt.Errorf("rmswire: journal append: %w", err)
	}
	return nil
}

// Checkpoint quiesces the daemon, snapshots its full state at the current
// journal position and compacts the log behind it.
func (s *Server) Checkpoint() (*CheckpointInfo, error) {
	s.jmu.Lock()
	defer s.jmu.Unlock()
	if s.journal == nil {
		return nil, fmt.Errorf("rmswire: no journal attached")
	}
	// Settle in-flight trust transactions so the engine export includes
	// every report already journalled.
	s.trms.Drain()
	snap := s.capture()
	payload, err := json.Marshal(snap)
	if err != nil {
		return nil, fmt.Errorf("rmswire: encode snapshot: %w", err)
	}
	boundary := s.journal.NextSeq()
	compacted := s.journal.LiveRecords()
	if err := s.journal.Snapshot(boundary, payload); err != nil {
		return nil, err
	}
	s.lastBoundary = boundary
	return &CheckpointInfo{
		Boundary:  boundary,
		Compacted: compacted,
		Segments:  s.journal.Stats().Segments,
	}, nil
}

// capture assembles the snapshot payload.  The caller holds jmu for
// writing and has drained the agents, so all state is at rest.
func (s *Server) capture() *daemonSnapshot {
	placed, freeTime := s.trms.SchedulerState()
	table := s.trms.Table()
	snap := &daemonSnapshot{
		Version:      daemonSnapshotVersion,
		Placed:       placed,
		FreeTime:     freeTime,
		TableVersion: table.Version(),
		Table:        table.Entries(),
		Trust:        s.trms.Model().Export(),
	}
	snap.AgentsProcessed, snap.AgentsCommitted, snap.AgentsRejected = s.trms.AgentStats()
	s.mu.Lock()
	snap.NextID = s.nextID
	for id, op := range s.placements {
		snap.Open = append(snap.Open, placeRecord(id, op.p, op.toa, 0))
	}
	for _, rec := range s.idem {
		snap.Idem = append(snap.Idem, rec)
	}
	s.mu.Unlock()
	sort.Slice(snap.Open, func(i, j int) bool { return snap.Open[i].ID < snap.Open[j].ID })
	sort.Slice(snap.Idem, func(i, j int) bool { return snap.Idem[i].IdemKey < snap.Idem[j].IdemKey })
	return snap
}

// maybeCompact checkpoints once enough records accumulated past the last
// boundary.  Called outside jmu; a losing racer re-checks under the lock
// via lastBoundary and becomes a cheap extra checkpoint at worst.
func (s *Server) maybeCompact() {
	s.jmu.RLock()
	due := s.journal != nil && s.compactEvery > 0 &&
		s.journal.NextSeq()-s.lastBoundary >= uint64(s.compactEvery)
	s.jmu.RUnlock()
	if due {
		_, _ = s.Checkpoint()
	}
}
