package rmswire

import (
	"bufio"
	"fmt"
	"net"
	"sync"

	"gridtrust/internal/grid"
)

// Client is a synchronous RMS client over one connection.  It is safe for
// concurrent use; requests are serialised on the connection.
type Client struct {
	mu   sync.Mutex
	conn net.Conn
	r    *bufio.Reader
}

// Dial connects to a gridtrustd server.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("rmswire: dial %s: %w", addr, err)
	}
	return NewClient(conn), nil
}

// NewClient wraps an established connection.
func NewClient(conn net.Conn) *Client {
	return &Client{conn: conn, r: bufio.NewReaderSize(conn, 64<<10)}
}

// Close releases the connection.
func (c *Client) Close() error { return c.conn.Close() }

// roundTrip sends one request and decodes the response.
func (c *Client) roundTrip(req Request) (Response, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := writeFrame(c.conn, req); err != nil {
		return Response{}, err
	}
	var resp Response
	if err := readFrame(c.r, &resp); err != nil {
		return Response{}, err
	}
	if resp.Status == StatusError {
		return resp, fmt.Errorf("rmswire: server: %s", resp.Error)
	}
	return resp, nil
}

// Submit schedules a task and returns its placement.
func (c *Client) Submit(client grid.ClientID, activities []grid.Activity, rtl grid.TrustLevel, eec []float64, now float64) (*PlacementInfo, error) {
	ids := make([]int, len(activities))
	for i, a := range activities {
		ids[i] = int(a)
	}
	resp, err := c.roundTrip(Request{
		Op:         OpSubmit,
		Client:     int(client),
		Activities: ids,
		RTL:        rtl.String(),
		EEC:        eec,
		Now:        now,
	})
	if err != nil {
		return nil, err
	}
	if resp.Placement == nil {
		return nil, fmt.Errorf("rmswire: submit response missing placement")
	}
	return resp.Placement, nil
}

// Report feeds back the observed outcome (on [1,6]) of a placement.
func (c *Client) Report(placementID uint64, outcome, now float64) error {
	_, err := c.roundTrip(Request{
		Op: OpReport, PlacementID: placementID, Outcome: outcome, Now: now,
	})
	return err
}

// Checkpoint asks the daemon to snapshot its state and compact the
// write-ahead log.  It fails if the daemon runs without a journal.
func (c *Client) Checkpoint() (*CheckpointInfo, error) {
	resp, err := c.roundTrip(Request{Op: OpCheckpoint})
	if err != nil {
		return nil, err
	}
	if resp.Checkpoint == nil {
		return nil, fmt.Errorf("rmswire: checkpoint response missing info")
	}
	return resp.Checkpoint, nil
}

// Stats fetches daemon statistics.
func (c *Client) Stats() (*StatsInfo, error) {
	resp, err := c.roundTrip(Request{Op: OpStats})
	if err != nil {
		return nil, err
	}
	if resp.Stats == nil {
		return nil, fmt.Errorf("rmswire: stats response missing stats")
	}
	return resp.Stats, nil
}
