package rmswire

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"gridtrust/internal/grid"
)

// DefaultDialTimeout bounds Dial: a dead or blackholed server address
// fails within this window instead of hanging indefinitely.
const DefaultDialTimeout = 5 * time.Second

// ErrClientBroken reports a client whose connection desynchronized: a
// read or write failed mid-frame, so the request/response stream can no
// longer be trusted and every subsequent op fails fast instead of
// decoding garbage.  Reconnect (or use a Retrier, which does) to recover.
var ErrClientBroken = errors.New("rmswire: client connection broken")

// Client is a synchronous RMS client over one connection.  It is safe for
// concurrent use; requests are serialised on the connection.
type Client struct {
	// Timeout bounds each op end to end (frame write + response read);
	// 0 disables deadlines.  Set before issuing requests.
	Timeout time.Duration

	// Budget, when positive, is propagated to the server as the request's
	// admission budget (Request.BudgetMS): a loaded server may hold the
	// request that long for an in-flight slot before shedding it.  Zero
	// omits the field, keeping frames byte-identical to older clients.
	Budget time.Duration

	mu      sync.Mutex
	conn    net.Conn
	r       *bufio.Reader
	broken  bool
	closing bool
}

// Dial connects to a gridtrustd server within DefaultDialTimeout.
func Dial(addr string) (*Client, error) {
	return DialTimeout(addr, DefaultDialTimeout)
}

// DialTimeout connects with an explicit dial timeout; 0 means no limit.
func DialTimeout(addr string, timeout time.Duration) (*Client, error) {
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, fmt.Errorf("rmswire: dial %s: %w", addr, err)
	}
	return NewClient(conn), nil
}

// NewClient wraps an established connection.
func NewClient(conn net.Conn) *Client {
	return &Client{conn: conn, r: bufio.NewReaderSize(conn, 64<<10)}
}

// Close releases the connection.
func (c *Client) Close() error { return c.conn.Close() }

// roundTrip sends one request and decodes the response.  Any transport
// error marks the client broken: after a failed mid-frame read or write
// the stream may hold a partial frame, and resynchronizing a
// newline-delimited protocol is not possible in general.
func (c *Client) roundTrip(req Request) (Response, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.broken {
		return Response{}, ErrClientBroken
	}
	if c.Budget > 0 && req.BudgetMS == 0 {
		req.BudgetMS = c.Budget.Milliseconds()
	}
	if c.Timeout > 0 {
		_ = c.conn.SetDeadline(time.Now().Add(c.Timeout))
		defer c.conn.SetDeadline(time.Time{})
	}
	if err := writeFrame(c.conn, req); err != nil {
		c.broken = true
		return Response{}, err
	}
	var resp Response
	if err := readFrame(c.r, &resp); err != nil {
		c.broken = true
		return Response{}, err
	}
	if resp.ConnClosing {
		// The server announced it will close this connection after the
		// frame (drain, accept-time shed).  The response itself is valid,
		// but any further op on this client would fail with a transport
		// error — record that so callers redial instead.
		c.closing = true
	}
	switch resp.Status {
	case StatusError:
		return resp, fmt.Errorf("rmswire: server: %s", resp.Error)
	case StatusOverloaded:
		return resp, &OverloadedError{
			Reason:     resp.Error,
			RetryAfter: time.Duration(resp.RetryAfterMS) * time.Millisecond,
		}
	}
	return resp, nil
}

// RoundTrip sends one raw request frame and returns the decoded
// response.  Fleet forwarders use it to relay a client's request to the
// owning shard verbatim (Forwarded flag and all) and pass the owner's
// response back unchanged: for application errors and overload the
// returned Response is still populated alongside the non-nil error.
func (c *Client) RoundTrip(req Request) (Response, error) { return c.roundTrip(req) }

// Broken reports whether the connection desynchronized and the client
// must be replaced.
func (c *Client) Broken() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.broken
}

// Closing reports whether the server announced it will close this
// connection (ConnClosing on a response).  The last response was still
// valid; the next op would hit a dead connection, so callers should
// replace the client first.
func (c *Client) Closing() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.closing
}

// Submit schedules a task and returns its placement.
func (c *Client) Submit(client grid.ClientID, activities []grid.Activity, rtl grid.TrustLevel, eec []float64, now float64) (*PlacementInfo, error) {
	return c.SubmitKeyed("", client, activities, rtl, eec, now)
}

// SubmitKeyed schedules a task under an idempotency key: resubmitting the
// same key — after an ambiguous failure, a reconnect, or even a daemon
// restart — returns the original placement instead of double-placing.
// An empty key behaves exactly like Submit.
func (c *Client) SubmitKeyed(key string, client grid.ClientID, activities []grid.Activity, rtl grid.TrustLevel, eec []float64, now float64) (*PlacementInfo, error) {
	ids := make([]int, len(activities))
	for i, a := range activities {
		ids[i] = int(a)
	}
	resp, err := c.roundTrip(Request{
		Op:         OpSubmit,
		Client:     int(client),
		Activities: ids,
		RTL:        rtl.String(),
		EEC:        eec,
		IdemKey:    key,
		Now:        now,
	})
	if err != nil {
		return nil, err
	}
	if resp.Placement == nil {
		return nil, fmt.Errorf("rmswire: submit response missing placement")
	}
	return resp.Placement, nil
}

// Report feeds back the observed outcome (on [1,6]) of a placement.
func (c *Client) Report(placementID uint64, outcome, now float64) error {
	_, err := c.roundTrip(Request{
		Op: OpReport, PlacementID: placementID, Outcome: outcome, Now: now,
	})
	return err
}

// Checkpoint asks the daemon to snapshot its state and compact the
// write-ahead log.  It fails if the daemon runs without a journal.
func (c *Client) Checkpoint() (*CheckpointInfo, error) {
	resp, err := c.roundTrip(Request{Op: OpCheckpoint})
	if err != nil {
		return nil, err
	}
	if resp.Checkpoint == nil {
		return nil, fmt.Errorf("rmswire: checkpoint response missing info")
	}
	return resp.Checkpoint, nil
}

// Stats fetches daemon statistics.
func (c *Client) Stats() (*StatsInfo, error) {
	resp, err := c.roundTrip(Request{Op: OpStats})
	if err != nil {
		return nil, err
	}
	if resp.Stats == nil {
		return nil, fmt.Errorf("rmswire: stats response missing stats")
	}
	return resp.Stats, nil
}

// Health fetches the daemon's readiness view.  It is served outside
// admission control, so it answers even when submits are being shed.
func (c *Client) Health() (*HealthInfo, error) {
	resp, err := c.roundTrip(Request{Op: OpHealth})
	if err != nil {
		return nil, err
	}
	if resp.Health == nil {
		return nil, fmt.Errorf("rmswire: health response missing info")
	}
	return resp.Health, nil
}

// Metrics scrapes the daemon's metrics registry.  Like Health it is
// served outside admission control.
func (c *Client) Metrics() (*MetricsInfo, error) {
	resp, err := c.roundTrip(Request{Op: OpMetrics})
	if err != nil {
		return nil, err
	}
	if resp.Metrics == nil {
		return nil, fmt.Errorf("rmswire: metrics response missing info")
	}
	return resp.Metrics, nil
}

// Drain asks the daemon to shut down gracefully: stop accepting, finish
// in-flight requests, checkpoint, exit.  The acknowledgement only means
// the request was delivered; the daemon drains asynchronously.
func (c *Client) Drain() error {
	_, err := c.roundTrip(Request{Op: OpDrain})
	return err
}

// Fleet fetches the shard's fleet view (ring membership, per-peer gossip
// state).  It fails with a server error on a daemon not run with -fleet.
func (c *Client) Fleet() (*FleetInfo, error) {
	resp, err := c.roundTrip(Request{Op: OpFleet})
	if err != nil {
		return nil, err
	}
	if resp.Fleet == nil {
		return nil, fmt.Errorf("rmswire: fleet response missing info")
	}
	return resp.Fleet, nil
}
