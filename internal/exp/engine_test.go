package exp

import (
	"context"
	"errors"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"gridtrust/internal/rng"
)

// sumCell draws n variates from the replication stream and sums them —
// enough arithmetic that any seeding or ordering mistake shows up as a
// bit-level difference in the fold.
func sumCell(name string, n int) Cell {
	return Cell{Name: name, Run: func(ctx context.Context, rep int, src *rng.Source, scratch any) (any, error) {
		s := 0.0
		for i := 0; i < n; i++ {
			s += src.Float64()
		}
		return s, nil
	}}
}

// fold reduces one cell's replication outputs in replication order.
func fold(t *testing.T, res CellResult) float64 {
	t.Helper()
	s := 0.0
	for rep, v := range res.Reps {
		f, ok := v.(float64)
		if !ok {
			t.Fatalf("cell %s rep %d: missing result", res.Name, rep)
		}
		// A non-commutative mix so replication order matters.
		s = s/2 + f
	}
	return s
}

func TestRunDeterministicAcrossWorkersAndCellOrder(t *testing.T) {
	cells := []Cell{sumCell("a", 10), sumCell("b", 100), sumCell("c", 3)}
	reversed := []Cell{cells[2], cells[1], cells[0]}

	byName := func(cs []Cell, workers int) map[string]float64 {
		res, err := Run(context.Background(), cs, Options{Seed: 99, Reps: 7, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		out := map[string]float64{}
		for _, r := range res {
			out[r.Name] = fold(t, r)
		}
		return out
	}

	base := byName(cells, 1)
	for _, workers := range []int{2, 8} {
		got := byName(cells, workers)
		for name, want := range base {
			if got[name] != want {
				t.Errorf("workers=%d cell %s: %v != %v (1 worker)", workers, name, got[name], want)
			}
		}
	}
	rev := byName(reversed, 4)
	for name, want := range base {
		if rev[name] != want {
			t.Errorf("reordered cells: cell %s: %v != %v", name, rev[name], want)
		}
	}
}

func TestRunMatchesStandaloneStreams(t *testing.T) {
	// Replication r must see exactly stream r of the master seed, the
	// contract the sim package's Compare equivalence rests on.
	res, err := Run(context.Background(), []Cell{
		{Name: "probe", Run: func(ctx context.Context, rep int, src *rng.Source, scratch any) (any, error) {
			return src.Uint64(), nil
		}},
	}, Options{Seed: 4, Reps: 5, Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	streams := rng.Streams(4, 5)
	for rep, v := range res[0].Reps {
		if want := streams[rep].Uint64(); v.(uint64) != want {
			t.Errorf("rep %d: got %d, want stream value %d", rep, v, want)
		}
	}
}

func TestRunCancellationDrainsPromptly(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	started := make(chan struct{}, 64)
	cells := []Cell{{Name: "slow", Run: func(ctx context.Context, rep int, src *rng.Source, scratch any) (any, error) {
		started <- struct{}{}
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-time.After(10 * time.Second):
			return nil, nil
		}
	}}}

	done := make(chan error, 1)
	go func() {
		_, err := Run(ctx, cells, Options{Seed: 1, Reps: 64, Workers: 4})
		done <- err
	}()
	<-started
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("got %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancelled grid did not drain promptly")
	}
}

func TestRunRecoversPanicsWithCellTag(t *testing.T) {
	cells := []Cell{
		sumCell("healthy", 5),
		{Name: "exploding", Run: func(ctx context.Context, rep int, src *rng.Source, scratch any) (any, error) {
			if rep == 1 {
				panic("boom")
			}
			return rep, nil
		}},
	}
	res, err := Run(context.Background(), cells, Options{Seed: 2, Reps: 3, Workers: 2})
	if err == nil {
		t.Fatal("panicking cell produced no error")
	}
	for _, frag := range []string{`"exploding"`, "replication 1", "boom"} {
		if !strings.Contains(err.Error(), frag) {
			t.Errorf("error %q missing %q", err, frag)
		}
	}
	if res[1].Err == nil {
		t.Error("cell result not tagged with the error")
	}
	// The healthy cell still completed in full.
	if res[0].Err != nil {
		t.Errorf("healthy cell errored: %v", res[0].Err)
	}
	fold(t, res[0])
}

func TestRunErrorsAreReplicationOrdered(t *testing.T) {
	// The reported cell error is the lowest-replication failure, not
	// whichever worker lost the race.
	cells := []Cell{{Name: "flaky", Run: func(ctx context.Context, rep int, src *rng.Source, scratch any) (any, error) {
		if rep >= 2 {
			return nil, errors.New("late failure")
		}
		return rep, nil
	}}}
	res, err := Run(context.Background(), cells, Options{Seed: 3, Reps: 8, Workers: 8})
	if err == nil || !strings.Contains(err.Error(), "replication 2") {
		t.Fatalf("got %v, want the replication-2 failure", err)
	}
	if res[0].Err == nil {
		t.Fatal("cell error missing")
	}
}

func TestRunScratchIsPerWorker(t *testing.T) {
	var made atomic.Int64
	type scratch struct{ uses int }
	cells := []Cell{{Name: "s", Run: func(ctx context.Context, rep int, src *rng.Source, sc any) (any, error) {
		s, ok := sc.(*scratch)
		if !ok {
			return nil, errors.New("scratch missing or mistyped")
		}
		s.uses++
		return nil, nil
	}}}
	_, err := Run(context.Background(), cells, Options{
		Seed: 1, Reps: 32, Workers: 4,
		NewScratch: func() any { made.Add(1); return &scratch{} },
	})
	if err != nil {
		t.Fatal(err)
	}
	if n := made.Load(); n < 1 || n > 4 {
		t.Errorf("made %d scratches, want between 1 and the worker count", n)
	}
}

func TestRunProgressHook(t *testing.T) {
	var events []Progress
	cells := []Cell{sumCell("a", 2), sumCell("b", 2)}
	_, err := Run(context.Background(), cells, Options{
		Seed: 5, Reps: 4, Workers: 3,
		OnCell: func(p Progress) { events = append(events, p) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 2 {
		t.Fatalf("got %d progress events, want 2", len(events))
	}
	seen := map[string]bool{}
	for _, p := range events {
		seen[p.Cell] = true
		if p.Reps != 4 || p.Cells != 2 || p.Err != nil {
			t.Errorf("bad progress event %+v", p)
		}
	}
	if !seen["a"] || !seen["b"] {
		t.Errorf("progress missing cells: %v", seen)
	}
	if events[len(events)-1].Done != 2 {
		t.Errorf("final Done = %d, want 2", events[len(events)-1].Done)
	}
}

func TestRunValidation(t *testing.T) {
	if _, err := Run(context.Background(), []Cell{{Name: "x"}}, Options{Reps: 1}); err == nil {
		t.Error("nil run function accepted")
	}
	if _, err := Run(context.Background(), []Cell{sumCell("x", 1)}, Options{}); err == nil {
		t.Error("missing replication count accepted")
	}
	if res, err := Run(context.Background(), nil, Options{}); err != nil || res != nil {
		t.Errorf("empty grid: got (%v, %v), want (nil, nil)", res, err)
	}
}

func TestCellRepsOverride(t *testing.T) {
	cells := []Cell{sumCell("default", 3), {Name: "more", Reps: 9, Run: sumCell("", 1).Run}}
	res, err := Run(context.Background(), cells, Options{Seed: 1, Reps: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(res[0].Reps) != 3 || len(res[1].Reps) != 9 {
		t.Errorf("rep counts %d/%d, want 3/9", len(res[0].Reps), len(res[1].Reps))
	}
}
