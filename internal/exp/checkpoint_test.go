package exp

import (
	"context"
	"encoding/json"
	"fmt"
	"path/filepath"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"

	"gridtrust/internal/rng"
)

// ckResult is the replication output type the checkpoint tests persist.
type ckResult struct {
	Cell string  `json:"cell"`
	Rep  int     `json:"rep"`
	Draw float64 `json:"draw"`
}

// ckCodec is the []*ckResult JSON codec, mirroring what sim builds for its
// concrete result types.
func ckCodec() (func([]any) ([]byte, error), func([]byte) ([]any, error)) {
	enc := func(reps []any) ([]byte, error) {
		out := make([]*ckResult, len(reps))
		for i, v := range reps {
			r, ok := v.(*ckResult)
			if !ok {
				return nil, fmt.Errorf("rep %d is %T", i, v)
			}
			out[i] = r
		}
		return json.Marshal(out)
	}
	dec := func(data []byte) ([]any, error) {
		var in []*ckResult
		if err := json.Unmarshal(data, &in); err != nil {
			return nil, err
		}
		out := make([]any, len(in))
		for i, v := range in {
			out[i] = v
		}
		return out, nil
	}
	return enc, dec
}

// ckCells builds n cells whose runs record themselves on executed and
// return a deterministic draw from the replication stream.
func ckCells(n int, executed *atomic.Int64) []Cell {
	cells := make([]Cell, n)
	for i := range cells {
		name := fmt.Sprintf("cell-%d", i)
		cells[i] = Cell{Name: name, Run: func(ctx context.Context, rep int, src *rng.Source, scratch any) (any, error) {
			executed.Add(1)
			return &ckResult{Cell: name, Rep: rep, Draw: src.Float64()}, nil
		}}
	}
	return cells
}

func ckOptions(ck *Checkpoint, seed uint64) Options {
	enc, dec := ckCodec()
	return Options{
		Seed: seed, Reps: 3, Workers: 2,
		Checkpoint: ck, CheckpointSalt: "test", EncodeReps: enc, DecodeReps: dec,
	}
}

func TestCheckpointResumeSkipsEveryCachedCell(t *testing.T) {
	dir := t.TempDir()
	ck, err := OpenCheckpoint(dir)
	if err != nil {
		t.Fatal(err)
	}
	var executed atomic.Int64
	cells := ckCells(4, &executed)

	first, err := Run(context.Background(), cells, ckOptions(ck, 11))
	if err != nil {
		t.Fatal(err)
	}
	if got := executed.Load(); got != 12 {
		t.Fatalf("first run executed %d replications, want 12", got)
	}
	if err := ck.Close(); err != nil {
		t.Fatal(err)
	}

	// A fresh process resumes from disk: zero replications execute, every
	// progress event is marked cached, and the results are identical.
	ck2, err := OpenCheckpoint(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer ck2.Close()
	if ck2.Len() != 4 {
		t.Fatalf("reopened checkpoint holds %d cells, want 4", ck2.Len())
	}
	executed.Store(0)
	var events []Progress
	opts := ckOptions(ck2, 11)
	opts.OnCell = func(p Progress) { events = append(events, p) }
	second, err := Run(context.Background(), cells, opts)
	if err != nil {
		t.Fatal(err)
	}
	if got := executed.Load(); got != 0 {
		t.Fatalf("resumed run executed %d replications, want 0", got)
	}
	if len(events) != 4 {
		t.Fatalf("resumed run fired %d progress events, want 4", len(events))
	}
	for _, p := range events {
		if !p.Cached || p.Cells != 4 || p.Err != nil {
			t.Fatalf("bad cached progress event: %+v", p)
		}
	}
	for i := range first {
		if !reflect.DeepEqual(first[i].Reps, second[i].Reps) {
			t.Fatalf("cell %d: cached reps diverge\n first  %v\n second %v", i, first[i].Reps, second[i].Reps)
		}
	}
}

func TestCheckpointPartialResumeRunsOnlyMisses(t *testing.T) {
	dir := t.TempDir()
	ck, err := OpenCheckpoint(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer ck.Close()
	var executed atomic.Int64
	cells := ckCells(5, &executed)

	// Complete only the first two cells, as an interrupted sweep would.
	if _, err := Run(context.Background(), cells[:2], ckOptions(ck, 7)); err != nil {
		t.Fatal(err)
	}
	executed.Store(0)
	if _, err := Run(context.Background(), cells, ckOptions(ck, 7)); err != nil {
		t.Fatal(err)
	}
	if got := executed.Load(); got != 9 {
		t.Fatalf("resume executed %d replications, want 9 (3 missed cells)", got)
	}
}

func TestCheckpointKeyCoversSeedSaltAndReps(t *testing.T) {
	dir := t.TempDir()
	ck, err := OpenCheckpoint(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer ck.Close()
	var executed atomic.Int64
	cells := ckCells(2, &executed)
	if _, err := Run(context.Background(), cells, ckOptions(ck, 7)); err != nil {
		t.Fatal(err)
	}

	for name, mutate := range map[string]func(*Options){
		"seed": func(o *Options) { o.Seed = 8 },
		"salt": func(o *Options) { o.CheckpointSalt = "other" },
		"reps": func(o *Options) { o.Reps = 4 },
	} {
		executed.Store(0)
		opts := ckOptions(ck, 7)
		mutate(&opts)
		if _, err := Run(context.Background(), cells, opts); err != nil {
			t.Fatal(err)
		}
		if executed.Load() == 0 {
			t.Fatalf("changed %s but the checkpoint still served cached cells", name)
		}
	}
}

func TestCheckpointCompactBoundsDirectory(t *testing.T) {
	dir := t.TempDir()
	ck, err := OpenCheckpoint(dir)
	if err != nil {
		t.Fatal(err)
	}
	var executed atomic.Int64
	if _, err := Run(context.Background(), ckCells(6, &executed), ckOptions(ck, 3)); err != nil {
		t.Fatal(err)
	}
	if err := ck.Compact(); err != nil {
		t.Fatal(err)
	}
	if err := ck.Close(); err != nil {
		t.Fatal(err)
	}
	snaps, err := filepath.Glob(filepath.Join(dir, "snap-*.snap"))
	if err != nil {
		t.Fatal(err)
	}
	if len(snaps) != 1 {
		t.Fatalf("compacted checkpoint left %d snapshots, want 1", len(snaps))
	}

	// The snapshot alone must serve every cell.
	ck2, err := OpenCheckpoint(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer ck2.Close()
	if ck2.Len() != 6 {
		t.Fatalf("recovered %d cells from snapshot, want 6", ck2.Len())
	}
	executed.Store(0)
	if _, err := Run(context.Background(), ckCells(6, &executed), ckOptions(ck2, 3)); err != nil {
		t.Fatal(err)
	}
	if got := executed.Load(); got != 0 {
		t.Fatalf("post-compaction resume executed %d replications, want 0", got)
	}
}

func TestCheckpointDoesNotStoreFailedCells(t *testing.T) {
	dir := t.TempDir()
	ck, err := OpenCheckpoint(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer ck.Close()
	cells := []Cell{{Name: "boom", Run: func(ctx context.Context, rep int, src *rng.Source, scratch any) (any, error) {
		if rep == 1 {
			return nil, fmt.Errorf("transient")
		}
		return &ckResult{Cell: "boom", Rep: rep}, nil
	}}}
	if _, err := Run(context.Background(), cells, ckOptions(ck, 5)); err == nil {
		t.Fatal("failing cell reported no error")
	}
	if ck.Len() != 0 {
		t.Fatalf("failed cell was checkpointed (%d cached)", ck.Len())
	}
}

func TestCheckpointRequiresCodecs(t *testing.T) {
	ck, err := OpenCheckpoint(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer ck.Close()
	var executed atomic.Int64
	opts := ckOptions(ck, 1)
	opts.EncodeReps = nil
	_, err = Run(context.Background(), ckCells(1, &executed), opts)
	if err == nil || !strings.Contains(err.Error(), "EncodeReps") {
		t.Fatalf("missing codec accepted: %v", err)
	}
}

func TestCheckpointInterruptedRunResumesToIdenticalResults(t *testing.T) {
	// Reference: the grid with no checkpoint and no interruption.
	var executed atomic.Int64
	cells := ckCells(6, &executed)
	refOpts := Options{Seed: 9, Reps: 3, Workers: 2}
	ref, err := Run(context.Background(), cells, refOpts)
	if err != nil {
		t.Fatal(err)
	}

	// Interrupted run: cancel after the second cell completes, like a
	// SIGINT landing mid-sweep.  Fully dispatched cells still drain and
	// are journalled.
	dir := t.TempDir()
	ck, err := OpenCheckpoint(dir)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	opts := ckOptions(ck, 9)
	opts.Workers = 1
	opts.OnCell = func(p Progress) {
		if p.Done == 2 {
			cancel()
		}
	}
	if _, err := Run(ctx, cells, opts); err == nil {
		t.Fatal("interrupted run reported no error")
	}
	stored := ck.Len()
	if stored == 0 || stored == len(cells) {
		t.Fatalf("interruption stored %d of %d cells; the test needs a partial checkpoint", stored, len(cells))
	}
	if err := ck.Close(); err != nil {
		t.Fatal(err)
	}

	// Resume in a fresh process: cached cells are served, the rest run,
	// and the folded results match the uninterrupted reference exactly.
	ck2, err := OpenCheckpoint(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer ck2.Close()
	executed.Store(0)
	resumed, err := Run(context.Background(), cells, ckOptions(ck2, 9))
	if err != nil {
		t.Fatal(err)
	}
	if got, want := executed.Load(), int64(3*(len(cells)-stored)); got != want {
		t.Fatalf("resume executed %d replications, want %d", got, want)
	}
	for i := range ref {
		if !reflect.DeepEqual(ref[i].Reps, resumed[i].Reps) {
			t.Fatalf("cell %d: resumed reps diverge from uninterrupted run", i)
		}
	}
}
