// Package exp is the experiment engine: it executes a declarative grid of
// experiment cells — each a named configuration with a per-replication run
// function — as one stream of cell×replication jobs over a single global
// worker pool.
//
// The engine owns the concerns every study used to reimplement:
//
//   - Seeding.  Replication r of every cell draws from rng stream r of the
//     master seed (rng.Streams), so results are bit-identical regardless of
//     worker count or cell order, and identical to running each cell alone.
//   - Scratch.  Each worker owns one scratch value (Options.NewScratch) and
//     hands it to every replication it executes, so steady-state runs reuse
//     buffers instead of allocating.
//   - Cancellation.  The context is honoured between jobs and passed to run
//     functions; a cancelled grid drains promptly and reports ctx.Err().
//   - Isolation.  A panicking replication is recovered and surfaced as a
//     cell-tagged error instead of crashing the process; other cells keep
//     running.
//   - Progress.  An optional hook fires as each cell's final replication
//     completes, with the cell's summed execution time.
//
// Flattening cells×replications into one pool is the point: a 10-cell ×
// 30-replication sweep becomes 300 concurrently schedulable jobs instead of
// ten sequential 30-job pools, so small cells no longer leave workers idle
// at each cell boundary.
package exp

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"gridtrust/internal/rng"
)

// RunFunc executes one replication of a cell.  rep is the replication
// index within the cell; src is the deterministic rng stream derived for
// that index (stream rep of the master seed, identical across cells);
// scratch is the executing worker's scratch value (nil unless
// Options.NewScratch is set) and must not be retained past the call.
// The returned value is collected into CellResult.Reps[rep].
type RunFunc func(ctx context.Context, rep int, src *rng.Source, scratch any) (any, error)

// Cell is one unit of an experiment grid: a named configuration whose
// replications the engine schedules independently.
type Cell struct {
	// Name tags the cell in results, errors and progress events.
	Name string
	// Reps overrides Options.Reps for this cell when positive.
	Reps int
	// Run executes one replication.
	Run RunFunc
}

// Options configure a grid run.
type Options struct {
	// Seed is the master seed; replication r of every cell draws from
	// rng stream r derived from it.
	Seed uint64
	// Reps is the default replication count for cells that do not set
	// their own.
	Reps int
	// Workers bounds the pool (<= 0 selects GOMAXPROCS).
	Workers int
	// NewScratch, when set, constructs one scratch value per worker,
	// passed to every replication that worker executes.
	NewScratch func() any
	// OnCell, when set, is called once per cell as its final replication
	// completes.  Calls are serialised, so the hook may print.
	OnCell func(Progress)
	// Checkpoint, when set, makes the grid resumable: every error-free
	// cell is journalled through it as it drains, and cells found in it
	// are restored without re-executing any replication.  EncodeReps and
	// DecodeReps must also be set.
	Checkpoint *Checkpoint
	// CheckpointSalt namespaces this grid's cells inside a shared
	// checkpoint directory (typically the sweep mode plus any knobs that
	// change cell contents without changing cell names).
	CheckpointSalt string
	// EncodeReps and DecodeReps convert a cell's completed replication
	// slice to and from its durable encoding.  Decoding must invert
	// encoding exactly: restored replications fold through the same
	// aggregation paths as fresh ones.
	EncodeReps func(reps []any) ([]byte, error)
	DecodeReps func(data []byte) ([]any, error)
}

// Progress describes one completed cell.
type Progress struct {
	// Cell and Index identify the cell.
	Cell  string
	Index int
	// Reps is the cell's replication count.
	Reps int
	// Done and Cells count completed cells (including this one) and the
	// grid total.
	Done, Cells int
	// Work is the summed execution time of the cell's replications (not
	// wall clock: replications run concurrently).
	Work time.Duration
	// Err is the cell's error, if any replication failed.
	Err error
	// Cached reports that the cell was restored from Options.Checkpoint
	// instead of executed; Work is zero for cached cells.
	Cached bool
}

// CellResult collects one cell's outputs.
type CellResult struct {
	// Name echoes the cell.
	Name string
	// Reps holds per-replication outputs in replication order.  Entries
	// may be nil for replications skipped by cancellation or failure.
	Reps []any
	// Work is the summed execution time of the replications.
	Work time.Duration
	// Err is the lowest-replication error, tagged with cell name and
	// replication index, or nil.
	Err error
}

// job addresses one replication of one cell.
type job struct{ cell, rep int }

// cellState tracks one cell's completion across workers.
type cellState struct {
	remaining atomic.Int64
	workNanos atomic.Int64
}

// Run executes every cell×replication of the grid on one worker pool and
// returns per-cell results in cell order.  The error is ctx.Err() when the
// grid was cancelled, otherwise the join of all cell errors (nil when every
// replication succeeded).  Partial results are returned alongside a
// non-nil error: cells that completed are intact.
func Run(ctx context.Context, cells []Cell, opts Options) ([]CellResult, error) {
	if len(cells) == 0 {
		return nil, nil
	}
	if opts.Checkpoint != nil && (opts.EncodeReps == nil || opts.DecodeReps == nil) {
		return nil, fmt.Errorf("exp: Options.Checkpoint requires EncodeReps and DecodeReps")
	}
	results := make([]CellResult, len(cells))
	total := 0
	maxReps := 0
	for i := range cells {
		reps := cells[i].Reps
		if reps <= 0 {
			reps = opts.Reps
		}
		if reps <= 0 {
			return nil, fmt.Errorf("exp: cell %q has no replication count and Options.Reps is unset", cells[i].Name)
		}
		if cells[i].Run == nil {
			return nil, fmt.Errorf("exp: cell %q has a nil run function", cells[i].Name)
		}
		results[i] = CellResult{Name: cells[i].Name, Reps: make([]any, reps)}
		total += reps
		if reps > maxReps {
			maxReps = reps
		}
	}
	// Restore cells the checkpoint already holds; their replications are
	// never dispatched.  An entry that fails to decode or carries the
	// wrong replication count is treated as a miss and re-executed.
	keys := make([]string, len(cells))
	cached := make([]bool, len(cells))
	if opts.Checkpoint != nil {
		for i := range cells {
			keys[i] = cellKey(opts.CheckpointSalt, cells[i].Name, opts.Seed, len(results[i].Reps))
			blob, ok := opts.Checkpoint.lookup(keys[i])
			if !ok {
				continue
			}
			reps, err := opts.DecodeReps(blob)
			if err != nil || len(reps) != len(results[i].Reps) {
				continue
			}
			cached[i] = true
			results[i].Reps = reps
			total -= len(reps)
		}
	}

	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > total {
		workers = total
	}

	// Stream r is identical for every cell (it depends only on the master
	// seed), so derive the states once and clone per job.  This preserves
	// the legacy behaviour of running each cell's replications on
	// rng.Streams(seed, reps), and makes results invariant under cell
	// reordering.
	tmpl := rng.Streams(opts.Seed, maxReps)

	states := make([]cellState, len(cells))
	errs := make([][]error, len(cells))
	for i := range cells {
		states[i].remaining.Store(int64(len(results[i].Reps)))
		errs[i] = make([]error, len(results[i].Reps))
	}

	jobs := make(chan job)
	var wg sync.WaitGroup
	var done atomic.Int64
	var hookMu sync.Mutex

	// Cached cells complete up front: count them done and fire their
	// progress events in cell order before any live work starts.
	for i := range cells {
		if !cached[i] {
			continue
		}
		n := done.Add(1)
		if opts.OnCell != nil {
			opts.OnCell(Progress{
				Cell: results[i].Name, Index: i, Reps: len(results[i].Reps),
				Done: int(n), Cells: len(cells), Cached: true,
			})
		}
	}

	// Checkpoint failures must not poison cell results; they are joined
	// into the run error instead, so a sweep never silently loses the
	// durability it was asked for.
	var ckMu sync.Mutex
	var ckErrs []error
	ckFail := func(err error) {
		ckMu.Lock()
		ckErrs = append(ckErrs, err)
		ckMu.Unlock()
	}

	// finishRep folds one completed replication into its cell's state and
	// fires the progress hook when the cell drains.
	finishRep := func(j job, elapsed time.Duration) {
		st := &states[j.cell]
		st.workNanos.Add(int64(elapsed))
		if st.remaining.Add(-1) != 0 {
			return
		}
		res := &results[j.cell]
		res.Work = time.Duration(st.workNanos.Load())
		for rep, err := range errs[j.cell] {
			if err != nil {
				res.Err = fmt.Errorf("exp: cell %q replication %d: %w", res.Name, rep, err)
				break
			}
		}
		if opts.Checkpoint != nil && res.Err == nil {
			if blob, err := opts.EncodeReps(res.Reps); err != nil {
				ckFail(fmt.Errorf("exp: checkpoint encode cell %q: %w", res.Name, err))
			} else if err := opts.Checkpoint.store(keys[j.cell], blob); err != nil {
				ckFail(fmt.Errorf("exp: checkpoint cell %q: %w", res.Name, err))
			}
		}
		n := done.Add(1)
		if opts.OnCell != nil {
			hookMu.Lock()
			opts.OnCell(Progress{
				Cell: res.Name, Index: j.cell, Reps: len(res.Reps),
				Done: int(n), Cells: len(cells), Work: res.Work, Err: res.Err,
			})
			hookMu.Unlock()
		}
	}

	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var scratch any
			if opts.NewScratch != nil {
				scratch = opts.NewScratch()
			}
			for j := range jobs {
				start := time.Now()
				src, err := rng.NewFromState(tmpl[j.rep].State())
				if err == nil {
					var out any
					out, err = runRep(ctx, &cells[j.cell], j.rep, src, scratch)
					results[j.cell].Reps[j.rep] = out
				}
				errs[j.cell][j.rep] = err
				finishRep(j, time.Since(start))
			}
		}()
	}

	// Dispatch all cells×replications as one job stream; stop feeding as
	// soon as the context is cancelled.
	cancelled := false
dispatch:
	for c := range cells {
		if cached[c] {
			continue
		}
		for r := range results[c].Reps {
			select {
			case jobs <- job{cell: c, rep: r}:
			case <-ctx.Done():
				cancelled = true
				break dispatch
			}
		}
	}
	close(jobs)
	wg.Wait()

	if cancelled || ctx.Err() != nil {
		return results, ctx.Err()
	}
	var cellErrs []error
	for i := range results {
		if results[i].Err != nil {
			cellErrs = append(cellErrs, results[i].Err)
		}
	}
	cellErrs = append(cellErrs, ckErrs...)
	return results, errors.Join(cellErrs...)
}

// runRep invokes a cell's run function with panic isolation: a panicking
// replication becomes an error instead of taking down the process.
func runRep(ctx context.Context, c *Cell, rep int, src *rng.Source, scratch any) (out any, err error) {
	defer func() {
		if p := recover(); p != nil {
			out, err = nil, fmt.Errorf("panic: %v", p)
		}
	}()
	return c.Run(ctx, rep, src, scratch)
}
