package exp

import (
	"context"
	"testing"
	"time"

	"gridtrust/internal/rng"
)

// BenchmarkEngineFlattening isolates the scheduling-structure win from
// CPU parallelism by using latency-bound jobs (a 2ms wait stands in for
// any replication whose wall time is not pure local compute).  The
// "serial-cells" shape runs one Run call per cell — each cell's pool
// caps concurrency at its own replication count and drains fully before
// the next cell starts, exactly like the legacy per-study pools.  The
// "global-pool" shape schedules the same cells×reps in one call, so the
// worker pool never idles at cell boundaries.  With 12 cells × 4 reps on
// 8 workers the flattened grid completes in roughly half the wall time
// even on a single-core host.
func BenchmarkEngineFlattening(b *testing.B) {
	const (
		nCells  = 12
		reps    = 4
		workers = 8
		wait    = 2 * time.Millisecond
	)
	cell := Cell{Run: func(ctx context.Context, rep int, src *rng.Source, scratch any) (any, error) {
		timer := time.NewTimer(wait)
		defer timer.Stop()
		select {
		case <-timer.C:
			return nil, nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}}
	cells := make([]Cell, nCells)
	for i := range cells {
		cells[i] = cell
		cells[i].Name = "cell"
	}
	b.Run("serial-cells", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for c := range cells {
				if _, err := Run(context.Background(), cells[c:c+1],
					Options{Seed: 1, Reps: reps, Workers: workers}); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	b.Run("global-pool", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := Run(context.Background(), cells,
				Options{Seed: 1, Reps: reps, Workers: workers}); err != nil {
				b.Fatal(err)
			}
		}
	})
}
