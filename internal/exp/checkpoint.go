package exp

import (
	"encoding/json"
	"fmt"
	"sync"

	"gridtrust/internal/wal"
)

// Checkpoint is a durable cache of completed experiment cells backed by a
// write-ahead log.  Run journals every error-free cell through it as the
// cell drains, and looks cells up before dispatching, so a grid interrupted
// mid-sweep and re-run against the same directory re-executes only the
// cells that never finished.
//
// Cells are keyed by (salt, cell name, master seed, replication count):
// changing any of them is a cache miss, so a checkpoint directory can never
// serve results from a different configuration.  One directory may be
// shared by several grids as long as their salts (or cell names) differ.
type Checkpoint struct {
	mu    sync.Mutex
	log   *wal.Log
	cache map[string]json.RawMessage
}

// checkpointRecord is one journalled cell result.
type checkpointRecord struct {
	Key  string          `json:"key"`
	Reps json.RawMessage `json:"reps"`
}

// OpenCheckpoint opens (or creates) a checkpoint directory and replays its
// log, making previously completed cells visible to lookups.  Later records
// win when a key was stored twice.
func OpenCheckpoint(dir string) (*Checkpoint, error) {
	log, rec, err := wal.Create(dir, wal.Options{})
	if err != nil {
		return nil, err
	}
	cache := make(map[string]json.RawMessage)
	if len(rec.Snapshot) > 0 {
		if err := json.Unmarshal(rec.Snapshot, &cache); err != nil {
			log.Close()
			return nil, fmt.Errorf("exp: checkpoint snapshot: %w", err)
		}
	}
	for _, r := range rec.Records {
		var cr checkpointRecord
		if err := json.Unmarshal(r.Payload, &cr); err != nil {
			log.Close()
			return nil, fmt.Errorf("exp: checkpoint record %d: %w", r.Seq, err)
		}
		cache[cr.Key] = cr.Reps
	}
	return &Checkpoint{log: log, cache: cache}, nil
}

// Len reports the number of cached cells.
func (c *Checkpoint) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.cache)
}

// lookup returns the cached encoding for key.
func (c *Checkpoint) lookup(key string) (json.RawMessage, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	blob, ok := c.cache[key]
	return blob, ok
}

// store journals one completed cell and makes it visible to lookups.  The
// append is synced before store returns: a stored cell survives a kill.
func (c *Checkpoint) store(key string, reps json.RawMessage) error {
	payload, err := json.Marshal(checkpointRecord{Key: key, Reps: reps})
	if err != nil {
		return err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, err := c.log.Append(payload); err != nil {
		return err
	}
	c.cache[key] = reps
	return nil
}

// Compact folds every cached cell into one snapshot and drops the record
// tail, bounding the directory for long-lived sweep series.
func (c *Checkpoint) Compact() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	blob, err := json.Marshal(c.cache)
	if err != nil {
		return err
	}
	return c.log.Snapshot(c.log.NextSeq(), blob)
}

// Close releases the underlying log.
func (c *Checkpoint) Close() error { return c.log.Close() }

// cellKey derives the durable identity of one cell's result set.
func cellKey(salt, name string, seed uint64, reps int) string {
	return fmt.Sprintf("%s|%s|seed=%d|reps=%d", salt, name, seed, reps)
}
