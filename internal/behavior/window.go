package behavior

import (
	"fmt"
	"math"
)

// WindowTracker estimates a counterpart's recent reliability from a
// sliding window of scored transactions.  Where the trust engine's EWMA
// answers "what do I believe overall", the window answers the operational
// questions a monitoring agent acts on: what is the recent incident rate,
// is behaviour degrading, has the counterpart produced enough evidence to
// judge at all ("a significant amount of transactional data",
// Section 3.1).
type WindowTracker struct {
	size    int
	scores  []float64
	times   []float64
	next    int
	count   int
	total   int64
	badness float64 // score threshold counting as an incident
}

// NewWindowTracker builds a tracker over the last `size` transactions;
// scores at or below incidentBelow count as incidents.
func NewWindowTracker(size int, incidentBelow float64) (*WindowTracker, error) {
	if size < 1 {
		return nil, fmt.Errorf("behavior: window size %d < 1", size)
	}
	if incidentBelow < 1 || incidentBelow > 6 {
		return nil, fmt.Errorf("behavior: incident threshold %g outside the trust scale", incidentBelow)
	}
	return &WindowTracker{
		size:    size,
		scores:  make([]float64, size),
		times:   make([]float64, size),
		badness: incidentBelow,
	}, nil
}

// Record adds one scored transaction at time now.
func (w *WindowTracker) Record(score, now float64) error {
	if score < 1 || score > 6 || math.IsNaN(score) {
		return fmt.Errorf("behavior: score %g outside the trust scale", score)
	}
	w.scores[w.next] = score
	w.times[w.next] = now
	w.next = (w.next + 1) % w.size
	if w.count < w.size {
		w.count++
	}
	w.total++
	return nil
}

// Count returns how many transactions are currently in the window; Total
// returns how many were ever recorded.
func (w *WindowTracker) Count() int   { return w.count }
func (w *WindowTracker) Total() int64 { return w.total }

// Mean returns the mean score over the window, or NaN when empty.
func (w *WindowTracker) Mean() float64 {
	if w.count == 0 {
		return math.NaN()
	}
	sum := 0.0
	for i := 0; i < w.count; i++ {
		sum += w.scores[i]
	}
	return sum / float64(w.count)
}

// IncidentRate returns the fraction of windowed transactions at or below
// the incident threshold, or NaN when empty.
func (w *WindowTracker) IncidentRate() float64 {
	if w.count == 0 {
		return math.NaN()
	}
	bad := 0
	for i := 0; i < w.count; i++ {
		if w.scores[i] <= w.badness {
			bad++
		}
	}
	return float64(bad) / float64(w.count)
}

// Trend returns the mean of the newer half of the window minus the mean
// of the older half: negative means behaviour is degrading.  It returns 0
// until the window holds at least four samples.
func (w *WindowTracker) Trend() float64 {
	if w.count < 4 {
		return 0
	}
	// Reconstruct chronological order from the ring.
	ordered := make([]float64, 0, w.count)
	start := 0
	if w.count == w.size {
		start = w.next
	}
	for i := 0; i < w.count; i++ {
		ordered = append(ordered, w.scores[(start+i)%w.size])
	}
	half := len(ordered) / 2
	var oldSum, newSum float64
	for i := 0; i < half; i++ {
		oldSum += ordered[i]
	}
	for i := half; i < len(ordered); i++ {
		newSum += ordered[i]
	}
	return newSum/float64(len(ordered)-half) - oldSum/float64(half)
}

// Significant reports whether the window holds at least `need` samples —
// the gate before an agent commits a table revision.
func (w *WindowTracker) Significant(need int) bool {
	return w.count >= need
}
