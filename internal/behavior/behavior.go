// Package behavior turns raw transaction telemetry into the trust-outcome
// scores the engine consumes — the paper's closing future-work item:
// "mechanisms for determining trust values from ongoing transactions"
// (Section 7).
//
// A Scorer maps an observed TransactionRecord (deadline adherence, result
// integrity, policy violations, security incidents) onto the paper's
// numeric trust scale [1,6].  The default scorer is deliberately simple
// and auditable: it starts from perfect trust and applies multiplicative
// penalties per violation class, with hard floors for the incidents the
// paper's threat scenarios call out (snooping by the resource,
// interference by the task).
package behavior

import (
	"fmt"
	"math"

	"gridtrust/internal/trust"
)

// TransactionRecord is the telemetry for one completed Grid transaction,
// as a monitoring agent would observe it.
type TransactionRecord struct {
	// PromisedDuration and ActualDuration measure timeliness; a zero
	// PromisedDuration means no deadline was agreed.
	PromisedDuration float64
	ActualDuration   float64

	// Completed is false when the task was dropped or crashed on the
	// resource side.
	Completed bool

	// ResultIntegrityOK is false when output verification failed (wrong
	// or tampered results).
	ResultIntegrityOK bool

	// PolicyViolations counts administrative violations (quota abuse,
	// unauthorized activity requests).
	PolicyViolations int

	// SecurityIncident marks detected snooping/interference — the
	// behaviour the paper's sandboxing and encryption guard against.
	SecurityIncident bool
}

// Scorer maps telemetry to an outcome score on [1,6].
type Scorer interface {
	Score(rec TransactionRecord) (float64, error)
}

// Weights parameterise the default scorer.  The zero value is invalid;
// use DefaultWeights.
type Weights struct {
	// LatenessHalf is the relative lateness ((actual−promised)/promised)
	// at which the timeliness factor drops to 0.5.
	LatenessHalf float64
	// PolicyPenalty is the multiplicative factor applied per policy
	// violation (e.g. 0.7 → two violations retain 49% of the score).
	PolicyPenalty float64
	// IncompleteFactor scales the score when the task did not complete.
	IncompleteFactor float64
	// IntegrityFactor scales the score when result integrity failed.
	IntegrityFactor float64
	// IncidentCeiling caps the score when a security incident occurred;
	// incidents are trust-destroying regardless of timeliness.
	IncidentCeiling float64
}

// DefaultWeights are calibrated so that: a clean on-time transaction
// scores 6; modest lateness erodes toward the middle of the scale; any
// security incident caps the outcome at the bottom level.
func DefaultWeights() Weights {
	return Weights{
		LatenessHalf:     1.0,
		PolicyPenalty:    0.7,
		IncompleteFactor: 0.4,
		IntegrityFactor:  0.3,
		IncidentCeiling:  trust.MinScore,
	}
}

// validate rejects unusable weights.
func (w Weights) validate() error {
	switch {
	case w.LatenessHalf <= 0:
		return fmt.Errorf("behavior: LatenessHalf must be positive, got %g", w.LatenessHalf)
	case w.PolicyPenalty <= 0 || w.PolicyPenalty > 1:
		return fmt.Errorf("behavior: PolicyPenalty must be in (0,1], got %g", w.PolicyPenalty)
	case w.IncompleteFactor < 0 || w.IncompleteFactor > 1:
		return fmt.Errorf("behavior: IncompleteFactor must be in [0,1], got %g", w.IncompleteFactor)
	case w.IntegrityFactor < 0 || w.IntegrityFactor > 1:
		return fmt.Errorf("behavior: IntegrityFactor must be in [0,1], got %g", w.IntegrityFactor)
	case w.IncidentCeiling < trust.MinScore || w.IncidentCeiling > trust.MaxScore:
		return fmt.Errorf("behavior: IncidentCeiling outside the trust scale: %g", w.IncidentCeiling)
	}
	return nil
}

// DefaultScorer is the rule-based scorer described in the package
// comment.
type DefaultScorer struct {
	w Weights
}

// NewScorer builds a DefaultScorer from weights.
func NewScorer(w Weights) (*DefaultScorer, error) {
	if err := w.validate(); err != nil {
		return nil, err
	}
	return &DefaultScorer{w: w}, nil
}

// MustDefaultScorer returns a scorer with DefaultWeights.
func MustDefaultScorer() *DefaultScorer {
	s, err := NewScorer(DefaultWeights())
	if err != nil {
		panic(err)
	}
	return s
}

// Score implements Scorer.  The result is always on [1,6].
func (s *DefaultScorer) Score(rec TransactionRecord) (float64, error) {
	if rec.ActualDuration < 0 || rec.PromisedDuration < 0 {
		return 0, fmt.Errorf("behavior: negative durations %g/%g",
			rec.PromisedDuration, rec.ActualDuration)
	}
	if math.IsNaN(rec.ActualDuration) || math.IsNaN(rec.PromisedDuration) {
		return 0, fmt.Errorf("behavior: NaN duration")
	}

	// Quality q on [0,1]: the fraction of the trust span above the floor
	// the transaction earns.
	q := 1.0

	// Timeliness: relative lateness L shrinks q as 1/(1 + L/half).
	if rec.PromisedDuration > 0 && rec.ActualDuration > rec.PromisedDuration {
		lateness := (rec.ActualDuration - rec.PromisedDuration) / rec.PromisedDuration
		q *= 1 / (1 + lateness/s.w.LatenessHalf)
	}
	if !rec.Completed {
		q *= s.w.IncompleteFactor
	}
	if !rec.ResultIntegrityOK {
		q *= s.w.IntegrityFactor
	}
	for i := 0; i < rec.PolicyViolations; i++ {
		q *= s.w.PolicyPenalty
	}

	score := trust.MinScore + q*(trust.MaxScore-trust.MinScore)
	if rec.SecurityIncident && score > s.w.IncidentCeiling {
		score = s.w.IncidentCeiling
	}
	// Numerical safety: q ∈ [0,1] keeps score on scale, but guard anyway.
	if score < trust.MinScore {
		score = trust.MinScore
	}
	if score > trust.MaxScore {
		score = trust.MaxScore
	}
	return score, nil
}

// ScoreToTransaction packages a scored record as an engine transaction.
func ScoreToTransaction(s Scorer, rec TransactionRecord, from, to trust.EntityID, ctx trust.Context, now float64) (trust.Transaction, error) {
	outcome, err := s.Score(rec)
	if err != nil {
		return trust.Transaction{}, err
	}
	return trust.Transaction{From: from, To: to, Ctx: ctx, Outcome: outcome, Now: now}, nil
}
