// Property tests pitting the fault package's adversary phase machines
// against every registered trust model.  Like adversary_property_test.go
// they live in the external test package because fault imports behavior:
// adversary transactions are scored by the behavior scorer, then replayed
// into each trust policy, closing the loop transaction → score → trust.
package behavior_test

import (
	"fmt"
	"testing"

	"gridtrust/internal/behavior"
	"gridtrust/internal/fault"
	"gridtrust/internal/rng"
	"gridtrust/internal/trust"
)

const modelCtx = trust.Context("compute")

// newPropModel builds a model with the fault-study configuration: no
// decay (time-independent scores) and the neutral initial score.
func newPropModel(t *testing.T, name string) trust.Model {
	t.Helper()
	m, err := trust.NewModel(name, trust.Config{Alpha: 0.3, Beta: 0.7, InitialScore: 3.5})
	if err != nil {
		t.Fatalf("model %q: %v", name, err)
	}
	return m
}

// assertNeverBeatsHonestModel replays an adversary's scored transactions
// into a trust model in lockstep with an honest twin and checks that at
// every step — and therefore in steady state — the adversary's trust
// never exceeds the twin's.  period > 0 gives both actors fresh
// identities every period transactions (the whitewash move): the twin
// resets too, so the comparison is against an honest identity of the
// same age — whitewashing must not beat simply being new and honest.
func assertNeverBeatsHonestModel(t *testing.T, modelName, advName string, scores []float64, period int) {
	t.Helper()
	m := newPropModel(t, modelName)
	asker := trust.EntityID("asker")
	ident := func(prefix string, i int) trust.EntityID {
		if period <= 0 {
			return trust.EntityID(prefix)
		}
		return trust.EntityID(fmt.Sprintf("%s#%d", prefix, i/period))
	}
	for i, s := range scores {
		now := float64(i)
		adv, hon := ident("adv", i), ident("honest", i)
		if _, err := m.Observe(asker, adv, modelCtx, s, now); err != nil {
			t.Fatalf("%s/%s: observe adversary at %d: %v", modelName, advName, i, err)
		}
		if _, err := m.Observe(asker, hon, modelCtx, trust.MaxScore, now); err != nil {
			t.Fatalf("%s/%s: observe honest at %d: %v", modelName, advName, i, err)
		}
		ta, err := m.Trust(asker, adv, modelCtx, now)
		if err != nil {
			t.Fatalf("%s/%s: trust adversary at %d: %v", modelName, advName, i, err)
		}
		th, err := m.Trust(asker, hon, modelCtx, now)
		if err != nil {
			t.Fatalf("%s/%s: trust honest at %d: %v", modelName, advName, i, err)
		}
		if ta > th+1e-9 {
			t.Fatalf("%s/%s: step %d: adversary trust %.6f beats honest %.6f",
				modelName, advName, i, ta, th)
		}
	}
}

// TestOscillatorNeverBeatsHonestPerModel checks that under every
// registered trust model an oscillating actor's score never exceeds an
// honest actor's observed in lockstep, at any point of either phase.
func TestOscillatorNeverBeatsHonestPerModel(t *testing.T) {
	shapes := []fault.Oscillator{
		{GoodRun: 10, BadRun: 5},
		{GoodRun: 3, BadRun: 1},
		{GoodRun: 1, BadRun: 1},
	}
	for _, modelName := range trust.ModelNames() {
		for _, shape := range shapes {
			for _, prob := range []float64{0, 1} {
				shape.IncidentProb = prob
				recs, err := shape.Records(rng.New(7), 150)
				if err != nil {
					t.Fatal(err)
				}
				name := fmt.Sprintf("osc(%d,%d,p=%g)", shape.GoodRun, shape.BadRun, prob)
				assertNeverBeatsHonestModel(t, modelName, name, scoreAll(t, recs), 0)
			}
		}
	}
}

// TestWhitewasherNeverBeatsHonestPerModel checks that under every
// registered trust model a whitewashing actor — defect, shed the
// identity, return clean — never outscores an honest identity of the
// same age.  Shedding history must never be an upgrade over honesty.
func TestWhitewasherNeverBeatsHonestPerModel(t *testing.T) {
	shapes := []fault.Whitewasher{
		{CleanRun: 5, Period: 20},
		{CleanRun: 1, Period: 4},
	}
	for _, modelName := range trust.ModelNames() {
		for _, shape := range shapes {
			for _, prob := range []float64{0, 1} {
				shape.IncidentProb = prob
				recs, err := shape.Records(rng.New(11), 160)
				if err != nil {
					t.Fatal(err)
				}
				name := fmt.Sprintf("ww(%d,%d,p=%g)", shape.CleanRun, shape.Period, prob)
				assertNeverBeatsHonestModel(t, modelName, name, scoreAll(t, recs), shape.Period)
			}
		}
	}
}

// TestLyingCliqueCannotBeatDirectExperienceUnderPurging feeds the asker
// enough bad direct experience to anchor the purge model's deviation
// test, then has a five-liar clique claim the maximum score for the
// colluder.  Under purging the clique's claims are discarded and trust
// cannot rise above the asker's own direct-experience score; under the
// paper's plain weighted average the same clique does drag trust up,
// which is exactly the vulnerability purging removes.
func TestLyingCliqueCannotBeatDirectExperienceUnderPurging(t *testing.T) {
	feed := func(m trust.Model) (direct, overall float64) {
		t.Helper()
		asker := trust.EntityID("asker")
		colluder := trust.EntityID("colluder")
		// Four bad transactions: past the purge model's direct-evidence
		// minimum, so Θ itself is the deviation reference.
		scorer := behavior.MustDefaultScorer()
		for i, rec := range fault.HonestRecords(4) {
			rec.Completed = false // detected incident → score 1
			s, err := scorer.Score(rec)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := m.Observe(asker, colluder, modelCtx, s, float64(i)); err != nil {
				t.Fatal(err)
			}
		}
		for i := 0; i < 5; i++ {
			liar := trust.EntityID(fmt.Sprintf("liar:%d", i))
			if err := m.SetDirect(liar, colluder, modelCtx, trust.MaxScore, 4); err != nil {
				t.Fatal(err)
			}
		}
		direct, err := m.Direct(asker, colluder, modelCtx, 10)
		if err != nil {
			t.Fatal(err)
		}
		overall, err = m.Trust(asker, colluder, modelCtx, 10)
		if err != nil {
			t.Fatal(err)
		}
		return direct, overall
	}

	direct, overall := feed(newPropModel(t, "purge"))
	if overall > direct+1e-9 {
		t.Fatalf("purge: clique raised trust to %.6f above direct experience %.6f", overall, direct)
	}

	// Control: the undefended average must be movable by the same clique,
	// or the assertion above would be vacuous.
	pDirect, pOverall := feed(newPropModel(t, trust.DefaultModel))
	if pOverall <= pDirect {
		t.Fatalf("paper control: clique failed to move trust (%.6f vs direct %.6f); purge test is vacuous",
			pOverall, pDirect)
	}
}
