// Property tests pitting the fault package's adversary phase machines
// against the windowed reliability tracker.  They live in an external test
// package because fault imports behavior: the adversaries are defined over
// behavior.TransactionRecord, and these tests close the loop by asserting
// the tracker is never fooled by them.
package behavior_test

import (
	"fmt"
	"math"
	"testing"

	"gridtrust/internal/behavior"
	"gridtrust/internal/fault"
	"gridtrust/internal/rng"
	"gridtrust/internal/trust"
)

// maxDefectScore is the best outcome a single defection can earn under
// DefaultWeights: a 150% late, integrity-failed delivery scores
// 1 + (1/(1+1.5))·0.3·5 = 1.6; a detected incident scores 1.  Both sit
// under the incident threshold used below.
const maxDefectScore = 1.6

// incidentThreshold classifies every defection — and no clean
// transaction — as an incident for the window's IncidentRate.
const incidentThreshold = 2.0

// scoreAll runs a record sequence through the default scorer.
func scoreAll(t *testing.T, recs []behavior.TransactionRecord) []float64 {
	t.Helper()
	scorer := behavior.MustDefaultScorer()
	scores := make([]float64, len(recs))
	for i, rec := range recs {
		s, err := scorer.Score(rec)
		if err != nil {
			t.Fatalf("score record %d: %v", i, err)
		}
		scores[i] = s
	}
	return scores
}

// assertNeverBeatsHonest replays an adversary's scored transactions
// against a window tracker and checks, after every single transaction:
//
//  1. the adversary's windowed mean never exceeds the honest baseline
//     (a clean actor's window sits at trust.MaxScore exactly);
//  2. once the window contains d defections, the mean is bounded away
//     from honest by at least d·(MaxScore−maxDefectScore)/count — each
//     defection costs at least the worst-defect gap, so no phase
//     schedule can launder a defection into an honest-looking window;
//  3. the incident rate equals exactly the windowed defection share.
func assertNeverBeatsHonest(t *testing.T, name string, scores []float64, windowSize int) {
	t.Helper()
	w, err := behavior.NewWindowTracker(windowSize, incidentThreshold)
	if err != nil {
		t.Fatal(err)
	}
	defect := make([]bool, len(scores))
	for i, s := range scores {
		defect[i] = s < trust.MaxScore
	}
	for i, s := range scores {
		if err := w.Record(s, float64(i)); err != nil {
			t.Fatalf("%s: record %d: %v", name, i, err)
		}
		lo := 0
		if i-windowSize+1 > 0 {
			lo = i - windowSize + 1
		}
		inWindow := 0
		for j := lo; j <= i; j++ {
			if defect[j] {
				inWindow++
			}
		}
		count := float64(w.Count())
		mean := w.Mean()
		if mean > trust.MaxScore+1e-12 {
			t.Fatalf("%s: step %d: windowed mean %.6f beats the honest baseline", name, i, mean)
		}
		bound := trust.MaxScore - float64(inWindow)*(trust.MaxScore-maxDefectScore)/count
		if mean > bound+1e-9 {
			t.Fatalf("%s: step %d: mean %.6f above defection bound %.6f (%d defections in window)",
				name, i, mean, bound, inWindow)
		}
		wantRate := float64(inWindow) / count
		if got := w.IncidentRate(); math.Abs(got-wantRate) > 1e-12 {
			t.Fatalf("%s: step %d: incident rate %.6f, want %.6f", name, i, got, wantRate)
		}
	}
}

func TestHonestBaselineWindow(t *testing.T) {
	scores := scoreAll(t, fault.HonestRecords(100))
	w, err := behavior.NewWindowTracker(16, incidentThreshold)
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range scores {
		if s != trust.MaxScore {
			t.Fatalf("honest record %d scored %g, want %g", i, s, trust.MaxScore)
		}
		if err := w.Record(s, float64(i)); err != nil {
			t.Fatal(err)
		}
	}
	if w.Mean() != trust.MaxScore || w.IncidentRate() != 0 || w.Trend() != 0 {
		t.Fatalf("honest window mean %g rate %g trend %g", w.Mean(), w.IncidentRate(), w.Trend())
	}
}

func TestOscillatorNeverBeatsHonestWindow(t *testing.T) {
	shapes := []fault.Oscillator{
		{GoodRun: 10, BadRun: 5},
		{GoodRun: 20, BadRun: 20},
		{GoodRun: 3, BadRun: 1},
		{GoodRun: 1, BadRun: 1},
	}
	for _, shape := range shapes {
		for _, prob := range []float64{0, 0.5, 1} {
			for seed := uint64(1); seed <= 3; seed++ {
				shape.IncidentProb = prob
				recs, err := shape.Records(rng.New(seed), 200)
				if err != nil {
					t.Fatal(err)
				}
				scores := scoreAll(t, recs)
				for _, size := range []int{8, 32} {
					name := fmt.Sprintf("osc(%d,%d,p=%g,seed=%d,w=%d)",
						shape.GoodRun, shape.BadRun, prob, seed, size)
					assertNeverBeatsHonest(t, name, scores, size)
				}
			}
		}
	}
}

func TestWhitewasherNeverBeatsHonestWindow(t *testing.T) {
	shapes := []fault.Whitewasher{
		{CleanRun: 5, Period: 20},
		{CleanRun: 10, Period: 15},
		{CleanRun: 1, Period: 4},
	}
	for _, shape := range shapes {
		for _, prob := range []float64{0, 0.5, 1} {
			for seed := uint64(1); seed <= 3; seed++ {
				shape.IncidentProb = prob
				recs, err := shape.Records(rng.New(seed), 200)
				if err != nil {
					t.Fatal(err)
				}
				scores := scoreAll(t, recs)
				for _, size := range []int{8, 32} {
					name := fmt.Sprintf("ww(%d,%d,p=%g,seed=%d,w=%d)",
						shape.CleanRun, shape.Period, prob, seed, size)
					assertNeverBeatsHonest(t, name, scores, size)
				}
			}
		}
	}
}

// TestOscillatorCollapseIsVisibleInTrend checks the operational signal:
// when an oscillator flips from its good run into its bad run, the
// window's trend goes negative before the bad run ends — a monitoring
// agent watching Trend sees the collapse while it is happening, not
// after.
func TestOscillatorCollapseIsVisibleInTrend(t *testing.T) {
	shape := fault.Oscillator{GoodRun: 20, BadRun: 10, IncidentProb: 0}
	recs, err := shape.Records(rng.New(7), 30)
	if err != nil {
		t.Fatal(err)
	}
	scores := scoreAll(t, recs)
	w, err := behavior.NewWindowTracker(10, incidentThreshold)
	if err != nil {
		t.Fatal(err)
	}
	sawCollapse := false
	for i, s := range scores {
		if err := w.Record(s, float64(i)); err != nil {
			t.Fatal(err)
		}
		if i >= shape.GoodRun && w.Trend() < 0 {
			sawCollapse = true
		}
	}
	if !sawCollapse {
		t.Fatal("trend never went negative during the oscillator's bad run")
	}
}

// TestWhitewasherHoneymoonStaysShort checks that a fresh identity's
// honeymoon cannot outlast the evidence gate: with a significance
// requirement at least as long as the clean run, every window that
// passes Significant already contains defections, so a whitewasher is
// never judged on honeymoon data alone.
func TestWhitewasherHoneymoonStaysShort(t *testing.T) {
	shape := fault.Whitewasher{CleanRun: 5, Period: 12, IncidentProb: 0.5}
	recs, err := shape.Records(rng.New(11), 120)
	if err != nil {
		t.Fatal(err)
	}
	scores := scoreAll(t, recs)
	need := shape.CleanRun + 1
	// The tracker restarts at every identity reset, as a real registry
	// would open a fresh history for an unrecognised newcomer.
	for start := 0; start < len(scores); start += shape.Period {
		w, err := behavior.NewWindowTracker(shape.Period, incidentThreshold)
		if err != nil {
			t.Fatal(err)
		}
		end := start + shape.Period
		if end > len(scores) {
			end = len(scores)
		}
		for i := start; i < end; i++ {
			if err := w.Record(scores[i], float64(i)); err != nil {
				t.Fatal(err)
			}
			if w.Significant(need) && w.IncidentRate() == 0 {
				t.Fatalf("identity starting at %d passed the evidence gate with a clean window at step %d",
					start, i)
			}
		}
	}
}
