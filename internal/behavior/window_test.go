package behavior

import (
	"math"
	"testing"
)

func mustTracker(t *testing.T, size int, thresh float64) *WindowTracker {
	t.Helper()
	w, err := NewWindowTracker(size, thresh)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestWindowTrackerValidation(t *testing.T) {
	if _, err := NewWindowTracker(0, 2); err == nil {
		t.Error("zero size accepted")
	}
	if _, err := NewWindowTracker(5, 0.5); err == nil {
		t.Error("off-scale threshold accepted")
	}
	w := mustTracker(t, 4, 2)
	if err := w.Record(0.5, 0); err == nil {
		t.Error("off-scale score accepted")
	}
	if err := w.Record(math.NaN(), 0); err == nil {
		t.Error("NaN score accepted")
	}
}

func TestWindowTrackerEmpty(t *testing.T) {
	w := mustTracker(t, 4, 2)
	if !math.IsNaN(w.Mean()) || !math.IsNaN(w.IncidentRate()) {
		t.Error("empty window should report NaN")
	}
	if w.Trend() != 0 {
		t.Error("empty window trend should be 0")
	}
	if w.Significant(1) {
		t.Error("empty window should not be significant")
	}
}

func TestWindowTrackerMeanAndIncidents(t *testing.T) {
	w := mustTracker(t, 10, 2)
	for i, s := range []float64{6, 6, 1, 6} {
		if err := w.Record(s, float64(i)); err != nil {
			t.Fatal(err)
		}
	}
	if got := w.Mean(); math.Abs(got-4.75) > 1e-12 {
		t.Fatalf("mean = %g, want 4.75", got)
	}
	if got := w.IncidentRate(); math.Abs(got-0.25) > 1e-12 {
		t.Fatalf("incident rate = %g, want 0.25", got)
	}
	if w.Count() != 4 || w.Total() != 4 {
		t.Fatalf("count/total = %d/%d", w.Count(), w.Total())
	}
}

func TestWindowTrackerSlides(t *testing.T) {
	w := mustTracker(t, 3, 2)
	for i, s := range []float64{1, 1, 1, 6, 6, 6} {
		if err := w.Record(s, float64(i)); err != nil {
			t.Fatal(err)
		}
	}
	// Only the last three scores remain.
	if got := w.Mean(); got != 6 {
		t.Fatalf("windowed mean = %g, want 6", got)
	}
	if got := w.IncidentRate(); got != 0 {
		t.Fatalf("windowed incident rate = %g, want 0", got)
	}
	if w.Count() != 3 || w.Total() != 6 {
		t.Fatalf("count/total = %d/%d", w.Count(), w.Total())
	}
}

func TestWindowTrackerTrend(t *testing.T) {
	w := mustTracker(t, 8, 2)
	// Degrading: good scores followed by bad ones.
	for i, s := range []float64{6, 6, 6, 6, 2, 2, 2, 2} {
		if err := w.Record(s, float64(i)); err != nil {
			t.Fatal(err)
		}
	}
	if got := w.Trend(); got >= 0 {
		t.Fatalf("degrading trend = %g, want negative", got)
	}
	// Improving case, exercising the wrapped ring.
	w2 := mustTracker(t, 4, 2)
	for i, s := range []float64{1, 1, 1, 1, 1, 1, 6, 6} {
		if err := w2.Record(s, float64(i)); err != nil {
			t.Fatal(err)
		}
	}
	if got := w2.Trend(); got <= 0 {
		t.Fatalf("improving trend = %g, want positive", got)
	}
}

func TestWindowTrackerSignificance(t *testing.T) {
	w := mustTracker(t, 10, 2)
	for i := 0; i < 5; i++ {
		if err := w.Record(4, float64(i)); err != nil {
			t.Fatal(err)
		}
	}
	if !w.Significant(5) {
		t.Error("five samples should satisfy need=5")
	}
	if w.Significant(6) {
		t.Error("five samples should not satisfy need=6")
	}
}

// TestWindowTrackerWithScorer wires the tracker behind the default scorer
// the way a monitoring agent would.
func TestWindowTrackerWithScorer(t *testing.T) {
	s := MustDefaultScorer()
	w := mustTracker(t, 20, 2)
	for i := 0; i < 10; i++ {
		rec := clean()
		rec.SecurityIncident = i%2 == 0 // every other transaction snoops
		score, err := s.Score(rec)
		if err != nil {
			t.Fatal(err)
		}
		if err := w.Record(score, float64(i)); err != nil {
			t.Fatal(err)
		}
	}
	if got := w.IncidentRate(); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("incident rate = %g, want 0.5", got)
	}
}
