package behavior

import (
	"math"
	"testing"
	"testing/quick"

	"gridtrust/internal/trust"
)

func clean() TransactionRecord {
	return TransactionRecord{
		PromisedDuration:  100,
		ActualDuration:    90,
		Completed:         true,
		ResultIntegrityOK: true,
	}
}

func TestCleanTransactionScoresTop(t *testing.T) {
	s := MustDefaultScorer()
	got, err := s.Score(clean())
	if err != nil {
		t.Fatal(err)
	}
	if got != trust.MaxScore {
		t.Fatalf("clean transaction scored %g, want %g", got, trust.MaxScore)
	}
}

func TestEarlyFinishIsNotPenalised(t *testing.T) {
	s := MustDefaultScorer()
	rec := clean()
	rec.ActualDuration = 10 // far ahead of the deadline
	got, err := s.Score(rec)
	if err != nil {
		t.Fatal(err)
	}
	if got != trust.MaxScore {
		t.Fatalf("early finish scored %g", got)
	}
}

func TestLatenessDegradesSmoothly(t *testing.T) {
	s := MustDefaultScorer()
	prev := trust.MaxScore
	for _, actual := range []float64{100, 150, 200, 400, 1000} {
		rec := clean()
		rec.ActualDuration = actual
		got, err := s.Score(rec)
		if err != nil {
			t.Fatal(err)
		}
		if got > prev {
			t.Fatalf("score not monotone in lateness at %g: %g > %g", actual, got, prev)
		}
		prev = got
	}
	// At 100% lateness (LatenessHalf=1) the quality halves: 1 + 0.5*5 = 3.5.
	rec := clean()
	rec.ActualDuration = 200
	got, _ := s.Score(rec)
	if math.Abs(got-3.5) > 1e-9 {
		t.Fatalf("double-duration score = %g, want 3.5", got)
	}
}

func TestNoDeadlineMeansNoTimelinessPenalty(t *testing.T) {
	s := MustDefaultScorer()
	rec := clean()
	rec.PromisedDuration = 0
	rec.ActualDuration = 1e9
	got, err := s.Score(rec)
	if err != nil {
		t.Fatal(err)
	}
	if got != trust.MaxScore {
		t.Fatalf("deadline-free transaction scored %g", got)
	}
}

func TestSecurityIncidentCapsScore(t *testing.T) {
	s := MustDefaultScorer()
	rec := clean()
	rec.SecurityIncident = true
	got, err := s.Score(rec)
	if err != nil {
		t.Fatal(err)
	}
	if got != trust.MinScore {
		t.Fatalf("security incident scored %g, want the floor %g", got, trust.MinScore)
	}
}

func TestIncompleteAndIntegrityFactors(t *testing.T) {
	s := MustDefaultScorer()
	rec := clean()
	rec.Completed = false
	got, _ := s.Score(rec)
	// q = 0.4 → 1 + 0.4*5 = 3.
	if math.Abs(got-3) > 1e-9 {
		t.Fatalf("incomplete scored %g, want 3", got)
	}
	rec = clean()
	rec.ResultIntegrityOK = false
	got, _ = s.Score(rec)
	// q = 0.3 → 1 + 1.5 = 2.5.
	if math.Abs(got-2.5) > 1e-9 {
		t.Fatalf("integrity failure scored %g, want 2.5", got)
	}
}

func TestPolicyViolationsCompound(t *testing.T) {
	s := MustDefaultScorer()
	rec := clean()
	rec.PolicyViolations = 1
	one, _ := s.Score(rec)
	rec.PolicyViolations = 2
	two, _ := s.Score(rec)
	if !(two < one && one < trust.MaxScore) {
		t.Fatalf("policy penalties not compounding: %g, %g", one, two)
	}
	// 1 + 0.7*5 = 4.5; 1 + 0.49*5 = 3.45.
	if math.Abs(one-4.5) > 1e-9 || math.Abs(two-3.45) > 1e-9 {
		t.Fatalf("penalty math wrong: %g, %g", one, two)
	}
}

func TestScoreAlwaysOnScaleProperty(t *testing.T) {
	s := MustDefaultScorer()
	f := func(promised, actual uint16, violations uint8, completed, integrity, incident bool) bool {
		rec := TransactionRecord{
			PromisedDuration:  float64(promised),
			ActualDuration:    float64(actual),
			Completed:         completed,
			ResultIntegrityOK: integrity,
			PolicyViolations:  int(violations % 20),
			SecurityIncident:  incident,
		}
		got, err := s.Score(rec)
		if err != nil {
			return false
		}
		return got >= trust.MinScore && got <= trust.MaxScore
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestScoreRejectsBadDurations(t *testing.T) {
	s := MustDefaultScorer()
	rec := clean()
	rec.ActualDuration = -1
	if _, err := s.Score(rec); err == nil {
		t.Error("accepted negative duration")
	}
	rec = clean()
	rec.PromisedDuration = math.NaN()
	if _, err := s.Score(rec); err == nil {
		t.Error("accepted NaN duration")
	}
}

func TestWeightsValidation(t *testing.T) {
	bad := []Weights{
		{LatenessHalf: 0, PolicyPenalty: 0.5, IncidentCeiling: 1},
		{LatenessHalf: 1, PolicyPenalty: 0, IncidentCeiling: 1},
		{LatenessHalf: 1, PolicyPenalty: 1.5, IncidentCeiling: 1},
		{LatenessHalf: 1, PolicyPenalty: 0.5, IncompleteFactor: -0.1, IncidentCeiling: 1},
		{LatenessHalf: 1, PolicyPenalty: 0.5, IntegrityFactor: 2, IncidentCeiling: 1},
		{LatenessHalf: 1, PolicyPenalty: 0.5, IncidentCeiling: 9},
	}
	for i, w := range bad {
		if _, err := NewScorer(w); err == nil {
			t.Errorf("weights %d accepted: %+v", i, w)
		}
	}
	if _, err := NewScorer(DefaultWeights()); err != nil {
		t.Fatalf("default weights rejected: %v", err)
	}
}

func TestScoreToTransaction(t *testing.T) {
	s := MustDefaultScorer()
	tx, err := ScoreToTransaction(s, clean(), "cd:0", "rd:1", "compute", 42)
	if err != nil {
		t.Fatal(err)
	}
	if tx.From != "cd:0" || tx.To != "rd:1" || tx.Ctx != "compute" || tx.Now != 42 {
		t.Fatalf("transaction fields wrong: %+v", tx)
	}
	if tx.Outcome != trust.MaxScore {
		t.Fatalf("outcome %g", tx.Outcome)
	}
	bad := clean()
	bad.ActualDuration = -5
	if _, err := ScoreToTransaction(s, bad, "a", "b", "c", 0); err == nil {
		t.Fatal("bad record accepted")
	}
}

// TestEndToEndWithEngine drives scored outcomes into a trust engine: a
// reliable resource's trust climbs while an unreliable one's sinks.
func TestEndToEndWithEngine(t *testing.T) {
	engine, err := trust.NewEngine(trust.Config{Alpha: 1, Beta: 0, Smoothing: 0.5, InitialScore: 3})
	if err != nil {
		t.Fatal(err)
	}
	s := MustDefaultScorer()
	for day := 1.0; day <= 10; day++ {
		good := clean()
		tx, err := ScoreToTransaction(s, good, "cd:0", "rd:good", "compute", day)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := engine.Observe(tx.From, tx.To, tx.Ctx, tx.Outcome, tx.Now); err != nil {
			t.Fatal(err)
		}
		badRec := clean()
		badRec.SecurityIncident = true
		tx, err = ScoreToTransaction(s, badRec, "cd:0", "rd:bad", "compute", day)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := engine.Observe(tx.From, tx.To, tx.Ctx, tx.Outcome, tx.Now); err != nil {
			t.Fatal(err)
		}
	}
	goodTrust, _ := engine.Trust("cd:0", "rd:good", "compute", 10)
	badTrust, _ := engine.Trust("cd:0", "rd:bad", "compute", 10)
	if goodTrust < 5.5 {
		t.Fatalf("reliable resource trust %g, want near 6", goodTrust)
	}
	if badTrust > 1.5 {
		t.Fatalf("incident-ridden resource trust %g, want near 1", badTrust)
	}
}
