// Package rng provides a deterministic, splittable pseudo-random number
// generator and the sampling distributions used throughout the gridtrust
// simulator.
//
// Reproducibility is a hard requirement for the paper's experiments: a
// paired trust-aware vs trust-unaware comparison (Tables 4-9) is only
// meaningful if both runs see byte-identical workloads.  math/rand's global
// source is unsuitable because its stream may change between Go releases
// and cannot be split deterministically across parallel replications.  This
// package implements xoshiro256** seeded via splitmix64, with a 2^128 jump
// function so that each replication of a parameter sweep gets an
// independent, reproducible sub-stream.
package rng

import (
	"fmt"
	"math"
	"math/bits"
)

// Source is a xoshiro256** generator.  The zero value is invalid; use New
// or NewFromState.  Source is not safe for concurrent use: hand each
// goroutine its own Source (see Jump and Split).
type Source struct {
	s [4]uint64

	// Cached second variate from the polar Box-Muller transform.
	spare     float64
	haveSpare bool
}

// New returns a Source seeded from seed using splitmix64, which guarantees
// the four state words are well mixed even for small or similar seeds.
func New(seed uint64) *Source {
	var src Source
	sm := seed
	for i := range src.s {
		sm += 0x9e3779b97f4a7c15
		z := sm
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		src.s[i] = z ^ (z >> 31)
	}
	// xoshiro256** must not start from the all-zero state.  splitmix64
	// cannot produce four zero outputs in a row, but guard anyway so the
	// invariant is locally evident.
	if src.s[0]|src.s[1]|src.s[2]|src.s[3] == 0 {
		src.s[0] = 0x9e3779b97f4a7c15
	}
	return &src
}

// NewFromState restores a Source from a previously captured state.  It
// returns an error if the state is all zero, which is the one invalid
// xoshiro256** state.
func NewFromState(state [4]uint64) (*Source, error) {
	if state[0]|state[1]|state[2]|state[3] == 0 {
		return nil, fmt.Errorf("rng: all-zero state is invalid for xoshiro256**")
	}
	return &Source{s: state}, nil
}

// State returns a copy of the internal state, suitable for NewFromState.
func (r *Source) State() [4]uint64 { return r.s }

// Uint64 returns the next 64 uniformly distributed bits.
func (r *Source) Uint64() uint64 {
	result := bits.RotateLeft64(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = bits.RotateLeft64(r.s[3], 45)
	return result
}

// Int63 returns a non-negative int64, satisfying math/rand.Source.
func (r *Source) Int63() int64 { return int64(r.Uint64() >> 1) }

// Seed reseeds the generator in place, satisfying math/rand.Source.
func (r *Source) Seed(seed int64) { *r = *New(uint64(seed)) }

// jumpPoly is the xoshiro256** 2^128 jump polynomial.
var jumpPoly = [4]uint64{
	0x180ec6d33cfd0aba, 0xd5a61266f0c9392c,
	0xa9582618e03fc9aa, 0x39abdc4529b1661c,
}

// Jump advances the generator by 2^128 steps in place.  Successive Jump
// calls partition the full 2^256 period into non-overlapping sub-streams of
// length 2^128, which is how parallel replications obtain independent
// randomness from a single master seed.
func (r *Source) Jump() {
	var s0, s1, s2, s3 uint64
	for _, jp := range jumpPoly {
		for b := 0; b < 64; b++ {
			if jp&(1<<uint(b)) != 0 {
				s0 ^= r.s[0]
				s1 ^= r.s[1]
				s2 ^= r.s[2]
				s3 ^= r.s[3]
			}
			r.Uint64()
		}
	}
	r.s[0], r.s[1], r.s[2], r.s[3] = s0, s1, s2, s3
}

// Split returns a new Source whose stream is disjoint from the receiver's
// next 2^128 outputs, and advances the receiver past the returned stream.
// Calling Split n times yields n independent generators for n workers.
func (r *Source) Split() *Source {
	child := &Source{s: r.s}
	r.Jump()
	return child
}

// Streams derives n independent Sources from a master seed.  Stream i is
// identical regardless of how many total streams are requested, so adding
// replications to an experiment does not perturb earlier ones.
func Streams(seed uint64, n int) []*Source {
	master := New(seed)
	out := make([]*Source, n)
	for i := range out {
		out[i] = master.Split()
	}
	return out
}

// Float64 returns a uniform value in [0,1) with 53 random bits.
func (r *Source) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Uniform returns a uniform value in [lo,hi).  It panics if hi < lo, which
// is always a programming error in scenario construction.
func (r *Source) Uniform(lo, hi float64) float64 {
	if hi < lo {
		panic(fmt.Sprintf("rng: Uniform bounds inverted: [%g,%g)", lo, hi))
	}
	return lo + (hi-lo)*r.Float64()
}

// Intn returns a uniform int in [0,n).  It panics if n <= 0.
func (r *Source) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	// Lemire's unbiased bounded generation.
	v := r.Uint64()
	hi, lo := bits.Mul64(v, uint64(n))
	if lo < uint64(n) {
		thresh := uint64(-n) % uint64(n)
		for lo < thresh {
			v = r.Uint64()
			hi, lo = bits.Mul64(v, uint64(n))
		}
	}
	return int(hi)
}

// IntRange returns a uniform int in the inclusive range [lo,hi].  The
// paper's workloads draw ToA counts from [1,4], RTLs from [1,6] and OTLs
// from [1,5] with exactly this convention.
func (r *Source) IntRange(lo, hi int) int {
	if hi < lo {
		panic(fmt.Sprintf("rng: IntRange bounds inverted: [%d,%d]", lo, hi))
	}
	return lo + r.Intn(hi-lo+1)
}

// Exponential returns a sample from an exponential distribution with the
// given rate (mean 1/rate).  Poisson arrival processes are generated from
// exponential inter-arrival times.
func (r *Source) Exponential(rate float64) float64 {
	if rate <= 0 {
		panic("rng: Exponential with non-positive rate")
	}
	// -log(1-U) avoids log(0) because Float64 is in [0,1).
	return -math.Log1p(-r.Float64()) / rate
}

// Poisson returns a sample from a Poisson distribution with mean lambda.
// For small lambda it uses Knuth's product method; for large lambda it uses
// the PTRS transformed-rejection method of Hörmann (1993), which is exact
// and O(1).
func (r *Source) Poisson(lambda float64) int {
	switch {
	case lambda < 0:
		panic("rng: Poisson with negative lambda")
	case lambda == 0:
		return 0
	case lambda < 30:
		return r.poissonKnuth(lambda)
	default:
		return r.poissonPTRS(lambda)
	}
}

func (r *Source) poissonKnuth(lambda float64) int {
	limit := math.Exp(-lambda)
	k := 0
	p := 1.0
	for {
		p *= r.Float64()
		if p <= limit {
			return k
		}
		k++
	}
}

func (r *Source) poissonPTRS(lambda float64) int {
	b := 0.931 + 2.53*math.Sqrt(lambda)
	a := -0.059 + 0.02483*b
	invAlpha := 1.1239 + 1.1328/(b-3.4)
	vr := 0.9277 - 3.6224/(b-2)
	logLambda := math.Log(lambda)
	for {
		u := r.Float64() - 0.5
		v := r.Float64()
		us := 0.5 - math.Abs(u)
		k := math.Floor((2*a/us+b)*u + lambda + 0.43)
		if us >= 0.07 && v <= vr {
			return int(k)
		}
		if k < 0 || (us < 0.013 && v > us) {
			continue
		}
		lg, _ := math.Lgamma(k + 1)
		if math.Log(v*invAlpha/(a/(us*us)+b)) <= k*logLambda-lambda-lg {
			return int(k)
		}
	}
}

// Normal returns a sample from N(mean, stddev^2) via the polar Box-Muller
// method.  One of the two generated variates is cached.
func (r *Source) Normal(mean, stddev float64) float64 {
	if stddev < 0 {
		panic("rng: Normal with negative stddev")
	}
	if r.haveSpare {
		r.haveSpare = false
		return mean + stddev*r.spare
	}
	var u, v, s float64
	for {
		u = 2*r.Float64() - 1
		v = 2*r.Float64() - 1
		s = u*u + v*v
		if s > 0 && s < 1 {
			break
		}
	}
	mul := math.Sqrt(-2 * math.Log(s) / s)
	r.spare = v * mul
	r.haveSpare = true
	return mean + stddev*u*mul
}

// Gamma returns a sample from a Gamma(shape, scale) distribution using the
// Marsaglia-Tsang squeeze method.  Gamma deviates parameterise the
// high-variance heterogeneity classes in the extended workload models.
func (r *Source) Gamma(shape, scale float64) float64 {
	if shape <= 0 || scale <= 0 {
		panic("rng: Gamma with non-positive shape or scale")
	}
	if shape < 1 {
		// Boost: Gamma(a) = Gamma(a+1) * U^(1/a).
		u := r.Float64()
		for u == 0 {
			u = r.Float64()
		}
		return r.Gamma(shape+1, scale) * math.Pow(u, 1/shape)
	}
	d := shape - 1.0/3.0
	c := 1 / math.Sqrt(9*d)
	for {
		var x, v float64
		for {
			x = r.Normal(0, 1)
			v = 1 + c*x
			if v > 0 {
				break
			}
		}
		v = v * v * v
		u := r.Float64()
		if u < 1-0.0331*x*x*x*x {
			return d * v * scale
		}
		if u > 0 && math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			return d * v * scale
		}
	}
}

// Shuffle performs a Fisher-Yates shuffle of n elements using swap.
func (r *Source) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Perm returns a random permutation of [0,n).
func (r *Source) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	r.Shuffle(n, func(i, j int) { p[i], p[j] = p[j], p[i] })
	return p
}

// Bool returns true with probability p.
func (r *Source) Bool(p float64) bool {
	return r.Float64() < p
}
