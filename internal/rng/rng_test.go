package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewDeterministic(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if got, want := a.Uint64(), b.Uint64(); got != want {
			t.Fatalf("step %d: streams diverged: %d != %d", i, got, want)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("seeds 1 and 2 produced %d/100 identical outputs", same)
	}
}

func TestZeroSeedValid(t *testing.T) {
	r := New(0)
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		t.Fatal("seed 0 produced the invalid all-zero state")
	}
	// The stream must not be stuck at zero.
	var nonzero bool
	for i := 0; i < 10; i++ {
		if r.Uint64() != 0 {
			nonzero = true
		}
	}
	if !nonzero {
		t.Fatal("seed 0 produced a degenerate all-zero stream")
	}
}

func TestNewFromState(t *testing.T) {
	a := New(7)
	a.Uint64()
	st := a.State()
	b, err := NewFromState(st)
	if err != nil {
		t.Fatalf("NewFromState: %v", err)
	}
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("restored stream diverged at step %d", i)
		}
	}
	if _, err := NewFromState([4]uint64{}); err == nil {
		t.Fatal("NewFromState accepted the all-zero state")
	}
}

func TestJumpDisjoint(t *testing.T) {
	// A jumped stream must not overlap the original's near-term outputs.
	a := New(99)
	b := New(99)
	b.Jump()
	seen := make(map[uint64]bool, 4096)
	for i := 0; i < 4096; i++ {
		seen[a.Uint64()] = true
	}
	collisions := 0
	for i := 0; i < 4096; i++ {
		if seen[b.Uint64()] {
			collisions++
		}
	}
	if collisions > 0 {
		t.Fatalf("jumped stream collided with original %d times", collisions)
	}
}

func TestSplitIndependenceAndStability(t *testing.T) {
	// Stream i must be identical no matter how many streams are drawn.
	s3 := Streams(123, 3)
	s8 := Streams(123, 8)
	for i := 0; i < 3; i++ {
		for k := 0; k < 64; k++ {
			if s3[i].Uint64() != s8[i].Uint64() {
				t.Fatalf("stream %d differs depending on total stream count", i)
			}
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(5)
	for i := 0; i < 100000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %g", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(6)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.005 {
		t.Fatalf("Float64 mean = %g, want ~0.5", mean)
	}
}

func TestIntnBoundsProperty(t *testing.T) {
	r := New(7)
	f := func(nRaw uint16) bool {
		n := int(nRaw%1000) + 1
		v := r.Intn(n)
		return v >= 0 && v < n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIntnUniformity(t *testing.T) {
	r := New(8)
	const n, trials = 10, 100000
	counts := make([]int, n)
	for i := 0; i < trials; i++ {
		counts[r.Intn(n)]++
	}
	want := float64(trials) / n
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Fatalf("bucket %d count %d deviates from %g", i, c, want)
		}
	}
}

func TestIntRange(t *testing.T) {
	r := New(9)
	for i := 0; i < 10000; i++ {
		v := r.IntRange(1, 6)
		if v < 1 || v > 6 {
			t.Fatalf("IntRange(1,6) = %d", v)
		}
	}
	if v := r.IntRange(3, 3); v != 3 {
		t.Fatalf("IntRange(3,3) = %d, want 3", v)
	}
}

func TestIntRangeCoversEndpoints(t *testing.T) {
	r := New(10)
	seen := make(map[int]bool)
	for i := 0; i < 10000; i++ {
		seen[r.IntRange(1, 4)] = true
	}
	for v := 1; v <= 4; v++ {
		if !seen[v] {
			t.Fatalf("IntRange(1,4) never produced %d", v)
		}
	}
}

func TestExponentialMean(t *testing.T) {
	r := New(11)
	const rate, n = 0.5, 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		v := r.Exponential(rate)
		if v < 0 {
			t.Fatalf("Exponential produced negative %g", v)
		}
		sum += v
	}
	mean := sum / n
	if math.Abs(mean-1/rate) > 0.05 {
		t.Fatalf("Exponential(0.5) mean = %g, want ~2", mean)
	}
}

func TestPoissonMoments(t *testing.T) {
	r := New(12)
	for _, lambda := range []float64{0.5, 3, 12, 30, 100, 500} {
		const n = 50000
		sum, sumSq := 0.0, 0.0
		for i := 0; i < n; i++ {
			v := float64(r.Poisson(lambda))
			if v < 0 {
				t.Fatalf("Poisson(%g) produced negative %g", lambda, v)
			}
			sum += v
			sumSq += v * v
		}
		mean := sum / n
		variance := sumSq/n - mean*mean
		tol := 6 * math.Sqrt(lambda/n) // ~6 sigma on the mean estimator
		if math.Abs(mean-lambda) > tol {
			t.Errorf("Poisson(%g) mean = %g, tolerance %g", lambda, mean, tol)
		}
		if math.Abs(variance-lambda) > 0.1*lambda+1 {
			t.Errorf("Poisson(%g) variance = %g, want ~lambda", lambda, variance)
		}
	}
}

func TestPoissonZero(t *testing.T) {
	r := New(13)
	if v := r.Poisson(0); v != 0 {
		t.Fatalf("Poisson(0) = %d, want 0", v)
	}
}

func TestNormalMoments(t *testing.T) {
	r := New(14)
	const mean, sd, n = 5.0, 2.0, 200000
	sum, sumSq := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := r.Normal(mean, sd)
		sum += v
		sumSq += v * v
	}
	m := sum / n
	variance := sumSq/n - m*m
	if math.Abs(m-mean) > 0.03 {
		t.Fatalf("Normal mean = %g, want ~%g", m, mean)
	}
	if math.Abs(variance-sd*sd) > 0.1 {
		t.Fatalf("Normal variance = %g, want ~%g", variance, sd*sd)
	}
}

func TestGammaMoments(t *testing.T) {
	r := New(15)
	for _, tc := range []struct{ shape, scale float64 }{
		{0.5, 1}, {1, 2}, {3, 0.5}, {9, 1.5},
	} {
		const n = 100000
		sum := 0.0
		for i := 0; i < n; i++ {
			v := r.Gamma(tc.shape, tc.scale)
			if v < 0 {
				t.Fatalf("Gamma(%g,%g) produced negative %g", tc.shape, tc.scale, v)
			}
			sum += v
		}
		mean := sum / n
		want := tc.shape * tc.scale
		if math.Abs(mean-want) > 0.05*want+0.02 {
			t.Errorf("Gamma(%g,%g) mean = %g, want ~%g", tc.shape, tc.scale, mean, want)
		}
	}
}

func TestUniformProperty(t *testing.T) {
	r := New(16)
	f := func(a, b float64) bool {
		lo, hi := a, b
		if math.IsNaN(lo) || math.IsNaN(hi) ||
			math.Abs(lo) > 1e150 || math.Abs(hi) > 1e150 {
			// Avoid hi-lo overflow; simulation quantities are far smaller.
			return true
		}
		if hi < lo {
			lo, hi = hi, lo
		}
		v := r.Uniform(lo, hi)
		return v >= lo && (v < hi || lo == hi)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(17)
	for _, n := range []int{0, 1, 2, 10, 100} {
		p := r.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) has length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) = %v is not a permutation", n, p)
			}
			seen[v] = true
		}
	}
}

func TestShuffleUniformity(t *testing.T) {
	// All 6 permutations of 3 elements should occur roughly equally.
	r := New(18)
	counts := make(map[[3]int]int)
	const trials = 60000
	for i := 0; i < trials; i++ {
		a := [3]int{0, 1, 2}
		r.Shuffle(3, func(i, j int) { a[i], a[j] = a[j], a[i] })
		counts[a]++
	}
	if len(counts) != 6 {
		t.Fatalf("saw %d distinct permutations, want 6", len(counts))
	}
	want := float64(trials) / 6
	for p, c := range counts {
		if math.Abs(float64(c)-want) > 6*math.Sqrt(want) {
			t.Fatalf("permutation %v count %d deviates from %g", p, c, want)
		}
	}
}

func TestBoolProbability(t *testing.T) {
	r := New(19)
	const n = 100000
	hits := 0
	for i := 0; i < n; i++ {
		if r.Bool(0.3) {
			hits++
		}
	}
	frac := float64(hits) / n
	if math.Abs(frac-0.3) > 0.01 {
		t.Fatalf("Bool(0.3) frequency = %g", frac)
	}
	if r.Bool(0) {
		// Bool(0) can never fire because Float64 < 0 is impossible... but
		// Float64 returns values in [0,1), so Float64 < 0 is false always.
		t.Fatal("Bool(0) returned true")
	}
}

func TestPanicsOnBadArguments(t *testing.T) {
	r := New(20)
	cases := []struct {
		name string
		fn   func()
	}{
		{"Intn0", func() { r.Intn(0) }},
		{"IntnNeg", func() { r.Intn(-3) }},
		{"IntRangeInverted", func() { r.IntRange(5, 2) }},
		{"UniformInverted", func() { r.Uniform(2, 1) }},
		{"ExponentialZeroRate", func() { r.Exponential(0) }},
		{"PoissonNegative", func() { _ = r.Poisson(-1) }},
		{"NormalNegativeSD", func() { r.Normal(0, -1) }},
		{"GammaZeroShape", func() { r.Gamma(0, 1) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s did not panic", tc.name)
				}
			}()
			tc.fn()
		})
	}
}

func TestInt63NonNegative(t *testing.T) {
	r := New(21)
	for i := 0; i < 10000; i++ {
		if v := r.Int63(); v < 0 {
			t.Fatalf("Int63 returned negative %d", v)
		}
	}
}

func TestSeedResets(t *testing.T) {
	r := New(1)
	r.Uint64()
	r.Seed(1)
	want := New(1)
	for i := 0; i < 16; i++ {
		if r.Uint64() != want.Uint64() {
			t.Fatal("Seed did not reset the stream")
		}
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink = r.Uint64()
	}
	_ = sink
}

func BenchmarkPoissonSmall(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Poisson(5)
	}
}

func BenchmarkPoissonLarge(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Poisson(500)
	}
}
