package report

import (
	"fmt"
	"math"
	"strings"
)

// Series is a labelled sequence of (x-label, value) points for terminal
// charts.  The sweeps use it to render their sensitivity curves — the
// paper has no data figures, but the ablations produce series worth
// eyeballing without leaving the terminal.
type Series struct {
	Name   string
	Labels []string
	Values []float64
}

// AddPoint appends one point.
func (s *Series) AddPoint(label string, value float64) {
	s.Labels = append(s.Labels, label)
	s.Values = append(s.Values, value)
}

// Len returns the number of points.
func (s *Series) Len() int { return len(s.Values) }

// BarChart renders the series as a horizontal bar chart of the given
// width.  Negative values extend left of a zero axis when present.
// Returns an error for empty or non-finite series.
func BarChart(s *Series, width int) (string, error) {
	if s == nil || s.Len() == 0 {
		return "", fmt.Errorf("report: empty series")
	}
	if width < 20 {
		return "", fmt.Errorf("report: chart width %d too narrow", width)
	}
	if len(s.Labels) != len(s.Values) {
		return "", fmt.Errorf("report: series has %d labels for %d values", len(s.Labels), len(s.Values))
	}
	minV, maxV := s.Values[0], s.Values[0]
	for _, v := range s.Values {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return "", fmt.Errorf("report: non-finite value %v in series", v)
		}
		if v < minV {
			minV = v
		}
		if v > maxV {
			maxV = v
		}
	}
	if minV > 0 {
		minV = 0
	}
	if maxV < 0 {
		maxV = 0
	}
	span := maxV - minV
	if span == 0 {
		span = 1
	}

	labelW := 0
	for _, l := range s.Labels {
		if len(l) > labelW {
			labelW = len(l)
		}
	}
	barW := width - labelW - 12
	if barW < 8 {
		barW = 8
	}
	zeroCol := int(math.Round(-minV / span * float64(barW)))

	var sb strings.Builder
	if s.Name != "" {
		fmt.Fprintf(&sb, "%s\n", s.Name)
	}
	for i, v := range s.Values {
		row := make([]byte, barW)
		for c := range row {
			row[c] = ' '
		}
		col := int(math.Round((v - minV) / span * float64(barW)))
		if col >= barW {
			col = barW - 1
		}
		if v >= 0 {
			for c := zeroCol; c <= col && c < barW; c++ {
				row[c] = '#'
			}
		} else {
			for c := col; c <= zeroCol && c >= 0; c++ {
				if c < barW {
					row[c] = '#'
				}
			}
		}
		// The zero axis stays visible on top of the bars.
		if zeroCol >= 0 && zeroCol < barW {
			row[zeroCol] = '|'
		}
		fmt.Fprintf(&sb, "%-*s %s %10.2f\n", labelW, s.Labels[i], string(row), v)
	}
	return sb.String(), nil
}

// Sparkline renders the series values as a one-line block-character
// sparkline, handy for compact logs.
func Sparkline(values []float64) (string, error) {
	if len(values) == 0 {
		return "", fmt.Errorf("report: empty sparkline")
	}
	blocks := []rune("▁▂▃▄▅▆▇█")
	minV, maxV := values[0], values[0]
	for _, v := range values {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return "", fmt.Errorf("report: non-finite value %v in sparkline", v)
		}
		if v < minV {
			minV = v
		}
		if v > maxV {
			maxV = v
		}
	}
	span := maxV - minV
	var sb strings.Builder
	for _, v := range values {
		idx := 0
		if span > 0 {
			idx = int((v - minV) / span * float64(len(blocks)-1))
		}
		sb.WriteRune(blocks[idx])
	}
	return sb.String(), nil
}
