// Package report renders result tables in the styles used by the command
// line tools and the experiment log: aligned ASCII, GitHub markdown, CSV
// and JSON rows, with the paper's number formatting (thousands
// separators, fixed decimals, percent signs).
package report

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
	"unicode/utf8"
)

// Align controls column alignment.
type Align int

// Column alignments.
const (
	Left Align = iota
	Right
)

// Table is a simple column-oriented table builder.
type Table struct {
	Title   string
	headers []string
	aligns  []Align
	rows    [][]string
}

// NewTable creates a table with the given column headers, all
// right-aligned except the first.
func NewTable(title string, headers ...string) *Table {
	aligns := make([]Align, len(headers))
	for i := range aligns {
		if i > 0 {
			aligns[i] = Right
		}
	}
	return &Table{Title: title, headers: headers, aligns: aligns}
}

// SetAlign overrides one column's alignment.  Out-of-range columns are
// ignored.
func (t *Table) SetAlign(col int, a Align) {
	if col >= 0 && col < len(t.aligns) {
		t.aligns[col] = a
	}
}

// AddRow appends a row; short rows are padded with empty cells and long
// rows truncated to the header width.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.headers))
	for i := range row {
		if i < len(cells) {
			row[i] = cells[i]
		}
	}
	t.rows = append(t.rows, row)
}

// NumRows returns the number of data rows.
func (t *Table) NumRows() int { return len(t.rows) }

// widths computes per-column display widths in runes, so cells with
// multi-byte characters (±, ×) still align.
func (t *Table) widths() []int {
	w := make([]int, len(t.headers))
	for i, h := range t.headers {
		w[i] = utf8.RuneCountInString(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if n := utf8.RuneCountInString(c); n > w[i] {
				w[i] = n
			}
		}
	}
	return w
}

// pad aligns s into a field of width w runes.
func pad(s string, w int, a Align) string {
	fill := w - utf8.RuneCountInString(s)
	if fill < 0 {
		fill = 0
	}
	if a == Right {
		return strings.Repeat(" ", fill) + s
	}
	return s + strings.Repeat(" ", fill)
}

// WriteASCII renders the table with box-drawing rules to w.
func (t *Table) WriteASCII(w io.Writer) error {
	widths := t.widths()
	line := func(l, m, r string) string {
		parts := make([]string, len(widths))
		for i, cw := range widths {
			parts[i] = strings.Repeat("-", cw+2)
		}
		return l + strings.Join(parts, m) + r
	}
	if t.Title != "" {
		if _, err := fmt.Fprintln(w, t.Title); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintln(w, line("+", "+", "+")); err != nil {
		return err
	}
	cells := make([]string, len(t.headers))
	for i, h := range t.headers {
		cells[i] = pad(h, widths[i], Left)
	}
	if _, err := fmt.Fprintf(w, "| %s |\n", strings.Join(cells, " | ")); err != nil {
		return err
	}
	if _, err := fmt.Fprintln(w, line("+", "+", "+")); err != nil {
		return err
	}
	for _, row := range t.rows {
		for i, c := range row {
			cells[i] = pad(c, widths[i], t.aligns[i])
		}
		if _, err := fmt.Fprintf(w, "| %s |\n", strings.Join(cells, " | ")); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w, line("+", "+", "+"))
	return err
}

// WriteMarkdown renders the table as GitHub-flavoured markdown.
func (t *Table) WriteMarkdown(w io.Writer) error {
	if t.Title != "" {
		if _, err := fmt.Fprintf(w, "**%s**\n\n", t.Title); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "| %s |\n", strings.Join(t.headers, " | ")); err != nil {
		return err
	}
	seps := make([]string, len(t.headers))
	for i, a := range t.aligns {
		if a == Right {
			seps[i] = "---:"
		} else {
			seps[i] = ":---"
		}
	}
	if _, err := fmt.Fprintf(w, "| %s |\n", strings.Join(seps, " | ")); err != nil {
		return err
	}
	for _, row := range t.rows {
		if _, err := fmt.Fprintf(w, "| %s |\n", strings.Join(row, " | ")); err != nil {
			return err
		}
	}
	return nil
}

// WriteCSV renders the table as RFC-4180 CSV (quoting cells containing
// commas, quotes or newlines).
func (t *Table) WriteCSV(w io.Writer) error {
	writeRow := func(cells []string) error {
		out := make([]string, len(cells))
		for i, c := range cells {
			if strings.ContainsAny(c, ",\"\n") {
				c = "\"" + strings.ReplaceAll(c, "\"", "\"\"") + "\""
			}
			out[i] = c
		}
		_, err := fmt.Fprintln(w, strings.Join(out, ","))
		return err
	}
	if err := writeRow(t.headers); err != nil {
		return err
	}
	for _, row := range t.rows {
		if err := writeRow(row); err != nil {
			return err
		}
	}
	return nil
}

// WriteJSON renders the table as one JSON document: the title, the column
// list in display order, and one object per row keyed by column header.
// This is the machine-readable surface for the benchmark-trajectory
// scripts, so the layout is stable: rows are emitted in insertion order
// and object keys are the exact header strings.
func (t *Table) WriteJSON(w io.Writer) error {
	rows := make([]map[string]string, len(t.rows))
	for i, row := range t.rows {
		obj := make(map[string]string, len(t.headers))
		for j, h := range t.headers {
			obj[h] = row[j]
		}
		rows[i] = obj
	}
	doc := struct {
		Title   string              `json:"title,omitempty"`
		Columns []string            `json:"columns"`
		Rows    []map[string]string `json:"rows"`
	}{Title: t.Title, Columns: t.headers, Rows: rows}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

// Render returns the table in the named format: "ascii", "markdown",
// "csv" or "json".
func (t *Table) Render(format string) (string, error) {
	var sb strings.Builder
	var err error
	switch format {
	case "ascii", "":
		err = t.WriteASCII(&sb)
	case "markdown", "md":
		err = t.WriteMarkdown(&sb)
	case "csv":
		err = t.WriteCSV(&sb)
	case "json":
		err = t.WriteJSON(&sb)
	default:
		return "", fmt.Errorf("report: unknown format %q (want ascii, markdown, csv or json)", format)
	}
	if err != nil {
		return "", err
	}
	return sb.String(), nil
}
