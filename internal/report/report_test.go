package report

import (
	"fmt"
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestCommaFormatting(t *testing.T) {
	cases := []struct {
		v        float64
		decimals int
		want     string
	}{
		{5817.38, 2, "5,817.38"},
		{97.00, 2, "97.00"},
		{1234567.891, 2, "1,234,567.89"},
		{0, 0, "0"},
		{999, 0, "999"},
		{1000, 0, "1,000"},
		{-1234.5, 1, "-1,234.5"},
		{12, 3, "12.000"},
	}
	for _, tc := range cases {
		if got := Comma(tc.v, tc.decimals); got != tc.want {
			t.Errorf("Comma(%g,%d) = %q, want %q", tc.v, tc.decimals, got, tc.want)
		}
	}
	if Comma(math.NaN(), 2) != "NaN" {
		t.Error("NaN formatting wrong")
	}
	if Comma(math.Inf(1), 2) != "+Inf" || Comma(math.Inf(-1), 2) != "-Inf" {
		t.Error("Inf formatting wrong")
	}
}

func TestCommaRoundTripProperty(t *testing.T) {
	// Stripping separators must reparse to the rounded value.
	f := func(raw int32) bool {
		v := float64(raw) / 100
		s := strings.ReplaceAll(Comma(v, 2), ",", "")
		var back float64
		if _, err := sscan(s, &back); err != nil {
			return false
		}
		return math.Abs(back-v) < 0.005+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// sscan wraps fmt.Sscan to keep the property test tidy.
func sscan(s string, v *float64) (int, error) {
	return fmtSscan(s, v)
}

func TestPercentAndFraction(t *testing.T) {
	if got := Percent(36.99, 2); got != "36.99%" {
		t.Errorf("Percent = %q", got)
	}
	if got := Fraction(0.9286, 2); got != "92.86%" {
		t.Errorf("Fraction = %q", got)
	}
	if Percent(math.NaN(), 2) != "NaN" {
		t.Error("NaN percent wrong")
	}
}

func TestSecondsAndPlusMinus(t *testing.T) {
	if got := Seconds(3665.234); got != "3,665.23" {
		t.Errorf("Seconds = %q", got)
	}
	if got := PlusMinus(3665.23, 120.551, 2); got != "3,665.23 ± 120.55" {
		t.Errorf("PlusMinus = %q", got)
	}
}

func buildTable() *Table {
	tb := NewTable("Table 4", "# of tasks", "Using trust", "Ave. completion")
	tb.AddRow("50", "No", "5,817.38")
	tb.AddRow("50", "Yes", "3,665.23")
	return tb
}

func TestASCIIRendering(t *testing.T) {
	out, err := buildTable().Render("ascii")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Table 4", "# of tasks", "5,817.38", "+--"} {
		if !strings.Contains(out, want) {
			t.Errorf("ascii output missing %q:\n%s", want, out)
		}
	}
	// All data lines must be equal width.
	lines := strings.Split(strings.TrimSpace(out), "\n")
	width := len(lines[1])
	for _, l := range lines[1:] {
		if len(l) != width {
			t.Fatalf("ragged ascii table:\n%s", out)
		}
	}
}

func TestMarkdownRendering(t *testing.T) {
	out, err := buildTable().Render("markdown")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "| # of tasks | Using trust | Ave. completion |") {
		t.Errorf("markdown header wrong:\n%s", out)
	}
	if !strings.Contains(out, ":--- | ---: | ---:") {
		t.Errorf("markdown alignment wrong:\n%s", out)
	}
	if !strings.Contains(out, "**Table 4**") {
		t.Errorf("markdown title missing:\n%s", out)
	}
}

func TestCSVRendering(t *testing.T) {
	tb := NewTable("", "a", "b")
	tb.AddRow(`with"quote`, "with,comma")
	out, err := tb.Render("csv")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, `"with""quote"`) || !strings.Contains(out, `"with,comma"`) {
		t.Errorf("csv quoting wrong:\n%s", out)
	}
	if !strings.HasPrefix(out, "a,b\n") {
		t.Errorf("csv header wrong:\n%s", out)
	}
}

func TestRenderUnknownFormat(t *testing.T) {
	if _, err := buildTable().Render("xml"); err == nil {
		t.Fatal("unknown format accepted")
	}
}

func TestAddRowPadding(t *testing.T) {
	tb := NewTable("", "a", "b", "c")
	tb.AddRow("1")                     // short
	tb.AddRow("1", "2", "3", "4", "5") // long
	if tb.NumRows() != 2 {
		t.Fatal("row count wrong")
	}
	out, err := tb.Render("csv")
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if lines[1] != "1,," || lines[2] != "1,2,3" {
		t.Fatalf("padding/truncation wrong: %q", lines[1:])
	}
}

func TestSetAlign(t *testing.T) {
	tb := NewTable("", "a", "b")
	tb.SetAlign(1, Left)
	tb.SetAlign(99, Right) // ignored
	tb.AddRow("x", "y")
	out, err := tb.Render("markdown")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, ":--- | :---") {
		t.Errorf("SetAlign not honoured:\n%s", out)
	}
}

// fmtSscan is a test-local alias to avoid importing fmt twice in examples.
func fmtSscan(s string, v *float64) (int, error) {
	return fmt.Sscan(s, v)
}
