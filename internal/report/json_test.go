package report

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestRenderJSON(t *testing.T) {
	tb := NewTable("sweep", "cell", "improvement", "significant")
	tb.AddRow("mct", "22.41%", "true")
	tb.AddRow("minmin", "9.03%", "false")
	out, err := tb.Render("json")
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Title   string              `json:"title"`
		Columns []string            `json:"columns"`
		Rows    []map[string]string `json:"rows"`
	}
	if err := json.Unmarshal([]byte(out), &doc); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, out)
	}
	if doc.Title != "sweep" {
		t.Errorf("title %q", doc.Title)
	}
	if len(doc.Columns) != 3 || doc.Columns[0] != "cell" {
		t.Errorf("columns %v", doc.Columns)
	}
	if len(doc.Rows) != 2 {
		t.Fatalf("%d rows, want 2", len(doc.Rows))
	}
	if doc.Rows[0]["cell"] != "mct" || doc.Rows[0]["improvement"] != "22.41%" {
		t.Errorf("row 0 = %v", doc.Rows[0])
	}
	if doc.Rows[1]["significant"] != "false" {
		t.Errorf("row 1 = %v", doc.Rows[1])
	}
}

func TestPadCountsRunes(t *testing.T) {
	// Multi-byte cells (± CI annotations) must still align.
	tb := NewTable("", "v")
	tb.AddRow("1.0% ± 0.2%")
	tb.AddRow("ascii")
	out, err := tb.Render("ascii")
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	width := len([]rune(lines[0]))
	for _, l := range lines {
		if len([]rune(l)) != width {
			t.Errorf("misaligned line %q (want display width %d)", l, width)
		}
	}
}
