package report

import (
	"fmt"
	"math"
	"strings"
)

// Comma formats v with thousands separators and the given number of
// decimals, matching the paper's "5,817.38" style.
func Comma(v float64, decimals int) string {
	if math.IsNaN(v) {
		return "NaN"
	}
	if math.IsInf(v, 0) {
		if v > 0 {
			return "+Inf"
		}
		return "-Inf"
	}
	neg := v < 0
	if neg {
		v = -v
	}
	s := fmt.Sprintf("%.*f", decimals, v)
	intPart := s
	fracPart := ""
	if i := strings.IndexByte(s, '.'); i >= 0 {
		intPart, fracPart = s[:i], s[i:]
	}
	var sb strings.Builder
	n := len(intPart)
	for i, r := range intPart {
		if i > 0 && (n-i)%3 == 0 {
			sb.WriteByte(',')
		}
		sb.WriteRune(r)
	}
	out := sb.String() + fracPart
	if neg {
		out = "-" + out
	}
	return out
}

// Percent formats a percentage value (already in percent units) with the
// given decimals and a trailing %, e.g. Percent(36.99, 2) = "36.99%".
func Percent(v float64, decimals int) string {
	if math.IsNaN(v) {
		return "NaN"
	}
	return fmt.Sprintf("%.*f%%", decimals, v)
}

// Fraction formats a fraction in [0,1] as a percentage, e.g.
// Fraction(0.9286, 2) = "92.86%".
func Fraction(v float64, decimals int) string {
	return Percent(v*100, decimals)
}

// Seconds formats a duration in simulated seconds with two decimals, the
// paper's time style.
func Seconds(v float64) string { return Comma(v, 2) }

// PlusMinus formats a value with its confidence half-width, e.g.
// "3,665.23 ± 120.55".
func PlusMinus(v, ci float64, decimals int) string {
	return Comma(v, decimals) + " ± " + Comma(ci, decimals)
}
