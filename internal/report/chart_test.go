package report

import (
	"math"
	"strings"
	"testing"
	"unicode/utf8"
)

func demoSeries() *Series {
	s := &Series{Name: "improvement by TC weight"}
	s.AddPoint("0", 65.6)
	s.AddPoint("15", 26.2)
	s.AddPoint("25", 0.7)
	s.AddPoint("30", -12.8)
	return s
}

func TestBarChartBasics(t *testing.T) {
	out, err := BarChart(demoSeries(), 72)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title + 4 rows
		t.Fatalf("chart lines = %d:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[0], "TC weight") {
		t.Fatalf("title missing:\n%s", out)
	}
	// The largest value should have the longest bar.
	bars := make([]int, 0, 4)
	for _, l := range lines[1:] {
		bars = append(bars, strings.Count(l, "#"))
	}
	if !(bars[0] > bars[1] && bars[1] > bars[2]) {
		t.Fatalf("bar lengths not ordered: %v\n%s", bars, out)
	}
	// The negative row must render a bar too (left of the axis).
	if bars[3] == 0 {
		t.Fatalf("negative bar missing:\n%s", out)
	}
	// Values echoed at line ends.
	if !strings.Contains(lines[1], "65.60") || !strings.Contains(lines[4], "-12.80") {
		t.Fatalf("values missing:\n%s", out)
	}
}

func TestBarChartZeroAxis(t *testing.T) {
	out, err := BarChart(demoSeries(), 72)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "|") {
		t.Fatalf("zero axis missing:\n%s", out)
	}
}

func TestBarChartAllPositiveAndAllEqual(t *testing.T) {
	s := &Series{}
	s.AddPoint("a", 5)
	s.AddPoint("b", 5)
	out, err := BarChart(s, 40)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Count(out, "#") == 0 {
		t.Fatalf("flat series rendered no bars:\n%s", out)
	}
}

func TestBarChartValidation(t *testing.T) {
	if _, err := BarChart(nil, 60); err == nil {
		t.Error("nil series accepted")
	}
	if _, err := BarChart(&Series{}, 60); err == nil {
		t.Error("empty series accepted")
	}
	if _, err := BarChart(demoSeries(), 5); err == nil {
		t.Error("tiny width accepted")
	}
	bad := &Series{Labels: []string{"x"}, Values: []float64{math.NaN()}}
	if _, err := BarChart(bad, 60); err == nil {
		t.Error("NaN accepted")
	}
	ragged := &Series{Labels: []string{"x"}, Values: []float64{1, 2}}
	if _, err := BarChart(ragged, 60); err == nil {
		t.Error("ragged series accepted")
	}
}

func TestSparkline(t *testing.T) {
	out, err := Sparkline([]float64{0, 1, 2, 3, 4, 5, 6, 7})
	if err != nil {
		t.Fatal(err)
	}
	if utf8.RuneCountInString(out) != 8 {
		t.Fatalf("sparkline runes = %d", utf8.RuneCountInString(out))
	}
	if !strings.HasPrefix(out, "▁") || !strings.HasSuffix(out, "█") {
		t.Fatalf("sparkline shape wrong: %q", out)
	}
	flat, err := Sparkline([]float64{3, 3, 3})
	if err != nil {
		t.Fatal(err)
	}
	if flat != "▁▁▁" {
		t.Fatalf("flat sparkline = %q", flat)
	}
	if _, err := Sparkline(nil); err == nil {
		t.Error("empty sparkline accepted")
	}
	if _, err := Sparkline([]float64{math.Inf(1)}); err == nil {
		t.Error("Inf accepted")
	}
}
