package sim

import (
	"context"
	"errors"
	"strings"
	"testing"
)

func TestWriteFullReport(t *testing.T) {
	if testing.Short() {
		t.Skip("full report is slow")
	}
	var sb strings.Builder
	if err := WriteFullReport(context.Background(), &sb, ReportOptions{Seed: 5, Reps: 4}); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# gridtrust experiment report",
		"## Table 1 — expected trust supplement",
		"| F | 6 | 6 | 6 | 6 | 6 |",
		"## Secure vs plain transfer, 100 Mbps",
		"69.84%",
		"## Table 4 — MCT, inconsistent LoLo",
		"## Table 9 — Sufferage, consistent LoLo",
		"## Ablation: TC weight",
		"## Ablation: evolving trust",
		"## Ablation: data staging",
		"_Generated in",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q", want)
		}
	}
	// The report must carry all twelve simulation rows (six tables, two
	// task counts, No/Yes pairs => 24 "| 50 |"-style data rows; count
	// the "Yes" rows as a proxy).
	if got := strings.Count(out, "| Yes |"); got != 12 {
		t.Errorf("report has %d trust-aware rows, want 12", got)
	}
}

func TestWriteFullReportPropagatesWriteErrors(t *testing.T) {
	w := &failingWriter{failAfter: 10}
	if err := WriteFullReport(context.Background(), w, ReportOptions{Seed: 1, Reps: 1}); err == nil {
		t.Fatal("write error swallowed")
	}
}

// failingWriter errors after a few bytes to exercise error propagation.
type failingWriter struct {
	written   int
	failAfter int
}

func (w *failingWriter) Write(p []byte) (int, error) {
	w.written += len(p)
	if w.written > w.failAfter {
		return 0, errors.New("disk full")
	}
	return len(p), nil
}
