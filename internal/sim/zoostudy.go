package sim

import (
	"context"
	"fmt"

	"gridtrust/internal/exp"
	"gridtrust/internal/fault"
	"gridtrust/internal/rng"
	"gridtrust/internal/stats"
)

// ZooCell names one configuration of the trust-model zoo: a registered
// trust model facing one adversary environment.
type ZooCell struct {
	Name   string
	Config fault.ZooConfig
}

// ZooCellResult aggregates fault.RunZoo over replications.
type ZooCellResult struct {
	TrustError     stats.Running
	DegradationPct stats.Running
	BadShare       stats.Running
}

// ZooGrid runs every model × scenario cell × Reps replications of the
// trust zoo on one worker pool and aggregates per cell.  Replication r of
// every cell draws from rng stream r of the master seed, so results are
// bit-identical under any worker count.
func ZooGrid(ctx context.Context, cells []ZooCell, opts GridOptions) ([]*ZooCellResult, error) {
	if opts.Reps <= 0 {
		return nil, fmt.Errorf("sim: reps must be positive, got %d", opts.Reps)
	}
	ecells := make([]exp.Cell, len(cells))
	for i := range cells {
		cfg := cells[i].Config
		ecells[i] = exp.Cell{Name: cells[i].Name, Run: func(ctx context.Context, rep int, src *rng.Source, scratch any) (any, error) {
			return fault.RunZoo(cfg, src)
		}}
	}
	res, err := exp.Run(ctx, ecells, opts.engineOptions(repsCodec[fault.ZooResult]()))
	if err != nil {
		return nil, err
	}
	out := make([]*ZooCellResult, len(cells))
	for i := range res {
		agg := &ZooCellResult{}
		for _, v := range res[i].Reps {
			r := v.(*fault.ZooResult)
			agg.TrustError.Add(r.TrustError)
			agg.DegradationPct.Add(r.DegradationPct)
			agg.BadShare.Add(r.BadShare)
		}
		out[i] = agg
	}
	return out, nil
}

// ZooCells builds the head-to-head grid: every scenario × every model, in
// scenario-major order so each environment's rows sit together in the
// report.
func ZooCells(models []string, scenarios []fault.ZooScenario) []ZooCell {
	cells := make([]ZooCell, 0, len(models)*len(scenarios))
	for _, sc := range scenarios {
		for _, m := range models {
			cells = append(cells, ZooCell{
				Name:   fmt.Sprintf("%s/%s", sc, m),
				Config: fault.ZooConfig{Model: m, Scenario: sc},
			})
		}
	}
	return cells
}
