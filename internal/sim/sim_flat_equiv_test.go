package sim

import (
	"reflect"
	"testing"

	"gridtrust/internal/fault"
	"gridtrust/internal/rng"
	"gridtrust/internal/sched"
	"gridtrust/internal/trace"
	"gridtrust/internal/workload"
)

// These tests pin the kernel-equivalence acceptance criterion: the flat
// fast path (run_flat.go, faultrun_flat.go) must produce results
// deep-equal — bit-identical floats included — to the closure-based
// reference path, for every mode, heuristic class and fault plan, and
// under any intra-replication worker count.

// equivScenarios spans the code paths the two kernels implement twice:
// fused immediate scans (mct/met/olb), fallback immediate (kpb/sa),
// batch, deadlines, churn and adversary injection.
func equivScenarios() []Scenario {
	mk := func(name, heuristic string, mode Mode, tasks int) Scenario {
		sc := PaperScenario("mct", tasks, workload.Inconsistent)
		sc.Name = name
		sc.Mode = mode
		sc.Heuristic = heuristic
		return sc
	}
	scs := []Scenario{
		mk("imm-mct", "mct", Immediate, 60),
		mk("imm-met", "met", Immediate, 40),
		mk("imm-olb", "olb", Immediate, 40),
		mk("imm-kpb", "kpb", Immediate, 40),
		mk("imm-sa", "sa", Immediate, 40),
		mk("batch-minmin", "minmin", Batch, 60),
		mk("batch-sufferage", "sufferage", Batch, 40),
	}
	dl := mk("imm-mct-deadline", "mct", Immediate, 40)
	dl.DeadlineSlack = 2
	scs = append(scs, dl)
	churn := mk("fault-churn", "mct", Immediate, 40)
	churn.Fault = fault.Plan{MTBF: 2000, MTTR: 200}
	scs = append(scs, churn)
	churnBatch := mk("fault-churn-batch", "minmin", Batch, 40)
	churnBatch.Fault = fault.Plan{MTBF: 2000, MTTR: 200}
	scs = append(scs, churnBatch)
	adv := mk("fault-adversary", "mct", Immediate, 40)
	adv.Fault = fault.Plan{AdversaryFraction: 0.5}
	scs = append(scs, adv)
	return scs
}

// pairUnder runs one paired replication under the given kernel.
func pairUnder(t *testing.T, k Kernel, sc Scenario, seed uint64) *PairResult {
	t.Helper()
	SetKernel(k)
	defer SetKernel(KernelFast)
	pair, err := RunPair(sc, rng.New(seed))
	if err != nil {
		t.Fatalf("%s under %v: %v", sc.Name, k, err)
	}
	return pair
}

// TestKernelEquivalence deep-compares full paired results across kernels.
func TestKernelEquivalence(t *testing.T) {
	defer SetKernel(KernelFast)
	for _, sc := range equivScenarios() {
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			for seed := uint64(1); seed <= 3; seed++ {
				ref := pairUnder(t, KernelReference, sc, seed)
				fast := pairUnder(t, KernelFast, sc, seed)
				if !reflect.DeepEqual(ref, fast) {
					t.Fatalf("seed %d: kernels diverge\nreference %+v\nfast      %+v", seed, ref, fast)
				}
			}
		})
	}
}

// TestKernelEquivalenceTraced compares the recorded traces event by
// event: fire order, timestamps and costs must match exactly.
func TestKernelEquivalenceTraced(t *testing.T) {
	defer SetKernel(KernelFast)
	for _, sc := range equivScenarios() {
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			src := rng.New(99)
			w, err := workload.NewWorkload(src, sc.WorkloadSpec())
			if err != nil {
				t.Fatal(err)
			}
			if sc.Fault.Active() {
				sc.Fault.Seed = 77
			}
			aware, _, err := sc.policies()
			if err != nil {
				t.Fatal(err)
			}
			run := func(k Kernel) (*RunResult, []trace.Event) {
				SetKernel(k)
				var tr trace.Trace
				res, err := RunTraced(sc, w, aware, &tr)
				if err != nil {
					t.Fatalf("%v: %v", k, err)
				}
				return res, tr.Events()
			}
			refRes, refEv := run(KernelReference)
			fastRes, fastEv := run(KernelFast)
			if !reflect.DeepEqual(refRes, fastRes) {
				t.Fatalf("traced results diverge\nreference %+v\nfast      %+v", refRes, fastRes)
			}
			if !reflect.DeepEqual(refEv, fastEv) {
				t.Fatalf("traces diverge: reference %d events, fast %d events", len(refEv), len(fastEv))
			}
		})
	}
}

// TestIntraWorkerDeterminism forces sharding on small instances and
// checks that every worker count yields identical results.
func TestIntraWorkerDeterminism(t *testing.T) {
	oldMin := intraShardMin.Load()
	intraShardMin.Store(1)
	defer func() {
		intraShardMin.Store(oldMin)
		SetIntraWorkers(1)
	}()

	sc := PaperScenario("mct", 80, workload.Inconsistent)
	sc.Machines = 23 // odd width: shards of unequal size
	base := pairUnder(t, KernelFast, sc, 7)
	for _, workers := range []int{2, 3, 7, 16} {
		SetIntraWorkers(workers)
		got := pairUnder(t, KernelFast, sc, 7)
		if !reflect.DeepEqual(base, got) {
			t.Fatalf("%d intra workers diverge from serial", workers)
		}
	}
}

// TestFusedScanMatchesAssignOne drives the fused pick directly against
// the generic heuristic on randomized free-time states.
func TestFusedScanMatchesAssignOne(t *testing.T) {
	src := rng.New(13)
	for _, name := range []string{"mct", "met", "olb"} {
		sc := PaperScenario(name, 30, workload.Inconsistent)
		sc.Heuristic = name
		sc.Mode = Immediate
		sc.Machines = 17
		w, err := workload.NewWorkload(src, sc.WorkloadSpec())
		if err != nil {
			t.Fatal(err)
		}
		costs, err := newWorkloadCosts(w)
		if err != nil {
			t.Fatal(err)
		}
		aware, unaware, err := sc.policies()
		if err != nil {
			t.Fatal(err)
		}
		for _, policy := range []sched.Policy{aware, unaware} {
			h, err := sched.ImmediateByName(name)
			if err != nil {
				t.Fatal(err)
			}
			scan := fusedScanFor(h, policy)
			if scan == fusedNone {
				t.Fatalf("no fused scan for %s under %s", name, policy.Name)
			}
			decForm, decW := policy.DecisionForm()
			dec := fusedESC{form: decForm, w: decW}
			scr := &runScratch{}
			scr.prepare(sc.Machines)
			st := &runState{sc: sc, costs: costs, policy: policy, scr: scr, intraW: 1, shardMin: 1}
			for trial := 0; trial < 200; trial++ {
				now := src.Uniform(0, 500)
				for m := range scr.freeTime {
					scr.freeTime[m] = src.Uniform(0, 1000)
					if src.Bool(0.2) {
						scr.freeTime[m] = now // provoke max(ft, now) ties
					}
				}
				r := src.Intn(sc.Tasks)
				want, err := h.AssignOne(costs, policy, r, st.availability(now))
				if err != nil {
					t.Fatal(err)
				}
				if got := st.fusedPick(scan, dec, r, now); got != want.Machine {
					t.Fatalf("%s/%s trial %d: fused picked %d, AssignOne picked %d",
						name, policy.Name, trial, got, want.Machine)
				}
			}
		}
	}
}
