package sim

import (
	"os"
	"path/filepath"
	"testing"

	"gridtrust/internal/grid"
	"gridtrust/internal/workload"
)

func TestScenarioConfigRoundTrip(t *testing.T) {
	orig := PaperScenario("sufferage", 100, workload.Consistent)
	back, err := orig.Config().Scenario()
	if err != nil {
		t.Fatal(err)
	}
	if back != orig {
		t.Fatalf("round trip changed scenario:\n  orig %+v\n  back %+v", orig, back)
	}
}

func TestScenarioConfigDefaults(t *testing.T) {
	sc, err := ScenarioConfig{Heuristic: "mct", Tasks: 50}.Scenario()
	if err != nil {
		t.Fatal(err)
	}
	if sc.Mode != Immediate {
		t.Error("mode not inferred from heuristic")
	}
	if sc.Machines != 5 || sc.ArrivalRate != 0.04 || sc.TCWeight != 15 ||
		sc.FlatOverheadPct != 50 || sc.BatchInterval != DefaultBatchInterval {
		t.Errorf("paper defaults not applied: %+v", sc)
	}
	if sc.Heterogeneity != workload.LoLo || sc.Consistency != workload.Inconsistent {
		t.Errorf("workload defaults wrong: %+v", sc)
	}
	if sc.ETSRule != grid.ETSLinear {
		t.Errorf("ETS rule default = %v, want linear", sc.ETSRule)
	}
	if sc.Name == "" {
		t.Error("name not synthesised")
	}
	// Batch inference for batch heuristics.
	sc, err = ScenarioConfig{Heuristic: "minmin", Tasks: 50}.Scenario()
	if err != nil {
		t.Fatal(err)
	}
	if sc.Mode != Batch {
		t.Error("batch mode not inferred for minmin")
	}
}

func TestScenarioConfigParsing(t *testing.T) {
	good := ScenarioConfig{
		Mode: "batch", Heuristic: "maxmin", Tasks: 30,
		Heterogeneity: "HiHi", Consistency: "semi-consistent",
		ETSRule: "table1",
	}
	sc, err := good.Scenario()
	if err != nil {
		t.Fatal(err)
	}
	if sc.Heterogeneity != workload.HiHi || sc.Consistency != workload.SemiConsistent ||
		sc.ETSRule != grid.ETSTable1 {
		t.Fatalf("parsed scenario wrong: %+v", sc)
	}

	bad := []ScenarioConfig{
		{Mode: "warp", Heuristic: "mct", Tasks: 10},
		{Heuristic: "mct", Tasks: 10, Consistency: "diagonal"},
		{Heuristic: "mct", Tasks: 10, Heterogeneity: "MegaHi"},
		{Heuristic: "mct", Tasks: 10, ETSRule: "cubic"},
		{Heuristic: "nonsense", Tasks: 10},
		{Heuristic: "mct", Tasks: 0},
	}
	for i, c := range bad {
		if _, err := c.Scenario(); err == nil {
			t.Errorf("bad config %d accepted: %+v", i, c)
		}
	}
}

func TestLoadSaveScenarios(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "scenarios.json")
	want := []Scenario{
		PaperScenario("mct", 50, workload.Inconsistent),
		PaperScenario("minmin", 100, workload.Consistent),
	}
	if err := SaveScenarios(path, want); err != nil {
		t.Fatal(err)
	}
	got, err := LoadScenarios(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("loaded %d scenarios", len(got))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("scenario %d differs:\n  %+v\n  %+v", i, got[i], want[i])
		}
	}
}

func TestLoadSingleObject(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "one.json")
	blob := `{"heuristic": "sufferage", "tasks": 25, "consistency": "consistent"}`
	if err := os.WriteFile(path, []byte(blob), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := LoadScenarios(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Heuristic != "sufferage" || got[0].Mode != Batch {
		t.Fatalf("loaded %+v", got)
	}
}

func TestLoadScenariosErrors(t *testing.T) {
	if _, err := LoadScenarios("/nonexistent/nope.json"); err == nil {
		t.Error("missing file accepted")
	}
	dir := t.TempDir()
	garbage := filepath.Join(dir, "garbage.json")
	if err := os.WriteFile(garbage, []byte("{{{"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadScenarios(garbage); err == nil {
		t.Error("garbage accepted")
	}
	empty := filepath.Join(dir, "empty.json")
	if err := os.WriteFile(empty, []byte("[]"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadScenarios(empty); err == nil {
		t.Error("empty array accepted")
	}
	badEntry := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(badEntry, []byte(`[{"heuristic":"mct","tasks":0}]`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadScenarios(badEntry); err == nil {
		t.Error("invalid entry accepted")
	}
	if err := SaveScenarios(filepath.Join(dir, "x.json"), nil); err == nil {
		t.Error("saving nothing accepted")
	}
}

// TestConfigScenarioRunnable loads a config and actually runs it.
func TestConfigScenarioRunnable(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "run.json")
	blob := `{"heuristic": "mct", "tasks": 20}`
	if err := os.WriteFile(path, []byte(blob), 0o644); err != nil {
		t.Fatal(err)
	}
	scs, err := LoadScenarios(path)
	if err != nil {
		t.Fatal(err)
	}
	cmp, err := Compare(scs[0], 1, 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	if cmp.Reps != 4 {
		t.Fatalf("comparison reps %d", cmp.Reps)
	}
}
