package sim

import (
	"fmt"

	"gridtrust/internal/fault"
	"gridtrust/internal/grid"
	"gridtrust/internal/sched"
	"gridtrust/internal/trust"
	"gridtrust/internal/workload"
)

// Mode selects between on-line and batch scheduling.
type Mode int

// The two scheduling modes of Section 4.1.
const (
	// Immediate maps each request as it arrives (MCT-style).
	Immediate Mode = iota
	// Batch collects requests into meta-requests over a fixed interval
	// and maps each meta-request as a whole (Min-min / Sufferage style).
	Batch
)

// String names the mode.
func (m Mode) String() string {
	switch m {
	case Immediate:
		return "immediate"
	case Batch:
		return "batch"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// DefaultBatchInterval is the meta-request collection window in simulated
// seconds.  With the paper's saturating arrivals it yields meta-requests
// of roughly ten requests on five machines.
const DefaultBatchInterval = 100.0

// Scenario is a complete experiment specification.  The zero value is not
// runnable; use PaperScenario or fill the fields and call Validate.
type Scenario struct {
	// Name labels the scenario in reports.
	Name string
	// Mode and Heuristic select the scheduler.  Heuristic is a name
	// accepted by sched.ImmediateByName (immediate mode) or
	// sched.BatchByName (batch mode).
	Mode      Mode
	Heuristic string

	// Tasks, Machines, Heterogeneity, Consistency, ArrivalRate, NumCDs
	// and NumRDs parameterise the workload (see workload.Spec).
	Tasks         int
	Machines      int
	Heterogeneity workload.Heterogeneity
	Consistency   workload.Consistency
	ArrivalRate   float64
	NumCDs        int
	NumRDs        int

	// ETSRule selects the Table 1 reading for trust costs (see
	// grid.ETSRule); PaperScenario uses grid.ETSLinear.
	ETSRule grid.ETSRule

	// DeadlineSlack, when positive, attaches deadlines to requests (see
	// workload.Spec.DeadlineSlack); the miss rate becomes a reported
	// metric.  Zero (the paper's setting) disables deadlines.
	DeadlineSlack float64

	// BatchInterval is the meta-request window (batch mode only).
	BatchInterval float64

	// TCWeight is the trust-cost weight (paper: 15); FlatOverheadPct is
	// the unaware flat security overhead (paper: 50).
	TCWeight        float64
	FlatOverheadPct float64

	// Fault configures machine churn and adversary injection (see
	// fault.Plan).  The zero plan is inactive and keeps the simulator on
	// its fault-free fast path, byte-identical to pre-fault binaries.
	// RunPair and the comparison grids derive Fault.Seed from the
	// replication stream so both policies of a pair replay the identical
	// fault timeline; standalone Run callers set it themselves.
	Fault fault.Plan

	// TrustModel selects a trust model from the registry to drive the
	// scheduler's trust-cost decision view dynamically: every completion
	// is observed and trust costs are re-derived from the model's evolving
	// scores (see modelview.go).  Empty — or the paper's own model, whose
	// steady state is the workload's static trust table — keeps the
	// pre-zoo table-driven path, byte-identical to earlier binaries.
	// A rival model forces the event-per-task fault kernel: the fast
	// path's fused scans precompute trust costs, which a live model
	// invalidates at every completion.
	TrustModel string
}

// dynamicTrust reports whether the scenario routes trust costs through a
// live model rather than the precomputed table.
func (s Scenario) dynamicTrust() bool {
	return s.TrustModel != "" && s.TrustModel != trust.DefaultModel
}

// PaperScenario returns the Section 5.3 configuration for one of the
// paper's six simulation tables: heuristic ∈ {mct, minmin, sufferage},
// tasks ∈ {50, 100}, consistency ∈ {consistent, inconsistent}.
func PaperScenario(heuristic string, tasks int, c workload.Consistency) Scenario {
	mode := Batch
	if heuristic == "mct" {
		mode = Immediate
	}
	spec := workload.PaperSpec(tasks, c)
	return Scenario{
		Name:            fmt.Sprintf("%s/%s/%d-tasks", heuristic, c, tasks),
		Mode:            mode,
		Heuristic:       heuristic,
		Tasks:           spec.Tasks,
		Machines:        spec.Machines,
		Heterogeneity:   spec.Heterogeneity,
		Consistency:     spec.Consistency,
		ArrivalRate:     spec.ArrivalRate,
		ETSRule:         spec.ETSRule,
		BatchInterval:   DefaultBatchInterval,
		TCWeight:        sched.DefaultTCWeight,
		FlatOverheadPct: sched.DefaultFlatOverheadPct,
	}
}

// Validate checks the scenario and resolves its heuristic, returning a
// descriptive error for anything unrunnable.
func (s Scenario) Validate() error {
	if s.Tasks <= 0 || s.Machines <= 0 {
		return fmt.Errorf("sim: scenario %q needs positive tasks and machines", s.Name)
	}
	if s.ArrivalRate <= 0 {
		return fmt.Errorf("sim: scenario %q needs a positive arrival rate", s.Name)
	}
	if s.TCWeight < 0 || s.FlatOverheadPct < 0 {
		return fmt.Errorf("sim: scenario %q has negative cost parameters", s.Name)
	}
	if s.DeadlineSlack < 0 {
		return fmt.Errorf("sim: scenario %q has negative deadline slack", s.Name)
	}
	switch s.Mode {
	case Immediate:
		if _, err := sched.ImmediateByName(s.Heuristic); err != nil {
			return fmt.Errorf("sim: scenario %q: %w", s.Name, err)
		}
	case Batch:
		if _, err := sched.BatchByName(s.Heuristic); err != nil {
			return fmt.Errorf("sim: scenario %q: %w", s.Name, err)
		}
		if s.BatchInterval <= 0 {
			return fmt.Errorf("sim: scenario %q needs a positive batch interval", s.Name)
		}
	default:
		return fmt.Errorf("sim: scenario %q has unknown mode %d", s.Name, int(s.Mode))
	}
	if err := s.Fault.Validate(); err != nil {
		return fmt.Errorf("sim: scenario %q: %w", s.Name, err)
	}
	if !trust.KnownModel(s.TrustModel) {
		return fmt.Errorf("sim: scenario %q: unknown trust model %q (registered: %v)",
			s.Name, s.TrustModel, trust.ModelNames())
	}
	if s.Fault.Churn() && s.Mode == Batch {
		// The metaheuristics only soft-avoid masked machines (see
		// internal/sched/mask.go); churn requires the hard guarantee the
		// deterministic heuristics provide.
		switch s.Heuristic {
		case "ga", "GA", "sanneal", "SAnneal", "gsa", "GSA":
			return fmt.Errorf("sim: scenario %q: heuristic %q does not honor availability masking; churn requires a deterministic batch heuristic",
				s.Name, s.Heuristic)
		}
	}
	return nil
}

// WorkloadSpec derives the workload.Spec for this scenario, for callers
// that need to materialise the same workload the simulator would (e.g.
// for tracing one run).
func (s Scenario) WorkloadSpec() workload.Spec {
	return workload.Spec{
		Tasks:         s.Tasks,
		Machines:      s.Machines,
		NumCDs:        s.NumCDs,
		NumRDs:        s.NumRDs,
		ArrivalRate:   s.ArrivalRate,
		MinToAs:       1,
		MaxToAs:       4,
		Heterogeneity: s.Heterogeneity,
		Consistency:   s.Consistency,
		ETSRule:       s.ETSRule,
		DeadlineSlack: s.DeadlineSlack,
	}
}

// policies builds the trust-aware and trust-unaware cost policies for the
// scenario's parameters.
func (s Scenario) policies() (aware, unaware sched.Policy, err error) {
	aware, err = sched.TrustAware(s.TCWeight)
	if err != nil {
		return
	}
	unaware, err = sched.TrustUnaware(s.FlatOverheadPct)
	return
}
