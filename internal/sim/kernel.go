package sim

import (
	"fmt"
	"sync/atomic"
)

// Kernel selects the discrete-event engine driving a run.  Both kernels
// execute the identical logical event sequence and produce bit-identical
// results; the reference kernel exists so that equivalence stays provable
// end to end (scripts/ci.sh diffs full sweep outputs across kernels).
type Kernel int

const (
	// KernelFast is the flat typed-event queue (des.Queue) with fused
	// scheduling scans: zero allocations steady-state.  The default.
	KernelFast Kernel = iota
	// KernelReference is the original closure-based des.Simulator path.
	KernelReference
)

// String names the kernel.
func (k Kernel) String() string {
	switch k {
	case KernelFast:
		return "fast"
	case KernelReference:
		return "reference"
	default:
		return fmt.Sprintf("Kernel(%d)", int(k))
	}
}

// KernelByName resolves "fast" or "reference".
func KernelByName(name string) (Kernel, error) {
	switch name {
	case "fast":
		return KernelFast, nil
	case "reference":
		return KernelReference, nil
	default:
		return 0, fmt.Errorf("sim: unknown DES kernel %q (want fast or reference)", name)
	}
}

var kernelMode atomic.Int32 // Kernel; zero value = KernelFast

// SetKernel selects the kernel for subsequent runs (process-wide; safe to
// call concurrently with runs, each run reads it once at entry).
func SetKernel(k Kernel) { kernelMode.Store(int32(k)) }

// ActiveKernel returns the currently selected kernel.
func ActiveKernel() Kernel { return Kernel(kernelMode.Load()) }

// intraWorkers is the number of workers sharding the machine scan inside
// one replication on the fast path.  1 (the default) scans serially.
// This composes with the cross-replication pool in internal/exp: results
// are bit-identical under any worker count (see DESIGN.md §13), so the
// setting is pure speed for very wide machine sets.
var intraWorkers atomic.Int32

// intraShardMin is the minimum number of machines per worker before a
// scan is sharded: below it, goroutine handoff costs more than the scan.
// A variable (not a constant) so determinism tests can force sharding on
// small instances.
var intraShardMin atomic.Int32

func init() {
	intraWorkers.Store(1)
	intraShardMin.Store(1024)
}

// SetIntraWorkers sets the intra-replication scan worker count; n < 1
// resets to serial.  Values above 64 are clamped.
func SetIntraWorkers(n int) {
	if n < 1 {
		n = 1
	}
	if n > 64 {
		n = 64
	}
	intraWorkers.Store(int32(n))
}

// IntraWorkers returns the current intra-replication worker count.
func IntraWorkers() int { return int(intraWorkers.Load()) }
