package sim

import (
	"context"
	"encoding/json"
	"fmt"

	"gridtrust/internal/exp"
	"gridtrust/internal/rng"
	"gridtrust/internal/stats"
)

// GridOptions parameterise a multi-cell experiment grid.
type GridOptions struct {
	// Seed is the master seed; replication r of every cell draws from rng
	// stream r derived from it, exactly as a standalone Compare would.
	Seed uint64
	// Reps is the replication count per cell.
	Reps int
	// Workers bounds the shared pool (<= 0 selects GOMAXPROCS).
	Workers int
	// OnCell, when set, receives one progress event per completed cell.
	OnCell func(exp.Progress)
	// Checkpoint, when set, journals every completed cell and restores
	// cells already on disk instead of re-running them, so an interrupted
	// grid resumed against the same directory re-executes only the cells
	// that never finished.  Restored cells fold to bit-identical
	// aggregates: every grid result type carries only exported fields on
	// its fold path, and Go's JSON float64 encoding round-trips exactly.
	Checkpoint *exp.Checkpoint
	// CheckpointSalt namespaces this grid's cells inside a shared
	// checkpoint directory (e.g. the sweep mode plus the task count).
	CheckpointSalt string
}

// engineOptions translates grid options for the engine, attaching the
// per-worker simulation scratch and the checkpoint codec for the grid's
// concrete replication type.
func (o GridOptions) engineOptions(enc func([]any) ([]byte, error), dec func([]byte) ([]any, error)) exp.Options {
	return exp.Options{
		Seed:           o.Seed,
		Reps:           o.Reps,
		Workers:        o.Workers,
		NewScratch:     func() any { return &runScratch{} },
		OnCell:         o.OnCell,
		Checkpoint:     o.Checkpoint,
		CheckpointSalt: o.CheckpointSalt,
		EncodeReps:     enc,
		DecodeReps:     dec,
	}
}

// repsCodec builds the checkpoint codec for grids whose replications
// produce *T: a JSON array with one element per replication, in
// replication order.
func repsCodec[T any]() (func([]any) ([]byte, error), func([]byte) ([]any, error)) {
	enc := func(reps []any) ([]byte, error) {
		out := make([]*T, len(reps))
		for i, v := range reps {
			tv, ok := v.(*T)
			if !ok || tv == nil {
				return nil, fmt.Errorf("sim: replication %d is %T, want %T", i, v, out[i])
			}
			out[i] = tv
		}
		return json.Marshal(out)
	}
	dec := func(data []byte) ([]any, error) {
		var in []*T
		if err := json.Unmarshal(data, &in); err != nil {
			return nil, err
		}
		out := make([]any, len(in))
		for i, v := range in {
			if v == nil {
				return nil, fmt.Errorf("sim: cached replication %d is null", i)
			}
			out[i] = v
		}
		return out, nil
	}
	return enc, dec
}

// simScratch recovers the worker's simulation scratch inside a cell
// runner, tolerating engines configured without one.
func simScratch(scratch any) *runScratch {
	if scr, ok := scratch.(*runScratch); ok {
		return scr
	}
	return &runScratch{}
}

// CompareCell names one scenario of a comparison grid.
type CompareCell struct {
	Name     string
	Scenario Scenario
}

// CompareGrid runs every cell × Reps paired replications as one job stream
// over a single worker pool and returns one Comparison per cell, in cell
// order.  Each cell's result is bit-identical to Compare on the same
// scenario with the same seed and replication count, regardless of worker
// count or cell order.
func CompareGrid(ctx context.Context, cells []CompareCell, opts GridOptions) ([]*Comparison, error) {
	if opts.Reps <= 0 {
		return nil, fmt.Errorf("sim: reps must be positive, got %d", opts.Reps)
	}
	ecells := make([]exp.Cell, len(cells))
	for i := range cells {
		sc := cells[i].Scenario
		if err := sc.Validate(); err != nil {
			return nil, err
		}
		name := cells[i].Name
		if name == "" {
			name = sc.Name
		}
		ecells[i] = exp.Cell{Name: name, Run: compareRunner(sc)}
	}
	res, err := exp.Run(ctx, ecells, opts.engineOptions(repsCodec[PairResult]()))
	if err != nil {
		return nil, err
	}
	cmps := make([]*Comparison, len(cells))
	for i := range res {
		cmps[i] = foldComparison(cells[i].Scenario, res[i].Reps)
	}
	return cmps, nil
}

// compareRunner adapts one scenario's paired replication to the engine.
func compareRunner(sc Scenario) exp.RunFunc {
	return func(ctx context.Context, rep int, src *rng.Source, scratch any) (any, error) {
		pair, err := runPair(sc, src, simScratch(scratch))
		if pair != nil {
			pair.Rep = rep
		}
		return pair, err
	}
}

// foldComparison aggregates per-replication pairs in replication order, so
// the Welford accumulators see the same sequence as a serial run.
func foldComparison(sc Scenario, reps []any) *Comparison {
	cmp := &Comparison{Scenario: sc, Reps: len(reps)}
	for _, v := range reps {
		p := v.(*PairResult)
		cmp.Unaware.add(p.Unaware)
		cmp.Aware.add(p.Aware)
		cmp.CompletionPairs.Add(p.Unaware.AvgCompletionTime, p.Aware.AvgCompletionTime)
	}
	return cmp
}

// EvolvingCell names one configuration of an evolving-trust grid.
type EvolvingCell struct {
	Name   string
	Config EvolvingConfig
}

// EvolvingSeriesResult aggregates RunEvolving over replications.  Trust
// levels are averaged over their numeric codes (A=1 … F=6).
type EvolvingSeriesResult struct {
	EarlyShare, LateShare   stats.Running
	FinalTrustReliable      stats.Running
	FinalTrustUnreliable    stats.Running
	IncidentsReliable       stats.Running
	IncidentsUnreliable     stats.Running
	MeanTCEarly, MeanTCLate stats.Running
}

// EvolvingGrid runs every cell × Reps independent replications of the
// evolving-trust experiment on one worker pool and aggregates per cell.
func EvolvingGrid(ctx context.Context, cells []EvolvingCell, opts GridOptions) ([]*EvolvingSeriesResult, error) {
	if opts.Reps <= 0 {
		return nil, fmt.Errorf("sim: reps must be positive, got %d", opts.Reps)
	}
	ecells := make([]exp.Cell, len(cells))
	for i := range cells {
		cfg := cells[i].Config
		ecells[i] = exp.Cell{Name: cells[i].Name, Run: func(ctx context.Context, rep int, src *rng.Source, scratch any) (any, error) {
			return RunEvolving(cfg, src)
		}}
	}
	res, err := exp.Run(ctx, ecells, opts.engineOptions(repsCodec[EvolvingResult]()))
	if err != nil {
		return nil, err
	}
	out := make([]*EvolvingSeriesResult, len(cells))
	for i := range res {
		agg := &EvolvingSeriesResult{}
		for _, v := range res[i].Reps {
			r := v.(*EvolvingResult)
			agg.EarlyShare.Add(r.EarlyUnreliableShare)
			agg.LateShare.Add(r.LateUnreliableShare)
			agg.FinalTrustReliable.Add(float64(r.FinalTrustReliable))
			agg.FinalTrustUnreliable.Add(float64(r.FinalTrustUnreliable))
			agg.IncidentsReliable.Add(float64(r.Incidents[ReliableRD]))
			agg.IncidentsUnreliable.Add(float64(r.Incidents[UnreliableRD]))
			agg.MeanTCEarly.Add(r.MeanTCEarly)
			agg.MeanTCLate.Add(r.MeanTCLate)
		}
		out[i] = agg
	}
	return out, nil
}

// StagingCell names one configuration of a data-staging grid.
type StagingCell struct {
	Name   string
	Config StagingConfig
}

// StagingSeriesResult aggregates RunStaging over replications.
type StagingSeriesResult struct {
	Improvement stats.Running
	PlainShare  stats.Running
}

// StagingGrid runs every cell × Reps replications of the data-staging
// experiment on one worker pool and aggregates per cell.  Each cell's
// aggregate is bit-identical to a serial StagingSeries run on the same
// seed and replication count.
func StagingGrid(ctx context.Context, cells []StagingCell, opts GridOptions) ([]*StagingSeriesResult, error) {
	if opts.Reps <= 0 {
		return nil, fmt.Errorf("sim: staging reps %d < 1", opts.Reps)
	}
	ecells := make([]exp.Cell, len(cells))
	for i := range cells {
		cfg := cells[i].Config
		ecells[i] = exp.Cell{Name: cells[i].Name, Run: func(ctx context.Context, rep int, src *rng.Source, scratch any) (any, error) {
			return RunStaging(cfg, src)
		}}
	}
	res, err := exp.Run(ctx, ecells, opts.engineOptions(repsCodec[StagingResult]()))
	if err != nil {
		return nil, err
	}
	out := make([]*StagingSeriesResult, len(cells))
	for i := range res {
		agg := &StagingSeriesResult{}
		for _, v := range res[i].Reps {
			r := v.(*StagingResult)
			agg.Improvement.Add(r.ImprovementPct)
			agg.PlainShare.Add(float64(r.PlainTransfers) / float64(r.Requests))
		}
		out[i] = agg
	}
	return out, nil
}
