package sim

import (
	"testing"

	"gridtrust/internal/grid"
	"gridtrust/internal/rng"
)

func TestEvolvingConfigValidation(t *testing.T) {
	bad := []EvolvingConfig{
		{Requests: 2},
		{Requests: 100, MachinesPerRD: -1},
		{Requests: 100, MeanEEC: -5},
		{Requests: 100, ReliableIncidentProb: 1.5},
		{Requests: 100, UnreliableIncidentProb: -0.1},
		{Requests: 100, RTL: grid.TrustLevel(9)},
		{Requests: 100, WarmupFraction: 1.5},
	}
	for i, cfg := range bad {
		if _, err := RunEvolving(cfg, rng.New(1)); err == nil {
			t.Errorf("bad config %d accepted: %+v", i, cfg)
		}
	}
	if _, err := RunEvolving(EvolvingConfig{}, nil); err == nil {
		t.Error("accepted nil source")
	}
}

// TestEvolvingTrustShiftsPlacements is the headline check of the
// future-work experiment: as trust evolves from observed behaviour, the
// misbehaving domain loses work and the mean trust cost falls.
func TestEvolvingTrustShiftsPlacements(t *testing.T) {
	res, err := RunEvolving(EvolvingConfig{Requests: 300}, rng.New(42))
	if err != nil {
		t.Fatal(err)
	}
	// Early phase: cold table, both domains equal, placements split
	// roughly evenly (bounded away from the extremes).
	if res.EarlyUnreliableShare < 0.15 || res.EarlyUnreliableShare > 0.85 {
		t.Fatalf("early unreliable share %.2f not near even", res.EarlyUnreliableShare)
	}
	// Late phase: the unreliable domain must have lost most traffic.
	if res.LateUnreliableShare >= res.EarlyUnreliableShare/2 {
		t.Fatalf("trust did not shift placements: early %.2f, late %.2f",
			res.EarlyUnreliableShare, res.LateUnreliableShare)
	}
	if res.LateUnreliableShare > 0.15 {
		t.Fatalf("late unreliable share %.2f still high", res.LateUnreliableShare)
	}
	// The reliable domain's trust climbs above the unreliable one's.
	if res.FinalTrustReliable <= res.FinalTrustUnreliable {
		t.Fatalf("final trust levels inverted: reliable %v vs unreliable %v",
			res.FinalTrustReliable, res.FinalTrustUnreliable)
	}
	// With optimistic initialisation both domains start at TC 0, so mean
	// trust cost cannot fall; what matters is that it stays near zero —
	// the scheduler routes around the distrusted domain instead of
	// paying its supplement.
	if res.MeanTCLate > 0.5 {
		t.Fatalf("late mean TC %.2f: scheduler kept paying trust supplements", res.MeanTCLate)
	}
	// Bookkeeping adds up.
	total := 0
	for _, n := range res.Placements {
		total += n
	}
	if total != 300 {
		t.Fatalf("placements sum to %d, want 300", total)
	}
	if res.Incidents[UnreliableRD] <= res.Incidents[ReliableRD] {
		t.Fatalf("incident counts implausible: %v", res.Incidents)
	}
}

func TestEvolvingDeterministic(t *testing.T) {
	a, err := RunEvolving(EvolvingConfig{Requests: 100}, rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunEvolving(EvolvingConfig{Requests: 100}, rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	if a.LateUnreliableShare != b.LateUnreliableShare ||
		a.MeanTCLate != b.MeanTCLate ||
		a.FinalTrustUnreliable != b.FinalTrustUnreliable {
		t.Fatalf("identical seeds diverged: %+v vs %+v", a, b)
	}
}

func TestEvolvingWithEqualBehaviour(t *testing.T) {
	// When both domains behave identically well, neither should be
	// starved: trust converges to the same level and placements stay
	// mixed.
	res, err := RunEvolving(EvolvingConfig{
		Requests:               200,
		ReliableIncidentProb:   0.01,
		UnreliableIncidentProb: 0.01,
	}, rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	if res.LateUnreliableShare < 0.2 || res.LateUnreliableShare > 0.8 {
		t.Fatalf("equal behaviour still skewed placements: %.2f", res.LateUnreliableShare)
	}
	if res.FinalTrustReliable != res.FinalTrustUnreliable {
		// Levels are quantised; equal behaviour should quantise equal.
		t.Logf("final levels differ by quantisation: %v vs %v (acceptable)",
			res.FinalTrustReliable, res.FinalTrustUnreliable)
	}
}
