package sim

import (
	"context"
	"fmt"
	"math"

	"gridtrust/internal/rng"
	"gridtrust/internal/secover"
	"gridtrust/internal/stats"
	"gridtrust/internal/workload"
)

// StagingConfig parameterises the data-staging experiment, which connects
// the paper's two evaluation halves: the scp/rcp overhead measurements of
// Tables 2-3 and the trust-aware scheduling of Tables 4-9.  Every request
// carries input data that must be staged to the chosen machine before
// execution.  A trust-unaware RMS applies blanket security — every
// transfer uses scp — while the trust-aware RMS uses plain rcp whenever
// the trust relationship already covers the request (TC = 0), "eliminating
// redundant application of secure operations" (Section 7).
type StagingConfig struct {
	// Requests and Machines size the instance (defaults 100 and 5).
	Requests int
	Machines int
	// LinkMbps selects the calibrated link of Tables 2-3 (100 or 1000;
	// default 100).
	LinkMbps float64
	// MaxInputMB bounds the per-request input size, drawn uniformly
	// from [1, MaxInputMB] (default 500).
	MaxInputMB float64
	// TCWeight is the ESC weight (default 15).
	TCWeight float64
}

// withDefaults fills unset fields.
func (c StagingConfig) withDefaults() StagingConfig {
	if c.Requests == 0 {
		c.Requests = 100
	}
	if c.Machines == 0 {
		c.Machines = 5
	}
	if c.LinkMbps == 0 {
		c.LinkMbps = 100
	}
	if c.MaxInputMB == 0 {
		c.MaxInputMB = 500
	}
	if c.TCWeight == 0 {
		c.TCWeight = 15
	}
	return c
}

// validate rejects unusable configs.
func (c StagingConfig) validate() error {
	switch {
	case c.Requests < 1:
		return fmt.Errorf("sim: staging needs at least one request")
	case c.Machines < 1:
		return fmt.Errorf("sim: staging needs at least one machine")
	case c.MaxInputMB < 1:
		return fmt.Errorf("sim: MaxInputMB %g < 1", c.MaxInputMB)
	case c.TCWeight < 0:
		return fmt.Errorf("sim: negative TC weight %g", c.TCWeight)
	}
	if _, err := secover.LinkFor(c.LinkMbps); err != nil {
		return err
	}
	return nil
}

// StagingResult reports the paired comparison.
type StagingResult struct {
	// UnawareMakespan and AwareMakespan are the charged makespans
	// (compute + security + staging) of the two schedulers on the same
	// instance.
	UnawareMakespan, AwareMakespan float64
	// ImprovementPct is (unaware − aware)/unaware × 100.
	ImprovementPct float64
	// UnawareStaging and AwareStaging are total staging seconds.
	UnawareStaging, AwareStaging float64
	// PlainTransfers counts aware transfers that ran over rcp because
	// trust already covered them (TC = 0).
	PlainTransfers int
	// Requests echoes the instance size.
	Requests int
}

// RunStaging draws one paper-style workload, attaches input sizes, and
// schedules it twice with greedy MCT:
//
//	trust-unaware: ranks by raw EEC; charged EEC×1.5 plus scp staging for
//	               every request (blanket security).
//	trust-aware:   ranks and is charged EEC×(1+w·TC/100) plus staging at
//	               rcp when TC = 0 and scp otherwise.
func RunStaging(cfg StagingConfig, src *rng.Source) (*StagingResult, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if src == nil {
		return nil, fmt.Errorf("sim: nil random source")
	}
	link, err := secover.LinkFor(cfg.LinkMbps)
	if err != nil {
		return nil, err
	}

	spec := workload.PaperSpec(cfg.Requests, workload.Inconsistent)
	spec.Machines = cfg.Machines
	w, err := workload.NewWorkload(src, spec)
	if err != nil {
		return nil, err
	}
	costs, err := newWorkloadCosts(w)
	if err != nil {
		return nil, err
	}
	inputMB := make([]float64, cfg.Requests)
	for i := range inputMB {
		inputMB[i] = src.Uniform(1, cfg.MaxInputMB)
	}
	// Staging times depend only on the request's input size, not the
	// machine, so compute each request's scp and rcp time once instead of
	// inside the O(requests x machines) ranking loop.  Time is a pure
	// function of the size, so the precomputed values are the ones the
	// loop would have computed.
	scpTime := make([]float64, cfg.Requests)
	rcpTime := make([]float64, cfg.Requests)
	for r, mb := range inputMB {
		if scpTime[r], err = link.Scp.Time(mb); err != nil {
			return nil, err
		}
		if rcpTime[r], err = link.Rcp.Time(mb); err != nil {
			return nil, err
		}
	}

	// chargedCost returns the full cost of running request r on machine
	// m under one of the two regimes.
	chargedCost := func(r, m int, aware bool) (total, staging float64, plain bool, err error) {
		eec := costs.EEC(r, m)
		tc, err := costs.TrustCost(r, m)
		if err != nil {
			return 0, 0, false, err
		}
		if aware {
			var t float64
			if tc == 0 {
				t = rcpTime[r]
				plain = true
			} else {
				t = scpTime[r]
			}
			return eec*(1+cfg.TCWeight*float64(tc)/100) + t, t, plain, nil
		}
		return eec*1.5 + scpTime[r], scpTime[r], false, nil
	}

	// schedule runs greedy MCT under one regime.  The aware scheduler
	// ranks by its true charged cost; the unaware one ranks by raw EEC
	// (it is oblivious to both security and secure-staging costs).
	schedule := func(aware bool) (makespan, staging float64, plainCount int, err error) {
		avail := make([]float64, cfg.Machines)
		for r := 0; r < cfg.Requests; r++ {
			best := -1
			bestRank := math.Inf(1)
			for m := 0; m < cfg.Machines; m++ {
				var rank float64
				if aware {
					total, _, _, cerr := chargedCost(r, m, true)
					if cerr != nil {
						return 0, 0, 0, cerr
					}
					rank = avail[m] + total
				} else {
					rank = avail[m] + costs.EEC(r, m)
				}
				if rank < bestRank {
					bestRank = rank
					best = m
				}
			}
			total, st, plain, cerr := chargedCost(r, best, aware)
			if cerr != nil {
				return 0, 0, 0, cerr
			}
			avail[best] += total
			staging += st
			if plain {
				plainCount++
			}
		}
		for _, a := range avail {
			if a > makespan {
				makespan = a
			}
		}
		return makespan, staging, plainCount, nil
	}

	unMS, unStage, _, err := schedule(false)
	if err != nil {
		return nil, err
	}
	awMS, awStage, plain, err := schedule(true)
	if err != nil {
		return nil, err
	}
	return &StagingResult{
		UnawareMakespan: unMS,
		AwareMakespan:   awMS,
		ImprovementPct:  (unMS - awMS) / unMS * 100,
		UnawareStaging:  unStage,
		AwareStaging:    awStage,
		PlainTransfers:  plain,
		Requests:        cfg.Requests,
	}, nil
}

// StagingSeries runs the experiment across replications and aggregates.
// It is a single-cell StagingGrid; results are identical to the serial
// fold over rng.Streams(seed, reps).
func StagingSeries(cfg StagingConfig, seed uint64, reps int) (improvement, plainShare stats.Running, err error) {
	res, err := StagingGrid(context.Background(),
		[]StagingCell{{Name: "staging", Config: cfg}},
		GridOptions{Seed: seed, Reps: reps})
	if err != nil {
		return improvement, plainShare, err
	}
	return res[0].Improvement, res[0].PlainShare, nil
}
