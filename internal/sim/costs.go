// Package sim orchestrates the paper's discrete-event experiments
// (Section 5.3): it materialises workloads, drives the immediate- and
// batch-mode TRM schedulers over the DES kernel, collects the metrics of
// Tables 4-9 (average completion time, machine utilization), and runs
// paired trust-aware vs trust-unaware comparisons across many seeded
// replications in a parallel worker pool.
package sim

import (
	"fmt"

	"gridtrust/internal/sched"
	"gridtrust/internal/workload"
)

// workloadCosts adapts a workload.Workload to sched.Costs, precomputing
// the trust cost for every (request, machine) pair.  TCs depend only on
// the request's CD/RTL/ToA and the machine's RD, both fixed at workload
// generation, so precomputation is exact.
type workloadCosts struct {
	w  *workload.Workload
	tc [][]int
}

// newWorkloadCosts builds the adapter, surfacing any trust-table gaps as
// errors up front rather than mid-simulation.
func newWorkloadCosts(w *workload.Workload) (*workloadCosts, error) {
	if w == nil {
		return nil, fmt.Errorf("sim: nil workload")
	}
	tc := make([][]int, len(w.Requests))
	for i, r := range w.Requests {
		row := make([]int, w.Spec.Machines)
		for m := 0; m < w.Spec.Machines; m++ {
			v, err := w.TrustCost(r, m)
			if err != nil {
				return nil, fmt.Errorf("sim: trust cost for request %d on machine %d: %w", i, m, err)
			}
			row[m] = v
		}
		tc[i] = row
	}
	return &workloadCosts{w: w, tc: tc}, nil
}

// NumRequests returns the instance's request count.
func (c *workloadCosts) NumRequests() int { return len(c.w.Requests) }

// NumMachines returns the instance's machine count.
func (c *workloadCosts) NumMachines() int { return c.w.Spec.Machines }

// EEC looks up the expected execution cost from the workload matrix; the
// request's TaskIndex selects the row.
func (c *workloadCosts) EEC(r, m int) float64 {
	return c.w.EEC.At(c.w.Requests[r].TaskIndex, m)
}

// TrustCost returns the precomputed TC.
func (c *workloadCosts) TrustCost(r, m int) (int, error) {
	if r < 0 || r >= len(c.tc) || m < 0 || m >= c.w.Spec.Machines {
		return 0, fmt.Errorf("sim: trust cost index (%d,%d) out of range", r, m)
	}
	return c.tc[r][m], nil
}

var _ sched.Costs = (*workloadCosts)(nil)
