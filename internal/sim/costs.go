// Package sim orchestrates the paper's discrete-event experiments
// (Section 5.3): it materialises workloads, drives the immediate- and
// batch-mode TRM schedulers over the DES kernel, collects the metrics of
// Tables 4-9 (average completion time, machine utilization), and runs
// paired trust-aware vs trust-unaware comparisons across many seeded
// replications in a parallel worker pool.
package sim

import (
	"fmt"

	"gridtrust/internal/grid"
	"gridtrust/internal/sched"
	"gridtrust/internal/workload"
)

// workloadCosts adapts a workload.Workload to sched.Costs, precomputing
// the trust cost for every (request, machine) pair.  TCs depend only on
// the request's CD/RTL/ToA and the machine's RD, both fixed at workload
// generation, so precomputation is exact — and because requests sharing a
// (CD, RTL, ToA) profile share an identical TC row, rows are deduplicated
// by profile: a 1M-request stream carries at most
// |CDs| × |RTLs| × |ToA sets| distinct rows, which is what makes the
// 5000-machine × 1M-task flagship run fit in memory.
type workloadCosts struct {
	w     *workload.Workload
	tc    [][]int // distinct TC rows, one per request profile
	rowOf []int32 // request index -> row index into tc

	// tableVersion is the trust-table version the TC rows were computed
	// from; the scratch-level cache revalidates against it.
	tableVersion uint64
}

// tcProfile keys the deduplication: everything a request contributes to
// its trust costs.  The activity set is encoded as a bitmask (OTL is the
// min over activities, so order is irrelevant).
type tcProfile struct {
	cd   grid.DomainID
	rtl  grid.TrustLevel
	acts uint64
}

// toaMask encodes a ToA's activity set as a bitmask; ok is false when an
// activity index does not fit (the caller then skips deduplication for
// that request).
func toaMask(toa grid.ToA) (mask uint64, ok bool) {
	for _, a := range toa.Activities {
		if a < 0 || int(a) >= 64 {
			return 0, false
		}
		mask |= 1 << uint(a)
	}
	return mask, true
}

// newWorkloadCosts builds the adapter, surfacing any trust-table gaps as
// errors up front rather than mid-simulation.
func newWorkloadCosts(w *workload.Workload) (*workloadCosts, error) {
	if w == nil {
		return nil, fmt.Errorf("sim: nil workload")
	}
	nm := w.Spec.Machines
	c := &workloadCosts{w: w, rowOf: make([]int32, len(w.Requests))}
	if w.Table != nil {
		c.tableVersion = w.Table.Version()
	}
	seen := make(map[tcProfile]int32)
	for i := range w.Requests {
		r := w.Requests[i]
		mask, maskOK := toaMask(r.ToA)
		p := tcProfile{cd: r.CD, rtl: r.ClientRTL, acts: mask}
		if maskOK {
			if j, dup := seen[p]; dup {
				c.rowOf[i] = j
				continue
			}
		}
		row := make([]int, nm)
		for m := 0; m < nm; m++ {
			v, err := w.TrustCost(r, m)
			if err != nil {
				return nil, fmt.Errorf("sim: trust cost for request %d on machine %d: %w", i, m, err)
			}
			row[m] = v
		}
		j := int32(len(c.tc))
		c.tc = append(c.tc, row)
		c.rowOf[i] = j
		if maskOK {
			seen[p] = j
		}
	}
	return c, nil
}

// cachedWorkloadCosts returns the scratch's memoized adapter when it was
// built for this exact workload (same pointer, same trust-table version),
// rebuilding otherwise.  RunPair and the exp replication pool reuse one
// scratch across many runs of the same workload, so in the steady state
// the TC precomputation is paid once per workload instead of once per
// run.  The reference kernel deliberately keeps the seed's
// rebuild-per-run behavior: it is the correctness baseline, and the
// equivalence tests must exercise the cold-build path too.
func cachedWorkloadCosts(scr *runScratch, w *workload.Workload) (*workloadCosts, error) {
	if c := scr.costs; c != nil && c.w == w {
		if w.Table == nil || c.tableVersion == w.Table.Version() {
			return c, nil
		}
	}
	c, err := newWorkloadCosts(w)
	if err != nil {
		return nil, err
	}
	scr.costs = c
	return c, nil
}

// NumRequests returns the instance's request count.
func (c *workloadCosts) NumRequests() int { return len(c.w.Requests) }

// NumMachines returns the instance's machine count.
func (c *workloadCosts) NumMachines() int { return c.w.Spec.Machines }

// EEC looks up the expected execution cost from the workload matrix; the
// request's TaskIndex selects the row.
func (c *workloadCosts) EEC(r, m int) float64 {
	return c.w.EEC.At(c.w.Requests[r].TaskIndex, m)
}

// eecRow returns request r's execution-cost row without copying (see
// Matrix.RowView); the fused scans walk it directly.
func (c *workloadCosts) eecRow(r int) []float64 {
	return c.w.EEC.RowView(c.w.Requests[r].TaskIndex)
}

// tcRow returns request r's trust-cost row (shared across requests with
// the same profile; read-only).
func (c *workloadCosts) tcRow(r int) []int {
	return c.tc[c.rowOf[r]]
}

// TrustCost returns the precomputed TC.
func (c *workloadCosts) TrustCost(r, m int) (int, error) {
	if r < 0 || r >= len(c.rowOf) || m < 0 || m >= c.w.Spec.Machines {
		return 0, fmt.Errorf("sim: trust cost index (%d,%d) out of range", r, m)
	}
	return c.tc[c.rowOf[r]][m], nil
}

var _ sched.Costs = (*workloadCosts)(nil)
