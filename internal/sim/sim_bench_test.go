package sim

import (
	"fmt"
	"testing"

	"gridtrust/internal/grid"
	"gridtrust/internal/rng"
	"gridtrust/internal/sched"
	"gridtrust/internal/workload"
)

// End-to-end simulator benchmarks, recorded in BENCH_des.json.
//
// BenchmarkSimRun drives complete replications (workload fixed, runs
// repeated) through both kernels at a wide 1024-machine instance, the
// scale where the fused scans and the typed queue pay off.  The scratch
// is reused across iterations exactly as RunPair/Compare reuse it, so
// the numbers reflect the steady state a sweep sees.
func BenchmarkSimRun(b *testing.B) {
	cases := []struct {
		name      string
		mode      Mode
		heuristic string
		tasks     int
	}{
		{"immediate-mct", Immediate, "mct", 2048},
		{"batch-minmin", Batch, "minmin", 512},
	}
	for _, tc := range cases {
		sc := PaperScenario(tc.heuristic, tc.tasks, workload.Inconsistent)
		sc.Mode = tc.mode
		sc.Heuristic = tc.heuristic
		sc.Machines = 1024
		w, err := workload.NewWorkload(rng.New(2024), sc.WorkloadSpec())
		if err != nil {
			b.Fatal(err)
		}
		aware, _, err := sc.policies()
		if err != nil {
			b.Fatal(err)
		}
		for _, k := range []Kernel{KernelReference, KernelFast} {
			b.Run(fmt.Sprintf("%s/%s", tc.name, k), func(b *testing.B) {
				SetKernel(k)
				defer SetKernel(KernelFast)
				scr := &runScratch{}
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := runTraced(sc, w, aware, nil, scr); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// flagshipWorkload hand-builds a workload far beyond what the Spec
// generator can materialise: the EEC matrix holds only `profiles`
// distinct task rows (requests cycle through them via TaskIndex), the
// ToA sets are shared slices, and the trust-cost rows deduplicate down
// to |CDs| x |RTLs| x |ToA sets| profiles inside newWorkloadCosts — so a
// 5000-machine x 1M-request instance fits comfortably in memory.
func flagshipWorkload(machines, requests, profiles int) (*workload.Workload, error) {
	const numCDs, numRDs = 4, 4
	src := rng.New(42)

	eec, err := workload.NewMatrix(profiles, machines)
	if err != nil {
		return nil, err
	}
	for t := 0; t < profiles; t++ {
		for m := 0; m < machines; m++ {
			eec.Set(t, m, src.Uniform(10, 1000))
		}
	}

	table := grid.NewTrustTable()
	for cd := 0; cd < numCDs; cd++ {
		for rd := 0; rd < numRDs; rd++ {
			for a := grid.Activity(0); a < grid.NumBuiltinActivities; a++ {
				if err := table.Set(grid.DomainID(cd), grid.DomainID(numCDs+rd), a,
					grid.TrustLevel(1+src.Intn(5))); err != nil {
					return nil, err
				}
			}
		}
	}
	machineRD := make([]grid.DomainID, machines)
	resourceRTL := make(map[grid.DomainID]grid.TrustLevel, numRDs)
	for rd := 0; rd < numRDs; rd++ {
		resourceRTL[grid.DomainID(numCDs+rd)] = grid.TrustLevel(src.IntRange(1, 6))
	}
	for m := range machineRD {
		machineRD[m] = grid.DomainID(numCDs + m%numRDs)
	}

	toas := make([]grid.ToA, 8)
	for i := range toas {
		n := src.IntRange(1, 4)
		perm := src.Perm(int(grid.NumBuiltinActivities))
		acts := make([]grid.Activity, n)
		for j := 0; j < n; j++ {
			acts[j] = grid.Activity(perm[j])
		}
		toas[i] = grid.ToA{Activities: acts}
	}

	reqs := make([]workload.Request, requests)
	now := 0.0
	for i := range reqs {
		now += src.Exponential(50)
		reqs[i] = workload.Request{
			ID:        i,
			ArrivalAt: now,
			TaskIndex: i % profiles,
			CD:        grid.DomainID(i % numCDs),
			ToA:       toas[i%len(toas)],
			ClientRTL: grid.TrustLevel(1 + i%6),
		}
	}

	return &workload.Workload{
		Spec:        workload.Spec{Tasks: requests, Machines: machines},
		EEC:         eec,
		Requests:    reqs,
		NumCDs:      numCDs,
		NumRDs:      numRDs,
		MachineRD:   machineRD,
		ResourceRTL: resourceRTL,
		Table:       table,
	}, nil
}

// BenchmarkSimFlagship is the 5000-machine x 1,000,000-task headline run
// (immediate MCT, trust-aware): 5e9 fused machine-scan steps through the
// flat queue in a single replication.  Run with -benchtime 1x; one
// iteration is the whole run.
func BenchmarkSimFlagship(b *testing.B) {
	const machines, requests = 5000, 1_000_000
	w, err := flagshipWorkload(machines, requests, 64)
	if err != nil {
		b.Fatal(err)
	}
	sc := PaperScenario("mct", requests, workload.Inconsistent)
	sc.Name = "flagship-5000x1M"
	sc.Machines = machines
	aware, err := sched.TrustAware(sc.TCWeight)
	if err != nil {
		b.Fatal(err)
	}
	SetKernel(KernelFast)
	scr := &runScratch{}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := runTraced(sc, w, aware, nil, scr)
		if err != nil {
			b.Fatal(err)
		}
		if res.Assigned != requests {
			b.Fatalf("assigned %d of %d", res.Assigned, requests)
		}
	}
}
