package sim

import (
	"fmt"
	"math"

	"gridtrust/internal/des"
	"gridtrust/internal/fault"
	"gridtrust/internal/grid"
	"gridtrust/internal/sched"
	"gridtrust/internal/stats"
	"gridtrust/internal/trace"
	"gridtrust/internal/workload"
)

// Fault-aware simulation
//
// The fast path (run.go) collapses a task's Start and Finish into its
// commit: once a machine's queue position is known the timeline is fully
// determined, so no further events are needed.  Under churn that shortcut
// breaks — a crash between start and finish loses the in-flight task — so
// this path keeps per-machine FIFO queues and schedules Start/Finish as
// real, cancellable DES events.
//
// Semantics:
//   - A crash loses only the in-flight task; it re-enters the scheduler
//     with its original request (and therefore its original RTL).  Work
//     already committed to the machine's queue stays queued and resumes
//     after repair — the commitment was to the machine, not the moment.
//   - A down machine is masked (availability +Inf) so the deterministic
//     heuristics never choose it; the commit double-checks the machine is
//     up, which also guards the soft-avoiding metaheuristics.
//   - Whitewashing resource domains advertise the maximum offerable trust
//     level: the scheduler's decision view uses the claimed trust costs
//     while charged costs keep the true ones.  The gap is reported as
//     RunResult.TrustTableError.
//   - Crash/repair renewal chains never drain the event queue, so the run
//     stops explicitly when every task completes or an error is recorded.

// faultTask is one committed unit of work: the request and its charged ECC.
type faultTask struct {
	req int
	ecc float64
}

// faultCosts overlays the adversaries' claimed trust costs on the true
// instance: the scheduler decides on this view, the simulator charges the
// truth.
type faultCosts struct {
	*workloadCosts
	dec [][]int
}

// TrustCost returns the claimed (decision-view) trust cost.
func (c *faultCosts) TrustCost(r, m int) (int, error) {
	if r < 0 || r >= len(c.dec) || m < 0 || m >= c.w.Spec.Machines {
		return 0, fmt.Errorf("sim: trust cost index (%d,%d) out of range", r, m)
	}
	return c.dec[r][m], nil
}

// newFaultCosts builds the decision view for the plan's adversarial
// resource domains and measures the resulting trust-table error (mean
// absolute claimed−true TC over all pairs).  Returns (nil, 0) when no
// domain whitewashes: decision and truth coincide.
func newFaultCosts(truth *workloadCosts, plan fault.Plan) (*faultCosts, float64, error) {
	w := truth.w
	adv := plan.AdversarialRDs(w.NumRDs)
	any := false
	for _, a := range adv {
		any = any || a
	}
	if !any {
		return nil, 0, nil
	}
	// The decision view is materialised per request (not per profile):
	// whitewashing perturbs rows machine-wise, and fault runs are small
	// enough that the expansion is cheap.
	dec := make([][]int, truth.NumRequests())
	for r := range dec {
		dec[r] = append([]int(nil), truth.tcRow(r)...)
	}
	var errSum float64
	for m := 0; m < w.Spec.Machines; m++ {
		rd := w.MachineRD[m]
		if !adv[rd] {
			continue
		}
		for r := range w.Requests {
			req := w.Requests[r]
			v, err := grid.TrustCostWith(w.Spec.ETSRule, req.ClientRTL, w.ResourceRTL[rd], grid.MaxOfferable)
			if err != nil {
				return nil, 0, fmt.Errorf("sim: claimed trust cost for request %d on machine %d: %w", r, m, err)
			}
			dec[r][m] = v
		}
	}
	n := 0
	for r := range dec {
		tcs := truth.tcRow(r)
		for m := range dec[r] {
			errSum += math.Abs(float64(dec[r][m] - tcs[m]))
			n++
		}
	}
	return &faultCosts{workloadCosts: truth, dec: dec}, errSum / float64(n), nil
}

// faultState carries the mutable state of one fault-aware run.
type faultState struct {
	sc     Scenario
	truth  *workloadCosts
	dec    sched.Costs
	view   *modelView // non-nil when Scenario.TrustModel drives decisions
	policy sched.Policy
	churn  *fault.Churn
	trace  *trace.Trace

	imm   sched.Immediate
	batch sched.Batch

	up       []bool
	queue    [][]faultTask // committed, waiting for the machine
	running  []faultTask   // running[m].req == -1 when idle
	runStart []float64
	finishEv []des.EventID
	avail    []float64
	busy     []float64

	pending  []int // batch mode: arrivals awaiting the next tick
	deferred []int // immediate mode: arrivals seen while every machine was down
	requeues []int // per-request requeue counts, against the plan's cap

	completed int
	commits   int
	tcSum     float64
	result    *RunResult
	err       error
}

// runFaultTraced executes one fault-aware run.  It mirrors runTraced's
// contract but pays event-per-task overhead for crash handling.
func runFaultTraced(sc Scenario, w *workload.Workload, policy sched.Policy, tr *trace.Trace) (*RunResult, error) {
	truth, err := newWorkloadCosts(w)
	if err != nil {
		return nil, err
	}
	if truth.NumRequests() != sc.Tasks || truth.NumMachines() != sc.Machines {
		return nil, fmt.Errorf("sim: workload shape %dx%d does not match scenario %dx%d",
			truth.NumRequests(), truth.NumMachines(), sc.Tasks, sc.Machines)
	}
	fc, tableErr, err := newFaultCosts(truth, sc.Fault)
	if err != nil {
		return nil, err
	}
	nm := sc.Machines
	st := &faultState{
		sc:       sc,
		truth:    truth,
		dec:      truth,
		policy:   policy,
		trace:    tr,
		up:       make([]bool, nm),
		queue:    make([][]faultTask, nm),
		running:  make([]faultTask, nm),
		runStart: make([]float64, nm),
		finishEv: make([]des.EventID, nm),
		avail:    make([]float64, nm),
		busy:     make([]float64, nm),
		requeues: make([]int, sc.Tasks),
		result: &RunResult{
			Policy:          policy.Name,
			Completions:     &stats.Sample{},
			BusyTime:        make([]float64, nm),
			TrustTableError: tableErr,
		},
	}
	if fc != nil {
		st.dec = fc
	}
	if sc.dynamicTrust() {
		if st.view, err = newModelView(sc, truth, st.dec); err != nil {
			return nil, err
		}
		st.dec = st.view
	}
	for m := 0; m < nm; m++ {
		st.up[m] = true
		st.running[m].req = -1
	}

	sim := des.New()
	switch sc.Mode {
	case Immediate:
		if st.imm, err = sched.ImmediateByName(sc.Heuristic); err != nil {
			return nil, err
		}
		for i := range w.Requests {
			req := w.Requests[i]
			if _, err := sim.ScheduleAt(req.ArrivalAt, func(s *des.Simulator) {
				if st.err != nil {
					return
				}
				st.record(trace.Event{Time: s.Now(), Kind: trace.Arrival, Request: req.ID, Machine: -1})
				st.placeOrDefer(s, req.ID)
			}); err != nil {
				return nil, err
			}
		}
	case Batch:
		if st.batch, err = sched.BatchByName(sc.Heuristic); err != nil {
			return nil, err
		}
		for i := range w.Requests {
			req := w.Requests[i]
			if _, err := sim.ScheduleAt(req.ArrivalAt, func(s *des.Simulator) {
				if st.err != nil {
					return
				}
				st.record(trace.Event{Time: s.Now(), Kind: trace.Arrival, Request: req.ID, Machine: -1})
				st.pending = append(st.pending, req.ID)
			}); err != nil {
				return nil, err
			}
		}
		if _, err := sim.Periodic(sc.BatchInterval, func(s *des.Simulator) bool {
			if st.err != nil || st.completed >= sc.Tasks {
				return false
			}
			if len(st.pending) > 0 && st.anyUp() {
				st.record(trace.Event{
					Time: s.Now(), Kind: trace.BatchTick,
					Request: -1, Machine: -1, Cost: float64(len(st.pending)),
				})
				st.assignBatch(s)
			}
			return st.completed < sc.Tasks && st.err == nil
		}); err != nil {
			return nil, err
		}
	}

	if sc.Fault.Churn() {
		if st.churn, err = fault.NewChurn(sc.Fault, nm); err != nil {
			return nil, err
		}
		for m := 0; m < nm; m++ {
			st.scheduleCrash(sim, m, st.churn.UpTime(m))
		}
	}

	sim.Run()
	if st.err != nil {
		return nil, st.err
	}
	if st.completed != sc.Tasks {
		return nil, fmt.Errorf("sim: only %d of %d requests completed", st.completed, sc.Tasks)
	}
	return st.finalize()
}

// record appends a trace event when tracing is enabled.
func (st *faultState) record(e trace.Event) {
	if st.trace != nil {
		st.trace.Add(e)
	}
}

// fail records the first error and stops the simulation: the crash/repair
// renewal chains would otherwise keep the event queue alive forever.
func (st *faultState) fail(s *des.Simulator, err error) {
	if st.err == nil {
		st.err = err
	}
	s.Stop()
}

// anyUp reports whether at least one machine is up.
func (st *faultState) anyUp() bool {
	for _, u := range st.up {
		if u {
			return true
		}
	}
	return false
}

// availability builds the masked availability vector at time now.  For an
// up machine it is the time its committed work drains; a down machine is
// masked out entirely.  The queue is summed in commitment order so that a
// crash-free run accumulates bit-identical floats to the fast path's
// stacked free time.
func (st *faultState) availability(now float64) []float64 {
	for m := range st.avail {
		if !st.up[m] {
			st.avail[m] = sched.Masked()
			continue
		}
		base := now
		if st.running[m].req != -1 {
			base = st.runStart[m] + st.running[m].ecc
		}
		for _, t := range st.queue[m] {
			base += t.ecc
		}
		st.avail[m] = base
	}
	return st.avail
}

// placeOrDefer maps one request immediately, or parks it when every
// machine is down (repair drains the deferred list).
func (st *faultState) placeOrDefer(s *des.Simulator, r int) {
	if !st.anyUp() {
		st.deferred = append(st.deferred, r)
		return
	}
	a, err := st.imm.AssignOne(st.dec, st.policy, r, st.availability(s.Now()))
	if err != nil {
		st.fail(s, err)
		return
	}
	st.commit(s, r, a.Machine)
}

// assignBatch maps the pending meta-request over the masked availability.
func (st *faultState) assignBatch(s *des.Simulator) {
	reqs := st.pending
	st.pending = st.pending[:0]
	as, err := st.batch.AssignBatch(st.dec, st.policy, reqs, st.availability(s.Now()))
	if err != nil {
		st.fail(s, err)
		return
	}
	if len(as) != len(reqs) {
		st.fail(s, fmt.Errorf("sim: batch heuristic mapped %d of %d requests", len(as), len(reqs)))
		return
	}
	for _, a := range as {
		st.commit(s, a.Req, a.Machine)
		if st.err != nil {
			return
		}
	}
}

// commit appends request r to machine m's queue and starts it if the
// machine is idle.  The masking contract is enforced here for every
// heuristic, deterministic or not.
func (st *faultState) commit(s *des.Simulator, r, m int) {
	if !st.up[m] {
		st.fail(s, fmt.Errorf("sim: heuristic %q mapped request %d to down machine %d", st.sc.Heuristic, r, m))
		return
	}
	ecc, err := sched.ChargedECC(st.truth, st.policy, r, m)
	if err != nil {
		st.fail(s, err)
		return
	}
	tc, err := st.truth.TrustCost(r, m)
	if err != nil {
		st.fail(s, err)
		return
	}
	now := s.Now()
	st.record(trace.Event{Time: now, Kind: trace.Scheduled, Request: r, Machine: m, Cost: ecc})
	st.tcSum += float64(tc)
	st.commits++
	st.result.Assigned++
	st.queue[m] = append(st.queue[m], faultTask{req: r, ecc: ecc})
	st.startNext(s, m)
}

// startNext starts machine m's queue head when m is up and idle.
func (st *faultState) startNext(s *des.Simulator, m int) {
	if !st.up[m] || st.running[m].req != -1 || len(st.queue[m]) == 0 {
		return
	}
	t := st.queue[m][0]
	copy(st.queue[m], st.queue[m][1:])
	st.queue[m] = st.queue[m][:len(st.queue[m])-1]
	now := s.Now()
	st.running[m] = t
	st.runStart[m] = now
	st.record(trace.Event{Time: now, Kind: trace.Start, Request: t.req, Machine: m, Cost: t.ecc})
	ev, err := s.ScheduleAt(now+t.ecc, func(s *des.Simulator) { st.onFinish(s, m) })
	if err != nil {
		st.fail(s, err)
		return
	}
	st.finishEv[m] = ev
}

// onFinish completes machine m's running task.
func (st *faultState) onFinish(s *des.Simulator, m int) {
	if st.err != nil {
		return
	}
	t := st.running[m]
	now := s.Now()
	st.record(trace.Event{Time: now, Kind: trace.Finish, Request: t.req, Machine: m, Cost: t.ecc})
	st.busy[m] += t.ecc
	req := st.truth.w.Requests[t.req]
	st.result.Completions.Add(now - req.ArrivalAt)
	if req.Deadline > 0 && now > req.Deadline {
		st.result.DeadlineMisses++
	}
	if now > st.result.Makespan {
		st.result.Makespan = now
	}
	if st.view != nil {
		if err := st.view.noteFinish(t.req, m); err != nil {
			st.fail(s, err)
			return
		}
	}
	st.running[m].req = -1
	st.completed++
	if st.completed == st.sc.Tasks {
		s.Stop()
		return
	}
	st.startNext(s, m)
}

// scheduleCrash arms machine m's next crash after the given up-time.
func (st *faultState) scheduleCrash(s *des.Simulator, m int, up float64) {
	if _, err := s.ScheduleAt(s.Now()+up, func(s *des.Simulator) { st.onCrash(s, m) }); err != nil {
		st.fail(s, err)
	}
}

// onCrash takes machine m down: the in-flight task (if any) is lost, its
// partial work wasted, and the request requeued; queued tasks wait out the
// repair.
func (st *faultState) onCrash(s *des.Simulator, m int) {
	if st.err != nil {
		return
	}
	now := s.Now()
	st.up[m] = false
	st.result.Failures++
	down := st.churn.DownTime(m)
	lost := st.running[m]
	st.record(trace.Event{Time: now, Kind: trace.Failure, Request: lost.req, Machine: m, Cost: down})
	if lost.req != -1 {
		s.Cancel(st.finishEv[m])
		partial := now - st.runStart[m]
		st.busy[m] += partial
		st.result.WastedWork += partial
		st.running[m].req = -1
		st.requeue(s, lost.req, m)
	}
	if st.err != nil {
		return
	}
	if _, err := s.ScheduleAt(now+down, func(s *des.Simulator) { st.onRepair(s, m) }); err != nil {
		st.fail(s, err)
	}
}

// requeue re-enters a crash-lost request into the scheduler.  The request
// is immutable, so it carries its original RTL by construction.
func (st *faultState) requeue(s *des.Simulator, r, m int) {
	st.requeues[r]++
	if st.requeues[r] > st.sc.Fault.RequeueCap() {
		st.fail(s, fmt.Errorf("sim: request %d requeued more than %d times; the fault plan starves the workload",
			r, st.sc.Fault.RequeueCap()))
		return
	}
	st.result.Requeues++
	st.record(trace.Event{Time: s.Now(), Kind: trace.Requeue, Request: r, Machine: m})
	if st.sc.Mode == Immediate {
		st.placeOrDefer(s, r)
	} else {
		st.pending = append(st.pending, r)
	}
}

// onRepair brings machine m back up, arms its next crash, resumes its
// queue and drains any arrivals deferred while the whole grid was down.
func (st *faultState) onRepair(s *des.Simulator, m int) {
	if st.err != nil {
		return
	}
	st.up[m] = true
	st.scheduleCrash(s, m, st.churn.UpTime(m))
	st.startNext(s, m)
	if len(st.deferred) > 0 {
		defd := st.deferred
		st.deferred = nil
		for _, r := range defd {
			st.placeOrDefer(s, r)
			if st.err != nil {
				return
			}
		}
	}
}

// finalize computes the aggregate metrics from the completed run.
func (st *faultState) finalize() (*RunResult, error) {
	res := st.result
	res.AvgCompletionTime = res.Completions.Mean()
	res.P50Completion = res.Completions.Quantile(0.5)
	res.P95Completion = res.Completions.Quantile(0.95)
	copy(res.BusyTime, st.busy)
	if res.Makespan <= 0 {
		return nil, fmt.Errorf("sim: degenerate makespan %g", res.Makespan)
	}
	util := 0.0
	for _, b := range st.busy {
		util += b / res.Makespan
	}
	res.MeanUtilization = util / float64(len(st.busy))
	res.MeanTrustCost = st.tcSum / float64(st.commits)
	res.DeadlineMissRate = float64(res.DeadlineMisses) / float64(st.completed)
	if st.view != nil {
		// Under a live model the reported gap is what the scheduler was
		// left believing after learning, not the static whitewash gap.
		terr, err := st.view.tableError()
		if err != nil {
			return nil, err
		}
		res.TrustTableError = terr
	}
	return res, nil
}
