package sim

import (
	"testing"

	"gridtrust/internal/rng"
	"gridtrust/internal/trust"
	"gridtrust/internal/workload"
)

// BenchmarkTrustzooModelOverhead measures the cost of driving the DES
// scheduler through each registered trust model (the modelView wrapper:
// per-finish Observe, per-decision Trust fused with the claimed table)
// against the static table-driven default path, on the Table-4 scenario.
// Recorded in BENCH_trustzoo.json.
func BenchmarkTrustzooModelOverhead(b *testing.B) {
	base := PaperScenario("mct", 100, workload.Inconsistent)
	w, err := workload.NewWorkload(rng.New(2002), base.WorkloadSpec())
	if err != nil {
		b.Fatal(err)
	}
	aware, _, err := base.policies()
	if err != nil {
		b.Fatal(err)
	}
	run := func(b *testing.B, model string) {
		sc := base
		sc.TrustModel = model
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := Run(sc, w, aware); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("static-table", func(b *testing.B) { run(b, "") })
	for _, m := range trust.ModelNames() {
		b.Run("model="+m, func(b *testing.B) { run(b, m) })
	}
}
