package sim

import (
	"fmt"
	"math"

	"gridtrust/internal/des"
	"gridtrust/internal/sched"
	"gridtrust/internal/stats"
	"gridtrust/internal/trace"
	"gridtrust/internal/workload"
)

// RunResult captures one simulation run's metrics — the quantities the
// paper reports in Tables 4-9 plus supporting detail.
type RunResult struct {
	// Policy is the cost policy name ("trust-aware"/"trust-unaware").
	Policy string
	// AvgCompletionTime is the mean over requests of (finish − arrival),
	// the paper's "Ave. completion time" column.
	AvgCompletionTime float64
	// Makespan is the time the last request finishes.
	Makespan float64
	// MeanUtilization is busy time / makespan averaged over machines,
	// the paper's "Machine utilization" column (a fraction in [0,1]).
	MeanUtilization float64
	// Completions holds per-request (finish − arrival) samples.
	Completions *stats.Sample
	// BusyTime holds per-machine busy time.
	BusyTime []float64
	// Assigned counts scheduling commits: Tasks on a fault-free success,
	// Tasks + Requeues when churn forced rescheduling.
	Assigned int
	// MeanTrustCost is the mean TC of the chosen (request, machine)
	// pairs — diagnostic for how well the mapper dodged trust costs.
	MeanTrustCost float64
	// P50Completion and P95Completion are completion-time percentiles;
	// the paper reports only the mean, but tail latency is what a Grid
	// user feels.
	P50Completion, P95Completion float64
	// DeadlineMisses counts requests finishing after their deadline;
	// DeadlineMissRate is the fraction (0 when the workload carries no
	// deadlines).
	DeadlineMisses   int
	DeadlineMissRate float64

	// Fault-run metrics, all zero on the fault-free fast path.  Failures
	// counts machine crashes during the run; Requeues counts crash-lost
	// tasks re-entering the scheduler (so Assigned = Tasks + Requeues);
	// WastedWork is the total partial execution time lost to crashes;
	// TrustTableError is the mean absolute gap between the claimed
	// (decision-view) and true trust costs under adversary injection.
	Failures        int
	Requeues        int
	WastedWork      float64
	TrustTableError float64
}

// Run executes the scenario once on the given workload under the given
// policy.  The workload must have been generated with the scenario's
// WorkloadSpec; Run is deterministic given its inputs.
func Run(sc Scenario, w *workload.Workload, policy sched.Policy) (*RunResult, error) {
	return RunTraced(sc, w, policy, nil)
}

// runScratch holds the per-run working buffers.  A zero value is ready to
// use; reusing one scratch across runs (RunPair) and across replications
// within a Compare worker keeps the steady-state scheduling loop free of
// heap allocation.  A scratch must not be shared between goroutines.
type runScratch struct {
	freeTime []float64
	busy     []float64
	avail    []float64
	pending  []int
	asg      []sched.Assignment

	// q is the flat event queue reused across runs on the fast path
	// (Reset keeps its buffers); shardM/shardV hold per-worker results
	// of sharded decision scans; costs memoizes the TC precomputation
	// per workload (see cachedWorkloadCosts).
	q      *des.Queue
	shardM []int
	shardV []float64
	costs  *workloadCosts
}

// prepare sizes the buffers for nm machines and zeroes the accumulators.
func (scr *runScratch) prepare(nm int) {
	scr.freeTime = growFloats(scr.freeTime, nm)
	scr.busy = growFloats(scr.busy, nm)
	scr.avail = growFloats(scr.avail, nm)
	for m := 0; m < nm; m++ {
		scr.freeTime[m] = 0
		scr.busy[m] = 0
	}
	scr.pending = scr.pending[:0]
}

// growFloats returns s with length n, reallocating only when capacity is
// short; contents are unspecified.
func growFloats(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	return s[:n]
}

// RunTraced is Run with an optional execution trace collector; pass nil
// to skip tracing (no overhead).
func RunTraced(sc Scenario, w *workload.Workload, policy sched.Policy, tr *trace.Trace) (*RunResult, error) {
	return runTraced(sc, w, policy, tr, &runScratch{})
}

// runTraced is RunTraced with caller-provided scratch.
func runTraced(sc Scenario, w *workload.Workload, policy sched.Policy, tr *trace.Trace, scr *runScratch) (*RunResult, error) {
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	if sc.Fault.Active() || sc.dynamicTrust() {
		if ActiveKernel() == KernelFast {
			return runFaultTracedFlat(sc, w, policy, tr)
		}
		return runFaultTraced(sc, w, policy, tr)
	}
	if ActiveKernel() == KernelFast {
		return runTracedFlat(sc, w, policy, tr, scr)
	}
	costs, err := newWorkloadCosts(w)
	if err != nil {
		return nil, err
	}
	if costs.NumRequests() != sc.Tasks || costs.NumMachines() != sc.Machines {
		return nil, fmt.Errorf("sim: workload shape %dx%d does not match scenario %dx%d",
			costs.NumRequests(), costs.NumMachines(), sc.Tasks, sc.Machines)
	}

	scr.prepare(sc.Machines)
	st := &runState{
		sc:     sc,
		costs:  costs,
		policy: policy,
		trace:  tr,
		scr:    scr,
		result: &RunResult{
			Policy:      policy.Name,
			Completions: &stats.Sample{},
			BusyTime:    make([]float64, sc.Machines),
		},
	}

	sim := des.New()
	switch sc.Mode {
	case Immediate:
		h, err := sched.ImmediateByName(sc.Heuristic)
		if err != nil {
			return nil, err
		}
		for i := range w.Requests {
			req := w.Requests[i]
			if _, err := sim.ScheduleAt(req.ArrivalAt, func(s *des.Simulator) {
				if st.err != nil {
					return
				}
				st.record(trace.Event{Time: s.Now(), Kind: trace.Arrival, Request: req.ID, Machine: -1})
				st.err = st.assignImmediate(h, req.ID, s.Now())
			}); err != nil {
				return nil, err
			}
		}
	case Batch:
		h, err := sched.BatchByName(sc.Heuristic)
		if err != nil {
			return nil, err
		}
		for i := range w.Requests {
			req := w.Requests[i]
			if _, err := sim.ScheduleAt(req.ArrivalAt, func(s *des.Simulator) {
				st.record(trace.Event{Time: s.Now(), Kind: trace.Arrival, Request: req.ID, Machine: -1})
				st.scr.pending = append(st.scr.pending, req.ID)
			}); err != nil {
				return nil, err
			}
		}
		// Batch ticks every BatchInterval until all requests are
		// scheduled; after the last arrival the next tick drains the
		// final meta-request.
		if _, err := sim.Periodic(sc.BatchInterval, func(s *des.Simulator) bool {
			if st.err != nil {
				return false
			}
			if len(st.scr.pending) > 0 {
				st.record(trace.Event{
					Time: s.Now(), Kind: trace.BatchTick,
					Request: -1, Machine: -1, Cost: float64(len(st.scr.pending)),
				})
				st.err = st.assignBatch(h, s.Now())
			}
			return st.result.Assigned < sc.Tasks && st.err == nil
		}); err != nil {
			return nil, err
		}
	}

	sim.Run()
	if st.err != nil {
		return nil, st.err
	}
	if st.result.Assigned != sc.Tasks {
		return nil, fmt.Errorf("sim: only %d of %d requests scheduled", st.result.Assigned, sc.Tasks)
	}
	return st.finalize(w)
}

// runState carries the mutable simulation state shared by event handlers.
// scr.freeTime[m] is the absolute time machine m finishes its committed
// work; scr.busy[m] accumulates charged service time; scr.pending holds
// batch-mode requests awaiting the next meta-request.
type runState struct {
	sc     Scenario
	costs  *workloadCosts
	policy sched.Policy

	scr   *runScratch
	trace *trace.Trace

	// intraW and shardMin snapshot the intra-replication sharding knobs
	// at run entry (fast path only) so one run never mixes settings.
	intraW   int
	shardMin int

	tcSum  float64
	result *RunResult
	err    error
}

// availability returns the scheduler's availability vector at time now:
// a machine already idle is available immediately.  The returned slice is
// scratch, valid until the next call; heuristics never mutate or retain
// it.
func (st *runState) availability(now float64) []float64 {
	a := st.scr.avail
	for m, ft := range st.scr.freeTime {
		a[m] = math.Max(ft, now)
	}
	return a
}

// record appends a trace event when tracing is enabled.
func (st *runState) record(e trace.Event) {
	if st.trace != nil {
		st.trace.Add(e)
	}
}

// commit places request r on machine m at time now: the task starts when
// the machine frees up (never before now) and runs for its charged ECC.
func (st *runState) commit(r, m int, now, arrival float64) error {
	ecc, err := sched.ChargedECC(st.costs, st.policy, r, m)
	if err != nil {
		return err
	}
	tc, err := st.costs.TrustCost(r, m)
	if err != nil {
		return err
	}
	st.commitCosted(r, m, now, arrival, ecc, tc)
	return nil
}

// commitCosted is commit with the charged ECC and TC already computed;
// the fast path's fused scans call it directly with inlined arithmetic
// that reproduces ChargedECC operation for operation.
func (st *runState) commitCosted(r, m int, now, arrival, ecc float64, tc int) {
	deadline := st.costs.w.Requests[r].Deadline
	start := math.Max(st.scr.freeTime[m], now)
	finish := start + ecc
	st.record(trace.Event{Time: now, Kind: trace.Scheduled, Request: r, Machine: m, Cost: ecc})
	st.record(trace.Event{Time: start, Kind: trace.Start, Request: r, Machine: m, Cost: ecc})
	st.record(trace.Event{Time: finish, Kind: trace.Finish, Request: r, Machine: m, Cost: ecc})
	st.scr.freeTime[m] = finish
	st.scr.busy[m] += ecc
	st.tcSum += float64(tc)
	st.result.Completions.Add(finish - arrival)
	if deadline > 0 && finish > deadline {
		st.result.DeadlineMisses++
	}
	if finish > st.result.Makespan {
		st.result.Makespan = finish
	}
	st.result.Assigned++
}

// assignImmediate maps one arriving request.
func (st *runState) assignImmediate(h sched.Immediate, r int, now float64) error {
	a, err := h.AssignOne(st.costs, st.policy, r, st.availability(now))
	if err != nil {
		return err
	}
	return st.commit(r, a.Machine, now, now)
}

// assignBatch maps the pending meta-request.  The arrival buffer and the
// schedule buffer are both recycled: reqs is fully consumed before any
// later arrival event can append to the backing array again.
func (st *runState) assignBatch(h sched.Batch, now float64) error {
	reqs := st.scr.pending
	st.scr.pending = st.scr.pending[:0]
	var as []sched.Assignment
	var err error
	if bi, ok := h.(sched.BatchInto); ok {
		as, err = bi.AssignBatchInto(st.costs, st.policy, reqs, st.availability(now), st.scr.asg[:0])
		st.scr.asg = as[:0]
	} else {
		as, err = h.AssignBatch(st.costs, st.policy, reqs, st.availability(now))
	}
	if err != nil {
		return err
	}
	if len(as) != len(reqs) {
		return fmt.Errorf("sim: batch heuristic mapped %d of %d requests", len(as), len(reqs))
	}
	for _, asg := range as {
		arrival := st.costs.w.Requests[asg.Req].ArrivalAt
		if err := st.commit(asg.Req, asg.Machine, now, arrival); err != nil {
			return err
		}
	}
	return nil
}

// finalize computes the aggregate metrics.
func (st *runState) finalize(w *workload.Workload) (*RunResult, error) {
	res := st.result
	res.AvgCompletionTime = res.Completions.Mean()
	res.P50Completion = res.Completions.Quantile(0.5)
	res.P95Completion = res.Completions.Quantile(0.95)
	copy(res.BusyTime, st.scr.busy)
	if res.Makespan <= 0 {
		return nil, fmt.Errorf("sim: degenerate makespan %g", res.Makespan)
	}
	util := 0.0
	for _, b := range st.scr.busy {
		util += b / res.Makespan
	}
	res.MeanUtilization = util / float64(len(st.scr.busy))
	res.MeanTrustCost = st.tcSum / float64(res.Assigned)
	res.DeadlineMissRate = float64(res.DeadlineMisses) / float64(res.Assigned)
	_ = w
	return res, nil
}
