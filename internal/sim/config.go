package sim

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"

	"gridtrust/internal/fault"
	"gridtrust/internal/grid"
	"gridtrust/internal/workload"
)

// ScenarioConfig is the JSON-friendly form of a Scenario, used by the
// command-line tools' -config flag so experiment definitions can live in
// version-controlled files.  Enumerations are strings; absent fields take
// the paper defaults.
type ScenarioConfig struct {
	Name            string  `json:"name,omitempty"`
	Mode            string  `json:"mode"`      // "immediate" | "batch"
	Heuristic       string  `json:"heuristic"` // e.g. "mct", "minmin"
	Tasks           int     `json:"tasks"`
	Machines        int     `json:"machines,omitempty"`          // default 5
	Heterogeneity   string  `json:"heterogeneity,omitempty"`     // LoLo|LoHi|HiLo|HiHi, default LoLo
	Consistency     string  `json:"consistency,omitempty"`       // inconsistent|consistent|semi-consistent
	ArrivalRate     float64 `json:"arrival_rate,omitempty"`      // default 0.04
	NumCDs          int     `json:"num_cds,omitempty"`           // 0 = draw [1,4]
	NumRDs          int     `json:"num_rds,omitempty"`           // 0 = draw [1,4]
	ETSRule         string  `json:"ets_rule,omitempty"`          // table1|linear, default linear
	BatchInterval   float64 `json:"batch_interval,omitempty"`    // default 100
	TCWeight        float64 `json:"tc_weight,omitempty"`         // default 15
	DeadlineSlack   float64 `json:"deadline_slack,omitempty"`    // 0 = no deadlines
	FlatOverheadPct float64 `json:"flat_overhead_pct,omitempty"` // default 50

	// Fault configures churn and adversary injection; absent means none.
	Fault *FaultConfig `json:"fault,omitempty"`
}

// FaultConfig is the JSON-friendly form of fault.Plan.
type FaultConfig struct {
	MTBF              float64 `json:"mtbf,omitempty"`
	MTTR              float64 `json:"mttr,omitempty"`
	UpShape           float64 `json:"up_shape,omitempty"`
	DownShape         float64 `json:"down_shape,omitempty"`
	AdversaryFraction float64 `json:"adversary_fraction,omitempty"`
	MaxRequeues       int     `json:"max_requeues,omitempty"`
	Seed              uint64  `json:"seed,omitempty"`
}

// plan converts the config to a fault.Plan.
func (f *FaultConfig) plan() fault.Plan {
	if f == nil {
		return fault.Plan{}
	}
	return fault.Plan{
		MTBF:              f.MTBF,
		MTTR:              f.MTTR,
		UpShape:           f.UpShape,
		DownShape:         f.DownShape,
		AdversaryFraction: f.AdversaryFraction,
		MaxRequeues:       f.MaxRequeues,
		Seed:              f.Seed,
	}
}

// parseConsistency maps the JSON name onto the enum.
func parseConsistency(s string) (workload.Consistency, error) {
	switch strings.ToLower(s) {
	case "", "inconsistent":
		return workload.Inconsistent, nil
	case "consistent":
		return workload.Consistent, nil
	case "semi-consistent", "semiconsistent":
		return workload.SemiConsistent, nil
	default:
		return 0, fmt.Errorf("sim: unknown consistency %q", s)
	}
}

// parseHeterogeneity maps the JSON name onto a preset.
func parseHeterogeneity(s string) (workload.Heterogeneity, error) {
	switch s {
	case "", "LoLo", "lolo":
		return workload.LoLo, nil
	case "LoHi", "lohi":
		return workload.LoHi, nil
	case "HiLo", "hilo":
		return workload.HiLo, nil
	case "HiHi", "hihi":
		return workload.HiHi, nil
	default:
		return workload.Heterogeneity{}, fmt.Errorf("sim: unknown heterogeneity %q", s)
	}
}

// parseETSRule maps the JSON name onto the enum.
func parseETSRule(s string) (grid.ETSRule, error) {
	switch strings.ToLower(s) {
	case "", "linear":
		return grid.ETSLinear, nil
	case "table1":
		return grid.ETSTable1, nil
	default:
		return 0, fmt.Errorf("sim: unknown ETS rule %q", s)
	}
}

// Scenario converts the config to a validated Scenario.
func (c ScenarioConfig) Scenario() (Scenario, error) {
	var mode Mode
	switch strings.ToLower(c.Mode) {
	case "immediate":
		mode = Immediate
	case "batch":
		mode = Batch
	case "":
		// Infer from the heuristic name.
		switch c.Heuristic {
		case "mct", "met", "olb", "kpb", "sa":
			mode = Immediate
		default:
			mode = Batch
		}
	default:
		return Scenario{}, fmt.Errorf("sim: unknown mode %q", c.Mode)
	}
	cons, err := parseConsistency(c.Consistency)
	if err != nil {
		return Scenario{}, err
	}
	het, err := parseHeterogeneity(c.Heterogeneity)
	if err != nil {
		return Scenario{}, err
	}
	rule, err := parseETSRule(c.ETSRule)
	if err != nil {
		return Scenario{}, err
	}

	sc := Scenario{
		Name:            c.Name,
		Mode:            mode,
		Heuristic:       c.Heuristic,
		Tasks:           c.Tasks,
		Machines:        c.Machines,
		Heterogeneity:   het,
		Consistency:     cons,
		ArrivalRate:     c.ArrivalRate,
		NumCDs:          c.NumCDs,
		NumRDs:          c.NumRDs,
		ETSRule:         rule,
		BatchInterval:   c.BatchInterval,
		TCWeight:        c.TCWeight,
		FlatOverheadPct: c.FlatOverheadPct,
		DeadlineSlack:   c.DeadlineSlack,
		Fault:           c.Fault.plan(),
	}
	// Paper defaults for absent numerics.
	if sc.Machines == 0 {
		sc.Machines = 5
	}
	if sc.ArrivalRate == 0 {
		sc.ArrivalRate = 0.04
	}
	if sc.BatchInterval == 0 {
		sc.BatchInterval = DefaultBatchInterval
	}
	if sc.TCWeight == 0 {
		sc.TCWeight = 15
	}
	if sc.FlatOverheadPct == 0 {
		sc.FlatOverheadPct = 50
	}
	if sc.Name == "" {
		sc.Name = fmt.Sprintf("%s/%s/%d-tasks", sc.Heuristic, sc.Consistency, sc.Tasks)
	}
	if err := sc.Validate(); err != nil {
		return Scenario{}, err
	}
	return sc, nil
}

// Config converts a Scenario back to its JSON form.
func (s Scenario) Config() ScenarioConfig {
	var fc *FaultConfig
	if s.Fault != (fault.Plan{}) {
		fc = &FaultConfig{
			MTBF:              s.Fault.MTBF,
			MTTR:              s.Fault.MTTR,
			UpShape:           s.Fault.UpShape,
			DownShape:         s.Fault.DownShape,
			AdversaryFraction: s.Fault.AdversaryFraction,
			MaxRequeues:       s.Fault.MaxRequeues,
			Seed:              s.Fault.Seed,
		}
	}
	return ScenarioConfig{
		Name:            s.Name,
		Mode:            s.Mode.String(),
		Heuristic:       s.Heuristic,
		Tasks:           s.Tasks,
		Machines:        s.Machines,
		Heterogeneity:   s.Heterogeneity.String(),
		Consistency:     s.Consistency.String(),
		ArrivalRate:     s.ArrivalRate,
		NumCDs:          s.NumCDs,
		NumRDs:          s.NumRDs,
		ETSRule:         s.ETSRule.String(),
		BatchInterval:   s.BatchInterval,
		TCWeight:        s.TCWeight,
		FlatOverheadPct: s.FlatOverheadPct,
		DeadlineSlack:   s.DeadlineSlack,
		Fault:           fc,
	}
}

// LoadScenarios reads a JSON file holding either one ScenarioConfig object
// or an array of them, returning validated scenarios.
func LoadScenarios(path string) ([]Scenario, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("sim: read config: %w", err)
	}
	var cfgs []ScenarioConfig
	trimmed := strings.TrimSpace(string(data))
	if strings.HasPrefix(trimmed, "[") {
		if err := json.Unmarshal(data, &cfgs); err != nil {
			return nil, fmt.Errorf("sim: parse config array: %w", err)
		}
	} else {
		var one ScenarioConfig
		if err := json.Unmarshal(data, &one); err != nil {
			return nil, fmt.Errorf("sim: parse config: %w", err)
		}
		cfgs = []ScenarioConfig{one}
	}
	out := make([]Scenario, 0, len(cfgs))
	for i, c := range cfgs {
		sc, err := c.Scenario()
		if err != nil {
			return nil, fmt.Errorf("sim: config entry %d: %w", i, err)
		}
		out = append(out, sc)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("sim: config %s holds no scenarios", path)
	}
	return out, nil
}

// SaveScenarios writes scenarios to path as a JSON array, the inverse of
// LoadScenarios.
func SaveScenarios(path string, scenarios []Scenario) error {
	if len(scenarios) == 0 {
		return fmt.Errorf("sim: no scenarios to save")
	}
	cfgs := make([]ScenarioConfig, len(scenarios))
	for i, sc := range scenarios {
		cfgs[i] = sc.Config()
	}
	data, err := json.MarshalIndent(cfgs, "", "  ")
	if err != nil {
		return fmt.Errorf("sim: marshal config: %w", err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return fmt.Errorf("sim: write config: %w", err)
	}
	return nil
}
