package sim

import (
	"fmt"
	"math"
	"sync"

	"gridtrust/internal/des"
	"gridtrust/internal/sched"
	"gridtrust/internal/stats"
	"gridtrust/internal/trace"
	"gridtrust/internal/workload"
)

// Fast-path simulation on the flat typed-event queue
//
// runTracedFlat executes the identical logical event sequence as the
// reference path in run.go — the same schedule calls in the same order,
// so the kernel-equivalence guarantee of internal/des (equal fire order,
// FIFO tie-breaks by schedule order) carries the whole run — while
// eliminating the reference path's per-event costs:
//
//   - events are typed (kind + request id), not closures: zero
//     allocations steady-state in the queue;
//   - the MCT/MET/OLB decision scans are fused: they walk the EEC row,
//     the (profile-deduplicated) TC row and the free-time vector
//     directly, computing the policy's closed-form ESC inline instead of
//     calling through sched.Costs and the policy func values.  Each
//     fused expression reproduces the reference float operations exactly
//     (see ESCForm), so scores, completion times and every derived
//     metric are bit-identical;
//   - with SetIntraWorkers(n > 1), wide machine scans are sharded into n
//     contiguous ranges.  Every range is scanned with the same strict-<
//     first-minimum rule and the shard results are merged in shard order
//     with strict <, which selects exactly the machine the serial scan
//     would: the first index attaining the global minimum.  Results are
//     therefore identical under any worker count.
//
// Heuristics without a fused form (KPB, SA, all batch heuristics) run
// their existing AssignOne/AssignBatch code over the same availability
// vector, still gaining the typed-queue savings.

// fusedScan names the immediate-mode heuristics with a fused fast scan.
type fusedScan int

const (
	fusedNone fusedScan = iota
	fusedMCT
	fusedMET
	fusedOLB
)

// fusedScanFor returns the fused scan for the heuristic, or fusedNone
// when the heuristic or the policy's decision form has no closed form.
func fusedScanFor(h sched.Immediate, p sched.Policy) fusedScan {
	if form, _ := p.DecisionForm(); form == sched.ESCOpaque {
		return fusedNone
	}
	switch h.(type) {
	case sched.MCT:
		return fusedMCT
	case sched.MET:
		return fusedMET
	case sched.OLB:
		return fusedOLB
	default:
		return fusedNone
	}
}

// fusedESC holds one ESC closed form for inline evaluation.
type fusedESC struct {
	form sched.ESCForm
	w    float64
}

// ecc computes EEC + ESC with the same float operations as
// sched.decisionECC / sched.ChargedECC under the corresponding policy.
// For ESCZero the sum eec + 0.0 is the identity because EEC >= 0.
func (f fusedESC) ecc(eec float64, tc int) float64 {
	switch f.form {
	case sched.ESCLinear:
		return eec + eec*(float64(tc)*f.w)/100
	case sched.ESCFlat:
		return eec + eec*f.w/100
	default: // ESCZero
		return eec
	}
}

// fusedScanRange scans machines [lo,hi) and returns the first machine
// attaining the scan's minimum (decision completion for MCT, decision
// ECC for MET, availability for OLB) and that minimum; (-1, +Inf) when
// the range is empty or fully masked.
//
// The inner loops are specialized per (scan, form) so the hot path
// carries no per-iteration dispatch, and the slices are re-sliced to the
// range up front so the compiler drops the bounds checks.  The manual
// max is bit-identical to the reference's math.Max here: simulation
// times are finite and non-negative, so the NaN and signed-zero cases
// that distinguish them cannot arise.  Each ESC expression keeps the
// reference parenthesization — in particular availability + (eec + esc),
// never (availability + eec) + esc — so every sum rounds identically.
func fusedScanRange(scan fusedScan, dec fusedESC, eec []float64, tcs []int, ft []float64, now float64, lo, hi int) (int, float64) {
	best := -1
	bestVal := math.Inf(1)
	if lo >= hi {
		return best, bestVal
	}
	eec, tcs, ft = eec[lo:hi:hi], tcs[lo:hi:hi], ft[lo:hi:hi]
	switch scan {
	case fusedMCT:
		switch dec.form {
		case sched.ESCLinear:
			for i, e := range eec {
				a := ft[i]
				if a < now {
					a = now
				}
				if done := a + (e + e*(float64(tcs[i])*dec.w)/100); done < bestVal {
					bestVal, best = done, i
				}
			}
		case sched.ESCFlat:
			for i, e := range eec {
				a := ft[i]
				if a < now {
					a = now
				}
				if done := a + (e + e*dec.w/100); done < bestVal {
					bestVal, best = done, i
				}
			}
		default: // ESCZero
			for i, e := range eec {
				a := ft[i]
				if a < now {
					a = now
				}
				if done := a + e; done < bestVal {
					bestVal, best = done, i
				}
			}
		}
	case fusedMET:
		switch dec.form {
		case sched.ESCLinear:
			for i, e := range eec {
				a := ft[i]
				if a < now {
					a = now
				}
				if sched.IsMasked(a) {
					continue
				}
				if ecc := e + e*(float64(tcs[i])*dec.w)/100; ecc < bestVal {
					bestVal, best = ecc, i
				}
			}
		case sched.ESCFlat:
			for i, e := range eec {
				a := ft[i]
				if a < now {
					a = now
				}
				if sched.IsMasked(a) {
					continue
				}
				if ecc := e + e*dec.w/100; ecc < bestVal {
					bestVal, best = ecc, i
				}
			}
		default:
			for i, e := range eec {
				a := ft[i]
				if a < now {
					a = now
				}
				if sched.IsMasked(a) {
					continue
				}
				if e < bestVal {
					bestVal, best = e, i
				}
			}
		}
	case fusedOLB:
		for i := range ft {
			a := ft[i]
			if a < now {
				a = now
			}
			if a < bestVal {
				bestVal, best = a, i
			}
		}
	}
	if best >= 0 {
		best += lo
	}
	return best, bestVal
}

// fusedPick runs the decision scan for request r at time now, sharding
// across st.intraW workers when the machine set is wide enough.
func (st *runState) fusedPick(scan fusedScan, dec fusedESC, r int, now float64) int {
	eec := st.costs.eecRow(r)
	tcs := st.costs.tcRow(r)
	ft := st.scr.freeTime
	nm := len(ft)
	w := st.intraW
	if w > 1 && nm >= w*st.shardMin {
		return st.fusedPickSharded(scan, dec, eec, tcs, ft, now, w)
	}
	m, _ := fusedScanRange(scan, dec, eec, tcs, ft, now, 0, nm)
	return m
}

// fusedPickSharded fans the scan out over w contiguous shards and merges
// in shard order.  Shard k covers [k·nm/w, (k+1)·nm/w); the strict-<
// merge keeps the earliest shard on ties, so the composite selection is
// exactly the serial scan's first minimum.
func (st *runState) fusedPickSharded(scan fusedScan, dec fusedESC, eec []float64, tcs []int, ft []float64, now float64, w int) int {
	nm := len(ft)
	if len(st.scr.shardM) < w {
		st.scr.shardM = make([]int, w)
		st.scr.shardV = make([]float64, w)
	}
	bestM := st.scr.shardM[:w]
	bestV := st.scr.shardV[:w]
	var wg sync.WaitGroup
	for k := 1; k < w; k++ {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			bestM[k], bestV[k] = fusedScanRange(scan, dec, eec, tcs, ft, now, k*nm/w, (k+1)*nm/w)
		}(k)
	}
	bestM[0], bestV[0] = fusedScanRange(scan, dec, eec, tcs, ft, now, 0, nm/w)
	wg.Wait()
	best := -1
	bestVal := math.Inf(1)
	for k := 0; k < w; k++ {
		if bestM[k] >= 0 && bestV[k] < bestVal {
			bestVal, best = bestV[k], bestM[k]
		}
	}
	return best
}

// commitFused commits request r to machine m, computing the charged ECC
// inline when the policy's charged form is closed.
func (st *runState) commitFused(ch fusedESC, opaque bool, r, m int, now, arrival float64) error {
	if opaque {
		return st.commit(r, m, now, arrival)
	}
	eec := st.costs.eecRow(r)[m]
	tc := st.costs.tcRow(r)[m]
	st.commitCosted(r, m, now, arrival, ch.ecc(eec, tc), tc)
	return nil
}

// runTracedFlat is runTraced's fault-free body on the flat queue.
func runTracedFlat(sc Scenario, w *workload.Workload, policy sched.Policy, tr *trace.Trace, scr *runScratch) (*RunResult, error) {
	costs, err := cachedWorkloadCosts(scr, w)
	if err != nil {
		return nil, err
	}
	if costs.NumRequests() != sc.Tasks || costs.NumMachines() != sc.Machines {
		return nil, fmt.Errorf("sim: workload shape %dx%d does not match scenario %dx%d",
			costs.NumRequests(), costs.NumMachines(), sc.Tasks, sc.Machines)
	}
	if sc.Tasks > math.MaxInt32 {
		return nil, fmt.Errorf("sim: %d tasks exceed the typed event payload range", sc.Tasks)
	}

	scr.prepare(sc.Machines)
	st := &runState{
		sc:       sc,
		costs:    costs,
		policy:   policy,
		trace:    tr,
		scr:      scr,
		intraW:   IntraWorkers(),
		shardMin: int(intraShardMin.Load()),
		result: &RunResult{
			Policy:      policy.Name,
			Completions: &stats.Sample{},
			BusyTime:    make([]float64, sc.Machines),
		},
	}

	if scr.q == nil {
		scr.q = des.NewQueue()
	}
	q := scr.q
	q.Reset()

	switch sc.Mode {
	case Immediate:
		h, err := sched.ImmediateByName(sc.Heuristic)
		if err != nil {
			return nil, err
		}
		scan := fusedScanFor(h, policy)
		chForm, chW := policy.ChargedForm()
		charge := fusedESC{form: chForm, w: chW}
		chargeOpaque := chForm == sched.ESCOpaque
		decForm, decW := policy.DecisionForm()
		dec := fusedESC{form: decForm, w: decW}
		kindArrival := q.RegisterKind(func(q *des.Queue, a, _ int32) {
			if st.err != nil {
				return
			}
			r := int(a)
			now := q.Now()
			st.record(trace.Event{Time: now, Kind: trace.Arrival, Request: r, Machine: -1})
			if scan == fusedNone {
				st.err = st.assignImmediate(h, r, now)
				return
			}
			m := st.fusedPick(scan, dec, r, now)
			if m < 0 {
				st.err = fmt.Errorf("sim: %s found no machine for request %d", sc.Heuristic, r)
				return
			}
			st.err = st.commitFused(charge, chargeOpaque, r, m, now, now)
		})
		for i := range w.Requests {
			req := &w.Requests[i]
			if _, err := q.ScheduleAt(req.ArrivalAt, kindArrival, int32(req.ID), 0); err != nil {
				return nil, err
			}
		}
	case Batch:
		h, err := sched.BatchByName(sc.Heuristic)
		if err != nil {
			return nil, err
		}
		kindArrival := q.RegisterKind(func(q *des.Queue, a, _ int32) {
			st.record(trace.Event{Time: q.Now(), Kind: trace.Arrival, Request: int(a), Machine: -1})
			st.scr.pending = append(st.scr.pending, int(a))
		})
		// The tick handler mirrors des.Periodic's wrapper around the
		// reference path's tick body: run the body, then re-arm unless
		// it ended the series; a failed re-arm ends the series too.
		var kindTick int32
		kindTick = q.RegisterKind(func(q *des.Queue, _, _ int32) {
			if st.err != nil {
				return
			}
			if len(st.scr.pending) > 0 {
				st.record(trace.Event{
					Time: q.Now(), Kind: trace.BatchTick,
					Request: -1, Machine: -1, Cost: float64(len(st.scr.pending)),
				})
				st.err = st.assignBatch(h, q.Now())
			}
			if st.result.Assigned < sc.Tasks && st.err == nil {
				_, _ = q.ScheduleAfter(sc.BatchInterval, kindTick, 0, 0)
			}
		})
		for i := range w.Requests {
			req := &w.Requests[i]
			if _, err := q.ScheduleAt(req.ArrivalAt, kindArrival, int32(req.ID), 0); err != nil {
				return nil, err
			}
		}
		if _, err := q.ScheduleAfter(sc.BatchInterval, kindTick, 0, 0); err != nil {
			return nil, err
		}
	}

	q.Run()
	if st.err != nil {
		return nil, st.err
	}
	if st.result.Assigned != sc.Tasks {
		return nil, fmt.Errorf("sim: only %d of %d requests scheduled", st.result.Assigned, sc.Tasks)
	}
	return st.finalize(w)
}
