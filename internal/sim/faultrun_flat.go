package sim

import (
	"fmt"

	"gridtrust/internal/des"
	"gridtrust/internal/fault"
	"gridtrust/internal/sched"
	"gridtrust/internal/stats"
	"gridtrust/internal/trace"
	"gridtrust/internal/workload"
)

// Flat-queue fault path
//
// flatFaultState mirrors faultrun.go on the typed event queue, the same
// way run_flat.go mirrors run.go and internal/des/flat.go mirrors the
// closure kernel: the closure-based implementation stays as the
// executable reference, and this file makes the identical schedule calls
// in the identical order (arrivals, first batch tick, crash arming,
// then whatever the fired handlers schedule).  Equal schedule order
// means equal sequence numbers, equal fire order — including
// equal-timestamp ties such as a finish racing a crash — and therefore
// bit-identical results; sim_flat_equiv_test.go and the ci.sh sweep diff
// enforce that.  Event payloads carry the request id (arrivals) or the
// machine index (finish/crash/repair).
type flatFaultState struct {
	*faultState
	q *des.Queue

	kFinish, kCrash, kRepair int32
	finishID                 []des.FlatID
}

// runFaultTracedFlat executes one fault-aware run on the flat queue.
func runFaultTracedFlat(sc Scenario, w *workload.Workload, policy sched.Policy, tr *trace.Trace) (*RunResult, error) {
	truth, err := newWorkloadCosts(w)
	if err != nil {
		return nil, err
	}
	if truth.NumRequests() != sc.Tasks || truth.NumMachines() != sc.Machines {
		return nil, fmt.Errorf("sim: workload shape %dx%d does not match scenario %dx%d",
			truth.NumRequests(), truth.NumMachines(), sc.Tasks, sc.Machines)
	}
	if sc.Tasks > 1<<31-1 || sc.Machines > 1<<31-1 {
		return nil, fmt.Errorf("sim: instance exceeds the typed event payload range")
	}
	fc, tableErr, err := newFaultCosts(truth, sc.Fault)
	if err != nil {
		return nil, err
	}
	nm := sc.Machines
	st := &faultState{
		sc:       sc,
		truth:    truth,
		dec:      truth,
		policy:   policy,
		trace:    tr,
		up:       make([]bool, nm),
		queue:    make([][]faultTask, nm),
		running:  make([]faultTask, nm),
		runStart: make([]float64, nm),
		avail:    make([]float64, nm),
		busy:     make([]float64, nm),
		requeues: make([]int, sc.Tasks),
		result: &RunResult{
			Policy:          policy.Name,
			Completions:     &stats.Sample{},
			BusyTime:        make([]float64, nm),
			TrustTableError: tableErr,
		},
	}
	if fc != nil {
		st.dec = fc
	}
	if sc.dynamicTrust() {
		if st.view, err = newModelView(sc, truth, st.dec); err != nil {
			return nil, err
		}
		st.dec = st.view
	}
	for m := 0; m < nm; m++ {
		st.up[m] = true
		st.running[m].req = -1
	}

	fs := &flatFaultState{
		faultState: st,
		q:          des.NewQueue(),
		finishID:   make([]des.FlatID, nm),
	}
	fs.kFinish = fs.q.RegisterKind(func(_ *des.Queue, a, _ int32) { fs.onFinish(int(a)) })
	fs.kCrash = fs.q.RegisterKind(func(_ *des.Queue, a, _ int32) { fs.onCrash(int(a)) })
	fs.kRepair = fs.q.RegisterKind(func(_ *des.Queue, a, _ int32) { fs.onRepair(int(a)) })

	switch sc.Mode {
	case Immediate:
		if st.imm, err = sched.ImmediateByName(sc.Heuristic); err != nil {
			return nil, err
		}
		kArr := fs.q.RegisterKind(func(q *des.Queue, a, _ int32) {
			if st.err != nil {
				return
			}
			st.record(trace.Event{Time: q.Now(), Kind: trace.Arrival, Request: int(a), Machine: -1})
			fs.placeOrDefer(int(a))
		})
		for i := range w.Requests {
			req := &w.Requests[i]
			if _, err := fs.q.ScheduleAt(req.ArrivalAt, kArr, int32(req.ID), 0); err != nil {
				return nil, err
			}
		}
	case Batch:
		if st.batch, err = sched.BatchByName(sc.Heuristic); err != nil {
			return nil, err
		}
		kArr := fs.q.RegisterKind(func(q *des.Queue, a, _ int32) {
			if st.err != nil {
				return
			}
			st.record(trace.Event{Time: q.Now(), Kind: trace.Arrival, Request: int(a), Machine: -1})
			st.pending = append(st.pending, int(a))
		})
		var kTick int32
		kTick = fs.q.RegisterKind(func(q *des.Queue, _, _ int32) {
			// Mirrors des.Periodic's wrapper around the reference tick.
			if st.err != nil || st.completed >= sc.Tasks {
				return
			}
			if len(st.pending) > 0 && st.anyUp() {
				st.record(trace.Event{
					Time: q.Now(), Kind: trace.BatchTick,
					Request: -1, Machine: -1, Cost: float64(len(st.pending)),
				})
				fs.assignBatch()
			}
			if st.completed < sc.Tasks && st.err == nil {
				_, _ = q.ScheduleAfter(sc.BatchInterval, kTick, 0, 0)
			}
		})
		for i := range w.Requests {
			req := &w.Requests[i]
			if _, err := fs.q.ScheduleAt(req.ArrivalAt, kArr, int32(req.ID), 0); err != nil {
				return nil, err
			}
		}
		if _, err := fs.q.ScheduleAfter(sc.BatchInterval, kTick, 0, 0); err != nil {
			return nil, err
		}
	}

	if sc.Fault.Churn() {
		if st.churn, err = fault.NewChurn(sc.Fault, nm); err != nil {
			return nil, err
		}
		for m := 0; m < nm; m++ {
			fs.scheduleCrash(m, st.churn.UpTime(m))
		}
	}

	fs.q.Run()
	if st.err != nil {
		return nil, st.err
	}
	if st.completed != sc.Tasks {
		return nil, fmt.Errorf("sim: only %d of %d requests completed", st.completed, sc.Tasks)
	}
	return st.finalize()
}

// fail records the first error and stops the simulation.
func (fs *flatFaultState) fail(err error) {
	if fs.err == nil {
		fs.err = err
	}
	fs.q.Stop()
}

// placeOrDefer maps one request immediately, or parks it when every
// machine is down.
func (fs *flatFaultState) placeOrDefer(r int) {
	if !fs.anyUp() {
		fs.deferred = append(fs.deferred, r)
		return
	}
	a, err := fs.imm.AssignOne(fs.dec, fs.policy, r, fs.availability(fs.q.Now()))
	if err != nil {
		fs.fail(err)
		return
	}
	fs.commit(r, a.Machine)
}

// assignBatch maps the pending meta-request over the masked availability.
func (fs *flatFaultState) assignBatch() {
	reqs := fs.pending
	fs.pending = fs.pending[:0]
	as, err := fs.batch.AssignBatch(fs.dec, fs.policy, reqs, fs.availability(fs.q.Now()))
	if err != nil {
		fs.fail(err)
		return
	}
	if len(as) != len(reqs) {
		fs.fail(fmt.Errorf("sim: batch heuristic mapped %d of %d requests", len(as), len(reqs)))
		return
	}
	for _, a := range as {
		fs.commit(a.Req, a.Machine)
		if fs.err != nil {
			return
		}
	}
}

// commit appends request r to machine m's queue and starts it if idle.
func (fs *flatFaultState) commit(r, m int) {
	if !fs.up[m] {
		fs.fail(fmt.Errorf("sim: heuristic %q mapped request %d to down machine %d", fs.sc.Heuristic, r, m))
		return
	}
	ecc, err := sched.ChargedECC(fs.truth, fs.policy, r, m)
	if err != nil {
		fs.fail(err)
		return
	}
	tc, err := fs.truth.TrustCost(r, m)
	if err != nil {
		fs.fail(err)
		return
	}
	now := fs.q.Now()
	fs.record(trace.Event{Time: now, Kind: trace.Scheduled, Request: r, Machine: m, Cost: ecc})
	fs.tcSum += float64(tc)
	fs.commits++
	fs.result.Assigned++
	fs.queue[m] = append(fs.queue[m], faultTask{req: r, ecc: ecc})
	fs.startNext(m)
}

// startNext starts machine m's queue head when m is up and idle.
func (fs *flatFaultState) startNext(m int) {
	if !fs.up[m] || fs.running[m].req != -1 || len(fs.queue[m]) == 0 {
		return
	}
	t := fs.queue[m][0]
	copy(fs.queue[m], fs.queue[m][1:])
	fs.queue[m] = fs.queue[m][:len(fs.queue[m])-1]
	now := fs.q.Now()
	fs.running[m] = t
	fs.runStart[m] = now
	fs.record(trace.Event{Time: now, Kind: trace.Start, Request: t.req, Machine: m, Cost: t.ecc})
	ev, err := fs.q.ScheduleAt(now+t.ecc, fs.kFinish, int32(m), 0)
	if err != nil {
		fs.fail(err)
		return
	}
	fs.finishID[m] = ev
}

// onFinish completes machine m's running task.
func (fs *flatFaultState) onFinish(m int) {
	if fs.err != nil {
		return
	}
	t := fs.running[m]
	now := fs.q.Now()
	fs.record(trace.Event{Time: now, Kind: trace.Finish, Request: t.req, Machine: m, Cost: t.ecc})
	fs.busy[m] += t.ecc
	req := fs.truth.w.Requests[t.req]
	fs.result.Completions.Add(now - req.ArrivalAt)
	if req.Deadline > 0 && now > req.Deadline {
		fs.result.DeadlineMisses++
	}
	if now > fs.result.Makespan {
		fs.result.Makespan = now
	}
	if fs.view != nil {
		if err := fs.view.noteFinish(t.req, m); err != nil {
			fs.fail(err)
			return
		}
	}
	fs.running[m].req = -1
	fs.completed++
	if fs.completed == fs.sc.Tasks {
		fs.q.Stop()
		return
	}
	fs.startNext(m)
}

// scheduleCrash arms machine m's next crash after the given up-time.
func (fs *flatFaultState) scheduleCrash(m int, up float64) {
	if _, err := fs.q.ScheduleAt(fs.q.Now()+up, fs.kCrash, int32(m), 0); err != nil {
		fs.fail(err)
	}
}

// onCrash takes machine m down; see faultState.onCrash.
func (fs *flatFaultState) onCrash(m int) {
	if fs.err != nil {
		return
	}
	now := fs.q.Now()
	fs.up[m] = false
	fs.result.Failures++
	down := fs.churn.DownTime(m)
	lost := fs.running[m]
	fs.record(trace.Event{Time: now, Kind: trace.Failure, Request: lost.req, Machine: m, Cost: down})
	if lost.req != -1 {
		fs.q.Cancel(fs.finishID[m])
		partial := now - fs.runStart[m]
		fs.busy[m] += partial
		fs.result.WastedWork += partial
		fs.running[m].req = -1
		fs.requeue(lost.req, m)
	}
	if fs.err != nil {
		return
	}
	if _, err := fs.q.ScheduleAt(now+down, fs.kRepair, int32(m), 0); err != nil {
		fs.fail(err)
	}
}

// requeue re-enters a crash-lost request into the scheduler.
func (fs *flatFaultState) requeue(r, m int) {
	fs.requeues[r]++
	if fs.requeues[r] > fs.sc.Fault.RequeueCap() {
		fs.fail(fmt.Errorf("sim: request %d requeued more than %d times; the fault plan starves the workload",
			r, fs.sc.Fault.RequeueCap()))
		return
	}
	fs.result.Requeues++
	fs.record(trace.Event{Time: fs.q.Now(), Kind: trace.Requeue, Request: r, Machine: m})
	if fs.sc.Mode == Immediate {
		fs.placeOrDefer(r)
	} else {
		fs.pending = append(fs.pending, r)
	}
}

// onRepair brings machine m back up; see faultState.onRepair.
func (fs *flatFaultState) onRepair(m int) {
	if fs.err != nil {
		return
	}
	fs.up[m] = true
	fs.scheduleCrash(m, fs.churn.UpTime(m))
	fs.startNext(m)
	if len(fs.deferred) > 0 {
		defd := fs.deferred
		fs.deferred = nil
		for _, r := range defd {
			fs.placeOrDefer(r)
			if fs.err != nil {
				return
			}
		}
	}
}
