package sim

import (
	"testing"

	"gridtrust/internal/rng"
)

func TestStagingValidation(t *testing.T) {
	bad := []StagingConfig{
		{Requests: -1},
		{Requests: 10, Machines: -2},
		{Requests: 10, MaxInputMB: 0.5},
		{Requests: 10, LinkMbps: 42},
		{Requests: 10, TCWeight: -1},
	}
	for i, cfg := range bad {
		if _, err := RunStaging(cfg, rng.New(1)); err == nil {
			t.Errorf("bad config %d accepted: %+v", i, cfg)
		}
	}
	if _, err := RunStaging(StagingConfig{}, nil); err == nil {
		t.Error("nil source accepted")
	}
}

func TestStagingAwareWins(t *testing.T) {
	imp, plainShare, err := StagingSeries(StagingConfig{}, 2002, 20)
	if err != nil {
		t.Fatal(err)
	}
	if imp.Mean() <= 0 {
		t.Fatalf("aware staging improvement %.2f%% not positive", imp.Mean())
	}
	// A meaningful fraction of aware transfers should run plain: the
	// scheduler routes toward fully trusted pairings.
	if plainShare.Mean() < 0.05 {
		t.Fatalf("plain-transfer share %.2f implausibly low", plainShare.Mean())
	}
	if plainShare.Mean() > 0.95 {
		t.Fatalf("plain-transfer share %.2f implausibly high", plainShare.Mean())
	}
}

func TestStagingAwareStagesLess(t *testing.T) {
	res, err := RunStaging(StagingConfig{}, rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	// The aware run replaces some scp transfers with rcp, so its total
	// staging time must be lower on the identical instance.
	if res.AwareStaging >= res.UnawareStaging {
		t.Fatalf("aware staging %.1f not below unaware %.1f",
			res.AwareStaging, res.UnawareStaging)
	}
	if res.PlainTransfers <= 0 || res.PlainTransfers > res.Requests {
		t.Fatalf("plain transfers = %d of %d", res.PlainTransfers, res.Requests)
	}
	if res.ImprovementPct <= -100 || res.ImprovementPct >= 100 {
		t.Fatalf("improvement %.2f%% out of range", res.ImprovementPct)
	}
}

func TestStagingSavingsGrowWithInputSize(t *testing.T) {
	// The *relative* improvement does not grow monotonically (with huge
	// inputs it is capped by the plain-transfer share rather than the
	// ESC term), but the absolute staging seconds saved by trust-aware
	// routing must grow with input size, and the improvement must stay
	// positive at both scales.
	savings := func(maxMB float64) (saved, improvement float64) {
		t.Helper()
		var savedAcc, impAcc float64
		for seed := uint64(0); seed < 10; seed++ {
			res, err := RunStaging(StagingConfig{MaxInputMB: maxMB}, rng.New(seed))
			if err != nil {
				t.Fatal(err)
			}
			savedAcc += res.UnawareStaging - res.AwareStaging
			impAcc += res.ImprovementPct
		}
		return savedAcc / 10, impAcc / 10
	}
	smallSaved, smallImp := savings(10)
	largeSaved, largeImp := savings(2000)
	if largeSaved <= smallSaved {
		t.Fatalf("staging savings did not grow: %.1fs -> %.1fs", smallSaved, largeSaved)
	}
	if smallImp <= 0 || largeImp <= 0 {
		t.Fatalf("improvement not positive at both scales: %.2f%% / %.2f%%", smallImp, largeImp)
	}
}

func TestStagingDeterministic(t *testing.T) {
	a, err := RunStaging(StagingConfig{}, rng.New(9))
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunStaging(StagingConfig{}, rng.New(9))
	if err != nil {
		t.Fatal(err)
	}
	if a.AwareMakespan != b.AwareMakespan || a.PlainTransfers != b.PlainTransfers {
		t.Fatal("identical seeds diverged")
	}
}

func TestStagingSeriesValidation(t *testing.T) {
	if _, _, err := StagingSeries(StagingConfig{}, 1, 0); err == nil {
		t.Error("zero reps accepted")
	}
}
