package sim

import (
	"context"
	"fmt"
	"io"
	"strings"
	"time"

	"gridtrust/internal/exp"
	"gridtrust/internal/fault"
	"gridtrust/internal/grid"
	"gridtrust/internal/report"
	"gridtrust/internal/rng"
	"gridtrust/internal/secover"
	"gridtrust/internal/trust"
	"gridtrust/internal/workload"
)

// ReportOptions parameterise WriteFullReport.
type ReportOptions struct {
	// Seed and Reps control the stochastic experiments (defaults 2002
	// and 40).
	Seed uint64
	Reps int
	// Workers bounds the replication pool (0 = GOMAXPROCS).
	Workers int
	// Title heads the document.
	Title string
	// OnCell, when set, receives one progress event per completed
	// comparison cell.
	OnCell func(exp.Progress)
}

func (o ReportOptions) withDefaults() ReportOptions {
	if o.Seed == 0 {
		o.Seed = 2002
	}
	if o.Reps == 0 {
		o.Reps = 40
	}
	if o.Title == "" {
		o.Title = "gridtrust experiment report"
	}
	return o
}

// WriteFullReport regenerates every experiment — the paper's Tables 1-9
// and this repository's ablations — and writes one self-contained
// markdown document.  It is the single-command reproduction artefact:
//
//	go run ./cmd/reportgen > report.md
//
// All stochastic comparison cells (the six simulation tables × task
// counts plus the TC-weight ablation) run as one experiment-engine grid
// on a shared worker pool before any rendering begins; each cell's
// numbers are bit-identical to a standalone Compare with the same seed
// and replication count.
func WriteFullReport(ctx context.Context, w io.Writer, opts ReportOptions) error {
	opts = opts.withDefaults()
	start := time.Now()
	pr := func(format string, args ...any) error {
		_, err := fmt.Fprintf(w, format, args...)
		return err
	}

	// ── Declare the comparison grid ──────────────────────────────────
	type simTable struct {
		caption   string
		heuristic string
		cons      workload.Consistency
	}
	tables := []simTable{
		{"Table 4 — MCT, inconsistent LoLo", "mct", workload.Inconsistent},
		{"Table 5 — MCT, consistent LoLo", "mct", workload.Consistent},
		{"Table 6 — Min-min, inconsistent LoLo", "minmin", workload.Inconsistent},
		{"Table 7 — Min-min, consistent LoLo", "minmin", workload.Consistent},
		{"Table 8 — Sufferage, inconsistent LoLo", "sufferage", workload.Inconsistent},
		{"Table 9 — Sufferage, consistent LoLo", "sufferage", workload.Consistent},
	}
	taskCounts := []int{50, 100}
	tcWeights := []float64{0.001, 5, 10, 15, 20, 25, 30}

	var cells []CompareCell
	for _, st := range tables {
		for _, tasks := range taskCounts {
			sc := PaperScenario(st.heuristic, tasks, st.cons)
			cells = append(cells, CompareCell{
				Name:     fmt.Sprintf("%s/%d-tasks", st.heuristic, tasks),
				Scenario: sc,
			})
		}
	}
	for _, weight := range tcWeights {
		sc := PaperScenario("mct", 100, workload.Inconsistent)
		sc.TCWeight = weight
		cells = append(cells, CompareCell{
			Name:     fmt.Sprintf("tcweight/%g", weight),
			Scenario: sc,
		})
	}
	faultBase := PaperScenario("mct", 100, workload.Inconsistent)
	faultCells := ChurnCells(faultBase, []float64{0, 2000, 1000}, []float64{0, 0.5})
	cells = append(cells, faultCells...)

	// ── Run every stochastic cell on one pool ────────────────────────
	cmps, err := CompareGrid(ctx, cells, GridOptions{
		Seed: opts.Seed, Reps: opts.Reps, Workers: opts.Workers, OnCell: opts.OnCell,
	})
	if err != nil {
		return err
	}
	next := 0
	take := func() *Comparison { c := cmps[next]; next++; return c }

	if err := pr("# %s\n\nseed %d, %d replications per cell.\n\n", opts.Title, opts.Seed, opts.Reps); err != nil {
		return err
	}

	// ── Table 1 ──────────────────────────────────────────────────────
	if err := pr("## Table 1 — expected trust supplement\n\n"); err != nil {
		return err
	}
	ets := report.NewTable("", "requested TL", "A", "B", "C", "D", "E")
	if err := writeETSRows(ets); err != nil {
		return err
	}
	if err := ets.WriteMarkdown(w); err != nil {
		return err
	}

	// ── Tables 2-3 ───────────────────────────────────────────────────
	for _, mbps := range []float64{100, 1000} {
		if err := pr("\n## Secure vs plain transfer, %g Mbps\n\n", mbps); err != nil {
			return err
		}
		link, err := secover.LinkFor(mbps)
		if err != nil {
			return err
		}
		rows, err := link.Table(secover.PaperSizes)
		if err != nil {
			return err
		}
		tb := report.NewTable("", "File size/MB", "rcp (s)", "scp (s)", "Overhead")
		for _, r := range rows {
			tb.AddRow(fmt.Sprintf("%g", r.SizeMB),
				fmt.Sprintf("%.2f", r.RcpSeconds),
				fmt.Sprintf("%.2f", r.ScpSeconds),
				report.Percent(r.OverheadPercent, 2))
		}
		if err := tb.WriteMarkdown(w); err != nil {
			return err
		}
	}

	// ── Tables 4-9 ───────────────────────────────────────────────────
	for _, st := range tables {
		if err := pr("\n## %s\n\n", st.caption); err != nil {
			return err
		}
		tb := report.NewTable("", "# of tasks", "Using trust", "Machine utilization",
			"Ave. completion time (sec)", "Improvement", "Makespan improvement")
		for _, tasks := range taskCounts {
			cmp := take()
			msImp := (cmp.Unaware.Makespan.Mean() - cmp.Aware.Makespan.Mean()) /
				cmp.Unaware.Makespan.Mean() * 100
			tb.AddRow(fmt.Sprintf("%d", tasks), "No",
				report.Fraction(cmp.Unaware.Utilization.Mean(), 2),
				report.Seconds(cmp.Unaware.AvgCompletion.Mean()),
				report.Percent(cmp.ImprovementPercent(), 2),
				report.Percent(msImp, 2))
			tb.AddRow("", "Yes",
				report.Fraction(cmp.Aware.Utilization.Mean(), 2),
				report.Seconds(cmp.Aware.AvgCompletion.Mean()), "", "")
		}
		if err := tb.WriteMarkdown(w); err != nil {
			return err
		}
	}

	// ── Ablations ────────────────────────────────────────────────────
	if err := pr("\n## Ablation: TC weight (paper fixes 15)\n\n"); err != nil {
		return err
	}
	tcw := report.NewTable("", "TC weight", "improvement")
	for _, weight := range tcWeights {
		tcw.AddRow(fmt.Sprintf("%g", weight), report.Percent(take().ImprovementPercent(), 2))
	}
	if err := tcw.WriteMarkdown(w); err != nil {
		return err
	}

	if err := pr("\n## Ablation: evolving trust (Section 7 loop)\n\n"); err != nil {
		return err
	}
	ev, err := RunEvolving(EvolvingConfig{Requests: 300}, rng.New(opts.Seed))
	if err != nil {
		return err
	}
	evt := report.NewTable("", "phase", "share on misbehaving RD")
	evt.AddRow("early", report.Fraction(ev.EarlyUnreliableShare, 1))
	evt.AddRow("late", report.Fraction(ev.LateUnreliableShare, 1))
	if err := evt.WriteMarkdown(w); err != nil {
		return err
	}

	if err := pr("\n## Ablation: data staging (rcp when trusted vs blanket scp)\n\n"); err != nil {
		return err
	}
	imp, plain, err := StagingSeries(StagingConfig{}, opts.Seed, opts.Reps)
	if err != nil {
		return err
	}
	stg := report.NewTable("", "metric", "value")
	stg.AddRow("makespan improvement", report.Percent(imp.Mean(), 2))
	stg.AddRow("plain-transfer share", report.Fraction(plain.Mean(), 1))
	if err := stg.WriteMarkdown(w); err != nil {
		return err
	}

	// ── Fault & adversary injection ──────────────────────────────────
	if err := pr("\n## Fault injection: machine churn × whitewashing adversaries\n\n"); err != nil {
		return err
	}
	if err := pr("Crash/repair renewal churn (MTTR = MTBF/10) with whitewashing resource\ndomains that advertise the maximum offerable trust level.  Makespan and\ndegradation are mean ± CI95 over the paired replications; degradation is\nrelative to the fault-free trust-aware cell.\n\n"); err != nil {
		return err
	}
	baseCmp := cmps[len(cells)-len(faultCells)]
	baseMakespan := baseCmp.Aware.Makespan.Mean()
	ft := report.NewTable("", "mtbf/adversary", "makespan (aware)", "degradation",
		"failures", "requeues", "table error", "improvement")
	for i := range faultCells {
		cmp := take()
		m := cmp.Aware.Makespan
		ft.AddRow(faultCells[i].Name,
			fmt.Sprintf("%s ± %.0f", report.Seconds(m.Mean()), m.CI95()),
			report.Percent((m.Mean()-baseMakespan)/baseMakespan*100, 2),
			fmt.Sprintf("%.1f", cmp.Aware.Failures.Mean()),
			fmt.Sprintf("%.1f", cmp.Aware.Requeues.Mean()),
			fmt.Sprintf("%.2f ± %.2f", cmp.Aware.TrustTableError.Mean(), cmp.Aware.TrustTableError.CI95()),
			report.Percent(cmp.ImprovementPercent(), 2))
	}
	if err := ft.WriteMarkdown(w); err != nil {
		return err
	}

	if err := pr("\n## Adversary study: collusive recommenders vs the R-weighted defense\n\n"); err != nil {
		return err
	}
	if err := pr("Lying recommender cliques boost misbehaving resources and badmouth honest\nones.  \"unweighted\" pins every recommender trust factor R to 1 (the paper's\nreputation formula with its defense amputated); \"R-weighted\" audits claims\nagainst direct experience and purges recommenders whose R collapses.  Mean\n± CI95 over %d replications.\n\n", opts.Reps); err != nil {
		return err
	}
	scells := FaultStudyCells([]float64{0.25, 0.5, 0.75})
	sres, err := FaultStudyGrid(ctx, scells, GridOptions{
		Seed: opts.Seed, Reps: opts.Reps, Workers: opts.Workers, OnCell: opts.OnCell,
	})
	if err != nil {
		return err
	}
	at := report.NewTable("", "liar fraction/variant", "trust-table error",
		"cost degradation", "bad placements", "liar R", "honest R")
	for i, res := range sres {
		at.AddRow(scells[i].Name,
			fmt.Sprintf("%.2f ± %.2f", res.TrustError.Mean(), res.TrustError.CI95()),
			fmt.Sprintf("%.1f%% ± %.1f%%", res.DegradationPct.Mean(), res.DegradationPct.CI95()),
			fmt.Sprintf("%.1f%% ± %.1f%%", res.BadShare.Mean()*100, res.BadShare.CI95()*100),
			fmt.Sprintf("%.2f", res.MeanLiarR.Mean()),
			fmt.Sprintf("%.2f", res.MeanHonestR.Mean()))
	}
	if err := at.WriteMarkdown(w); err != nil {
		return err
	}

	// ── Trust-model zoo ──────────────────────────────────────────────
	if err := pr("\n## Trust-model zoo: rival policies head-to-head under adversaries\n\n"); err != nil {
		return err
	}
	if err := pr("Every registered trust model (`%s`) faces the same four adversary\nenvironments — lying recommender cliques, whitewashing identities,\noscillating resources, and Weibull crash/repair churn — on identical\nrandom streams.  Trust error is the mean |score − ground truth| over the\nlive population after the final round; degradation is the cost of the\nmodel's placements relative to an omniscient oracle.  Mean ± CI95 over\n%d replications.\n\n", strings.Join(trust.ModelNames(), "`, `"), opts.Reps); err != nil {
		return err
	}
	zcells := ZooCells(trust.ModelNames(), fault.ZooScenarios())
	zres, err := ZooGrid(ctx, zcells, GridOptions{
		Seed: opts.Seed, Reps: opts.Reps, Workers: opts.Workers, OnCell: opts.OnCell,
	})
	if err != nil {
		return err
	}
	zt := report.NewTable("", "scenario/model", "trust error", "degradation", "bad placements")
	for i, res := range zres {
		zt.AddRow(zcells[i].Name,
			fmt.Sprintf("%.2f ± %.2f", res.TrustError.Mean(), res.TrustError.CI95()),
			fmt.Sprintf("%.1f%% ± %.1f%%", res.DegradationPct.Mean(), res.DegradationPct.CI95()),
			fmt.Sprintf("%.1f%% ± %.1f%%", res.BadShare.Mean()*100, res.BadShare.CI95()*100))
	}
	if err := zt.WriteMarkdown(w); err != nil {
		return err
	}

	return pr("\n_Generated in %s._\n", time.Since(start).Round(time.Millisecond))
}

// writeETSRows fills the Table 1 rows from the canonical grid.ETSTable.
func writeETSRows(tb *report.Table) error {
	ets := grid.ETSTable()
	for r := 0; r < 6; r++ {
		row := []string{grid.TrustLevel(r + 1).String()}
		for o := 0; o < 5; o++ {
			row = append(row, fmt.Sprintf("%d", ets[r][o]))
		}
		tb.AddRow(row...)
	}
	return nil
}
