package sim

import (
	"context"
	"errors"
	"testing"

	"gridtrust/internal/rng"
	"gridtrust/internal/workload"
)

// gridScenarios builds a few small, distinct cells.
func gridScenarios() []CompareCell {
	a := PaperScenario("mct", 20, workload.Inconsistent)
	b := PaperScenario("minmin", 20, workload.Consistent)
	c := PaperScenario("sufferage", 30, workload.Inconsistent)
	return []CompareCell{
		{Name: "a", Scenario: a}, {Name: "b", Scenario: b}, {Name: "c", Scenario: c},
	}
}

func TestCompareGridMatchesStandaloneCompare(t *testing.T) {
	cells := gridScenarios()
	cmps, err := CompareGrid(context.Background(), cells, GridOptions{Seed: 17, Reps: 6, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i, cell := range cells {
		want, err := Compare(cell.Scenario, 17, 6, 2)
		if err != nil {
			t.Fatal(err)
		}
		got := cmps[i]
		if got.ImprovementPercent() != want.ImprovementPercent() {
			t.Errorf("cell %s: grid improvement %v != standalone %v",
				cell.Name, got.ImprovementPercent(), want.ImprovementPercent())
		}
		if got.Unaware.AvgCompletion.Mean() != want.Unaware.AvgCompletion.Mean() ||
			got.Aware.AvgCompletion.Mean() != want.Aware.AvgCompletion.Mean() {
			t.Errorf("cell %s: grid completion means differ from standalone", cell.Name)
		}
	}
}

func TestCompareGridWorkerAndOrderInvariant(t *testing.T) {
	cells := gridScenarios()
	reversed := []CompareCell{cells[2], cells[1], cells[0]}
	one, err := CompareGrid(context.Background(), cells, GridOptions{Seed: 5, Reps: 5, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	many, err := CompareGrid(context.Background(), reversed, GridOptions{Seed: 5, Reps: 5, Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	for i := range cells {
		a, b := one[i], many[len(cells)-1-i]
		if a.ImprovementPercent() != b.ImprovementPercent() {
			t.Errorf("cell %s: %v (1 worker) != %v (8 workers, reversed order)",
				cells[i].Name, a.ImprovementPercent(), b.ImprovementPercent())
		}
	}
}

func TestCompareGridCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := CompareGrid(ctx, gridScenarios(), GridOptions{Seed: 1, Reps: 50})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
}

func TestCompareGridRepValues(t *testing.T) {
	// PairResult.Rep must carry the replication index under the engine.
	sc := PaperScenario("mct", 20, workload.Inconsistent)
	pair, err := RunPair(sc, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	if pair.Rep != 0 {
		t.Errorf("RunPair Rep = %d, want 0", pair.Rep)
	}
}

func TestEvolvingGridDeterminismAndCI(t *testing.T) {
	cells := []EvolvingCell{
		{Name: "mild", Config: EvolvingConfig{Requests: 60, UnreliableIncidentProb: 0.1}},
		{Name: "hostile", Config: EvolvingConfig{Requests: 60, UnreliableIncidentProb: 0.75}},
	}
	run := func(workers int) []*EvolvingSeriesResult {
		res, err := EvolvingGrid(context.Background(), cells, GridOptions{Seed: 7, Reps: 6, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(1), run(4)
	for i := range cells {
		if a[i].LateShare.Mean() != b[i].LateShare.Mean() ||
			a[i].EarlyShare.Mean() != b[i].EarlyShare.Mean() {
			t.Errorf("cell %s: shares differ across worker counts", cells[i].Name)
		}
		if n := a[i].LateShare.N(); n != 6 {
			t.Errorf("cell %s: %d replications aggregated, want 6", cells[i].Name, n)
		}
	}
	// With six replications the aggregate carries a finite CI.
	if ci := a[1].LateShare.CI95(); ci < 0 {
		t.Errorf("negative CI %v", ci)
	}
	// A decisively hostile domain must lose placements relative to a mild
	// one once trust evolves.
	if a[1].LateShare.Mean() >= a[0].LateShare.Mean() {
		t.Errorf("hostile late share %v not below mild %v",
			a[1].LateShare.Mean(), a[0].LateShare.Mean())
	}
}

func TestStagingGridMatchesSeries(t *testing.T) {
	cfg := StagingConfig{Requests: 40, MaxInputMB: 200}
	res, err := StagingGrid(context.Background(),
		[]StagingCell{{Name: "s", Config: cfg}}, GridOptions{Seed: 3, Reps: 5, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	imp, plain, err := StagingSeries(cfg, 3, 5)
	if err != nil {
		t.Fatal(err)
	}
	if res[0].Improvement.Mean() != imp.Mean() || res[0].PlainShare.Mean() != plain.Mean() {
		t.Error("StagingGrid aggregate differs from StagingSeries")
	}
}
