package sim

import (
	"context"
	"fmt"

	"gridtrust/internal/exp"
	"gridtrust/internal/fault"
	"gridtrust/internal/rng"
	"gridtrust/internal/stats"
)

// FaultStudyCell names one configuration of the adversary study grid: a
// collusion scenario run with or without the recommender-trust defense.
type FaultStudyCell struct {
	Name   string
	Config fault.StudyConfig
}

// FaultStudyResult aggregates fault.RunStudy over replications.
type FaultStudyResult struct {
	TrustError     stats.Running
	DegradationPct stats.Running
	BadShare       stats.Running
	MeanLiarR      stats.Running
	MeanHonestR    stats.Running
}

// FaultStudyGrid runs every cell × Reps replications of the adversary
// study on one worker pool and aggregates per cell.  Replication r of
// every cell draws from rng stream r of the master seed, so results are
// bit-identical under any worker count.
func FaultStudyGrid(ctx context.Context, cells []FaultStudyCell, opts GridOptions) ([]*FaultStudyResult, error) {
	if opts.Reps <= 0 {
		return nil, fmt.Errorf("sim: reps must be positive, got %d", opts.Reps)
	}
	ecells := make([]exp.Cell, len(cells))
	for i := range cells {
		cfg := cells[i].Config
		ecells[i] = exp.Cell{Name: cells[i].Name, Run: func(ctx context.Context, rep int, src *rng.Source, scratch any) (any, error) {
			return fault.RunStudy(cfg, src)
		}}
	}
	res, err := exp.Run(ctx, ecells, opts.engineOptions(repsCodec[fault.StudyResult]()))
	if err != nil {
		return nil, err
	}
	out := make([]*FaultStudyResult, len(cells))
	for i := range res {
		agg := &FaultStudyResult{}
		for _, v := range res[i].Reps {
			r := v.(*fault.StudyResult)
			agg.TrustError.Add(r.TrustError)
			agg.DegradationPct.Add(r.DegradationPct)
			agg.BadShare.Add(r.BadShare)
			agg.MeanLiarR.Add(r.MeanLiarR)
			agg.MeanHonestR.Add(r.MeanHonestR)
		}
		out[i] = agg
	}
	return out, nil
}

// FaultStudyCells builds the canonical adversary sweep: for each liar
// fraction, one cell with the R-weighted defense off (the paper's
// reputation formula amputated) and one with it on.  Cells come in
// (unweighted, weighted) pairs per fraction, in the given order.
func FaultStudyCells(liarFractions []float64) []FaultStudyCell {
	cells := make([]FaultStudyCell, 0, 2*len(liarFractions))
	for _, lf := range liarFractions {
		base := fault.StudyConfig{LiarFraction: lf}
		unweighted := base
		weighted := base
		weighted.RWeighted = true
		cells = append(cells,
			FaultStudyCell{Name: fmt.Sprintf("liar=%.2f/unweighted", lf), Config: unweighted},
			FaultStudyCell{Name: fmt.Sprintf("liar=%.2f/R-weighted", lf), Config: weighted},
		)
	}
	return cells
}

// ChurnCells builds a churn × adversary CompareGrid sweep over the base
// scenario: for every MTBF (0 disables churn) and adversary fraction, one
// cell whose scenario carries the corresponding fault plan.  MTTR is fixed
// at a tenth of the MTBF floor so availability stays high enough to finish
// the workload.
func ChurnCells(base Scenario, mtbfs, adversaryFractions []float64) []CompareCell {
	var cells []CompareCell
	for _, mtbf := range mtbfs {
		for _, af := range adversaryFractions {
			sc := base
			sc.Fault = fault.Plan{AdversaryFraction: af}
			if mtbf > 0 {
				sc.Fault.MTBF = mtbf
				sc.Fault.MTTR = mtbf / 10
			}
			name := fmt.Sprintf("mtbf=%g/adv=%.2f", mtbf, af)
			sc.Name = fmt.Sprintf("%s/%s", base.Name, name)
			cells = append(cells, CompareCell{Name: name, Scenario: sc})
		}
	}
	return cells
}
