package sim

import (
	"context"
	"reflect"
	"testing"

	"gridtrust/internal/exp"
	"gridtrust/internal/workload"
)

// openCK opens a checkpoint on dir, failing the test on error.
func openCK(t *testing.T, dir string) *exp.Checkpoint {
	t.Helper()
	ck, err := exp.OpenCheckpoint(dir)
	if err != nil {
		t.Fatal(err)
	}
	return ck
}

// cachedCounter wires an OnCell hook that counts cached cells.
func cachedCounter(opts *GridOptions, cached *int) {
	opts.OnCell = func(p exp.Progress) {
		if p.Cached {
			*cached++
		}
	}
}

// TestCompareGridCheckpointResumeBitIdentical is the contract the sweep CLI
// relies on: a checkpointed grid re-run in a fresh process serves every
// cell from disk and folds to exactly the aggregates of an uncheckpointed
// run — bitwise, not approximately.
func TestCompareGridCheckpointResumeBitIdentical(t *testing.T) {
	cells := gridScenarios()
	opts := GridOptions{Seed: 23, Reps: 4, Workers: 4}
	ref, err := CompareGrid(context.Background(), cells, opts)
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	ck := openCK(t, dir)
	opts.Checkpoint, opts.CheckpointSalt = ck, "compare"
	warm, err := CompareGrid(context.Background(), cells, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ref, warm) {
		t.Fatal("checkpointing changed the results of a fresh run")
	}
	if err := ck.Close(); err != nil {
		t.Fatal(err)
	}

	ck2 := openCK(t, dir)
	defer ck2.Close()
	opts.Checkpoint = ck2
	cached := 0
	cachedCounter(&opts, &cached)
	resumed, err := CompareGrid(context.Background(), cells, opts)
	if err != nil {
		t.Fatal(err)
	}
	if cached != len(cells) {
		t.Fatalf("resume served %d of %d cells from the checkpoint", cached, len(cells))
	}
	if !reflect.DeepEqual(ref, resumed) {
		t.Fatalf("resumed comparisons diverge from the uncheckpointed run:\n ref     %+v\n resumed %+v", ref[0], resumed[0])
	}
}

// TestGridsCheckpointRoundTrip covers the remaining grid types: each must
// restore its own replication type from a shared directory (distinct
// salts) and aggregate identically.
func TestGridsCheckpointRoundTrip(t *testing.T) {
	dir := t.TempDir()
	opts := GridOptions{Seed: 31, Reps: 3, Workers: 2}

	evCells := []EvolvingCell{{Name: "ev", Config: EvolvingConfig{Requests: 40, UnreliableIncidentProb: 0.3}}}
	stCells := []StagingCell{{Name: "st", Config: StagingConfig{Requests: 30, MaxInputMB: 100}}}
	fsCells := FaultStudyCells([]float64{0.5})

	run := func(ck *exp.Checkpoint, cached *int) (any, any, any) {
		o := opts
		o.Checkpoint = ck
		if cached != nil {
			cachedCounter(&o, cached)
		}
		o.CheckpointSalt = "evolving"
		ev, err := EvolvingGrid(context.Background(), evCells, o)
		if err != nil {
			t.Fatal(err)
		}
		o.CheckpointSalt = "staging"
		st, err := StagingGrid(context.Background(), stCells, o)
		if err != nil {
			t.Fatal(err)
		}
		o.CheckpointSalt = "faultstudy"
		fs, err := FaultStudyGrid(context.Background(), fsCells, o)
		if err != nil {
			t.Fatal(err)
		}
		return ev, st, fs
	}

	refEv, refSt, refFs := run(nil, nil)
	ck := openCK(t, dir)
	run(ck, nil)
	if err := ck.Close(); err != nil {
		t.Fatal(err)
	}

	ck2 := openCK(t, dir)
	defer ck2.Close()
	cached := 0
	gotEv, gotSt, gotFs := run(ck2, &cached)
	if want := len(evCells) + len(stCells) + len(fsCells); cached != want {
		t.Fatalf("resume served %d of %d cells from the checkpoint", cached, want)
	}
	if !reflect.DeepEqual(refEv, gotEv) {
		t.Fatal("evolving grid resume diverged")
	}
	if !reflect.DeepEqual(refSt, gotSt) {
		t.Fatal("staging grid resume diverged")
	}
	if !reflect.DeepEqual(refFs, gotFs) {
		t.Fatal("fault study grid resume diverged")
	}
}

// TestCheckpointMissesOnDifferentTasks guards the salt contract: the same
// cell names with a different workload must not be served from cache.
func TestCheckpointMissesOnDifferentTasks(t *testing.T) {
	mk := func(tasks int) []CompareCell {
		sc := PaperScenario("mct", tasks, workload.Inconsistent)
		return []CompareCell{{Name: "mct", Scenario: sc}}
	}
	dir := t.TempDir()
	ck := openCK(t, dir)
	defer ck.Close()
	opts := GridOptions{Seed: 3, Reps: 2, Workers: 2, Checkpoint: ck, CheckpointSalt: "mode|tasks=20"}
	if _, err := CompareGrid(context.Background(), mk(20), opts); err != nil {
		t.Fatal(err)
	}

	// Same cell name, different tasks → different salt → fresh run, and
	// the result must match an uncheckpointed grid on the new workload.
	opts.CheckpointSalt = "mode|tasks=40"
	cached := 0
	cachedCounter(&opts, &cached)
	got, err := CompareGrid(context.Background(), mk(40), opts)
	if err != nil {
		t.Fatal(err)
	}
	if cached != 0 {
		t.Fatal("stale cell served across a salt change")
	}
	ref, err := CompareGrid(context.Background(), mk(40), GridOptions{Seed: 3, Reps: 2, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ref, got) {
		t.Fatal("fresh run under a new salt diverged from an uncheckpointed run")
	}
}
