package sim

import (
	"context"
	"fmt"
	"testing"

	"gridtrust/internal/workload"
)

// benchCells builds a sweep-shaped grid: many small cells, few
// replications each — the regime where the legacy serial-cells
// architecture (one inner pool per cell, drained before the next cell
// starts) leaves workers idle at every cell boundary.
func benchCells(n, tasks int) []CompareCell {
	heuristics := []string{"mct", "minmin", "sufferage"}
	cells := make([]CompareCell, n)
	for i := range cells {
		h := heuristics[i%len(heuristics)]
		sc := PaperScenario(h, tasks, workload.Inconsistent)
		sc.TCWeight = float64(5 * (i + 1))
		cells[i] = CompareCell{Name: fmt.Sprintf("%s/w%d", h, 5*(i+1)), Scenario: sc}
	}
	return cells
}

// BenchmarkSweepGrid measures the tentpole flattening on a 12-cell ×
// 4-replication sweep: "serial-cells" is the pre-engine architecture
// (cells run one after another, parallelism only inside each cell's
// replication pool, so at most reps workers are ever busy);
// "global-pool" schedules all cells×reps as one job stream.  On a
// machine with more cores than reps-per-cell the global pool keeps every
// core busy and wins proportionally; on one core the two are equal work.
func BenchmarkSweepGrid(b *testing.B) {
	const (
		nCells = 12
		reps   = 4
		tasks  = 50
	)
	cells := benchCells(nCells, tasks)
	b.Run("serial-cells", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, cell := range cells {
				if _, err := Compare(cell.Scenario, 2002, reps, 0); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	b.Run("global-pool", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := CompareGrid(context.Background(), cells,
				GridOptions{Seed: 2002, Reps: reps}); err != nil {
				b.Fatal(err)
			}
		}
	})
}
