package sim

import (
	"context"
	"fmt"

	"gridtrust/internal/rng"
	"gridtrust/internal/stats"
	"gridtrust/internal/workload"
)

// PairResult is one paired replication: the same workload scheduled
// trust-unaware and trust-aware.
type PairResult struct {
	// Rep is the replication index whose rng stream generated the
	// workload: stream Rep of the master seed under Compare/CompareGrid,
	// 0 for a standalone RunPair (the caller's source is the whole
	// stream).
	Rep     int
	Unaware *RunResult
	Aware   *RunResult
}

// RunPair generates the workload for one replication stream and runs both
// policies on it.  Because the workload is materialised once, the pairing
// is exact: both runs see identical EECs, arrivals, RTLs and OTLs.
func RunPair(sc Scenario, src *rng.Source) (*PairResult, error) {
	pair, err := runPair(sc, src, &runScratch{})
	if pair != nil {
		pair.Rep = 0
	}
	return pair, err
}

// runPair is RunPair with caller-provided scratch: both runs of the pair
// share one scratch, and Compare's workers reuse theirs across every
// replication they process.
func runPair(sc Scenario, src *rng.Source, scr *runScratch) (*PairResult, error) {
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	w, err := workload.NewWorkload(src, sc.WorkloadSpec())
	if err != nil {
		return nil, err
	}
	// Derive the fault seed from the replication stream AFTER workload
	// generation: an inactive plan consumes nothing (fault-free replications
	// stay byte-identical to pre-fault binaries), an active one gives both
	// policy runs of the pair the identical fault timeline.
	if sc.Fault.Active() {
		sc.Fault.Seed = src.Uint64()
	}
	awareP, unawareP, err := sc.policies()
	if err != nil {
		return nil, err
	}
	un, err := runTraced(sc, w, unawareP, nil, scr)
	if err != nil {
		return nil, fmt.Errorf("sim: unaware run: %w", err)
	}
	aw, err := runTraced(sc, w, awareP, nil, scr)
	if err != nil {
		return nil, fmt.Errorf("sim: aware run: %w", err)
	}
	return &PairResult{Unaware: un, Aware: aw}, nil
}

// Aggregate summarises one policy's metrics across replications.
type Aggregate struct {
	AvgCompletion stats.Running
	Utilization   stats.Running
	Makespan      stats.Running
	MeanTrustCost stats.Running
	P95Completion stats.Running
	MissRate      stats.Running

	// Fault-run aggregates; all-zero distributions on fault-free grids.
	Failures        stats.Running
	Requeues        stats.Running
	WastedWork      stats.Running
	TrustTableError stats.Running
}

// add folds one run into the aggregate.
func (a *Aggregate) add(r *RunResult) {
	a.AvgCompletion.Add(r.AvgCompletionTime)
	a.Utilization.Add(r.MeanUtilization)
	a.Makespan.Add(r.Makespan)
	a.MeanTrustCost.Add(r.MeanTrustCost)
	a.P95Completion.Add(r.P95Completion)
	a.MissRate.Add(r.DeadlineMissRate)
	a.Failures.Add(float64(r.Failures))
	a.Requeues.Add(float64(r.Requeues))
	a.WastedWork.Add(r.WastedWork)
	a.TrustTableError.Add(r.TrustTableError)
}

// Comparison aggregates paired replications of a scenario.
type Comparison struct {
	Scenario Scenario
	Reps     int

	Unaware Aggregate
	Aware   Aggregate

	// CompletionPairs pairs per-replication average completion times
	// (unaware as baseline), yielding the paper's Improvement column
	// with a significance test.
	CompletionPairs stats.Paired
}

// ImprovementPercent is the paper's improvement metric on average
// completion time: (unaware − aware)/unaware × 100 over replication means.
func (c *Comparison) ImprovementPercent() float64 {
	return c.CompletionPairs.ImprovementPercent()
}

// Compare runs reps paired replications of the scenario using workers
// goroutines (workers <= 0 selects GOMAXPROCS).  Each replication draws
// its workload from an independent, reproducible rng stream derived from
// seed, so results are identical regardless of worker count — the
// parallelism is pure speed.  Compare is a single-cell grid; CompareGrid
// schedules many scenarios on the same pool.
func Compare(sc Scenario, seed uint64, reps, workers int) (*Comparison, error) {
	cmps, err := CompareGrid(context.Background(),
		[]CompareCell{{Name: sc.Name, Scenario: sc}},
		GridOptions{Seed: seed, Reps: reps, Workers: workers})
	if err != nil {
		return nil, err
	}
	return cmps[0], nil
}
