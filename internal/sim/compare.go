package sim

import (
	"fmt"
	"runtime"
	"sync"

	"gridtrust/internal/rng"
	"gridtrust/internal/stats"
	"gridtrust/internal/workload"
)

// PairResult is one paired replication: the same workload scheduled
// trust-unaware and trust-aware.
type PairResult struct {
	Seed    int
	Unaware *RunResult
	Aware   *RunResult
}

// RunPair generates the workload for one replication stream and runs both
// policies on it.  Because the workload is materialised once, the pairing
// is exact: both runs see identical EECs, arrivals, RTLs and OTLs.
func RunPair(sc Scenario, src *rng.Source) (*PairResult, error) {
	return runPair(sc, src, &runScratch{})
}

// runPair is RunPair with caller-provided scratch: both runs of the pair
// share one scratch, and Compare's workers reuse theirs across every
// replication they process.
func runPair(sc Scenario, src *rng.Source, scr *runScratch) (*PairResult, error) {
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	w, err := workload.NewWorkload(src, sc.WorkloadSpec())
	if err != nil {
		return nil, err
	}
	awareP, unawareP, err := sc.policies()
	if err != nil {
		return nil, err
	}
	un, err := runTraced(sc, w, unawareP, nil, scr)
	if err != nil {
		return nil, fmt.Errorf("sim: unaware run: %w", err)
	}
	aw, err := runTraced(sc, w, awareP, nil, scr)
	if err != nil {
		return nil, fmt.Errorf("sim: aware run: %w", err)
	}
	return &PairResult{Unaware: un, Aware: aw}, nil
}

// Aggregate summarises one policy's metrics across replications.
type Aggregate struct {
	AvgCompletion stats.Running
	Utilization   stats.Running
	Makespan      stats.Running
	MeanTrustCost stats.Running
	P95Completion stats.Running
	MissRate      stats.Running
}

// add folds one run into the aggregate.
func (a *Aggregate) add(r *RunResult) {
	a.AvgCompletion.Add(r.AvgCompletionTime)
	a.Utilization.Add(r.MeanUtilization)
	a.Makespan.Add(r.Makespan)
	a.MeanTrustCost.Add(r.MeanTrustCost)
	a.P95Completion.Add(r.P95Completion)
	a.MissRate.Add(r.DeadlineMissRate)
}

// Comparison aggregates paired replications of a scenario.
type Comparison struct {
	Scenario Scenario
	Reps     int

	Unaware Aggregate
	Aware   Aggregate

	// CompletionPairs pairs per-replication average completion times
	// (unaware as baseline), yielding the paper's Improvement column
	// with a significance test.
	CompletionPairs stats.Paired
}

// ImprovementPercent is the paper's improvement metric on average
// completion time: (unaware − aware)/unaware × 100 over replication means.
func (c *Comparison) ImprovementPercent() float64 {
	return c.CompletionPairs.ImprovementPercent()
}

// Compare runs reps paired replications of the scenario using workers
// goroutines (workers <= 0 selects GOMAXPROCS).  Each replication draws
// its workload from an independent, reproducible rng stream derived from
// seed, so results are identical regardless of worker count — the
// parallelism is pure speed.
func Compare(sc Scenario, seed uint64, reps, workers int) (*Comparison, error) {
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	if reps <= 0 {
		return nil, fmt.Errorf("sim: reps must be positive, got %d", reps)
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > reps {
		workers = reps
	}

	streams := rng.Streams(seed, reps)
	type repOut struct {
		idx  int
		pair *PairResult
		err  error
	}
	jobs := make(chan int)
	outs := make(chan repOut, reps)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// One scratch per worker: replications on the same worker
			// reuse its buffers, so steady-state scheduling allocates
			// nothing regardless of replication count.
			scr := &runScratch{}
			for idx := range jobs {
				pair, err := runPair(sc, streams[idx], scr)
				if pair != nil {
					pair.Seed = idx
				}
				outs <- repOut{idx: idx, pair: pair, err: err}
			}
		}()
	}
	go func() {
		for i := 0; i < reps; i++ {
			jobs <- i
		}
		close(jobs)
		wg.Wait()
		close(outs)
	}()

	// Collect in arrival order, then fold in replication order so the
	// aggregate is deterministic bit-for-bit.
	pairs := make([]*PairResult, reps)
	for out := range outs {
		if out.err != nil {
			return nil, fmt.Errorf("sim: replication %d: %w", out.idx, out.err)
		}
		pairs[out.idx] = out.pair
	}
	cmp := &Comparison{Scenario: sc, Reps: reps}
	for _, p := range pairs {
		cmp.Unaware.add(p.Unaware)
		cmp.Aware.add(p.Aware)
		cmp.CompletionPairs.Add(p.Unaware.AvgCompletionTime, p.Aware.AvgCompletionTime)
	}
	return cmp, nil
}
