package sim

import (
	"testing"

	"gridtrust/internal/fault"
	"gridtrust/internal/rng"
	"gridtrust/internal/workload"
)

// Fault-path overhead benchmarks, recorded in BENCH_fault.json.  Three
// regimes on the same Table-4 MCT workload:
//
//   - fast-path: inactive plan, the pre-fault scheduling loop (§8's
//     zero-allocation kernels) — the baseline every fault-free caller
//     still gets byte-identical.
//   - masking-no-crash: an active churn plan whose first crash lands
//     beyond the horizon, so the run pays the full fault machinery
//     (event-driven DES, per-machine queues, availability masking,
//     renewal bookkeeping) without a single failure.  This is the pure
//     masking/bookkeeping overhead.
//   - churn: MTBF 1000/MTTR 100, real crashes, cancellations and
//     requeues on top.
func BenchmarkFaultPathOverhead(b *testing.B) {
	base := PaperScenario("mct", 100, workload.Inconsistent)
	w, err := workload.NewWorkload(rng.New(2002), base.WorkloadSpec())
	if err != nil {
		b.Fatal(err)
	}
	aware, _, err := base.policies()
	if err != nil {
		b.Fatal(err)
	}
	run := func(b *testing.B, plan fault.Plan) {
		sc := base
		sc.Fault = plan
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := Run(sc, w, aware); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("fast-path", func(b *testing.B) { run(b, fault.Plan{}) })
	b.Run("masking-no-crash", func(b *testing.B) {
		run(b, fault.Plan{MTBF: 1e12, MTTR: 1, Seed: 1})
	})
	b.Run("churn", func(b *testing.B) {
		run(b, fault.Plan{MTBF: 1000, MTTR: 100, Seed: 1})
	})
}
