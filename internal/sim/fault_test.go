package sim

import (
	"context"
	"math"
	"sort"
	"testing"

	"gridtrust/internal/fault"
	"gridtrust/internal/rng"
	"gridtrust/internal/sched"
	"gridtrust/internal/trace"
	"gridtrust/internal/workload"
)

// TestInactivePlanIsByteIdentical: a plan that injects nothing must leave
// Compare's aggregates exactly as the zero plan's — the fast path, with
// not one extra rng draw.
func TestInactivePlanIsByteIdentical(t *testing.T) {
	base := PaperScenario("mct", 50, workload.Inconsistent)
	ref, err := Compare(base, 11, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	inactive := base
	inactive.Fault = fault.Plan{MaxRequeues: 7, UpShape: 2} // set but inactive
	got, err := Compare(inactive, 11, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	if got.Aware.AvgCompletion.Mean() != ref.Aware.AvgCompletion.Mean() ||
		got.Unaware.Makespan.Mean() != ref.Unaware.Makespan.Mean() ||
		got.Aware.MeanTrustCost.Mean() != ref.Aware.MeanTrustCost.Mean() {
		t.Fatalf("inactive plan perturbed results: %+v vs %+v", got.Aware, ref.Aware)
	}
	if got.Aware.Failures.Mean() != 0 || got.Aware.Requeues.Mean() != 0 {
		t.Fatal("inactive plan reported fault metrics")
	}
}

// TestNoCrashChurnMatchesFastPath: with churn armed but the first crash
// beyond the horizon, the event-driven fault path must reproduce the fast
// path's schedule bit-for-bit (and its aggregate metrics, up to summation
// order of the completion samples).
func TestNoCrashChurnMatchesFastPath(t *testing.T) {
	for _, h := range []string{"mct", "minmin", "sufferage"} {
		sc := PaperScenario(h, 50, workload.Inconsistent)
		w, err := workload.NewWorkload(rng.New(7), sc.WorkloadSpec())
		if err != nil {
			t.Fatal(err)
		}
		p := sched.MustTrustAware(sc.TCWeight)
		var fastTr, faultTr trace.Trace
		fast, err := RunTraced(sc, w, p, &fastTr)
		if err != nil {
			t.Fatal(err)
		}
		scf := sc
		scf.Fault = fault.Plan{MTBF: 1e12, MTTR: 1}
		slow, err := RunTraced(scf, w, p, &faultTr)
		if err != nil {
			t.Fatal(err)
		}
		e1 := fastTr.ByKind(trace.Scheduled)
		e2 := faultTr.ByKind(trace.Scheduled)
		if len(e1) != len(e2) {
			t.Fatalf("%s: %d vs %d scheduling decisions", h, len(e1), len(e2))
		}
		for i := range e1 {
			if e1[i] != e2[i] {
				t.Fatalf("%s: decision %d diverged: %+v vs %+v", h, i, e1[i], e2[i])
			}
		}
		s1, s2 := fastTr.Spans(), faultTr.Spans()
		sortSpans(s1)
		sortSpans(s2)
		if len(s1) != len(s2) {
			t.Fatalf("%s: span counts %d vs %d", h, len(s1), len(s2))
		}
		for i := range s1 {
			if s1[i] != s2[i] {
				t.Fatalf("%s: span %d diverged: %+v vs %+v", h, i, s1[i], s2[i])
			}
		}
		if slow.Makespan != fast.Makespan || slow.MeanUtilization != fast.MeanUtilization ||
			slow.MeanTrustCost != fast.MeanTrustCost || slow.Assigned != fast.Assigned {
			t.Fatalf("%s: aggregate metrics diverged: %+v vs %+v", h, slow, fast)
		}
		if math.Abs(slow.AvgCompletionTime-fast.AvgCompletionTime) > 1e-9*fast.AvgCompletionTime {
			t.Fatalf("%s: avg completion %v vs %v", h, slow.AvgCompletionTime, fast.AvgCompletionTime)
		}
		if slow.Failures != 0 || slow.Requeues != 0 || slow.WastedWork != 0 {
			t.Fatalf("%s: phantom faults: %+v", h, slow)
		}
	}
}

func sortSpans(s []trace.Span) {
	sort.Slice(s, func(i, j int) bool {
		if s[i].Request != s[j].Request {
			return s[i].Request < s[j].Request
		}
		return s[i].Start < s[j].Start
	})
}

// TestChurnRunCompletesAndRequeues drives real churn through both modes
// and checks the rescheduling bookkeeping: every crash-lost request is
// requeued, re-scheduled, and the workload still completes.
func TestChurnRunCompletesAndRequeues(t *testing.T) {
	for _, h := range []string{"mct", "minmin"} {
		sc := PaperScenario(h, 50, workload.Inconsistent)
		sc.Fault = fault.Plan{MTBF: 1000, MTTR: 100, Seed: 5}
		w, err := workload.NewWorkload(rng.New(7), sc.WorkloadSpec())
		if err != nil {
			t.Fatal(err)
		}
		var tr trace.Trace
		res, err := RunTraced(sc, w, sched.MustTrustAware(sc.TCWeight), &tr)
		if err != nil {
			t.Fatal(err)
		}
		if res.Failures == 0 {
			t.Fatalf("%s: churn plan produced no failures", h)
		}
		failures := tr.ByKind(trace.Failure)
		requeues := tr.ByKind(trace.Requeue)
		if len(failures) != res.Failures || len(requeues) != res.Requeues {
			t.Fatalf("%s: trace/result mismatch: %d/%d failures, %d/%d requeues",
				h, len(failures), res.Failures, len(requeues), res.Requeues)
		}
		lost := 0
		for _, f := range failures {
			if f.Request >= 0 {
				lost++
			}
		}
		if lost != res.Requeues {
			t.Fatalf("%s: %d in-flight losses but %d requeues", h, lost, res.Requeues)
		}
		if res.Assigned != sc.Tasks+res.Requeues {
			t.Fatalf("%s: assigned %d != tasks %d + requeues %d", h, res.Assigned, sc.Tasks, res.Requeues)
		}
		if lost > 0 && res.WastedWork <= 0 {
			t.Fatalf("%s: lost work not accounted", h)
		}
		// Every request finishes exactly once.
		finishes := make(map[int]int)
		for _, e := range tr.ByKind(trace.Finish) {
			finishes[e.Request]++
		}
		if len(finishes) != sc.Tasks {
			t.Fatalf("%s: %d distinct finishes, want %d", h, len(finishes), sc.Tasks)
		}
		for r, n := range finishes {
			if n != 1 {
				t.Fatalf("%s: request %d finished %d times", h, r, n)
			}
		}
	}
}

// TestFaultGridDeterministicAcrossWorkers: a churn + adversary grid must
// aggregate identically with 1 worker and with 4.
func TestFaultGridDeterministicAcrossWorkers(t *testing.T) {
	base := PaperScenario("mct", 50, workload.Inconsistent)
	cells := ChurnCells(base, []float64{0, 1500}, []float64{0, 0.5})
	run := func(workers int) []*Comparison {
		out, err := CompareGrid(context.Background(), cells,
			GridOptions{Seed: 21, Reps: 4, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	a, b := run(1), run(4)
	for i := range a {
		if a[i].Aware.Makespan.Mean() != b[i].Aware.Makespan.Mean() ||
			a[i].Aware.Failures.Mean() != b[i].Aware.Failures.Mean() ||
			a[i].Aware.Requeues.Mean() != b[i].Aware.Requeues.Mean() ||
			a[i].Unaware.AvgCompletion.Mean() != b[i].Unaware.AvgCompletion.Mean() ||
			a[i].ImprovementPercent() != b[i].ImprovementPercent() {
			t.Fatalf("cell %s diverged across worker counts", cells[i].Name)
		}
	}
	// Sanity: the churn cells actually churned.
	if a[2].Aware.Failures.Mean() == 0 {
		t.Fatal("mtbf=1500 cell saw no failures")
	}
}

// TestAdversaryDeceivesDecisionViewOnly: whitewashing RDs corrupt the
// scheduler's decision table (TrustTableError > 0) but never the charged
// reality, and the trust-unaware policy — which ignores TC — is untouched.
func TestAdversaryDeceivesDecisionViewOnly(t *testing.T) {
	sc := PaperScenario("mct", 50, workload.Inconsistent)
	fast, err := RunPair(sc, rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	sc.Fault = fault.Plan{AdversaryFraction: 1}
	adv, err := RunPair(sc, rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	if adv.Aware.TrustTableError <= 0 {
		t.Fatalf("full adversary fraction but table error %g", adv.Aware.TrustTableError)
	}
	if adv.Unaware.AvgCompletionTime != fast.Unaware.AvgCompletionTime ||
		adv.Unaware.Makespan != fast.Unaware.Makespan {
		t.Fatal("adversaries perturbed the trust-unaware run")
	}
	if adv.Aware.Failures != 0 || adv.Aware.Requeues != 0 {
		t.Fatal("adversary-only plan produced churn")
	}
}

// TestFaultScenarioValidation rejects broken plans and the
// masking-unsafe metaheuristics under churn.
func TestFaultScenarioValidation(t *testing.T) {
	sc := PaperScenario("minmin", 50, workload.Inconsistent)
	sc.Fault = fault.Plan{MTBF: 100} // churn without MTTR
	if err := sc.Validate(); err == nil {
		t.Fatal("accepted churn without MTTR")
	}
	sc.Fault = fault.Plan{MTBF: 1000, MTTR: 100}
	sc.Heuristic = "ga"
	if err := sc.Validate(); err == nil {
		t.Fatal("accepted metaheuristic under churn")
	}
	sc.Fault = fault.Plan{AdversaryFraction: 0.5}
	if err := sc.Validate(); err != nil {
		t.Fatalf("metaheuristic without churn should pass: %v", err)
	}
}

// TestFaultConfigRoundTrip: the JSON form preserves the plan.
func TestFaultConfigRoundTrip(t *testing.T) {
	sc := PaperScenario("mct", 50, workload.Inconsistent)
	sc.Fault = fault.Plan{MTBF: 2000, MTTR: 150, UpShape: 2, AdversaryFraction: 0.25, MaxRequeues: 9}
	back, err := sc.Config().Scenario()
	if err != nil {
		t.Fatal(err)
	}
	if back.Fault != sc.Fault {
		t.Fatalf("plan round-tripped as %+v, want %+v", back.Fault, sc.Fault)
	}
	plain := PaperScenario("mct", 50, workload.Inconsistent)
	if cfg := plain.Config(); cfg.Fault != nil {
		t.Fatal("zero plan serialized a fault block")
	}
}

// TestFaultStudyGridDeterministic: the adversary study grid aggregates
// identically under any worker count and reproduces the headline result —
// R-weighting keeps the trust table usable where the unweighted formula
// collapses under a lying majority.
func TestFaultStudyGridDeterministic(t *testing.T) {
	cells := FaultStudyCells([]float64{0.75})
	run := func(workers int) []*FaultStudyResult {
		out, err := FaultStudyGrid(context.Background(), cells,
			GridOptions{Seed: 2002, Reps: 6, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	a, b := run(1), run(3)
	for i := range a {
		if a[i].TrustError.Mean() != b[i].TrustError.Mean() ||
			a[i].BadShare.Mean() != b[i].BadShare.Mean() {
			t.Fatalf("study cell %s diverged across worker counts", cells[i].Name)
		}
	}
	unweighted, weighted := a[0], a[1]
	if weighted.TrustError.Mean() >= unweighted.TrustError.Mean() {
		t.Fatalf("R-weighting did not reduce trust error: %.2f vs %.2f",
			weighted.TrustError.Mean(), unweighted.TrustError.Mean())
	}
	if weighted.BadShare.Mean() >= unweighted.BadShare.Mean() {
		t.Fatalf("R-weighting did not reduce bad placements: %.2f vs %.2f",
			weighted.BadShare.Mean(), unweighted.BadShare.Mean())
	}
}
