package sim

import (
	"fmt"

	"gridtrust/internal/behavior"
	"gridtrust/internal/core"
	"gridtrust/internal/grid"
	"gridtrust/internal/rng"
	"gridtrust/internal/trust"
)

// EvolvingConfig parameterises the evolving-trust experiment: two resource
// domains with identical hardware but different behaviour, a cold trust
// table, and a stream of security-sensitive requests.  This is the paper's
// closing future-work scenario made concrete — "techniques for managing
// and evolving trust ... and mechanisms for determining trust values from
// ongoing transactions" (Section 7) — wired through core.TRMS (Figure 1),
// behavior (outcome scoring) and trust (the Γ engine).
type EvolvingConfig struct {
	// Requests is the number of submitted tasks (default 400).
	Requests int
	// MachinesPerRD is the machine count in each domain (default 2).
	MachinesPerRD int
	// MeanEEC is the centre of the per-machine execution cost draw
	// (default 100); costs are uniform in [0.8, 1.2]·MeanEEC so ties are
	// broken by cost noise, not machine index.
	MeanEEC float64
	// ReliableIncidentProb and UnreliableIncidentProb are the chances a
	// transaction on the respective domain suffers a security incident
	// (defaults 0.01 and 0.5; at 0.5 the misbehaving domain's mean
	// outcome settles near level C, two levels below the reliable
	// domain, which is decisive against ±10% execution-cost noise).
	ReliableIncidentProb   float64
	UnreliableIncidentProb float64
	// RTL is the required trust level of every request (default E, so
	// the trust supplement dominates placement once trust diverges).
	RTL grid.TrustLevel
	// WarmupFraction splits the run into an early and a late phase for
	// reporting (default 0.25: the first quarter is "early").
	WarmupFraction float64
}

// withDefaults fills unset fields.
func (c EvolvingConfig) withDefaults() EvolvingConfig {
	if c.Requests == 0 {
		c.Requests = 400
	}
	if c.MachinesPerRD == 0 {
		c.MachinesPerRD = 2
	}
	if c.MeanEEC == 0 {
		c.MeanEEC = 100
	}
	if c.ReliableIncidentProb == 0 {
		c.ReliableIncidentProb = 0.01
	}
	if c.UnreliableIncidentProb == 0 {
		c.UnreliableIncidentProb = 0.5
	}
	if c.RTL == grid.LevelNone {
		c.RTL = grid.LevelE
	}
	if c.WarmupFraction == 0 {
		c.WarmupFraction = 0.25
	}
	return c
}

// validate rejects unusable configs.
func (c EvolvingConfig) validate() error {
	switch {
	case c.Requests < 4:
		return fmt.Errorf("sim: evolving run needs at least 4 requests, got %d", c.Requests)
	case c.MachinesPerRD < 1:
		return fmt.Errorf("sim: need at least one machine per RD")
	case c.MeanEEC <= 0:
		return fmt.Errorf("sim: non-positive mean EEC %g", c.MeanEEC)
	case c.ReliableIncidentProb < 0 || c.ReliableIncidentProb > 1,
		c.UnreliableIncidentProb < 0 || c.UnreliableIncidentProb > 1:
		return fmt.Errorf("sim: incident probabilities outside [0,1]")
	case !c.RTL.Valid():
		return fmt.Errorf("sim: invalid RTL %v", c.RTL)
	case c.WarmupFraction <= 0 || c.WarmupFraction >= 1:
		return fmt.Errorf("sim: warmup fraction %g outside (0,1)", c.WarmupFraction)
	}
	return nil
}

// The fixed domain ids of the evolving experiment.
const (
	ReliableRD   grid.DomainID = 0
	UnreliableRD grid.DomainID = 1
)

// EvolvingResult reports how placements shifted as trust evolved.
type EvolvingResult struct {
	// EarlyUnreliableShare and LateUnreliableShare are the fractions of
	// placements that landed on the misbehaving domain in the early
	// (warmup) and late phases.
	EarlyUnreliableShare float64
	LateUnreliableShare  float64
	// MeanTCEarly and MeanTCLate are the mean charged trust costs per
	// phase.
	MeanTCEarly, MeanTCLate float64
	// FinalTrustReliable and FinalTrustUnreliable are the table levels
	// (compute activity) at the end of the run.
	FinalTrustReliable   grid.TrustLevel
	FinalTrustUnreliable grid.TrustLevel
	// Placements counts per-domain totals.
	Placements map[grid.DomainID]int
	// Incidents counts security incidents observed per domain.
	Incidents map[grid.DomainID]int
}

// RunEvolving executes the experiment.  Identical sources give identical
// results.
func RunEvolving(cfg EvolvingConfig, src *rng.Source) (*EvolvingResult, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if src == nil {
		return nil, fmt.Errorf("sim: nil random source")
	}

	top, err := evolvingTopology(cfg)
	if err != nil {
		return nil, err
	}
	trms, err := core.New(core.Config{
		Topology: top,
		// Optimistic initialisation: both domains start fully trusted
		// (level E, engine score 5).  Greedy trust-aware placement
		// starves untried domains if trust can only be *earned* — the
		// classic cold-start exploration problem — so instead trust is
		// *lost* through observed misbehaviour.  Direct experience
		// dominates (α=0.9) and smoothing 0.5 converges within tens of
		// transactions.
		// UpdateBatch 8 implements Section 3.1's "significant amount of
		// transactional data" rule and keeps the early phase genuinely
		// cold for the phase comparison.
		Trust: trust.Config{
			Alpha: 0.9, Beta: 0.1,
			Smoothing: 0.35, UpdateBatch: 8, InitialScore: 5,
		},
		InitialTrust: grid.LevelE,
		Agents:       1, // keep outcome application ordered
	})
	if err != nil {
		return nil, err
	}
	defer trms.Close()

	scorer := behavior.MustDefaultScorer()
	nMachines := len(top.Machines())
	res := &EvolvingResult{
		Placements: make(map[grid.DomainID]int),
		Incidents:  make(map[grid.DomainID]int),
	}
	warmup := int(float64(cfg.Requests) * cfg.WarmupFraction)
	var earlyUnreliable, lateUnreliable int
	var tcEarly, tcLate float64

	toa := grid.MustToA(grid.ActCompute)
	now := 0.0
	for i := 0; i < cfg.Requests; i++ {
		// Requests are spaced one mean service time apart so machines
		// are usually idle and placement is decided by cost (trust),
		// not by backlog equalisation — this isolates the trust effect
		// the experiment is about.
		now += cfg.MeanEEC
		eec := make([]float64, nMachines)
		for m := range eec {
			eec[m] = cfg.MeanEEC * src.Uniform(0.9, 1.1)
		}
		p, err := trms.Submit(core.Task{
			Client: 0, ToA: toa, RTL: cfg.RTL, EEC: eec,
		}, now)
		if err != nil {
			return nil, fmt.Errorf("sim: evolving submit %d: %w", i, err)
		}
		res.Placements[p.RD]++
		if i < warmup {
			if p.RD == UnreliableRD {
				earlyUnreliable++
			}
			tcEarly += float64(p.TC)
		} else {
			if p.RD == UnreliableRD {
				lateUnreliable++
			}
			tcLate += float64(p.TC)
		}

		// Behaviour: the domain's nature decides the telemetry.
		incidentProb := cfg.ReliableIncidentProb
		if p.RD == UnreliableRD {
			incidentProb = cfg.UnreliableIncidentProb
		}
		rec := behavior.TransactionRecord{
			PromisedDuration:  p.ECC,
			ActualDuration:    p.ECC * src.Uniform(0.95, 1.05),
			Completed:         true,
			ResultIntegrityOK: true,
			SecurityIncident:  src.Bool(incidentProb),
		}
		if rec.SecurityIncident {
			res.Incidents[p.RD]++
		}
		outcome, err := scorer.Score(rec)
		if err != nil {
			return nil, err
		}
		if err := trms.ReportOutcome(p, toa, outcome, now); err != nil {
			return nil, err
		}
		// Keep the loop synchronous so placement i+1 sees the trust
		// consequences of placement i, as a slow Grid would.
		trms.Drain()
	}

	res.EarlyUnreliableShare = float64(earlyUnreliable) / float64(warmup)
	res.LateUnreliableShare = float64(lateUnreliable) / float64(cfg.Requests-warmup)
	res.MeanTCEarly = tcEarly / float64(warmup)
	res.MeanTCLate = tcLate / float64(cfg.Requests-warmup)
	res.FinalTrustReliable, _ = trms.Table().Get(0, ReliableRD, grid.ActCompute)
	res.FinalTrustUnreliable, _ = trms.Table().Get(0, UnreliableRD, grid.ActCompute)
	return res, nil
}

// evolvingTopology builds the fixed two-domain Grid of the experiment:
// RD 0 (reliable) and RD 1 (unreliable) with identical machine counts,
// clients in GD 0.
func evolvingTopology(cfg EvolvingConfig) (*grid.Topology, error) {
	mkRD := func(id grid.DomainID, firstMachine int) *grid.ResourceDomain {
		rd := &grid.ResourceDomain{
			ID:    id,
			Owner: fmt.Sprintf("org-%d", id),
			Supported: map[grid.Activity]grid.TrustLevel{
				grid.ActCompute: grid.LevelC,
			},
			RTL: grid.LevelA,
		}
		for i := 0; i < cfg.MachinesPerRD; i++ {
			rd.Machines = append(rd.Machines, &grid.Machine{
				ID: grid.MachineID(firstMachine + i), RD: id,
			})
		}
		return rd
	}
	return grid.NewTopology(
		&grid.GridDomain{
			ID: 0, Name: "reliable", Owner: "org-0",
			RD: mkRD(ReliableRD, 0),
			CD: &grid.ClientDomain{
				ID: 0, Owner: "org-0",
				Sought:  map[grid.Activity]grid.TrustLevel{grid.ActCompute: grid.LevelC},
				RTL:     grid.LevelA,
				Clients: []*grid.Client{{ID: 0, CD: 0}},
			},
		},
		&grid.GridDomain{
			ID: 1, Name: "unreliable", Owner: "org-1",
			RD: mkRD(UnreliableRD, cfg.MachinesPerRD),
		},
	)
}
