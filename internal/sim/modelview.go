package sim

import (
	"fmt"
	"math"

	"gridtrust/internal/grid"
	"gridtrust/internal/sched"
	"gridtrust/internal/trust"
)

// modelView routes the scheduler's trust-cost decisions through a live
// trust model (Scenario.TrustModel).  The static table-driven simulator
// treats trust costs as fixed inputs; under a model the view starts from
// the model's uninformed prior, observes every task completion (the CD of
// the finished request judges the machine's RD by the true offered trust
// level) and re-derives the decision-view TC from the model's evolving
// score on every scheduler query.  Because all client domains feed the
// same model, each CD's direct experience doubles as every other CD's
// recommendation — the Figure 1 recommender network arises from the
// workload itself.
//
// The fusion with the advertised table is conservative: the decision TC
// is the maximum of the claimed cost (the whitewashed table when the
// fault plan lies, the true table otherwise) and the model-derived cost.
// A higher TC means less trust, so an adversary can lower its claimed
// cost all it wants — once the model has seen it misbehave, the model's
// estimate dominates.
//
// Determinism: the view is called from the fault kernels, which make
// identical scheduling and completion calls in identical order on both
// the reference and flat queues; the model contract (see trust.Model)
// guarantees bit-identical floats for identical call sequences, so runs
// remain bit-identical across kernels, workers and shard counts.  All
// model calls pass now=0: the view installs no decay function, making
// scores time-independent.
type modelView struct {
	truth   *workloadCosts
	claimed sched.Costs // truth, or the whitewashed overlay when active
	model   trust.Model

	cds  []trust.EntityID // client-domain entity names, "cd:<i>"
	rds  []trust.EntityID // resource-domain entity names, "rd:<i>"
	ctxs []trust.Context  // per request: its composed ToA as context
}

// viewModelConfig is the trust configuration every scenario-level model
// runs under: direct experience dominates (α=0.7), strangers start at the
// scale midpoint, and observations commit immediately so the very next
// scheduling decision sees them.
func viewModelConfig() trust.Config {
	return trust.Config{
		Alpha:        0.7,
		Beta:         0.3,
		InitialScore: (trust.MinScore + trust.MaxScore) / 2,
		UpdateBatch:  1,
	}
}

// newModelView builds the view for the scenario's trust model over the
// true costs and the (possibly whitewashed) claimed costs.
func newModelView(sc Scenario, truth *workloadCosts, claimed sched.Costs) (*modelView, error) {
	model, err := trust.NewModel(sc.TrustModel, viewModelConfig())
	if err != nil {
		return nil, err
	}
	w := truth.w
	v := &modelView{
		truth:   truth,
		claimed: claimed,
		model:   model,
		cds:     make([]trust.EntityID, w.NumCDs),
		rds:     make([]trust.EntityID, w.NumRDs),
		ctxs:    make([]trust.Context, len(w.Requests)),
	}
	for i := range v.cds {
		v.cds[i] = trust.EntityID(fmt.Sprintf("cd:%d", i))
	}
	for i := range v.rds {
		v.rds[i] = trust.EntityID(fmt.Sprintf("rd:%d", i))
	}
	for i := range w.Requests {
		v.ctxs[i] = trust.Context(w.Requests[i].ToA.String())
	}
	return v, nil
}

// NumRequests returns the instance's request count.
func (v *modelView) NumRequests() int { return v.truth.NumRequests() }

// NumMachines returns the instance's machine count.
func (v *modelView) NumMachines() int { return v.truth.NumMachines() }

// EEC delegates to the true execution costs: the model shapes trust, not
// machine speed.
func (v *modelView) EEC(r, m int) float64 { return v.truth.EEC(r, m) }

// modelTC derives the trust cost the model currently implies for request
// r on machine m: the model's score for (CD, RD) in the request's ToA
// context is quantised to a trust level (non-offerable levels cap at the
// maximum offerable, mirroring core's table updates) and priced through
// the scenario's ETS rule.
func (v *modelView) modelTC(r, m int) (int, error) {
	w := v.truth.w
	req := w.Requests[r]
	rd := w.MachineRD[m]
	score, err := v.model.Trust(v.cds[req.CD], v.rds[rd], v.ctxs[r], 0)
	if err != nil {
		return 0, err
	}
	lvl := grid.LevelFromScore(score)
	if !lvl.Offerable() {
		lvl = grid.MaxOfferable
	}
	return grid.TrustCostWith(w.Spec.ETSRule, req.ClientRTL, w.ResourceRTL[rd], lvl)
}

// TrustCost returns the decision-view trust cost: the conservative
// maximum of the claimed table cost and the model-derived cost.
func (v *modelView) TrustCost(r, m int) (int, error) {
	ctc, err := v.claimed.TrustCost(r, m)
	if err != nil {
		return 0, err
	}
	mtc, err := v.modelTC(r, m)
	if err != nil {
		return 0, err
	}
	if mtc > ctc {
		return mtc, nil
	}
	return ctc, nil
}

// noteFinish feeds one completed task back into the model: the request's
// CD observes the machine's RD with the RD's true offered trust level as
// the outcome, so over the run the model's scores converge on the truth
// the adversarial table misreports.
func (v *modelView) noteFinish(r, m int) error {
	w := v.truth.w
	req := w.Requests[r]
	rd := w.MachineRD[m]
	otl, err := w.Table.OTL(req.CD, rd, req.ToA)
	if err != nil {
		return err
	}
	_, err = v.model.Observe(v.cds[req.CD], v.rds[rd], v.ctxs[r], float64(otl), 0)
	return err
}

// tableError measures the final decision-view gap: the mean absolute
// difference between the decision TC (post-learning) and the true TC over
// every (request, machine) pair — the RunResult.TrustTableError a
// model-driven run reports.
func (v *modelView) tableError() (float64, error) {
	var sum float64
	n := 0
	for r := 0; r < v.NumRequests(); r++ {
		tcs := v.truth.tcRow(r)
		for m := range tcs {
			dtc, err := v.TrustCost(r, m)
			if err != nil {
				return 0, err
			}
			sum += math.Abs(float64(dtc - tcs[m]))
			n++
		}
	}
	return sum / float64(n), nil
}

var _ sched.Costs = (*modelView)(nil)
